// E3 — is the per-iteration cost O(h) or O(log h)?
//
// The paper derives O(h) for min()/selected_min() ("a h-iteration loop
// must be executed, [so] the two algorithms have O(h) complexity") but its
// abstract and conclusion print the total as "O(p log h)". This experiment
// settles it empirically: sweep h at fixed n and p, fit the measured step
// counts against both h and log2(h), and compare the fits. The linear-in-h
// law wins by a wide margin, confirming the Section-3 derivation and the
// typo reading of "log h".
#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/fit.hpp"
#include "bench_common.hpp"

namespace {

using namespace ppa;

constexpr std::size_t kN = 24;
constexpr std::size_t kP = 8;

void print_tables() {
  bench::print_header("E3 — SIMD steps vs word width h",
                      "min()/selected_min() are O(h), hence MCP is O(p*h) — the paper's "
                      "'O(p log h)' is a typo for O(p*h)");

  util::Table table("E3: n=24, p=8, h swept",
                    {"h", "iterations", "total steps", "bus_or cycles", "bus_or per iter"});
  analysis::Series vs_h{"steps(h)", {}, {}};
  analysis::Series vs_logh{"steps(log2 h)", {}, {}};
  for (const int h : {6, 8, 10, 12, 16, 20, 24, 28, 32}) {
    const auto g = bench::chain_with_direct(kN, kP, h);
    const auto r = mcp::solve(g, 0);
    table.add_row(
        {static_cast<std::int64_t>(h), static_cast<std::int64_t>(r.iterations),
         static_cast<std::int64_t>(r.total_steps.total()),
         static_cast<std::int64_t>(r.total_steps.count(sim::StepCategory::BusOr)),
         static_cast<double>(r.total_steps.count(sim::StepCategory::BusOr)) /
             static_cast<double>(r.iterations)});
    vs_h.add(h, static_cast<double>(r.total_steps.total()));
    vs_logh.add(std::log2(h), static_cast<double>(r.total_steps.total()));
  }
  bench::emit(table);

  const auto linear = vs_h.fit();
  const auto logfit = vs_logh.fit();
  std::printf("Fit vs h     : steps = %.1f + %.2f*h,      R^2 = %.6f\n", linear.intercept,
              linear.slope, linear.r_squared);
  std::printf("Fit vs log2 h: steps = %.1f + %.2f*log2 h, R^2 = %.6f\n", logfit.intercept,
              logfit.slope, logfit.r_squared);
  std::printf("Verdict: %s law explains the data (higher R^2).\n\n",
              linear.r_squared >= logfit.r_squared ? "the LINEAR-in-h" : "the LOG-in-h");
}

void BM_McpByH(benchmark::State& state) {
  const auto h = static_cast<int>(state.range(0));
  const auto g = bench::chain_with_direct(kN, kP, h);
  for (auto _ : state) {
    const auto r = mcp::solve(g, 0);
    benchmark::DoNotOptimize(r.iterations);
  }
  state.counters["h"] = h;
}
BENCHMARK(BM_McpByH)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
