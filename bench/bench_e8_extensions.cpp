// E8 — extension experiments (beyond the paper's own evaluation):
//
//   (a) transitive closure / reachability: the boolean-semiring DP
//       replaces the O(h) bit-serial minimum with ONE wired-OR cycle per
//       iteration, so reachability is O(p) steps — independent of h.
//       Compared against the min-plus DP on the same graphs, this
//       measures exactly what the h factor in O(p·h) buys.
//   (b) all-pairs MCP and diameter via n single-destination runs — the
//       O(n·p̄·h) aggregate, plus the O(h) on-machine eccentricity
//       reduction.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/closure.hpp"

namespace {

using namespace ppa;

void print_reachability_table() {
  bench::print_header("E8 — extensions: boolean vs min-plus DP; all-pairs aggregates",
                      "reachability needs 1 bus-OR cycle per iteration (h-independent); "
                      "MCP needs 2h of them");

  util::Table table("E8a: same graphs, reachability vs MCP (per-iteration steps)",
                    {"n", "h", "iters", "reach steps/iter", "mcp steps/iter", "mcp/reach"});
  for (const std::size_t n : {8u, 16u, 32u}) {
    for (const int h : {8, 16, 32}) {
      util::Rng rng(n * 7 + static_cast<std::uint64_t>(h));
      const auto g = graph::random_reachable_digraph(
          n, h, 2.0 / static_cast<double>(n), {1, 20}, 0, rng);
      const auto reach = mcp::solve_reachability(g, 0);
      const auto shortest = mcp::solve(g, 0);
      const double reach_cost =
          bench::per_iteration_steps(reach.total_steps.total(), reach.init_steps.total(),
                                     reach.iterations);
      const double mcp_cost = bench::per_iteration_steps(
          shortest.total_steps.total(), shortest.init_steps.total(), shortest.iterations);
      table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(h),
                     static_cast<std::int64_t>(shortest.iterations), reach_cost, mcp_cost,
                     mcp_cost / reach_cost});
    }
  }
  bench::emit(table);
  std::printf(
      "Reading: reachability per-iteration cost is constant in h AND n; the MCP column\n"
      "grows linearly in h — the measured price of carrying h-bit costs instead of one\n"
      "reachability bit.\n\n");
}

void print_allpairs_table() {
  util::Table table("E8b: all-pairs MCP (n runs, one reused machine)",
                    {"n", "total iters", "total steps", "steps/destination", "diameter"});
  for (const std::size_t n : {8u, 16u, 24u, 32u}) {
    util::Rng rng(n * 13);
    const auto g = graph::random_reachable_digraph(
        n, 16, 2.0 / static_cast<double>(n), {1, 20}, 0, rng);
    const auto ap = mcp::all_pairs(g);
    table.add_row({static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(ap.total_iterations),
                   static_cast<std::int64_t>(ap.total_steps.total()),
                   static_cast<double>(ap.total_steps.total()) / static_cast<double>(n),
                   static_cast<std::int64_t>(ap.diameter)});
  }
  bench::emit(table);
}

void BM_Reachability(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g =
      graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 20}, 0, rng);
  for (auto _ : state) {
    const auto r = mcp::solve_reachability(g, 0);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_Reachability)->Arg(16)->Arg(32)->Arg(64);

void BM_TransitiveClosure(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g = graph::random_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 20}, rng);
  for (auto _ : state) {
    const auto tc = mcp::transitive_closure(g);
    benchmark::DoNotOptimize(tc.closed.size());
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(8)->Arg(16)->Arg(32);

void BM_AllPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g =
      graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 20}, 0, rng);
  for (auto _ : state) {
    const auto ap = mcp::all_pairs(g);
    benchmark::DoNotOptimize(ap.diameter);
  }
}
BENCHMARK(BM_AllPairs)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_reachability_table();
  print_allpairs_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
