// E1 — "The proposed algorithm ... has been validated through simulation."
//
// Reproduction: a randomized validation campaign. For every (n, h, family)
// cell we generate seeded graphs, run the PPA MCP on the simulator and
// verify the full solution (costs AND traced paths) against Dijkstra.
// The paper reports no numbers for this; the reproduced artifact is the
// zero-mismatch table plus the observed iteration/step statistics.
#include <benchmark/benchmark.h>

#include "baseline/sequential.hpp"
#include "bench_common.hpp"
#include "graph/path.hpp"

namespace {

using namespace ppa;

struct CampaignCell {
  std::size_t n;
  int bits;
  const char* family;
  std::size_t graphs = 0;
  std::size_t mismatches = 0;
  double mean_iterations = 0;
  double mean_steps = 0;
};

graph::WeightMatrix make_family(const char* family, std::size_t n, int bits, util::Rng& rng) {
  if (std::string_view(family) == "random") {
    return graph::random_digraph(n, bits, 4.0 / static_cast<double>(n), {1, 30}, rng);
  }
  if (std::string_view(family) == "reachable") {
    return graph::random_reachable_digraph(n, bits, 2.0 / static_cast<double>(n), {1, 30},
                                           0, rng);
  }
  return graph::banded(n, bits, 3, {1, 30}, rng);
}

CampaignCell run_cell(std::size_t n, int bits, const char* family, int trials) {
  CampaignCell cell{n, bits, family};
  util::Rng rng(std::uint64_t{0x9E1} * n + static_cast<std::uint64_t>(bits));
  double iter_sum = 0;
  double step_sum = 0;
  for (int t = 0; t < trials; ++t) {
    const auto g = make_family(family, n, bits, rng);
    const graph::Vertex d = rng.below(n);
    const auto result = mcp::solve(g, d);
    const auto reference = baseline::dijkstra_to(g, d);
    const auto verdict = graph::verify_solution(g, result.solution, reference.cost);
    cell.graphs++;
    if (!verdict.ok) cell.mismatches++;
    iter_sum += static_cast<double>(result.iterations);
    step_sum += static_cast<double>(result.total_steps.total());
  }
  cell.mean_iterations = iter_sum / static_cast<double>(cell.graphs);
  cell.mean_steps = step_sum / static_cast<double>(cell.graphs);
  return cell;
}

void print_tables() {
  bench::print_header("E1 — correctness campaign (PPA MCP vs Dijkstra)",
                      "the PPA algorithm computes exact minimum cost paths (validated "
                      "through simulation)");

  util::Table table("E1: verified solutions per (n, h, family)",
                    {"n", "h", "family", "graphs", "mismatches", "mean iters", "mean steps"});
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    for (const int bits : {8, 16, 24}) {
      for (const char* family : {"random", "reachable", "banded"}) {
        const auto cell = run_cell(n, bits, family, n >= 32 ? 4 : 10);
        table.add_row({static_cast<std::int64_t>(cell.n), static_cast<std::int64_t>(cell.bits),
                       std::string(cell.family), static_cast<std::int64_t>(cell.graphs),
                       static_cast<std::int64_t>(cell.mismatches), cell.mean_iterations,
                       cell.mean_steps});
      }
    }
  }
  bench::emit(table);
  std::printf("Paper: \"validated through simulation\" (no numbers given).\n");
  std::printf("Measured: every cell must show 0 mismatches.\n\n");
}

void BM_PpaSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  const auto g =
      graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = mcp::solve(g, 0);
    steps = result.total_steps.total();
    benchmark::DoNotOptimize(result.solution.cost.data());
  }
  state.counters["simd_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_PpaSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DijkstraReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  const auto g =
      graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
  for (auto _ : state) {
    const auto s = baseline::dijkstra_to(g, 0);
    benchmark::DoNotOptimize(s.cost.data());
  }
}
BENCHMARK(BM_DijkstraReference)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
