// E4 — the reconfiguration advantage: per-iteration SIMD cost is
// independent of the array side n on the PPA ("it shortens, with respect
// to the simple mesh, the distance between the nodes that have to
// communicate by short-circuiting all the intermediate nodes"), while the
// plain mesh pays Θ(n) per iteration for the same DP.
//
// Reproduction: sweep n at fixed h and fixed p, measure per-iteration
// steps for PPA and mesh, fit the mesh against n (linear) and check the
// PPA series is flat.
#include <benchmark/benchmark.h>

#include "analysis/fit.hpp"
#include "baseline/mesh_mcp.hpp"
#include "bench_common.hpp"

namespace {

using namespace ppa;

constexpr int kBits = 16;
constexpr std::size_t kP = 3;

void print_tables() {
  bench::print_header("E4 — per-iteration SIMD steps vs array side n",
                      "PPA per-iteration cost is O(h), independent of n; the plain mesh "
                      "pays Theta(n)");

  util::Table table("E4: h=16, p=3, chain-with-direct workload",
                    {"n", "ppa steps/iter", "mesh steps/iter", "mesh/ppa ratio"});
  analysis::Series ppa_series{"ppa", {}, {}};
  analysis::Series mesh_series{"mesh", {}, {}};
  for (const std::size_t n : {6u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
    const auto g = bench::chain_with_direct(n, kP, kBits);
    const auto ppa_result = mcp::solve(g, 0);
    const auto mesh_result = baseline::mesh_solve(g, 0);
    const double ppa_cost = bench::per_iteration_steps(
        ppa_result.total_steps.total(), ppa_result.init_steps.total(), ppa_result.iterations);
    const double mesh_cost =
        bench::per_iteration_steps(mesh_result.total_steps.total(),
                                   mesh_result.init_steps.total(), mesh_result.iterations);
    table.add_row({static_cast<std::int64_t>(n), ppa_cost, mesh_cost, mesh_cost / ppa_cost});
    ppa_series.add(static_cast<double>(n), ppa_cost);
    mesh_series.add(static_cast<double>(n), mesh_cost);
  }
  bench::emit(table);

  const auto mesh_fit = mesh_series.fit();
  std::printf("PPA spread (max/min per-iteration steps): %.3f — flat, n-independent.\n",
              analysis::spread_ratio(ppa_series.y));
  std::printf("Mesh fit: steps/iter = %.1f + %.2f*n, R^2 = %.6f — Theta(n).\n\n",
              mesh_fit.intercept, mesh_fit.slope, mesh_fit.r_squared);
}

void BM_PpaByN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = bench::chain_with_direct(n, kP, kBits);
  for (auto _ : state) {
    const auto r = mcp::solve(g, 0);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_PpaByN)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MeshByN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = bench::chain_with_direct(n, kP, kBits);
  for (auto _ : state) {
    const auto r = baseline::mesh_solve(g, 0);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_MeshByN)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
