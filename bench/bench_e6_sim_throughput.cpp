// E6 — simulator throughput and host-parallel scaling.
//
// Not a paper claim but a property of this reproduction: the SIMD
// simulator applies every instruction to n^2 PEs, so host wall-clock per
// SIMD step scales with the array area, and the machine can split PE
// sweeps over host threads without changing any result (determinism is
// covered by the test suite; here we measure the speed).
#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_common.hpp"
#include "mcp/allpairs.hpp"
#include "ppc/plane_kernels.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ppa;

struct Throughput {
  double seconds = 0;
  std::uint64_t steps = 0;
  double pe_ops = 0;  // steps * n^2
  std::uint64_t panel_io = 0;  // PanelIo category steps (tiled runs)
};

const char* backend_name(sim::ExecBackend backend) {
  return backend == sim::ExecBackend::BitPlane ? "bitplane" : "word";
}

const char* simd_name(sim::ExecBackend backend) {
  // The word backend never touches the plane kernels; "none" keeps its
  // records distinguishable from a bitplane run forced to scalar.
  if (backend != sim::ExecBackend::BitPlane) return "none";
  return ppc::plane_kernels::variant_name(ppc::plane_kernels::active_variant());
}

/// Measurement repeats per configuration (PPA_BENCH_BEST_OF, default 1;
/// tools/run_benchmarks.sh sets 6 for committed baselines). The tables and
/// BENCH_e6.json report the fastest repeat — the standard best-of-N
/// estimator for the noise floor on a shared host. Steps are identical
/// across repeats by construction (the runs are deterministic).
int best_of() {
  static const int repeats = [] {
    const char* env = std::getenv("PPA_BENCH_BEST_OF");
    const int parsed = env != nullptr ? std::atoi(env) : 1;
    return parsed > 0 ? parsed : 1;
  }();
  return repeats;
}

template <typename Run>
Throughput best_throughput(Run&& run) {
  Throughput best = run();
  for (int i = 1; i < best_of(); ++i) {
    const Throughput t = run();
    if (t.seconds < best.seconds) best = t;
  }
  return best;
}

Throughput run_once(std::size_t n, std::size_t host_threads,
                    sim::ExecBackend backend = sim::ExecBackend::Words) {
  util::Rng rng(n);
  const auto g =
      graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = 16;
  cfg.host_threads = host_threads;
  cfg.backend = backend;
  return best_throughput([&] {
    sim::Machine machine(cfg);
    util::Stopwatch watch;
    const auto result = mcp::minimum_cost_path(machine, g, 0);
    Throughput t;
    t.seconds = watch.seconds();
    t.steps = result.total_steps.total();
    t.pe_ops = static_cast<double>(t.steps) * static_cast<double>(n * n);
    return t;
  });
}

Throughput run_all_pairs(std::size_t n, std::size_t workers,
                         sim::ExecBackend backend = sim::ExecBackend::Words,
                         std::size_t batch_width = 1) {
  util::Rng rng(n);
  const auto g =
      graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
  mcp::AllPairsOptions options;
  options.workers = workers;
  options.mcp.backend = backend;
  options.mcp.batch_width = batch_width;
  return best_throughput([&] {
    util::Stopwatch watch;
    const auto result = mcp::all_pairs(g, options);
    Throughput t;
    t.seconds = watch.seconds();
    t.steps = result.total_steps.total();
    t.pe_ops = static_cast<double>(t.steps) * static_cast<double>(n * n);
    return t;
  });
}

/// Machine-readable companion to the tables: wall-clock throughput per
/// configuration, so a perf trajectory can be tracked across commits
/// without scraping stdout. (SIMD step counts are workload properties, not
/// perf results, but they are included so a reader can recompute ops/sec.)
/// bench::PerfRecord / write_perf_records share the metrics schema's run
/// field names, which is what lets tools/perf_gate.py consume the file.
bench::PerfRecord record_of(const char* workload, sim::ExecBackend backend, std::size_t n,
                            std::size_t host_threads, const Throughput& t,
                            std::size_t batch_width = 1, std::size_t active_panels = 1) {
  bench::PerfRecord r;
  r.workload = workload;
  r.backend = backend_name(backend);
  r.n = n;
  r.host_threads = host_threads;
  r.batch_width = batch_width;
  r.active_panels = active_panels;
  r.simd_steps = t.steps;
  r.wall_seconds = t.seconds;
  r.pe_ops_per_sec = t.pe_ops / t.seconds;
  r.simd = simd_name(backend);
  return r;
}

/// Huge-graph virtualization (docs/tiling.md): n = 4096 vertices on a
/// 64 x 64 physical array, a power-law sparse graph, with the activity-
/// driven panel schedule on or off. PE-ops count the PHYSICAL array
/// (side^2), which is what the simulator actually sweeps per step.
Throughput run_tiled(std::size_t n, std::size_t side, bool active,
                     sim::ExecBackend backend) {
  util::Rng rng(n);
  const auto g = graph::power_law(n, 16, 2, 0.1, {1, 30}, rng);
  mcp::Options options;
  options.backend = backend;
  options.array_side = side;
  options.active_panels = active;
  return best_throughput([&] {
    util::Stopwatch watch;
    const auto result = mcp::solve(g, 0, options);
    Throughput t;
    t.seconds = watch.seconds();
    t.steps = result.total_steps.total();
    t.pe_ops = static_cast<double>(t.steps) * static_cast<double>(side * side);
    t.panel_io = result.total_steps.count(sim::StepCategory::PanelIo);
    return t;
  });
}

void print_tables() {
  bench::print_header("E6 — simulator throughput & host-parallel scaling",
                      "simulation artifact metric: wall-clock per SIMD step and host "
                      "thread speedup");

  util::Table table("E6: PPA MCP end-to-end on random reachable graphs (h=16)",
                    {"n", "threads", "SIMD steps", "wall ms", "PE-ops/s", "speedup vs 1T"});
  for (const std::size_t n : {32u, 64u, 96u}) {
    double base_seconds = 0;
    for (const std::size_t threads : {1u, 2u}) {
      const auto t = run_once(n, threads);
      if (threads == 1) base_seconds = t.seconds;
      table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(threads),
                     static_cast<std::int64_t>(t.steps), t.seconds * 1e3,
                     t.pe_ops / t.seconds, base_seconds / t.seconds});
    }
  }
  bench::emit(table);
  std::printf(
      "Honest result: at these array sizes one SIMD instruction sweeps only n^2 <= 9216\n"
      "elements, far below the pool's hand-off cost, so per-instruction threading LOSES\n"
      "(speedup < 1). The pool-scaling benchmark below shows the same pool winning once a\n"
      "single sweep is large enough; a production simulator would batch instructions or\n"
      "vectorize instead. Determinism across thread counts is covered by the test suite.\n\n");

  std::vector<bench::PerfRecord> records;

  // Backend comparison: the same workload (identical SIMD steps by
  // construction) executed by the word backend and the bit-plane backend.
  // The bit-plane backend packs 64 PE lanes into each uint64_t, so every
  // host instruction of an ALU sweep or bus cycle advances 64 PEs at once.
  util::Table backends("E6: word vs bit-plane backend (single destination MCP, h=16)",
                       {"n", "backend", "SIMD steps", "wall ms", "speedup vs word"});
  for (const std::size_t n : {64u, 128u}) {
    double word_seconds = 0;
    for (const sim::ExecBackend backend :
         {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
      const auto t = run_once(n, 1, backend);
      if (backend == sim::ExecBackend::Words) word_seconds = t.seconds;
      backends.add_row({static_cast<std::int64_t>(n), backend_name(backend),
                        static_cast<std::int64_t>(t.steps), t.seconds * 1e3,
                        word_seconds / t.seconds});
      records.push_back(record_of("mcp", backend, n, 1, t));
    }
  }
  bench::emit(backends);
  std::printf(
      "Both rows of each pair execute the identical SIMD instruction stream (same step\n"
      "count, bit-identical results — tests/mcp_backend_diff_test.cpp); only the host\n"
      "representation differs. The bit-plane backend's advantage grows with n until a\n"
      "row of 64-PE lanes saturates the sweep.\n\n");

  // Coarse-grained scaling: whole destination runs (not PE sweeps) are the
  // unit of work, so the thread pool's hand-off cost is amortized over a
  // full MCP run and the speedup is near-linear until workers ~ cores.
  util::Table scaling("E6: threaded all-pairs (coarse destination-level parallelism, n=32)",
                      {"backend", "workers", "SIMD steps", "wall ms", "speedup vs 1"});
  for (const sim::ExecBackend backend :
       {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    // Both backends sweep the worker counts: destination-level chunking
    // and the bit-plane representation compose, so the trajectory file
    // tracks the product speedup per worker count, not just the extremes.
    double base_seconds = 0;
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const auto t = run_all_pairs(32, workers, backend);
      if (workers == 1) base_seconds = t.seconds;
      scaling.add_row({backend_name(backend), static_cast<std::int64_t>(workers),
                       static_cast<std::int64_t>(t.steps), t.seconds * 1e3,
                       base_seconds / t.seconds});
      records.push_back(record_of("all_pairs", backend, 32, workers, t));
    }
  }
  bench::emit(scaling);
  std::printf(
      "Destination runs are independent and a worker grabs a whole chunk of them, so the\n"
      "only synchronization is one pool hand-off per chunk — speedup tracks the host's\n"
      "core count (this host reports %u). SIMD steps are identical for every worker\n"
      "count by construction; see tests/mcp_allpairs_parallel_test.cpp.\n\n",
      std::thread::hardware_concurrency());

  // Multi-destination plane batching (docs/batching.md): k destinations
  // share every weight-panel load and bus configuration of one machine
  // pass, so the bit-plane all-pairs cost amortizes across the batch.
  // Rows, iteration counts and outcomes are bit-identical to width 1
  // (tests/mcp_batch_test.cpp); only wall clock and the step profile move.
  util::Table batching("E6: multi-destination plane batching (bit-plane all-pairs, n=128)",
                       {"batch width", "SIMD steps", "wall ms", "speedup vs width 1"});
  {
    const std::size_t n = 128;
    double base_seconds = 0;
    for (const std::size_t width : {1u, 4u, 16u}) {
      const auto t = run_all_pairs(n, 1, sim::ExecBackend::BitPlane, width);
      if (width == 1) base_seconds = t.seconds;
      batching.add_row({static_cast<std::int64_t>(width), static_cast<std::int64_t>(t.steps),
                        t.seconds * 1e3, base_seconds / t.seconds});
      records.push_back(record_of("all_pairs", sim::ExecBackend::BitPlane, n, 1, t, width));
    }
  }
  bench::emit(batching);
  std::printf(
      "Width 1 is exactly the per-destination engine; wider batches load each weight\n"
      "panel once per sweep for the whole group and keep convergence host-side, so the\n"
      "speedup comes from amortized panel I/O and broadcast setup, not from changed\n"
      "results (bit-identical rows are pinned in tests/mcp_batch_test.cpp).\n\n");

  // Active-panel scheduling on a huge graph (docs/tiling.md): n = 4096 on
  // a 64 x 64 array — 64^2 = 4096 weight panels per relaxation sweep. The
  // dense schedule visits all of them; the activity-driven schedule skips
  // every panel whose source column block saw no SOW change and hides load
  // beats behind the previous panel's relax phase. Results are
  // bit-identical either way (tests/mcp_active_panels_test.cpp); only the
  // PanelIo charge and the wall clock move.
  util::Table active_table(
      "E6: active-panel scheduling (tiled MCP, n=4096 on 64x64, power-law graph)",
      {"schedule", "SIMD steps", "PanelIo steps", "wall ms", "speedup vs dense"});
  {
    const std::size_t n = 4096;
    const std::size_t side = 64;
    double dense_seconds = 0;
    for (const bool active : {false, true}) {
      const auto t = run_tiled(n, side, active, sim::ExecBackend::BitPlane);
      if (!active) dense_seconds = t.seconds;
      active_table.add_row({active ? "active" : "dense",
                            static_cast<std::int64_t>(t.steps),
                            static_cast<std::int64_t>(t.panel_io), t.seconds * 1e3,
                            dense_seconds / t.seconds});
      records.push_back(record_of("mcp_tiled", sim::ExecBackend::BitPlane, n, 1, t, 1,
                                  active ? 1 : 0));
    }
  }
  bench::emit(active_table);
  std::printf(
      "The dense row charges exactly I*ceil(n/p)^2*(p+3) PanelIo beats; the active row\n"
      "charges strictly less on this sparse graph (the skipped + overlap-hidden beats\n"
      "are pinned to close the formula exactly in tests/mcp_active_panels_test.cpp).\n\n");
  bench::write_perf_records(records, "BENCH_e6.json");
}

void BM_McpEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  util::Rng rng(n);
  const auto g =
      graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = 16;
  cfg.host_threads = threads;
  cfg.backend = state.range(2) != 0 ? sim::ExecBackend::BitPlane : sim::ExecBackend::Words;
  for (auto _ : state) {
    sim::Machine machine(cfg);
    const auto r = mcp::minimum_cost_path(machine, g, 0);
    benchmark::DoNotOptimize(r.iterations);
  }
}
// Third arg: 0 = word backend, 1 = bit-plane backend.
BENCHMARK(BM_McpEndToEnd)
    ->Args({32, 1, 0})
    ->Args({32, 2, 0})
    ->Args({64, 1, 0})
    ->Args({64, 2, 0})
    ->Args({32, 1, 1})
    ->Args({64, 1, 1})
    ->Args({128, 1, 0})
    ->Args({128, 1, 1});

void BM_BusBroadcastSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = 16;
  sim::Machine m(cfg);
  std::vector<sim::Word> src(n * n, 3);
  std::vector<sim::Flag> open(n * n, 0);
  for (std::size_t r = 0; r < n; ++r) open[r * n + r] = 1;
  for (auto _ : state) {
    auto result = m.broadcast(src, sim::Direction::East, open);
    benchmark::DoNotOptimize(result.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_BusBroadcastSweep)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_PoolSweepScaling(benchmark::State& state) {
  // The pool itself scales once a sweep is big enough: one elementwise op
  // over `elements` words (equivalent to a SIMD instruction on an array of
  // side sqrt(elements)).
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto elements = static_cast<std::size_t>(state.range(1));
  util::ThreadPool pool(threads);
  std::vector<sim::Word> a(elements, 3);
  std::vector<sim::Word> b(elements, 5);
  std::vector<sim::Word> out(elements);
  for (auto _ : state) {
    pool.parallel_for(elements, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = a[i] * 7u + b[i];
      }
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elements));
}
BENCHMARK(BM_PoolSweepScaling)
    ->Args({1, 1 << 14})
    ->Args({2, 1 << 14})
    ->Args({1, 1 << 22})
    ->Args({2, 1 << 22});

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
