// E7 — the paper's comparison claim (Sections 1 and 4): the PPA MCP
// "delivers the same performance, in terms of computational complexity,
// as the hypercube interconnection network of the Connection Machine, and
// as the Gated Connection Network", while beating the simple mesh.
//
// Reproduction: run the SAME dynamic program on all four machine models
// over the same seeded graphs and report
//   (a) end-to-end unit-cost SIMD steps and per-iteration costs,
//   (b) the communication-operation counts that carry the asymptotics
//       (bus cycles for PPA/GCN — Theta(h) per iteration; route steps for
//       the hypercube — Theta(log n); shifts for the mesh — Theta(n)),
//   (c) E7b: the PPA totals re-costed under the three bus settle-delay
//       models (Unit / Log / Linear) — the ablation of the "a bus cycle
//       costs O(1)" hardware assumption of ref [2].
#include <benchmark/benchmark.h>

#include "baseline/gcn.hpp"
#include "baseline/hypercube.hpp"
#include "baseline/mesh_mcp.hpp"
#include "bench_common.hpp"

namespace {

using namespace ppa;

constexpr int kBits = 16;

void print_comparison() {
  bench::print_header("E7 — model comparison: PPA vs GCN vs CM-hypercube vs plain mesh",
                      "PPA matches the CM hypercube and the GCN in complexity; the simple "
                      "mesh pays Theta(n) per iteration");

  util::Table table("E7a: end-to-end unit-cost SIMD steps (same graphs, same DP)",
                    {"n", "iters", "PPA", "GCN", "hypercube", "mesh", "mesh/PPA"});
  util::Table per_iter("E7a': per-iteration communication ops",
                       {"n", "PPA bus cycles", "GCN bus cycles", "HC routes", "mesh shifts"});
  for (const std::size_t n : {8u, 16u, 24u, 32u, 48u, 64u}) {
    util::Rng rng(n * 1009);
    const auto g = graph::random_reachable_digraph(
        n, kBits, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);

    const auto ppa_r = mcp::solve(g, 0);
    const auto gcn_r = baseline::gcn::solve(g, 0);
    const auto hc_r = baseline::hypercube::minimum_cost_path(g, 0);
    const auto mesh_r = baseline::mesh_solve(g, 0);

    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(ppa_r.iterations),
                   static_cast<std::int64_t>(ppa_r.total_steps.total()),
                   static_cast<std::int64_t>(gcn_r.total_steps.total()),
                   static_cast<std::int64_t>(hc_r.total_steps.total()),
                   static_cast<std::int64_t>(mesh_r.total_steps.total()),
                   static_cast<double>(mesh_r.total_steps.total()) /
                       static_cast<double>(ppa_r.total_steps.total())});

    const double iters = static_cast<double>(ppa_r.iterations);
    per_iter.add_row(
        {static_cast<std::int64_t>(n),
         static_cast<double>(ppa_r.total_steps.count(sim::StepCategory::BusOr) +
                             ppa_r.total_steps.count(sim::StepCategory::BusBroadcast)) /
             iters,
         static_cast<double>(gcn_r.total_steps.count(sim::StepCategory::BusOr) +
                             gcn_r.total_steps.count(sim::StepCategory::BusBroadcast)) /
             iters,
         static_cast<double>(hc_r.total_steps.count(sim::StepCategory::Shift)) /
             static_cast<double>(hc_r.iterations),
         static_cast<double>(mesh_r.total_steps.count(sim::StepCategory::Shift)) /
             static_cast<double>(mesh_r.iterations)});
  }
  bench::emit(table);
  bench::emit(per_iter);
  std::printf(
      "Reading: PPA and GCN per-iteration bus cycles are constant in n (Theta(h) = %d-bit\n"
      "serial minima); hypercube routes grow as 6*log2(N); mesh shifts grow linearly in n.\n"
      "\"Same complexity\" holds for PPA vs GCN vs CM (n-independent vs log n — both tiny),\n"
      "while the mesh loses by the n/h factor the paper's motivation predicts.\n\n",
      kBits);
}

void print_delay_ablation() {
  util::Table table("E7b: PPA total cost under bus settle-delay models (ablation)",
                    {"n", "Unit (paper)", "Log", "Linear", "Linear/Unit"});
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    util::Rng rng(n * 31);
    const auto g = graph::random_reachable_digraph(
        n, kBits, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
    const auto r = mcp::solve(g, 0);
    const auto unit = r.total_steps.total_under(sim::BusDelayModel::Unit);
    const auto log_cost = r.total_steps.total_under(sim::BusDelayModel::Log);
    const auto linear = r.total_steps.total_under(sim::BusDelayModel::Linear);
    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(unit),
                   static_cast<std::int64_t>(log_cost), static_cast<std::int64_t>(linear),
                   static_cast<double>(linear) / static_cast<double>(unit)});
  }
  bench::emit(table);
  std::printf(
      "If the bus did NOT settle in O(1) (ref [2]'s hardware claim), the Linear column shows\n"
      "the advantage over the mesh eroding — the reconfigurable-bus win depends on it.\n\n");
}

void BM_Model(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(n * 1009);
  const auto g = graph::random_reachable_digraph(
      n, kBits, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
  const int model = static_cast<int>(state.range(0));
  for (auto _ : state) {
    switch (model) {
      case 0: benchmark::DoNotOptimize(mcp::solve(g, 0).iterations); break;
      case 1: benchmark::DoNotOptimize(baseline::gcn::solve(g, 0).iterations); break;
      case 2:
        benchmark::DoNotOptimize(baseline::hypercube::minimum_cost_path(g, 0).iterations);
        break;
      default: benchmark::DoNotOptimize(baseline::mesh_solve(g, 0).iterations); break;
    }
  }
  static const char* kNames[] = {"ppa", "gcn", "hypercube", "mesh"};
  state.SetLabel(kNames[model]);
}
BENCHMARK(BM_Model)
    ->Args({0, 32})
    ->Args({1, 32})
    ->Args({2, 32})
    ->Args({3, 32});

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  print_delay_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
