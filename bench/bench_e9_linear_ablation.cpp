// E9 — ring vs linear buses (ablation of this repo's Ring modeling choice).
//
// The paper's listing issues ONE broadcast per data movement, which only
// reaches the whole array if the row/column buses wrap around (DESIGN.md
// §2). Real PPA buses are linear wires; the DP still runs there by
// issuing every broadcast in BOTH directions and selecting by driven-ness
// (mcp::BroadcastScheme::TwoSidedLinear, which also switches to the
// OR-probe minimum). This bench quantifies the port: identical solutions
// and iteration counts, exactly 2x the broadcast cycles, same wired-OR
// cycles.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace ppa;

mcp::Result run_scheme(const graph::WeightMatrix& g, sim::BusTopology topology,
                       mcp::BroadcastScheme scheme, mcp::MinVariant variant) {
  sim::MachineConfig cfg;
  cfg.n = g.size();
  cfg.bits = g.field().bits();
  cfg.topology = topology;
  sim::Machine machine(cfg);
  mcp::Options options;
  options.broadcast_scheme = scheme;
  options.min_variant = variant;
  return mcp::minimum_cost_path(machine, g, 0, options);
}

void print_tables() {
  bench::print_header("E9 — ring vs linear buses",
                      "the DP ports to linear buses at exactly 2x the broadcast cycles "
                      "(everything else equal)");

  util::Table table("E9: same graphs, three machine configurations (h=16)",
                    {"n", "iters", "ring+paper-min steps", "ring+orprobe steps",
                     "linear 2-sided steps", "2-sided bcast / ring bcast"});
  for (const std::size_t n : {8u, 16u, 32u, 48u}) {
    util::Rng rng(n * 271);
    const auto g = graph::random_reachable_digraph(
        n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);

    const auto ring_paper = run_scheme(g, sim::BusTopology::Ring,
                                       mcp::BroadcastScheme::SingleRing,
                                       mcp::MinVariant::Paper);
    const auto ring_probe = run_scheme(g, sim::BusTopology::Ring,
                                       mcp::BroadcastScheme::SingleRing,
                                       mcp::MinVariant::OrProbe);
    const auto linear = run_scheme(g, sim::BusTopology::Linear,
                                   mcp::BroadcastScheme::TwoSidedLinear,
                                   mcp::MinVariant::OrProbe);
    PPA_REQUIRE(ring_paper.solution.cost == linear.solution.cost &&
                    ring_probe.solution.cost == linear.solution.cost,
                "all three schemes must agree exactly");

    table.add_row(
        {static_cast<std::int64_t>(n), static_cast<std::int64_t>(ring_paper.iterations),
         static_cast<std::int64_t>(ring_paper.total_steps.total()),
         static_cast<std::int64_t>(ring_probe.total_steps.total()),
         static_cast<std::int64_t>(linear.total_steps.total()),
         static_cast<double>(linear.total_steps.count(sim::StepCategory::BusBroadcast)) /
             static_cast<double>(
                 ring_probe.total_steps.count(sim::StepCategory::BusBroadcast))});
  }
  bench::emit(table);
  std::printf(
      "Reading: the wrap-around assumption buys a constant factor (2x on broadcasts, which\n"
      "are themselves a small share of an iteration) — the O(p*h) complexity claim is\n"
      "topology-robust.\n\n");
}

void BM_Scheme(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(n * 271);
  const auto g = graph::random_reachable_digraph(
      n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0, rng);
  const bool linear = state.range(0) != 0;
  for (auto _ : state) {
    const auto r = run_scheme(
        g, linear ? sim::BusTopology::Linear : sim::BusTopology::Ring,
        linear ? mcp::BroadcastScheme::TwoSidedLinear : mcp::BroadcastScheme::SingleRing,
        linear ? mcp::MinVariant::OrProbe : mcp::MinVariant::Paper);
    benchmark::DoNotOptimize(r.iterations);
  }
  state.SetLabel(linear ? "linear-two-sided" : "ring-paper");
}
BENCHMARK(BM_Scheme)->Args({0, 32})->Args({1, 32});

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
