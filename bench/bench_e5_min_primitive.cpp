// E5 — the min()/selected_min() primitives in isolation.
//
// "The minimum among the values of all the elements of a parallel integer
// object of size h bits can be computed and made available to all the
// processors in a cluster in O(h) time."
//
// Reproduction: exact SIMD step counts of one pmin/selected_min call as a
// function of h (linear, slope = steps-per-bit) and of n (flat), plus the
// paper-min vs OR-probe-min ablation, and wall-clock timings.
#include <benchmark/benchmark.h>

#include "analysis/fit.hpp"
#include "bench_common.hpp"
#include "ppc/primitives.hpp"

namespace {

using namespace ppa;
using ppc::Pbool;
using ppc::Pint;

sim::StepCounter one_pmin(std::size_t n, int bits, bool orprobe) {
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = bits;
  sim::Machine m(cfg);
  ppc::Context ctx(m);
  util::Rng rng(n * 131 + static_cast<std::uint64_t>(bits));
  std::vector<sim::Word> data(n * n);
  for (auto& v : data) v = static_cast<sim::Word>(rng.below(m.field().infinity() + 1ull));
  const Pint src(ctx, data);
  const Pbool anchor = (ppc::col_of(ctx) == static_cast<sim::Word>(n - 1));
  const auto before = m.steps();
  if (orprobe) {
    (void)ppc::pmin_orprobe(src, sim::Direction::West, anchor);
  } else {
    (void)ppc::pmin(src, sim::Direction::West, anchor);
  }
  return m.steps().since(before);
}

void print_tables() {
  bench::print_header("E5 — min()/selected_min() primitive cost",
                      "the cluster minimum costs O(h) bus cycles, independent of the "
                      "cluster length");

  util::Table by_h("E5a: steps of one row-min (n=8) vs h",
                   {"h", "total steps", "bus_or", "bus_bcast", "steps (orprobe)"});
  analysis::Series series{"pmin(h)", {}, {}};
  // n = 8 keeps the smallest h legal (the array side must fit in the
  // h-bit field: n - 1 <= 2^h - 2).
  for (const int h : {4, 6, 8, 12, 16, 20, 24, 28, 32}) {
    const auto cost = one_pmin(8, h, false);
    const auto probe = one_pmin(8, h, true);
    by_h.add_row({static_cast<std::int64_t>(h), static_cast<std::int64_t>(cost.total()),
                  static_cast<std::int64_t>(cost.count(sim::StepCategory::BusOr)),
                  static_cast<std::int64_t>(cost.count(sim::StepCategory::BusBroadcast)),
                  static_cast<std::int64_t>(probe.total())});
    series.add(h, static_cast<double>(cost.total()));
  }
  bench::emit(by_h);
  const auto fit = series.fit();
  std::printf("Fit: steps = %.1f + %.2f*h, R^2 = %.6f (exactly affine).\n\n", fit.intercept,
              fit.slope, fit.r_squared);

  util::Table by_n("E5b: steps of one row-min (h=16) vs n — cluster length",
                   {"n", "total steps"});
  std::vector<double> totals;
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const auto cost = one_pmin(n, 16, false);
    by_n.add_row(
        {static_cast<std::int64_t>(n), static_cast<std::int64_t>(cost.total())});
    totals.push_back(static_cast<double>(cost.total()));
  }
  bench::emit(by_n);
  std::printf("Spread over n: %.3f — the bus makes the cost cluster-length independent.\n\n",
              analysis::spread_ratio(totals));
}

void BM_PminWallClock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = 16;
  sim::Machine m(cfg);
  ppc::Context ctx(m);
  util::Rng rng(9);
  std::vector<sim::Word> data(n * n);
  for (auto& v : data) v = static_cast<sim::Word>(rng.below(1000));
  const Pint src(ctx, data);
  const Pbool anchor = (ppc::col_of(ctx) == static_cast<sim::Word>(n - 1));
  for (auto _ : state) {
    const Pint r = ppc::pmin(src, sim::Direction::West, anchor);
    benchmark::DoNotOptimize(r.values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_PminWallClock)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_SelectedMinWallClock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = 16;
  sim::Machine m(cfg);
  ppc::Context ctx(m);
  const Pint src = ppc::col_of(ctx);
  const Pbool anchor = (ppc::col_of(ctx) == static_cast<sim::Word>(n - 1));
  const Pbool all(ctx, true);
  for (auto _ : state) {
    const Pint r = ppc::selected_min(src, sim::Direction::West, anchor, all);
    benchmark::DoNotOptimize(r.values().data());
  }
}
BENCHMARK(BM_SelectedMinWallClock)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
