// E10 — the power hierarchy of the paper's concluding remarks, measured.
//
// "The row/column only PPA is a less powerful model with respect to the
// Reconfigurable Mesh [1], the Gated Connection Network [5] and the
// PARBS [6] ... Nevertheless it is hardware implementable and enjoys the
// programming efficiency as the MCP algorithm shows."
//
// Demonstration problem: counting / parity of n bits.
//   * PARBS: the staircase bus exits at row == popcount — O(1) bus steps
//     regardless of n (arbitrary bus SHAPES are the extra power).
//   * PPA: row/column sub-buses cannot bend, so the best reduction is a
//     segmented-bus XOR fold — Θ(log n) steps (implemented below with the
//     public ppc API).
// The flip side — what the restriction buys — is the rest of this repo:
// the PPA remains sufficient for the O(p·h) MCP while being buildable.
#include <benchmark/benchmark.h>

#include "baseline/parbs.hpp"
#include "bench_common.hpp"
#include "ppc/primitives.hpp"
#include "util/bits.hpp"

namespace {

using namespace ppa;
using ppc::Pbool;
using ppc::Pint;

/// Parity of n bits on the PPA: pairwise XOR fold along row 0 using
/// segmented broadcasts (receivers at even multiples of the stride hear
/// the nearest sender to their east). Θ(log n) SIMD steps.
struct PpaParity {
  bool parity = false;
  sim::StepCounter steps;
};

PpaParity ppa_parity(const std::vector<bool>& bits) {
  const std::size_t n = bits.size();
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = std::max(2, util::bit_width_of(n - 1) + 1);
  sim::Machine machine(cfg);
  const auto at_entry = machine.steps();
  ppc::Context ctx(machine);

  std::vector<sim::Flag> flags(machine.pe_count(), 0);
  for (std::size_t c = 0; c < n; ++c) flags[c] = bits[c] ? 1 : 0;
  Pbool acc(ctx, flags);

  for (std::size_t stride = 1; stride < n; stride *= 2) {
    // Senders sit at odd multiples of `stride`; each even multiple with a
    // live partner absorbs its sender's accumulated parity.
    std::vector<sim::Flag> sender_bits(machine.pe_count(), 0);
    std::vector<sim::Flag> partner_bits(machine.pe_count(), 0);
    for (std::size_t c = stride; c < n; c += 2 * stride) sender_bits[c] = 1;
    for (std::size_t c = 0; c + stride < n; c += 2 * stride) partner_bits[c] = 1;
    const Pbool senders(ctx, sender_bits);
    const Pbool has_partner(ctx, partner_bits);
    // A receiver hears the nearest sender to its east (ring wrap is
    // harmless: the store is masked to receivers with a real partner).
    const Pbool incoming = ppc::broadcast(acc, sim::Direction::West, senders);
    ppc::where(ctx, has_partner, [&] { acc = acc ^ incoming; });
  }

  PpaParity result;
  result.parity = acc.at(0, 0);
  result.steps = machine.steps().since(at_entry);
  return result;
}

void print_tables() {
  bench::print_header("E10 — model power: PARBS O(1) counting vs PPA Theta(log n) parity",
                      "the PPA is 'less powerful' than PARBS (arbitrary bus shapes) but "
                      "'hardware implementable' — paper Section 4");

  util::Table table("E10: parity of n bits",
                    {"n", "PARBS steps", "PARBS bus cycles", "PPA steps", "agree"});
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    util::Rng rng(n * 37);
    std::vector<bool> bits(n);
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
      bits[i] = rng.chance(0.5);
      ones += bits[i];
    }
    const auto parbs_result = baseline::parbs::count_ones(bits);
    const auto ppa_result = ppa_parity(bits);
    PPA_REQUIRE(parbs_result.count == ones, "PARBS count must be exact");
    table.add_row(
        {static_cast<std::int64_t>(n),
         static_cast<std::int64_t>(parbs_result.steps.total()),
         static_cast<std::int64_t>(
             parbs_result.steps.count(sim::StepCategory::BusBroadcast)),
         static_cast<std::int64_t>(ppa_result.steps.total()),
         std::string(parbs_result.parity == ppa_result.parity ? "yes" : "NO")});
  }
  bench::emit(table);
  std::printf(
      "Reading: PARBS counts n bits in O(1) steps by bending ONE bus through the array\n"
      "(and gets the full popcount, not just parity); the PPA's straight sub-buses need a\n"
      "Theta(log n) fold. That is the measured content of the paper's hierarchy remark —\n"
      "and the MCP experiments E1-E7 are the measured content of 'nevertheless\n"
      "sufficient'.\n\n");
}

void BM_ParbsCount(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.chance(0.5);
  for (auto _ : state) {
    const auto r = baseline::parbs::count_ones(bits);
    benchmark::DoNotOptimize(r.count);
  }
}
BENCHMARK(BM_ParbsCount)->Arg(16)->Arg(64)->Arg(256);

void BM_PpaParity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.chance(0.5);
  for (auto _ : state) {
    const auto r = ppa_parity(bits);
    benchmark::DoNotOptimize(r.parity);
  }
}
BENCHMARK(BM_PpaParity)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
