// Shared workload builders and run helpers for the experiment benches.
//
// Every bench binary follows the same shape:
//   1. print the experiment table(s) that reproduce the paper's claim
//      (deterministic, seeded workloads; SIMD step counts from the
//      simulator), then
//   2. hand over to google-benchmark for wall-clock measurements of the
//      same code paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mcp/mcp.hpp"
#include "obs/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ppa::bench {

/// One measured configuration in a perf trajectory file (BENCH_e6.json).
/// The fields are the obs::field constants — the exact names the metrics
/// dump's "run" object uses — so tools/perf_gate.py reads bench baselines
/// and `ppa_mcp --metrics-out` dumps with the same matching logic.
struct PerfRecord {
  std::string workload;  // "mcp" | "all_pairs"
  std::string backend;   // "word" | "bitplane"
  std::size_t n = 0;
  std::size_t host_threads = 1;
  std::size_t batch_width = 1;  // destinations per machine pass (docs/batching.md)
  std::size_t active_panels = 1;  // 0 = dense every-panel sweep (docs/tiling.md)
  std::uint64_t simd_steps = 0;
  double wall_seconds = 0;
  double pe_ops_per_sec = 0;
  std::string simd = "none";  // dispatched kernel variant (bitplane runs)
};

/// Writes the perf records as a JSON array through the observability
/// layer's writer (same escaping and number formatting everywhere).
inline void write_perf_records(const std::vector<PerfRecord>& records, const char* path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return;
  }
  obs::JsonWriter w(out);
  w.begin_array();
  for (const PerfRecord& r : records) {
    w.begin_object();
    w.kv(obs::field::kWorkload, r.workload);
    w.kv(obs::field::kBackend, r.backend);
    w.kv(obs::field::kN, r.n);
    w.kv(obs::field::kHostThreads, r.host_threads);
    w.kv(obs::field::kBatchWidth, r.batch_width);
    w.kv(obs::field::kActivePanels, r.active_panels);
    w.kv(obs::field::kSimdSteps, r.simd_steps);
    w.kv(obs::field::kWallSeconds, r.wall_seconds);
    w.kv(obs::field::kPeOpsPerSec, r.pe_ops_per_sec);
    w.kv(obs::field::kSimd, r.simd);
    w.end_object();
  }
  w.end_array();
  out << "\n";
  std::printf("wrote %zu records to %s\n\n", records.size(), path);
}

/// The E2 workload: n vertices, destination 0; vertices 1..p form a chain
/// 1 -> 0, 2 -> 1, ... (unit weights), and every vertex above p has a
/// direct unit edge to 0. The maximum MCP length is exactly p, at a fixed
/// machine size n — which is what lets E2 sweep p in isolation.
inline graph::WeightMatrix chain_with_direct(std::size_t n, std::size_t p, int bits) {
  PPA_REQUIRE(p >= 1 && p < n, "need 1 <= p < n");
  graph::WeightMatrix g(n, bits);
  for (std::size_t v = 1; v <= p; ++v) g.set(v, v - 1, 1);
  for (std::size_t v = p + 1; v < n; ++v) g.set(v, 0, 1);
  return g;
}

/// Fresh host-sequential PPA machine matching a graph.
inline sim::Machine machine_for(const graph::WeightMatrix& g, std::size_t host_threads = 1) {
  sim::MachineConfig cfg;
  cfg.n = g.size();
  cfg.bits = g.field().bits();
  cfg.host_threads = host_threads;
  return sim::Machine(cfg);
}

/// Steps spent per relaxation iteration, excluding the init phase.
inline double per_iteration_steps(std::uint64_t total, std::uint64_t init,
                                  std::size_t iterations) {
  return iterations == 0 ? 0.0
                         : static_cast<double>(total - init) / static_cast<double>(iterations);
}

/// Prints the table and, when the environment variable PPA_BENCH_CSV
/// names a file, appends its CSV form there (one '# <title>' comment line
/// followed by the header + rows), so experiment sweeps are scriptable.
inline void emit(const util::Table& table) {
  table.print(std::cout);
  if (const char* path = std::getenv("PPA_BENCH_CSV"); path != nullptr && *path != '\0') {
    std::ofstream csv(path, std::ios::app);
    if (csv) csv << "# " << table.title() << '\n' << table.to_csv() << '\n';
  }
}

inline void print_header(const char* id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("Claim under test: %s\n", claim);
  std::printf("==============================================================\n\n");
}

}  // namespace ppa::bench
