// E2 — "The complexity of MCP in PPA is O(p·h), where p is the maximum
// length of the MCPs to the destination vertex d" (paper Sections 3/4;
// the concluding section's "O(p log h)" is treated as a typo — see E3).
//
// Reproduction: fix n = 32 and h = 16, sweep p with the chain_with_direct
// workload (p is exact by construction), and show that total SIMD steps
// are affine in p with an essentially perfect linear fit.
#include <benchmark/benchmark.h>

#include "analysis/fit.hpp"
#include "bench_common.hpp"

namespace {

using namespace ppa;

constexpr std::size_t kN = 32;
constexpr int kBits = 16;

void print_tables() {
  bench::print_header("E2 — SIMD steps vs p (max MCP length)",
                      "MCP costs O(p*h) SIMD steps: linear in p at fixed h and n");

  util::Table table("E2: n=32, h=16, chain-with-direct workload",
                    {"p", "iterations", "total steps", "steps/iter", "bus_or cycles"});
  analysis::Series steps_vs_p{"steps(p)", {}, {}};
  for (std::size_t p = 1; p <= 28; p += 3) {
    const auto g = bench::chain_with_direct(kN, p, kBits);
    PPA_REQUIRE(graph::max_mcp_edges(g, 0) == p, "workload p is exact by construction");
    const auto r = mcp::solve(g, 0);
    table.add_row({static_cast<std::int64_t>(p), static_cast<std::int64_t>(r.iterations),
                   static_cast<std::int64_t>(r.total_steps.total()),
                   bench::per_iteration_steps(r.total_steps.total(), r.init_steps.total(),
                                              r.iterations),
                   static_cast<std::int64_t>(r.total_steps.count(sim::StepCategory::BusOr))});
    steps_vs_p.add(static_cast<double>(p), static_cast<double>(r.total_steps.total()));
  }
  bench::emit(table);

  const auto fit = steps_vs_p.fit();
  std::printf("Linear fit: steps = %.1f + %.1f * p, R^2 = %.6f\n", fit.intercept, fit.slope,
              fit.r_squared);
  std::printf("Paper: O(p * h) — expect R^2 ~ 1 (measured above) and slope ~ const * h.\n");
  std::printf("Slope / h = %.2f SIMD steps per (p, bit) unit.\n\n", fit.slope / kBits);
}

void BM_McpByP(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto g = bench::chain_with_direct(kN, p, kBits);
  for (auto _ : state) {
    const auto r = mcp::solve(g, 0);
    benchmark::DoNotOptimize(r.iterations);
  }
  state.counters["p"] = static_cast<double>(p);
}
BENCHMARK(BM_McpByP)->Arg(2)->Arg(8)->Arg(16)->Arg(28);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
