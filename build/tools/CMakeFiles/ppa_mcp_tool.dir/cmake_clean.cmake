file(REMOVE_RECURSE
  "CMakeFiles/ppa_mcp_tool.dir/ppa_mcp.cpp.o"
  "CMakeFiles/ppa_mcp_tool.dir/ppa_mcp.cpp.o.d"
  "ppa_mcp"
  "ppa_mcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_mcp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
