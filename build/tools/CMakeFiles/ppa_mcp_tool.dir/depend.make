# Empty dependencies file for ppa_mcp_tool.
# This may be replaced when dependencies are built.
