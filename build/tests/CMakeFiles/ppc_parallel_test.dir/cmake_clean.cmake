file(REMOVE_RECURSE
  "CMakeFiles/ppc_parallel_test.dir/ppc_parallel_test.cpp.o"
  "CMakeFiles/ppc_parallel_test.dir/ppc_parallel_test.cpp.o.d"
  "ppc_parallel_test"
  "ppc_parallel_test.pdb"
  "ppc_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
