# Empty dependencies file for ppc_parallel_test.
# This may be replaced when dependencies are built.
