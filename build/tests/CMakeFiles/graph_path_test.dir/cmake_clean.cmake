file(REMOVE_RECURSE
  "CMakeFiles/graph_path_test.dir/graph_path_test.cpp.o"
  "CMakeFiles/graph_path_test.dir/graph_path_test.cpp.o.d"
  "graph_path_test"
  "graph_path_test.pdb"
  "graph_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
