# Empty compiler generated dependencies file for graph_path_test.
# This may be replaced when dependencies are built.
