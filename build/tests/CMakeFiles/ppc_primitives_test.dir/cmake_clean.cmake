file(REMOVE_RECURSE
  "CMakeFiles/ppc_primitives_test.dir/ppc_primitives_test.cpp.o"
  "CMakeFiles/ppc_primitives_test.dir/ppc_primitives_test.cpp.o.d"
  "ppc_primitives_test"
  "ppc_primitives_test.pdb"
  "ppc_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
