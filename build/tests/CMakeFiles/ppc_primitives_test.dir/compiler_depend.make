# Empty compiler generated dependencies file for ppc_primitives_test.
# This may be replaced when dependencies are built.
