# Empty compiler generated dependencies file for graph_solution_io_test.
# This may be replaced when dependencies are built.
