file(REMOVE_RECURSE
  "CMakeFiles/ppc_program_fuzz_test.dir/ppc_program_fuzz_test.cpp.o"
  "CMakeFiles/ppc_program_fuzz_test.dir/ppc_program_fuzz_test.cpp.o.d"
  "ppc_program_fuzz_test"
  "ppc_program_fuzz_test.pdb"
  "ppc_program_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_program_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
