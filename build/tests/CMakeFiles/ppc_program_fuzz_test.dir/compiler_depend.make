# Empty compiler generated dependencies file for ppc_program_fuzz_test.
# This may be replaced when dependencies are built.
