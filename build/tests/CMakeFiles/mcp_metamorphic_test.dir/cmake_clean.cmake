file(REMOVE_RECURSE
  "CMakeFiles/mcp_metamorphic_test.dir/mcp_metamorphic_test.cpp.o"
  "CMakeFiles/mcp_metamorphic_test.dir/mcp_metamorphic_test.cpp.o.d"
  "mcp_metamorphic_test"
  "mcp_metamorphic_test.pdb"
  "mcp_metamorphic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcp_metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
