# Empty dependencies file for mcp_metamorphic_test.
# This may be replaced when dependencies are built.
