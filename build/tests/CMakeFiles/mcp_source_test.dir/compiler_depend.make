# Empty compiler generated dependencies file for mcp_source_test.
# This may be replaced when dependencies are built.
