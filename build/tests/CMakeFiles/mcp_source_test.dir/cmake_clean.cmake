file(REMOVE_RECURSE
  "CMakeFiles/mcp_source_test.dir/mcp_source_test.cpp.o"
  "CMakeFiles/mcp_source_test.dir/mcp_source_test.cpp.o.d"
  "mcp_source_test"
  "mcp_source_test.pdb"
  "mcp_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcp_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
