# Empty dependencies file for sim_step_counter_test.
# This may be replaced when dependencies are built.
