# Empty dependencies file for analysis_fit_test.
# This may be replaced when dependencies are built.
