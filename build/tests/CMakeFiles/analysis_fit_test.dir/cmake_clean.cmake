file(REMOVE_RECURSE
  "CMakeFiles/analysis_fit_test.dir/analysis_fit_test.cpp.o"
  "CMakeFiles/analysis_fit_test.dir/analysis_fit_test.cpp.o.d"
  "analysis_fit_test"
  "analysis_fit_test.pdb"
  "analysis_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
