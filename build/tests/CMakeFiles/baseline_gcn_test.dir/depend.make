# Empty dependencies file for baseline_gcn_test.
# This may be replaced when dependencies are built.
