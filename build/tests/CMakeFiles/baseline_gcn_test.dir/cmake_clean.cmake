file(REMOVE_RECURSE
  "CMakeFiles/baseline_gcn_test.dir/baseline_gcn_test.cpp.o"
  "CMakeFiles/baseline_gcn_test.dir/baseline_gcn_test.cpp.o.d"
  "baseline_gcn_test"
  "baseline_gcn_test.pdb"
  "baseline_gcn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_gcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
