# Empty compiler generated dependencies file for graph_matrix_test.
# This may be replaced when dependencies are built.
