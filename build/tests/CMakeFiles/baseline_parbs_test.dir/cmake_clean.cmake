file(REMOVE_RECURSE
  "CMakeFiles/baseline_parbs_test.dir/baseline_parbs_test.cpp.o"
  "CMakeFiles/baseline_parbs_test.dir/baseline_parbs_test.cpp.o.d"
  "baseline_parbs_test"
  "baseline_parbs_test.pdb"
  "baseline_parbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_parbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
