# Empty compiler generated dependencies file for baseline_parbs_test.
# This may be replaced when dependencies are built.
