file(REMOVE_RECURSE
  "CMakeFiles/ppc_priority_test.dir/ppc_priority_test.cpp.o"
  "CMakeFiles/ppc_priority_test.dir/ppc_priority_test.cpp.o.d"
  "ppc_priority_test"
  "ppc_priority_test.pdb"
  "ppc_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
