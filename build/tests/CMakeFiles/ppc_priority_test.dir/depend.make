# Empty dependencies file for ppc_priority_test.
# This may be replaced when dependencies are built.
