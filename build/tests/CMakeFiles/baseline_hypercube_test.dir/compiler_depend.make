# Empty compiler generated dependencies file for baseline_hypercube_test.
# This may be replaced when dependencies are built.
