file(REMOVE_RECURSE
  "CMakeFiles/baseline_hypercube_test.dir/baseline_hypercube_test.cpp.o"
  "CMakeFiles/baseline_hypercube_test.dir/baseline_hypercube_test.cpp.o.d"
  "baseline_hypercube_test"
  "baseline_hypercube_test.pdb"
  "baseline_hypercube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_hypercube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
