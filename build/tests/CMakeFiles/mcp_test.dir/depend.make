# Empty dependencies file for mcp_test.
# This may be replaced when dependencies are built.
