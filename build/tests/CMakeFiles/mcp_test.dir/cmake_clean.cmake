file(REMOVE_RECURSE
  "CMakeFiles/mcp_test.dir/mcp_test.cpp.o"
  "CMakeFiles/mcp_test.dir/mcp_test.cpp.o.d"
  "mcp_test"
  "mcp_test.pdb"
  "mcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
