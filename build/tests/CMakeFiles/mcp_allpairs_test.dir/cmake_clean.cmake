file(REMOVE_RECURSE
  "CMakeFiles/mcp_allpairs_test.dir/mcp_allpairs_test.cpp.o"
  "CMakeFiles/mcp_allpairs_test.dir/mcp_allpairs_test.cpp.o.d"
  "mcp_allpairs_test"
  "mcp_allpairs_test.pdb"
  "mcp_allpairs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcp_allpairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
