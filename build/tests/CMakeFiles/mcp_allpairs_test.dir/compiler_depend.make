# Empty compiler generated dependencies file for mcp_allpairs_test.
# This may be replaced when dependencies are built.
