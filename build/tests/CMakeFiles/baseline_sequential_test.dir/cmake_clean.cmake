file(REMOVE_RECURSE
  "CMakeFiles/baseline_sequential_test.dir/baseline_sequential_test.cpp.o"
  "CMakeFiles/baseline_sequential_test.dir/baseline_sequential_test.cpp.o.d"
  "baseline_sequential_test"
  "baseline_sequential_test.pdb"
  "baseline_sequential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
