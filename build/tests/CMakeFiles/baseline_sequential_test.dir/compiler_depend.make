# Empty compiler generated dependencies file for baseline_sequential_test.
# This may be replaced when dependencies are built.
