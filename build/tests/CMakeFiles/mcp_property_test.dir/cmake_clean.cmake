file(REMOVE_RECURSE
  "CMakeFiles/mcp_property_test.dir/mcp_property_test.cpp.o"
  "CMakeFiles/mcp_property_test.dir/mcp_property_test.cpp.o.d"
  "mcp_property_test"
  "mcp_property_test.pdb"
  "mcp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
