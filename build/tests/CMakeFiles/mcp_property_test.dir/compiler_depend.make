# Empty compiler generated dependencies file for mcp_property_test.
# This may be replaced when dependencies are built.
