file(REMOVE_RECURSE
  "CMakeFiles/analysis_stats_test.dir/analysis_stats_test.cpp.o"
  "CMakeFiles/analysis_stats_test.dir/analysis_stats_test.cpp.o.d"
  "analysis_stats_test"
  "analysis_stats_test.pdb"
  "analysis_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
