# Empty dependencies file for sim_bus_fuzz_test.
# This may be replaced when dependencies are built.
