file(REMOVE_RECURSE
  "CMakeFiles/sim_bus_fuzz_test.dir/sim_bus_fuzz_test.cpp.o"
  "CMakeFiles/sim_bus_fuzz_test.dir/sim_bus_fuzz_test.cpp.o.d"
  "sim_bus_fuzz_test"
  "sim_bus_fuzz_test.pdb"
  "sim_bus_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_bus_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
