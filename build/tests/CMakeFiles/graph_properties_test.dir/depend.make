# Empty dependencies file for graph_properties_test.
# This may be replaced when dependencies are built.
