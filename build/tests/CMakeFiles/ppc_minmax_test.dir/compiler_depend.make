# Empty compiler generated dependencies file for ppc_minmax_test.
# This may be replaced when dependencies are built.
