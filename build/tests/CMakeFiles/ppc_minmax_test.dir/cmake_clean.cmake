file(REMOVE_RECURSE
  "CMakeFiles/ppc_minmax_test.dir/ppc_minmax_test.cpp.o"
  "CMakeFiles/ppc_minmax_test.dir/ppc_minmax_test.cpp.o.d"
  "ppc_minmax_test"
  "ppc_minmax_test.pdb"
  "ppc_minmax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_minmax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
