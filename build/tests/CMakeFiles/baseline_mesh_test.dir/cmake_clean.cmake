file(REMOVE_RECURSE
  "CMakeFiles/baseline_mesh_test.dir/baseline_mesh_test.cpp.o"
  "CMakeFiles/baseline_mesh_test.dir/baseline_mesh_test.cpp.o.d"
  "baseline_mesh_test"
  "baseline_mesh_test.pdb"
  "baseline_mesh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_mesh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
