# Empty dependencies file for util_saturating_test.
# This may be replaced when dependencies are built.
