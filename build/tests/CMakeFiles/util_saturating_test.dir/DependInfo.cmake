
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_saturating_test.cpp" "tests/CMakeFiles/util_saturating_test.dir/util_saturating_test.cpp.o" "gcc" "tests/CMakeFiles/util_saturating_test.dir/util_saturating_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/ppa_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/mcp/CMakeFiles/ppa_mcp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ppc/CMakeFiles/ppa_ppc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
