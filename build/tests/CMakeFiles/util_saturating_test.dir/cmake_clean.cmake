file(REMOVE_RECURSE
  "CMakeFiles/util_saturating_test.dir/util_saturating_test.cpp.o"
  "CMakeFiles/util_saturating_test.dir/util_saturating_test.cpp.o.d"
  "util_saturating_test"
  "util_saturating_test.pdb"
  "util_saturating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_saturating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
