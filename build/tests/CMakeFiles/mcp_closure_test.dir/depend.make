# Empty dependencies file for mcp_closure_test.
# This may be replaced when dependencies are built.
