file(REMOVE_RECURSE
  "CMakeFiles/mcp_closure_test.dir/mcp_closure_test.cpp.o"
  "CMakeFiles/mcp_closure_test.dir/mcp_closure_test.cpp.o.d"
  "mcp_closure_test"
  "mcp_closure_test.pdb"
  "mcp_closure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcp_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
