# Empty dependencies file for grid_router.
# This may be replaced when dependencies are built.
