file(REMOVE_RECURSE
  "CMakeFiles/grid_router.dir/grid_router.cpp.o"
  "CMakeFiles/grid_router.dir/grid_router.cpp.o.d"
  "grid_router"
  "grid_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
