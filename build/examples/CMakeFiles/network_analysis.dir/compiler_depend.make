# Empty compiler generated dependencies file for network_analysis.
# This may be replaced when dependencies are built.
