file(REMOVE_RECURSE
  "CMakeFiles/network_analysis.dir/network_analysis.cpp.o"
  "CMakeFiles/network_analysis.dir/network_analysis.cpp.o.d"
  "network_analysis"
  "network_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
