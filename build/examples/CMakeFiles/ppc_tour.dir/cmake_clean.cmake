file(REMOVE_RECURSE
  "CMakeFiles/ppc_tour.dir/ppc_tour.cpp.o"
  "CMakeFiles/ppc_tour.dir/ppc_tour.cpp.o.d"
  "ppc_tour"
  "ppc_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
