# Empty compiler generated dependencies file for ppc_tour.
# This may be replaced when dependencies are built.
