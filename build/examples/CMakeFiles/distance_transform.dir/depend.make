# Empty dependencies file for distance_transform.
# This may be replaced when dependencies are built.
