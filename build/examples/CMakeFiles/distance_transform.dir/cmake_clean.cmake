file(REMOVE_RECURSE
  "CMakeFiles/distance_transform.dir/distance_transform.cpp.o"
  "CMakeFiles/distance_transform.dir/distance_transform.cpp.o.d"
  "distance_transform"
  "distance_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
