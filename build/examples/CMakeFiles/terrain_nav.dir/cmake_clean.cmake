file(REMOVE_RECURSE
  "CMakeFiles/terrain_nav.dir/terrain_nav.cpp.o"
  "CMakeFiles/terrain_nav.dir/terrain_nav.cpp.o.d"
  "terrain_nav"
  "terrain_nav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_nav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
