# Empty dependencies file for terrain_nav.
# This may be replaced when dependencies are built.
