file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_model_power.dir/bench_e10_model_power.cpp.o"
  "CMakeFiles/bench_e10_model_power.dir/bench_e10_model_power.cpp.o.d"
  "bench_e10_model_power"
  "bench_e10_model_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_model_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
