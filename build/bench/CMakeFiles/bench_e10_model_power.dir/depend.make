# Empty dependencies file for bench_e10_model_power.
# This may be replaced when dependencies are built.
