file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_min_primitive.dir/bench_e5_min_primitive.cpp.o"
  "CMakeFiles/bench_e5_min_primitive.dir/bench_e5_min_primitive.cpp.o.d"
  "bench_e5_min_primitive"
  "bench_e5_min_primitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_min_primitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
