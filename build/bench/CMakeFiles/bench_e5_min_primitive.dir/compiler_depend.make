# Empty compiler generated dependencies file for bench_e5_min_primitive.
# This may be replaced when dependencies are built.
