# Empty dependencies file for bench_e7_model_comparison.
# This may be replaced when dependencies are built.
