file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_steps_vs_h.dir/bench_e3_steps_vs_h.cpp.o"
  "CMakeFiles/bench_e3_steps_vs_h.dir/bench_e3_steps_vs_h.cpp.o.d"
  "bench_e3_steps_vs_h"
  "bench_e3_steps_vs_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_steps_vs_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
