# Empty dependencies file for bench_e3_steps_vs_h.
# This may be replaced when dependencies are built.
