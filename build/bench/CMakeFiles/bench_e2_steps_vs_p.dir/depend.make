# Empty dependencies file for bench_e2_steps_vs_p.
# This may be replaced when dependencies are built.
