file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_extensions.dir/bench_e8_extensions.cpp.o"
  "CMakeFiles/bench_e8_extensions.dir/bench_e8_extensions.cpp.o.d"
  "bench_e8_extensions"
  "bench_e8_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
