# Empty compiler generated dependencies file for bench_e4_steps_vs_n.
# This may be replaced when dependencies are built.
