file(REMOVE_RECURSE
  "CMakeFiles/ppa_mcp.dir/allpairs.cpp.o"
  "CMakeFiles/ppa_mcp.dir/allpairs.cpp.o.d"
  "CMakeFiles/ppa_mcp.dir/closure.cpp.o"
  "CMakeFiles/ppa_mcp.dir/closure.cpp.o.d"
  "CMakeFiles/ppa_mcp.dir/mcp.cpp.o"
  "CMakeFiles/ppa_mcp.dir/mcp.cpp.o.d"
  "libppa_mcp.a"
  "libppa_mcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_mcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
