file(REMOVE_RECURSE
  "libppa_mcp.a"
)
