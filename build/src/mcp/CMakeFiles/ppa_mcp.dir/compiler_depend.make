# Empty compiler generated dependencies file for ppa_mcp.
# This may be replaced when dependencies are built.
