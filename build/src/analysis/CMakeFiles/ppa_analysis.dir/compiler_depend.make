# Empty compiler generated dependencies file for ppa_analysis.
# This may be replaced when dependencies are built.
