file(REMOVE_RECURSE
  "CMakeFiles/ppa_analysis.dir/fit.cpp.o"
  "CMakeFiles/ppa_analysis.dir/fit.cpp.o.d"
  "CMakeFiles/ppa_analysis.dir/stats.cpp.o"
  "CMakeFiles/ppa_analysis.dir/stats.cpp.o.d"
  "libppa_analysis.a"
  "libppa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
