file(REMOVE_RECURSE
  "libppa_analysis.a"
)
