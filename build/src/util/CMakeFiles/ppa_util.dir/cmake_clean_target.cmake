file(REMOVE_RECURSE
  "libppa_util.a"
)
