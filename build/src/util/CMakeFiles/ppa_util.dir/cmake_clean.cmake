file(REMOVE_RECURSE
  "CMakeFiles/ppa_util.dir/cli.cpp.o"
  "CMakeFiles/ppa_util.dir/cli.cpp.o.d"
  "CMakeFiles/ppa_util.dir/logging.cpp.o"
  "CMakeFiles/ppa_util.dir/logging.cpp.o.d"
  "CMakeFiles/ppa_util.dir/rng.cpp.o"
  "CMakeFiles/ppa_util.dir/rng.cpp.o.d"
  "CMakeFiles/ppa_util.dir/table.cpp.o"
  "CMakeFiles/ppa_util.dir/table.cpp.o.d"
  "CMakeFiles/ppa_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ppa_util.dir/thread_pool.cpp.o.d"
  "libppa_util.a"
  "libppa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
