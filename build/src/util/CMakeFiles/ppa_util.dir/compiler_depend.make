# Empty compiler generated dependencies file for ppa_util.
# This may be replaced when dependencies are built.
