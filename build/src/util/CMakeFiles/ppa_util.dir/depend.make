# Empty dependencies file for ppa_util.
# This may be replaced when dependencies are built.
