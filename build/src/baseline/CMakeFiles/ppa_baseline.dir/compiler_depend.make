# Empty compiler generated dependencies file for ppa_baseline.
# This may be replaced when dependencies are built.
