file(REMOVE_RECURSE
  "CMakeFiles/ppa_baseline.dir/gcn.cpp.o"
  "CMakeFiles/ppa_baseline.dir/gcn.cpp.o.d"
  "CMakeFiles/ppa_baseline.dir/hypercube.cpp.o"
  "CMakeFiles/ppa_baseline.dir/hypercube.cpp.o.d"
  "CMakeFiles/ppa_baseline.dir/mesh_mcp.cpp.o"
  "CMakeFiles/ppa_baseline.dir/mesh_mcp.cpp.o.d"
  "CMakeFiles/ppa_baseline.dir/parbs.cpp.o"
  "CMakeFiles/ppa_baseline.dir/parbs.cpp.o.d"
  "CMakeFiles/ppa_baseline.dir/sequential.cpp.o"
  "CMakeFiles/ppa_baseline.dir/sequential.cpp.o.d"
  "libppa_baseline.a"
  "libppa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
