# Empty dependencies file for ppa_baseline.
# This may be replaced when dependencies are built.
