file(REMOVE_RECURSE
  "libppa_baseline.a"
)
