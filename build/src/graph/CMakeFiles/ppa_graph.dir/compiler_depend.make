# Empty compiler generated dependencies file for ppa_graph.
# This may be replaced when dependencies are built.
