
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/ppa_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/ppa_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/ppa_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/ppa_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/path.cpp" "src/graph/CMakeFiles/ppa_graph.dir/path.cpp.o" "gcc" "src/graph/CMakeFiles/ppa_graph.dir/path.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/graph/CMakeFiles/ppa_graph.dir/properties.cpp.o" "gcc" "src/graph/CMakeFiles/ppa_graph.dir/properties.cpp.o.d"
  "/root/repo/src/graph/solution_io.cpp" "src/graph/CMakeFiles/ppa_graph.dir/solution_io.cpp.o" "gcc" "src/graph/CMakeFiles/ppa_graph.dir/solution_io.cpp.o.d"
  "/root/repo/src/graph/weight_matrix.cpp" "src/graph/CMakeFiles/ppa_graph.dir/weight_matrix.cpp.o" "gcc" "src/graph/CMakeFiles/ppa_graph.dir/weight_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
