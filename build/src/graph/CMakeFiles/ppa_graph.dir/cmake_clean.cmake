file(REMOVE_RECURSE
  "CMakeFiles/ppa_graph.dir/generators.cpp.o"
  "CMakeFiles/ppa_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ppa_graph.dir/io.cpp.o"
  "CMakeFiles/ppa_graph.dir/io.cpp.o.d"
  "CMakeFiles/ppa_graph.dir/path.cpp.o"
  "CMakeFiles/ppa_graph.dir/path.cpp.o.d"
  "CMakeFiles/ppa_graph.dir/properties.cpp.o"
  "CMakeFiles/ppa_graph.dir/properties.cpp.o.d"
  "CMakeFiles/ppa_graph.dir/solution_io.cpp.o"
  "CMakeFiles/ppa_graph.dir/solution_io.cpp.o.d"
  "CMakeFiles/ppa_graph.dir/weight_matrix.cpp.o"
  "CMakeFiles/ppa_graph.dir/weight_matrix.cpp.o.d"
  "libppa_graph.a"
  "libppa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
