file(REMOVE_RECURSE
  "libppa_graph.a"
)
