file(REMOVE_RECURSE
  "CMakeFiles/ppa_sim.dir/bus.cpp.o"
  "CMakeFiles/ppa_sim.dir/bus.cpp.o.d"
  "CMakeFiles/ppa_sim.dir/machine.cpp.o"
  "CMakeFiles/ppa_sim.dir/machine.cpp.o.d"
  "CMakeFiles/ppa_sim.dir/step_counter.cpp.o"
  "CMakeFiles/ppa_sim.dir/step_counter.cpp.o.d"
  "CMakeFiles/ppa_sim.dir/trace.cpp.o"
  "CMakeFiles/ppa_sim.dir/trace.cpp.o.d"
  "libppa_sim.a"
  "libppa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
