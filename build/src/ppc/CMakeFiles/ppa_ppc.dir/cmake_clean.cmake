file(REMOVE_RECURSE
  "CMakeFiles/ppa_ppc.dir/context.cpp.o"
  "CMakeFiles/ppa_ppc.dir/context.cpp.o.d"
  "CMakeFiles/ppa_ppc.dir/parallel.cpp.o"
  "CMakeFiles/ppa_ppc.dir/parallel.cpp.o.d"
  "CMakeFiles/ppa_ppc.dir/primitives.cpp.o"
  "CMakeFiles/ppa_ppc.dir/primitives.cpp.o.d"
  "libppa_ppc.a"
  "libppa_ppc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_ppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
