file(REMOVE_RECURSE
  "libppa_ppc.a"
)
