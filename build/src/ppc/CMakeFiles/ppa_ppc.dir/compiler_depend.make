# Empty compiler generated dependencies file for ppa_ppc.
# This may be replaced when dependencies are built.
