
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppc/context.cpp" "src/ppc/CMakeFiles/ppa_ppc.dir/context.cpp.o" "gcc" "src/ppc/CMakeFiles/ppa_ppc.dir/context.cpp.o.d"
  "/root/repo/src/ppc/parallel.cpp" "src/ppc/CMakeFiles/ppa_ppc.dir/parallel.cpp.o" "gcc" "src/ppc/CMakeFiles/ppa_ppc.dir/parallel.cpp.o.d"
  "/root/repo/src/ppc/primitives.cpp" "src/ppc/CMakeFiles/ppa_ppc.dir/primitives.cpp.o" "gcc" "src/ppc/CMakeFiles/ppa_ppc.dir/primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ppa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
