// Priority-resolution idioms on linear buses: has_upstream /
// first_in_line / nearest_upstream.
#include <gtest/gtest.h>

#include "ppc/primitives.hpp"
#include "util/rng.hpp"

namespace ppa::ppc {
namespace {

using sim::Direction;

sim::MachineConfig linear_config(std::size_t n, int bits = 8) {
  sim::MachineConfig c;
  c.n = n;
  c.bits = bits;
  c.topology = sim::BusTopology::Linear;
  return c;
}

Pbool flags_at(Context& ctx, std::initializer_list<std::pair<std::size_t, std::size_t>> rcs) {
  std::vector<Flag> bits(ctx.pe_count(), 0);
  for (const auto& [r, c] : rcs) bits[r * ctx.n() + c] = 1;
  return Pbool(ctx, bits);
}

TEST(Priority, HasUpstreamEastIsExclusivePrefixOr) {
  sim::Machine m(linear_config(4));
  Context ctx(m);
  const Pbool flags = flags_at(ctx, {{0, 1}, {0, 3}});
  const Pbool prefix = has_upstream(flags, Direction::East);
  // Row 0 flags at columns 1, 3: strictly-west coverage is columns 2, 3.
  EXPECT_FALSE(prefix.at(0, 0));
  EXPECT_FALSE(prefix.at(0, 1));  // exclusive: the flag itself not counted
  EXPECT_TRUE(prefix.at(0, 2));
  EXPECT_TRUE(prefix.at(0, 3));
  // Flag-free rows see nothing.
  for (std::size_t c = 0; c < 4; ++c) EXPECT_FALSE(prefix.at(2, c));
}

TEST(Priority, HasUpstreamWorksInAllDirections) {
  sim::Machine m(linear_config(3));
  Context ctx(m);
  const Pbool flags = flags_at(ctx, {{1, 1}});
  EXPECT_TRUE(has_upstream(flags, Direction::East).at(1, 2));
  EXPECT_TRUE(has_upstream(flags, Direction::West).at(1, 0));
  EXPECT_TRUE(has_upstream(flags, Direction::South).at(2, 1));
  EXPECT_TRUE(has_upstream(flags, Direction::North).at(0, 1));
  EXPECT_FALSE(has_upstream(flags, Direction::East).at(1, 0));
  EXPECT_FALSE(has_upstream(flags, Direction::East).at(1, 1));
}

TEST(Priority, RequiresLinearTopology) {
  sim::MachineConfig cfg;
  cfg.n = 3;
  cfg.bits = 8;
  sim::Machine m(cfg);  // Ring
  Context ctx(m);
  const Pbool flags(ctx, false);
  EXPECT_THROW((void)has_upstream(flags, Direction::East), util::ContractError);
}

TEST(Priority, FirstInLinePicksExactlyOneLeaderPerFlaggedLine) {
  sim::Machine m(linear_config(5));
  Context ctx(m);
  util::Rng rng(9);
  std::vector<Flag> bits(25);
  for (auto& b : bits) b = rng.chance(0.4) ? Flag{1} : Flag{0};
  const Pbool flags(ctx, bits);
  const Pbool leader = first_in_line(flags, Direction::East);
  for (std::size_t r = 0; r < 5; ++r) {
    std::size_t expected_col = 5;
    for (std::size_t c = 0; c < 5; ++c) {
      if (bits[r * 5 + c]) {
        expected_col = c;
        break;
      }
    }
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(leader.at(r, c), expected_col == c) << "row " << r << " col " << c;
    }
  }
}

TEST(Priority, NearestUpstreamDeliversClosestFlaggedPayload) {
  sim::Machine m(linear_config(5));
  Context ctx(m);
  const Pbool flags = flags_at(ctx, {{0, 0}, {0, 3}});
  const Pint got = nearest_upstream(col_of(ctx) + Word{100}, flags, Direction::East);
  const Pbool ok = driven_mask(got);
  EXPECT_FALSE(ok.at(0, 0));  // nothing west of column 0
  EXPECT_EQ(got.at(0, 1), 100u);
  EXPECT_EQ(got.at(0, 2), 100u);
  EXPECT_EQ(got.at(0, 3), 100u);  // the flag at 3 hears the one at 0
  EXPECT_EQ(got.at(0, 4), 103u);  // nearest flagged PE west of col 4 is col 3
}

TEST(Priority, NearestUpstreamWrapsOnRing) {
  sim::MachineConfig cfg;
  cfg.n = 4;
  cfg.bits = 8;
  sim::Machine m(cfg);
  Context ctx(m);
  const Pbool flags = flags_at(ctx, {{0, 2}});
  const Pint got = nearest_upstream(col_of(ctx) + Word{50}, flags, Direction::East);
  EXPECT_EQ(got.at(0, 0), 52u);  // wraps past the row end
  EXPECT_TRUE(got.fully_driven() == false || true);  // rows without flags float
}

}  // namespace
}  // namespace ppa::ppc
