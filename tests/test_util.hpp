// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "baseline/sequential.hpp"
#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"

namespace ppa::test {

/// Asserts that `solution` is a fully correct single-destination solution
/// of `g`: costs equal Dijkstra's and every finite-cost PTN chain traces a
/// path of exactly the claimed cost.
inline void expect_solves(const graph::WeightMatrix& g, const graph::McpSolution& solution,
                          const std::string& label) {
  const graph::McpSolution reference = baseline::dijkstra_to(g, solution.destination);
  const graph::VerifyResult verdict = graph::verify_solution(g, solution, reference.cost);
  EXPECT_TRUE(verdict.ok) << label << ": " << verdict.detail;
}

/// A 4-vertex graph with a unique shortest-path structure toward vertex 3:
///   0 -(2)-> 1 -(3)-> 3,  0 -(9)-> 3,  2 -(1)-> 3,  2 -(1)-> 0
/// costs to 3: {5, 3, 1, 0}; next hops: {1, 3, 3, 3}.
inline graph::WeightMatrix tiny_graph(int bits = 8) {
  graph::WeightMatrix g(4, bits);
  g.set(0, 1, 2);
  g.set(1, 3, 3);
  g.set(0, 3, 9);
  g.set(2, 3, 1);
  g.set(2, 0, 1);
  return g;
}

}  // namespace ppa::test
