// Fault injection on a VIRTUALIZED array: the physical machine is a small
// p x p panel engine (p < n), so a single defective PE or bus segment is
// revisited by every panel of every iteration — much hotter than on a full
// array. The robustness contract is unchanged: a run is either Verified
// and exactly right, or it reports a structured fault event; with retries
// the fault-free oracle (same p x p geometry — tiled runs retry tiled)
// recovers every scenario; and no silently wrong row ever escapes, on
// either execution backend.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/mcp.hpp"
#include "sim/fault_model.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using sim::FaultKind;
using sim::FaultModel;

enum class FaultClass { Dead, StuckOpen, StuckClosed, StuckBit, Mixed };

const char* name_of(FaultClass c) {
  switch (c) {
    case FaultClass::Dead: return "dead";
    case FaultClass::StuckOpen: return "stuck-open";
    case FaultClass::StuckClosed: return "stuck-closed";
    case FaultClass::StuckBit: return "stuck-bit";
    case FaultClass::Mixed: return "mixed";
  }
  return "?";
}

/// Defects land on the PHYSICAL array, so coordinates are drawn below p,
/// not n — the machine the solver builds for a tiled run is p x p.
FaultModel model_for(FaultClass c, std::size_t p, int bits, util::Rng& rng) {
  if (c == FaultClass::Mixed) return FaultModel::random(p, bits, rng.next(), 3);
  FaultModel m;
  const std::size_t count = 1 + rng.below(2);
  for (std::size_t k = 0; k < count; ++k) {
    sim::Fault f;
    f.axis = rng.below(2) == 0 ? sim::Axis::Row : sim::Axis::Column;
    f.row = rng.below(p);
    f.col = rng.below(p);
    switch (c) {
      case FaultClass::Dead: f.kind = FaultKind::DeadPe; break;
      case FaultClass::StuckOpen: f.kind = FaultKind::StuckOpen; break;
      case FaultClass::StuckClosed: f.kind = FaultKind::StuckClosed; break;
      case FaultClass::StuckBit:
        f.kind = FaultKind::StuckBit;
        f.bit = static_cast<int>(rng.below(static_cast<std::size_t>(bits)));
        f.stuck_value = rng.below(2) == 1;
        break;
      case FaultClass::Mixed: break;
    }
    m.add(f);
  }
  return m;
}

void expect_never_silently_wrong(const graph::WeightMatrix& g, const Result& r,
                                 const std::string& label) {
  if (r.outcome == SolveOutcome::Verified) {
    test::expect_solves(g, r.solution, label + " (verified must be exact)");
  } else {
    EXPECT_NE(r.outcome, SolveOutcome::Unchecked) << label;
    EXPECT_FALSE(r.fault_events.empty())
        << label << ": non-verified outcome carries no fault event";
  }
}

TEST(McpTiledFaultInjection, FuzzAllClassesOnSmallPhysicalArrays) {
  const FaultClass classes[] = {FaultClass::Dead, FaultClass::StuckOpen,
                                FaultClass::StuckClosed, FaultClass::StuckBit,
                                FaultClass::Mixed};
  struct Geometry {
    std::size_t n;
    std::size_t p;
  };
  const Geometry geometries[] = {{10, 4}, {16, 4}, {13, 5}};
  std::size_t cases = 0;
  std::size_t recovered = 0;
  for (const FaultClass fault_class : classes) {
    for (const Geometry geo : geometries) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        util::Rng rng(seed * 900 + geo.n * 10 + static_cast<std::uint64_t>(fault_class));
        const int bits = 8 + static_cast<int>(rng.below(2)) * 4;  // 8 or 12
        const auto g =
            graph::random_reachable_digraph(geo.n, bits, 0.2, {1, 20}, 0, rng);
        const graph::Vertex dest = static_cast<graph::Vertex>(rng.below(geo.n));
        const FaultModel model = model_for(fault_class, geo.p, bits, rng);
        std::ostringstream label;
        label << "class=" << name_of(fault_class) << " n=" << geo.n << " p=" << geo.p
              << " seed=" << seed << " dest=" << dest;

        Options base;
        base.verify = true;
        base.faults = model;
        base.array_side = geo.p;

        // --- no-retry runs, both backends: never silently wrong, and
        // bit-identical under identical faults despite the panel sweep.
        Options plain = base;
        plain.backend = sim::ExecBackend::Words;
        const Result word = solve(g, dest, plain);
        plain.backend = sim::ExecBackend::BitPlane;
        const Result plane = solve(g, dest, plain);
        expect_never_silently_wrong(g, word, label.str() + " word");
        expect_never_silently_wrong(g, plane, label.str() + " bitplane");
        cases += 2;
        ASSERT_EQ(plane.solution.cost, word.solution.cost) << label.str();
        ASSERT_EQ(plane.solution.next, word.solution.next) << label.str();
        ASSERT_EQ(plane.outcome, word.outcome) << label.str();
        ASSERT_TRUE(plane.total_steps == word.total_steps)
            << label.str() << ": tiled step counters diverged under faults (word "
            << word.total_steps.summary() << " vs bitplane "
            << plane.total_steps.summary() << ")";
        ASSERT_EQ(plane.fault_events.size(), word.fault_events.size()) << label.str();

        // --- retry runs: the oracle is a fault-free machine of the SAME
        // p x p geometry, so recovery itself exercises the tiled sweep.
        for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
          Options retry = base;
          retry.backend = backend;
          retry.max_retries = 2;
          const Result r = solve(g, dest, retry);
          ++cases;
          ASSERT_EQ(r.outcome, SolveOutcome::Verified)
              << label.str() << ": not recovered after " << r.attempts << " attempts";
          test::expect_solves(g, r.solution, label.str() + " (after tiled retry)");
          if (r.attempts > 1) {
            ++recovered;
            EXPECT_FALSE(r.fault_events.empty())
                << label.str() << ": retried without recording why";
          }
        }
      }
    }
  }
  EXPECT_GE(cases, 200u);
  EXPECT_GT(recovered, 20u)
      << "faults almost never perturbed a tiled run; with every panel routed "
         "through the defective physical array they should bite harder, not "
         "softer, than on a full array";
}

TEST(McpTiledFaultInjection, ActivePanelScheduleKeepsTheRobustnessContract) {
  // The active-panel schedule decides skips from the PREVIOUS iteration's
  // change counts — counts a fault may itself have corrupted. The contract
  // must hold anyway, under every recovery arm: never silently wrong,
  // bit-identical across backends under identical faults, and with retry /
  // masking armed the run ends Verified (or MaskedFaults) and exact.
  const FaultClass classes[] = {FaultClass::Dead, FaultClass::StuckOpen,
                                FaultClass::StuckClosed, FaultClass::StuckBit};
  std::size_t perturbed = 0;
  for (const FaultClass fault_class : classes) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      util::Rng rng(seed * 1700 + static_cast<std::uint64_t>(fault_class));
      const int bits = 8;
      const std::size_t n = 12, p = 4;
      const auto g = graph::random_reachable_digraph(n, bits, 0.2, {1, 20}, 0, rng);
      const graph::Vertex dest = static_cast<graph::Vertex>(rng.below(n));
      const FaultModel model = model_for(fault_class, p, bits, rng);
      std::ostringstream label;
      label << "active class=" << name_of(fault_class) << " seed=" << seed
            << " dest=" << dest;

      Options base;
      base.verify = true;
      base.faults = model;
      base.array_side = p;
      base.active_panels = true;

      // Unprotected, both backends: never silently wrong, and the two
      // backends agree on rows, outcome AND step counters — skip decisions
      // included, since both replay the same corrupted change counts.
      Options plain = base;
      plain.backend = sim::ExecBackend::Words;
      const Result word = solve(g, dest, plain);
      plain.backend = sim::ExecBackend::BitPlane;
      const Result plane = solve(g, dest, plain);
      expect_never_silently_wrong(g, word, label.str() + " word");
      expect_never_silently_wrong(g, plane, label.str() + " bitplane");
      ASSERT_EQ(plane.solution.cost, word.solution.cost) << label.str();
      ASSERT_EQ(plane.outcome, word.outcome) << label.str();
      ASSERT_TRUE(plane.total_steps == word.total_steps)
          << label.str() << ": active-panel skip decisions diverged under faults";
      if (word.outcome != SolveOutcome::Verified) ++perturbed;

      // Retry arm: recovery re-runs tiled with the active schedule on a
      // fault-free machine — exact every time.
      Options retry = base;
      retry.max_retries = 2;
      const Result recovered_run = solve(g, dest, retry);
      ASSERT_EQ(recovered_run.outcome, SolveOutcome::Verified) << label.str();
      test::expect_solves(g, recovered_run.solution, label.str() + " (retry)");

      // Masking arms: TMR (word or plane) and ECC (plane-only) vote /
      // decode every bus cycle of every visited panel; a skipped panel has
      // no bus cycles, so skipping can never hide a maskable fault.
      for (const auto policy : {RecoveryPolicy::Tmr, RecoveryPolicy::TmrThenRetry}) {
        Options masked = base;
        masked.recovery = policy;
        masked.max_retries = policy == RecoveryPolicy::TmrThenRetry ? 2 : 0;
        const Result r = solve(g, dest, masked);
        expect_never_silently_wrong(g, r, label.str() + " tmr");
        if (policy == RecoveryPolicy::TmrThenRetry) {
          ASSERT_TRUE(r.outcome == SolveOutcome::Verified ||
                      r.outcome == SolveOutcome::MaskedFaults)
              << label.str() << " tmr+retry";
          test::expect_solves(g, r.solution, label.str() + " (tmr+retry)");
        }
      }
      Options ecc = base;
      ecc.backend = sim::ExecBackend::BitPlane;
      ecc.recovery = RecoveryPolicy::Ecc;
      expect_never_silently_wrong(g, solve(g, dest, ecc), label.str() + " ecc");
    }
  }
  EXPECT_GT(perturbed, 0u)
      << "no unprotected active-panel run was ever perturbed; the fault grid "
         "is too soft to exercise the skip-under-corruption path";
}

TEST(McpTiledFaultInjection, AllPairsRecoversOnTinyPhysicalArray) {
  util::Rng rng(171);
  const std::size_t n = 12;
  const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
  AllPairsOptions options;
  options.workers = 3;
  options.mcp.verify = true;
  options.mcp.max_retries = 2;
  options.mcp.array_side = 4;
  options.mcp.faults = FaultModel::parse("dead:1,2;stuck-bit:row,3,0,1", 4, 8);
  const AllPairsResult faulty = all_pairs(g, options);
  ASSERT_EQ(faulty.outcomes.size(), n);
  EXPECT_EQ(faulty.failed_destinations(), 0u);
  std::size_t retried = 0;
  for (std::size_t d = 0; d < n; ++d) {
    EXPECT_EQ(faulty.outcomes[d], SolveOutcome::Verified) << "destination " << d;
    if (faulty.attempts[d] > 1) ++retried;
  }
  EXPECT_GT(retried, 0u);

  // The recovered matrix equals the fault-free full-array one entry for
  // entry: virtualization + faults + retry is still exact.
  const AllPairsResult clean = all_pairs(g, Options{});
  EXPECT_EQ(faulty.dist, clean.dist);
  EXPECT_EQ(faulty.next, clean.next);
}

TEST(McpTiledFaultInjection, DegradesPerDestinationWithoutRetries) {
  util::Rng rng(172);
  const std::size_t n = 10;
  const auto g = graph::random_reachable_digraph(n, 8, 0.3, {1, 20}, 0, rng);
  AllPairsOptions options;
  options.mcp.verify = true;
  options.mcp.array_side = 3;
  options.mcp.faults = FaultModel::parse("dead:1,1", 3, 8);
  const AllPairsResult r = all_pairs(g, options);
  ASSERT_EQ(r.outcomes.size(), n);
  std::size_t failed = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (r.outcomes[d] != SolveOutcome::Verified) ++failed;
  }
  EXPECT_EQ(failed, r.failed_destinations());
  EXPECT_GT(failed, 0u) << "a dead PE on a 3x3 physical array touches every "
                           "panel; it must corrupt at least one destination";
  EXPECT_FALSE(r.fault_events.empty());
}

}  // namespace
}  // namespace ppa::mcp
