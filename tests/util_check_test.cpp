#include "util/check.hpp"

#include <gtest/gtest.h>

namespace ppa::util {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(PPA_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsContractErrorWithContext) {
  try {
    PPA_REQUIRE(false, "the caller did a bad thing");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contract violated"), std::string::npos);
    EXPECT_NE(what.find("the caller did a bad thing"), std::string::npos);
    EXPECT_NE(what.find("util_check_test.cpp"), std::string::npos);
  }
}

TEST(Check, AssertThrowsInternalError) {
  EXPECT_THROW(PPA_ASSERT(false, "invariant broke"), InternalError);
  EXPECT_NO_THROW(PPA_ASSERT(true, "fine"));
}

TEST(Check, ExceptionHierarchy) {
  // Contract and internal errors are logic errors; parse errors are
  // runtime errors — callers can catch by intent.
  EXPECT_THROW(throw ContractError("x"), std::logic_error);
  EXPECT_THROW(throw InternalError("x"), std::logic_error);
  EXPECT_THROW(throw ParseError("x"), std::runtime_error);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  PPA_REQUIRE(++evaluations > 0, "side effect");
  EXPECT_EQ(evaluations, 1);
  PPA_ASSERT(++evaluations > 0, "side effect");
  EXPECT_EQ(evaluations, 2);
}

}  // namespace
}  // namespace ppa::util
