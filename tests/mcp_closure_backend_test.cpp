// Backend diff for the boolean-semiring closure: the word-per-PE and
// bit-plane backends must produce identical reachability sets, closure
// matrices, iteration counts and step counters. The closure is the plane
// backend's best case — its relaxation loop touches only Pbool registers,
// i.e. one plane per instruction — so this pin also guards the 1-plane
// fast path against semantic drift.
#include <gtest/gtest.h>

#include <queue>
#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/closure.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

/// Host BFS ground truth: can i reach d following directed edges?
std::vector<bool> bfs_reaches(const graph::WeightMatrix& g, graph::Vertex d) {
  const std::size_t n = g.size();
  // Walk the REVERSE edges from d: i reaches d iff d is reverse-reachable.
  std::vector<bool> seen(n, false);
  std::queue<graph::Vertex> frontier;
  seen[d] = true;
  frontier.push(d);
  while (!frontier.empty()) {
    const graph::Vertex v = frontier.front();
    frontier.pop();
    for (graph::Vertex u = 0; u < n; ++u) {
      if (!seen[u] && g.has_edge(u, v)) {
        seen[u] = true;
        frontier.push(u);
      }
    }
  }
  return seen;
}

TEST(McpClosureBackend, ReachabilityIdenticalAcrossBackends) {
  const std::size_t sizes[] = {1, 2, 3, 7, 13, 16, 24, 33, 64, 65};
  for (const std::size_t n : sizes) {
    util::Rng rng(n * 31 + 5);
    // The array addresses itself with the h-bit field, so n - 1 must be
    // representable: 4-bit words only below n = 16.
    const int bits = (n < 16 ? 4 : 8) + static_cast<int>(rng.below(2)) * 4;
    const auto g = graph::random_digraph(n, bits, 3.0 / static_cast<double>(n),
                                         {1, 10}, rng);
    const graph::Vertex d = static_cast<graph::Vertex>(rng.below(n));
    std::ostringstream label;
    label << "n=" << n << " bits=" << bits << " dest=" << d;

    const auto word = solve_reachability(g, d, {sim::ExecBackend::Words});
    const auto plane = solve_reachability(g, d, {sim::ExecBackend::BitPlane});
    ASSERT_EQ(plane.reachable, word.reachable) << label.str();
    ASSERT_EQ(plane.iterations, word.iterations) << label.str();
    ASSERT_TRUE(plane.init_steps == word.init_steps) << label.str();
    ASSERT_TRUE(plane.total_steps == word.total_steps)
        << label.str() << ": closure step counters diverged (word "
        << word.total_steps.summary() << " vs bitplane " << plane.total_steps.summary()
        << ")";
    ASSERT_EQ(word.reachable, bfs_reaches(g, d)) << label.str() << " (vs host BFS)";
  }
}

TEST(McpClosureBackend, FullClosureIdenticalAcrossBackends) {
  const std::size_t sizes[] = {2, 5, 9, 12, 17};
  for (const std::size_t n : sizes) {
    util::Rng rng(n * 97 + 3);
    const auto g = graph::random_digraph(n, 8, 2.0 / static_cast<double>(n),
                                         {1, 10}, rng);
    const auto word = transitive_closure(g, {sim::ExecBackend::Words});
    const auto plane = transitive_closure(g, {sim::ExecBackend::BitPlane});
    ASSERT_EQ(plane.closed, word.closed) << "n=" << n;
    ASSERT_EQ(plane.total_iterations, word.total_iterations) << "n=" << n;
    ASSERT_TRUE(plane.total_steps == word.total_steps) << "n=" << n;
    // Ground truth, column by column.
    for (graph::Vertex d = 0; d < n; ++d) {
      const auto truth = bfs_reaches(g, d);
      for (graph::Vertex i = 0; i < n; ++i) {
        ASSERT_EQ(word.at(i, d), truth[i]) << "n=" << n << " i=" << i << " d=" << d;
      }
    }
  }
}

TEST(McpClosureBackend, StructuredFamilies) {
  util::Rng rng(11);
  const auto ring = graph::directed_ring(19, 8, {1, 5}, rng);
  const auto ring_word = transitive_closure(ring, {sim::ExecBackend::Words});
  const auto ring_plane = transitive_closure(ring, {sim::ExecBackend::BitPlane});
  EXPECT_EQ(ring_plane.closed, ring_word.closed);
  EXPECT_TRUE(ring_plane.total_steps == ring_word.total_steps);
  // A directed ring is strongly connected: the closure is all-true.
  for (const bool reachable : ring_word.closed) EXPECT_TRUE(reachable);

  // Edgeless graph: only the reflexive diagonal survives.
  const graph::WeightMatrix empty(6, 8);
  const auto empty_word = transitive_closure(empty, {sim::ExecBackend::Words});
  const auto empty_plane = transitive_closure(empty, {sim::ExecBackend::BitPlane});
  EXPECT_EQ(empty_plane.closed, empty_word.closed);
  EXPECT_TRUE(empty_plane.total_steps == empty_word.total_steps);
  for (graph::Vertex i = 0; i < 6; ++i) {
    for (graph::Vertex j = 0; j < 6; ++j) {
      EXPECT_EQ(empty_word.at(i, j), i == j) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace ppa::mcp
