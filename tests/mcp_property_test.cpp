// Property tests: the PPA MCP must agree with Dijkstra on every graph we
// can generate — swept over sizes, word widths, densities, destinations,
// graph families, bus topologies irrelevant (Ring is required), and seeds.
#include <gtest/gtest.h>

#include <string>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mcp/mcp.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using graph::Vertex;
using graph::WeightMatrix;

struct SweepCase {
  std::size_t n;
  int bits;
  double density;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << "n" << c.n << "_h" << c.bits << "_d" << static_cast<int>(c.density * 100)
              << "_s" << c.seed;
  }
};

class McpRandomSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(McpRandomSweep, AgreesWithDijkstraOnRandomDigraphs) {
  const SweepCase c = GetParam();
  util::Rng rng(c.seed);
  const auto max_w = std::min<graph::Weight>(
      50, util::HField(c.bits).max_finite());
  const auto g = graph::random_digraph(c.n, c.bits, c.density,
                                       {1, std::max<graph::Weight>(1, max_w)}, rng);
  for (int pick = 0; pick < 3; ++pick) {
    const Vertex d = rng.below(c.n);
    const Result r = solve(g, d);
    test::expect_solves(g, r.solution, "random d=" + std::to_string(d));
  }
}

TEST_P(McpRandomSweep, AgreesOnReachableDigraphs) {
  const SweepCase c = GetParam();
  util::Rng rng(c.seed ^ 0x5555);
  const Vertex d = rng.below(c.n);
  const auto max_w = std::min<graph::Weight>(30, util::HField(c.bits).max_finite());
  const auto g = graph::random_reachable_digraph(c.n, c.bits, c.density,
                                                 {1, std::max<graph::Weight>(1, max_w)}, d, rng);
  const Result r = solve(g, d);
  test::expect_solves(g, r.solution, "reachable");
  // Everything reaches d, so every cost must be finite.
  for (Vertex i = 0; i < c.n; ++i) {
    EXPECT_NE(r.solution.cost[i], g.infinity()) << "vertex " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, McpRandomSweep,
    ::testing::Values(SweepCase{2, 8, 0.5, 1}, SweepCase{3, 8, 0.4, 2}, SweepCase{4, 6, 0.5, 3},
                      SweepCase{6, 8, 0.3, 4}, SweepCase{8, 10, 0.25, 5},
                      SweepCase{10, 12, 0.2, 6}, SweepCase{12, 16, 0.15, 7},
                      SweepCase{16, 16, 0.15, 8}, SweepCase{16, 8, 0.6, 9},
                      SweepCase{20, 20, 0.1, 10}, SweepCase{24, 16, 0.12, 11},
                      SweepCase{32, 24, 0.08, 12}, SweepCase{9, 32, 0.3, 13},
                      SweepCase{7, 5, 0.5, 14}));

class McpFamilySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McpFamilySweep, Ring) {
  util::Rng rng(GetParam());
  const std::size_t n = 3 + rng.below(14);
  const auto g = graph::directed_ring(n, 16, {1, 9}, rng);
  const Vertex d = rng.below(n);
  test::expect_solves(g, solve(g, d).solution, "ring");
}

TEST_P(McpFamilySweep, Star) {
  util::Rng rng(GetParam() + 100);
  const std::size_t n = 4 + rng.below(12);
  const Vertex center = rng.below(n);
  const auto g = graph::star(n, 16, center, {1, 9}, rng);
  test::expect_solves(g, solve(g, center).solution, "star-to-center");
  const Vertex spoke = (center + 1) % n;
  test::expect_solves(g, solve(g, spoke).solution, "star-to-spoke");
}

TEST_P(McpFamilySweep, Grid) {
  util::Rng rng(GetParam() + 200);
  const auto g = graph::grid_mesh(3, 4, 16, {1, 9}, rng);
  const Vertex d = rng.below(g.size());
  test::expect_solves(g, solve(g, d).solution, "grid");
}

TEST_P(McpFamilySweep, LayeredDag) {
  util::Rng rng(GetParam() + 300);
  const std::size_t layers = 2 + rng.below(4);
  const auto g = graph::layered_dag(layers, 3, 2, 16, {1, 9}, rng);
  test::expect_solves(g, solve(g, g.size() - 1).solution, "dag");
}

TEST_P(McpFamilySweep, Banded) {
  util::Rng rng(GetParam() + 400);
  const std::size_t n = 6 + rng.below(10);
  const auto g = graph::banded(n, 16, 2, {1, 9}, rng);
  const Vertex d = rng.below(n);
  test::expect_solves(g, solve(g, d).solution, "banded");
}

TEST_P(McpFamilySweep, Geometric) {
  util::Rng rng(GetParam() + 500);
  const auto g = graph::geometric(14, 16, 0.45, {5, 60}, rng);
  const Vertex d = rng.below(g.size());
  test::expect_solves(g, solve(g, d).solution, "geometric");
}

TEST_P(McpFamilySweep, Complete) {
  util::Rng rng(GetParam() + 600);
  const std::size_t n = 3 + rng.below(10);
  const auto g = graph::complete(n, 16, {1, 9}, rng);
  const Vertex d = rng.below(n);
  test::expect_solves(g, solve(g, d).solution, "complete");
}

TEST_P(McpFamilySweep, ZeroWeightsAllowed) {
  util::Rng rng(GetParam() + 700);
  const std::size_t n = 4 + rng.below(10);
  const auto g = graph::random_digraph(n, 16, 0.3, {0, 4}, rng);
  const Vertex d = rng.below(n);
  test::expect_solves(g, solve(g, d).solution, "zero-weights");
}

INSTANTIATE_TEST_SUITE_P(Seeds, McpFamilySweep, ::testing::Range<std::uint64_t>(1, 7));

TEST(McpProperty, IterationsNeverExceedVertexCount) {
  util::Rng rng(99);
  for (int t = 0; t < 12; ++t) {
    const std::size_t n = 2 + rng.below(20);
    const auto g = graph::random_digraph(n, 16, 0.3, {1, 9}, rng);
    const Vertex d = rng.below(n);
    const Result r = solve(g, d);
    EXPECT_LE(r.iterations, n + 1);
  }
}

TEST(McpProperty, StepsScaleWithIterationsTimesH) {
  // For a fixed n, total steps are (iterations x per-iteration-cost) +
  // init; per-iteration cost is affine in h.
  util::Rng rng(7);
  const auto g16 = graph::directed_ring(12, 16, {1, 3}, rng);
  const auto g32 = g16.with_bits(32);
  const Result r16 = solve(g16, 0);
  const Result r32 = solve(g32, 0);
  ASSERT_EQ(r16.iterations, r32.iterations);
  EXPECT_EQ(r32.total_steps.count(sim::StepCategory::BusOr),
            2 * r16.total_steps.count(sim::StepCategory::BusOr));
}

}  // namespace
}  // namespace ppa::mcp
