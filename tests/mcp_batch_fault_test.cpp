// Fault injection on BATCHED runs (mcp/batch.hpp): k destinations share
// one machine pass, so a defective PE or bus line bites every member of
// the batch at once. The robustness contract must hold per member: a row
// is either Verified and exactly right, or it reports a structured fault
// event — zero silently wrong rows, on either backend, full or tiled.
// The recovery pin: a failed member retries ALONE on the fault-free
// word-backend oracle; members that verified on the first pass keep
// attempts == 1 (the batch is NOT re-run for them).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/batch.hpp"
#include "mcp/mcp.hpp"
#include "sim/fault_model.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using sim::FaultKind;
using sim::FaultModel;

void expect_never_silently_wrong(const graph::WeightMatrix& g, const Result& r,
                                 const std::string& label) {
  if (r.outcome == SolveOutcome::Verified) {
    test::expect_solves(g, r.solution, label + " (verified must be exact)");
  } else {
    EXPECT_NE(r.outcome, SolveOutcome::Unchecked) << label;
    EXPECT_FALSE(r.fault_events.empty())
        << label << ": non-verified outcome carries no fault event";
  }
}

TEST(McpBatchFaultInjection, AcceptanceFuzzZeroSilentlyWrongRows) {
  struct Geometry {
    std::size_t n;
    std::size_t p;  // 0 = full array
  };
  const Geometry geometries[] = {{10, 0}, {12, 4}, {13, 5}};
  std::size_t cases = 0;
  std::size_t perturbed = 0;
  for (const Geometry geo : geometries) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      util::Rng rng(seed * 7919 + geo.n);
      const int bits = 8;
      const auto g = graph::random_reachable_digraph(geo.n, bits, 0.25, {1, 20}, 0, rng);
      const std::size_t side = geo.p == 0 ? geo.n : geo.p;
      const FaultModel model = FaultModel::random(side, bits, rng.next(), 2);
      std::vector<graph::Vertex> dests;
      for (graph::Vertex d = 0; d < geo.n; ++d) dests.push_back(d);

      Options options;
      options.verify = true;
      options.faults = model;
      options.array_side = geo.p;
      options.batch_width = 4;
      for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
        options.backend = backend;
        const std::vector<Result> batched = solve_batch(g, dests, options);
        ASSERT_EQ(batched.size(), dests.size());
        for (const Result& r : batched) {
          std::ostringstream label;
          label << "n=" << geo.n << " p=" << geo.p << " seed=" << seed << " dest="
                << r.solution.destination
                << (backend == sim::ExecBackend::Words ? " word" : " bitplane");
          expect_never_silently_wrong(g, r, label.str());
          ++cases;
          if (r.outcome != SolveOutcome::Verified) ++perturbed;
        }
      }
    }
  }
  EXPECT_GE(cases, 500u);
  EXPECT_GT(perturbed, 10u) << "faults never perturbed a batched run; the fuzz "
                               "is not exercising the failure paths";
}

TEST(McpBatchFaultInjection, FailedMembersRetryAloneAndRecover) {
  // With retries enabled every member must end Verified and exact; the
  // members the first pass already verified must NOT have been re-run
  // (attempts stays 1), while at least one member across the fuzz pays a
  // retry — the per-member recovery path of docs/batching.md.
  std::size_t retried_members = 0;
  std::size_t clean_members = 0;
  std::size_t mixed_batches = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed * 131 + 7);
    const std::size_t n = 12;
    const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
    const FaultModel model = FaultModel::random(4, 8, rng.next(), 2);
    std::vector<graph::Vertex> dests;
    for (graph::Vertex d = 0; d < n; ++d) dests.push_back(d);

    Options options;
    options.verify = true;
    options.max_retries = 2;
    options.faults = model;
    options.array_side = 4;
    options.batch_width = n;  // one group: mixed outcomes share one pass
    options.backend = sim::ExecBackend::BitPlane;
    const std::vector<Result> batched = solve_batch(g, dests, options);
    ASSERT_EQ(batched.size(), n);
    bool any_retried = false;
    bool any_clean = false;
    for (const Result& r : batched) {
      const std::string label = "seed=" + std::to_string(seed) + " dest=" +
                                std::to_string(r.solution.destination);
      ASSERT_EQ(r.outcome, SolveOutcome::Verified)
          << label << ": not recovered after " << r.attempts << " attempts";
      test::expect_solves(g, r.solution, label + " (after batch retry)");
      if (r.attempts > 1) {
        ++retried_members;
        any_retried = true;
        EXPECT_FALSE(r.fault_events.empty()) << label << ": retried without recording why";
      } else {
        ++clean_members;
        any_clean = true;
      }
    }
    if (any_retried && any_clean) ++mixed_batches;
  }
  EXPECT_GT(retried_members, 0u);
  EXPECT_GT(clean_members, 0u);
  EXPECT_GT(mixed_batches, 0u)
      << "no batch mixed clean and retried members; the retry-alone path "
         "was never distinguishable from a whole-batch re-run";
}

TEST(McpBatchFaultInjection, MaskedBatchesZeroSilentlyWrongRows) {
  // Masked runs extend the batch contract: with TMR or ECC active and NO
  // retries, a transient wire is corrected in place for every member of
  // the shared pass — full or tiled, and for TMR on either backend. Each
  // member carries the group's masking delta, and the silently-wrong-row
  // bar stays absolute.
  struct Arm {
    RecoveryPolicy policy;
    sim::ExecBackend backend;
  };
  const Arm arms[] = {{RecoveryPolicy::Tmr, sim::ExecBackend::Words},
                      {RecoveryPolicy::Tmr, sim::ExecBackend::BitPlane},
                      {RecoveryPolicy::Ecc, sim::ExecBackend::BitPlane}};
  const std::size_t sides[] = {0, 4};  // full array / tiled p=4
  std::size_t masked_members = 0;
  for (const Arm arm : arms) {
    for (const std::size_t p : sides) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        util::Rng rng(seed * 577 + p);
        const std::size_t n = 12;
        const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
        const std::size_t side = p == 0 ? n : p;
        // One transient wire (period >= 3: maskable by both policies).
        std::ostringstream spec;
        spec << "transient-bit:row," << rng.below(side) << ","
             << rng.below(8) << ",1," << 3 + rng.below(3) << ",0";
        std::vector<graph::Vertex> dests;
        for (graph::Vertex d = 0; d < n; ++d) dests.push_back(d);

        Options options;
        options.verify = true;
        options.recovery = arm.policy;
        options.backend = arm.backend;
        options.faults = FaultModel::parse(spec.str(), side, 8);
        options.array_side = p;
        options.batch_width = 4;
        const std::vector<Result> batched = solve_batch(g, dests, options);
        ASSERT_EQ(batched.size(), dests.size());
        for (const Result& r : batched) {
          std::ostringstream label;
          label << "policy=" << name_of(arm.policy) << " backend="
                << (arm.backend == sim::ExecBackend::Words ? "word" : "bitplane")
                << " p=" << p << " seed=" << seed << " dest="
                << r.solution.destination;
          expect_never_silently_wrong(g, r, label.str());
          EXPECT_EQ(r.attempts, 1u) << label.str() << ": masking must not retry";
          EXPECT_GT(r.masking.votes, 0u)
              << label.str() << ": member lost the group's masking delta";
          if (r.masking.corrections > 0) ++masked_members;
        }
      }
    }
  }
  EXPECT_GT(masked_members, 0u)
      << "no batch member ever saw a correction; the transient wires never bit";
}

TEST(McpBatchFaultInjection, AllPairsBatchedRecoversExactly) {
  util::Rng rng(171);
  const std::size_t n = 12;
  const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
  AllPairsOptions options;
  options.workers = 3;
  options.mcp.verify = true;
  options.mcp.max_retries = 2;
  options.mcp.array_side = 4;
  options.mcp.backend = sim::ExecBackend::BitPlane;
  options.mcp.batch_width = 5;
  options.mcp.faults = FaultModel::parse("dead:1,2;stuck-bit:row,3,0,1", 4, 8);
  const AllPairsResult faulty = all_pairs(g, options);
  ASSERT_EQ(faulty.outcomes.size(), n);
  EXPECT_EQ(faulty.failed_destinations(), 0u);
  for (std::size_t d = 0; d < n; ++d) {
    EXPECT_EQ(faulty.outcomes[d], SolveOutcome::Verified) << "destination " << d;
  }

  // The recovered matrix equals the fault-free one entry for entry:
  // batching + faults + per-member retry is still exact.
  const AllPairsResult clean = all_pairs(g, Options{});
  EXPECT_EQ(faulty.dist, clean.dist);
  EXPECT_EQ(faulty.next, clean.next);
}

TEST(McpBatchFaultInjection, DegradesPerMemberWithoutRetries) {
  // Without retries a batch degrades member by member: failed members
  // report themselves, verified members stay exact — the batch never
  // aborts as a whole.
  util::Rng rng(288);
  const std::size_t n = 10;
  const auto g = graph::random_reachable_digraph(n, 8, 0.3, {1, 20}, 0, rng);
  std::vector<graph::Vertex> dests;
  for (graph::Vertex d = 0; d < n; ++d) dests.push_back(d);
  Options options;
  options.verify = true;
  options.array_side = 3;
  options.batch_width = n;
  options.backend = sim::ExecBackend::BitPlane;
  options.faults = FaultModel::parse("dead:1,1", 3, 8);
  const std::vector<Result> batched = solve_batch(g, dests, options);
  ASSERT_EQ(batched.size(), n);
  for (const Result& r : batched) {
    expect_never_silently_wrong(
        g, r, "dest=" + std::to_string(r.solution.destination));
    EXPECT_EQ(r.attempts, 1u);
  }
}

}  // namespace
}  // namespace ppa::mcp
