// The threaded all-pairs driver is host parallelism only: solutions, step
// counts and iteration totals must be bit-identical to the sequential
// driver for EVERY worker count (the paper's cost model counts SIMD steps,
// which cannot depend on how the host scheduled the destination runs).
#include "mcp/allpairs.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using graph::Vertex;

void expect_identical(const AllPairsResult& got, const AllPairsResult& want,
                      std::size_t workers) {
  ASSERT_EQ(got.n, want.n) << "workers=" << workers;
  EXPECT_EQ(got.dist, want.dist) << "workers=" << workers;
  EXPECT_EQ(got.next, want.next) << "workers=" << workers;
  EXPECT_EQ(got.total_iterations, want.total_iterations) << "workers=" << workers;
  EXPECT_EQ(got.total_steps, want.total_steps) << "workers=" << workers;
  EXPECT_EQ(got.diameter, want.diameter) << "workers=" << workers;
}

TEST(AllPairsParallel, BitIdenticalForEveryWorkerCount) {
  util::Rng rng(77);
  const auto g = graph::random_digraph(12, 16, 0.3, {1, 20}, rng);
  const auto sequential = all_pairs(g);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    AllPairsOptions options;
    options.workers = workers;
    const auto threaded = all_pairs(g, options);
    expect_identical(threaded, sequential, workers);
  }
}

TEST(AllPairsParallel, MoreWorkersThanDestinations) {
  util::Rng rng(78);
  const auto g = graph::random_digraph(3, 16, 0.5, {1, 9}, rng);
  AllPairsOptions options;
  options.workers = 16;  // clamped to n inside the driver
  const auto threaded = all_pairs(g, options);
  expect_identical(threaded, all_pairs(g), options.workers);
}

TEST(AllPairsParallel, BatchedGroupsBitIdenticalForEveryWorkerCount) {
  // The batched path (docs/batching.md) hands whole destination GROUPS to
  // the pool; group composition is global, so results and steps must stay
  // bit-identical for every worker count there too. This test also puts
  // the group loop under the tsan preset (it runs the AllPairsParallel
  // suite), covering the per-group writes to the shared result arrays.
  util::Rng rng(80);
  const auto g = graph::random_digraph(13, 16, 0.3, {1, 20}, rng);
  AllPairsOptions batched;
  batched.mcp.backend = sim::ExecBackend::BitPlane;
  batched.mcp.batch_width = 4;
  const auto sequential = all_pairs(g, batched);  // workers = 1
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    AllPairsOptions options = batched;
    options.workers = workers;
    expect_identical(all_pairs(g, options), sequential, workers);
  }
}

TEST(AllPairsParallel, ThreadedMatchesFloydWarshall) {
  util::Rng rng(79);
  const auto g = graph::random_digraph(10, 16, 0.25, {1, 15}, rng);
  AllPairsOptions options;
  options.workers = 4;
  const auto threaded = all_pairs(g, options);
  const auto host = baseline::floyd_warshall(g);
  for (Vertex i = 0; i < 10; ++i) {
    for (Vertex j = 0; j < 10; ++j) {
      EXPECT_EQ(threaded.dist_at(i, j), host.dist_at(i, j)) << "pair " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace ppa::mcp
