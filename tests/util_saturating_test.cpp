#include "util/saturating.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ppa::util {
namespace {

TEST(HField, RejectsInvalidWidths) {
  EXPECT_THROW(HField(0), ContractError);
  EXPECT_THROW(HField(33), ContractError);
  EXPECT_NO_THROW(HField(1));
  EXPECT_NO_THROW(HField(32));
}

TEST(HField, InfinityAndMaxFinite) {
  const HField f8(8);
  EXPECT_EQ(f8.infinity(), 255u);
  EXPECT_EQ(f8.max_finite(), 254u);
  EXPECT_TRUE(f8.is_infinite(255));
  EXPECT_FALSE(f8.is_infinite(254));

  const HField f32(32);
  EXPECT_EQ(f32.infinity(), 0xFFFFFFFFu);
}

TEST(HField, Representable) {
  const HField f4(4);
  EXPECT_TRUE(f4.representable(0));
  EXPECT_TRUE(f4.representable(15));
  EXPECT_FALSE(f4.representable(16));
}

TEST(HField, AddSaturates) {
  const HField f(8);
  EXPECT_EQ(f.add(100, 100), 200u);
  EXPECT_EQ(f.add(200, 54), 254u);
  EXPECT_EQ(f.add(200, 55), 255u);   // exactly infinity
  EXPECT_EQ(f.add(200, 200), 255u);  // beyond — clamps
}

TEST(HField, InfinityAbsorbs) {
  const HField f(12);
  EXPECT_EQ(f.add(f.infinity(), 0), f.infinity());
  EXPECT_EQ(f.add(0, f.infinity()), f.infinity());
  EXPECT_EQ(f.add(f.infinity(), f.infinity()), f.infinity());
  EXPECT_EQ(f.add(f.infinity(), 5), f.infinity());
}

TEST(HField, Clamp) {
  const HField f(8);
  EXPECT_EQ(f.clamp(0), 0u);
  EXPECT_EQ(f.clamp(254), 254u);
  EXPECT_EQ(f.clamp(255), 255u);
  EXPECT_EQ(f.clamp(1ULL << 40), 255u);
}

class HFieldSweep : public ::testing::TestWithParam<int> {};

TEST_P(HFieldSweep, AlgebraicProperties) {
  const int h = GetParam();
  const HField f(h);
  Rng rng(static_cast<std::uint64_t>(h) * 7919);
  const auto draw = [&] { return static_cast<std::uint32_t>(rng.below(f.infinity() + 1ull)); };

  for (int i = 0; i < 300; ++i) {
    const std::uint32_t a = draw();
    const std::uint32_t b = draw();
    const std::uint32_t c = draw();
    // Commutativity.
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    // Associativity (saturating add is associative for the clamp-to-top
    // monoid).
    EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
    // Identity.
    EXPECT_EQ(f.add(a, 0), a);
    // Monotonicity.
    EXPECT_LE(f.add(a, b), f.infinity());
    EXPECT_GE(f.add(a, b), std::max(a, b) == f.infinity() ? f.infinity() : 0u);
    // Result always representable.
    EXPECT_TRUE(f.representable(f.add(a, b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HFieldSweep, ::testing::Values(1, 2, 4, 8, 12, 16, 24, 31, 32));

TEST(HField, Equality) {
  EXPECT_EQ(HField(8), HField(8));
  EXPECT_NE(HField(8), HField(9));
}

}  // namespace
}  // namespace ppa::util
