#include "baseline/parbs.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ppa::baseline::parbs {
namespace {

TEST(SwitchConfig, FuseGroupsPorts) {
  const auto straight = SwitchConfig::fuse({Port::West, Port::East});
  EXPECT_EQ(straight.group[static_cast<std::size_t>(Port::West)],
            straight.group[static_cast<std::size_t>(Port::East)]);
  EXPECT_NE(straight.group[static_cast<std::size_t>(Port::North)],
            straight.group[static_cast<std::size_t>(Port::South)]);
  EXPECT_THROW((void)SwitchConfig::fuse({Port::North}), util::ContractError);
}

TEST(Components, AllSeparateMeansOnlyWiresConnect) {
  Machine m(2, 2);
  const std::vector<SwitchConfig> configs(4, SwitchConfig::all_separate());
  const auto labels = m.components(configs);
  // (0,0).East is wired to (0,1).West even with separate ports.
  EXPECT_EQ(labels[m.node_of(0, Port::East)], labels[m.node_of(1, Port::West)]);
  // But (0,0).East is NOT connected to (0,0).West.
  EXPECT_NE(labels[m.node_of(0, Port::East)], labels[m.node_of(0, Port::West)]);
  // Vertical wire.
  EXPECT_EQ(labels[m.node_of(0, Port::South)], labels[m.node_of(2, Port::North)]);
}

TEST(Components, StraightRowBusSpansTheRow) {
  Machine m(1, 5);
  std::vector<SwitchConfig> configs(5, SwitchConfig::fuse({Port::West, Port::East}));
  const auto labels = m.components(configs);
  for (std::size_t pe = 0; pe < 5; ++pe) {
    EXPECT_EQ(labels[m.node_of(pe, Port::West)], labels[m.node_of(0, Port::West)]);
    EXPECT_EQ(labels[m.node_of(pe, Port::East)], labels[m.node_of(0, Port::West)]);
  }
}

TEST(Components, LShapedBus) {
  // (0,0) fuses {W,S}: a bus entering (0,0) from the West turns down to
  // (1,0) — a shape no row/column sub-bus can take.
  Machine m(2, 2);
  std::vector<SwitchConfig> configs(4, SwitchConfig::all_separate());
  configs[0] = SwitchConfig::fuse({Port::West, Port::South});
  const auto labels = m.components(configs);
  EXPECT_EQ(labels[m.node_of(0, Port::West)], labels[m.node_of(2, Port::North)]);
  EXPECT_NE(labels[m.node_of(0, Port::West)], labels[m.node_of(0, Port::East)]);
}

TEST(ReachableFrom, FollowsTheBus) {
  Machine m(1, 4);
  std::vector<SwitchConfig> configs(4, SwitchConfig::fuse({Port::West, Port::East}));
  configs[2] = SwitchConfig::all_separate();  // break between columns 1|2... at PE 2
  const auto reach = m.reachable_from(configs, 0, Port::East);
  EXPECT_TRUE(reach[m.node_of(1, Port::West)]);
  EXPECT_TRUE(reach[m.node_of(1, Port::East)]);
  EXPECT_TRUE(reach[m.node_of(2, Port::West)]);   // the wire reaches PE 2's port
  EXPECT_FALSE(reach[m.node_of(2, Port::East)]);  // but not through its open switch
  EXPECT_FALSE(reach[m.node_of(3, Port::West)]);
}

TEST(ComponentOr, PullsPropagatePerBus) {
  Machine m(1, 4);
  const std::vector<SwitchConfig> configs(4, SwitchConfig::fuse({Port::West, Port::East}));
  std::vector<bool> pulls(16, false);
  pulls[m.node_of(3, Port::West)] = true;
  const auto heard = m.component_or(configs, pulls);
  EXPECT_TRUE(heard[m.node_of(0, Port::East)]);
  EXPECT_TRUE(heard[m.node_of(0, Port::West)]);  // same fused group
  // North/South stubs are separate buses: silent.
  EXPECT_FALSE(heard[m.node_of(0, Port::North)]);
}

TEST(CountOnes, HandCases) {
  EXPECT_EQ(count_ones(std::vector<bool>{false}).count, 0u);
  EXPECT_EQ(count_ones(std::vector<bool>{true}).count, 1u);
  EXPECT_EQ(count_ones(std::vector<bool>{true, false, true, true}).count, 3u);
  EXPECT_TRUE(count_ones(std::vector<bool>{true, false, true, true}).parity);
  EXPECT_FALSE(count_ones(std::vector<bool>{true, true}).parity);
}

TEST(CountOnes, AllOnesAndAllZeros) {
  for (const std::size_t n : {1u, 2u, 5u, 16u}) {
    EXPECT_EQ(count_ones(std::vector<bool>(n, true)).count, n) << n;
    EXPECT_EQ(count_ones(std::vector<bool>(n, false)).count, 0u) << n;
  }
}

class CountOnesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CountOnesSweep, MatchesPopcount) {
  util::Rng rng(GetParam());
  for (int t = 0; t < 10; ++t) {
    const std::size_t n = 1 + rng.below(24);
    std::vector<bool> bits(n);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      bits[i] = rng.chance(0.5);
      expected += bits[i];
    }
    const auto result = count_ones(bits);
    EXPECT_EQ(result.count, expected);
    EXPECT_EQ(result.parity, (expected % 2) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountOnesSweep, ::testing::Range<std::uint64_t>(1, 5));

TEST(CountOnes, ConstantBusStepsRegardlessOfN) {
  const auto small = count_ones(std::vector<bool>{true, false});
  const auto large = count_ones(std::vector<bool>(32, true));
  EXPECT_EQ(small.steps.count(sim::StepCategory::BusBroadcast),
            large.steps.count(sim::StepCategory::BusBroadcast));
  EXPECT_EQ(small.steps.total(), large.steps.total());
  EXPECT_EQ(small.steps.count(sim::StepCategory::BusBroadcast), 1u);
}

TEST(Machine, Contracts) {
  EXPECT_THROW(Machine(0, 3), util::ContractError);
  Machine m(2, 2);
  const std::vector<SwitchConfig> wrong_size(3);
  EXPECT_THROW((void)m.components(wrong_size), util::ContractError);
  const std::vector<SwitchConfig> ok(4);
  EXPECT_THROW((void)m.reachable_from(ok, 9, Port::West), util::ContractError);
  EXPECT_THROW((void)m.component_or(ok, std::vector<bool>(7)), util::ContractError);
  EXPECT_THROW((void)count_ones(std::vector<bool>{}), util::ContractError);
}

}  // namespace
}  // namespace ppa::baseline::parbs
