// The paper's minimum_cost_path() — hand-checked graphs, edge cases, step
// accounting and convergence behaviour.
#include "mcp/mcp.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using graph::Vertex;
using graph::WeightMatrix;

TEST(Mcp, TinyGraphExactSolution) {
  const auto g = test::tiny_graph();
  const Result r = solve(g, 3);
  EXPECT_EQ(r.solution.cost, (std::vector<graph::Weight>{5, 3, 1, 0}));
  EXPECT_EQ(r.solution.next, (std::vector<Vertex>{1, 3, 3, 3}));
  test::expect_solves(g, r.solution, "tiny");
}

TEST(Mcp, EveryDestinationOfTinyGraph) {
  const auto g = test::tiny_graph();
  for (Vertex d = 0; d < 4; ++d) {
    const Result r = solve(g, d);
    test::expect_solves(g, r.solution, "tiny d=" + std::to_string(d));
  }
}

TEST(Mcp, SingleVertexGraph) {
  const WeightMatrix g(1, 8);
  const Result r = solve(g, 0);
  EXPECT_EQ(r.solution.cost, std::vector<graph::Weight>{0});
  EXPECT_EQ(r.solution.next, std::vector<Vertex>{0});
  EXPECT_EQ(r.iterations, 1u);
}

TEST(Mcp, EdgelessGraphEverythingUnreachable) {
  const WeightMatrix g(5, 8);
  const Result r = solve(g, 2);
  for (Vertex i = 0; i < 5; ++i) {
    EXPECT_EQ(r.solution.cost[i], i == 2 ? 0u : g.infinity());
  }
  EXPECT_EQ(r.iterations, 1u);  // nothing ever changes
}

TEST(Mcp, PartiallyUnreachable) {
  WeightMatrix g(5, 8);
  g.set(0, 1, 2);
  g.set(1, 2, 2);
  // vertices 3, 4 are isolated from 2.
  g.set(4, 3, 1);
  const Result r = solve(g, 2);
  EXPECT_EQ(r.solution.cost[0], 4u);
  EXPECT_EQ(r.solution.cost[1], 2u);
  EXPECT_EQ(r.solution.cost[2], 0u);
  EXPECT_EQ(r.solution.cost[3], g.infinity());
  EXPECT_EQ(r.solution.cost[4], g.infinity());
  test::expect_solves(g, r.solution, "partial");
}

TEST(Mcp, TwoVertexBothDirections) {
  WeightMatrix g(2, 8);
  g.set(0, 1, 9);
  const Result to1 = solve(g, 1);
  EXPECT_EQ(to1.solution.cost, (std::vector<graph::Weight>{9, 0}));
  const Result to0 = solve(g, 0);
  EXPECT_EQ(to0.solution.cost[1], g.infinity());
}

TEST(Mcp, ZeroWeightEdges) {
  WeightMatrix g(4, 8);
  g.set(0, 1, 0);
  g.set(1, 2, 0);
  g.set(2, 3, 0);
  g.set(0, 3, 1);
  const Result r = solve(g, 3);
  EXPECT_EQ(r.solution.cost, (std::vector<graph::Weight>{0, 0, 0, 0}));
  test::expect_solves(g, r.solution, "zero-weights");
}

TEST(Mcp, ZeroWeightCyclePointersTerminate) {
  WeightMatrix g(4, 8);
  g.set(0, 1, 0);
  g.set(1, 0, 0);
  g.set(0, 3, 2);
  g.set(1, 3, 2);
  const Result r = solve(g, 3);
  test::expect_solves(g, r.solution, "zero-cycle");
}

TEST(Mcp, SaturatedPathsReportInfinity) {
  // Path cost exceeds the 4-bit field: saturates to infinity, i.e.
  // "unreachable" within the machine's number system.
  WeightMatrix g(3, 4);  // infinity = 15
  g.set(0, 1, 10);
  g.set(1, 2, 10);
  const Result r = solve(g, 2);
  EXPECT_EQ(r.solution.cost[1], 10u);
  EXPECT_EQ(r.solution.cost[0], g.infinity());
}

TEST(Mcp, SelfLoopsInInputAreIgnored) {
  WeightMatrix g(3, 8);
  g.set(0, 0, 9);  // self loop — the machine forces the diagonal to 0
  g.set(0, 2, 4);
  g.set(2, 2, 5);
  const Result r = solve(g, 2);
  EXPECT_EQ(r.solution.cost[0], 4u);
  EXPECT_EQ(r.solution.cost[2], 0u);
}

TEST(Mcp, RingWorstCaseIterations) {
  util::Rng rng(4);
  const auto g = graph::directed_ring(8, 16, {1, 5}, rng);
  const Result r = solve(g, 0);
  test::expect_solves(g, r.solution, "ring");
  // p = 7; the DP needs p-1 improving iterations after the 1-edge init,
  // plus one no-change iteration to detect convergence.
  EXPECT_EQ(r.iterations, 7u);
}

TEST(Mcp, IterationsTrackBellmanFordRounds) {
  util::Rng rng(11);
  for (int t = 0; t < 8; ++t) {
    const std::size_t n = 4 + rng.below(14);
    const Vertex d = rng.below(n);
    const auto g = graph::random_reachable_digraph(n, 16, 0.15, {1, 20}, d, rng);
    const auto bf = baseline::bellman_ford_to(g, d);
    const Result r = solve(g, d);
    // The PPA loop runs the same synchronous relaxation: rounds that
    // change something, plus the final no-change detection pass.
    EXPECT_EQ(r.iterations, bf.rounds + 1) << "n=" << n << " d=" << d;
  }
}

TEST(Mcp, IterationTraceRecordsChanges) {
  util::Rng rng(4);
  const auto g = graph::directed_ring(6, 16, {1, 5}, rng);
  Options options;
  options.record_iterations = true;
  const Result r = solve(g, 0, options);
  ASSERT_EQ(r.iteration_trace.size(), r.iterations);
  // On a ring toward 0: each iteration settles exactly one more vertex.
  for (std::size_t k = 0; k + 1 < r.iteration_trace.size(); ++k) {
    EXPECT_EQ(r.iteration_trace[k].changed, 1u) << "iteration " << k;
    EXPECT_GT(r.iteration_trace[k].steps.total(), 0u);
  }
  EXPECT_EQ(r.iteration_trace.back().changed, 0u);
}

TEST(Mcp, StepAccountingIsConsistent) {
  const auto g = test::tiny_graph();
  const Result r = solve(g, 3);
  EXPECT_GT(r.init_steps.total(), 0u);
  EXPECT_GT(r.total_steps.total(), r.init_steps.total());
  EXPECT_EQ(r.total_steps.count(sim::StepCategory::GlobalOr), r.iterations);
}

TEST(Mcp, PerIterationCostIndependentOfDestination) {
  // Same graph, different d: the per-iteration step cost is the same SIMD
  // program, so equal iteration counts give equal step totals.
  util::Rng rng(9);
  const auto g = graph::complete(10, 16, {1, 30}, rng);
  const Result r0 = solve(g, 0);
  const Result r7 = solve(g, 7);
  ASSERT_EQ(r0.iterations, r7.iterations);
  EXPECT_EQ(r0.total_steps.total(), r7.total_steps.total());
}

TEST(Mcp, OrProbeVariantSameCostsFewerBroadcasts) {
  util::Rng rng(13);
  const auto g = graph::random_reachable_digraph(12, 16, 0.2, {1, 25}, 4, rng);
  Options probe;
  probe.min_variant = MinVariant::OrProbe;
  const Result paper = solve(g, 4);
  const Result orprobe = solve(g, 4, probe);
  EXPECT_EQ(paper.solution.cost, orprobe.solution.cost);
  EXPECT_EQ(paper.solution.next, orprobe.solution.next);
  EXPECT_GT(paper.total_steps.count(sim::StepCategory::BusBroadcast),
            orprobe.total_steps.count(sim::StepCategory::BusBroadcast));
}

TEST(Mcp, DeterministicAcrossHostThreadCounts) {
  util::Rng rng(21);
  const auto g = graph::random_digraph(10, 16, 0.3, {1, 20}, rng);
  const auto run = [&](std::size_t threads) {
    sim::MachineConfig cfg;
    cfg.n = g.size();
    cfg.bits = g.field().bits();
    cfg.host_threads = threads;
    sim::Machine machine(cfg);
    return minimum_cost_path(machine, g, 5);
  };
  const Result a = run(1);
  const Result b = run(3);
  EXPECT_EQ(a.solution.cost, b.solution.cost);
  EXPECT_EQ(a.solution.next, b.solution.next);
  EXPECT_EQ(a.total_steps, b.total_steps);
}

TEST(Mcp, MachineReuseAccumulatesButReportsPerCall) {
  const auto g = test::tiny_graph(16);
  sim::MachineConfig cfg;
  cfg.n = 4;
  cfg.bits = 16;
  sim::Machine machine(cfg);
  const Result first = minimum_cost_path(machine, g, 3);
  const auto after_first = machine.steps().total();
  const Result second = minimum_cost_path(machine, g, 3);
  EXPECT_EQ(first.total_steps, second.total_steps);
  EXPECT_EQ(machine.steps().total(), 2 * after_first);
}

TEST(Mcp, ContractViolations) {
  const auto g = test::tiny_graph();
  EXPECT_THROW((void)solve(g, 4), util::ContractError);  // destination oob

  sim::MachineConfig cfg;
  cfg.n = 5;  // wrong size
  cfg.bits = 8;
  sim::Machine wrong_size(cfg);
  EXPECT_THROW((void)minimum_cost_path(wrong_size, g, 0), util::ContractError);

  cfg.n = 4;
  cfg.bits = 16;  // wrong field
  sim::Machine wrong_bits(cfg);
  EXPECT_THROW((void)minimum_cost_path(wrong_bits, g, 0), util::ContractError);
}

TEST(Mcp, LinearBusesAreRejectedNotSilentlyWrong) {
  // DESIGN.md §2: the algorithm's broadcasts rely on ring wrap-around.
  // With Linear buses the very first init broadcast leaves part of the
  // array floating, and the machine REFUSES (ContractError) instead of
  // computing garbage.
  const auto g = test::tiny_graph(16);
  sim::MachineConfig cfg;
  cfg.n = 4;
  cfg.bits = 16;
  cfg.topology = sim::BusTopology::Linear;
  sim::Machine machine(cfg);
  EXPECT_THROW((void)minimum_cost_path(machine, g, 2), util::ContractError);
}

TEST(Mcp, TwoSidedSchemeSolvesOnLinearBuses) {
  // The same DP ports to linear buses: every broadcast issued in both
  // directions, OR-probe minima. Exact agreement with Dijkstra.
  util::Rng rng(71);
  for (int t = 0; t < 8; ++t) {
    const std::size_t n = 2 + rng.below(14);
    const Vertex d = rng.below(n);
    const auto g = graph::random_digraph(n, 16, 0.3, {0, 20}, rng);
    sim::MachineConfig cfg;
    cfg.n = n;
    cfg.bits = 16;
    cfg.topology = sim::BusTopology::Linear;
    sim::Machine machine(cfg);
    Options options;
    options.broadcast_scheme = BroadcastScheme::TwoSidedLinear;
    const Result r = minimum_cost_path(machine, g, d, options);
    test::expect_solves(g, r.solution, "two-sided t=" + std::to_string(t));
  }
}

TEST(Mcp, TwoSidedSchemeCostsTwiceTheBroadcasts) {
  util::Rng rng(72);
  const auto g = graph::random_reachable_digraph(10, 16, 0.2, {1, 20}, 3, rng);

  Options ring_options;
  ring_options.min_variant = MinVariant::OrProbe;  // same minima as two-sided
  const Result ring = solve(g, 3, ring_options);

  sim::MachineConfig cfg;
  cfg.n = 10;
  cfg.bits = 16;
  cfg.topology = sim::BusTopology::Linear;
  sim::Machine machine(cfg);
  Options linear_options;
  linear_options.broadcast_scheme = BroadcastScheme::TwoSidedLinear;
  const Result linear = minimum_cost_path(machine, g, 3, linear_options);

  EXPECT_EQ(linear.solution.cost, ring.solution.cost);
  EXPECT_EQ(linear.solution.next, ring.solution.next);
  ASSERT_EQ(linear.iterations, ring.iterations);
  EXPECT_EQ(linear.total_steps.count(sim::StepCategory::BusBroadcast),
            2 * ring.total_steps.count(sim::StepCategory::BusBroadcast));
  EXPECT_EQ(linear.total_steps.count(sim::StepCategory::BusOr),
            ring.total_steps.count(sim::StepCategory::BusOr));
}

TEST(Mcp, TwoSidedSchemeAlsoWorksOnRing) {
  const auto g = test::tiny_graph(16);
  sim::MachineConfig cfg;
  cfg.n = 4;
  cfg.bits = 16;
  sim::Machine machine(cfg);
  Options options;
  options.broadcast_scheme = BroadcastScheme::TwoSidedLinear;
  const Result r = minimum_cost_path(machine, g, 3, options);
  EXPECT_EQ(r.solution.cost, (std::vector<graph::Weight>{5, 3, 1, 0}));
}

TEST(Mcp, DestinationRowConventions) {
  const auto g = test::tiny_graph();
  const Result r = solve(g, 3);
  EXPECT_EQ(r.solution.cost[3], 0u);
  EXPECT_EQ(r.solution.next[3], 3u);
  EXPECT_EQ(r.solution.destination, 3u);
}

}  // namespace
}  // namespace ppa::mcp
