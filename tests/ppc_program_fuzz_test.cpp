// Differential fuzzing of the PPC language layer: random straight-line
// masked-SIMD programs executed both through the eDSL and through an
// independent host interpreter that re-implements the semantics from the
// documentation (masked stores, unmasked expressions, AND-composed nested
// wheres, ring broadcasts, bit-serial row minima). Any divergence is a
// semantics bug in one of the two — and the interpreter is simple enough
// to audit by eye.
#include <gtest/gtest.h>

#include <algorithm>

#include "ppc/primitives.hpp"
#include "util/rng.hpp"

namespace ppa::ppc {
namespace {

using sim::Direction;

/// The host model: three word registers + a mask stack over n*n cells.
struct HostModel {
  std::size_t n;
  util::HField field;
  std::array<std::vector<Word>, 3> reg;
  std::vector<std::vector<std::uint8_t>> masks;  // stack; back() active

  HostModel(std::size_t side, int bits)
      : n(side), field(bits), masks{std::vector<std::uint8_t>(side * side, 1)} {
    for (auto& r : reg) r.assign(n * n, 0);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& mask() const { return masks.back(); }

  void masked_store(std::vector<Word>& dst, const std::vector<Word>& value) {
    for (std::size_t pe = 0; pe < dst.size(); ++pe) {
      if (mask()[pe]) dst[pe] = value[pe];
    }
  }

  /// Ring broadcast along rows, opens at one column: every PE of a row
  /// receives the value at (row, open_col).
  [[nodiscard]] std::vector<Word> row_broadcast(const std::vector<Word>& src,
                                                std::size_t open_col) const {
    std::vector<Word> out(n * n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) out[r * n + c] = src[r * n + open_col];
    }
    return out;
  }

  [[nodiscard]] std::vector<Word> row_min(const std::vector<Word>& src) const {
    std::vector<Word> out(n * n);
    for (std::size_t r = 0; r < n; ++r) {
      const Word m = *std::min_element(src.begin() + static_cast<std::ptrdiff_t>(r * n),
                                       src.begin() + static_cast<std::ptrdiff_t>((r + 1) * n));
      for (std::size_t c = 0; c < n; ++c) out[r * n + c] = m;
    }
    return out;
  }
};

class ProgramFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProgramFuzz, RandomProgramsMatchTheHostInterpreter) {
  util::Rng rng(GetParam());
  for (int program = 0; program < 10; ++program) {
    const std::size_t n = 2 + rng.below(5);
    const int bits = static_cast<int>(4 + rng.below(13));
    sim::MachineConfig cfg;
    cfg.n = n;
    cfg.bits = bits;
    sim::Machine machine(cfg);
    Context ctx(machine);
    HostModel host(n, bits);

    // Registers A, B, C with random initial contents.
    std::vector<Pint> regs;
    for (int r = 0; r < 3; ++r) {
      std::vector<Word> init(n * n);
      for (auto& v : init) {
        v = static_cast<Word>(rng.below(host.field.infinity() + 1ull));
      }
      host.reg[static_cast<std::size_t>(r)] = init;
      regs.emplace_back(ctx, init);
    }
    std::size_t depth = 0;
    const int steps = 12 + static_cast<int>(rng.below(20));
    for (int step = 0; step < steps; ++step) {
      const std::size_t dst = rng.below(3);
      const std::size_t a = rng.below(3);
      const std::size_t b = rng.below(3);
      switch (rng.below(8)) {
        case 0: {  // dst = a + b (saturating, masked)
          regs[dst] = regs[a] + regs[b];
          std::vector<Word> value(n * n);
          for (std::size_t pe = 0; pe < value.size(); ++pe) {
            value[pe] = host.field.add(host.reg[a][pe], host.reg[b][pe]);
          }
          host.masked_store(host.reg[dst], value);
          break;
        }
        case 1: {  // dst = emin(a, b)
          regs[dst] = emin(regs[a], regs[b]);
          std::vector<Word> value(n * n);
          for (std::size_t pe = 0; pe < value.size(); ++pe) {
            value[pe] = std::min(host.reg[a][pe], host.reg[b][pe]);
          }
          host.masked_store(host.reg[dst], value);
          break;
        }
        case 2: {  // dst = select(a < b, a, b)  (== emin but via select)
          regs[dst] = select(regs[a] < regs[b], regs[a], regs[b]);
          std::vector<Word> value(n * n);
          for (std::size_t pe = 0; pe < value.size(); ++pe) {
            value[pe] =
                host.reg[a][pe] < host.reg[b][pe] ? host.reg[a][pe] : host.reg[b][pe];
          }
          host.masked_store(host.reg[dst], value);
          break;
        }
        case 3: {  // where push on (a < b)
          if (depth >= 3) break;
          ctx.push_mask_and((regs[a] < regs[b]).values());
          std::vector<std::uint8_t> next(host.mask());
          for (std::size_t pe = 0; pe < next.size(); ++pe) {
            next[pe] = static_cast<std::uint8_t>(
                next[pe] & (host.reg[a][pe] < host.reg[b][pe] ? 1 : 0));
          }
          host.masks.push_back(std::move(next));
          ++depth;
          break;
        }
        case 4: {  // pop
          if (depth == 0) break;
          ctx.pop_mask();
          host.masks.pop_back();
          --depth;
          break;
        }
        case 5: {  // dst = broadcast(a, East, COL == open_col) — ring row broadcast
          const std::size_t open_col = rng.below(n);
          const Pbool opens = (col_of(ctx) == static_cast<Word>(open_col));
          regs[dst] = broadcast(regs[a], Direction::East, opens);
          host.masked_store(host.reg[dst], host.row_broadcast(host.reg[a], open_col));
          break;
        }
        case 6: {  // dst = pmin(a) over rows — ONLY under a full mask.
          // pmin's internal wheres compose with the ambient mask: under a
          // partial-row mask the frozen PEs keep their stale `enable` and
          // keep pulling the wired-OR, corrupting the row minimum for the
          // active PEs too. That is faithful to the hardware (the paper
          // only calls min() with whole rows active) — see
          // docs/ppc_language.md §5 — so the fuzzer only issues pmin at
          // mask depth 0.
          if (depth != 0) break;
          const Pbool anchor = (col_of(ctx) == static_cast<Word>(n - 1));
          regs[dst] = pmin(regs[a], Direction::West, anchor);
          host.masked_store(host.reg[dst], host.row_min(host.reg[a]));
          break;
        }
        default: {  // dst.store_all(b) — unmasked
          regs[dst].store_all(regs[b]);
          host.reg[dst] = host.reg[b];
          break;
        }
      }
    }
    while (depth > 0) {
      ctx.pop_mask();
      host.masks.pop_back();
      --depth;
    }

    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t pe = 0; pe < n * n; ++pe) {
        ASSERT_EQ(regs[r].at(pe), host.reg[r][pe])
            << "seed=" << GetParam() << " program=" << program << " reg=" << r
            << " pe=" << pe << " (n=" << n << ", h=" << bits << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ppa::ppc
