#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ppa::graph {
namespace {

TEST(ReachableTo, DirectedPath) {
  util::Rng rng(1);
  const auto g = directed_path(5, 8, {1, 3}, rng);
  const auto mask = reachable_to(g, 4);
  for (Vertex v = 0; v < 5; ++v) EXPECT_TRUE(mask[v]);
  const auto mask0 = reachable_to(g, 0);
  EXPECT_TRUE(mask0[0]);
  for (Vertex v = 1; v < 5; ++v) EXPECT_FALSE(mask0[v]);
}

TEST(ReachableTo, DisconnectedComponents) {
  WeightMatrix g(4, 8);
  g.set(0, 1, 1);
  g.set(2, 3, 1);
  const auto mask = reachable_to(g, 1);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);
  EXPECT_FALSE(mask[3]);
  EXPECT_EQ(reachable_count(g, 1), 2u);
  EXPECT_FALSE(all_reach(g, 1));
}

TEST(ReachableTo, ContractChecks) {
  const WeightMatrix g(3, 8);
  EXPECT_THROW((void)reachable_to(g, 3), util::ContractError);
  EXPECT_THROW((void)max_mcp_edges(g, 3), util::ContractError);
}

TEST(MaxMcpEdges, IsolatedDestination) {
  const WeightMatrix g(4, 8);
  EXPECT_EQ(max_mcp_edges(g, 0), 0u);
}

TEST(MaxMcpEdges, SingleEdge) {
  WeightMatrix g(3, 8);
  g.set(1, 0, 5);
  EXPECT_EQ(max_mcp_edges(g, 0), 1u);
}

TEST(MaxMcpEdges, RingIsWorstCase) {
  util::Rng rng(3);
  for (const std::size_t n : {3u, 5u, 9u, 16u}) {
    const auto g = directed_ring(n, 16, {1, 4}, rng);
    EXPECT_EQ(max_mcp_edges(g, 0), n - 1) << "n=" << n;
  }
}

TEST(MaxMcpEdges, PathDepthByDestination) {
  util::Rng rng(3);
  const auto g = directed_path(7, 8, {1, 3}, rng);
  EXPECT_EQ(max_mcp_edges(g, 6), 6u);
  EXPECT_EQ(max_mcp_edges(g, 3), 3u);
  EXPECT_EQ(max_mcp_edges(g, 0), 0u);  // nothing reaches 0
}

TEST(MaxMcpEdges, ShortcutShortensP) {
  // Ring 0->1->2->3->0 with a shortcut 1->0 that is CHEAPER than going
  // around: p to 0 becomes small.
  WeightMatrix g(4, 8);
  g.set(0, 1, 1);
  g.set(1, 2, 1);
  g.set(2, 3, 1);
  g.set(3, 0, 1);
  g.set(1, 0, 1);
  g.set(2, 0, 1);
  // MCPs to 0: 1->0 (1 edge), 2->0 (1 edge), 3->0 (1 edge).
  EXPECT_EQ(max_mcp_edges(g, 0), 1u);
}

TEST(MaxMcpEdges, PrefersCheaperLongerPath) {
  // 0 -> d direct costs 10; 0 -> 1 -> d costs 2: the MCP has 2 edges.
  WeightMatrix g(3, 8);
  g.set(0, 2, 10);
  g.set(0, 1, 1);
  g.set(1, 2, 1);
  EXPECT_EQ(max_mcp_edges(g, 2), 2u);
}

TEST(MaxMcpEdges, LayeredDagMatchesDepth) {
  util::Rng rng(9);
  for (const std::size_t layers : {1u, 2u, 4u, 7u}) {
    const auto g = layered_dag(layers, 3, 2, 12, {1, 5}, rng);
    EXPECT_EQ(max_mcp_edges(g, g.size() - 1), layers);
  }
}

TEST(MaxMcpEdges, BoundedByNMinus1) {
  util::Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const std::size_t n = 4 + rng.below(12);
    const auto g = random_digraph(n, 12, 0.3, {1, 9}, rng);
    EXPECT_LE(max_mcp_edges(g, rng.below(n)), n - 1);
  }
}

}  // namespace
}  // namespace ppa::graph
