#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ppa::graph {
namespace {

TEST(GraphIo, RoundTripsRandomGraphs) {
  util::Rng rng(31);
  for (int t = 0; t < 10; ++t) {
    const auto g = random_digraph(4 + rng.below(20), 12, 0.3, {1, 50}, rng);
    EXPECT_EQ(graph_from_string(to_string(g)), g);
  }
}

TEST(GraphIo, CanonicalForm) {
  util::Rng rng(31);
  const auto g = random_digraph(8, 8, 0.4, {1, 9}, rng);
  const std::string once = to_string(g);
  EXPECT_EQ(to_string(graph_from_string(once)), once);
}

TEST(GraphIo, EmptyGraphSerializes) {
  const WeightMatrix g(3, 16);
  const auto back = graph_from_string(to_string(g));
  EXPECT_EQ(back, g);
}

TEST(GraphIo, CommentsAndWhitespaceIgnored) {
  const auto g = graph_from_string(
      "# a comment line\n"
      "ppa-graph 1\n"
      "n 3 h 8   # trailing comment\n"
      "e 0 1 5\n"
      "# another\n"
      "e 2 0 7\n");
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.at(0, 1), 5u);
  EXPECT_EQ(g.at(2, 0), 7u);
}

TEST(GraphIo, RejectsMalformedInputs) {
  EXPECT_THROW((void)graph_from_string(""), util::ParseError);
  EXPECT_THROW((void)graph_from_string("wrong-header 1"), util::ParseError);
  EXPECT_THROW((void)graph_from_string("ppa-graph 2\nn 3 h 8\n"), util::ParseError);
  EXPECT_THROW((void)graph_from_string("ppa-graph 1\nn 0 h 8\n"), util::ParseError);
  EXPECT_THROW((void)graph_from_string("ppa-graph 1\nn 3 h 40\n"), util::ParseError);
  EXPECT_THROW((void)graph_from_string("ppa-graph 1\nn 3 h 8\ne 0 1\n"), util::ParseError);
  EXPECT_THROW((void)graph_from_string("ppa-graph 1\nn 3 h 8\ne 0 5 1\n"), util::ParseError);
  EXPECT_THROW((void)graph_from_string("ppa-graph 1\nn 3 h 8\ne 0 1 255\n"),
               util::ParseError);  // weight == infinity
  EXPECT_THROW((void)graph_from_string("ppa-graph 1\nn 3 h 8\nx 0 1 2\n"), util::ParseError);
  EXPECT_THROW((void)graph_from_string("ppa-graph 1\nn -3 h 8\n"), util::ParseError);
}

TEST(GraphIo, FileSaveAndLoad) {
  util::Rng rng(77);
  const auto g = random_digraph(10, 10, 0.3, {1, 100}, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppa_io_test_graph.txt").string();
  save_graph(path, g);
  EXPECT_EQ(load_graph(path), g);
  std::remove(path.c_str());
}

TEST(GraphIo, FileErrorsThrow) {
  EXPECT_THROW((void)load_graph("/nonexistent/dir/x.g"), util::ParseError);
  const WeightMatrix g(2, 8);
  EXPECT_THROW(save_graph("/nonexistent/dir/x.g", g), util::ParseError);
}

}  // namespace
}  // namespace ppa::graph
