// Differential fuzzing of the bus engine: random arrays, switch settings,
// directions and topologies, checked against an independently written
// brute-force reference model (per-receiver upstream scan), not against
// the engine's own walk.
#include <gtest/gtest.h>

#include <optional>

#include "sim/bus.hpp"
#include "sim/bus_reference.hpp"
#include "util/rng.hpp"

namespace ppa::sim {
namespace {

struct LinePos {
  std::size_t pe;
};

/// Positions of one line in flow order, matching the engine's geometry
/// conventions (East/South ascending, West/North descending).
std::vector<std::size_t> line_in_flow_order(std::size_t n, Direction dir, std::size_t line) {
  std::vector<std::size_t> pes(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t q =
        (dir == Direction::West || dir == Direction::North) ? n - 1 - k : k;
    pes[k] = (axis_of(dir) == Axis::Row) ? line * n + q : q * n + line;
  }
  return pes;
}

/// Reference broadcast: receiver k reads the nearest Open position
/// STRICTLY before it in flow order (wrapping on a Ring), found by a
/// plain backward scan.
std::optional<std::size_t> reference_driver(const std::vector<std::size_t>& pes,
                                            std::span<const Flag> open, BusTopology topology,
                                            std::size_t k) {
  const std::size_t n = pes.size();
  for (std::size_t back = 1; back <= n; ++back) {
    if (topology == BusTopology::Linear && back > k) break;
    const std::size_t j = (k + n - back) % n;
    if (open[pes[j]]) return j;
  }
  return std::nullopt;
}

/// Reference wired-OR: the segment of position k is the maximal set of
/// positions sharing k's "at-or-before nearest Open" anchor (or the head
/// segment); the result is the OR of the segment members' sources.
std::optional<std::size_t> reference_anchor(const std::vector<std::size_t>& pes,
                                            std::span<const Flag> open, BusTopology topology,
                                            std::size_t k) {
  const std::size_t n = pes.size();
  for (std::size_t back = 0; back <= n - 1; ++back) {
    if (topology == BusTopology::Linear && back > k) break;
    const std::size_t j = (k + n - back) % n;
    if (open[pes[j]]) return j;
  }
  return std::nullopt;  // head segment (or open-free ring line)
}

struct FuzzCase {
  std::size_t n;
  std::uint64_t seed;
  double open_density;
};

class BusFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(BusFuzz, BroadcastMatchesBruteForce) {
  const auto [n, seed, density] = GetParam();
  util::Rng rng(seed);
  for (int round = 0; round < 20; ++round) {
    std::vector<Word> src(n * n);
    std::vector<Flag> open(n * n);
    for (std::size_t pe = 0; pe < n * n; ++pe) {
      src[pe] = static_cast<Word>(rng.below(1000));
      open[pe] = rng.chance(density) ? Flag{1} : Flag{0};
    }
    const auto topology = rng.chance(0.5) ? BusTopology::Ring : BusTopology::Linear;
    const auto dir = static_cast<Direction>(rng.below(4));

    const BusResult got = bus_broadcast(n, topology, dir, src, open);
    for (std::size_t line = 0; line < n; ++line) {
      const auto pes = line_in_flow_order(n, dir, line);
      for (std::size_t k = 0; k < n; ++k) {
        const auto driver = reference_driver(pes, open, topology, k);
        if (driver) {
          ASSERT_EQ(got.driven[pes[k]], 1)
              << "n=" << n << " dir=" << name_of(dir) << " line=" << line << " k=" << k;
          ASSERT_EQ(got.values[pes[k]], src[pes[*driver]]);
        } else {
          ASSERT_EQ(got.driven[pes[k]], 0);
        }
      }
    }
  }
}

TEST_P(BusFuzz, WiredOrMatchesBruteForce) {
  const auto [n, seed, density] = GetParam();
  util::Rng rng(seed ^ 0xF00D);
  for (int round = 0; round < 20; ++round) {
    std::vector<Flag> src(n * n);
    std::vector<Flag> open(n * n);
    for (std::size_t pe = 0; pe < n * n; ++pe) {
      src[pe] = rng.chance(0.3) ? Flag{1} : Flag{0};
      open[pe] = rng.chance(density) ? Flag{1} : Flag{0};
    }
    const auto topology = rng.chance(0.5) ? BusTopology::Ring : BusTopology::Linear;
    const auto dir = static_cast<Direction>(rng.below(4));

    const BusResult got = bus_wired_or(n, topology, dir, src, open);
    for (std::size_t line = 0; line < n; ++line) {
      const auto pes = line_in_flow_order(n, dir, line);
      // Anchor of every position, then OR per anchor group.
      std::vector<std::optional<std::size_t>> anchor(n);
      for (std::size_t k = 0; k < n; ++k) {
        anchor[k] = reference_anchor(pes, open, topology, k);
      }
      for (std::size_t k = 0; k < n; ++k) {
        Flag expected = 0;
        for (std::size_t m = 0; m < n; ++m) {
          if (anchor[m] == anchor[k] && src[pes[m]]) expected = 1;
        }
        ASSERT_EQ(got.values[pes[k]], expected)
            << "n=" << n << " dir=" << name_of(dir) << " line=" << line << " k=" << k;
        ASSERT_EQ(got.driven[pes[k]], 1);
      }
    }
  }
}

// The production engine resolves clusters with a prefix/suffix scan; the
// retained naive per-position walk (bus_reference.cpp) must agree with it
// on values, driven flags AND max_segment for every randomized pattern —
// including the all-Open / all-Short extremes the densities above rarely
// hit.
TEST_P(BusFuzz, ScanMatchesNaiveReference) {
  const auto [n, seed, density] = GetParam();
  util::Rng rng(seed ^ 0xBEEF);
  for (int round = 0; round < 20; ++round) {
    std::vector<Word> src(n * n);
    std::vector<Flag> bits(n * n);
    std::vector<Flag> open(n * n);
    // Rounds 0/1 pin the extremes; later rounds are random at `density`.
    for (std::size_t pe = 0; pe < n * n; ++pe) {
      src[pe] = static_cast<Word>(rng.below(1000));
      bits[pe] = rng.chance(0.3) ? Flag{1} : Flag{0};
      if (round == 0) {
        open[pe] = 0;
      } else if (round == 1) {
        open[pe] = 1;
      } else {
        open[pe] = rng.chance(density) ? Flag{1} : Flag{0};
      }
    }
    const auto topology = rng.chance(0.5) ? BusTopology::Ring : BusTopology::Linear;
    const auto dir = static_cast<Direction>(rng.below(4));

    const BusResult got = bus_broadcast(n, topology, dir, src, open);
    const BusResult want = reference::bus_broadcast(n, topology, dir, src, open);
    ASSERT_EQ(got.values, want.values)
        << "n=" << n << " dir=" << name_of(dir) << " round=" << round;
    ASSERT_EQ(got.driven, want.driven);
    ASSERT_EQ(got.max_segment, want.max_segment);

    const BusResult got_or = bus_wired_or(n, topology, dir, bits, open);
    const BusResult want_or = reference::bus_wired_or(n, topology, dir, bits, open);
    ASSERT_EQ(got_or.values, want_or.values)
        << "n=" << n << " dir=" << name_of(dir) << " round=" << round;
    ASSERT_EQ(got_or.driven, want_or.driven);
    ASSERT_EQ(got_or.max_segment, want_or.max_segment);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BusFuzz,
                         ::testing::Values(FuzzCase{1, 1, 0.5}, FuzzCase{2, 2, 0.5},
                                           FuzzCase{3, 3, 0.3}, FuzzCase{5, 4, 0.2},
                                           FuzzCase{8, 5, 0.15}, FuzzCase{8, 6, 0.6},
                                           FuzzCase{13, 7, 0.1}, FuzzCase{16, 8, 0.05},
                                           FuzzCase{16, 9, 0.9}));

}  // namespace
}  // namespace ppa::sim
