#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"
#include "util/check.hpp"

namespace ppa::graph {
namespace {

class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng{GetParam()};
};

TEST_P(GeneratorSeeds, RandomDigraphRespectsRangeAndNoSelfLoops) {
  const auto g = random_digraph(20, 8, 0.3, {2, 9}, rng);
  EXPECT_EQ(g.size(), 20u);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_GE(e.weight, 2u);
    EXPECT_LE(e.weight, 9u);
  }
}

TEST_P(GeneratorSeeds, RandomDigraphDensityIsPlausible) {
  const auto g = random_digraph(40, 16, 0.25, {1, 5}, rng);
  const double pairs = 40.0 * 39.0;
  const double density = static_cast<double>(g.edge_count()) / pairs;
  EXPECT_NEAR(density, 0.25, 0.08);
}

TEST_P(GeneratorSeeds, ReachableDigraphReachesDestination) {
  for (const Vertex d : {Vertex{0}, Vertex{7}, Vertex{14}}) {
    const auto g = random_reachable_digraph(15, 10, 0.1, {1, 8}, d, rng);
    EXPECT_TRUE(all_reach(g, d)) << "destination " << d;
  }
}

TEST_P(GeneratorSeeds, DirectedRingStructure) {
  const auto g = directed_ring(9, 8, {1, 3}, rng);
  EXPECT_EQ(g.edge_count(), 9u);
  for (Vertex i = 0; i < 9; ++i) EXPECT_TRUE(g.has_edge(i, (i + 1) % 9));
  // Worst-case p: the vertex just after the destination is n-1 edges away.
  EXPECT_EQ(max_mcp_edges(g, 0), 8u);
}

TEST_P(GeneratorSeeds, DirectedPathStructure) {
  const auto g = directed_path(6, 8, {1, 3}, rng);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_TRUE(all_reach(g, 5));
  EXPECT_EQ(reachable_count(g, 0), 1u);  // nothing reaches vertex 0 but itself
}

TEST_P(GeneratorSeeds, LayeredDagHasExactDepth) {
  const std::size_t layers = 5;
  const auto g = layered_dag(layers, 4, 2, 12, {1, 6}, rng);
  EXPECT_EQ(g.size(), layers * 4 + 1);
  const Vertex sink = g.size() - 1;
  EXPECT_TRUE(all_reach(g, sink));
  // Every path from layer 0 to the sink has exactly `layers` edges.
  EXPECT_EQ(max_mcp_edges(g, sink), layers);
}

TEST_P(GeneratorSeeds, GridMeshIsBidirectional) {
  const auto g = grid_mesh(3, 4, 8, {1, 5}, rng);
  EXPECT_EQ(g.size(), 12u);
  for (const Edge& e : g.edges()) EXPECT_TRUE(g.has_edge(e.to, e.from));
  // Interior connectivity: everything reaches everything.
  EXPECT_TRUE(all_reach(g, 0));
  EXPECT_TRUE(all_reach(g, 11));
  // 2*rows*cols - rows - cols undirected links, two arcs each.
  EXPECT_EQ(g.edge_count(), 2u * (2 * 3 * 4 - 3 - 4));
}

TEST_P(GeneratorSeeds, TorusAddsWrapEdges) {
  const auto g = torus_mesh(4, 4, 8, {1, 5}, rng);
  EXPECT_TRUE(g.has_edge(0, 3) || g.has_edge(3, 0));  // row wrap
  EXPECT_TRUE(g.has_edge(0, 12) || g.has_edge(12, 0));  // column wrap
  EXPECT_GT(g.edge_count(), grid_mesh(4, 4, 8, {1, 5}, rng).edge_count());
}

TEST_P(GeneratorSeeds, StarStructure) {
  const auto g = star(7, 8, 2, {1, 4}, rng);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_TRUE(all_reach(g, 2));
  EXPECT_EQ(max_mcp_edges(g, 2), 1u);   // every spoke is one edge away
  EXPECT_EQ(max_mcp_edges(g, 3), 2u);   // spoke -> hub -> spoke
}

TEST_P(GeneratorSeeds, CompleteDigraph) {
  const auto g = complete(6, 8, {1, 9}, rng);
  EXPECT_EQ(g.edge_count(), 30u);
  EXPECT_EQ(max_mcp_edges(g, 0) <= 5u, true);
}

TEST_P(GeneratorSeeds, BandedRespectsBandwidth) {
  const auto g = banded(10, 8, 2, {1, 5}, rng);
  for (const Edge& e : g.edges()) {
    const std::size_t gap = e.from > e.to ? e.from - e.to : e.to - e.from;
    EXPECT_LE(gap, 2u);
    EXPECT_GE(gap, 1u);
  }
  EXPECT_EQ(g.edge_count(), 2u * (9 + 8));
}

TEST_P(GeneratorSeeds, GeometricEdgesScaleWithDistance) {
  const auto g = geometric(30, 12, 0.5, {10, 100}, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 10u);
    EXPECT_LE(e.weight, 100u);
    // Symmetric support: if i sees j then j sees i (identical distance).
    EXPECT_TRUE(g.has_edge(e.to, e.from));
    EXPECT_EQ(g.at(e.to, e.from), e.weight);
  }
}

TEST_P(GeneratorSeeds, RingOfCliquesStructure) {
  const std::size_t cliques = 5;
  const std::size_t size = 4;
  const auto g = ring_of_cliques(cliques, size, 8, {1, 9}, rng);
  EXPECT_EQ(g.size(), cliques * size);
  // Each clique: size*(size-1) internal arcs; plus one gateway per clique.
  EXPECT_EQ(g.edge_count(), cliques * (size * (size - 1) + 1));
  for (std::size_t k = 0; k < cliques; ++k) {
    const Vertex base = static_cast<Vertex>(k * size);
    for (Vertex a = 0; a < size; ++a) {
      for (Vertex b = 0; b < size; ++b) {
        if (a != b) EXPECT_TRUE(g.has_edge(base + a, base + b)) << k;
      }
    }
    // Gateway: last slot of clique k -> first slot of clique k+1 (wrap).
    EXPECT_TRUE(g.has_edge(base + size - 1,
                           static_cast<Vertex>(((k + 1) % cliques) * size)));
  }
  // The ring of gateways makes the whole graph strongly connected...
  EXPECT_TRUE(all_reach(g, 0));
  // ...but a wavefront must cross ~all gateways to get around: the worst
  // source pays one hop into its gateway vertex plus one per clique hop.
  EXPECT_GE(max_mcp_edges(g, 0), cliques - 1);
}

TEST_P(GeneratorSeeds, RingOfCliquesSingleCliqueHasNoGateway) {
  const auto g = ring_of_cliques(1, 4, 8, {1, 9}, rng);
  EXPECT_EQ(g.edge_count(), 4u * 3u);  // just the complete clique
}

TEST_P(GeneratorSeeds, PowerLawReachesVertexZeroWithFewHops) {
  const std::size_t n = 64;
  const auto g = power_law(n, 16, 2, 0.0, {1, 9}, rng);
  // back_probability = 0: pure attachment DAG, every edge points to a
  // strictly earlier vertex...
  for (const Edge& e : g.edges()) EXPECT_LT(e.to, e.from);
  // ...so every vertex reaches 0, and through hubs, in few hops.
  EXPECT_TRUE(all_reach(g, 0));
  EXPECT_LT(max_mcp_edges(g, 0), n / 4);
  // Each vertex v >= 1 contributes min(2, v) attachment edges exactly.
  EXPECT_EQ(g.edge_count(), 1u + 2u * (n - 2));
}

TEST_P(GeneratorSeeds, PowerLawBackEdgesStayWithinEdgePairs) {
  const auto g = power_law(48, 16, 3, 0.5, {2, 7}, rng);
  std::size_t forward = 0;
  std::size_t backward = 0;
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 2u);
    EXPECT_LE(e.weight, 7u);
    if (e.to < e.from) {
      ++forward;
    } else {
      ++backward;
      // A reverse edge only ever shadows a forward attachment.
      EXPECT_TRUE(g.has_edge(e.to, e.from));
    }
  }
  EXPECT_GT(backward, 0u);
  EXPECT_LE(backward, forward);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds, ::testing::Values(1u, 42u, 20260704u));

TEST(Generators, Determinism) {
  util::Rng a(5);
  util::Rng b(5);
  EXPECT_EQ(random_digraph(12, 8, 0.3, {1, 9}, a), random_digraph(12, 8, 0.3, {1, 9}, b));
  util::Rng c(5);
  util::Rng d(5);
  EXPECT_EQ(ring_of_cliques(4, 5, 8, {1, 9}, c), ring_of_cliques(4, 5, 8, {1, 9}, d));
  util::Rng e(5);
  util::Rng f(5);
  EXPECT_EQ(power_law(30, 8, 2, 0.2, {1, 9}, e), power_law(30, 8, 2, 0.2, {1, 9}, f));
}

TEST(Generators, RejectsBadParameters) {
  util::Rng rng(1);
  EXPECT_THROW((void)random_digraph(5, 4, 0.5, {1, 15}, rng), util::ContractError);  // hi==inf
  EXPECT_THROW((void)random_digraph(5, 8, 0.5, {9, 3}, rng), util::ContractError);   // inverted
  EXPECT_THROW((void)layered_dag(3, 2, 5, 8, {1, 5}, rng), util::ContractError);     // fan_out>width
  EXPECT_THROW((void)star(5, 8, 9, {1, 5}, rng), util::ContractError);               // center oob
  EXPECT_THROW((void)banded(5, 8, 0, {1, 5}, rng), util::ContractError);
  EXPECT_THROW((void)geometric(5, 8, 0.0, {1, 5}, rng), util::ContractError);
  EXPECT_THROW((void)ring_of_cliques(0, 4, 8, {1, 5}, rng), util::ContractError);
  EXPECT_THROW((void)power_law(8, 8, 0, 0.1, {1, 5}, rng), util::ContractError);
}

TEST(Generators, ZeroWeightEdgesAllowed) {
  util::Rng rng(3);
  const auto g = random_digraph(10, 8, 0.5, {0, 0}, rng);
  for (const Edge& e : g.edges()) EXPECT_EQ(e.weight, 0u);
  EXPECT_GT(g.edge_count(), 0u);
}

}  // namespace
}  // namespace ppa::graph
