// Machine-level fault masking (docs/robustness.md): TMR-voted bus cycles
// and ECC parity planes, exercised directly against the two bus engines.
//
// The contracts pinned here:
//   - masking is invisible on a fault-free machine: values, driven flags
//     and max_segment are bit-identical to the unmasked cycle, and the
//     overhead lands exclusively in StepCategory::Masking;
//   - TMR corrects any transient fault with period >= 3 (at most one of
//     the three voting trials can be hit) but, by construction, cannot fix
//     a persistent fault (three identically wrong trials out-vote reality);
//   - ECC corrects single stuck bus wires — persistent ones included —
//     in one parity beat, and flags multi-wire syndromes with no matching
//     signature as uncorrectable instead of guessing.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "sim/fault_model.hpp"
#include "sim/machine.hpp"
#include "util/check.hpp"

namespace ppa::sim {
namespace {

MachineConfig config_of(std::size_t n, int bits, BusMasking masking,
                        ExecBackend backend = ExecBackend::Words) {
  MachineConfig c;
  c.n = n;
  c.bits = bits;
  c.masking = masking;
  c.backend = backend;
  return c;
}

/// Deterministic word/open patterns shared by the identity tests.
void fill_patterns(std::size_t n, int bits, std::vector<Word>& src,
                   std::vector<Flag>& open) {
  src.assign(n * n, 0);
  open.assign(n * n, 0);
  for (std::size_t pe = 0; pe < n * n; ++pe) {
    src[pe] = static_cast<Word>((pe * 7 + 3) % (1u << bits));
    open[pe] = (pe % 9 == 0) ? 1 : 0;
  }
}

TEST(TmrMasking, FaultFreeWordCycleBitIdenticalWithMaskingOverhead) {
  const std::size_t n = 8;
  const int bits = 8;
  Machine plain(config_of(n, bits, BusMasking::None));
  Machine masked(config_of(n, bits, BusMasking::Tmr));
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  std::vector<Word> v0(n * n), v1(n * n);
  std::vector<Flag> d0(n * n), d1(n * n);
  const std::size_t seg0 =
      plain.broadcast_into(std::span<const Word>(src), Direction::East, open, v0, d0);
  const std::size_t seg1 =
      masked.broadcast_into(std::span<const Word>(src), Direction::East, open, v1, d1);
  EXPECT_EQ(v1, v0);
  EXPECT_EQ(d1, d0);
  EXPECT_EQ(seg1, seg0);

  // The vote itself is free of data effects; only the step ledger differs:
  // one normal bus cycle plus two Masking-charged voting trials.
  EXPECT_EQ(masked.steps().count(StepCategory::BusBroadcast), 1u);
  EXPECT_EQ(masked.steps().count(StepCategory::Masking), 2u);
  EXPECT_EQ(masked.masking_stats().votes, 1u);
  EXPECT_EQ(masked.masking_stats().corrections, 0u);
  // Each voting trial is a physical bus cycle for transient-fault gating.
  EXPECT_EQ(masked.bus_cycles(), 3u);
  EXPECT_EQ(plain.bus_cycles(), 1u);
}

TEST(TmrMasking, CorrectsTransientStuckBitWithPeriodThree) {
  const std::size_t n = 8;
  const int bits = 8;
  Machine clean(config_of(n, bits, BusMasking::None));
  Machine masked(config_of(n, bits, BusMasking::Tmr));
  // Period 3 hits exactly one of the first three trials (cycle 0).
  masked.inject_faults(FaultModel::parse("transient-bit:row,1,3,1,3,0", n, bits));
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  std::vector<Word> want(n * n), got(n * n);
  std::vector<Flag> dw(n * n), dg(n * n);
  (void)clean.broadcast_into(std::span<const Word>(src), Direction::East, open, want, dw);
  (void)masked.broadcast_into(std::span<const Word>(src), Direction::East, open, got, dg);
  EXPECT_EQ(got, want) << "2-of-3 vote did not mask the transient wire";
  EXPECT_EQ(dg, dw);
  EXPECT_EQ(masked.masking_stats().votes, 1u);
  EXPECT_EQ(masked.masking_stats().corrections, 1u);
}

TEST(TmrMasking, CannotFixPersistentStuckBit) {
  const std::size_t n = 8;
  const int bits = 8;
  Machine clean(config_of(n, bits, BusMasking::None));
  Machine masked(config_of(n, bits, BusMasking::Tmr));
  masked.inject_faults(FaultModel::parse("stuck-bit:row,1,3,1", n, bits));
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  std::vector<Word> want(n * n), got(n * n);
  std::vector<Flag> dw(n * n), dg(n * n);
  (void)clean.broadcast_into(std::span<const Word>(src), Direction::East, open, want, dw);
  (void)masked.broadcast_into(std::span<const Word>(src), Direction::East, open, got, dg);
  // Three identically wrong trials out-vote reality: the delivered row 1
  // still carries the stuck bit, and no trial ever disagreed.
  EXPECT_NE(got, want);
  EXPECT_EQ(masked.masking_stats().votes, 1u);
  EXPECT_EQ(masked.masking_stats().corrections, 0u);
}

TEST(TmrMasking, PlaneEngineVotesIdenticallyToWordEngine) {
  // The differential-oracle extension: under IDENTICAL transient faults the
  // two bus engines of TMR-masked machines deliver bit-identical results.
  const std::size_t n = 67;  // straddles the 64-lane plane-word boundary
  const int bits = 8;
  Machine word_m(config_of(n, bits, BusMasking::Tmr));
  Machine plane_m(config_of(n, bits, BusMasking::Tmr, ExecBackend::BitPlane));
  const FaultModel model =
      FaultModel::parse("transient-bit:row,2,4,1,3,1;transient-bit:col,65,0,1,5,0", n, bits);
  word_m.inject_faults(model);
  plane_m.inject_faults(model);
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  std::vector<Word> word_values(n * n);
  std::vector<Flag> word_driven(n * n);
  const std::size_t word_seg = word_m.broadcast_into(
      std::span<const Word>(src), Direction::East, open, word_values, word_driven);

  const PlaneGeometry& g = plane_m.plane_geometry();
  std::vector<PlaneWord> src_planes(g.plane_words() * static_cast<std::size_t>(bits));
  std::vector<PlaneWord> open_plane(g.plane_words());
  pack_words(g, src, bits, src_planes.data());
  pack_flags(g, open, open_plane.data());
  std::vector<PlaneWord> out_planes(src_planes.size());
  std::vector<PlaneWord> driven_plane(g.plane_words());
  const std::size_t plane_seg = plane_m.broadcast_planes_into(
      src_planes.data(), bits, Direction::East, open_plane.data(), out_planes.data(),
      driven_plane.data());

  EXPECT_EQ(plane_seg, word_seg);
  std::vector<Word> plane_values(n * n);
  std::vector<Flag> plane_driven(n * n);
  unpack_words(g, out_planes.data(), bits, plane_values);
  unpack_flags(g, driven_plane.data(), plane_driven);
  EXPECT_EQ(plane_values, word_values);
  EXPECT_EQ(plane_driven, word_driven);
  EXPECT_EQ(plane_m.masking_stats(), word_m.masking_stats());
  EXPECT_EQ(plane_m.bus_cycles(), word_m.bus_cycles());
}

TEST(EccMasking, RequiresBitPlaneBackend) {
  EXPECT_THROW((void)Machine(config_of(4, 8, BusMasking::Ecc, ExecBackend::Words)),
               util::ContractError);
}

TEST(EccMasking, FaultFreePlaneCycleBitIdenticalWithOneParityBeat) {
  const std::size_t n = 8;
  const int bits = 8;
  Machine plain(config_of(n, bits, BusMasking::None, ExecBackend::BitPlane));
  Machine masked(config_of(n, bits, BusMasking::Ecc, ExecBackend::BitPlane));
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  const PlaneGeometry& g = plain.plane_geometry();
  std::vector<PlaneWord> src_planes(g.plane_words() * static_cast<std::size_t>(bits));
  std::vector<PlaneWord> open_plane(g.plane_words());
  pack_words(g, src, bits, src_planes.data());
  pack_flags(g, open, open_plane.data());
  std::vector<PlaneWord> out0(src_planes.size()), out1(src_planes.size());
  std::vector<PlaneWord> drv0(g.plane_words()), drv1(g.plane_words());
  const std::size_t seg0 = plain.broadcast_planes_into(
      src_planes.data(), bits, Direction::South, open_plane.data(), out0.data(),
      drv0.data());
  const std::size_t seg1 = masked.broadcast_planes_into(
      src_planes.data(), bits, Direction::South, open_plane.data(), out1.data(),
      drv1.data());
  EXPECT_EQ(out1, out0);
  EXPECT_EQ(drv1, drv0);
  EXPECT_EQ(seg1, seg0);
  EXPECT_EQ(masked.steps().count(StepCategory::BusBroadcast), 1u);
  EXPECT_EQ(masked.steps().count(StepCategory::Masking), 1u);  // the parity beat
  EXPECT_EQ(masked.masking_stats().votes, 1u);
  EXPECT_EQ(masked.masking_stats().corrections, 0u);
  EXPECT_EQ(masked.masking_stats().uncorrectable, 0u);
}

TEST(EccMasking, CorrectsPersistentSingleStuckWire) {
  const std::size_t n = 8;
  const int bits = 8;
  Machine clean(config_of(n, bits, BusMasking::None, ExecBackend::BitPlane));
  Machine masked(config_of(n, bits, BusMasking::Ecc, ExecBackend::BitPlane));
  // The fault class TMR provably cannot mask — ECC's syndrome decode can.
  masked.inject_faults(FaultModel::parse("stuck-bit:row,1,3,1", n, bits));
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  const PlaneGeometry& g = clean.plane_geometry();
  std::vector<PlaneWord> src_planes(g.plane_words() * static_cast<std::size_t>(bits));
  std::vector<PlaneWord> open_plane(g.plane_words());
  pack_words(g, src, bits, src_planes.data());
  pack_flags(g, open, open_plane.data());
  std::vector<PlaneWord> want(src_planes.size()), got(src_planes.size());
  std::vector<PlaneWord> dw(g.plane_words()), dg(g.plane_words());
  (void)clean.broadcast_planes_into(src_planes.data(), bits, Direction::East,
                                    open_plane.data(), want.data(), dw.data());
  (void)masked.broadcast_planes_into(src_planes.data(), bits, Direction::East,
                                     open_plane.data(), got.data(), dg.data());
  EXPECT_EQ(got, want) << "syndrome decode did not repair the stuck wire";
  EXPECT_EQ(dg, dw);
  EXPECT_EQ(masked.masking_stats().corrections, 1u);
  EXPECT_EQ(masked.masking_stats().uncorrectable, 0u);
}

TEST(EccMasking, CorrectsTransientWireAndWiredOrCycle) {
  const std::size_t n = 8;
  const int bits = 8;
  Machine clean(config_of(n, bits, BusMasking::None, ExecBackend::BitPlane));
  Machine masked(config_of(n, bits, BusMasking::Ecc, ExecBackend::BitPlane));
  // One transient data wire plus a persistent flag wire (bit 0 covers the
  // wired-OR cycle, whose ECC degenerates to a duplicate parity beat).
  masked.inject_faults(
      FaultModel::parse("transient-bit:col,2,5,1,2,0;stuck-bit:row,3,0,1", n, bits));
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  const PlaneGeometry& g = clean.plane_geometry();
  std::vector<PlaneWord> src_planes(g.plane_words() * static_cast<std::size_t>(bits));
  std::vector<PlaneWord> open_plane(g.plane_words());
  pack_words(g, src, bits, src_planes.data());
  pack_flags(g, open, open_plane.data());
  std::vector<PlaneWord> want(src_planes.size()), got(src_planes.size());
  std::vector<PlaneWord> dw(g.plane_words()), dg(g.plane_words());
  (void)clean.broadcast_planes_into(src_planes.data(), bits, Direction::South,
                                    open_plane.data(), want.data(), dw.data());
  (void)masked.broadcast_planes_into(src_planes.data(), bits, Direction::South,
                                     open_plane.data(), got.data(), dg.data());
  EXPECT_EQ(got, want);

  // Wired-OR: the stuck row-3 flag wire forces ones the duplicate beat
  // strips back out.
  std::vector<Flag> or_src(n * n);
  for (std::size_t pe = 0; pe < n * n; ++pe) or_src[pe] = (pe % 5 == 0) ? 1 : 0;
  std::vector<PlaneWord> or_src_plane(g.plane_words());
  pack_flags(g, or_src, or_src_plane.data());
  std::vector<PlaneWord> or_want(g.plane_words()), or_got(g.plane_words());
  (void)clean.wired_or_plane_into(or_src_plane.data(), Direction::East, open_plane.data(),
                                  or_want.data());
  (void)masked.wired_or_plane_into(or_src_plane.data(), Direction::East,
                                   open_plane.data(), or_got.data());
  EXPECT_EQ(or_got, or_want);
  EXPECT_GE(masked.masking_stats().corrections, 1u);
  EXPECT_EQ(masked.masking_stats().uncorrectable, 0u);
}

TEST(EccMasking, FlagsUnmatchableMultiWireSyndromeAsUncorrectable) {
  const std::size_t n = 8;
  const int bits = 8;
  Machine masked(config_of(n, bits, BusMasking::Ecc, ExecBackend::BitPlane));
  // Two stuck wires on the SAME row line at bits 6 and 7, with stuck
  // values chosen so both flip the delivered word: their signatures (7 and
  // 8) XOR to 15, which matches no single-wire signature for h = 8, so the
  // decode must refuse instead of miscorrecting.
  masked.inject_faults(
      FaultModel::parse("stuck-bit:row,1,6,0;stuck-bit:row,1,7,1", n, bits));
  std::vector<Word> src;
  std::vector<Flag> open;
  fill_patterns(n, bits, src, open);

  const PlaneGeometry& g = masked.plane_geometry();
  std::vector<PlaneWord> src_planes(g.plane_words() * static_cast<std::size_t>(bits));
  std::vector<PlaneWord> open_plane(g.plane_words());
  pack_words(g, src, bits, src_planes.data());
  pack_flags(g, open, open_plane.data());
  std::vector<PlaneWord> out(src_planes.size());
  std::vector<PlaneWord> drv(g.plane_words());
  (void)masked.broadcast_planes_into(src_planes.data(), bits, Direction::East,
                                     open_plane.data(), out.data(), drv.data());
  EXPECT_GE(masked.masking_stats().uncorrectable, 1u);
}

}  // namespace
}  // namespace ppa::sim
