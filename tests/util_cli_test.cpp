#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ppa::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args.begin(), args.end()};
}

TEST(Cli, ParsesSeparateValueForm) {
  CliParser cli("test");
  cli.flag("n", "size", "8");
  const auto argv = argv_of({"prog", "--n", "32"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("n"), 32);
}

TEST(Cli, ParsesEqualsForm) {
  CliParser cli("test");
  cli.flag("seed", "rng seed", "1");
  const auto argv = argv_of({"prog", "--seed=99"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("seed"), 99);
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("test");
  cli.flag("p", "probability", "0.25");
  const auto argv = argv_of({"prog"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("p"), 0.25);
}

TEST(Cli, BoolFlagForms) {
  CliParser cli("test");
  cli.bool_flag("verbose", "talk more");
  cli.bool_flag("quiet", "talk less");
  const auto argv = argv_of({"prog", "--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.get_bool("quiet"));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli("test");
  cli.flag("n", "size", "4");
  const auto argv = argv_of({"prog", "input.g", "--n", "5", "output.g"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.g");
  EXPECT_EQ(cli.positional()[1], "output.g");
}

TEST(Cli, UnknownFlagFailsParse) {
  CliParser cli("test");
  const auto argv = argv_of({"prog", "--nope", "1"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, MissingValueFailsParse) {
  CliParser cli("test");
  cli.flag("n", "size");
  const auto argv = argv_of({"prog", "--n"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli("test");
  cli.flag("n", "size", "4");
  const auto argv = argv_of({"prog", "--help"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, TypedAccessorErrors) {
  CliParser cli("test");
  cli.flag("word", "a word", "hello");
  const auto argv = argv_of({"prog"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW((void)cli.get_int("word"), ContractError);
  EXPECT_THROW((void)cli.get_double("word"), ContractError);
  EXPECT_THROW((void)cli.get_string("unregistered"), ContractError);
}

TEST(Cli, UsageMentionsFlagsAndDefaults) {
  CliParser cli("my tool");
  cli.flag("n", "array side", "8");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("default: 8"), std::string::npos);
}

}  // namespace
}  // namespace ppa::util
