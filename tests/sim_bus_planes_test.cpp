// Differential fuzzing of the bit-plane bus kernels against the word
// engine (bus.cpp) as oracle: for random switch settings, directions and
// topologies the packed kernels must reproduce the oracle's values, driven
// flags AND max_segment — the latter is load-bearing for the step-counter
// contract between the two execution backends. Sides straddle the 64-lane
// word boundary on purpose (63 / 64 / 65, and 130 = 2 words + 2 lanes).
#include <gtest/gtest.h>

#include <vector>

#include "sim/bus.hpp"
#include "sim/bus_planes.hpp"
#include "util/rng.hpp"

namespace ppa::sim {
namespace {

struct FuzzCase {
  std::size_t n;
  std::uint64_t seed;
  double open_density;
};

class BusPlaneFuzz : public ::testing::TestWithParam<FuzzCase> {};

/// Pads past column n-1 must stay zero in every produced plane.
void expect_pads_zero(const PlaneGeometry& g, const PlaneWord* plane, const char* what) {
  for (std::size_t r = 0; r < g.n; ++r) {
    for (std::size_t w = 0; w < g.row_words; ++w) {
      ASSERT_EQ(plane[r * g.row_words + w] & ~g.word_mask(w), 0u)
          << what << ": pad bits set in row " << r << " word " << w;
    }
  }
}

TEST_P(BusPlaneFuzz, BroadcastMatchesWordEngine) {
  const auto [n, seed, density] = GetParam();
  const PlaneGeometry g(n);
  const std::size_t pw = g.plane_words();
  const int planes = 11;  // deliberately not a power of two
  util::Rng rng(seed);

  for (int round = 0; round < 12; ++round) {
    std::vector<Word> src(n * n);
    std::vector<Flag> open(n * n);
    for (std::size_t pe = 0; pe < n * n; ++pe) {
      src[pe] = static_cast<Word>(rng.below(1u << planes));
      // Rounds 0/1 pin the all-Short / all-Open extremes.
      open[pe] = round == 0 ? Flag{0}
                 : round == 1
                     ? Flag{1}
                     : (rng.chance(density) ? Flag{1} : Flag{0});
    }
    const auto topology = rng.chance(0.5) ? BusTopology::Ring : BusTopology::Linear;
    const auto dir = static_cast<Direction>(rng.below(4));

    std::vector<Word> want_values(n * n);
    std::vector<Flag> want_driven(n * n);
    const std::size_t want_segment =
        bus_broadcast_into(n, topology, dir, src, open, want_values, want_driven);

    std::vector<PlaneWord> src_planes(pw * planes);
    std::vector<PlaneWord> open_plane(pw);
    std::vector<PlaneWord> out_planes(pw * planes, ~PlaneWord{0});  // must be overwritten
    std::vector<PlaneWord> driven_plane(pw, ~PlaneWord{0});
    pack_words(g, src, planes, src_planes.data());
    pack_flags(g, open, open_plane.data());
    const std::size_t got_segment =
        plane_broadcast_into(g, topology, dir, src_planes.data(), planes, open_plane.data(),
                             out_planes.data(), driven_plane.data());

    ASSERT_EQ(got_segment, want_segment)
        << "n=" << n << " dir=" << name_of(dir) << " round=" << round;
    std::vector<Word> got_values(n * n);
    std::vector<Flag> got_driven(n * n);
    unpack_words(g, out_planes.data(), planes, got_values);
    unpack_flags(g, driven_plane.data(), got_driven);
    ASSERT_EQ(got_driven, want_driven) << "n=" << n << " dir=" << name_of(dir);
    // Both engines define undriven receivers as value 0, so whole-array
    // equality is exact.
    ASSERT_EQ(got_values, want_values)
        << "n=" << n << " dir=" << name_of(dir) << " round=" << round;
    for (int j = 0; j < planes; ++j) {
      expect_pads_zero(g, out_planes.data() + static_cast<std::size_t>(j) * pw, "broadcast");
    }
    expect_pads_zero(g, driven_plane.data(), "broadcast driven");
  }
}

TEST_P(BusPlaneFuzz, WiredOrMatchesWordEngine) {
  const auto [n, seed, density] = GetParam();
  const PlaneGeometry g(n);
  const std::size_t pw = g.plane_words();
  util::Rng rng(seed ^ 0xF00D);

  for (int round = 0; round < 12; ++round) {
    std::vector<Flag> src(n * n);
    std::vector<Flag> open(n * n);
    for (std::size_t pe = 0; pe < n * n; ++pe) {
      src[pe] = rng.chance(0.3) ? Flag{1} : Flag{0};
      open[pe] = round == 0 ? Flag{0}
                 : round == 1
                     ? Flag{1}
                     : (rng.chance(density) ? Flag{1} : Flag{0});
    }
    const auto topology = rng.chance(0.5) ? BusTopology::Ring : BusTopology::Linear;
    const auto dir = static_cast<Direction>(rng.below(4));

    std::vector<Flag> want_values(n * n);
    const std::size_t want_segment =
        bus_wired_or_into(n, topology, dir, src, open, want_values);

    std::vector<PlaneWord> src_plane(pw);
    std::vector<PlaneWord> open_plane(pw);
    std::vector<PlaneWord> out_plane(pw, ~PlaneWord{0});
    pack_flags(g, src, src_plane.data());
    pack_flags(g, open, open_plane.data());
    const std::size_t got_segment = plane_wired_or_into(g, topology, dir, src_plane.data(),
                                                        open_plane.data(), out_plane.data());

    ASSERT_EQ(got_segment, want_segment)
        << "n=" << n << " dir=" << name_of(dir) << " round=" << round;
    std::vector<Flag> got_values(n * n);
    unpack_flags(g, out_plane.data(), got_values);
    ASSERT_EQ(got_values, want_values)
        << "n=" << n << " dir=" << name_of(dir) << " round=" << round;
    expect_pads_zero(g, out_plane.data(), "wired-or");
  }
}

TEST_P(BusPlaneFuzz, ShiftMatchesBruteForce) {
  const auto [n, seed, density] = GetParam();
  (void)density;
  const PlaneGeometry g(n);
  const std::size_t pw = g.plane_words();
  const int planes = 9;
  util::Rng rng(seed ^ 0xCAFE);

  for (int round = 0; round < 8; ++round) {
    std::vector<Word> src(n * n);
    for (auto& v : src) v = static_cast<Word>(rng.below(1u << planes));
    const auto dir = static_cast<Direction>(rng.below(4));
    const Word fill = static_cast<Word>(rng.below(1u << planes));

    // Brute-force: each PE reads its flow-order upstream neighbour, edge
    // lanes read `fill` (matching Machine::shift semantics).
    std::vector<Word> want(n * n, fill);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        std::size_t sr = r;
        std::size_t sc = c;
        bool inside = true;
        switch (dir) {
          case Direction::East: inside = c > 0; sc = c - 1; break;
          case Direction::West: inside = c + 1 < n; sc = c + 1; break;
          case Direction::South: inside = r > 0; sr = r - 1; break;
          case Direction::North: inside = r + 1 < n; sr = r + 1; break;
        }
        if (inside) want[r * n + c] = src[sr * n + sc];
      }
    }

    std::vector<PlaneWord> src_planes(pw * planes);
    std::vector<PlaneWord> dst_planes(pw * planes, ~PlaneWord{0});
    pack_words(g, src, planes, src_planes.data());
    plane_shift(g, dir, src_planes.data(), planes, fill, dst_planes.data());

    std::vector<Word> got(n * n);
    unpack_words(g, dst_planes.data(), planes, got);
    ASSERT_EQ(got, want) << "n=" << n << " dir=" << name_of(dir) << " fill=" << fill;
    for (int j = 0; j < planes; ++j) {
      expect_pads_zero(g, dst_planes.data() + static_cast<std::size_t>(j) * pw, "shift");
    }
  }
}

// The broadcast plan cache only engages through a persistent scratch
// block, and only for configurations seen more than once: replaying each
// random configuration several times with fresh data walks one call
// through the plain, recording and cached paths in turn — every replay
// must match the cold (scratch-free) resolver and the word oracle in
// values, driven flags and max_segment.
TEST_P(BusPlaneFuzz, CachedBroadcastMatchesColdOnRepeats) {
  const auto [n, seed, density] = GetParam();
  const PlaneGeometry g(n);
  const std::size_t pw = g.plane_words();
  const int planes = 7;
  util::Rng rng(seed ^ 0xBEEF);
  PlaneBusScratch scratch;  // persists across all configurations below
  const PlaneBusExec exec{nullptr, static_cast<std::size_t>(-1), &scratch};

  for (int config = 0; config < 6; ++config) {
    std::vector<Flag> open(n * n);
    for (auto& f : open) f = rng.chance(density) ? Flag{1} : Flag{0};
    std::vector<PlaneWord> open_plane(pw);
    pack_flags(g, open, open_plane.data());
    const auto topology = rng.chance(0.5) ? BusTopology::Ring : BusTopology::Linear;
    for (Direction dir : {Direction::East, Direction::South}) {
      for (int replay = 0; replay < 4; ++replay) {
        std::vector<Word> src(n * n);
        for (auto& v : src) v = static_cast<Word>(rng.below(1u << planes));
        std::vector<PlaneWord> src_planes(pw * planes);
        pack_words(g, src, planes, src_planes.data());

        std::vector<PlaneWord> want_out(pw * planes);
        std::vector<PlaneWord> want_driven(pw);
        const std::size_t want_segment =
            plane_broadcast_into(g, topology, dir, src_planes.data(), planes,
                                 open_plane.data(), want_out.data(), want_driven.data());

        std::vector<PlaneWord> out(pw * planes, ~PlaneWord{0});
        std::vector<PlaneWord> driven(pw, ~PlaneWord{0});
        const std::size_t got_segment =
            plane_broadcast_into(g, topology, dir, src_planes.data(), planes,
                                 open_plane.data(), out.data(), driven.data(), exec);

        ASSERT_EQ(got_segment, want_segment)
            << "n=" << n << " dir=" << name_of(dir) << " config=" << config
            << " replay=" << replay;
        ASSERT_EQ(out, want_out) << "n=" << n << " dir=" << name_of(dir)
                                 << " config=" << config << " replay=" << replay;
        ASSERT_EQ(driven, want_driven) << "n=" << n << " dir=" << name_of(dir)
                                       << " config=" << config << " replay=" << replay;
      }
    }
  }
  // Every configuration was replayed 4x per direction: first sight runs
  // plain, second records, the rest hit.
  EXPECT_GE(scratch.broadcast_plans.hits, 2u);
}

// Pin of the second-chance policy: call 1 runs the plain resolver (first
// sight), call 2 records a plan, calls 3..5 hit it.
TEST(BroadcastPlanCache, CountsHitsAfterSecondSight) {
  const std::size_t n = 16;
  const PlaneGeometry g(n);
  const std::size_t pw = g.plane_words();
  const int planes = 3;
  std::vector<PlaneWord> src(pw * planes), open(pw), out(pw * planes), driven(pw);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = i * 0x9E3779B97F4A7C15ull;
  for (std::size_t w = 0; w < g.row_words; ++w) open[5 * g.row_words + w] = g.word_mask(w);
  PlaneBusScratch scratch;
  const PlaneBusExec exec{nullptr, static_cast<std::size_t>(-1), &scratch};
  for (int call = 0; call < 5; ++call) {
    plane_broadcast_into(g, BusTopology::Ring, Direction::South, src.data(), planes,
                         open.data(), out.data(), driven.data(), exec);
  }
  EXPECT_EQ(scratch.broadcast_plans.hits, 3u);
  EXPECT_EQ(scratch.broadcast_plans.misses, 2u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BusPlaneFuzz,
                         ::testing::Values(FuzzCase{1, 1, 0.5}, FuzzCase{2, 2, 0.5},
                                           FuzzCase{5, 3, 0.2}, FuzzCase{8, 4, 0.15},
                                           FuzzCase{63, 5, 0.05}, FuzzCase{64, 6, 0.05},
                                           FuzzCase{65, 7, 0.05}, FuzzCase{96, 8, 0.02},
                                           FuzzCase{130, 9, 0.02}));

}  // namespace
}  // namespace ppa::sim
