// The observability layer end to end: metrics instruments, span trees,
// the two exporters, deterministic merging — and the contract the whole
// design hangs on: observation is free. Attaching a Collector must not
// change a single result word or step count, on either backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/mcp.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/collector.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/json_dom.hpp"
#include "sim/machine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ppa::obs {
namespace {

// ---- metrics primitives ----

TEST(Metrics, CounterAccumulatesAndMerges) {
  Counter a;
  a.add();
  a.add(4);
  EXPECT_EQ(a.value(), 5u);
  Counter b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.value(), 12u);
}

TEST(Metrics, GaugeMergeKeepsMaximum) {
  Gauge a;
  a.set(2.5);
  Gauge b;
  b.set(1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 2.5);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.value(), 2.5);
}

TEST(Metrics, HistogramBucketsWeightsAndStats) {
  Histogram h({2, 4, 8});
  EXPECT_EQ(h.min(), 0u);  // empty
  h.observe(1);
  h.observe(2);
  h.observe(3, 10);  // weighted: 10 samples of value 3
  h.observe(100);    // overflow bucket
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);   // <= 2
  EXPECT_EQ(h.counts()[1], 10u);  // <= 4
  EXPECT_EQ(h.counts()[2], 0u);   // <= 8
  EXPECT_EQ(h.counts()[3], 1u);   // overflow
  EXPECT_EQ(h.count(), 13u);
  EXPECT_EQ(h.sum(), 1u + 2u + 30u + 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 133.0 / 13.0);
}

TEST(Metrics, HistogramMergeIsComponentWise) {
  Histogram a({4});
  a.observe(3);
  Histogram b({4});
  b.observe(9, 2);
  a.merge(b);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[1], 2u);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 9u);
}

TEST(Metrics, RegistryMergeCreatesMissingAndRejectsBoundMismatch) {
  MetricsRegistry a;
  a.counter("x").add(1);
  MetricsRegistry b;
  b.counter("x").add(2);
  b.counter("y").add(5);
  b.histogram("h", {1, 2}).observe(1);
  a.merge(b);
  EXPECT_EQ(a.counters().at("x").value(), 3u);
  EXPECT_EQ(a.counters().at("y").value(), 5u);
  // An empty target histogram adopts the source wholesale, bounds included.
  EXPECT_EQ(a.histograms().at("h").bounds(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(a.histograms().at("h").count(), 1u);

  MetricsRegistry c;
  c.histogram("h", {1, 2, 3}).observe(2);
  EXPECT_THROW(a.merge(c), util::ContractError);
}

TEST(Metrics, Pow2Bounds) {
  // Powers of two up to `top`, with `top` itself as the last bound.
  EXPECT_EQ(pow2_bounds(8), (std::vector<std::uint64_t>{1, 2, 4, 8}));
  EXPECT_EQ(pow2_bounds(5), (std::vector<std::uint64_t>{1, 2, 4, 5}));
}

TEST(Metrics, Pow2BucketBoundsAreInclusive) {
  // A sample exactly AT a bound lands in that bound's own bucket
  // (observe uses value <= bound), so the pow2 histograms have no
  // off-by-one at 1, 2, 4, ..., top — pinned here because every bus-shape
  // histogram in the collector rides pow2_bounds.
  const std::vector<std::uint64_t> bounds = pow2_bounds(8);  // {1, 2, 4, 8}
  Histogram at_bounds(bounds);
  for (const std::uint64_t b : bounds) at_bounds.observe(b);
  ASSERT_EQ(at_bounds.counts().size(), bounds.size() + 1);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(at_bounds.counts()[i], 1u) << "bound " << bounds[i];
  }
  EXPECT_EQ(at_bounds.counts().back(), 0u);  // nothing overflows

  Histogram above_bounds(bounds);
  above_bounds.observe(3);  // one past bound 2 -> the le=4 bucket
  above_bounds.observe(9);  // one past the top bound -> overflow
  EXPECT_EQ(above_bounds.counts()[1], 0u);
  EXPECT_EQ(above_bounds.counts()[2], 1u);
  EXPECT_EQ(above_bounds.counts().back(), 1u);
}

// ---- spans ----

TEST(Spans, NestAndRecordStepDeltas) {
  sim::MachineConfig cfg;
  cfg.n = 2;
  cfg.bits = 4;
  sim::Machine machine(cfg);

  Collector collector;
  {
    auto outer = collector.span("outer", &machine, 42);
    machine.charge_alu(3);
    {
      PPA_SPAN(&collector, "inner", &machine);
      machine.charge_alu(2);
    }
    machine.charge_alu(1);
  }
  const auto& spans = collector.spans();
  // Spans are recorded in open order: outer first, inner second.
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, SpanRecord::kNoParent);
  EXPECT_EQ(spans[0].value, 42);
  EXPECT_EQ(spans[0].steps.total(), 6u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].value, -1);
  EXPECT_EQ(spans[1].steps.total(), 2u);
  EXPECT_GE(spans[0].duration_seconds, spans[1].duration_seconds);
}

TEST(Spans, NullCollectorIsInert) {
  // Must not crash or allocate anything observable.
  PPA_SPAN(static_cast<Collector*>(nullptr), "phase");
  auto s = open_span(nullptr, "phase", nullptr, 7);
  (void)s;
}

TEST(Spans, MergeAppendsTreesWithReindexedParents) {
  Collector a;
  {
    auto root_a = a.span("dest", nullptr, 0);
  }
  Collector b;
  {
    auto root_b = b.span("dest", nullptr, 1);
    PPA_SPAN(&b, "child");
  }
  a.merge(b);
  const auto& spans = a.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "dest");
  EXPECT_EQ(spans[1].value, 1);
  EXPECT_EQ(spans[1].parent, SpanRecord::kNoParent);
  EXPECT_EQ(spans[2].name, "child");
  EXPECT_EQ(spans[2].parent, 1u);  // re-indexed onto a's vector
}

// ---- collector as a trace sink ----

TEST(Collector, FeedsBusHistogramsAndStepCounters) {
  sim::MachineConfig cfg;
  cfg.n = 4;
  cfg.bits = 8;
  sim::Machine machine(cfg);
  Collector collector;
  machine.set_trace(&collector);

  std::vector<sim::Word> src(16, 3);
  std::vector<sim::Flag> open(16, 0);
  for (std::size_t r = 0; r < 4; ++r) open[r * 4 + r] = 1;
  (void)machine.broadcast(src, sim::Direction::East, open);
  machine.charge_alu(5);
  machine.set_trace(nullptr);

  const auto& m = collector.metrics();
  const Histogram& seg = m.histograms().at(metric::kBusMaxSegment);
  EXPECT_EQ(seg.count(), 1u);
  EXPECT_EQ(seg.max(), 4u);
  const Histogram& planes = m.histograms().at(metric::kBusPlaneWidth);
  EXPECT_EQ(planes.max(), 8u);  // word broadcast sweeps all 8 planes
  EXPECT_EQ(m.counters().at(std::string(metric::kStepPrefix) + "alu").value(), 5u);
  EXPECT_EQ(m.counters().at(std::string(metric::kStepPrefix) + "bus_bcast").value(), 1u);

  // Bus occupancy rode the same event: every PE port is a wire, the driven
  // subset is whatever the cycle's driven flags said, and the per-cycle
  // histogram saw exactly one sample equal to the driven counter.
  const std::uint64_t total = m.counters().at(metric::kBusTotalWires).value();
  const std::uint64_t driven = m.counters().at(metric::kBusDrivenWires).value();
  EXPECT_EQ(total, 16u);
  EXPECT_GT(driven, 0u);
  EXPECT_LE(driven, total);
  const Histogram& wires = m.histograms().at(metric::kBusDrivenHist);
  EXPECT_EQ(wires.count(), 1u);
  EXPECT_EQ(wires.sum(), driven);

  // The utilization profiler billed the same event counts per category;
  // wall seconds are timing (>= 0) and not pinned further.
  const WallProfile& profile = collector.profile();
  EXPECT_EQ(profile.events[static_cast<std::size_t>(sim::StepCategory::Alu)], 5u);
  EXPECT_EQ(profile.events[static_cast<std::size_t>(sim::StepCategory::BusBroadcast)], 1u);
  for (const double seconds : profile.seconds) EXPECT_GE(seconds, 0.0);
}

TEST(Collector, ConvergenceSeriesCountersAndChromeSamples) {
  std::ostringstream out;
  ChromeTraceWriter writer(out);
  Collector collector;
  collector.set_chrome(&writer);
  collector.record_iteration(3, 1, 10, {4, 6});
  collector.record_iteration(3, 2, 0);
  writer.finish();

  const auto& series = collector.convergence();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].destination, 3);
  EXPECT_EQ(series[0].iteration, 1u);
  EXPECT_EQ(series[0].active, 10u);
  EXPECT_EQ(series[0].panel_changes, (std::vector<std::uint64_t>{4, 6}));
  EXPECT_TRUE(series[1].panel_changes.empty());
  EXPECT_EQ(collector.metrics().counters().at(metric::kActiveLanes).value(), 10u);

  // The live stream carried each sample as a Chrome counter ('C') event.
  const std::string text = out.str();
  std::string error;
  ASSERT_TRUE(json_valid(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("active_lanes"), std::string::npos);
}

TEST(Collector, SnapshotHookFiresOnItsCadence) {
  Collector collector;
  std::size_t fired = 0;
  collector.set_snapshot_hook(2, [&](const Collector&) { ++fired; });
  for (std::uint64_t i = 1; i <= 5; ++i) collector.record_iteration(0, i, 1);
  EXPECT_EQ(fired, 2u);  // iterations 2 and 4; cadence 0-resets in between

  Collector disabled;
  disabled.set_snapshot_hook(0, [&](const Collector&) { ++fired; });
  disabled.record_iteration(0, 1, 1);
  EXPECT_EQ(fired, 2u);  // every = 0 disables
}

TEST(Collector, MergeAppendsConvergenceAndAddsProfiles) {
  Collector a;
  a.record_iteration(0, 1, 7);
  Collector b;
  b.record_iteration(1, 1, 3, {1, 2});
  a.merge(b);
  ASSERT_EQ(a.convergence().size(), 2u);
  EXPECT_EQ(a.convergence()[0].destination, 0);
  EXPECT_EQ(a.convergence()[1].destination, 1);
  EXPECT_EQ(a.convergence()[1].panel_changes, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(a.metrics().counters().at(metric::kActiveLanes).value(), 10u);

  // Wall profiles add component-wise on merge.
  WallProfile left;
  left.seconds[0] = 0.5;
  left.events[0] = 2;
  WallProfile right;
  right.seconds[0] = 0.25;
  right.events[0] = 1;
  left.merge(right);
  EXPECT_DOUBLE_EQ(left.seconds[0], 0.75);
  EXPECT_EQ(left.events[0], 3u);
}

// ---- exporters ----

Collector& demo_collector(Collector& collector) {
  collector.metrics().counter(metric::kSolverRuns).add(1);
  collector.metrics().gauge("demo.ratio").set(0.5);
  collector.metrics().histogram(metric::kBusMaxSegment, pow2_bounds(8)).observe(3);
  auto root = collector.span("solve", nullptr, 0);
  PPA_SPAN(&collector, "relax");
  return collector;
}

TEST(Export, MetricsJsonIsSchemaValid) {
  Collector collector;
  demo_collector(collector);
  RunInfo run;
  run.workload = "mcp";
  run.backend = "word";
  run.n = 8;
  run.simd_steps = 123;
  run.wall_seconds = 0.25;

  std::ostringstream out;
  write_metrics_json(out, collector, run);
  const std::string text = out.str();

  std::string error;
  EXPECT_TRUE(json_valid(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find(kMetricsSchema), std::string::npos);
  EXPECT_NE(text.find("\"workload\":\"mcp\""), std::string::npos);
  EXPECT_NE(text.find("\"bus.max_segment\""), std::string::npos);
  EXPECT_NE(text.find("\"relax\""), std::string::npos);
}

TEST(Export, StatsSummaryMentionsRunAndSpans) {
  Collector collector;
  demo_collector(collector);
  RunInfo run;
  run.workload = "mcp";
  run.backend = "bitplane";
  run.n = 8;
  std::ostringstream out;
  write_stats_summary(out, collector, run);
  const std::string text = out.str();
  EXPECT_NE(text.find("backend=bitplane"), std::string::npos);
  EXPECT_NE(text.find("solve"), std::string::npos);
}

TEST(Export, ChromeTraceIsAJsonArrayDocument) {
  std::ostringstream out;
  {
    ChromeTraceWriter writer(out);
    Collector collector;
    collector.set_chrome(&writer);  // live B/E streaming
    {
      auto root = collector.span("solve");
      PPA_SPAN(&collector, "relax_iter");
    }
    collector.on_fault(sim::FaultEvent{sim::FaultEventKind::UndrivenRead,
                                       sim::StepCategory::BusBroadcast,
                                       sim::Direction::East, 1, 2, 1});
    writer.finish();
  }
  const std::string text = out.str();
  std::string error;
  ASSERT_TRUE(json_valid(text, &error)) << error << "\n" << text;
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(text.find("undriven_read"), std::string::npos);
}

TEST(Export, PostHocSpanExportEmitsCompleteEvents) {
  Collector collector;
  demo_collector(collector);
  std::ostringstream out;
  {
    ChromeTraceWriter writer(out);
    collector.export_spans(writer);
    writer.finish();
  }
  std::string error;
  ASSERT_TRUE(json_valid(out.str(), &error)) << error;
  EXPECT_NE(out.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(Export, PrometheusExpositionShape) {
  Collector collector;
  demo_collector(collector);
  RunInfo run;
  run.workload = "mcp";
  run.backend = "word";
  run.n = 8;
  std::ostringstream out;
  write_prometheus(out, collector, run);
  const std::string text = out.str();

  // Counters and gauges: one `# TYPE` line, one labelled sample each.
  EXPECT_NE(text.find("# TYPE ppa_solver_runs counter\n"), std::string::npos);
  EXPECT_NE(text.find("ppa_solver_runs{workload=\"mcp\",backend=\"word\",n=\"8\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ppa_demo_ratio gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ppa_demo_ratio{workload=\"mcp\",backend=\"word\",n=\"8\"} 0.5\n"),
            std::string::npos);

  // Wall attribution: a gauge family labelled by StepCategory.
  EXPECT_NE(text.find("# TYPE ppa_profile_wall_seconds gauge\n"), std::string::npos);
  EXPECT_NE(text.find(",category=\"alu\"} "), std::string::npos);

  // Histograms follow the cumulative _bucket / _sum / _count convention;
  // demo_collector observed a single 3 against bounds {1, 2, 4, 8}.
  EXPECT_NE(text.find("# TYPE ppa_bus_max_segment histogram\n"), std::string::npos);
  const std::string prefix = "{workload=\"mcp\",backend=\"word\",n=\"8\"";
  EXPECT_NE(text.find("ppa_bus_max_segment_bucket" + prefix + ",le=\"2\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("ppa_bus_max_segment_bucket" + prefix + ",le=\"4\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ppa_bus_max_segment_bucket" + prefix + ",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ppa_bus_max_segment_sum" + prefix + "} 3\n"), std::string::npos);
  EXPECT_NE(text.find("ppa_bus_max_segment_count" + prefix + "} 1\n"), std::string::npos);
}

// Object member lookup for DOM surgery in the tests below (keys are stored
// with their quotes).
JsonValue* mutable_member(JsonValue& object, std::string_view key) {
  const std::string quoted = "\"" + std::string(key) + "\"";
  for (auto& [k, v] : object.members) {
    if (k == quoted) return &v;
  }
  return nullptr;
}

std::string exported_metrics_document() {
  Collector collector;
  demo_collector(collector);
  collector.record_iteration(0, 1, 5, {2, 3});
  collector.record_iteration(0, 2, 0);
  RunInfo run;
  run.workload = "mcp";
  run.backend = "word";
  run.n = 8;
  run.simd_steps = 123;
  run.wall_seconds = 0.25;
  std::ostringstream out;
  write_metrics_json(out, collector, run);
  return out.str();
}

TEST(Export, MetricsJsonRoundTripsByteIdentical) {
  const std::string text = exported_metrics_document();

  // The new sections made it out...
  EXPECT_NE(text.find("\"profile\":"), std::string::npos);
  EXPECT_NE(text.find("\"convergence\":["), std::string::npos);
  EXPECT_NE(text.find("\"panels\":[2,3]"), std::string::npos);

  // ...the document passes the semantic validator...
  std::string error;
  EXPECT_TRUE(metrics_document_valid(text, &error)) << error << "\n" << text;

  // ...and parse -> serialize reproduces the exporter's bytes exactly
  // (plus the trailing newline the exporter appends). This is the schema
  // honesty check: any exporter drift that garbles a token breaks it.
  const std::optional<JsonValue> dom = json_parse(text, &error);
  ASSERT_TRUE(dom.has_value()) << error;
  EXPECT_EQ(json_serialize(*dom) + "\n", text);
}

TEST(Json, MetricsDocumentValidatorAcceptsAndRejects) {
  const std::string text = exported_metrics_document();
  std::string error;
  ASSERT_TRUE(metrics_document_valid(text, &error)) << error;

  // Not an object / wrong schema tag.
  EXPECT_FALSE(metrics_document_valid("[]", &error));
  EXPECT_FALSE(metrics_document_valid("{}", &error));
  std::string wrong_schema = text;
  wrong_schema.replace(wrong_schema.find("ppa.metrics.v1"), 14, "ppa.metrics.v9");
  EXPECT_FALSE(metrics_document_valid(wrong_schema, &error));

  // Every required section is load-bearing: dropping any one rejects.
  for (const char* section : {"run", "counters", "gauges", "histograms", "profile",
                              "convergence", "spans"}) {
    JsonValue dom = *json_parse(text);
    const std::string quoted = "\"" + std::string(section) + "\"";
    std::erase_if(dom.members, [&](const auto& member) { return member.first == quoted; });
    EXPECT_FALSE(metrics_document_valid(json_serialize(dom), &error)) << section;
  }

  // Histogram shape: counts must be exactly bounds.size() + 1 long.
  JsonValue dom = *json_parse(text);
  JsonValue* histograms = mutable_member(dom, "histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_FALSE(histograms->members.empty());
  JsonValue* counts = mutable_member(histograms->members.front().second, "counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_FALSE(counts->items.empty());
  counts->items.pop_back();
  EXPECT_FALSE(metrics_document_valid(json_serialize(dom), &error));
}

// ---- the zero-cost contract ----

struct SolveSnapshot {
  std::vector<graph::Weight> costs;
  std::vector<graph::Vertex> next;
  std::uint64_t total_steps = 0;
  std::size_t iterations = 0;
};

SolveSnapshot run_solve(const graph::WeightMatrix& g, sim::ExecBackend backend,
                        Collector* observer) {
  sim::MachineConfig cfg;
  cfg.n = g.size();
  cfg.bits = g.field().bits();
  cfg.backend = backend;
  sim::Machine machine(cfg);
  mcp::Options options;
  options.observer = observer;
  const auto r = mcp::minimum_cost_path(machine, g, 0, options);
  SolveSnapshot s;
  s.costs = r.solution.cost;
  s.next = r.solution.next;
  s.total_steps = r.total_steps.total();
  s.iterations = r.iterations;
  return s;
}

TEST(ZeroCost, ObservationIsBitIdenticalOnBothBackends) {
  util::Rng rng(11);
  const auto g = graph::random_reachable_digraph(17, 8, 0.3, {1, 9}, 0, rng);
  for (const sim::ExecBackend backend :
       {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    const SolveSnapshot bare = run_solve(g, backend, nullptr);
    Collector collector;
    const SolveSnapshot observed = run_solve(g, backend, &collector);
    EXPECT_EQ(bare.costs, observed.costs);
    EXPECT_EQ(bare.next, observed.next);
    EXPECT_EQ(bare.total_steps, observed.total_steps);
    EXPECT_EQ(bare.iterations, observed.iterations);
    // And the collector actually observed the run.
    EXPECT_EQ(collector.metrics().counters().at(metric::kSolverRuns).value(), 1u);
    EXPECT_GT(collector.metrics().histograms().at(metric::kBusMaxSegment).count(), 0u);
    EXPECT_FALSE(collector.spans().empty());
  }
}

TEST(ZeroCost, FullTelemetryPipelineIsFreeAndBackendIdentical) {
  // The heaviest observation stack the CLI can attach — live Chrome
  // streaming, per-iteration snapshots serializing the whole document,
  // occupancy scans, the wall profiler — must still change nothing, and
  // the deterministic telemetry (occupancy, active lanes) must agree
  // across backends like every other pinned quantity.
  util::Rng rng(11);
  const auto g = graph::random_reachable_digraph(17, 8, 0.3, {1, 9}, 0, rng);
  std::vector<std::uint64_t> driven_by_backend;
  std::vector<std::vector<std::uint64_t>> active_by_backend;
  for (const sim::ExecBackend backend :
       {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    const SolveSnapshot bare = run_solve(g, backend, nullptr);

    std::ostringstream trace;
    ChromeTraceWriter writer(trace);
    Collector collector;
    collector.set_chrome(&writer);
    std::size_t snapshots = 0;
    collector.set_snapshot_hook(1, [&](const Collector& live) {
      RunInfo run;
      run.workload = "mcp";
      run.backend = backend == sim::ExecBackend::Words ? "word" : "bitplane";
      run.n = g.size();
      std::ostringstream snapshot;
      write_metrics_json(snapshot, live, run);
      std::string error;
      EXPECT_TRUE(metrics_document_valid(snapshot.str(), &error)) << error;
      ++snapshots;
    });
    const SolveSnapshot observed = run_solve(g, backend, &collector);
    writer.finish();

    EXPECT_EQ(bare.costs, observed.costs);
    EXPECT_EQ(bare.next, observed.next);
    EXPECT_EQ(bare.total_steps, observed.total_steps);
    EXPECT_EQ(bare.iterations, observed.iterations);

    // The pipeline genuinely ran: one snapshot and one convergence sample
    // per iteration (the last iteration is the settled one), counter
    // samples on the live stream, occupancy on the counters.
    EXPECT_EQ(snapshots, observed.iterations);
    ASSERT_EQ(collector.convergence().size(), observed.iterations);
    EXPECT_EQ(collector.convergence().back().active, 0u);
    EXPECT_NE(trace.str().find("active_lanes"), std::string::npos);
    const auto& counters = collector.metrics().counters();
    EXPECT_GT(counters.at(metric::kBusTotalWires).value(), 0u);

    driven_by_backend.push_back(counters.at(metric::kBusDrivenWires).value());
    std::vector<std::uint64_t> active;
    for (const IterationSample& sample : collector.convergence()) {
      active.push_back(sample.active);
    }
    active_by_backend.push_back(std::move(active));
  }
  ASSERT_EQ(driven_by_backend.size(), 2u);
  EXPECT_EQ(driven_by_backend[0], driven_by_backend[1]);
  EXPECT_EQ(active_by_backend[0], active_by_backend[1]);
}

// ---- all-pairs determinism ----

void scrub_wall_times(std::vector<SpanRecord>& spans) {
  for (auto& span : spans) {
    span.start_seconds = 0;
    span.duration_seconds = 0;
  }
}

TEST(AllPairs, MergedMetricsAreWorkerCountIndependent) {
  util::Rng rng(3);
  const auto g = graph::random_reachable_digraph(12, 8, 0.3, {1, 9}, 0, rng);

  auto run = [&](std::size_t workers) {
    auto collector = std::make_unique<Collector>();
    mcp::AllPairsOptions options;
    options.workers = workers;
    options.mcp.observer = collector.get();
    (void)mcp::all_pairs(g, options);
    return collector;
  };
  const auto one = run(1);
  const auto four = run(4);

  // Counters and histograms match exactly.
  ASSERT_EQ(one->metrics().counters().size(), four->metrics().counters().size());
  for (const auto& [name, counter] : one->metrics().counters()) {
    EXPECT_EQ(counter.value(), four->metrics().counters().at(name).value()) << name;
  }
  for (const auto& [name, hist] : one->metrics().histograms()) {
    EXPECT_EQ(hist.counts(), four->metrics().histograms().at(name).counts()) << name;
    EXPECT_EQ(hist.sum(), four->metrics().histograms().at(name).sum()) << name;
  }

  // Span trees match in structure (names, parents, steps, values) once
  // wall-clock noise is scrubbed.
  auto spans_one = one->spans();
  auto spans_four = four->spans();
  scrub_wall_times(spans_one);
  scrub_wall_times(spans_four);
  ASSERT_EQ(spans_one.size(), spans_four.size());
  for (std::size_t i = 0; i < spans_one.size(); ++i) {
    EXPECT_EQ(spans_one[i].name, spans_four[i].name) << i;
    EXPECT_EQ(spans_one[i].parent, spans_four[i].parent) << i;
    EXPECT_EQ(spans_one[i].value, spans_four[i].value) << i;
    EXPECT_EQ(spans_one[i].steps.total(), spans_four[i].steps.total()) << i;
  }
}

// ---- json_valid itself ----

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_valid(R"({"a": [1, 2.5, -3e2, "x\n", true, null]})"));
  std::string error;
  EXPECT_FALSE(json_valid(R"({"a": )", &error));
  EXPECT_FALSE(json_valid("[1, 2,]", &error));
  EXPECT_FALSE(json_valid("{} trailing", &error));
  EXPECT_FALSE(json_valid("", &error));
}

}  // namespace
}  // namespace ppa::obs
