#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace ppa::util {
namespace {

TEST(Bits, ValidWordBits) {
  EXPECT_FALSE(valid_word_bits(0));
  EXPECT_TRUE(valid_word_bits(1));
  EXPECT_TRUE(valid_word_bits(16));
  EXPECT_TRUE(valid_word_bits(32));
  EXPECT_FALSE(valid_word_bits(33));
  EXPECT_FALSE(valid_word_bits(-1));
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(1), 0x1u);
  EXPECT_EQ(low_mask(4), 0xFu);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(31), 0x7FFFFFFFu);
  EXPECT_EQ(low_mask(32), 0xFFFFFFFFu);
}

TEST(Bits, BitOf) {
  EXPECT_EQ(bit_of(0b1010, 0), 0u);
  EXPECT_EQ(bit_of(0b1010, 1), 1u);
  EXPECT_EQ(bit_of(0b1010, 2), 0u);
  EXPECT_EQ(bit_of(0b1010, 3), 1u);
  EXPECT_EQ(bit_of(0x80000000u, 31), 1u);
}

TEST(Bits, WithBit) {
  EXPECT_EQ(with_bit(0, 3, true), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 1, false), 0b1101u);
  EXPECT_EQ(with_bit(0b1000, 3, true), 0b1000u);  // idempotent
}

class CeilLog2Sweep : public ::testing::TestWithParam<int> {};

TEST_P(CeilLog2Sweep, InverseOfPow2) {
  const int k = GetParam();
  const std::uint64_t pow = std::uint64_t{1} << k;
  EXPECT_EQ(ceil_log2(pow), k);
  if (k > 0) {
    EXPECT_EQ(ceil_log2(pow - 1), (pow - 1 <= 1) ? 0 : k);
    EXPECT_EQ(ceil_log2(pow + 1), k + 1);
  }
  EXPECT_EQ(next_pow2(pow), pow);
  if (k > 1) EXPECT_EQ(next_pow2(pow - 1), pow);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, CeilLog2Sweep,
                         ::testing::Values(0, 1, 2, 3, 5, 10, 20, 31, 40, 62));

TEST(Bits, CeilLog2SmallValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
}

TEST(Bits, BitWidthOf) {
  EXPECT_EQ(bit_width_of(0), 1);
  EXPECT_EQ(bit_width_of(1), 1);
  EXPECT_EQ(bit_width_of(2), 2);
  EXPECT_EQ(bit_width_of(255), 8);
  EXPECT_EQ(bit_width_of(256), 9);
}

TEST(Bits, RoundTripAllBitsOfAWord) {
  // Property: with_bit/bit_of are inverse on every position.
  for (int j = 0; j < 32; ++j) {
    const std::uint32_t x = with_bit(0, j, true);
    EXPECT_EQ(bit_of(x, j), 1u);
    EXPECT_EQ(with_bit(x, j, false), 0u);
  }
}

}  // namespace
}  // namespace ppa::util
