#include "graph/solution_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ppa::graph {
namespace {

McpSolution sample_solution(Weight infinity) {
  McpSolution s;
  s.destination = 2;
  s.cost = {5, 3, 0, infinity};
  s.next = {1, 2, 2, 2};
  return s;
}

TEST(SolutionIo, RoundTrip) {
  const Weight inf = 255;
  const auto s = sample_solution(inf);
  const auto back = solution_from_string(solution_to_string(s, inf), inf);
  EXPECT_EQ(back.destination, s.destination);
  EXPECT_EQ(back.cost, s.cost);
  EXPECT_EQ(back.next, s.next);
}

TEST(SolutionIo, InfinityRendersAsInf) {
  const Weight inf = 255;
  const std::string text = solution_to_string(sample_solution(inf), inf);
  EXPECT_NE(text.find("v 3 inf 2"), std::string::npos);
  EXPECT_NE(text.find("n 4 d 2"), std::string::npos);
}

TEST(SolutionIo, RoundTripsRealSolverOutput) {
  util::Rng rng(61);
  const auto g = random_digraph(12, 16, 0.3, {1, 25}, rng);
  const auto s = baseline::dijkstra_to(g, 7);
  const auto back = solution_from_string(solution_to_string(s, g.infinity()), g.infinity());
  EXPECT_EQ(back.cost, s.cost);
  EXPECT_EQ(back.next, s.next);
  // The reloaded solution still verifies.
  const auto verdict = verify_solution(g, back, s.cost);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(SolutionIo, RejectsMalformedInputs) {
  const Weight inf = 255;
  EXPECT_THROW((void)solution_from_string("", inf), util::ParseError);
  EXPECT_THROW((void)solution_from_string("wrong 1", inf), util::ParseError);
  EXPECT_THROW((void)solution_from_string("ppa-solution 2\nn 2 d 0\n", inf), util::ParseError);
  EXPECT_THROW((void)solution_from_string("ppa-solution 1\nn 0 d 0\n", inf), util::ParseError);
  EXPECT_THROW((void)solution_from_string("ppa-solution 1\nn 2 d 5\n", inf), util::ParseError);
  // missing vertex line
  EXPECT_THROW((void)solution_from_string("ppa-solution 1\nn 2 d 0\nv 0 1 0\n", inf),
               util::ParseError);
  // duplicate vertex line
  EXPECT_THROW((void)solution_from_string(
                   "ppa-solution 1\nn 2 d 0\nv 0 1 0\nv 0 2 0\n", inf),
               util::ParseError);
  // cost above infinity
  EXPECT_THROW((void)solution_from_string(
                   "ppa-solution 1\nn 2 d 0\nv 0 999 0\nv 1 0 1\n", inf),
               util::ParseError);
  // next pointer out of range
  EXPECT_THROW((void)solution_from_string(
                   "ppa-solution 1\nn 2 d 0\nv 0 1 7\nv 1 0 1\n", inf),
               util::ParseError);
}

TEST(SolutionIo, CommentsIgnored) {
  const Weight inf = 255;
  const auto s = solution_from_string(
      "# produced by test\nppa-solution 1\nn 2 d 1\nv 0 4 1 # best\nv 1 0 1\n", inf);
  EXPECT_EQ(s.cost[0], 4u);
}

TEST(SolutionIo, FileHelpers) {
  const Weight inf = 65535;
  const auto s = sample_solution(inf);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppa_solution_io_test.txt").string();
  save_solution(path, s, inf);
  const auto back = load_solution(path, inf);
  EXPECT_EQ(back.cost, s.cost);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_solution("/nonexistent/x", inf), util::ParseError);
}

}  // namespace
}  // namespace ppa::graph
