// Step-count regression guard. The SIMD step totals of the MCP algorithm
// are a pure function of the workload (graph + destination + options) —
// they must not move when the host-side implementation changes (new
// backend, new sweeps, refactors). These are the E6 benchmark workloads
// (random_reachable_digraph seeded with n, density 2/n, h = 16, dest 0);
// the constants were produced by the seed implementation and any change
// to them is a semantic change to the simulated machine, not a perf
// regression — it must be deliberate and explained in the commit.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "util/rng.hpp"

namespace ppa {
namespace {

struct Pinned {
  std::size_t n;
  std::size_t iterations;
  std::uint64_t total_steps;
  const char* summary;
};

graph::WeightMatrix bench_graph(std::size_t n) {
  util::Rng rng(n);
  return graph::random_reachable_digraph(n, 16, 2.0 / static_cast<double>(n), {1, 30}, 0,
                                         rng);
}

class McpStepRegression : public ::testing::TestWithParam<Pinned> {};

TEST_P(McpStepRegression, CanonicalCountsHold) {
  const Pinned& pin = GetParam();
  const auto g = bench_graph(pin.n);
  for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    mcp::Options options;
    options.backend = backend;
    const mcp::Result r = mcp::solve(g, 0, options);
    const char* name = backend == sim::ExecBackend::BitPlane ? "bitplane" : "word";
    EXPECT_EQ(r.iterations, pin.iterations) << "n=" << pin.n << " backend=" << name;
    EXPECT_EQ(r.total_steps.total(), pin.total_steps) << "n=" << pin.n << " backend=" << name;
    EXPECT_EQ(r.total_steps.summary(), pin.summary) << "n=" << pin.n << " backend=" << name;
  }
}

// Per-iteration cost depends only on h (each iteration is a fixed
// instruction sequence), so n = 64 and n = 128 — which happen to converge
// in the same 8 iterations — pin the SAME totals; the n = 128 row is the
// headline workload of BENCH_e6.json.
INSTANTIATE_TEST_SUITE_P(
    BenchWorkloads, McpStepRegression,
    ::testing::Values(
        Pinned{32, 4, 1045, "steps=1045 alu=883 bus_bcast=30 bus_or=128 global_or=4"},
        Pinned{64, 8, 2069, "steps=2069 alu=1747 bus_bcast=58 bus_or=256 global_or=8"},
        Pinned{128, 8, 2069, "steps=2069 alu=1747 bus_bcast=58 bus_or=256 global_or=8"}));

}  // namespace
}  // namespace ppa
