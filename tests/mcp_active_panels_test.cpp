// Active-panel scheduling (docs/tiling.md "Active panels"): the ISSUE's
// acceptance gate. A huge sparse graph — n = 4096 vertices virtualized on
// a 64 x 64 physical array, 64^2 = 4096 weight panels per sweep — must
// produce bit-identical rows, iteration counts and outcomes whether the
// tiled sweep visits every panel (active_panels = false, the dense
// schedule) or only the dirty ones, on BOTH execution backends; the dense
// run charges exactly I * ceil(n/p)^2 * (p+3) PanelIo beats, the active
// run strictly fewer on a sparse graph, and the ledger closes the gap:
// charged + saved == the dense formula, beat for beat.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "mcp/tiled.hpp"
#include "obs/collector.hpp"
#include "sim/step_counter.hpp"
#include "util/rng.hpp"

namespace ppa {
namespace {

using sim::StepCategory;

struct ScheduledRun {
  mcp::Result result;
  std::uint64_t visited = 0;
  std::uint64_t skipped = 0;
  std::uint64_t saved = 0;
};

ScheduledRun run_tiled(const graph::WeightMatrix& g, graph::Vertex destination,
                       std::size_t p, sim::ExecBackend backend, bool active) {
  obs::Collector collector;
  mcp::Options options;
  options.backend = backend;
  options.array_side = p;
  options.active_panels = active;
  options.observer = &collector;
  ScheduledRun run;
  run.result = mcp::solve(g, destination, options);
  // The skip/saved counters only exist on an active-schedule run; read
  // them as zero when absent so dense runs flow through the same struct.
  const auto& counters = collector.metrics().counters();
  const auto value = [&](std::string_view name) -> std::uint64_t {
    const auto it = counters.find(std::string(name));
    return it == counters.end() ? 0u : it->second.value();
  };
  run.visited = value(obs::metric::kSolverPanels);
  run.skipped = value(obs::metric::kSolverPanelsSkipped);
  run.saved = value(obs::metric::kSolverPanelIoSaved);
  return run;
}

void expect_same_rows(const mcp::Result& a, const mcp::Result& b,
                      const std::string& label) {
  ASSERT_EQ(a.solution.cost, b.solution.cost) << label;
  ASSERT_EQ(a.solution.next, b.solution.next) << label;
  ASSERT_EQ(a.iterations, b.iterations) << label;
  ASSERT_EQ(a.outcome, b.outcome) << label;
}

TEST(ActivePanels, HugeSparseGraphBitIdenticalAndStrictlyCheaper) {
  // 4096 vertices on a 64 x 64 array. The power-law family keeps the
  // iteration count low (hub-dominated diameter) and the activity sparse,
  // so the dense schedule's 4096 panel visits per sweep are mostly waste.
  const std::size_t n = 4096;
  const std::size_t p = 64;
  util::Rng rng(4096);
  const auto g = graph::power_law(n, 16, 2, 0.1, {1, 30}, rng);
  const graph::Vertex destination = 0;

  const ScheduledRun dense_word =
      run_tiled(g, destination, p, sim::ExecBackend::Words, false);
  const ScheduledRun active_word =
      run_tiled(g, destination, p, sim::ExecBackend::Words, true);
  const ScheduledRun dense_plane =
      run_tiled(g, destination, p, sim::ExecBackend::BitPlane, false);
  const ScheduledRun active_plane =
      run_tiled(g, destination, p, sim::ExecBackend::BitPlane, true);

  // Bit-identical rows, iterations and outcomes across schedules and
  // backends; bit-identical step counters across backends per schedule.
  expect_same_rows(dense_word.result, active_word.result, "word: dense vs active");
  expect_same_rows(dense_word.result, dense_plane.result, "dense: word vs plane");
  expect_same_rows(active_word.result, active_plane.result, "active: word vs plane");
  ASSERT_TRUE(dense_word.result.total_steps == dense_plane.result.total_steps)
      << "dense schedule diverged across backends";
  ASSERT_TRUE(active_word.result.total_steps == active_plane.result.total_steps)
      << "active schedule diverged across backends";
  EXPECT_EQ(dense_word.result.outcome, mcp::SolveOutcome::Unchecked);

  // The dense schedule pins the exact formula; the active one must charge
  // STRICTLY less here and close its ledger against the formula.
  const std::uint64_t blocks = (n + p - 1) / p;
  const std::uint64_t formula = static_cast<std::uint64_t>(dense_word.result.iterations) *
                                blocks * blocks * (p + 3);
  const std::uint64_t dense_io = dense_word.result.total_steps.count(StepCategory::PanelIo);
  const std::uint64_t active_io =
      active_word.result.total_steps.count(StepCategory::PanelIo);
  EXPECT_EQ(dense_io, formula);
  EXPECT_LT(active_io, formula) << "a sparse graph must skip and hide panel beats";
  EXPECT_EQ(active_io + active_word.saved, formula)
      << "the ledger must account for every avoided beat";
  EXPECT_EQ(active_word.visited + active_word.skipped,
            static_cast<std::uint64_t>(active_word.result.iterations) * blocks * blocks);
  EXPECT_GT(active_word.skipped, 0u);
  EXPECT_EQ(dense_word.visited,
            static_cast<std::uint64_t>(dense_word.result.iterations) * blocks * blocks);
  EXPECT_EQ(dense_word.skipped, 0u);
  EXPECT_EQ(dense_word.saved, 0u);
}

TEST(ActivePanels, RingOfCliquesIsTheLocalizedBestCase) {
  // 16 cliques of 8 vertices on an 8 x 8 array: clique k IS column block
  // k/1... with clique_size == p each clique occupies exactly one block,
  // and the relaxation wavefront crosses one gateway per iteration — so
  // after the first sweeps only O(1) of the 16 column blocks stay dirty
  // and the skip ratio approaches (blocks - O(1)) / blocks.
  const std::size_t cliques = 16;
  const std::size_t p = 8;
  util::Rng rng(99);
  const auto g = graph::ring_of_cliques(cliques, p, 12, {1, 20}, rng);
  const graph::Vertex destination = 3;

  const ScheduledRun dense = run_tiled(g, destination, p, sim::ExecBackend::Words, false);
  const ScheduledRun active = run_tiled(g, destination, p, sim::ExecBackend::Words, true);
  expect_same_rows(dense.result, active.result, "ring-of-cliques dense vs active");

  const std::uint64_t blocks = cliques;  // n = cliques * p, exactly one block each
  const std::uint64_t all_panels =
      static_cast<std::uint64_t>(active.result.iterations) * blocks * blocks;
  EXPECT_EQ(active.visited + active.skipped, all_panels);
  // The wavefront keeps at most a handful of blocks dirty per iteration;
  // the dense schedule visits all 256. Half is a very loose floor.
  EXPECT_GT(active.skipped, all_panels / 2)
      << "localized activity must skip most panel visits";

  const std::uint64_t formula =
      static_cast<std::uint64_t>(dense.result.iterations) * blocks * blocks * (p + 3);
  EXPECT_EQ(dense.result.total_steps.count(StepCategory::PanelIo), formula);
  EXPECT_EQ(active.result.total_steps.count(StepCategory::PanelIo) + active.saved,
            formula);
}

TEST(ActivePanels, DoubleBufferingAloneStaysExactWhenNothingSkips) {
  // A dense random graph keeps every column block dirty until the last
  // sweep, so almost nothing skips — the saving then comes from the
  // double-buffered loads (beats hidden behind the previous panel's relax
  // phase), and the ledger must still close exactly.
  util::Rng rng(7);
  const std::size_t n = 24;
  const std::size_t p = 6;
  const auto g = graph::random_digraph(n, 8, 0.6, {1, 15}, rng);
  const ScheduledRun dense = run_tiled(g, 5, p, sim::ExecBackend::Words, false);
  const ScheduledRun active = run_tiled(g, 5, p, sim::ExecBackend::Words, true);
  expect_same_rows(dense.result, active.result, "dense-graph dense vs active");

  const std::uint64_t blocks = (n + p - 1) / p;
  const std::uint64_t formula =
      static_cast<std::uint64_t>(dense.result.iterations) * blocks * blocks * (p + 3);
  const std::uint64_t active_io =
      active.result.total_steps.count(StepCategory::PanelIo);
  EXPECT_EQ(dense.result.total_steps.count(StepCategory::PanelIo), formula);
  EXPECT_LT(active_io, formula) << "overlap must hide load beats even with no skips";
  EXPECT_EQ(active_io + active.saved, formula);
}

}  // namespace
}  // namespace ppa
