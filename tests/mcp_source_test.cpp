// solve_from — the single-source convenience wrapper.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using graph::Vertex;

TEST(SolveFrom, TinyGraph) {
  // tiny_graph toward 3: costs {5,3,1,0}. FROM 2: 2->3 (1), 2->0 (1),
  // 2->0->1 (3), 2 itself 0.
  const auto g = test::tiny_graph();
  const SourceResult r = solve_from(g, 2);
  EXPECT_EQ(r.cost, (std::vector<graph::Weight>{1, 3, 0, 1}));
  EXPECT_EQ(r.source, 2u);
  const auto to1 = extract_path_from(r, 1);
  ASSERT_TRUE(to1.has_value());
  EXPECT_EQ(*to1, (std::vector<Vertex>{2, 0, 1}));
  const auto to_self = extract_path_from(r, 2);
  ASSERT_TRUE(to_self.has_value());
  EXPECT_EQ(*to_self, std::vector<Vertex>{2});
}

TEST(SolveFrom, UnreachableTargets) {
  graph::WeightMatrix g(4, 8);
  g.set(0, 1, 2);
  const SourceResult r = solve_from(g, 0);
  EXPECT_EQ(r.cost[1], 2u);
  EXPECT_EQ(r.cost[2], g.infinity());
  EXPECT_FALSE(extract_path_from(r, 2).has_value());
}

TEST(SolveFrom, MatchesDijkstraOnReverseGraph) {
  util::Rng rng(81);
  for (int t = 0; t < 8; ++t) {
    const std::size_t n = 3 + rng.below(14);
    const Vertex s = rng.below(n);
    const auto g = graph::random_digraph(n, 16, 0.3, {1, 20}, rng);
    const SourceResult from = solve_from(g, s);
    // Dijkstra toward s on g^T computes the same quantities.
    const auto reference = baseline::dijkstra_to(g.transposed(), s);
    EXPECT_EQ(from.cost, reference.cost) << "seed t=" << t;
  }
}

TEST(SolveFrom, PathsTraceForwardAtClaimedCost) {
  util::Rng rng(82);
  const auto g = graph::random_reachable_digraph(12, 16, 0.25, {1, 15}, 0, rng).transposed();
  // ^ transposing a "all reach 0" graph gives "0 reaches all".
  const SourceResult r = solve_from(g, 0);
  for (Vertex target = 0; target < 12; ++target) {
    ASSERT_NE(r.cost[target], g.infinity()) << "target " << target;
    const auto path = extract_path_from(r, target);
    ASSERT_TRUE(path.has_value()) << "target " << target;
    EXPECT_EQ(path->front(), 0u);
    EXPECT_EQ(path->back(), target);
    EXPECT_EQ(graph::path_cost(g, *path), r.cost[target]);
  }
}

TEST(SolveFrom, ContractChecks) {
  const auto g = test::tiny_graph();
  EXPECT_THROW((void)solve_from(g, 4), util::ContractError);
  const SourceResult r = solve_from(g, 0);
  EXPECT_THROW((void)extract_path_from(r, 9), util::ContractError);
}

}  // namespace
}  // namespace ppa::mcp
