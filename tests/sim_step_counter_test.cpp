#include "sim/step_counter.hpp"

#include <gtest/gtest.h>

namespace ppa::sim {
namespace {

TEST(StepCounter, StartsEmpty) {
  const StepCounter c;
  EXPECT_EQ(c.total(), 0u);
  for (const auto cat : {StepCategory::Alu, StepCategory::Shift, StepCategory::BusBroadcast,
                         StepCategory::BusOr, StepCategory::GlobalOr}) {
    EXPECT_EQ(c.count(cat), 0u);
  }
}

TEST(StepCounter, ChargeAccumulates) {
  StepCounter c;
  c.charge(StepCategory::Alu, 3);
  c.charge(StepCategory::Alu);
  c.charge(StepCategory::Shift, 2);
  EXPECT_EQ(c.count(StepCategory::Alu), 4u);
  EXPECT_EQ(c.count(StepCategory::Shift), 2u);
  EXPECT_EQ(c.total(), 6u);
}

TEST(StepCounter, BusDelayModels) {
  StepCounter c;
  // One bus cycle spanning 8 hops: Unit=1, Log=1+3=4, Linear=8.
  c.charge_bus(StepCategory::BusBroadcast, 8);
  EXPECT_EQ(c.total_under(BusDelayModel::Unit), 1u);
  EXPECT_EQ(c.total_under(BusDelayModel::Log), 4u);
  EXPECT_EQ(c.total_under(BusDelayModel::Linear), 8u);
}

TEST(StepCounter, BusDelayDegenerateSegment) {
  StepCounter c;
  c.charge_bus(StepCategory::BusOr, 0);  // floating line still costs a cycle
  c.charge_bus(StepCategory::BusOr, 1);
  EXPECT_EQ(c.total_under(BusDelayModel::Unit), 2u);
  EXPECT_EQ(c.total_under(BusDelayModel::Log), 2u);
  EXPECT_EQ(c.total_under(BusDelayModel::Linear), 2u);
}

TEST(StepCounter, NonBusCategoriesCostOneUnderEveryModel) {
  StepCounter c;
  c.charge(StepCategory::Alu, 10);
  EXPECT_EQ(c.total_under(BusDelayModel::Linear), 10u);
}

TEST(StepCounter, SinceComputesDeltas) {
  StepCounter c;
  c.charge(StepCategory::Alu, 5);
  const StepCounter snapshot = c;
  c.charge(StepCategory::Alu, 2);
  c.charge_bus(StepCategory::BusBroadcast, 16);
  const StepCounter delta = c.since(snapshot);
  EXPECT_EQ(delta.count(StepCategory::Alu), 2u);
  EXPECT_EQ(delta.count(StepCategory::BusBroadcast), 1u);
  EXPECT_EQ(delta.total_under(BusDelayModel::Linear), 2u + 16u);
}

TEST(StepCounter, ResetClearsEverything) {
  StepCounter c;
  c.charge_bus(StepCategory::BusOr, 32);
  c.reset();
  EXPECT_EQ(c, StepCounter{});
  EXPECT_EQ(c.total_under(BusDelayModel::Linear), 0u);
}

TEST(StepCounter, SummaryMentionsNonZeroCategories) {
  StepCounter c;
  c.charge(StepCategory::Shift, 3);
  const std::string s = c.summary();
  EXPECT_NE(s.find("shift=3"), std::string::npos);
  EXPECT_EQ(s.find("bus_or"), std::string::npos);
}

TEST(StepCategoryNames, AllDistinct) {
  EXPECT_STREQ(name_of(StepCategory::Alu), "alu");
  EXPECT_STREQ(name_of(StepCategory::Shift), "shift");
  EXPECT_STREQ(name_of(StepCategory::BusBroadcast), "bus_bcast");
  EXPECT_STREQ(name_of(StepCategory::BusOr), "bus_or");
  EXPECT_STREQ(name_of(StepCategory::GlobalOr), "global_or");
}

}  // namespace
}  // namespace ppa::sim
