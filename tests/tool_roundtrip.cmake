# End-to-end test of the ppa_mcp CLI: gen -> info -> solve (all four
# machine models) -> verify, plus the closure subcommand. Invoked by ctest
# with -DTOOL=<path to the binary> -DWORKDIR=<scratch dir>.
if(NOT DEFINED TOOL OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "TOOL and WORKDIR must be defined")
endif()

set(graph_file "${WORKDIR}/tool_test_graph.txt")
set(solution_file "${WORKDIR}/tool_test_solution.txt")

function(run_tool)
  execute_process(COMMAND ${TOOL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ppa_mcp ${ARGN} failed (rc=${rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

run_tool(gen --family reachable --n 14 --seed 9 --dest 3 --out ${graph_file})
run_tool(info --graph ${graph_file} --dest 3)
if(NOT last_output MATCHES "reachable 14/14")
  message(FATAL_ERROR "info did not report full reachability: ${last_output}")
endif()

foreach(model ppa gcn mesh hypercube)
  run_tool(solve --graph ${graph_file} --dest 3 --model ${model} --out ${solution_file})
  run_tool(verify --graph ${graph_file} --solution ${solution_file})
  if(NOT last_output MATCHES "OK")
    message(FATAL_ERROR "verify failed for model ${model}: ${last_output}")
  endif()
endforeach()

run_tool(closure --graph ${graph_file})
if(NOT last_output MATCHES "transitive closure of 14 vertices")
  message(FATAL_ERROR "closure output unexpected: ${last_output}")
endif()

run_tool(allpairs --graph ${graph_file})
if(NOT last_output MATCHES "diameter")
  message(FATAL_ERROR "allpairs output unexpected: ${last_output}")
endif()

run_tool(eccentricity --graph ${graph_file})
if(NOT last_output MATCHES "in-radius")
  message(FATAL_ERROR "eccentricity output unexpected: ${last_output}")
endif()

# A deliberately corrupted solution must FAIL verification.
run_tool(solve --graph ${graph_file} --dest 3 --out ${solution_file})
file(READ ${solution_file} solution_text)
string(REGEX REPLACE "v 0 ([0-9]+)" "v 0 1" solution_text "${solution_text}")
file(WRITE ${solution_file} "${solution_text}")
execute_process(COMMAND ${TOOL} verify --graph ${graph_file} --solution ${solution_file}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "verify accepted a corrupted solution")
endif()

file(REMOVE ${graph_file} ${solution_file})
message(STATUS "tool round trip OK")
