// The communication and combination primitives, including the paper's
// bit-serial min()/selected_min() against host-computed cluster minima.
#include "ppc/primitives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "util/rng.hpp"

namespace ppa::ppc {
namespace {

using sim::Direction;

sim::MachineConfig config_of(std::size_t n, int bits) {
  sim::MachineConfig c;
  c.n = n;
  c.bits = bits;
  return c;
}

TEST(Shift, MovesValuesWithFill) {
  sim::Machine m(config_of(3, 8));
  Context ctx(m);
  const Pint c = col_of(ctx);
  const Pint east = shift(c, Direction::East, 77);
  EXPECT_EQ(east.at(0, 0), 77u);
  EXPECT_EQ(east.at(0, 1), 0u);
  EXPECT_EQ(east.at(0, 2), 1u);
  const Pbool diag = (row_of(ctx) == col_of(ctx));
  const Pbool south = shift(diag, Direction::South, false);
  EXPECT_FALSE(south.at(0, 0));
  EXPECT_TRUE(south.at(1, 0));
  EXPECT_TRUE(south.at(2, 1));
}

TEST(Broadcast, RowDToAllRows) {
  // The MCP statement-10 pattern: open on row d, direction South.
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  const Word d = 2;
  const Pint payload = select((row_of(ctx) == d), col_of(ctx) + Word{10}, Pint(ctx, 0));
  const Pbool row_d = (row_of(ctx) == d);
  const Pint got = broadcast(payload, Direction::South, row_d);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(got.at(r, c), 10u + c) << r << "," << c;
    }
  }
  EXPECT_TRUE(got.fully_driven());
}

TEST(Broadcast, DiagonalToRowD) {
  // The MCP statement-16 pattern: open on the diagonal, direction South;
  // works for every d only because the buses wrap (Ring).
  sim::Machine m(config_of(5, 8));
  Context ctx(m);
  const Pbool diag = (row_of(ctx) == col_of(ctx));
  const Pint payload = select(diag, col_of(ctx) + Word{20}, Pint(ctx, 0));
  const Pint got = broadcast(payload, Direction::South, diag);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(got.at(r, c), 20u + c);
    }
  }
}

TEST(Broadcast, PropagatesTaintOfReinjectedValues) {
  // A floating read driven back onto a bus taints everything it drives;
  // shift and bus_or still refuse tainted sources outright.
  auto cfg = config_of(3, 8);
  cfg.topology = sim::BusTopology::Linear;
  sim::Machine m(cfg);
  Context ctx(m);
  const Pbool open_col0 = (col_of(ctx) == Word{0});
  const Pint tainted = broadcast(Pint(ctx, 7), Direction::East, open_col0);
  ASSERT_FALSE(tainted.fully_driven());  // column 0 reads its own floating stub
  // Re-inject down the columns from row 0: column 0's driver is tainted,
  // so all of column 0 stays tainted; columns 1, 2 become driven rows > 0.
  const Pbool open_row0 = (row_of(ctx) == Word{0});
  const Pint again = broadcast(tainted, Direction::South, open_row0);
  ASSERT_FALSE(again.fully_driven());
  const Pbool ok = driven_mask(again);
  for (std::size_t r = 1; r < 3; ++r) {
    EXPECT_FALSE(ok.at(r, 0)) << "column 0 carries the taint";
    EXPECT_TRUE(ok.at(r, 1));
    EXPECT_TRUE(ok.at(r, 2));
    EXPECT_EQ(again.at(r, 1), 7u);
  }
  EXPECT_THROW((void)shift(tainted, Direction::East), util::ContractError);
}

TEST(Broadcast, TwoSidedReachesBothSidesOnLinear) {
  auto cfg = config_of(5, 8);
  cfg.topology = sim::BusTopology::Linear;
  sim::Machine m(cfg);
  Context ctx(m);
  // Open at column 2 of every row: a one-sided East broadcast misses
  // columns 0..2; the two-sided version reaches everything except the
  // driver itself.
  const Pbool open = (col_of(ctx) == Word{2});
  const Pint payload = row_of(ctx) + Word{10};
  const Pint got = two_sided_broadcast(payload, Direction::East, open);
  const Pbool ok = driven_mask(got);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      if (c == 2) {
        EXPECT_FALSE(ok.at(r, c)) << "a driver never hears itself on a linear bus";
      } else {
        EXPECT_TRUE(ok.at(r, c));
        EXPECT_EQ(got.at(r, c), 10u + r);
      }
    }
  }
}

TEST(Broadcast, TwoSidedOnRingMatchesSingle) {
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  const Pbool open = (col_of(ctx) == Word{1});
  const Pint payload = row_of(ctx) + Word{3};
  const Pint single = broadcast(payload, Direction::East, open);
  const Pint doubled = two_sided_broadcast(payload, Direction::East, open);
  for (std::size_t pe = 0; pe < 16; ++pe) {
    EXPECT_EQ(single.at(pe), doubled.at(pe));
  }
  EXPECT_TRUE(doubled.fully_driven());
}

TEST(BusOr, ClusterWideOr) {
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  const Pbool anchor = (col_of(ctx) == Word{3});
  const Pbool pull = (row_of(ctx) == Word{1}) & (col_of(ctx) == Word{0});
  const Pbool result = bus_or(pull, Direction::West, anchor);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_FALSE(result.at(0, c));
    EXPECT_TRUE(result.at(1, c));
  }
}

TEST(Any, GlobalOrLine) {
  sim::Machine m(config_of(3, 8));
  Context ctx(m);
  EXPECT_FALSE(any(Pbool(ctx, false)));
  EXPECT_TRUE(any(Pbool(ctx, true)));
  const Pbool one = (row_of(ctx) == Word{2}) & (col_of(ctx) == Word{2});
  EXPECT_TRUE(any(one));
  EXPECT_EQ(m.steps().count(sim::StepCategory::GlobalOr), 3u);
}

// ---------------------------------------------------------------------------
// pmin / selected_min — randomized against host-computed row minima.
// ---------------------------------------------------------------------------

struct MinCase {
  std::size_t n;
  int bits;
  std::uint64_t seed;
};

class MinSweep : public ::testing::TestWithParam<MinCase> {};

TEST_P(MinSweep, PminMatchesHostRowMinimum) {
  const auto [n, bits, seed] = GetParam();
  sim::Machine m(config_of(n, bits));
  Context ctx(m);
  util::Rng rng(seed);

  std::vector<Word> data(n * n);
  for (auto& v : data) v = static_cast<Word>(rng.below(m.field().infinity() + 1ull));
  const Pint src(ctx, data);
  const Pbool row_end = (col_of(ctx) == static_cast<Word>(n - 1));

  const Pint result = pmin(src, Direction::West, row_end);
  const Pint probe = pmin_orprobe(src, Direction::West, row_end);

  for (std::size_t r = 0; r < n; ++r) {
    const Word expected =
        *std::min_element(data.begin() + static_cast<std::ptrdiff_t>(r * n),
                          data.begin() + static_cast<std::ptrdiff_t>((r + 1) * n));
    for (std::size_t c = 0; c < n; ++c) {
      ASSERT_EQ(result.at(r, c), expected) << "pmin row " << r << " col " << c;
      ASSERT_EQ(probe.at(r, c), expected) << "orprobe row " << r << " col " << c;
    }
  }
}

TEST_P(MinSweep, SelectedMinMatchesHostArgmin) {
  const auto [n, bits, seed] = GetParam();
  sim::Machine m(config_of(n, bits));
  Context ctx(m);
  util::Rng rng(seed ^ 0xBEEF);

  std::vector<Word> data(n * n);
  for (auto& v : data) v = static_cast<Word>(rng.below(8));  // many ties
  const Pint src(ctx, data);
  const Pbool row_end = (col_of(ctx) == static_cast<Word>(n - 1));

  const Pint row_minimum = pmin(src, Direction::West, row_end);
  Pint stored(ctx, 0);
  stored.store_all(row_minimum);
  const Pbool is_min = (stored == src);
  const Pint arg = selected_min(col_of(ctx), Direction::West, row_end, is_min);
  const Pint arg_probe = selected_min_orprobe(col_of(ctx), Direction::West, row_end, is_min);

  for (std::size_t r = 0; r < n; ++r) {
    // Host argmin: smallest column attaining the row minimum.
    Word best = m.field().infinity();
    std::size_t best_col = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (data[r * n + c] < best) {
        best = data[r * n + c];
        best_col = c;
      }
    }
    for (std::size_t c = 0; c < n; ++c) {
      ASSERT_EQ(arg.at(r, c), best_col) << "row " << r;
      ASSERT_EQ(arg_probe.at(r, c), best_col) << "row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MinSweep,
    ::testing::Values(MinCase{2, 4, 1}, MinCase{3, 8, 2}, MinCase{5, 8, 3}, MinCase{8, 6, 4},
                      MinCase{8, 16, 5}, MinCase{13, 12, 6}, MinCase{16, 10, 7},
                      MinCase{16, 32, 8}, MinCase{31, 8, 9}));

TEST(Pmin, StepsLinearInWordWidthIndependentOfN) {
  // The paper's complexity claim for min(): O(h), no n dependence.
  const auto cost_of = [](std::size_t n, int bits) {
    sim::Machine m(config_of(n, bits));
    Context ctx(m);
    const Pint src = col_of(ctx);
    const Pbool anchor = (col_of(ctx) == static_cast<Word>(n - 1));
    const auto before = m.steps();
    (void)pmin(src, Direction::West, anchor);
    return m.steps().since(before);
  };

  // Same h, different n: identical instruction counts under the paper's
  // unit-cost model. (The Log/Linear settle-delay re-costings DO grow with
  // n — longer segments — which is the E7b ablation, so compare the
  // unit-model totals and per-category counts, not the full counters.)
  const auto c8 = cost_of(8, 12);
  const auto c16 = cost_of(16, 12);
  const auto c31 = cost_of(31, 12);
  EXPECT_EQ(c8.total(), c16.total());
  EXPECT_EQ(c8.total(), c31.total());
  for (const auto cat :
       {sim::StepCategory::Alu, sim::StepCategory::Shift, sim::StepCategory::BusBroadcast,
        sim::StepCategory::BusOr, sim::StepCategory::GlobalOr}) {
    EXPECT_EQ(c8.count(cat), c16.count(cat));
    EXPECT_EQ(c8.count(cat), c31.count(cat));
  }
  EXPECT_GT(c31.total_under(sim::BusDelayModel::Linear),
            c8.total_under(sim::BusDelayModel::Linear));

  // Doubling h doubles the wired-OR cycles exactly.
  const auto h8 = cost_of(16, 8);
  const auto h16 = cost_of(16, 16);
  const auto h32 = cost_of(16, 32);
  EXPECT_EQ(h8.count(sim::StepCategory::BusOr), 8u);
  EXPECT_EQ(h16.count(sim::StepCategory::BusOr), 16u);
  EXPECT_EQ(h32.count(sim::StepCategory::BusOr), 32u);
  // And total steps are affine in h.
  EXPECT_EQ(h32.total() - h16.total(), 2 * (h16.total() - h8.total()));
}

TEST(Pmin, OrProbeUsesFewerBroadcasts) {
  sim::Machine m1(config_of(8, 16));
  sim::Machine m2(config_of(8, 16));
  Context ctx1(m1);
  Context ctx2(m2);
  const Pbool anchor1 = (col_of(ctx1) == Word{7});
  const Pbool anchor2 = (col_of(ctx2) == Word{7});
  (void)pmin(col_of(ctx1), Direction::West, anchor1);
  (void)pmin_orprobe(col_of(ctx2), Direction::West, anchor2);
  EXPECT_EQ(m1.steps().count(sim::StepCategory::BusOr),
            m2.steps().count(sim::StepCategory::BusOr));
  EXPECT_GT(m1.steps().count(sim::StepCategory::BusBroadcast),
            m2.steps().count(sim::StepCategory::BusBroadcast));
  EXPECT_EQ(m2.steps().count(sim::StepCategory::BusBroadcast), 0u);
}

TEST(SelectedMin, EmptySelectionOrProbeYieldsInfinity) {
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  const Pbool anchor = (col_of(ctx) == Word{3});
  const Pbool none(ctx, false);
  const Pint result = selected_min_orprobe(col_of(ctx), Direction::West, anchor, none);
  for (std::size_t pe = 0; pe < 16; ++pe) EXPECT_EQ(result.at(pe), m.field().infinity());
}

TEST(Pmin, RespectsAmbientMaskOnlyForStores) {
  // Running pmin inside where(ROW != 1) must still produce correct minima
  // for the active rows (the bus is physical).
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  std::vector<Word> data(16);
  for (std::size_t pe = 0; pe < 16; ++pe) data[pe] = static_cast<Word>((pe * 7 + 3) % 50);
  const Pint src(ctx, data);
  const Pbool anchor = (col_of(ctx) == Word{3});
  Pint out(ctx, 0);
  const Pbool active = (row_of(ctx) != Word{1});
  where(ctx, active, [&] { out = pmin(src, Direction::West, anchor); });
  for (std::size_t r = 0; r < 4; ++r) {
    const Word expected =
        *std::min_element(data.begin() + static_cast<std::ptrdiff_t>(r * 4),
                          data.begin() + static_cast<std::ptrdiff_t>((r + 1) * 4));
    for (std::size_t c = 0; c < 4; ++c) {
      if (r == 1) {
        EXPECT_EQ(out.at(r, c), 0u);  // masked off: untouched
      } else {
        EXPECT_EQ(out.at(r, c), expected);
      }
    }
  }
}

TEST(Pmin, ColumnOrientation) {
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  std::vector<Word> data(16);
  for (std::size_t pe = 0; pe < 16; ++pe) data[pe] = static_cast<Word>((pe * 11 + 5) % 90);
  const Pint src(ctx, data);
  const Pbool anchor = (row_of(ctx) == Word{0});
  const Pint result = pmin(src, Direction::South, anchor);
  for (std::size_t c = 0; c < 4; ++c) {
    Word expected = m.field().infinity();
    for (std::size_t r = 0; r < 4; ++r) expected = std::min(expected, data[r * 4 + c]);
    for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(result.at(r, c), expected);
  }
}

}  // namespace
}  // namespace ppa::ppc
