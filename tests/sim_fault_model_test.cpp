// Fault-injection unit tests: the spec parser, the seeded random model,
// and the Machine-level semantics of each fault class (dead PEs never
// drive and read 0, stuck switch boxes rewrite the effective Open mask,
// stuck bus-line bits force wires of received values, stuck-closed program
// drivers are reported as bus contention in checked mode). The last test
// drives both bus engines directly with identical faults and asserts
// bit-identical outputs — the machine-level anchor for the backend
// differential on faulty runs.
#include "sim/fault_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "util/check.hpp"

namespace ppa::sim {
namespace {

MachineConfig config_of(std::size_t n, int bits = 8) {
  MachineConfig c;
  c.n = n;
  c.bits = bits;
  return c;
}

TEST(FaultModelParse, AcceptsEveryItemKind) {
  const FaultModel m = FaultModel::parse(
      " stuck-open:row,1,2 ; stuck-closed:col,0,3 ; stuck-bit:row,1,3,1 ; dead:2,3 ", 4, 8);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m.faults()[0].kind, FaultKind::StuckOpen);
  EXPECT_EQ(m.faults()[0].axis, Axis::Row);
  EXPECT_EQ(m.faults()[0].row, 1u);
  EXPECT_EQ(m.faults()[0].col, 2u);
  EXPECT_EQ(m.faults()[1].kind, FaultKind::StuckClosed);
  EXPECT_EQ(m.faults()[1].axis, Axis::Column);
  EXPECT_EQ(m.faults()[2].kind, FaultKind::StuckBit);
  EXPECT_EQ(m.faults()[2].row, 1u);  // line index
  EXPECT_EQ(m.faults()[2].bit, 3);
  EXPECT_TRUE(m.faults()[2].stuck_value);
  EXPECT_EQ(m.faults()[3].kind, FaultKind::DeadPe);
  EXPECT_EQ(m.faults()[3].row, 2u);
  EXPECT_EQ(m.faults()[3].col, 3u);
}

TEST(FaultModelParse, AcceptsTransientBitGrammar) {
  const FaultModel m = FaultModel::parse("transient-bit:col,2,5,1,4,3", 4, 8);
  ASSERT_EQ(m.size(), 1u);
  const Fault& f = m.faults()[0];
  EXPECT_EQ(f.kind, FaultKind::StuckBit);
  EXPECT_EQ(f.axis, Axis::Column);
  EXPECT_EQ(f.row, 2u);
  EXPECT_EQ(f.bit, 5);
  EXPECT_TRUE(f.stuck_value);
  EXPECT_EQ(f.period, 4u);
  EXPECT_EQ(f.phase, 3u);
  // The transient form round-trips through to_string.
  EXPECT_NE(to_string(f).find("transient-bit"), std::string::npos);
}

TEST(FaultModelParse, RejectsMalformedTransientBit) {
  const auto bad = [](std::string_view spec) {
    EXPECT_THROW((void)FaultModel::parse(spec, 4, 8), util::ParseError) << spec;
  };
  bad("transient-bit:row,1,3,1");        // transient form needs period+phase
  bad("transient-bit:row,1,3,1,4");      // missing phase
  bad("transient-bit:row,1,3,1,0,0");    // period must be >= 1
  bad("transient-bit:row,1,3,1,4,4");    // phase must be < period
  bad("transient-bit:row,9,3,1,4,1");    // line out of range for n=4
  bad("transient-bit:row,1,8,1,4,1");    // bit out of range for h=8
}

TEST(FaultModelParse, RandomItemExpandsDeterministically) {
  const FaultModel parsed = FaultModel::parse("random:9,4", 8, 8);
  EXPECT_EQ(parsed, FaultModel::random(8, 8, 9, 4));
  EXPECT_EQ(parsed.size(), 4u);
}

TEST(FaultModelParse, RejectsMalformedSpecs) {
  const auto bad = [](std::string_view spec) {
    EXPECT_THROW((void)FaultModel::parse(spec, 4, 8), util::ParseError) << spec;
  };
  bad("bogus:1,2");
  bad("stuck-open:diag,0,0");  // unknown axis
  bad("stuck-open:row,0");     // missing field
  bad("dead:9,0");             // row out of range for n=4
  bad("dead:0,4");             // col out of range
  bad("stuck-bit:row,0,8,1");  // bit out of range for h=8
  bad("stuck-bit:row,0,0,2");  // stuck value must be 0|1
  bad("dead:a,b");             // not a number
  bad("dead");                 // no payload at all
}

TEST(FaultModelRandom, SeededAndInRange) {
  const FaultModel a = FaultModel::random(16, 12, 5, 24);
  EXPECT_EQ(a, FaultModel::random(16, 12, 5, 24));
  EXPECT_NE(a, FaultModel::random(16, 12, 6, 24));
  EXPECT_EQ(a.size(), 24u);
  // Everything drawn must survive compilation against the same geometry.
  EXPECT_NO_THROW((void)compile_faults(a, PlaneGeometry(16), 12));
}

TEST(CompileFaults, RejectsOutOfRangeCoordinates) {
  FaultModel m;
  m.add(Fault{FaultKind::DeadPe, Axis::Row, 4, 0, 0, false});
  EXPECT_THROW((void)compile_faults(m, PlaneGeometry(4), 8), util::ContractError);
  FaultModel b;
  b.add(Fault{FaultKind::StuckBit, Axis::Column, 0, 0, 8, true});
  EXPECT_THROW((void)compile_faults(b, PlaneGeometry(4), 8), util::ContractError);
}

TEST(MachineFaults, InjectAndClear) {
  Machine m(config_of(4));
  EXPECT_FALSE(m.has_faults());
  m.inject_faults(FaultModel::parse("dead:1,1", 4, 8));
  EXPECT_TRUE(m.has_faults());
  m.inject_faults(FaultModel{});
  EXPECT_FALSE(m.has_faults());
}

TEST(MachineFaults, DeadPeNeverDrivesItsSegment) {
  Machine m(config_of(4));
  m.inject_faults(FaultModel::parse("dead:0,1", 4, 8));
  std::vector<Word> src(16, 7);
  std::vector<Flag> open(16, 0);
  open[1] = 1;  // the dead PE is the only row-0 driver
  const BusResult r = m.broadcast(src, Direction::East, open);
  for (std::size_t col = 0; col < 4; ++col) {
    EXPECT_EQ(r.driven[col], 0) << "col " << col;
    EXPECT_EQ(r.values[col], 0u) << "col " << col;
  }
  // Rows without the fault behave normally (undriven: no driver at all).
  EXPECT_EQ(r.driven[4], 0);
}

TEST(MachineFaults, DeadPeReadsZeroFromADrivenBus) {
  Machine m(config_of(4));
  m.inject_faults(FaultModel::parse("dead:0,3", 4, 8));
  std::vector<Word> src(16, 0);
  src[1] = 9;
  std::vector<Flag> open(16, 0);
  open[1] = 1;  // alive driver at (0,1), Ring: whole row reads 9
  const BusResult r = m.broadcast(src, Direction::East, open);
  EXPECT_EQ(r.values[0], 9u);
  EXPECT_EQ(r.values[2], 9u);
  EXPECT_EQ(r.values[3], 0u);  // the dead PE's input port reads 0
  EXPECT_EQ(r.driven[3], 1);   // the segment itself is driven
}

TEST(MachineFaults, StuckOpenSegmentsAndInjects) {
  Machine m(config_of(4));
  m.inject_faults(FaultModel::parse("stuck-open:row,0,2", 4, 8));
  std::vector<Word> src(16, 0);
  src[0] = 5;
  src[2] = 8;  // the jammed switch injects this PE's src
  std::vector<Flag> open(16, 0);
  open[0] = 1;
  const BusResult r = m.broadcast(src, Direction::East, open);
  // Ring row 0 with opens at cols {0, 2}: cols 1,2 read PE 0's value, cols
  // 3,0 read PE 2's value.
  EXPECT_EQ(r.values[1], 5u);
  EXPECT_EQ(r.values[2], 5u);
  EXPECT_EQ(r.values[3], 8u);
  EXPECT_EQ(r.values[0], 8u);
}

TEST(MachineFaults, StuckClosedSuppressesAProgramDriver) {
  auto cfg = config_of(4);
  cfg.checked = true;
  Machine m(cfg);
  m.inject_faults(FaultModel::parse("stuck-closed:row,0,2", 4, 8));
  std::vector<Word> src(16, 0);
  src[0] = 5;
  src[2] = 8;
  std::vector<Flag> open(16, 0);
  open[0] = 1;
  open[2] = 1;  // this switch is forced Short: 8 is never injected
  const BusResult r = m.broadcast(src, Direction::East, open);
  for (std::size_t col = 1; col < 4; ++col) EXPECT_EQ(r.values[col], 5u) << col;
  // The suppressed driver is bus contention in checked mode.
  ASSERT_EQ(m.fault_count(), 1u);
  EXPECT_EQ(m.fault_events()[0].kind, FaultEventKind::BusContention);
  EXPECT_EQ(m.fault_events()[0].row, 0u);
  EXPECT_EQ(m.fault_events()[0].col, 2u);
}

TEST(MachineFaults, UncheckedMachineDoesNotLogContention) {
  Machine m(config_of(4));
  m.inject_faults(FaultModel::parse("stuck-closed:row,0,2", 4, 8));
  std::vector<Word> src(16, 3);
  std::vector<Flag> open(16, 0);
  open[2] = 1;
  (void)m.broadcast(src, Direction::East, open);
  EXPECT_EQ(m.fault_count(), 0u);
}

TEST(MachineFaults, StuckBitForcesTheWireOnItsLine) {
  Machine m(config_of(4));
  m.inject_faults(FaultModel::parse("stuck-bit:row,0,1,1", 4, 8));
  std::vector<Word> src(16, 0);
  src[0] = 4;
  src[4] = 4;  // row 1 driver, line is healthy there
  std::vector<Flag> open(16, 0);
  open[0] = 1;
  open[4] = 1;
  const BusResult r = m.broadcast(src, Direction::East, open);
  EXPECT_EQ(r.values[1], 6u);  // 4 with bit 1 forced on
  EXPECT_EQ(r.values[5], 4u);  // other lines untouched
  // Stuck-at-0 masks the wire off instead.
  m.inject_faults(FaultModel::parse("stuck-bit:row,0,2,0", 4, 8));
  const BusResult r0 = m.broadcast(src, Direction::East, open);
  EXPECT_EQ(r0.values[1], 0u);  // 4 == bit 2 alone, forced off
}

TEST(MachineFaults, ColumnFaultsDoNotDisturbRowCycles) {
  Machine m(config_of(4));
  m.inject_faults(FaultModel::parse("stuck-bit:col,0,0,1;stuck-open:col,1,1", 4, 8));
  std::vector<Word> src(16, 0);
  src[0] = 4;
  std::vector<Flag> open(16, 0);
  open[0] = 1;
  const BusResult row_cycle = m.broadcast(src, Direction::East, open);
  EXPECT_EQ(row_cycle.values[1], 4u);  // row cycle sees no column fault
  const BusResult col_cycle = m.broadcast(src, Direction::South, open);
  EXPECT_EQ(col_cycle.values[4], 5u);  // column 0 wire 0 forced on
}

TEST(MachineFaults, WiredOrAppliesDeadAndStuckSemantics) {
  Machine m(config_of(4));
  m.inject_faults(FaultModel::parse("dead:0,1;stuck-bit:row,1,0,1", 4, 8));
  std::vector<Flag> bits(16, 0);
  bits[1] = 1;  // dead PE's contribution must vanish
  const std::vector<Flag> open(16, 0);
  const BusResult r = m.wired_or(bits, Direction::East, open);
  EXPECT_EQ(r.values[0], 0u);  // row 0: only the dead PE asserted
  EXPECT_EQ(r.values[1], 0u);  // and the dead PE itself reads 0
  EXPECT_EQ(r.values[4], 1u);  // row 1: the stuck wire forces 1 everywhere
  EXPECT_EQ(r.values[7], 1u);
}

TEST(MachineFaults, WordAndPlaneEnginesAgreeUnderIdenticalFaults) {
  // Drive both bus engines of the SAME machine directly with the same
  // faulty cycle and compare values, driven flags and max_segment. n = 67
  // straddles the 64-lane plane-word boundary.
  const std::size_t n = 67;
  const int bits = 8;
  auto cfg = config_of(n, bits);
  Machine m(cfg);
  m.inject_faults(FaultModel::parse(
      "dead:0,1;dead:3,65;stuck-open:row,2,64;stuck-closed:row,4,4;"
      "stuck-bit:row,5,2,1;stuck-bit:row,6,0,0;random:31,6",
      n, bits));

  std::vector<Word> src(n * n);
  std::vector<Flag> open(n * n, 0);
  for (std::size_t pe = 0; pe < n * n; ++pe) {
    src[pe] = static_cast<Word>((pe * 7 + 3) % (1u << bits));
    open[pe] = (pe % 9 == 0) ? 1 : 0;
  }

  std::vector<Word> word_values(n * n);
  std::vector<Flag> word_driven(n * n);
  const std::size_t word_seg =
      m.broadcast_into(std::span<const Word>(src), Direction::East, open, word_values,
                       word_driven);

  const PlaneGeometry& g = m.plane_geometry();
  std::vector<PlaneWord> src_planes(g.plane_words() * static_cast<std::size_t>(bits));
  std::vector<PlaneWord> open_plane(g.plane_words());
  pack_words(g, src, bits, src_planes.data());
  pack_flags(g, open, open_plane.data());
  std::vector<PlaneWord> out_planes(src_planes.size());
  std::vector<PlaneWord> driven_plane(g.plane_words());
  const std::size_t plane_seg = m.broadcast_planes_into(
      src_planes.data(), bits, Direction::East, open_plane.data(), out_planes.data(),
      driven_plane.data());

  EXPECT_EQ(plane_seg, word_seg);
  std::vector<Word> plane_values(n * n);
  std::vector<Flag> plane_driven(n * n);
  unpack_words(g, out_planes.data(), bits, plane_values);
  unpack_flags(g, driven_plane.data(), plane_driven);
  EXPECT_EQ(plane_values, word_values);
  EXPECT_EQ(plane_driven, word_driven);

  // Wired-OR parity under the same model.
  std::vector<Flag> or_src(n * n);
  for (std::size_t pe = 0; pe < n * n; ++pe) or_src[pe] = (pe % 5 == 0) ? 1 : 0;
  std::vector<Flag> or_word(n * n);
  (void)m.wired_or_into(or_src, Direction::South, open, or_word);
  std::vector<PlaneWord> or_src_plane(g.plane_words());
  std::vector<PlaneWord> or_out_plane(g.plane_words());
  pack_flags(g, or_src, or_src_plane.data());
  (void)m.wired_or_plane_into(or_src_plane.data(), Direction::South, open_plane.data(),
                              or_out_plane.data());
  std::vector<Flag> or_plane(n * n);
  unpack_flags(g, or_out_plane.data(), or_plane);
  EXPECT_EQ(or_plane, or_word);
}

TEST(FaultEventFormatting, NamesAndToString) {
  EXPECT_STREQ(name_of(FaultKind::DeadPe), "dead");
  const FaultEvent e{FaultEventKind::BusContention, StepCategory::BusBroadcast,
                     Direction::South, 3, 7, 2};
  const std::string s = to_string(e);
  EXPECT_NE(s.find("bus_contention"), std::string::npos);
  EXPECT_NE(s.find("(3,7)"), std::string::npos);
}

}  // namespace
}  // namespace ppa::sim
