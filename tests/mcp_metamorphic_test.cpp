// Metamorphic properties of the MCP: known input transformations with
// predictable output transformations. These catch whole classes of bugs
// (index mix-ups, asymmetries, scaling errors) that point comparisons
// against Dijkstra can miss only by luck.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using graph::Vertex;
using graph::WeightMatrix;

/// Relabels vertices by `perm` (new index = perm[old index]).
WeightMatrix permuted(const WeightMatrix& g, const std::vector<Vertex>& perm) {
  WeightMatrix out(g.size(), g.field().bits());
  for (const auto& e : g.edges()) out.set(perm[e.from], perm[e.to], e.weight);
  return out;
}

class MetamorphicSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetamorphicSeeds, PermutationInvariance) {
  // Relabeling the vertices relabels the solution — costs transported by
  // the permutation must match exactly.
  util::Rng rng(GetParam());
  const std::size_t n = 4 + rng.below(12);
  const auto g = graph::random_digraph(n, 16, 0.3, {1, 20}, rng);
  const Vertex d = rng.below(n);

  std::vector<Vertex> perm(n);
  for (Vertex v = 0; v < n; ++v) perm[v] = v;
  rng.shuffle(perm);

  const Result base = solve(g, d);
  const Result moved = solve(permuted(g, perm), perm[d]);
  for (Vertex i = 0; i < n; ++i) {
    EXPECT_EQ(base.solution.cost[i], moved.solution.cost[perm[i]]) << "vertex " << i;
  }
  EXPECT_EQ(base.iterations, moved.iterations);
}

TEST_P(MetamorphicSeeds, WeightScaling) {
  // Multiplying every weight by a constant multiplies every finite cost
  // by the same constant (field kept wide enough to avoid saturation).
  util::Rng rng(GetParam() ^ 0x1111);
  const std::size_t n = 4 + rng.below(10);
  const auto g = graph::random_digraph(n, 24, 0.3, {1, 9}, rng);
  const Vertex d = rng.below(n);
  const graph::Weight factor = 3;

  WeightMatrix scaled(n, 24);
  for (const auto& e : g.edges()) scaled.set(e.from, e.to, e.weight * factor);

  const Result base = solve(g, d);
  const Result times3 = solve(scaled, d);
  for (Vertex i = 0; i < n; ++i) {
    if (base.solution.cost[i] == g.infinity()) {
      EXPECT_EQ(times3.solution.cost[i], scaled.infinity());
    } else {
      EXPECT_EQ(times3.solution.cost[i], base.solution.cost[i] * factor);
    }
  }
}

TEST_P(MetamorphicSeeds, AddingAnEdgeNeverIncreasesAnyCost) {
  util::Rng rng(GetParam() ^ 0x2222);
  const std::size_t n = 5 + rng.below(10);
  auto g = graph::random_digraph(n, 16, 0.2, {1, 20}, rng);
  const Vertex d = rng.below(n);
  const Result before = solve(g, d);

  // Add three random fresh edges, re-solving after each.
  for (int added = 0; added < 3; ++added) {
    Vertex from = rng.below(n);
    Vertex to = rng.below(n);
    if (from == to) continue;
    g.set_min(from, to, static_cast<graph::Weight>(1 + rng.below(20)));
  }
  const Result after = solve(g, d);
  for (Vertex i = 0; i < n; ++i) {
    EXPECT_LE(after.solution.cost[i], before.solution.cost[i]) << "vertex " << i;
  }
}

TEST_P(MetamorphicSeeds, RemovingANonPathEdgeChangesNothing) {
  util::Rng rng(GetParam() ^ 0x3333);
  const std::size_t n = 5 + rng.below(10);
  auto g = graph::random_digraph(n, 16, 0.4, {1, 20}, rng);
  const Vertex d = rng.below(n);
  const Result base = solve(g, d);

  // Mark every edge used by some reported optimal path.
  std::vector<bool> used(n * n, false);
  for (Vertex i = 0; i < n; ++i) {
    if (base.solution.cost[i] == g.infinity()) continue;
    const auto path = graph::extract_path(base.solution, i);
    ASSERT_TRUE(path.has_value());
    for (std::size_t k = 0; k + 1 < path->size(); ++k) {
      used[(*path)[k] * n + (*path)[k + 1]] = true;
    }
  }

  // Deleting an unused edge must not change COSTS if it was not the
  // unique support of some alternative optimum... it cannot: costs are
  // determined by the remaining graph, which still contains all reported
  // optimal paths, and removing an edge can only increase costs.
  for (const auto& e : g.edges()) {
    if (used[e.from * n + e.to]) continue;
    WeightMatrix pruned(g);
    pruned.erase(e.from, e.to);
    const Result repruned = solve(pruned, d);
    EXPECT_EQ(repruned.solution.cost, base.solution.cost)
        << "removed " << e.from << "->" << e.to;
    break;  // one probe per seed keeps the test fast
  }
}

TEST_P(MetamorphicSeeds, SelfTransposeDuality) {
  // Costs toward d in g equal costs FROM d in the transposed graph
  // (computed by running MCP toward each vertex in g^T and reading d's
  // column... cheaper: toward-d in g == toward-d' where the transpose
  // swaps roles — verified through Dijkstra on the transpose).
  util::Rng rng(GetParam() ^ 0x4444);
  const std::size_t n = 4 + rng.below(10);
  const auto g = graph::random_digraph(n, 16, 0.3, {1, 20}, rng);
  const Vertex d = rng.below(n);
  const Result toward = solve(g, d);

  // In g^T, the cost from i to d equals the cost from d to i in g; so
  // solving g^T toward d gives, per source i, the g-cost of d -> i...
  // which we verify against per-destination solves of g.
  const auto gt = g.transposed();
  const Result toward_in_transpose = solve(gt, d);
  for (Vertex i = 0; i < n; ++i) {
    const Result g_from_d_to_i = solve(g, i);
    EXPECT_EQ(toward_in_transpose.solution.cost[i], g_from_d_to_i.solution.cost[d])
        << "vertex " << i;
  }
  (void)toward;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicSeeds, ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace ppa::mcp
