#include "graph/weight_matrix.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ppa::graph {
namespace {

TEST(WeightMatrix, StartsEdgeless) {
  const WeightMatrix g(5, 8);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (Vertex i = 0; i < 5; ++i) {
    for (Vertex j = 0; j < 5; ++j) {
      EXPECT_EQ(g.at(i, j), g.infinity());
      EXPECT_FALSE(g.has_edge(i, j));
    }
  }
}

TEST(WeightMatrix, RejectsEmptyGraph) {
  EXPECT_THROW(WeightMatrix(0, 8), util::ContractError);
}

TEST(WeightMatrix, SetAndGet) {
  WeightMatrix g(3, 8);
  g.set(0, 1, 7);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));  // directed
  EXPECT_EQ(g.at(0, 1), 7u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(WeightMatrix, SetInfinityErases) {
  WeightMatrix g(3, 8);
  g.set(0, 1, 7);
  g.erase(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(WeightMatrix, RejectsOutOfRangeAndUnrepresentable) {
  WeightMatrix g(3, 4);  // infinity = 15
  EXPECT_THROW(g.set(3, 0, 1), util::ContractError);
  EXPECT_THROW(g.set(0, 3, 1), util::ContractError);
  EXPECT_THROW(g.set(0, 1, 16), util::ContractError);
  EXPECT_THROW((void)g.at(0, 5), util::ContractError);
  EXPECT_NO_THROW(g.set(0, 1, 15));  // storing infinity erases — allowed
}

TEST(WeightMatrix, SetMinKeepsBest) {
  WeightMatrix g(3, 8);
  g.set_min(0, 1, 9);
  g.set_min(0, 1, 4);
  g.set_min(0, 1, 7);
  EXPECT_EQ(g.at(0, 1), 4u);
}

TEST(WeightMatrix, EdgesEnumeratesRowMajor) {
  WeightMatrix g(3, 8);
  g.set(2, 0, 5);
  g.set(0, 2, 3);
  g.set(0, 1, 1);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2, 3}));
  EXPECT_EQ(edges[2], (Edge{2, 0, 5}));
}

TEST(WeightMatrix, OutDegreeAndRowView) {
  WeightMatrix g(4, 8);
  g.set(1, 0, 2);
  g.set(1, 3, 2);
  EXPECT_EQ(g.out_degree(1), 2u);
  EXPECT_EQ(g.out_degree(0), 0u);
  const auto row = g.row(1);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], 2u);
  EXPECT_EQ(row[1], g.infinity());
}

TEST(WeightMatrix, TransposeFlipsEveryEdge) {
  WeightMatrix g(3, 8);
  g.set(0, 1, 4);
  g.set(2, 1, 9);
  const WeightMatrix t = g.transposed();
  EXPECT_EQ(t.at(1, 0), 4u);
  EXPECT_EQ(t.at(1, 2), 9u);
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_EQ(t.transposed(), g);  // involution
}

TEST(WeightMatrix, WithBitsWidens) {
  WeightMatrix g(3, 4);
  g.set(0, 1, 14);
  const WeightMatrix wide = g.with_bits(16);
  EXPECT_EQ(wide.field().bits(), 16);
  EXPECT_EQ(wide.at(0, 1), 14u);
  // Infinity entries stay infinity in the new field.
  EXPECT_EQ(wide.at(1, 0), wide.infinity());
}

TEST(WeightMatrix, WithBitsRejectsLossyNarrowing) {
  WeightMatrix g(3, 16);
  g.set(0, 1, 200);
  EXPECT_THROW((void)g.with_bits(4), util::ContractError);
  g.erase(0, 1);
  g.set(0, 1, 3);
  EXPECT_NO_THROW((void)g.with_bits(4));
}

TEST(WeightMatrix, EqualityIsStructural) {
  WeightMatrix a(3, 8);
  WeightMatrix b(3, 8);
  EXPECT_EQ(a, b);
  a.set(0, 1, 1);
  EXPECT_NE(a, b);
  b.set(0, 1, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ppa::graph
