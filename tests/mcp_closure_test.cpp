// Reachability / transitive closure on the PPA vs host-computed ground
// truth, plus the O(1)-per-iteration cost property that distinguishes the
// boolean DP from the min-plus DP.
#include "mcp/closure.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using graph::Vertex;
using graph::WeightMatrix;

TEST(Reachability, HandGraph) {
  WeightMatrix g(5, 8);
  g.set(0, 1, 1);
  g.set(1, 2, 1);
  g.set(3, 4, 1);
  const auto r = solve_reachability(g, 2);
  EXPECT_EQ(r.reachable, (std::vector<bool>{true, true, true, false, false}));
  EXPECT_EQ(r.destination, 2u);
}

TEST(Reachability, SingleVertexAndEdgeless) {
  const auto one = solve_reachability(WeightMatrix(1, 8), 0);
  EXPECT_EQ(one.reachable, std::vector<bool>{true});

  const auto empty = solve_reachability(WeightMatrix(4, 8), 2);
  EXPECT_EQ(empty.reachable, (std::vector<bool>{false, false, true, false}));
  EXPECT_EQ(empty.iterations, 1u);
}

class ReachabilitySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReachabilitySeeds, MatchesHostBfs) {
  util::Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    const std::size_t n = 3 + rng.below(16);
    const Vertex d = rng.below(n);
    const auto g = graph::random_digraph(n, 16, 0.15, {1, 9}, rng);
    const auto machine_result = solve_reachability(g, d);
    const auto host = graph::reachable_to(g, d);
    for (Vertex i = 0; i < n; ++i) {
      EXPECT_EQ(machine_result.reachable[i], host[i]) << "n=" << n << " d=" << d << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilitySeeds, ::testing::Range<std::uint64_t>(1, 6));

TEST(Reachability, PerIterationCostIsConstantInHAndN) {
  // The boolean DP replaces the O(h) bit-serial minimum with ONE wired-OR
  // cycle: per-iteration cost is independent of both h and n.
  const auto per_iteration = [](std::size_t n, int bits) {
    util::Rng rng(7);
    const auto g = graph::directed_ring(n, bits, {1, 3}, rng);
    const auto r = solve_reachability(g, 0);
    EXPECT_EQ(r.iterations, n - 1);  // ring: one vertex settles per round
    return static_cast<double>(r.total_steps.total() - r.init_steps.total()) /
           static_cast<double>(r.iterations);
  };
  const double base = per_iteration(8, 8);
  EXPECT_DOUBLE_EQ(per_iteration(8, 32), base);   // h-independent
  EXPECT_DOUBLE_EQ(per_iteration(24, 16), per_iteration(48, 16));  // n-independent
}

TEST(Reachability, ExactlyOneBusOrPerIteration) {
  util::Rng rng(3);
  const auto g = graph::random_digraph(10, 16, 0.2, {1, 9}, rng);
  const auto r = solve_reachability(g, 4);
  EXPECT_EQ(r.total_steps.count(sim::StepCategory::BusOr), r.iterations);
}

TEST(Reachability, Contracts) {
  const WeightMatrix g(4, 8);
  EXPECT_THROW((void)solve_reachability(g, 4), util::ContractError);
  sim::MachineConfig cfg;
  cfg.n = 5;
  cfg.bits = 8;
  sim::Machine machine(cfg);
  EXPECT_THROW((void)reachability(machine, g, 0), util::ContractError);
}

TEST(TransitiveClosure, MatchesHostForEveryPair) {
  util::Rng rng(11);
  for (int t = 0; t < 4; ++t) {
    const std::size_t n = 4 + rng.below(10);
    const auto g = graph::random_digraph(n, 16, 0.2, {1, 9}, rng);
    const auto tc = transitive_closure(g);
    ASSERT_EQ(tc.n, n);
    for (Vertex d = 0; d < n; ++d) {
      const auto host = graph::reachable_to(g, d);
      for (Vertex i = 0; i < n; ++i) {
        EXPECT_EQ(tc.at(i, d), host[i]) << "i=" << i << " d=" << d;
      }
    }
  }
}

TEST(TransitiveClosure, ReflexiveAndIdempotentShape) {
  util::Rng rng(13);
  const auto g = graph::random_digraph(8, 16, 0.25, {1, 9}, rng);
  const auto tc = transitive_closure(g);
  for (Vertex v = 0; v < 8; ++v) EXPECT_TRUE(tc.at(v, v));
  // Transitivity: i->j and j->k imply i->k.
  for (Vertex i = 0; i < 8; ++i) {
    for (Vertex j = 0; j < 8; ++j) {
      if (!tc.at(i, j)) continue;
      for (Vertex k = 0; k < 8; ++k) {
        if (tc.at(j, k)) {
          EXPECT_TRUE(tc.at(i, k)) << i << "->" << j << "->" << k;
        }
      }
    }
  }
}

TEST(TiledReachability, MatchesDenseOnBothBackendsAndBothSchedules) {
  // The virtualized boolean sweep (array_side < n) must reproduce the
  // dense run's reachable set AND iteration count exactly — per backend,
  // with the active-panel schedule on or off.
  util::Rng rng(23);
  for (int t = 0; t < 4; ++t) {
    const std::size_t n = 9 + rng.below(12);
    const Vertex d = rng.below(n);
    const auto g = graph::random_digraph(n, 16, 0.2, {1, 9}, rng);
    const auto dense = solve_reachability(g, d);
    for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
      for (const bool active : {false, true}) {
        ClosureOptions options;
        options.backend = backend;
        options.array_side = 4;
        options.active_panels = active;
        const auto tiled = solve_reachability(g, d, options);
        EXPECT_EQ(tiled.reachable, dense.reachable)
            << "n=" << n << " d=" << d << " active=" << active;
        EXPECT_EQ(tiled.iterations, dense.iterations)
            << "n=" << n << " d=" << d << " active=" << active;
      }
    }
  }
}

TEST(TiledReachability, PanelIoLedgerClosesAgainstTheDenseFormula) {
  // Dense schedule: exactly I * blocks^2 * (p+2) PanelIo beats. Active
  // schedule: strictly fewer charged on a localized graph, but charged +
  // panel_io_saved must equal the formula beat for beat, and visited +
  // skipped must cover every panel of every sweep.
  util::Rng rng(5);
  const std::size_t n = 32;
  const std::size_t p = 8;
  const auto g = graph::directed_ring(n, 16, {1, 3}, rng);
  const std::uint64_t blocks = n / p;

  ClosureOptions options;
  options.array_side = p;
  options.active_panels = false;
  const auto dense = solve_reachability(g, 0, options);
  const std::uint64_t formula =
      static_cast<std::uint64_t>(dense.iterations) * blocks * blocks * (p + 2);
  EXPECT_EQ(dense.total_steps.count(sim::StepCategory::PanelIo), formula);
  EXPECT_EQ(dense.panels_visited,
            static_cast<std::uint64_t>(dense.iterations) * blocks * blocks);
  EXPECT_EQ(dense.panels_skipped, 0u);
  EXPECT_EQ(dense.panel_io_saved, 0u);

  options.active_panels = true;
  const auto active = solve_reachability(g, 0, options);
  EXPECT_EQ(active.reachable, dense.reachable);
  EXPECT_EQ(active.iterations, dense.iterations);
  const std::uint64_t charged = active.total_steps.count(sim::StepCategory::PanelIo);
  EXPECT_LT(charged, formula) << "ring reach growth is localized; panels must skip";
  EXPECT_EQ(charged + active.panel_io_saved, formula);
  EXPECT_EQ(active.panels_visited + active.panels_skipped,
            static_cast<std::uint64_t>(active.iterations) * blocks * blocks);
  EXPECT_GT(active.panels_skipped, 0u);
}

TEST(TiledTransitiveClosure, MatchesDenseClosure) {
  util::Rng rng(29);
  const std::size_t n = 13;
  const auto g = graph::random_digraph(n, 16, 0.2, {1, 9}, rng);
  const auto dense = transitive_closure(g);
  for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    for (const bool active : {false, true}) {
      ClosureOptions options;
      options.backend = backend;
      options.array_side = 4;
      options.active_panels = active;
      const auto tiled = transitive_closure(g, options);
      ASSERT_EQ(tiled.n, dense.n) << "active=" << active;
      EXPECT_EQ(tiled.closed, dense.closed) << "active=" << active;
      EXPECT_EQ(tiled.total_iterations, dense.total_iterations) << "active=" << active;
    }
  }
}

TEST(TransitiveClosure, StronglyConnectedGraphIsAllOnes) {
  util::Rng rng(17);
  const auto g = graph::directed_ring(7, 16, {1, 3}, rng);
  const auto tc = transitive_closure(g);
  for (Vertex i = 0; i < 7; ++i) {
    for (Vertex j = 0; j < 7; ++j) EXPECT_TRUE(tc.at(i, j));
  }
}

}  // namespace
}  // namespace ppa::mcp
