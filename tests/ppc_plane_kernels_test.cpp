// Differential fuzz of every compiled SIMD kernel arm against the
// portable scalar reference in ppc/plane_ops.hpp (and sim::pack_words for
// the pack kernel), plus determinism pins for the PlaneAlu thread-pool
// chunking. Geometries deliberately include ragged tails (n not a
// multiple of 64, plane_words not a multiple of the vector width).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "ppc/plane_kernels.hpp"
#include "ppc/plane_ops.hpp"
#include "sim/bit_planes.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ppa {
namespace {

using ppc::plane_kernels::PlaneAlu;
using ppc::plane_kernels::PlaneKernels;
using ppc::plane_kernels::SimdVariant;
using sim::PlaneGeometry;
using sim::PlaneWord;

std::vector<const PlaneKernels*> all_arms() {
  std::vector<const PlaneKernels*> arms{&ppc::plane_kernels::scalar_kernels()};
  if (const PlaneKernels* t = ppc::plane_kernels::avx2_kernels()) arms.push_back(t);
  if (const PlaneKernels* t = ppc::plane_kernels::avx512_kernels()) arms.push_back(t);
  return arms;
}

/// Random plane stack with canonically-zero pad bits past column n-1.
std::vector<PlaneWord> random_planes(util::Rng& rng, const PlaneGeometry& g, int planes) {
  const std::size_t pw = g.plane_words();
  std::vector<PlaneWord> out(pw * static_cast<std::size_t>(planes));
  for (int j = 0; j < planes; ++j) {
    for (std::size_t r = 0; r < g.n; ++r) {
      for (std::size_t w = 0; w < g.row_words; ++w) {
        out[static_cast<std::size_t>(j) * pw + r * g.row_words + w] =
            rng.next() & g.word_mask(w);
      }
    }
  }
  return out;
}

std::vector<PlaneWord> full_plane(const PlaneGeometry& g) {
  std::vector<PlaneWord> full(g.plane_words());
  sim::plane_fill_full(g, full.data());
  return full;
}

const std::size_t kSides[] = {1, 5, 63, 64, 65, 96, 128, 130};

TEST(PlaneKernels, ScalarTableIsAlwaysPresent) {
  const PlaneKernels& t = ppc::plane_kernels::scalar_kernels();
  EXPECT_EQ(t.variant, SimdVariant::Scalar);
  EXPECT_NE(t.op_and, nullptr);
  EXPECT_NE(t.add_sat, nullptr);
  EXPECT_NE(t.pack_words, nullptr);
}

TEST(PlaneKernels, ActiveVariantIsOneOfTheArms) {
  const char* name = ppc::plane_kernels::variant_name(ppc::plane_kernels::active_variant());
  EXPECT_TRUE(name == std::string("scalar") || name == std::string("avx2") ||
              name == std::string("avx512"));
  EXPECT_EQ(ppc::plane_kernels::active().variant, ppc::plane_kernels::active_variant());
}

TEST(PlaneKernels, ElementwiseMatchScalarReference) {
  util::Rng rng(0xE7'0001);
  for (const PlaneKernels* arm : all_arms()) {
    for (const std::size_t n : kSides) {
      const PlaneGeometry g{n};
      const std::size_t pw = g.plane_words();
      const auto a = random_planes(rng, g, 1);
      const auto b = random_planes(rng, g, 1);
      std::vector<PlaneWord> want(pw), got(pw);

      ppc::plane_ops::op_and(a.data(), b.data(), want.data(), pw);
      arm->op_and(a.data(), b.data(), got.data(), pw);
      EXPECT_EQ(want, got) << ppc::plane_kernels::variant_name(arm->variant) << " and n=" << n;

      ppc::plane_ops::op_or(a.data(), b.data(), want.data(), pw);
      arm->op_or(a.data(), b.data(), got.data(), pw);
      EXPECT_EQ(want, got) << ppc::plane_kernels::variant_name(arm->variant) << " or n=" << n;

      ppc::plane_ops::op_xor(a.data(), b.data(), want.data(), pw);
      arm->op_xor(a.data(), b.data(), got.data(), pw);
      EXPECT_EQ(want, got) << ppc::plane_kernels::variant_name(arm->variant) << " xor n=" << n;

      ppc::plane_ops::op_andnot(a.data(), b.data(), want.data(), pw);
      arm->op_andnot(a.data(), b.data(), got.data(), pw);
      EXPECT_EQ(want, got) << ppc::plane_kernels::variant_name(arm->variant)
                           << " andnot n=" << n;

      ppc::plane_ops::op_copy(a.data(), want.data(), pw);
      arm->op_copy(a.data(), got.data(), pw);
      EXPECT_EQ(want, got);

      ppc::plane_ops::op_zero(want.data(), pw);
      arm->op_zero(got.data(), pw);
      EXPECT_EQ(want, got);

      const auto mask = random_planes(rng, g, 1);
      auto want_dst = b;
      auto got_dst = b;
      ppc::plane_ops::masked_assign(mask.data(), a.data(), want_dst.data(), pw);
      arm->masked_assign(mask.data(), a.data(), got_dst.data(), pw);
      EXPECT_EQ(want_dst, got_dst) << ppc::plane_kernels::variant_name(arm->variant)
                                   << " masked_assign n=" << n;

      ppc::plane_ops::blend(mask.data(), a.data(), b.data(), want.data(), pw);
      arm->blend(mask.data(), a.data(), b.data(), got.data(), pw);
      EXPECT_EQ(want, got) << ppc::plane_kernels::variant_name(arm->variant) << " blend n=" << n;

      EXPECT_EQ(ppc::plane_ops::all_zero(a.data(), pw), arm->all_zero(a.data(), pw));
      std::vector<PlaneWord> zeros(pw, 0);
      EXPECT_TRUE(arm->all_zero(zeros.data(), pw));
      EXPECT_EQ(ppc::plane_ops::equal(a.data(), b.data(), pw),
                arm->equal(a.data(), b.data(), pw));
      EXPECT_TRUE(arm->equal(a.data(), a.data(), pw));
    }
  }
}

TEST(PlaneKernels, MultiPlaneMatchScalarReference) {
  util::Rng rng(0xE7'0002);
  for (const PlaneKernels* arm : all_arms()) {
    for (const std::size_t n : kSides) {
      for (const int h : {1, 2, 7, 16, 32}) {
        const PlaneGeometry g{n};
        const std::size_t pw = g.plane_words();
        const auto full = full_plane(g);
        const auto a = random_planes(rng, g, h);
        const auto b = random_planes(rng, g, h);
        const std::size_t total = pw * static_cast<std::size_t>(h);

        std::vector<PlaneWord> want(total), got(total), carry(pw), ones(pw);
        ppc::plane_ops::add_sat(a.data(), b.data(), h, pw, full.data(), carry.data(),
                                ones.data(), want.data());
        arm->add_sat(a.data(), b.data(), h, pw, full.data(), got.data(), 0, pw);
        EXPECT_EQ(want, got) << ppc::plane_kernels::variant_name(arm->variant)
                             << " add_sat n=" << n << " h=" << h;

        std::vector<PlaneWord> want_lt(pw), want_eq(pw), got_lt(pw), got_eq(pw);
        ppc::plane_ops::compare_lt(a.data(), b.data(), h, pw, full.data(), want_lt.data(),
                                   want_eq.data());
        arm->compare_lt(a.data(), b.data(), h, pw, full.data(), got_lt.data(),
                        got_eq.data(), 0, pw);
        EXPECT_EQ(want_lt, got_lt) << ppc::plane_kernels::variant_name(arm->variant)
                                   << " compare_lt n=" << n << " h=" << h;
        EXPECT_EQ(want_eq, got_eq) << ppc::plane_kernels::variant_name(arm->variant)
                                   << " compare_lt(eq) n=" << n << " h=" << h;

        ppc::plane_ops::compare_eq(a.data(), b.data(), h, pw, full.data(), want_eq.data());
        arm->compare_eq(a.data(), b.data(), h, pw, full.data(), got_eq.data(), 0, pw);
        EXPECT_EQ(want_eq, got_eq) << ppc::plane_kernels::variant_name(arm->variant)
                                   << " compare_eq n=" << n << " h=" << h;

        // Split the word range at every boundary in a coarse grid and check
        // the chunked result is identical — the thread-pool contract.
        for (const std::size_t cut : {std::size_t{0}, pw / 3, pw / 2, pw}) {
          std::vector<PlaneWord> chunked(total, 0xDEADBEEFu);
          arm->add_sat(a.data(), b.data(), h, pw, full.data(), chunked.data(), 0, cut);
          arm->add_sat(a.data(), b.data(), h, pw, full.data(), chunked.data(), cut, pw);
          EXPECT_EQ(want, chunked) << "add_sat split at " << cut << " n=" << n << " h=" << h;
        }
      }
    }
  }
}

TEST(PlaneKernels, AddSatClampsToAllOnes) {
  // h=8: 250+10 carries out; 55+200 lands exactly on 2^8-1 (infinity);
  // 100+100 and 7+200 stay below the clamp.
  const PlaneGeometry g{4};
  const std::size_t pw = g.plane_words();
  const int h = 8;
  const auto full = full_plane(g);
  std::vector<sim::Word> av(g.n * g.n, 0), bv(g.n * g.n, 0);
  av[0] = 7;
  bv[0] = 200;
  av[1] = 250;
  bv[1] = 10;
  av[2] = 100;
  bv[2] = 100;
  av[3] = 55;
  bv[3] = 200;
  std::vector<PlaneWord> a(pw * h), b(pw * h);
  sim::pack_words(g, av, h, a.data());
  sim::pack_words(g, bv, h, b.data());
  for (const PlaneKernels* arm : all_arms()) {
    std::vector<PlaneWord> out(pw * h);
    arm->add_sat(a.data(), b.data(), h, pw, full.data(), out.data(), 0, pw);
    std::vector<sim::Word> res(g.n * g.n);
    sim::unpack_words(g, out.data(), h, res);
    EXPECT_EQ(res[0], 207u);
    EXPECT_EQ(res[1], 255u);
    EXPECT_EQ(res[2], 200u);
    EXPECT_EQ(res[3], 255u);
  }
}

TEST(PlaneKernels, PackWordsMatchesSimOracle) {
  util::Rng rng(0xE7'0003);
  for (const PlaneKernels* arm : all_arms()) {
    for (const std::size_t n : kSides) {
      for (const int planes : {1, 3, 16, 32}) {
        const PlaneGeometry g{n};
        const std::size_t pw = g.plane_words();
        std::vector<sim::Word> src(g.n * g.n);
        for (auto& v : src) {
          v = static_cast<sim::Word>(rng.next() &
                                     ((planes < 32) ? ((1u << planes) - 1u) : ~0u));
        }
        std::vector<PlaneWord> want(pw * static_cast<std::size_t>(planes));
        sim::pack_words(g, src, planes, want.data());
        std::vector<PlaneWord> got(pw * static_cast<std::size_t>(planes), 0xABABABABu);
        arm->pack_words(g, src.data(), planes, got.data(), 0, g.n);
        EXPECT_EQ(want, got) << ppc::plane_kernels::variant_name(arm->variant)
                             << " pack n=" << n << " planes=" << planes;

        // Row-range splits must compose to the same result.
        std::vector<PlaneWord> split(pw * static_cast<std::size_t>(planes), 0x5555u);
        const std::size_t mid = g.n / 2;
        arm->pack_words(g, src.data(), planes, split.data(), mid, g.n);
        arm->pack_words(g, src.data(), planes, split.data(), 0, mid);
        EXPECT_EQ(want, split);
      }
    }
  }
}

TEST(PlaneKernelsAlu, PooledSweepsAreBitIdenticalAcrossThreadCounts) {
  util::Rng rng(0xE7'0004);
  const PlaneGeometry g{130};
  const std::size_t pw = g.plane_words();
  const int h = 16;
  const auto full = full_plane(g);
  const auto a = random_planes(rng, g, h);
  const auto b = random_planes(rng, g, h);
  std::vector<sim::Word> src(g.n * g.n);
  for (auto& v : src) v = static_cast<sim::Word>(rng.next() & 0xFFFFu);

  const PlaneKernels& k = ppc::plane_kernels::active();
  PlaneAlu inline_alu(k, nullptr, static_cast<std::size_t>(-1));
  std::vector<PlaneWord> ref_add(pw * h), ref_lt(pw), ref_eq(pw),
      ref_pack(pw * h);
  inline_alu.add_sat(a.data(), b.data(), h, pw, full.data(), ref_add.data());
  inline_alu.compare_lt(a.data(), b.data(), h, pw, full.data(), ref_lt.data(),
                        ref_eq.data());
  inline_alu.pack_words(g, src.data(), h, ref_pack.data());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    util::ThreadPool pool(workers);
    PlaneAlu alu(k, &pool, 1);  // min_words=1: always chunk
    std::vector<PlaneWord> add(pw * h, 1), lt(pw, 1), eq(pw, 1), pack(pw * h, 1);
    alu.add_sat(a.data(), b.data(), h, pw, full.data(), add.data());
    alu.compare_lt(a.data(), b.data(), h, pw, full.data(), lt.data(), eq.data());
    alu.pack_words(g, src.data(), h, pack.data());
    EXPECT_EQ(ref_add, add) << "workers=" << workers;
    EXPECT_EQ(ref_lt, lt) << "workers=" << workers;
    EXPECT_EQ(ref_eq, eq) << "workers=" << workers;
    EXPECT_EQ(ref_pack, pack) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace ppa
