// The taint shadow cycle under injected hardware faults.
//
// When a partially-driven Pint rides a bus cycle, its driven flags ride a
// shadow cycle that must see exactly the switches and PEs the data cycle
// saw — including per-axis fault masks (stuck-open / stuck-closed switch
// boxes) and dead PEs. A shadow computed over the program's intended
// switches instead would mark values driven that physically came from a
// tainted driver: the stuck-closed scenario below is the regression pin
// (docs/robustness.md).
#include <gtest/gtest.h>

#include "ppc/primitives.hpp"
#include "sim/fault_model.hpp"
#include "util/rng.hpp"

namespace ppa::ppc {
namespace {

using sim::Direction;

sim::MachineConfig config_of(std::size_t n, int bits, sim::ExecBackend backend,
                             sim::BusTopology topology = sim::BusTopology::Linear) {
  sim::MachineConfig c;
  c.n = n;
  c.bits = bits;
  c.backend = backend;
  c.topology = topology;
  return c;
}

/// Builds the scenario on one machine: a source tainted exactly at column
/// 0 (its drivers read their own floating stub on the linear bus), then an
/// eastward re-broadcast with program drivers at columns 0 and 2.
Pint tainted_rebroadcast(Context& ctx) {
  const Pbool open_col0 = (col_of(ctx) == Word{0});
  const Pint src = broadcast(Pint(ctx, 7), Direction::East, open_col0);
  // src is driven at columns 1..3 and tainted at column 0 in every row.
  const Pbool open_02 = (col_of(ctx) == Word{0}) | (col_of(ctx) == Word{2});
  return broadcast(src, Direction::East, open_02);
}

TEST(TaintFaults, ShadowSeesStuckClosedSwitches) {
  // Row 1's switch at column 2 is stuck Short, so the clean column-2
  // driver is suppressed there and column 3 physically receives the
  // TAINTED column-0 value. A shadow over the program switches would
  // instead credit column 3 with the clean driver and leave it driven.
  for (const sim::ExecBackend backend :
       {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    sim::Machine m(config_of(4, 8, backend));
    m.inject_faults(sim::FaultModel::parse("stuck-closed:row,1,2", 4, 8));
    Context ctx(m);
    const Pint got = tainted_rebroadcast(ctx);
    ASSERT_FALSE(got.fully_driven());
    const Pbool ok = driven_mask(got);
    for (std::size_t r = 0; r < 4; ++r) {
      // Columns 0 and 2 read their own floating stubs; column 1 receives
      // the tainted column-0 payload everywhere.
      EXPECT_FALSE(ok.at(r, 0)) << "backend " << static_cast<int>(backend) << " row " << r;
      EXPECT_FALSE(ok.at(r, 1)) << "backend " << static_cast<int>(backend) << " row " << r;
      EXPECT_FALSE(ok.at(r, 2)) << "backend " << static_cast<int>(backend) << " row " << r;
      if (r == 1) {
        EXPECT_FALSE(ok.at(r, 3)) << "stuck-closed row must propagate the taint";
      } else {
        EXPECT_TRUE(ok.at(r, 3)) << "healthy rows keep the clean column-2 driver";
        EXPECT_EQ(got.at(r, 3), 7u);
      }
    }
  }
}

TEST(TaintFaults, ShadowSilencesDeadDrivers) {
  // The clean column-2 driver of row 2 is dead: its segment floats in the
  // data cycle, and the shadow must float it too (no taint verdict at all,
  // rather than a stale program-switch one).
  for (const sim::ExecBackend backend :
       {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    sim::Machine m(config_of(4, 8, backend));
    m.inject_faults(sim::FaultModel::parse("dead:2,2", 4, 8));
    Context ctx(m);
    const Pint got = tainted_rebroadcast(ctx);
    const Pbool ok = driven_mask(got);
    EXPECT_FALSE(ok.at(2, 3)) << "a dead driver's segment floats";
    EXPECT_TRUE(ok.at(0, 3));
    EXPECT_TRUE(ok.at(3, 3));
  }
}

TEST(TaintFaults, WordAndPlaneBackendsAgreeUnderPerAxisFaults) {
  // Engine parity: the word and bit-plane shadow paths must produce the
  // same driven mask and the same values at driven PEs for a mix of
  // row-axis and column-axis faults.
  const char* specs[] = {
      "",
      "stuck-open:row,1,1",
      "stuck-closed:row,2,2",
      "dead:1,2",
      "stuck-open:col,1,2;stuck-closed:row,3,2;dead:0,1",
  };
  for (const char* spec : specs) {
    sim::Machine word(config_of(4, 8, sim::ExecBackend::Words));
    sim::Machine plane(config_of(4, 8, sim::ExecBackend::BitPlane));
    if (*spec != '\0') {
      word.inject_faults(sim::FaultModel::parse(spec, 4, 8));
      plane.inject_faults(sim::FaultModel::parse(spec, 4, 8));
    }
    Context wctx(word);
    Context pctx(plane);
    const Pint wgot = tainted_rebroadcast(wctx);
    const Pint pgot = tainted_rebroadcast(pctx);
    const Pbool wok = driven_mask(wgot);
    const Pbool pok = driven_mask(pgot);
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        ASSERT_EQ(wok.at(r, c), pok.at(r, c)) << spec << " pe (" << r << "," << c << ")";
        if (wok.at(r, c)) {
          ASSERT_EQ(wgot.at(r, c), pgot.at(r, c))
              << spec << " pe (" << r << "," << c << ")";
        }
      }
    }
    EXPECT_EQ(word.steps().total(), plane.steps().total()) << spec;
  }
}

TEST(TaintFaults, ShadowCycleChargesNoStep) {
  // The taint ride is free: broadcasting a partially-driven source costs
  // exactly the same SIMD steps as broadcasting a fully-driven one.
  sim::Machine tainted_m(config_of(4, 8, sim::ExecBackend::Words));
  tainted_m.inject_faults(sim::FaultModel::parse("stuck-closed:row,1,2", 4, 8));
  Context tainted_ctx(tainted_m);
  (void)tainted_rebroadcast(tainted_ctx);

  sim::Machine clean_m(config_of(4, 8, sim::ExecBackend::Words));
  clean_m.inject_faults(sim::FaultModel::parse("stuck-closed:row,1,2", 4, 8));
  Context clean_ctx(clean_m);
  const Pbool open_col0 = (col_of(clean_ctx) == Word{0});
  (void)broadcast(Pint(clean_ctx, 7), Direction::East, open_col0);
  const Pbool open_02 =
      (col_of(clean_ctx) == Word{0}) | (col_of(clean_ctx) == Word{2});
  (void)broadcast(Pint(clean_ctx, 7), Direction::East, open_02);  // fully driven

  EXPECT_EQ(tainted_m.steps().count(sim::StepCategory::BusBroadcast),
            clean_m.steps().count(sim::StepCategory::BusBroadcast));
}

}  // namespace
}  // namespace ppa::ppc
