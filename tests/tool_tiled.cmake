# End-to-end test of the --array-side flag: a tiled solve (P < n) must
# write a byte-identical solution file to the full-array run, pass the
# host verifier, attribute its virtualization overhead to the panel_io
# step category, and ride through allpairs and the robustness flags.
# Invoked by ctest with -DTOOL=<path to the binary> -DWORKDIR=<scratch>.
if(NOT DEFINED TOOL OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "TOOL and WORKDIR must be defined")
endif()

set(graph_file "${WORKDIR}/tool_tiled_graph.txt")
set(full_file "${WORKDIR}/tool_tiled_full.txt")
set(tiled_file "${WORKDIR}/tool_tiled_tiled.txt")

function(run_tool)
  execute_process(COMMAND ${TOOL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ppa_mcp ${ARGN} failed (rc=${rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

# n = 13 with P = 4 exercises a non-divisible split (ceil(13/4) = 4 panels
# per axis, the last one padded).
run_tool(gen --family reachable --n 13 --seed 21 --dest 5 --out ${graph_file})

run_tool(solve --graph ${graph_file} --dest 5 --out ${full_file})
if(last_output MATCHES "panel_io")
  message(FATAL_ERROR "full-array solve charged panel_io: ${last_output}")
endif()

foreach(backend word bitplane)
  run_tool(solve --graph ${graph_file} --dest 5 --array-side 4
           --backend ${backend} --verify --out ${tiled_file})
  if(NOT last_output MATCHES "panel_io")
    message(FATAL_ERROR
            "tiled solve (${backend}) reported no panel_io steps: ${last_output}")
  endif()
  if(NOT last_output MATCHES "outcome=verified")
    message(FATAL_ERROR "tiled solve (${backend}) not verified: ${last_output}")
  endif()
  # Byte-identical solution file: virtualization must not change results.
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${full_file} ${tiled_file}
                  RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "tiled solution (${backend}) differs from full-array solution")
  endif()
  run_tool(verify --graph ${graph_file} --solution ${tiled_file})
  if(NOT last_output MATCHES "OK")
    message(FATAL_ERROR "verify rejected the tiled solution (${backend}): ${last_output}")
  endif()
endforeach()

# Tiled metrics export: the ppa.metrics.v1 document must carry the panel
# bookkeeping (solver.panels counter, steps.panel_io).
set(metrics_file "${WORKDIR}/tool_tiled_metrics.json")
run_tool(solve --graph ${graph_file} --dest 5 --array-side 4
         --metrics-out ${metrics_file} --out ${tiled_file})
file(READ ${metrics_file} metrics_text)
if(NOT metrics_text MATCHES "solver.panels")
  message(FATAL_ERROR "tiled metrics dump lacks solver.panels: ${metrics_text}")
endif()
if(NOT metrics_text MATCHES "steps.panel_io")
  message(FATAL_ERROR "tiled metrics dump lacks steps.panel_io: ${metrics_text}")
endif()

# Active-panel scheduling (the default) vs --active-panels=off: the dense
# schedule must produce a byte-identical solution file, and the off run's
# metrics must NOT carry the skip counters (they only exist when active).
set(dense_file "${WORKDIR}/tool_tiled_dense.txt")
set(dense_metrics "${WORKDIR}/tool_tiled_dense_metrics.json")
run_tool(solve --graph ${graph_file} --dest 5 --array-side 4
         --active-panels off --metrics-out ${dense_metrics} --out ${dense_file})
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${tiled_file} ${dense_file}
                RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "--active-panels=off solution differs from the default schedule")
endif()
file(READ ${dense_metrics} dense_metrics_text)
if(dense_metrics_text MATCHES "solver.panels_skipped")
  message(FATAL_ERROR
          "dense-schedule metrics carry solver.panels_skipped: ${dense_metrics_text}")
endif()
if(NOT dense_metrics_text MATCHES "\"active_panels\":0")
  message(FATAL_ERROR
          "dense-schedule metrics lack run.active_panels = 0: ${dense_metrics_text}")
endif()
if(NOT metrics_text MATCHES "\"active_panels\":1")
  message(FATAL_ERROR
          "active-schedule metrics lack run.active_panels = 1: ${metrics_text}")
endif()

# Generators for the sparse families ride the same gen subcommand.
set(sparse_file "${WORKDIR}/tool_tiled_sparse.txt")
run_tool(gen --family ring-of-cliques --n 16 --clique-size 4 --seed 9
         --out ${sparse_file})
run_tool(solve --graph ${sparse_file} --dest 0 --array-side 4 --verify
         --out ${dense_file})
if(NOT last_output MATCHES "outcome=verified")
  message(FATAL_ERROR "ring-of-cliques tiled solve not verified: ${last_output}")
endif()
run_tool(gen --family power-law --n 32 --attach 2 --back-prob 0.1 --seed 9
         --out ${sparse_file})
run_tool(solve --graph ${sparse_file} --dest 0 --array-side 4 --verify
         --out ${dense_file})
if(NOT last_output MATCHES "outcome=verified")
  message(FATAL_ERROR "power-law tiled solve not verified: ${last_output}")
endif()

# Tiled under the robustness machinery: a fault on the 4x4 PHYSICAL array
# plus retry must still converge to a verified run (exit 0).
run_tool(solve --graph ${graph_file} --dest 5 --array-side 4
         --faults "dead:1,2" --verify --max-retries 2 --out ${tiled_file})
if(NOT last_output MATCHES "outcome=verified")
  message(FATAL_ERROR "tiled faulty solve did not recover: ${last_output}")
endif()

# allpairs honors --array-side; panel_io shows in the batch step summary.
run_tool(allpairs --graph ${graph_file} --array-side 4)
if(NOT last_output MATCHES "panel_io")
  message(FATAL_ERROR "tiled allpairs reported no panel_io: ${last_output}")
endif()

# --array-side is a ppa-only flag: baseline models must reject it.
execute_process(COMMAND ${TOOL} solve --graph ${graph_file} --dest 5
                --model mesh --array-side 4 --out ${tiled_file}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "solve accepted --array-side with --model=mesh")
endif()

# ...and so is --active-panels (the schedule only exists on the PPA).
execute_process(COMMAND ${TOOL} solve --graph ${graph_file} --dest 5
                --model mesh --active-panels off --out ${tiled_file}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "solve accepted --active-panels with --model=mesh")
endif()

file(REMOVE ${graph_file} ${full_file} ${tiled_file} ${metrics_file}
     ${dense_file} ${dense_metrics} ${sparse_file})
message(STATUS "tool tiled round trip OK")
