// Fault-injection acceptance fuzz for the robustness layer.
//
// Over 300 seeded fault scenarios (every fault class, n in {8, 16, 32},
// both execution backends) the contract is: a run is either VERIFIED — and
// then its solution must equal Dijkstra's exactly — or it is reported as a
// non-Verified outcome carrying at least one structured FaultEvent. No
// silently wrong row may ever escape. With retries enabled the fault-free
// word-backend oracle must recover every scenario to Verified. The two
// backends must also stay bit-identical under IDENTICAL faults: same
// solution, same outcome, same step counters, same fault-event log.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/mcp.hpp"
#include "sim/fault_model.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using sim::FaultKind;
using sim::FaultModel;

enum class FaultClass { Dead, StuckOpen, StuckClosed, StuckBit, Mixed };

const char* name_of(FaultClass c) {
  switch (c) {
    case FaultClass::Dead: return "dead";
    case FaultClass::StuckOpen: return "stuck-open";
    case FaultClass::StuckClosed: return "stuck-closed";
    case FaultClass::StuckBit: return "stuck-bit";
    case FaultClass::Mixed: return "mixed";
  }
  return "?";
}

/// One or two defects of the given class at seeded locations.
FaultModel model_for(FaultClass c, std::size_t n, int bits, util::Rng& rng) {
  if (c == FaultClass::Mixed) return FaultModel::random(n, bits, rng.next(), 4);
  FaultModel m;
  const std::size_t count = 1 + rng.below(2);
  for (std::size_t k = 0; k < count; ++k) {
    sim::Fault f;
    f.axis = rng.below(2) == 0 ? sim::Axis::Row : sim::Axis::Column;
    f.row = rng.below(n);
    f.col = rng.below(n);
    switch (c) {
      case FaultClass::Dead: f.kind = FaultKind::DeadPe; break;
      case FaultClass::StuckOpen: f.kind = FaultKind::StuckOpen; break;
      case FaultClass::StuckClosed: f.kind = FaultKind::StuckClosed; break;
      case FaultClass::StuckBit:
        f.kind = FaultKind::StuckBit;
        f.bit = static_cast<int>(rng.below(static_cast<std::size_t>(bits)));
        f.stuck_value = rng.below(2) == 1;
        break;
      case FaultClass::Mixed: break;
    }
    m.add(f);
  }
  return m;
}

/// The acceptance predicate: Verified implies exactly correct; anything
/// else implies at least one structured fault event.
void expect_never_silently_wrong(const graph::WeightMatrix& g, const Result& r,
                                 const std::string& label) {
  if (r.outcome == SolveOutcome::Verified) {
    test::expect_solves(g, r.solution, label + " (verified must be exact)");
  } else {
    EXPECT_NE(r.outcome, SolveOutcome::Unchecked) << label;
    EXPECT_FALSE(r.fault_events.empty())
        << label << ": non-verified outcome " << name_of(r.outcome)
        << " carries no fault event";
  }
}

TEST(McpFaultInjection, FuzzAllClassesSizesAndBackends) {
  const FaultClass classes[] = {FaultClass::Dead, FaultClass::StuckOpen,
                                FaultClass::StuckClosed, FaultClass::StuckBit,
                                FaultClass::Mixed};
  const std::size_t sizes[] = {8, 16, 32};
  std::size_t cases = 0;
  std::size_t recovered = 0;
  for (const FaultClass fault_class : classes) {
    for (const std::size_t n : sizes) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        util::Rng rng(seed * 1000 + n * 10 + static_cast<std::uint64_t>(fault_class));
        const int bits = 8 + static_cast<int>(rng.below(2)) * 4;  // 8 or 12
        const auto g = graph::random_reachable_digraph(
            n, bits, 0.2, {1, 20}, 0, rng);
        const graph::Vertex dest = static_cast<graph::Vertex>(rng.below(n));
        const FaultModel model = model_for(fault_class, n, bits, rng);
        std::ostringstream label;
        label << "class=" << name_of(fault_class) << " n=" << n << " seed=" << seed
              << " dest=" << dest;

        Options base;
        base.verify = true;
        base.faults = model;

        // --- no-retry runs, both backends: never silently wrong, and the
        // two backends are bit-identical under identical faults.
        Options plain = base;
        plain.backend = sim::ExecBackend::Words;
        const Result word = solve(g, dest, plain);
        plain.backend = sim::ExecBackend::BitPlane;
        const Result plane = solve(g, dest, plain);
        expect_never_silently_wrong(g, word, label.str() + " word");
        expect_never_silently_wrong(g, plane, label.str() + " bitplane");
        cases += 2;
        ASSERT_EQ(plane.solution.cost, word.solution.cost) << label.str();
        ASSERT_EQ(plane.solution.next, word.solution.next) << label.str();
        ASSERT_EQ(plane.outcome, word.outcome) << label.str();
        ASSERT_EQ(plane.iterations, word.iterations) << label.str();
        ASSERT_TRUE(plane.total_steps == word.total_steps)
            << label.str() << ": step counters diverged under faults (word "
            << word.total_steps.summary() << " vs bitplane "
            << plane.total_steps.summary() << ")";
        ASSERT_EQ(plane.fault_events.size(), word.fault_events.size()) << label.str();
        for (std::size_t i = 0; i < word.fault_events.size(); ++i) {
          ASSERT_EQ(plane.fault_events[i], word.fault_events[i])
              << label.str() << " event " << i;
        }

        // --- retry runs, both backends: the fault-free oracle must
        // recover every scenario to an exact Verified solution.
        for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
          Options retry = base;
          retry.backend = backend;
          retry.max_retries = 2;
          const Result r = solve(g, dest, retry);
          ++cases;
          ASSERT_EQ(r.outcome, SolveOutcome::Verified)
              << label.str() << ": not recovered after " << r.attempts << " attempts";
          test::expect_solves(g, r.solution, label.str() + " (after retry)");
          if (r.attempts > 1) {
            ++recovered;
            EXPECT_FALSE(r.fault_events.empty())
                << label.str() << ": retried without recording why";
          }
        }
      }
    }
  }
  // The acceptance floor: >= 200 fuzz cases, and the faults actually bit —
  // a healthy fraction of runs needed the oracle.
  EXPECT_GE(cases, 200u);
  EXPECT_GT(recovered, 20u) << "faults almost never perturbed a run; the "
                               "injection sites are too weak to test recovery";
}

TEST(McpFaultInjection, AllPairsRecoversAndReportsPerDestination) {
  util::Rng rng(77);
  const std::size_t n = 12;
  const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
  AllPairsOptions options;
  options.workers = 3;
  options.mcp.verify = true;
  options.mcp.max_retries = 2;
  options.mcp.faults = FaultModel::parse("dead:2,5;stuck-bit:row,4,1,1", n, 8);
  const AllPairsResult faulty = all_pairs(g, options);
  ASSERT_EQ(faulty.outcomes.size(), n);
  EXPECT_EQ(faulty.failed_destinations(), 0u);
  std::size_t retried = 0;
  for (std::size_t d = 0; d < n; ++d) {
    EXPECT_EQ(faulty.outcomes[d], SolveOutcome::Verified) << "destination " << d;
    if (faulty.attempts[d] > 1) ++retried;
  }
  EXPECT_GT(retried, 0u);

  // The recovered matrix equals the fault-free one entry for entry.
  const AllPairsResult clean = all_pairs(g, Options{});
  EXPECT_EQ(faulty.dist, clean.dist);
  EXPECT_EQ(faulty.next, clean.next);
}

TEST(McpFaultInjection, AllPairsDegradesPerDestinationWithoutRetries) {
  util::Rng rng(78);
  const std::size_t n = 10;
  const auto g = graph::random_reachable_digraph(n, 8, 0.3, {1, 20}, 0, rng);
  AllPairsOptions options;
  options.mcp.verify = true;
  options.mcp.faults = FaultModel::parse("dead:3,3;dead:0,7", n, 8);
  const AllPairsResult r = all_pairs(g, options);
  // The batch completes despite failures; every non-Verified destination
  // is visible in the outcome vector and the merged event log is nonempty.
  ASSERT_EQ(r.outcomes.size(), n);
  std::size_t failed = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (r.outcomes[d] != SolveOutcome::Verified) ++failed;
  }
  EXPECT_EQ(failed, r.failed_destinations());
  EXPECT_GT(failed, 0u) << "two dead PEs never corrupted any destination";
  EXPECT_FALSE(r.fault_events.empty());
}

TEST(McpFaultInjection, WorkerCountDoesNotChangeFaultyResults) {
  util::Rng rng(79);
  const std::size_t n = 9;
  const auto g = graph::random_digraph(n, 8, 0.3, {1, 15}, rng);
  const auto run = [&](std::size_t workers) {
    AllPairsOptions options;
    options.workers = workers;
    options.mcp.verify = true;
    options.mcp.max_retries = 1;
    options.mcp.faults = FaultModel::parse("stuck-closed:row,4,4", n, 8);
    return all_pairs(g, options);
  };
  const AllPairsResult a = run(1);
  const AllPairsResult b = run(4);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.next, b.next);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_TRUE(a.total_steps == b.total_steps);
}

}  // namespace
}  // namespace ppa::mcp
