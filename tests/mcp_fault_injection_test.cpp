// Fault-injection acceptance fuzz for the robustness layer.
//
// Over 300 seeded fault scenarios (every fault class, n in {8, 16, 32},
// both execution backends) the contract is: a run is either VERIFIED — and
// then its solution must equal Dijkstra's exactly — or it is reported as a
// non-Verified outcome carrying at least one structured FaultEvent. No
// silently wrong row may ever escape. With retries enabled the fault-free
// word-backend oracle must recover every scenario to Verified. The two
// backends must also stay bit-identical under IDENTICAL faults: same
// solution, same outcome, same step counters, same fault-event log.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/mcp.hpp"
#include "sim/fault_model.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using sim::FaultKind;
using sim::FaultModel;

enum class FaultClass { Dead, StuckOpen, StuckClosed, StuckBit, Mixed };

const char* name_of(FaultClass c) {
  switch (c) {
    case FaultClass::Dead: return "dead";
    case FaultClass::StuckOpen: return "stuck-open";
    case FaultClass::StuckClosed: return "stuck-closed";
    case FaultClass::StuckBit: return "stuck-bit";
    case FaultClass::Mixed: return "mixed";
  }
  return "?";
}

/// One or two defects of the given class at seeded locations.
FaultModel model_for(FaultClass c, std::size_t n, int bits, util::Rng& rng) {
  if (c == FaultClass::Mixed) return FaultModel::random(n, bits, rng.next(), 4);
  FaultModel m;
  const std::size_t count = 1 + rng.below(2);
  for (std::size_t k = 0; k < count; ++k) {
    sim::Fault f;
    f.axis = rng.below(2) == 0 ? sim::Axis::Row : sim::Axis::Column;
    f.row = rng.below(n);
    f.col = rng.below(n);
    switch (c) {
      case FaultClass::Dead: f.kind = FaultKind::DeadPe; break;
      case FaultClass::StuckOpen: f.kind = FaultKind::StuckOpen; break;
      case FaultClass::StuckClosed: f.kind = FaultKind::StuckClosed; break;
      case FaultClass::StuckBit:
        f.kind = FaultKind::StuckBit;
        f.bit = static_cast<int>(rng.below(static_cast<std::size_t>(bits)));
        f.stuck_value = rng.below(2) == 1;
        break;
      case FaultClass::Mixed: break;
    }
    m.add(f);
  }
  return m;
}

/// The acceptance predicate: Verified implies exactly correct; anything
/// else implies at least one structured fault event.
void expect_never_silently_wrong(const graph::WeightMatrix& g, const Result& r,
                                 const std::string& label) {
  if (r.outcome == SolveOutcome::Verified) {
    test::expect_solves(g, r.solution, label + " (verified must be exact)");
  } else {
    EXPECT_NE(r.outcome, SolveOutcome::Unchecked) << label;
    EXPECT_FALSE(r.fault_events.empty())
        << label << ": non-verified outcome " << name_of(r.outcome)
        << " carries no fault event";
  }
}

TEST(McpFaultInjection, FuzzAllClassesSizesAndBackends) {
  const FaultClass classes[] = {FaultClass::Dead, FaultClass::StuckOpen,
                                FaultClass::StuckClosed, FaultClass::StuckBit,
                                FaultClass::Mixed};
  const std::size_t sizes[] = {8, 16, 32};
  std::size_t cases = 0;
  std::size_t recovered = 0;
  for (const FaultClass fault_class : classes) {
    for (const std::size_t n : sizes) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        util::Rng rng(seed * 1000 + n * 10 + static_cast<std::uint64_t>(fault_class));
        const int bits = 8 + static_cast<int>(rng.below(2)) * 4;  // 8 or 12
        const auto g = graph::random_reachable_digraph(
            n, bits, 0.2, {1, 20}, 0, rng);
        const graph::Vertex dest = static_cast<graph::Vertex>(rng.below(n));
        const FaultModel model = model_for(fault_class, n, bits, rng);
        std::ostringstream label;
        label << "class=" << name_of(fault_class) << " n=" << n << " seed=" << seed
              << " dest=" << dest;

        Options base;
        base.verify = true;
        base.faults = model;

        // --- no-retry runs, both backends: never silently wrong, and the
        // two backends are bit-identical under identical faults.
        Options plain = base;
        plain.backend = sim::ExecBackend::Words;
        const Result word = solve(g, dest, plain);
        plain.backend = sim::ExecBackend::BitPlane;
        const Result plane = solve(g, dest, plain);
        expect_never_silently_wrong(g, word, label.str() + " word");
        expect_never_silently_wrong(g, plane, label.str() + " bitplane");
        cases += 2;
        ASSERT_EQ(plane.solution.cost, word.solution.cost) << label.str();
        ASSERT_EQ(plane.solution.next, word.solution.next) << label.str();
        ASSERT_EQ(plane.outcome, word.outcome) << label.str();
        ASSERT_EQ(plane.iterations, word.iterations) << label.str();
        ASSERT_TRUE(plane.total_steps == word.total_steps)
            << label.str() << ": step counters diverged under faults (word "
            << word.total_steps.summary() << " vs bitplane "
            << plane.total_steps.summary() << ")";
        ASSERT_EQ(plane.fault_events.size(), word.fault_events.size()) << label.str();
        for (std::size_t i = 0; i < word.fault_events.size(); ++i) {
          ASSERT_EQ(plane.fault_events[i], word.fault_events[i])
              << label.str() << " event " << i;
        }

        // --- retry runs, both backends: the fault-free oracle must
        // recover every scenario to an exact Verified solution.
        for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
          Options retry = base;
          retry.backend = backend;
          retry.max_retries = 2;
          const Result r = solve(g, dest, retry);
          ++cases;
          ASSERT_EQ(r.outcome, SolveOutcome::Verified)
              << label.str() << ": not recovered after " << r.attempts << " attempts";
          test::expect_solves(g, r.solution, label.str() + " (after retry)");
          if (r.attempts > 1) {
            ++recovered;
            EXPECT_FALSE(r.fault_events.empty())
                << label.str() << ": retried without recording why";
          }
        }
      }
    }
  }
  // The acceptance floor: >= 200 fuzz cases, and the faults actually bit —
  // a healthy fraction of runs needed the oracle.
  EXPECT_GE(cases, 200u);
  EXPECT_GT(recovered, 20u) << "faults almost never perturbed a run; the "
                               "injection sites are too weak to test recovery";
}

/// Per-category step equality with StepCategory::Masking excluded — the
/// masked-run identity contract of docs/robustness.md.
void expect_steps_equal_modulo_masking(const sim::StepCounter& a, const sim::StepCounter& b,
                                       const std::string& label) {
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    const auto category = static_cast<sim::StepCategory>(c);
    if (category == sim::StepCategory::Masking) continue;
    EXPECT_EQ(a.count(category), b.count(category))
        << label << ": category " << sim::name_of(category);
  }
}

TEST(McpFaultInjection, MaskedFaultFreeRunsBitIdenticalToUnmasked) {
  // On a fault-free machine TMR and ECC must be pure overhead: identical
  // solution, iterations and step ledger outside StepCategory::Masking.
  util::Rng rng(42);
  const std::size_t n = 16;
  const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
  const graph::Vertex dest = 3;
  for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    const std::string tag = backend == sim::ExecBackend::Words ? "word" : "bitplane";
    Options base;
    base.backend = backend;
    base.verify = true;
    const Result plain = solve(g, dest, base);
    ASSERT_EQ(plain.outcome, SolveOutcome::Verified);
    EXPECT_EQ(plain.total_steps.count(sim::StepCategory::Masking), 0u);

    std::vector<RecoveryPolicy> policies = {RecoveryPolicy::Tmr,
                                            RecoveryPolicy::TmrThenRetry};
    if (backend == sim::ExecBackend::BitPlane) policies.push_back(RecoveryPolicy::Ecc);
    for (const RecoveryPolicy policy : policies) {
      Options masked = base;
      masked.recovery = policy;
      const Result r = solve(g, dest, masked);
      const std::string label = tag + std::string(" recovery=") + name_of(policy);
      EXPECT_EQ(r.outcome, SolveOutcome::Verified) << label;
      EXPECT_EQ(r.solution.cost, plain.solution.cost) << label;
      EXPECT_EQ(r.solution.next, plain.solution.next) << label;
      EXPECT_EQ(r.iterations, plain.iterations) << label;
      expect_steps_equal_modulo_masking(r.total_steps, plain.total_steps, label);
      EXPECT_GT(r.total_steps.count(sim::StepCategory::Masking), 0u) << label;
      EXPECT_GT(r.masking.votes, 0u) << label;
      EXPECT_EQ(r.masking.corrections, 0u) << label;
      EXPECT_EQ(r.masking.uncorrectable, 0u) << label;
    }
  }
}

TEST(McpFaultInjection, BackendsBitIdenticalUnderTmrMasking) {
  // The word/bit-plane differential oracle extends to masked runs: under
  // IDENTICAL transient faults the TMR-voted engines stay bit-identical —
  // solution, outcome, full step ledger (Masking included) and events.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed * 311);
    const std::size_t n = 12;
    const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
    const graph::Vertex dest = static_cast<graph::Vertex>(rng.below(n));
    Options options;
    options.verify = true;
    options.recovery = RecoveryPolicy::Tmr;
    options.faults = FaultModel::parse(
        "transient-bit:row,2,3,1,3,1;transient-bit:col,5,0,1,5,2", n, 8);
    options.backend = sim::ExecBackend::Words;
    const Result word = solve(g, dest, options);
    options.backend = sim::ExecBackend::BitPlane;
    const Result plane = solve(g, dest, options);
    const std::string label = "seed=" + std::to_string(seed);
    ASSERT_EQ(plane.solution.cost, word.solution.cost) << label;
    ASSERT_EQ(plane.solution.next, word.solution.next) << label;
    ASSERT_EQ(plane.outcome, word.outcome) << label;
    ASSERT_TRUE(plane.total_steps == word.total_steps)
        << label << ": masked step ledgers diverged (word "
        << word.total_steps.summary() << " vs bitplane "
        << plane.total_steps.summary() << ")";
    ASSERT_EQ(plane.masking.votes, word.masking.votes) << label;
    ASSERT_EQ(plane.masking.corrections, word.masking.corrections) << label;
    ASSERT_EQ(plane.fault_events.size(), word.fault_events.size()) << label;
  }
}

TEST(McpFaultInjection, MaskingRecoversNinetyPercentOfRetryScenarios) {
  // The acceptance suite: 20 fixed seeded single-wire scenarios (19
  // transient with period >= 3, one persistent). Retry with the fault-free
  // oracle recovers all of them; TMR must recover >= 90% of those WITHOUT
  // any retry (it provably loses the persistent one), ECC all of them —
  // and no policy may ever hand back a silently wrong row.
  const std::size_t n = 16;
  const int bits = 8;
  std::size_t retry_recovered = 0;
  std::size_t tmr_recovered = 0;
  std::size_t ecc_recovered = 0;
  std::size_t perturbed = 0;
  const std::size_t scenarios = 20;
  for (std::size_t i = 0; i < scenarios; ++i) {
    util::Rng rng(9000 + i * 17);
    const auto g = graph::random_reachable_digraph(n, bits, 0.25, {1, 20}, 0, rng);
    const graph::Vertex dest = static_cast<graph::Vertex>(rng.below(n));
    sim::Fault f;
    f.kind = FaultKind::StuckBit;
    f.axis = (i % 2 == 0) ? sim::Axis::Row : sim::Axis::Column;
    f.row = rng.below(n);
    f.bit = static_cast<int>(rng.below(static_cast<std::size_t>(bits)));
    f.stuck_value = rng.below(2) == 1;
    if (i < scenarios - 1) {  // transient; the last scenario stays persistent
      f.period = 3 + i % 5;
      f.phase = rng.below(f.period);
    }
    FaultModel model;
    model.add(f);
    const std::string label = "scenario=" + std::to_string(i);

    Options base;
    base.backend = sim::ExecBackend::BitPlane;
    base.verify = true;
    base.faults = model;

    Options retry = base;
    retry.max_retries = 2;
    const Result rr = solve(g, dest, retry);
    expect_never_silently_wrong(g, rr, label + " retry");
    if (rr.outcome == SolveOutcome::Verified) ++retry_recovered;
    if (rr.attempts > 1) ++perturbed;

    Options tmr = base;
    tmr.recovery = RecoveryPolicy::Tmr;
    const Result rt = solve(g, dest, tmr);
    expect_never_silently_wrong(g, rt, label + " tmr");
    EXPECT_EQ(rt.attempts, 1u) << label;
    if (rt.outcome == SolveOutcome::Verified) ++tmr_recovered;
    if (rt.masking.corrections > 0) ++perturbed;

    Options ecc = base;
    ecc.recovery = RecoveryPolicy::Ecc;
    const Result re = solve(g, dest, ecc);
    expect_never_silently_wrong(g, re, label + " ecc");
    EXPECT_EQ(re.attempts, 1u) << label;
    if (re.outcome == SolveOutcome::Verified) ++ecc_recovered;
  }
  EXPECT_EQ(retry_recovered, scenarios) << "the oracle retry baseline itself failed";
  EXPECT_GE(tmr_recovered * 10, retry_recovered * 9)
      << "TMR recovered " << tmr_recovered << "/" << retry_recovered;
  EXPECT_GE(ecc_recovered * 10, retry_recovered * 9)
      << "ECC recovered " << ecc_recovered << "/" << retry_recovered;
  EXPECT_GE(perturbed, 5u) << "the scenario faults almost never bit; the suite "
                              "is too weak to compare recovery policies";
}

TEST(McpFaultInjection, EccMasksCheaperThanRetryAtN128) {
  // The headline step claim (docs/robustness.md): on an n = 128 MCP run a
  // persistent stuck bus wire costs ECC one Masking beat per plane bus
  // cycle, while verify-then-retry pays a whole second solve. Total SIMD
  // steps, Masking included, must favor ECC.
  util::Rng rng(4242);
  const std::size_t n = 128;
  const auto g = graph::random_reachable_digraph(n, 12, 0.05, {1, 40}, 0, rng);
  const graph::Vertex dest = 7;
  Options base;
  base.backend = sim::ExecBackend::BitPlane;
  base.verify = true;

  // Probe a fixed candidate list for a wire whose corruption actually
  // changes the outcome (a stuck bus bit is harmless when the delivered
  // words already carry it); the comparison needs a fault that bites.
  const char* const candidates[] = {
      "stuck-bit:row,1,0,1", "stuck-bit:col,1,0,1", "stuck-bit:row,2,0,0",
      "stuck-bit:col,2,0,0", "stuck-bit:row,1,3,1", "stuck-bit:col,3,5,1"};
  Result rr;
  bool found = false;
  for (const char* spec : candidates) {
    Options retry = base;
    retry.max_retries = 2;
    retry.faults = FaultModel::parse(spec, n, 12);
    rr = solve(g, dest, retry);
    ASSERT_EQ(rr.outcome, SolveOutcome::Verified) << spec;
    if (rr.attempts > 1) {
      base.faults = retry.faults;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no candidate stuck wire perturbed the run; the "
                        "comparison would be vacuous";

  Options ecc = base;
  ecc.recovery = RecoveryPolicy::Ecc;
  const Result re = solve(g, dest, ecc);
  ASSERT_EQ(re.outcome, SolveOutcome::Verified);
  EXPECT_EQ(re.attempts, 1u);
  EXPECT_GT(re.masking.corrections, 0u);
  test::expect_solves(g, re.solution, "ecc-masked n=128");
  EXPECT_LT(re.total_steps.total(), rr.total_steps.total())
      << "ECC (" << re.total_steps.total() << " steps) did not beat retry ("
      << rr.total_steps.total() << " steps)";
}

TEST(McpFaultInjection, AllPairsRecoversAndReportsPerDestination) {
  util::Rng rng(77);
  const std::size_t n = 12;
  const auto g = graph::random_reachable_digraph(n, 8, 0.25, {1, 20}, 0, rng);
  AllPairsOptions options;
  options.workers = 3;
  options.mcp.verify = true;
  options.mcp.max_retries = 2;
  options.mcp.faults = FaultModel::parse("dead:2,5;stuck-bit:row,4,1,1", n, 8);
  const AllPairsResult faulty = all_pairs(g, options);
  ASSERT_EQ(faulty.outcomes.size(), n);
  EXPECT_EQ(faulty.failed_destinations(), 0u);
  std::size_t retried = 0;
  for (std::size_t d = 0; d < n; ++d) {
    EXPECT_EQ(faulty.outcomes[d], SolveOutcome::Verified) << "destination " << d;
    if (faulty.attempts[d] > 1) ++retried;
  }
  EXPECT_GT(retried, 0u);

  // The recovered matrix equals the fault-free one entry for entry.
  const AllPairsResult clean = all_pairs(g, Options{});
  EXPECT_EQ(faulty.dist, clean.dist);
  EXPECT_EQ(faulty.next, clean.next);
}

TEST(McpFaultInjection, AllPairsDegradesPerDestinationWithoutRetries) {
  util::Rng rng(78);
  const std::size_t n = 10;
  const auto g = graph::random_reachable_digraph(n, 8, 0.3, {1, 20}, 0, rng);
  AllPairsOptions options;
  options.mcp.verify = true;
  options.mcp.faults = FaultModel::parse("dead:3,3;dead:0,7", n, 8);
  const AllPairsResult r = all_pairs(g, options);
  // The batch completes despite failures; every non-Verified destination
  // is visible in the outcome vector and the merged event log is nonempty.
  ASSERT_EQ(r.outcomes.size(), n);
  std::size_t failed = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (r.outcomes[d] != SolveOutcome::Verified) ++failed;
  }
  EXPECT_EQ(failed, r.failed_destinations());
  EXPECT_GT(failed, 0u) << "two dead PEs never corrupted any destination";
  EXPECT_FALSE(r.fault_events.empty());
}

TEST(McpFaultInjection, WorkerCountDoesNotChangeFaultyResults) {
  util::Rng rng(79);
  const std::size_t n = 9;
  const auto g = graph::random_digraph(n, 8, 0.3, {1, 15}, rng);
  const auto run = [&](std::size_t workers) {
    AllPairsOptions options;
    options.workers = workers;
    options.mcp.verify = true;
    options.mcp.max_retries = 1;
    options.mcp.faults = FaultModel::parse("stuck-closed:row,4,4", n, 8);
    return all_pairs(g, options);
  };
  const AllPairsResult a = run(1);
  const AllPairsResult b = run(4);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.next, b.next);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_TRUE(a.total_steps == b.total_steps);
}

}  // namespace
}  // namespace ppa::mcp
