#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace ppa::util {
namespace {

// Keep the previous level so tests do not leak configuration.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::Info;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (const auto level :
       {LogLevel::Quiet, LogLevel::Error, LogLevel::Info, LogLevel::Debug}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, QuietSuppressesEverything) {
  set_log_level(LogLevel::Quiet);
  // Nothing to assert on stderr portably; the contract is "does not
  // crash and does not throw".
  EXPECT_NO_THROW(log_line(LogLevel::Error, "suppressed"));
  EXPECT_NO_THROW(log_line(LogLevel::Info, "suppressed"));
}

TEST_F(LoggingTest, StreamHelpersEmitAtTheirLevel) {
  set_log_level(LogLevel::Quiet);
  EXPECT_NO_THROW(log_info() << "value " << 42);
  EXPECT_NO_THROW(log_error() << "oops");
  EXPECT_NO_THROW(log_debug() << "detail");
}

TEST_F(LoggingTest, ThresholdFilters) {
  set_log_level(LogLevel::Error);
  EXPECT_NO_THROW(log_line(LogLevel::Debug, "filtered out"));
  EXPECT_NO_THROW(log_line(LogLevel::Error, "emitted"));
}

}  // namespace
}  // namespace ppa::util
