# Exposition + snapshot paths of the CLI (docs/observability.md):
# --prom-out must write a Prometheus text exposition with labelled samples
# and cumulative histogram buckets, --stats must print the per-category
# attribution table, and --snapshot-every must stream one ppa.metrics.v1
# JSON line per iteration to --snapshot-out (solve only — allpairs rejects
# it). Invoked by ctest with -DTOOL=<binary> -DWORKDIR=<scratch dir>.
if(NOT DEFINED TOOL OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "TOOL and WORKDIR must be defined")
endif()

set(graph_file "${WORKDIR}/tool_prom_graph.txt")
set(solution_file "${WORKDIR}/tool_prom_solution.txt")
set(prom_file "${WORKDIR}/tool_prom_metrics.prom")
set(snapshot_file "${WORKDIR}/tool_prom_snapshots.jsonl")

function(run_ok)
  execute_process(COMMAND ${TOOL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ppa_mcp ${ARGN} failed (rc=${rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

function(expect_fail expected)
  execute_process(COMMAND ${TOOL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "ppa_mcp ${ARGN} unexpectedly succeeded\nstdout: ${out}")
  endif()
  if(NOT rc MATCHES "^[0-9]+$")
    message(FATAL_ERROR "ppa_mcp ${ARGN} crashed (rc=${rc})\nstderr: ${err}")
  endif()
  if(NOT "${out}${err}" MATCHES "${expected}")
    message(FATAL_ERROR "ppa_mcp ${ARGN}: diagnostic does not mention '${expected}'\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

run_ok(gen --family reachable --n 12 --seed 5 --dest 1 --out ${graph_file})

# --- Prometheus exposition + the --stats attribution table ---
run_ok(solve --graph ${graph_file} --dest 1 --stats --prom-out ${prom_file}
       --out ${solution_file})
if(NOT last_output MATCHES "run: workload=mcp")
  message(FATAL_ERROR "--stats lost the run summary line: ${last_output}")
endif()
if(NOT last_output MATCHES "category" OR NOT last_output MATCHES "steps%")
  message(FATAL_ERROR "--stats is missing the attribution table: ${last_output}")
endif()
if(NOT EXISTS ${prom_file})
  message(FATAL_ERROR "--prom-out did not write its file")
endif()
file(READ ${prom_file} prom_text)
if(NOT prom_text MATCHES "# TYPE ppa_steps_alu counter")
  message(FATAL_ERROR "exposition is missing counter TYPE lines:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "ppa_solver_runs{workload=\"mcp\",backend=\"word\",n=\"12\"} 1")
  message(FATAL_ERROR "exposition is missing the labelled solver.runs sample:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "_bucket{[^\n]*,le=\"\\+Inf\"}")
  message(FATAL_ERROR "exposition histograms lack cumulative +Inf buckets:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "# TYPE ppa_profile_wall_seconds gauge")
  message(FATAL_ERROR "exposition is missing the wall-attribution gauge family:\n${prom_text}")
endif()

# --- periodic JSONL snapshots (solve only) ---
run_ok(solve --graph ${graph_file} --dest 1 --snapshot-every 1
       --snapshot-out ${snapshot_file} --out ${solution_file})
if(NOT EXISTS ${snapshot_file})
  message(FATAL_ERROR "--snapshot-out did not write its file")
endif()
file(STRINGS ${snapshot_file} snapshot_lines)
list(LENGTH snapshot_lines snapshot_count)
if(snapshot_count LESS 2)
  message(FATAL_ERROR "expected one snapshot per iteration, got ${snapshot_count} lines")
endif()
foreach(line IN LISTS snapshot_lines)
  if(NOT line MATCHES "^{\"schema\":\"ppa\\.metrics\\.v1\"")
    message(FATAL_ERROR "snapshot line is not a ppa.metrics.v1 document:\n${line}")
  endif()
endforeach()
list(GET snapshot_lines -1 last_line)
if(NOT last_line MATCHES "\"convergence\":\\[{\"dest\":")
  message(FATAL_ERROR "snapshots carry no convergence series:\n${last_line}")
endif()

# --- flag validation: cadence without a sink, negative cadence, allpairs ---
expect_fail("snapshot-out" solve --graph ${graph_file} --dest 1
            --snapshot-every 2 --out ${solution_file})
expect_fail(">= 0" solve --graph ${graph_file} --dest 1 --snapshot-every -2
            --snapshot-out ${snapshot_file} --out ${solution_file})
expect_fail("solve subcommand" allpairs --graph ${graph_file} --snapshot-every 2
            --snapshot-out ${snapshot_file})

# allpairs still takes the exposition flags (merged registry).
run_ok(allpairs --graph ${graph_file} --workers 2 --prom-out ${prom_file})
file(READ ${prom_file} prom_text)
if(NOT prom_text MATCHES "ppa_solver_runs{workload=\"all_pairs\"[^\n]*} 12")
  message(FATAL_ERROR "allpairs exposition lost the merged solver.runs:\n${prom_text}")
endif()

file(REMOVE ${graph_file} ${solution_file} ${prom_file} ${snapshot_file})
message(STATUS "prometheus + snapshot CLI round trip OK")
