#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ppa::analysis {
namespace {

TEST(Summarize, KnownSample) {
  const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({42});
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Summarize, OddMedian) {
  EXPECT_DOUBLE_EQ(summarize({3, 1, 2}).median, 2.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({9, 1, 5});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(Summarize, RejectsEmpty) {
  EXPECT_THROW((void)summarize({}), util::ContractError);
  EXPECT_THROW((void)mean_of({}), util::ContractError);
  EXPECT_THROW((void)geometric_mean({}), util::ContractError);
}

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometric_mean({4, 9}), 6.0);
  EXPECT_NEAR(geometric_mean({1, 10, 100}), 10.0, 1e-9);
  EXPECT_THROW((void)geometric_mean({1, 0}), util::ContractError);
  EXPECT_THROW((void)geometric_mean({-1}), util::ContractError);
}

TEST(Summarize, LargeRandomSampleIsSane) {
  util::Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 10000; ++i) sample.push_back(rng.uniform());
  const Summary s = summarize(sample);
  EXPECT_NEAR(s.mean, 0.5, 0.02);
  EXPECT_NEAR(s.stddev, 0.2887, 0.02);  // sqrt(1/12)
  EXPECT_NEAR(s.median, 0.5, 0.03);
}

}  // namespace
}  // namespace ppa::analysis
