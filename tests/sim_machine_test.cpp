#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ppa::sim {
namespace {

MachineConfig config_of(std::size_t n, int bits = 16) {
  MachineConfig c;
  c.n = n;
  c.bits = bits;
  return c;
}

TEST(Machine, ConstructionAndGeometry) {
  const Machine m(config_of(3));
  EXPECT_EQ(m.n(), 3u);
  EXPECT_EQ(m.pe_count(), 9u);
  EXPECT_EQ(m.field().bits(), 16);
  const auto rows = m.row_index();
  const auto cols = m.col_index();
  for (std::size_t pe = 0; pe < 9; ++pe) {
    EXPECT_EQ(rows[pe], pe / 3);
    EXPECT_EQ(cols[pe], pe % 3);
  }
}

TEST(Machine, RejectsArrayLargerThanField) {
  // h=4: max finite value 14, so n-1 must be <= 14.
  EXPECT_NO_THROW(Machine(config_of(15, 4)));
  EXPECT_THROW(Machine(config_of(16, 4)), util::ContractError);
  EXPECT_THROW(Machine(config_of(0, 8)), util::ContractError);
}

TEST(Machine, ShiftEastBringsWestNeighbour) {
  Machine m(config_of(3));
  std::vector<Word> src(9);
  for (std::size_t pe = 0; pe < 9; ++pe) src[pe] = static_cast<Word>(pe);
  std::vector<Word> dst(9);
  m.shift(src, Direction::East, 99, dst);
  // Row 0: [99, 0, 1]; row 1: [99, 3, 4]; row 2: [99, 6, 7].
  EXPECT_EQ(dst[0], 99u);
  EXPECT_EQ(dst[1], 0u);
  EXPECT_EQ(dst[2], 1u);
  EXPECT_EQ(dst[3], 99u);
  EXPECT_EQ(dst[4], 3u);
  EXPECT_EQ(dst[8], 7u);
}

TEST(Machine, ShiftAllDirectionsBoundaries) {
  Machine m(config_of(2));
  const std::vector<Word> src{10, 11, 12, 13};
  std::vector<Word> dst(4);

  m.shift(src, Direction::West, 0, dst);  // receive from East
  EXPECT_EQ(dst, (std::vector<Word>{11, 0, 13, 0}));

  m.shift(src, Direction::South, 7, dst);  // receive from North
  EXPECT_EQ(dst, (std::vector<Word>{7, 7, 10, 11}));

  m.shift(src, Direction::North, 7, dst);  // receive from South
  EXPECT_EQ(dst, (std::vector<Word>{12, 13, 7, 7}));
}

TEST(Machine, ShiftRejectsAliasingAndBadSizes) {
  Machine m(config_of(2));
  std::vector<Word> buf(4);
  EXPECT_THROW(m.shift(buf, Direction::East, 0, buf), util::ContractError);
  std::vector<Word> small(3);
  std::vector<Word> dst(4);
  EXPECT_THROW(m.shift(small, Direction::East, 0, dst), util::ContractError);
}

TEST(Machine, StepChargingPerPrimitive) {
  Machine m(config_of(4));
  EXPECT_EQ(m.steps().total(), 0u);

  std::vector<Word> src(16, 1);
  std::vector<Word> dst(16);
  m.shift(src, Direction::East, 0, dst);
  EXPECT_EQ(m.steps().count(StepCategory::Shift), 1u);

  const std::vector<Flag> open(16, 1);
  (void)m.broadcast(src, Direction::East, open);
  EXPECT_EQ(m.steps().count(StepCategory::BusBroadcast), 1u);

  const std::vector<Flag> bits(16, 0);
  (void)m.wired_or(bits, Direction::South, open);
  EXPECT_EQ(m.steps().count(StepCategory::BusOr), 1u);

  (void)m.global_or(bits);
  EXPECT_EQ(m.steps().count(StepCategory::GlobalOr), 1u);

  m.charge_alu(5);
  EXPECT_EQ(m.steps().count(StepCategory::Alu), 5u);
  EXPECT_EQ(m.steps().total(), 9u);
}

TEST(Machine, GlobalOrSemantics) {
  Machine m(config_of(2));
  std::vector<Flag> flags(4, 0);
  EXPECT_FALSE(m.global_or(flags));
  flags[3] = 1;
  EXPECT_TRUE(m.global_or(flags));
  EXPECT_THROW((void)m.global_or(std::vector<Flag>(3, 0)), util::ContractError);
}

TEST(Machine, HostThreadsProduceIdenticalResults) {
  const auto run = [](std::size_t threads) {
    auto cfg = config_of(8);
    cfg.host_threads = threads;
    Machine m(cfg);
    std::vector<Word> src(64);
    for (std::size_t pe = 0; pe < 64; ++pe) src[pe] = static_cast<Word>(pe * 3 % 17);
    std::vector<Flag> open(64, 0);
    for (std::size_t r = 0; r < 8; ++r) open[r * 8 + (r * 5) % 8] = 1;
    auto b = m.broadcast(src, Direction::East, open);
    std::vector<Word> shifted(64);
    m.shift(src, Direction::South, 42, shifted);
    return std::pair{b.values, shifted};
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(1), run(4));
}

TEST(Machine, RingVersusLinearTopologyConfig) {
  auto cfg = config_of(4);
  cfg.topology = BusTopology::Linear;
  Machine m(cfg);
  std::vector<Word> src(16, 5);
  std::vector<Flag> open(16, 0);
  open[2] = 1;  // row 0 col 2
  const auto r = m.broadcast(src, Direction::East, open);
  EXPECT_EQ(r.driven[3], 1);
  EXPECT_EQ(r.driven[1], 0);  // no wrap in Linear mode
}

}  // namespace
}  // namespace ppa::sim
