#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace ppa::util {
namespace {

TEST(ThreadPool, InlineModeRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> data(100, 0);
  pool.parallel_for(data.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) data[i] = 1;
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 100);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(10007);
  pool.parallel_for(counts.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counts[i]++;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ZeroWorkIsNoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallWorkFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(3);
  pool.parallel_for(counts.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counts[i]++;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ResultIndependentOfWorkerCount) {
  const auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(5000);
    pool.parallel_for(out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = i * i + 7;
    });
    return out;
  };
  const auto a = run(1);
  const auto b = run(2);
  const auto c = run(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> touched{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    touched += static_cast<int>(end - begin);
  });
  EXPECT_EQ(touched.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
      total += static_cast<long>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPool, SharedPoolExists) {
  ThreadPool& shared = ThreadPool::shared();
  std::atomic<int> touched{0};
  shared.parallel_for(17, [&](std::size_t begin, std::size_t end) {
    touched += static_cast<int>(end - begin);
  });
  EXPECT_EQ(touched.load(), 17);
}

}  // namespace
}  // namespace ppa::util
