#include "baseline/hypercube.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::baseline::hypercube {
namespace {

using graph::Vertex;

TEST(HypercubeMachine, ExchangeSwapsPartners) {
  Machine m(3, 8);  // 8 PEs
  std::vector<Word> reg{0, 1, 2, 3, 4, 5, 6, 7};
  const auto d0 = m.exchange(reg, 0);
  EXPECT_EQ(d0, (std::vector<Word>{1, 0, 3, 2, 5, 4, 7, 6}));
  const auto d2 = m.exchange(reg, 2);
  EXPECT_EQ(d2, (std::vector<Word>{4, 5, 6, 7, 0, 1, 2, 3}));
  EXPECT_EQ(m.steps().count(sim::StepCategory::Shift), 2u);
}

TEST(HypercubeMachine, Contracts) {
  Machine m(2, 8);
  std::vector<Word> reg(4, 0);
  EXPECT_THROW((void)m.exchange(reg, 2), util::ContractError);
  EXPECT_THROW((void)m.exchange(std::vector<Word>(3, 0), 0), util::ContractError);
  EXPECT_THROW(Machine(-1, 8), util::ContractError);
}

TEST(HypercubeMachine, GlobalOr) {
  Machine m(2, 8);
  std::vector<Word> flags(4, 0);
  EXPECT_FALSE(m.global_or(flags));
  flags[2] = 1;
  EXPECT_TRUE(m.global_or(flags));
}

TEST(HypercubeMcp, TinyGraph) {
  const auto g = test::tiny_graph();
  const auto r = minimum_cost_path(g, 3);
  EXPECT_EQ(r.solution.cost, (std::vector<graph::Weight>{5, 3, 1, 0}));
  test::expect_solves(g, r.solution, "hypercube-tiny");
}

TEST(HypercubeMcp, NonPowerOfTwoSizesArePadded) {
  util::Rng rng(18);
  for (const std::size_t n : {3u, 5u, 6u, 7u, 9u, 12u, 17u}) {
    const auto g = graph::random_digraph(n, 16, 0.3, {1, 20}, rng);
    const Vertex d = rng.below(n);
    const auto r = minimum_cost_path(g, d);
    test::expect_solves(g, r.solution, "hypercube n=" + std::to_string(n));
  }
}

TEST(HypercubeMcp, SingleVertex) {
  const graph::WeightMatrix g(1, 8);
  const auto r = minimum_cost_path(g, 0);
  EXPECT_EQ(r.solution.cost, std::vector<graph::Weight>{0});
  EXPECT_EQ(r.log_side, 0);
}

TEST(HypercubeMcp, RoutesPerIterationAreLogarithmic) {
  // Per iteration: 2 routes/dim for the (value,index) all-reduce plus
  // 2 routes/dim for each of the two transposes = 6*log2(N) routes.
  util::Rng rng(19);
  const auto routes_per_iteration = [&](std::size_t n) {
    const auto g = graph::complete(n, 16, {1, 9}, rng);
    const auto r = minimum_cost_path(g, 0);
    return static_cast<double>(r.total_steps.count(sim::StepCategory::Shift)) /
           static_cast<double>(r.iterations);
  };
  EXPECT_DOUBLE_EQ(routes_per_iteration(8), 6.0 * 3);
  EXPECT_DOUBLE_EQ(routes_per_iteration(16), 6.0 * 4);
  EXPECT_DOUBLE_EQ(routes_per_iteration(32), 6.0 * 5);
}

TEST(HypercubeMcp, MatchesPpaIterationStructure) {
  util::Rng rng(20);
  for (int t = 0; t < 6; ++t) {
    const std::size_t n = 3 + rng.below(12);
    const Vertex d = rng.below(n);
    const auto g = graph::random_reachable_digraph(n, 16, 0.25, {1, 15}, d, rng);
    const auto r = minimum_cost_path(g, d);
    const auto bf = bellman_ford_to(g, d);
    EXPECT_EQ(r.iterations, bf.rounds + 1);
    EXPECT_EQ(r.solution.cost, bf.solution.cost);
  }
}

TEST(HypercubeMcp, ZeroWeightsAndSaturation) {
  graph::WeightMatrix g(3, 4);
  g.set(0, 1, 10);
  g.set(1, 2, 10);
  const auto r = minimum_cost_path(g, 2);
  EXPECT_EQ(r.solution.cost[0], g.infinity());
  EXPECT_EQ(r.solution.cost[1], 10u);
}

}  // namespace
}  // namespace ppa::baseline::hypercube
