#include "baseline/mesh_mcp.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::baseline {
namespace {

using graph::Vertex;

TEST(MeshMcp, TinyGraph) {
  const auto g = test::tiny_graph();
  const auto r = mesh_solve(g, 3);
  EXPECT_EQ(r.solution.cost, (std::vector<graph::Weight>{5, 3, 1, 0}));
  test::expect_solves(g, r.solution, "mesh-tiny");
}

TEST(MeshMcp, RandomGraphsMatchDijkstra) {
  util::Rng rng(14);
  for (int t = 0; t < 8; ++t) {
    const std::size_t n = 2 + rng.below(12);
    const Vertex d = rng.below(n);
    const auto g = graph::random_digraph(n, 12, 0.3, {1, 20}, rng);
    const auto r = mesh_solve(g, d);
    test::expect_solves(g, r.solution, "mesh t=" + std::to_string(t));
  }
}

TEST(MeshMcp, SingleVertexAndEdgeless) {
  EXPECT_EQ(mesh_solve(graph::WeightMatrix(1, 8), 0).solution.cost,
            std::vector<graph::Weight>{0});
  const graph::WeightMatrix empty(4, 8);
  const auto r = mesh_solve(empty, 1);
  EXPECT_EQ(r.solution.cost[0], empty.infinity());
  EXPECT_EQ(r.solution.cost[1], 0u);
}

TEST(MeshMcp, SameIterationCountAsPpa) {
  util::Rng rng(15);
  for (int t = 0; t < 5; ++t) {
    const std::size_t n = 3 + rng.below(10);
    const Vertex d = rng.below(n);
    const auto g = graph::random_reachable_digraph(n, 16, 0.2, {1, 15}, d, rng);
    const auto mesh = mesh_solve(g, d);
    const auto ppa_result = mcp::solve(g, d);
    EXPECT_EQ(mesh.iterations, ppa_result.iterations);
    EXPECT_EQ(mesh.solution.cost, ppa_result.solution.cost);
  }
}

TEST(MeshMcp, UsesOnlyShiftAndAluAndGlobalOr) {
  const auto g = test::tiny_graph();
  const auto r = mesh_solve(g, 3);
  EXPECT_EQ(r.total_steps.count(sim::StepCategory::BusBroadcast), 0u);
  EXPECT_EQ(r.total_steps.count(sim::StepCategory::BusOr), 0u);
  EXPECT_GT(r.total_steps.count(sim::StepCategory::Shift), 0u);
}

TEST(MeshMcp, PerIterationCostGrowsLinearlyWithN) {
  // The point of the comparison: the mesh pays Θ(n) per iteration.
  util::Rng rng(16);
  const auto per_iteration = [&](std::size_t n) {
    const auto g = graph::complete(n, 16, {1, 9}, rng);
    const auto r = mesh_solve(g, 0);
    return static_cast<double>(r.total_steps.total() - r.init_steps.total()) /
           static_cast<double>(r.iterations);
  };
  const double c8 = per_iteration(8);
  const double c16 = per_iteration(16);
  const double c32 = per_iteration(32);
  // Ratios approach 2 as n doubles (affine in n).
  EXPECT_GT(c16 / c8, 1.6);
  EXPECT_GT(c32 / c16, 1.7);
  EXPECT_LT(c32 / c16, 2.3);
}

TEST(MeshMcp, PpaBeatsMeshOnSteps) {
  // The headline: for moderate n, the reconfigurable buses win.
  util::Rng rng(17);
  const auto g = graph::complete(24, 16, {1, 9}, rng);
  const auto mesh = mesh_solve(g, 0);
  const auto ppa_result = mcp::solve(g, 0);
  EXPECT_LT(ppa_result.total_steps.total(), mesh.total_steps.total());
}

}  // namespace
}  // namespace ppa::baseline
