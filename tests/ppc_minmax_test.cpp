// pmax / selected_max and their OR-probe variants, mirrored from the
// pmin tests: randomized against host-computed cluster maxima.
#include <gtest/gtest.h>

#include <algorithm>

#include "ppc/primitives.hpp"
#include "util/rng.hpp"

namespace ppa::ppc {
namespace {

using sim::Direction;

sim::MachineConfig config_of(std::size_t n, int bits) {
  sim::MachineConfig c;
  c.n = n;
  c.bits = bits;
  return c;
}

struct MaxCase {
  std::size_t n;
  int bits;
  std::uint64_t seed;
};

class MaxSweep : public ::testing::TestWithParam<MaxCase> {};

TEST_P(MaxSweep, PmaxMatchesHostRowMaximum) {
  const auto [n, bits, seed] = GetParam();
  sim::Machine m(config_of(n, bits));
  Context ctx(m);
  util::Rng rng(seed);

  std::vector<Word> data(n * n);
  for (auto& v : data) v = static_cast<Word>(rng.below(m.field().infinity() + 1ull));
  const Pint src(ctx, data);
  const Pbool row_end = (col_of(ctx) == static_cast<Word>(n - 1));

  const Pint result = pmax(src, Direction::West, row_end);
  const Pint probe = pmax_orprobe(src, Direction::West, row_end);

  for (std::size_t r = 0; r < n; ++r) {
    const Word expected =
        *std::max_element(data.begin() + static_cast<std::ptrdiff_t>(r * n),
                          data.begin() + static_cast<std::ptrdiff_t>((r + 1) * n));
    for (std::size_t c = 0; c < n; ++c) {
      ASSERT_EQ(result.at(r, c), expected) << "pmax row " << r;
      ASSERT_EQ(probe.at(r, c), expected) << "orprobe row " << r;
    }
  }
}

TEST_P(MaxSweep, SelectedMaxRespectsSelection) {
  const auto [n, bits, seed] = GetParam();
  sim::Machine m(config_of(n, bits));
  Context ctx(m);
  util::Rng rng(seed ^ 0xABCD);

  std::vector<Word> data(n * n);
  std::vector<sim::Flag> sel_bits(n * n);
  for (std::size_t pe = 0; pe < n * n; ++pe) {
    data[pe] = static_cast<Word>(
        rng.below(std::min<std::uint64_t>(100, m.field().infinity() + 1ull)));
    sel_bits[pe] = rng.chance(0.6) ? sim::Flag{1} : sim::Flag{0};
  }
  // Guarantee at least one selected candidate per row.
  for (std::size_t r = 0; r < n; ++r) sel_bits[r * n] = 1;

  const Pint src(ctx, data);
  const Pbool selected(ctx, sel_bits);
  const Pbool row_end = (col_of(ctx) == static_cast<Word>(n - 1));
  const Pint result = selected_max(src, Direction::West, row_end, selected);
  const Pint probe = selected_max_orprobe(src, Direction::West, row_end, selected);

  for (std::size_t r = 0; r < n; ++r) {
    Word expected = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (sel_bits[r * n + c]) expected = std::max(expected, data[r * n + c]);
    }
    for (std::size_t c = 0; c < n; ++c) {
      ASSERT_EQ(result.at(r, c), expected) << "row " << r;
      ASSERT_EQ(probe.at(r, c), expected) << "row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MaxSweep,
                         ::testing::Values(MaxCase{2, 4, 1}, MaxCase{4, 8, 2},
                                           MaxCase{8, 8, 3}, MaxCase{8, 16, 4},
                                           MaxCase{13, 12, 5}, MaxCase{16, 32, 6}));

TEST(Pmax, EmptySelectionOrProbeYieldsZero) {
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  const Pbool anchor = (col_of(ctx) == Word{3});
  const Pbool none(ctx, false);
  const Pint result = selected_max_orprobe(col_of(ctx), Direction::West, anchor, none);
  for (std::size_t pe = 0; pe < 16; ++pe) EXPECT_EQ(result.at(pe), 0u);
}

TEST(Pmax, CostMatchesPminExactly) {
  // Min and max are mirror programs: identical instruction counts.
  sim::Machine m1(config_of(8, 16));
  sim::Machine m2(config_of(8, 16));
  Context c1(m1);
  Context c2(m2);
  const Pbool a1 = (col_of(c1) == Word{7});
  const Pbool a2 = (col_of(c2) == Word{7});
  (void)pmin(row_of(c1), Direction::West, a1);
  (void)pmax(row_of(c2), Direction::West, a2);
  EXPECT_EQ(m1.steps().total(), m2.steps().total());
  EXPECT_EQ(m1.steps().count(sim::StepCategory::BusOr),
            m2.steps().count(sim::StepCategory::BusOr));
}

TEST(Pmax, ColumnOrientation) {
  sim::Machine m(config_of(5, 8));
  Context ctx(m);
  std::vector<Word> data(25);
  for (std::size_t pe = 0; pe < 25; ++pe) data[pe] = static_cast<Word>((pe * 13 + 1) % 200);
  const Pint src(ctx, data);
  const Pbool anchor = (row_of(ctx) == Word{0});
  const Pint result = pmax(src, Direction::South, anchor);
  for (std::size_t c = 0; c < 5; ++c) {
    Word expected = 0;
    for (std::size_t r = 0; r < 5; ++r) expected = std::max(expected, data[r * 5 + c]);
    for (std::size_t r = 0; r < 5; ++r) EXPECT_EQ(result.at(r, c), expected);
  }
}

TEST(BroadcastBool, MirrorsWordBroadcast) {
  sim::Machine m(config_of(4, 8));
  Context ctx(m);
  const Pbool open = (col_of(ctx) == Word{1});
  const Pbool payload = (row_of(ctx) == Word{2}) & (col_of(ctx) == Word{1});
  const Pbool got = broadcast(payload, sim::Direction::East, open);
  // Row 2's driver (col 1) injects 1; everyone in row 2 hears it.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(got.at(2, c));
    EXPECT_FALSE(got.at(0, c));
  }
}

}  // namespace
}  // namespace ppa::ppc
