#include "baseline/sequential.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::baseline {
namespace {

using graph::Vertex;
using graph::WeightMatrix;

TEST(Dijkstra, TinyGraph) {
  const auto g = test::tiny_graph();
  const auto s = dijkstra_to(g, 3);
  EXPECT_EQ(s.cost, (std::vector<graph::Weight>{5, 3, 1, 0}));
  EXPECT_EQ(s.next, (std::vector<Vertex>{1, 3, 3, 3}));
}

TEST(Dijkstra, SelfConsistentPaths) {
  util::Rng rng(3);
  for (int t = 0; t < 10; ++t) {
    const std::size_t n = 3 + rng.below(15);
    const auto g = graph::random_digraph(n, 16, 0.3, {1, 40}, rng);
    const Vertex d = rng.below(n);
    const auto s = dijkstra_to(g, d);
    const auto verdict = graph::verify_solution(g, s, s.cost);
    EXPECT_TRUE(verdict.ok) << verdict.detail;
  }
}

TEST(Dijkstra, UnreachableAndContracts) {
  WeightMatrix g(3, 8);
  g.set(0, 1, 1);
  const auto s = dijkstra_to(g, 1);
  EXPECT_EQ(s.cost[2], g.infinity());
  EXPECT_THROW((void)dijkstra_to(g, 3), util::ContractError);
}

TEST(Dijkstra, SaturationTreatedAsUnreachable) {
  WeightMatrix g(3, 4);  // infinity = 15
  g.set(0, 1, 10);
  g.set(1, 2, 10);
  const auto s = dijkstra_to(g, 2);
  EXPECT_EQ(s.cost[0], g.infinity());
  EXPECT_EQ(s.cost[1], 10u);
}

TEST(BellmanFord, MatchesDijkstraEverywhere) {
  util::Rng rng(5);
  for (int t = 0; t < 12; ++t) {
    const std::size_t n = 2 + rng.below(18);
    const auto g = graph::random_digraph(n, 12, 0.25, {0, 20}, rng);
    const Vertex d = rng.below(n);
    const auto bf = bellman_ford_to(g, d);
    const auto dj = dijkstra_to(g, d);
    EXPECT_EQ(bf.solution.cost, dj.cost);
    const auto verdict = graph::verify_solution(g, bf.solution, dj.cost);
    EXPECT_TRUE(verdict.ok) << verdict.detail;
  }
}

TEST(BellmanFord, RoundsMatchGraphDepth) {
  util::Rng rng(8);
  const auto ring = graph::directed_ring(9, 16, {1, 4}, rng);
  // p = 8 edges; after the 1-edge init, 7 improving rounds happen.
  EXPECT_EQ(bellman_ford_to(ring, 0).rounds, 7u);

  const auto star_graph = graph::star(7, 16, 0, {1, 4}, rng);
  EXPECT_EQ(bellman_ford_to(star_graph, 0).rounds, 0u);  // init already optimal
}

TEST(BellmanFord, RoundsConsistentWithMaxMcpEdges) {
  util::Rng rng(12);
  for (int t = 0; t < 10; ++t) {
    const std::size_t n = 3 + rng.below(12);
    const Vertex d = rng.below(n);
    const auto g = graph::random_reachable_digraph(n, 16, 0.1, {1, 9}, d, rng);
    const auto bf = bellman_ford_to(g, d);
    const std::size_t p = graph::max_mcp_edges(g, d);
    // p edges needs p-1 improvements beyond the 1-edge init.
    EXPECT_EQ(bf.rounds, p == 0 ? 0 : p - 1);
  }
}

TEST(FloydWarshall, MatchesDijkstraForEveryDestination) {
  util::Rng rng(9);
  const auto g = graph::random_digraph(12, 16, 0.25, {1, 30}, rng);
  const auto ap = floyd_warshall(g);
  for (Vertex d = 0; d < 12; ++d) {
    const auto slice = ap.toward(d);
    const auto dj = dijkstra_to(g, d);
    EXPECT_EQ(slice.cost, dj.cost) << "destination " << d;
    const auto verdict = graph::verify_solution(g, slice, dj.cost);
    EXPECT_TRUE(verdict.ok) << verdict.detail;
  }
}

TEST(FloydWarshall, DiagonalIsZero) {
  util::Rng rng(2);
  const auto g = graph::random_digraph(8, 16, 0.3, {1, 9}, rng);
  const auto ap = floyd_warshall(g);
  for (Vertex v = 0; v < 8; ++v) {
    EXPECT_EQ(ap.dist_at(v, v), 0u);
    EXPECT_EQ(ap.next_at(v, v), v);
  }
}

TEST(FloydWarshall, SaturatingComposition) {
  WeightMatrix g(4, 4);  // infinity = 15
  g.set(0, 1, 7);
  g.set(1, 2, 7);
  g.set(2, 3, 7);
  const auto ap = floyd_warshall(g);
  EXPECT_EQ(ap.dist_at(0, 2), 14u);
  EXPECT_EQ(ap.dist_at(0, 3), g.infinity());  // 21 saturates
}

TEST(AllPairs, TowardContracts) {
  const auto ap = floyd_warshall(WeightMatrix(3, 8));
  EXPECT_THROW((void)ap.toward(3), util::ContractError);
}

}  // namespace
}  // namespace ppa::baseline
