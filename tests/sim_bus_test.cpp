// Pins down the segmented-bus semantics of DESIGN.md §2/§4: driver
// resolution, ring wrap-around, linear floating segments, wired-OR cluster
// membership and segment-length reporting.
#include "sim/bus.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ppa::sim {
namespace {

constexpr std::size_t kN = 4;

std::vector<Word> iota_words() {
  std::vector<Word> v(kN * kN);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<Word>(i);
  return v;
}

std::vector<Flag> open_none() { return std::vector<Flag>(kN * kN, 0); }

std::vector<Flag> open_at(std::initializer_list<std::size_t> pes) {
  auto v = open_none();
  for (const std::size_t pe : pes) v[pe] = 1;
  return v;
}

// Row 0 occupies PEs 0..3; column 0 occupies PEs {0, 4, 8, 12}.

TEST(BusBroadcast, EastSingleOpenRingReachesWholeRow) {
  const auto src = iota_words();
  const auto open = open_at({1});  // row 0, column 1 open
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::East, src, open);
  // Every PE of row 0 receives the value injected at column 1 (ring wrap
  // carries it past the row end back to columns 0 and 1).
  for (std::size_t c = 0; c < kN; ++c) {
    EXPECT_EQ(r.values[c], 1u) << "column " << c;
    EXPECT_EQ(r.driven[c], 1);
  }
  // Other rows have no open node: floating.
  for (std::size_t pe = kN; pe < kN * kN; ++pe) EXPECT_EQ(r.driven[pe], 0);
  EXPECT_EQ(r.max_segment, kN);
}

TEST(BusBroadcast, EastTwoOpensSegmentTheRow) {
  const auto src = iota_words();
  const auto open = open_at({1, 3});
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::East, src, open);
  // driver(c) = nearest open strictly west (wrapping): c0 <- 3, c1 <- 3,
  // c2 <- 1, c3 <- 1.
  EXPECT_EQ(r.values[0], 3u);
  EXPECT_EQ(r.values[1], 3u);
  EXPECT_EQ(r.values[2], 1u);
  EXPECT_EQ(r.values[3], 1u);
  EXPECT_EQ(r.max_segment, 2u);
}

TEST(BusBroadcast, WestReversesUpstream) {
  const auto src = iota_words();
  const auto open = open_at({1, 3});
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::West, src, open);
  // Data flows toward decreasing columns; driver = nearest open strictly
  // east (wrapping): c0 <- 1, c1 <- 3, c2 <- 3, c3 <- 1.
  EXPECT_EQ(r.values[0], 1u);
  EXPECT_EQ(r.values[1], 3u);
  EXPECT_EQ(r.values[2], 3u);
  EXPECT_EQ(r.values[3], 1u);
}

TEST(BusBroadcast, SouthRunsDownColumns) {
  const auto src = iota_words();
  const auto open = open_at({4});  // column 0, row 1
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::South, src, open);
  for (std::size_t row = 0; row < kN; ++row) {
    EXPECT_EQ(r.values[row * kN], 4u) << "row " << row;
    EXPECT_EQ(r.driven[row * kN], 1);
  }
  EXPECT_EQ(r.driven[1], 0);  // other columns float
}

TEST(BusBroadcast, NorthRunsUpColumns) {
  const auto src = iota_words();
  const auto open = open_at({4, 12});  // column 0, rows 1 and 3
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::North, src, open);
  // Upstream of a PE is the PE below it. row0 <- row1(4), row3 <- wrap from
  // row1? walk: drivers are the nearest open strictly below (wrapping).
  EXPECT_EQ(r.values[0 * kN], 4u);
  EXPECT_EQ(r.values[1 * kN], 12u);
  EXPECT_EQ(r.values[2 * kN], 12u);
  EXPECT_EQ(r.values[3 * kN], 4u);
}

TEST(BusBroadcast, OpenNodeReceivesFromUpstreamNotItself) {
  const auto src = iota_words();
  const auto open = open_at({1, 2});
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::East, src, open);
  EXPECT_EQ(r.values[2], 1u);  // the open node at column 2 reads column 1's injection
  EXPECT_EQ(r.values[1], 2u);  // and vice versa around the ring
}

TEST(BusBroadcast, SingleOpenNodeReceivesItselfAfterFullWrap) {
  const auto src = iota_words();
  const auto open = open_at({2});
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::East, src, open);
  EXPECT_EQ(r.values[2], 2u);
}

TEST(BusBroadcast, LinearFloatsUpstreamOfFirstOpen) {
  const auto src = iota_words();
  const auto open = open_at({1});
  const auto r = bus_broadcast(kN, BusTopology::Linear, Direction::East, src, open);
  EXPECT_EQ(r.driven[0], 0);  // west of the driver: floating
  EXPECT_EQ(r.driven[1], 0);  // the open node itself reads a floating stub
  EXPECT_EQ(r.driven[2], 1);
  EXPECT_EQ(r.driven[3], 1);
  EXPECT_EQ(r.values[2], 1u);
  EXPECT_EQ(r.values[3], 1u);
}

TEST(BusBroadcast, LinearWestFloatsMirrored) {
  const auto src = iota_words();
  const auto open = open_at({2});
  const auto r = bus_broadcast(kN, BusTopology::Linear, Direction::West, src, open);
  EXPECT_EQ(r.driven[3], 0);
  EXPECT_EQ(r.driven[2], 0);
  EXPECT_EQ(r.values[1], 2u);
  EXPECT_EQ(r.values[0], 2u);
}

TEST(BusBroadcast, AllShortLineFloatsEntirely) {
  const auto src = iota_words();
  const auto open = open_none();
  for (const auto topology : {BusTopology::Ring, BusTopology::Linear}) {
    const auto r = bus_broadcast(kN, topology, Direction::East, src, open);
    for (std::size_t pe = 0; pe < kN * kN; ++pe) {
      EXPECT_EQ(r.driven[pe], 0);
      EXPECT_EQ(r.values[pe], 0u);
    }
    EXPECT_EQ(r.max_segment, 0u);
  }
}

TEST(BusBroadcast, AllOpenEveryoneHearsTheirUpstreamNeighbour) {
  const auto src = iota_words();
  std::vector<Flag> open(kN * kN, 1);
  const auto r = bus_broadcast(kN, BusTopology::Ring, Direction::East, src, open);
  for (std::size_t c = 0; c < kN; ++c) {
    EXPECT_EQ(r.values[c], (c + kN - 1) % kN);
  }
  EXPECT_EQ(r.max_segment, 1u);
}

TEST(BusBroadcast, RejectsMalformedOperands) {
  const std::vector<Word> short_src(3);
  const std::vector<Flag> open(kN * kN, 0);
  EXPECT_THROW((void)bus_broadcast(kN, BusTopology::Ring, Direction::East, short_src, open),
               util::ContractError);
  EXPECT_THROW((void)bus_broadcast(0, BusTopology::Ring, Direction::East, {}, {}),
               util::ContractError);
}

// ---------------------------------------------------------------------------
// Wired-OR
// ---------------------------------------------------------------------------

std::vector<Flag> bits_at(std::initializer_list<std::size_t> pes) {
  std::vector<Flag> v(kN * kN, 0);
  for (const std::size_t pe : pes) v[pe] = 1;
  return v;
}

TEST(BusWiredOr, SingleClusterOrsWholeLine) {
  const auto open = open_at({3});  // row 0 single open at column 3
  const auto src = bits_at({1});   // one short member pulls the line
  const auto r = bus_wired_or(kN, BusTopology::Ring, Direction::West, src, open);
  for (std::size_t c = 0; c < kN; ++c) EXPECT_EQ(r.values[c], 1u) << c;
  EXPECT_EQ(r.max_segment, kN);
}

TEST(BusWiredOr, ZeroWhenNobodyPulls) {
  const auto open = open_at({3});
  const auto src = bits_at({});
  const auto r = bus_wired_or(kN, BusTopology::Ring, Direction::West, src, open);
  for (std::size_t c = 0; c < kN; ++c) {
    EXPECT_EQ(r.values[c], 0u);
    EXPECT_EQ(r.driven[c], 1);
  }
}

TEST(BusWiredOr, OpenNodeReadsTheSegmentItPulls) {
  // Two opens split row 0 (ring, East) into segments {3, 0} and {1, 2}.
  // The open node at column 3 pulls: ITS segment — itself and the short
  // node wrapping behind it at column 0 — sees 1; segment {1, 2} sees 0.
  const auto open = open_at({1, 3});
  const auto src = bits_at({3});
  const auto r = bus_wired_or(kN, BusTopology::Ring, Direction::East, src, open);
  EXPECT_EQ(r.values[0], 1u);
  EXPECT_EQ(r.values[1], 0u);
  EXPECT_EQ(r.values[2], 0u);
  EXPECT_EQ(r.values[3], 1u);
}

TEST(BusWiredOr, ShortNodePullIsConfinedToItsSegment) {
  // Opens at columns 1 and 3 (ring, East): segments {1, 2} and {3, 0}.
  // A pull by the short node at column 2 is seen exactly by segment
  // {1, 2}.
  const auto open = open_at({1, 3});
  const auto src = bits_at({2});
  const auto r = bus_wired_or(kN, BusTopology::Ring, Direction::East, src, open);
  EXPECT_EQ(r.values[1], 1u);
  EXPECT_EQ(r.values[2], 1u);
  EXPECT_EQ(r.values[0], 0u);
  EXPECT_EQ(r.values[3], 0u);
}

TEST(BusWiredOr, LinearHeadSegmentIsItsOwnOrLine) {
  // Linear bus, open at column 2: the head piece {0, 1} is electrically
  // separate but still a functioning or-line; the tail segment {2, 3}
  // reads only its own pulls. Open-collector reads never float.
  const auto open = open_at({2});
  const auto src = bits_at({0, 1});
  const auto r = bus_wired_or(kN, BusTopology::Linear, Direction::East, src, open);
  for (std::size_t c = 0; c < kN; ++c) EXPECT_EQ(r.driven[c], 1);
  EXPECT_EQ(r.values[0], 1u);
  EXPECT_EQ(r.values[1], 1u);
  EXPECT_EQ(r.values[2], 0u);
  EXPECT_EQ(r.values[3], 0u);
}

TEST(BusWiredOr, AllShortLineIsOneSegment) {
  // No Open switch: the whole (ring or linear) line is one or-segment.
  const auto open = open_none();
  const auto src = bits_at({1});
  for (const auto topology : {BusTopology::Ring, BusTopology::Linear}) {
    const auto r = bus_wired_or(kN, topology, Direction::East, src, open);
    for (std::size_t c = 0; c < kN; ++c) {
      EXPECT_EQ(r.values[c], 1u);
      EXPECT_EQ(r.driven[c], 1);
    }
    // Other rows have no pull: read 0, still driven.
    EXPECT_EQ(r.values[kN], 0u);
    EXPECT_EQ(r.driven[kN], 1);
  }
}

TEST(BusWiredOr, ColumnsAreIndependent) {
  // Open every diagonal PE; pull in column 2 only.
  const auto open = open_at({0, 5, 10, 15});
  const auto src = bits_at({2});
  const auto r = bus_wired_or(kN, BusTopology::Ring, Direction::South, src, open);
  for (std::size_t row = 0; row < kN; ++row) {
    EXPECT_EQ(r.values[row * kN + 2], 1u) << "col2 row " << row;
    EXPECT_EQ(r.values[row * kN + 0], 0u);
    EXPECT_EQ(r.values[row * kN + 1], 0u);
    EXPECT_EQ(r.values[row * kN + 3], 0u);
  }
}

TEST(BusWiredOr, MaxSegmentReflectsClusterSizes) {
  const auto open = open_at({0, 1});  // segments of size 1 and 3 in row 0
  const auto src = bits_at({});
  const auto r = bus_wired_or(kN, BusTopology::Ring, Direction::East, src, open);
  // Rows 1..3 have no Open switch: each is one whole-line segment of 4,
  // which dominates row 0's {1, 3} split.
  EXPECT_EQ(r.max_segment, 4u);
}

}  // namespace
}  // namespace ppa::sim
