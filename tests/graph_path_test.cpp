#include "graph/path.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ppa::graph {
namespace {

WeightMatrix line_graph() {
  // 0 -(1)-> 1 -(2)-> 2 -(3)-> 3
  WeightMatrix g(4, 8);
  g.set(0, 1, 1);
  g.set(1, 2, 2);
  g.set(2, 3, 3);
  return g;
}

McpSolution line_solution() {
  McpSolution s;
  s.destination = 3;
  s.cost = {6, 5, 3, 0};
  s.next = {1, 2, 3, 3};
  return s;
}

TEST(ExtractPath, FollowsPointers) {
  const auto s = line_solution();
  const auto path = extract_path(s, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(ExtractPath, DestinationIsTrivial) {
  const auto s = line_solution();
  const auto path = extract_path(s, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, std::vector<Vertex>{3});
}

TEST(ExtractPath, DetectsPointerCycle) {
  McpSolution s;
  s.destination = 2;
  s.cost = {1, 1, 0};
  s.next = {1, 0, 2};  // 0 <-> 1 cycle never reaching 2
  EXPECT_FALSE(extract_path(s, 0).has_value());
}

TEST(ExtractPath, DetectsCorruptIndex) {
  McpSolution s;
  s.destination = 1;
  s.cost = {1, 0};
  s.next = {9, 1};
  EXPECT_FALSE(extract_path(s, 0).has_value());
}

TEST(ExtractPath, ContractViolations) {
  const auto s = line_solution();
  EXPECT_THROW((void)extract_path(s, 9), util::ContractError);
  McpSolution bad = s;
  bad.next.pop_back();
  EXPECT_THROW((void)extract_path(bad, 0), util::ContractError);
}

TEST(PathCost, SumsEdges) {
  const auto g = line_graph();
  EXPECT_EQ(path_cost(g, {0, 1, 2, 3}), 6u);
  EXPECT_EQ(path_cost(g, {2, 3}), 3u);
  EXPECT_EQ(path_cost(g, {1}), 0u);
}

TEST(PathCost, MissingEdgeIsInfinite) {
  const auto g = line_graph();
  EXPECT_EQ(path_cost(g, {0, 2}), g.infinity());
  EXPECT_EQ(path_cost(g, {3, 0}), g.infinity());
}

TEST(PathCost, SaturatesInTheField) {
  WeightMatrix g(3, 4);  // infinity = 15
  g.set(0, 1, 10);
  g.set(1, 2, 10);
  EXPECT_EQ(path_cost(g, {0, 1, 2}), g.infinity());
}

TEST(PathCost, RejectsEmptyPath) {
  const auto g = line_graph();
  EXPECT_THROW((void)path_cost(g, {}), util::ContractError);
}

TEST(VerifySolution, AcceptsCorrect) {
  const auto g = line_graph();
  const auto s = line_solution();
  const auto verdict = verify_solution(g, s, s.cost);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
  EXPECT_TRUE(static_cast<bool>(verdict));
}

TEST(VerifySolution, RejectsCostMismatchWithReference) {
  const auto g = line_graph();
  auto s = line_solution();
  auto reference = s.cost;
  reference[0] = 7;
  const auto verdict = verify_solution(g, s, reference);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.detail.find("vertex 0"), std::string::npos);
}

TEST(VerifySolution, RejectsNonzeroDestinationCost) {
  const auto g = line_graph();
  auto s = line_solution();
  s.cost[3] = 1;
  EXPECT_FALSE(verify_solution(g, s, s.cost).ok);
}

TEST(VerifySolution, RejectsBrokenPointerChain) {
  const auto g = line_graph();
  auto s = line_solution();
  s.next[1] = 0;  // 0 -> 1 -> 0 cycle, but costs claim finite
  EXPECT_FALSE(verify_solution(g, s, s.cost).ok);
}

TEST(VerifySolution, RejectsCostInconsistentWithTracedPath) {
  const auto g = line_graph();
  auto s = line_solution();
  s.cost[0] = 5;  // path 0->1->2->3 actually costs 6
  auto reference = s.cost;
  EXPECT_FALSE(verify_solution(g, s, reference).ok);
}

TEST(VerifySolution, UnreachableVerticesAreSkipped) {
  WeightMatrix g(3, 8);
  g.set(0, 2, 4);
  McpSolution s;
  s.destination = 2;
  s.cost = {4, g.infinity(), 0};
  s.next = {2, 2, 2};
  EXPECT_TRUE(verify_solution(g, s, s.cost).ok);
}

TEST(VerifySolution, RejectsSizeMismatch) {
  const auto g = line_graph();
  auto s = line_solution();
  s.cost.pop_back();
  EXPECT_FALSE(verify_solution(g, s, {0, 0, 0, 0}).ok);
}

}  // namespace
}  // namespace ppa::graph
