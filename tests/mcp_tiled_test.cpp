// The virtualized (tiled) PPA against the full-array oracle: for every
// (n, p) with p < n the tiled sweep must produce bit-identical solutions,
// iteration counts, outcomes and certificate verdicts on BOTH execution
// backends — the full array is the oracle, and the word/bit-plane pair
// must also agree with each other step counter for step counter. The
// virtualization overhead is pinned separately: panel reloads appear as
// the distinct PanelIo step category and nowhere else.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/mcp.hpp"
#include "mcp/tiled.hpp"
#include "obs/collector.hpp"
#include "obs/export.hpp"
#include "sim/step_counter.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa {
namespace {

using sim::StepCategory;
using sim::Word;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Solves with array_side = p on both backends and asserts full observable
/// equality with the full-array run (and between the tiled backends).
/// The default options ride the active-panel schedule; a third tiled run
/// with active_panels = false pins the exact dense PanelIo formula, and
/// the active run's ledger must close against it (charged + saved ==
/// formula — docs/tiling.md "Active panels").
void expect_tiled_matches_full(const graph::WeightMatrix& g, graph::Vertex destination,
                               mcp::Options options, std::size_t p,
                               const std::string& label) {
  options.array_side = 0;
  options.backend = sim::ExecBackend::Words;
  const mcp::Result full = mcp::solve(g, destination, options);
  ASSERT_EQ(full.total_steps.count(StepCategory::PanelIo), 0u)
      << label << ": the full-array path must not charge panel I/O";

  options.array_side = p;
  obs::Collector ledger_metrics;
  obs::Collector* const caller_observer = options.observer;
  options.observer = &ledger_metrics;
  const mcp::Result word = mcp::solve(g, destination, options);
  options.observer = caller_observer;
  options.backend = sim::ExecBackend::BitPlane;
  const mcp::Result plane = mcp::solve(g, destination, options);

  for (const mcp::Result* tiled : {&word, &plane}) {
    ASSERT_EQ(tiled->solution.cost, full.solution.cost) << label;
    ASSERT_EQ(tiled->solution.next, full.solution.next) << label;
    ASSERT_EQ(tiled->solution.destination, full.solution.destination) << label;
    ASSERT_EQ(tiled->iterations, full.iterations) << label;
    ASSERT_EQ(tiled->outcome, full.outcome) << label;
    ASSERT_EQ(tiled->verify_detail, full.verify_detail) << label;
  }
  ASSERT_TRUE(word.total_steps == plane.total_steps)
      << label << ": tiled step counters diverged across backends (word "
      << word.total_steps.summary() << " vs bitplane " << plane.total_steps.summary()
      << ")";
  ASSERT_TRUE(word.init_steps == plane.init_steps) << label;

  // Panel-reload cost is attributed to its own category: p + 1 I/O rows
  // per panel load (weight panel + SOW fragment) and 2 column readbacks,
  // for every panel of every iteration — charged in full by the dense
  // schedule, and an upper bound under the active one.
  const std::size_t blocks = ceil_div(g.size(), p);
  const std::uint64_t per_panel = static_cast<std::uint64_t>(p) + 3;
  const std::uint64_t formula =
      static_cast<std::uint64_t>(word.iterations) * blocks * blocks * per_panel;

  mcp::Options dense = options;
  dense.backend = sim::ExecBackend::Words;
  dense.observer = caller_observer;
  dense.active_panels = false;
  const mcp::Result off = mcp::solve(g, destination, dense);
  ASSERT_EQ(off.solution.cost, full.solution.cost) << label;
  ASSERT_EQ(off.solution.next, full.solution.next) << label;
  ASSERT_EQ(off.iterations, full.iterations) << label;
  ASSERT_EQ(off.total_steps.count(StepCategory::PanelIo), formula) << label;

  if (options.active_panels) {
    const std::uint64_t charged = word.total_steps.count(StepCategory::PanelIo);
    const std::uint64_t saved =
        ledger_metrics.metrics().counter(obs::metric::kSolverPanelIoSaved).value();
    const std::uint64_t visited =
        ledger_metrics.metrics().counter(obs::metric::kSolverPanels).value();
    const std::uint64_t skipped =
        ledger_metrics.metrics().counter(obs::metric::kSolverPanelsSkipped).value();
    ASSERT_LE(charged, formula) << label;
    ASSERT_EQ(charged + saved, formula)
        << label << ": the active ledger must close against the dense formula";
    ASSERT_EQ(visited + skipped,
              static_cast<std::uint64_t>(word.iterations) * blocks * blocks)
        << label;
  } else {
    ASSERT_EQ(word.total_steps.count(StepCategory::PanelIo), formula) << label;
  }

  // Anchor the oracle itself to ground truth.
  test::expect_solves(g, full.solution, label + " (full-array oracle)");
}

TEST(McpTiled, RandomGraphsAcrossGeometries) {
  // n up to 4x the physical side, divisible and non-divisible splits,
  // p = 1 (fully serialized) through p = n - 1 (one row/column of
  // padding), across field widths and densities.
  struct Case {
    std::size_t n;
    std::size_t p;
    int bits;
    double density;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {2, 1, 8, 0.9, 1},    {5, 2, 8, 0.5, 2},    {8, 2, 8, 0.4, 3},
      {12, 3, 10, 0.3, 4},  {13, 4, 16, 0.25, 5}, {16, 4, 8, 0.3, 6},
      {9, 8, 8, 0.4, 7},    {17, 16, 8, 0.15, 8}, {20, 5, 12, 0.2, 9},
      {21, 6, 8, 0.15, 10}, {24, 6, 6, 0.2, 11},  {11, 1, 8, 0.5, 12},
  };
  for (const Case& c : cases) {
    util::Rng rng(c.seed);
    const Word hi = std::max<Word>(1, std::min<Word>(30, (1u << c.bits) - 2));
    const auto g = graph::random_digraph(c.n, c.bits, c.density, {1, hi}, rng);
    const graph::Vertex dest = c.n > 1 ? static_cast<graph::Vertex>(rng.below(c.n)) : 0;
    std::ostringstream label;
    label << "random n=" << c.n << " p=" << c.p << " bits=" << c.bits
          << " density=" << c.density << " seed=" << c.seed << " dest=" << dest;
    expect_tiled_matches_full(g, dest, {}, c.p, label.str());
  }
}

TEST(McpTiled, StructuredFamiliesWithVerification) {
  // The host certificate checker is array-agnostic: verdicts must match
  // the full array bit for bit, on structured workloads where paths are
  // long (ring: the MCP has n - 1 edges, so every iteration improves
  // something and every panel sweep matters).
  util::Rng rng(77);
  const graph::WeightRange range{1, 20};
  mcp::Options options;
  options.verify = true;

  const auto ring = graph::directed_ring(14, 8, range, rng);
  expect_tiled_matches_full(ring, 5, options, 4, "ring n=14 p=4");
  const auto grid = graph::grid_mesh(4, 4, 8, range, rng);
  expect_tiled_matches_full(grid, 12, options, 3, "grid 4x4 p=3");
  const auto reachable = graph::random_reachable_digraph(26, 16, 0.08, {1, 30}, 0, rng);
  expect_tiled_matches_full(reachable, 0, options, 7, "reachable n=26 p=7");
  const auto sparse = graph::random_digraph(18, 8, 0.04, {1, 25}, rng);
  expect_tiled_matches_full(sparse, 9, options, 5, "sparse n=18 p=5");
}

TEST(McpTiled, AlgorithmVariantsAndIterationTrace) {
  // Both min variants and broadcast schemes ride through the tiled core;
  // the per-iteration changed counts must match the full array's exactly
  // (same Jacobi order), whatever the panel schedule.
  util::Rng rng(31);
  const auto g = graph::random_reachable_digraph(15, 8, 0.2, {1, 25}, 2, rng);
  for (const auto variant : {mcp::MinVariant::Paper, mcp::MinVariant::OrProbe}) {
    for (const auto scheme :
         {mcp::BroadcastScheme::SingleRing, mcp::BroadcastScheme::TwoSidedLinear}) {
      mcp::Options options;
      options.min_variant = variant;
      options.broadcast_scheme = scheme;
      options.record_iterations = true;
      std::ostringstream label;
      label << "variant=" << (variant == mcp::MinVariant::Paper ? "paper" : "orprobe")
            << " scheme="
            << (scheme == mcp::BroadcastScheme::SingleRing ? "ring" : "two-sided");
      expect_tiled_matches_full(g, 2, options, 4, label.str());

      options.array_side = 4;
      options.backend = sim::ExecBackend::Words;
      const mcp::Result tiled = mcp::solve(g, 2, options);
      options.array_side = 0;
      const mcp::Result full = mcp::solve(g, 2, options);
      ASSERT_EQ(tiled.iteration_trace.size(), full.iteration_trace.size()) << label.str();
      for (std::size_t k = 0; k < full.iteration_trace.size(); ++k) {
        EXPECT_EQ(tiled.iteration_trace[k].changed, full.iteration_trace[k].changed)
            << label.str() << " iteration " << k;
      }
    }
  }
}

TEST(McpTiled, SolveFromRidesTheTiledPath) {
  // solve_from runs solve() on the transposed matrix, so array_side must
  // ride through unchanged.
  util::Rng rng(55);
  const auto g = graph::random_reachable_digraph(13, 8, 0.3, {1, 20}, 4, rng);
  mcp::Options options;
  const auto full = mcp::solve_from(g, 4, options);
  options.array_side = 4;
  const auto tiled = mcp::solve_from(g, 4, options);
  EXPECT_EQ(tiled.cost, full.cost);
  EXPECT_EQ(tiled.prev, full.prev);
  EXPECT_EQ(tiled.iterations, full.iterations);
  EXPECT_GT(tiled.total_steps.count(StepCategory::PanelIo), 0u);
}

TEST(McpTiled, AllPairsHonorsArraySide) {
  // Every destination through the tiled sweep, sequential and threaded:
  // distances, pointers, outcomes and step totals identical to the
  // full-array batch except for the added PanelIo attribution.
  util::Rng rng(91);
  const auto g = graph::random_digraph(11, 8, 0.3, {1, 20}, rng);
  mcp::AllPairsOptions options;
  options.mcp.verify = true;
  const auto full = mcp::all_pairs(g, options);
  options.mcp.array_side = 3;
  const auto tiled = mcp::all_pairs(g, options);
  options.workers = 4;
  const auto threaded = mcp::all_pairs(g, options);

  EXPECT_EQ(tiled.dist, full.dist);
  EXPECT_EQ(tiled.next, full.next);
  EXPECT_EQ(tiled.outcomes, full.outcomes);
  EXPECT_EQ(tiled.diameter, full.diameter);
  EXPECT_EQ(tiled.total_iterations, full.total_iterations);
  EXPECT_GT(tiled.total_steps.count(StepCategory::PanelIo), 0u);

  EXPECT_EQ(threaded.dist, tiled.dist);
  EXPECT_EQ(threaded.next, tiled.next);
  EXPECT_EQ(threaded.outcomes, tiled.outcomes);
  EXPECT_TRUE(threaded.total_steps == tiled.total_steps)
      << "worker count changed tiled step totals";
}

TEST(McpTiled, ArraySideClampAndDispatch) {
  // array_side >= n clamps to the full-array path: no panel I/O charged,
  // results identical to array_side = 0.
  util::Rng rng(13);
  const auto g = graph::random_digraph(9, 8, 0.4, {1, 20}, rng);
  mcp::Options options;
  const auto full = mcp::solve(g, 1, options);
  options.array_side = 64;
  const auto clamped = mcp::solve(g, 1, options);
  EXPECT_EQ(clamped.solution.cost, full.solution.cost);
  EXPECT_EQ(clamped.solution.next, full.solution.next);
  EXPECT_EQ(clamped.total_steps.count(StepCategory::PanelIo), 0u);
  EXPECT_TRUE(clamped.total_steps == full.total_steps);

  EXPECT_EQ(mcp::effective_array_side({}, 9), 9u);
  mcp::Options sided;
  sided.array_side = 4;
  EXPECT_EQ(mcp::effective_array_side(sided, 9), 4u);
  sided.array_side = 100;
  EXPECT_EQ(mcp::effective_array_side(sided, 9), 9u);
}

TEST(McpTiled, PanelsCounterAndSpansSurfaceInMetrics) {
  // The observer sees the tiled phases: solver.panels counts the VISITED
  // panels, solver.panels_skipped the rest (the two always sum to
  // iterations x ceil(n/p)^2), panel_load / panel_relax spans exist for
  // exactly the visited panels, and the steps.panel_io counter lands in
  // the exported ppa.metrics.v1 document.
  util::Rng rng(23);
  const auto g = graph::random_reachable_digraph(10, 8, 0.3, {1, 20}, 0, rng);
  obs::Collector collector;
  mcp::Options options;
  options.array_side = 4;
  options.observer = &collector;
  const auto r = mcp::solve(g, 0, options);

  const std::size_t blocks = ceil_div(g.size(), 4);
  const std::uint64_t all_panels =
      static_cast<std::uint64_t>(r.iterations) * blocks * blocks;
  const std::uint64_t visited =
      collector.metrics().counter(obs::metric::kSolverPanels).value();
  const std::uint64_t skipped =
      collector.metrics().counter(obs::metric::kSolverPanelsSkipped).value();
  EXPECT_EQ(visited + skipped, all_panels);
  EXPECT_GT(collector.metrics().counter(obs::metric::kSolverActiveBlocks).value(), 0u);
  EXPECT_EQ(collector.metrics().counter(std::string(obs::metric::kStepPrefix) + "panel_io")
                .value(),
            r.total_steps.count(StepCategory::PanelIo));

  std::size_t loads = 0, relaxes = 0;
  for (const obs::SpanRecord& span : collector.spans()) {
    if (span.name == "panel_load") ++loads;
    if (span.name == "panel_relax") ++relaxes;
  }
  EXPECT_EQ(loads, visited);
  EXPECT_EQ(relaxes, visited);

  // The dense schedule restores the every-panel span stream.
  obs::Collector dense_collector;
  mcp::Options dense = options;
  dense.observer = &dense_collector;
  dense.active_panels = false;
  const auto dense_run = mcp::solve(g, 0, dense);
  EXPECT_EQ(dense_collector.metrics().counter(obs::metric::kSolverPanels).value(),
            all_panels);
  EXPECT_EQ(dense_collector.metrics().counter(obs::metric::kSolverPanelsSkipped).value(),
            0u);
  EXPECT_EQ(dense_run.solution.cost, r.solution.cost);

  obs::RunInfo run;
  run.workload = "mcp";
  run.backend = "word";
  run.n = g.size();
  run.simd_steps = r.total_steps.total();
  std::ostringstream json;
  obs::write_metrics_json(json, collector, run);
  EXPECT_NE(json.str().find("solver.panels"), std::string::npos);
  EXPECT_NE(json.str().find("solver.panels_skipped"), std::string::npos);
  EXPECT_NE(json.str().find("solver.panel_io_saved"), std::string::npos);
  EXPECT_NE(json.str().find("steps.panel_io"), std::string::npos);

  // Observation is free on the tiled path too.
  mcp::Options plain;
  plain.array_side = 4;
  const auto unobserved = mcp::solve(g, 0, plain);
  EXPECT_EQ(unobserved.solution.cost, r.solution.cost);
  EXPECT_TRUE(unobserved.total_steps == r.total_steps);
}

TEST(McpTiled, NonConvergenceReportedLikeFullArray) {
  // A caller-supplied cap below the true path length: same NonConverged
  // outcome and synthesized fault event as the full array.
  util::Rng rng(67);
  const auto ring = graph::directed_ring(12, 8, {1, 5}, rng);
  mcp::Options options;
  options.max_iterations = 2;
  options.array_side = 0;
  const auto full = mcp::solve(ring, 0, options);
  options.array_side = 5;
  const auto tiled = mcp::solve(ring, 0, options);
  ASSERT_EQ(full.outcome, mcp::SolveOutcome::NonConverged);
  EXPECT_EQ(tiled.outcome, full.outcome);
  EXPECT_EQ(tiled.iterations, full.iterations);
  ASSERT_EQ(tiled.fault_events.size(), 1u);
  EXPECT_EQ(tiled.fault_events[0].kind, sim::FaultEventKind::NonConvergence);
}

}  // namespace
}  // namespace ppa
