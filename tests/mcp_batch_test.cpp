// Multi-destination plane batching (mcp/batch.hpp) against the
// per-destination engine: for every generated workload, every batch
// width, both execution backends and both geometries (full array and
// tiled), solve_batch must produce BIT-IDENTICAL rows (SOW costs AND PTN
// pointers), per-destination iteration counts and outcomes to a loop of
// solve() — the per-destination engine is the oracle, and it is itself
// anchored to Dijkstra elsewhere. Only the step PROFILE may differ; its
// amortized PanelIo formula is pinned here too:
//
//   PanelIo = S * blocks^2 * p  +  3 * blocks^2 * sum_m I_m
//
// (S = max member iterations, I_m = member m's iterations: the W panel is
// billed once per panel visit for the whole batch, each active member
// adds 1 fragment row + 2 result columns).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/batch.hpp"
#include "mcp/mcp.hpp"
#include "mcp/tiled.hpp"
#include "obs/collector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa {
namespace {

using sim::StepCategory;
using sim::Word;

std::vector<graph::Vertex> all_destinations(std::size_t n) {
  std::vector<graph::Vertex> dests(n);
  std::iota(dests.begin(), dests.end(), graph::Vertex{0});
  return dests;
}

/// solve_batch vs a solve() loop under identical options: rows, iteration
/// counts and outcomes must match destination for destination.
void expect_batch_matches_sequential(const graph::WeightMatrix& g,
                                     const std::vector<graph::Vertex>& dests,
                                     mcp::Options options, std::size_t batch_width,
                                     const std::string& label) {
  options.batch_width = 1;
  std::vector<mcp::Result> sequential;
  sequential.reserve(dests.size());
  for (const graph::Vertex d : dests) sequential.push_back(mcp::solve(g, d, options));

  options.batch_width = batch_width;
  const std::vector<mcp::Result> batched = mcp::solve_batch(g, dests, options);
  ASSERT_EQ(batched.size(), dests.size()) << label;

  for (std::size_t i = 0; i < dests.size(); ++i) {
    const std::string at = label + " dest=" + std::to_string(dests[i]);
    ASSERT_EQ(batched[i].solution.destination, sequential[i].solution.destination) << at;
    ASSERT_EQ(batched[i].solution.cost, sequential[i].solution.cost) << at;
    ASSERT_EQ(batched[i].solution.next, sequential[i].solution.next) << at;
    ASSERT_EQ(batched[i].iterations, sequential[i].iterations) << at;
    ASSERT_EQ(batched[i].outcome, sequential[i].outcome) << at;
    ASSERT_EQ(batched[i].verify_detail, sequential[i].verify_detail) << at;
  }
}

TEST(McpBatch, DifferentialFuzzAcrossWidthsBackendsAndGeometries) {
  struct Case {
    std::size_t n;
    int bits;
    double density;
    std::size_t array_side;  // 0 = full array
    std::uint64_t seed;
  };
  // Sides straddle the 64-lane plane-word boundary; tiled sides cover
  // even/uneven panel grids with padding blocks.
  const Case cases[] = {
      {2, 4, 0.5, 0, 2},    {3, 8, 0.9, 2, 3},   {7, 6, 0.3, 0, 4},
      {7, 6, 0.3, 3, 5},    {13, 16, 0.2, 5, 6}, {16, 8, 0.08, 0, 7},
      {24, 12, 0.15, 7, 8}, {33, 6, 0.1, 16, 9}, {65, 8, 0.04, 32, 10},
  };
  for (const Case& c : cases) {
    util::Rng rng(c.seed);
    const Word hi = std::max<Word>(1, std::min<Word>(30, (1u << c.bits) - 2));
    const auto g = graph::random_digraph(c.n, c.bits, c.density, {1, hi}, rng);
    // A destination subset (with one duplicate) plus batch widths that
    // leave full, partial and degenerate tail groups.
    std::vector<graph::Vertex> dests = all_destinations(c.n);
    dests.push_back(dests.front());
    for (const std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{7}, c.n}) {
      for (const sim::ExecBackend backend :
           {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
        mcp::Options options;
        options.backend = backend;
        options.array_side = c.array_side;
        options.verify = true;
        std::ostringstream label;
        label << "n=" << c.n << " bits=" << c.bits << " density=" << c.density
              << " p=" << c.array_side << " width=" << width
              << " backend=" << (backend == sim::ExecBackend::Words ? "word" : "plane")
              << " seed=" << c.seed;
        expect_batch_matches_sequential(g, dests, options, width, label.str());
      }
    }
  }
}

TEST(McpBatch, BatchedRowsAnchorToDijkstra) {
  util::Rng rng(77);
  const auto g = graph::random_reachable_digraph(21, 10, 0.15, {1, 40}, 4, rng);
  mcp::Options options;
  options.backend = sim::ExecBackend::BitPlane;
  options.batch_width = 6;
  const std::vector<mcp::Result> batched = mcp::solve_batch(g, all_destinations(21), options);
  for (const mcp::Result& r : batched) {
    test::expect_solves(g, r.solution, "batched dest=" + std::to_string(r.solution.destination));
  }
}

TEST(McpBatch, PanelIoFollowsTheAmortizedFormula) {
  // One group of b destinations on a tiled geometry with the dense
  // schedule (active_panels = false): PanelIo must equal
  // S * blocks^2 * p + 3 * blocks^2 * sum(I_m) exactly — the W panel is
  // shared, the per-member traffic is not. Iteration counts come from the
  // sequential oracle, which the differential test above ties to the
  // batched engine. The active schedule charges at most that and its
  // ledger closes against it (rows stay bit-identical either way).
  util::Rng rng(5150);
  const std::size_t n = 19;
  const std::size_t p = 8;
  const auto g = graph::random_digraph(n, 8, 0.25, {1, 25}, rng);
  const std::vector<graph::Vertex> dests = {0, 5, 11, 17};

  mcp::Options options;
  options.backend = sim::ExecBackend::BitPlane;
  options.array_side = p;
  options.active_panels = false;

  std::vector<std::size_t> iters;
  for (const graph::Vertex d : dests) iters.push_back(mcp::solve(g, d, options).iterations);
  const std::size_t sweeps = *std::max_element(iters.begin(), iters.end());
  const std::size_t sum_iters = std::accumulate(iters.begin(), iters.end(), std::size_t{0});
  const std::size_t blocks = (n + p - 1) / p;

  options.batch_width = dests.size();
  const std::vector<mcp::Result> batched = mcp::solve_batch(g, dests, options);
  ASSERT_EQ(batched.size(), dests.size());
  const std::uint64_t expected =
      static_cast<std::uint64_t>(sweeps * blocks * blocks * p + 3 * blocks * blocks * sum_iters);
  // Steps are shared across the group: every member reports the same
  // whole-group counter (docs/batching.md).
  for (const mcp::Result& r : batched) {
    EXPECT_EQ(r.total_steps.count(StepCategory::PanelIo), expected);
    EXPECT_EQ(r.total_steps.count(StepCategory::GlobalOr), 0u)
        << "batched convergence is host-side";
  }

  // Active schedule: identical rows, PanelIo bounded by the dense charge,
  // and the ledger closes the gap exactly.
  obs::Collector collector;
  mcp::Options active = options;
  active.active_panels = true;
  active.observer = &collector;
  const std::vector<mcp::Result> live = mcp::solve_batch(g, dests, active);
  ASSERT_EQ(live.size(), batched.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].solution.cost, batched[i].solution.cost);
    EXPECT_EQ(live[i].solution.next, batched[i].solution.next);
    EXPECT_EQ(live[i].iterations, batched[i].iterations);
  }
  const std::uint64_t charged = live[0].total_steps.count(StepCategory::PanelIo);
  const std::uint64_t saved =
      collector.metrics().counter(obs::metric::kSolverPanelIoSaved).value();
  EXPECT_LE(charged, expected);
  EXPECT_EQ(charged + saved, expected)
      << "the batched active ledger must close against the amortized formula";
}

TEST(McpBatch, WidthOneDelegatesToThePerDestinationEngine) {
  // batch_width <= 1 must be EXACTLY the sequential engine — including
  // the step counters, not just the rows.
  util::Rng rng(31);
  const auto g = graph::random_digraph(12, 8, 0.3, {1, 20}, rng);
  mcp::Options options;
  options.backend = sim::ExecBackend::BitPlane;
  options.batch_width = 1;
  const std::vector<graph::Vertex> dests = all_destinations(12);
  const std::vector<mcp::Result> batched = mcp::solve_batch(g, dests, options);
  for (std::size_t d = 0; d < dests.size(); ++d) {
    const mcp::Result sequential = mcp::solve(g, d, options);
    ASSERT_EQ(batched[d].solution.cost, sequential.solution.cost);
    ASSERT_EQ(batched[d].solution.next, sequential.solution.next);
    ASSERT_TRUE(batched[d].total_steps == sequential.total_steps)
        << "width-1 batch diverged from the sequential engine at d=" << d;
  }
}

TEST(McpBatch, AllPairsBatchedMatchesSequentialForAllWorkerCounts) {
  util::Rng rng(123);
  const std::size_t n = 23;
  const auto g = graph::random_digraph(n, 8, 0.2, {1, 30}, rng);

  mcp::AllPairsOptions sequential_options;
  sequential_options.mcp.backend = sim::ExecBackend::BitPlane;
  sequential_options.mcp.verify = true;
  const mcp::AllPairsResult sequential = mcp::all_pairs(g, sequential_options);

  for (const std::size_t width : {std::size_t{2}, std::size_t{7}, n}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
      mcp::AllPairsOptions options = sequential_options;
      options.mcp.batch_width = width;
      options.workers = workers;
      const mcp::AllPairsResult batched = mcp::all_pairs(g, options);
      const std::string label =
          "width=" + std::to_string(width) + " workers=" + std::to_string(workers);
      ASSERT_EQ(batched.dist, sequential.dist) << label;
      ASSERT_EQ(batched.next, sequential.next) << label;
      ASSERT_EQ(batched.outcomes, sequential.outcomes) << label;
      ASSERT_EQ(batched.total_iterations, sequential.total_iterations) << label;
      ASSERT_EQ(batched.diameter, sequential.diameter) << label;
    }
  }
}

TEST(McpBatch, AllPairsWordBackendKeepsThePerDestinationPath) {
  // The word backend is the differential oracle: batch_width must be a
  // no-op there, down to the step counters.
  util::Rng rng(9);
  const auto g = graph::random_digraph(10, 8, 0.3, {1, 20}, rng);
  mcp::AllPairsOptions options;
  options.mcp.backend = sim::ExecBackend::Words;
  const mcp::AllPairsResult plain = mcp::all_pairs(g, options);
  options.mcp.batch_width = 4;
  const mcp::AllPairsResult widened = mcp::all_pairs(g, options);
  ASSERT_EQ(widened.dist, plain.dist);
  ASSERT_EQ(widened.next, plain.next);
  ASSERT_TRUE(widened.total_steps == plain.total_steps);
}

TEST(McpBatch, MetricsPinBatchAndPlanCacheCounters) {
  // ppa.metrics.v1 pins: solver.batches / solver.batch_width record the
  // launches, and the broadcast plan cache's per-run hit/miss deltas
  // surface as bus.plan_cache.* (the batched sweep reuses one switch
  // configuration per axis, so hits must dominate after warm-up).
  util::Rng rng(42);
  const std::size_t n = 17;
  const auto g = graph::random_digraph(n, 8, 0.25, {1, 25}, rng);
  obs::Collector collector;
  mcp::Options options;
  options.backend = sim::ExecBackend::BitPlane;
  options.batch_width = 5;
  options.observer = &collector;
  const std::vector<mcp::Result> batched = mcp::solve_batch(g, all_destinations(n), options);
  ASSERT_EQ(batched.size(), n);

  const auto& counters = collector.metrics().counters();
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
  };
  EXPECT_EQ(counter(obs::metric::kSolverBatches), (n + 4) / 5);
  EXPECT_EQ(counter(obs::metric::kSolverBatchWidth), n);  // widths sum over launches
  EXPECT_EQ(counter(obs::metric::kSolverRuns), n);
  EXPECT_GT(counter(obs::metric::kPlanCacheHits), counter(obs::metric::kPlanCacheMisses));
}

}  // namespace
}  // namespace ppa
