// End-to-end: generate → serialize → reload → solve on every machine
// model → cross-verify all of them, plus the E1-style randomized campaign
// in miniature.
#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/gcn.hpp"
#include "baseline/hypercube.hpp"
#include "baseline/mesh_mcp.hpp"
#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "mcp/mcp.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa {
namespace {

using graph::Vertex;

TEST(Integration, FullPipelineOnAllMachines) {
  util::Rng rng(2026);
  const auto generated = graph::random_reachable_digraph(18, 16, 0.12, {1, 40}, 7, rng);

  // Serialize and reload — the solvers consume the reloaded copy.
  const std::string path =
      (std::filesystem::temp_directory_path() / "ppa_integration_graph.txt").string();
  graph::save_graph(path, generated);
  const auto g = graph::load_graph(path);
  std::filesystem::remove(path);
  ASSERT_EQ(g, generated);

  const auto reference = baseline::dijkstra_to(g, 7);

  const auto ppa_result = mcp::solve(g, 7);
  const auto mesh_result = baseline::mesh_solve(g, 7);
  const auto hc_result = baseline::hypercube::minimum_cost_path(g, 7);
  const auto gcn_result = baseline::gcn::solve(g, 7);
  const auto bf_result = baseline::bellman_ford_to(g, 7);
  const auto fw_result = baseline::floyd_warshall(g).toward(7);

  for (const auto& [name, solution] :
       std::initializer_list<std::pair<const char*, const graph::McpSolution&>>{
           {"ppa", ppa_result.solution},
           {"mesh", mesh_result.solution},
           {"hypercube", hc_result.solution},
           {"gcn", gcn_result.solution},
           {"bellman-ford", bf_result.solution},
           {"floyd-warshall", fw_result}}) {
    const auto verdict = graph::verify_solution(g, solution, reference.cost);
    EXPECT_TRUE(verdict.ok) << name << ": " << verdict.detail;
  }

  // All parallel models run the same synchronous DP.
  EXPECT_EQ(ppa_result.iterations, mesh_result.iterations);
  EXPECT_EQ(ppa_result.iterations, hc_result.iterations);
  EXPECT_EQ(ppa_result.iterations, gcn_result.iterations);

  // And the communication hierarchy shows in the unit-cost step totals.
  EXPECT_LT(ppa_result.total_steps.total(), mesh_result.total_steps.total());
}

TEST(Integration, RandomizedCampaignAllModelsAllFamilies) {
  util::Rng rng(31337);
  for (int t = 0; t < 6; ++t) {
    const std::size_t n = 4 + rng.below(14);
    const Vertex d = rng.below(n);
    graph::WeightMatrix g = [&]() -> graph::WeightMatrix {
      switch (t % 3) {
        case 0: return graph::random_digraph(n, 14, 0.3, {1, 20}, rng);
        case 1: return graph::banded(n, 14, 2, {1, 20}, rng);
        default: return graph::directed_ring(n, 14, {1, 20}, rng);
      }
    }();
    const auto reference = baseline::dijkstra_to(g, d);
    const auto check = [&](const char* name, const graph::McpSolution& s) {
      const auto verdict = graph::verify_solution(g, s, reference.cost);
      EXPECT_TRUE(verdict.ok) << name << " t=" << t << ": " << verdict.detail;
    };
    check("ppa", mcp::solve(g, d).solution);
    check("mesh", baseline::mesh_solve(g, d).solution);
    check("hypercube", baseline::hypercube::minimum_cost_path(g, d).solution);
    check("gcn", baseline::gcn::solve(g, d).solution);
  }
}

TEST(Integration, StepCountsReproducibleRunToRun) {
  util::Rng rng(77);
  const auto g = graph::random_digraph(12, 16, 0.25, {1, 25}, rng);
  const auto a = mcp::solve(g, 3);
  const auto b = mcp::solve(g, 3);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.solution.cost, b.solution.cost);
  EXPECT_EQ(a.solution.next, b.solution.next);
}

TEST(Integration, PBoundHoldsAcrossCampaign) {
  // total iterations == bellman rounds + 1 <= p + 1 <= n.
  util::Rng rng(99);
  for (int t = 0; t < 6; ++t) {
    const std::size_t n = 3 + rng.below(16);
    const Vertex d = rng.below(n);
    const auto g = graph::random_reachable_digraph(n, 16, 0.1, {1, 9}, d, rng);
    const std::size_t p = graph::max_mcp_edges(g, d);
    const auto r = mcp::solve(g, d);
    EXPECT_LE(r.iterations, p + 1);
    EXPECT_LE(p, n - 1);
  }
}

}  // namespace
}  // namespace ppa
