// Backend equivalence at the eDSL level: every program here runs twice,
// once on the word backend and once on the bit-plane backend, and must
// produce bit-identical observable state AND an identical StepCounter
// (the counters compare componentwise, including the per-bus-cycle
// max_segment log, so even the charging order must agree).
#include <gtest/gtest.h>

#include <vector>

#include "ppc/parallel.hpp"
#include "ppc/primitives.hpp"
#include "ppc/where.hpp"
#include "util/rng.hpp"

namespace ppa::ppc {
namespace {

using sim::Direction;
using sim::Word;

/// Flattens a Pint into per-PE host words via at() (backend-independent).
std::vector<Word> dump(const Pint& v) {
  const std::size_t count = v.context().machine().pe_count();
  std::vector<Word> out(count);
  for (std::size_t pe = 0; pe < count; ++pe) out[pe] = v.at(pe);
  return out;
}

std::vector<Word> dump(const Pbool& v) {
  const std::size_t count = v.context().machine().pe_count();
  std::vector<Word> out(count);
  for (std::size_t pe = 0; pe < count; ++pe) out[pe] = v.at(pe) ? 1 : 0;
  return out;
}

/// Runs `program` under both backends on otherwise identical machines and
/// compares the returned observations and the full step counters.
template <typename Program>
void expect_backends_agree(sim::MachineConfig cfg, Program&& program, const char* label) {
  cfg.backend = sim::ExecBackend::Words;
  sim::Machine word_machine(cfg);
  cfg.backend = sim::ExecBackend::BitPlane;
  sim::Machine plane_machine(cfg);

  Context word_ctx(word_machine);
  Context plane_ctx(plane_machine);
  const std::vector<Word> word_obs = program(word_ctx);
  const std::vector<Word> plane_obs = program(plane_ctx);

  EXPECT_EQ(word_obs, plane_obs) << label;
  EXPECT_TRUE(word_machine.steps() == plane_machine.steps())
      << label << ": step counters diverged (word " << word_machine.steps().summary()
      << " vs bitplane " << plane_machine.steps().summary() << ")";
}

sim::MachineConfig config(std::size_t n, int bits) {
  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = bits;
  return cfg;
}

TEST(PpcBitPlane, ArithmeticComparisonsAndSelect) {
  for (const std::size_t n : {3u, 9u, 66u}) {
    expect_backends_agree(config(n, 10), [n](Context& ctx) {
      util::Rng rng(n);
      std::vector<Word> a_cells(n * n);
      std::vector<Word> b_cells(n * n);
      const Word inf = ctx.machine().field().infinity();
      for (std::size_t pe = 0; pe < n * n; ++pe) {
        // Include saturating sums: values up past half the field.
        a_cells[pe] = static_cast<Word>(rng.below(inf + 1));
        b_cells[pe] = static_cast<Word>(rng.below(inf + 1));
      }
      const Pint a(ctx, a_cells);
      const Pint b(ctx, b_cells);

      std::vector<Word> obs;
      const auto observe = [&obs](const std::vector<Word>& v) {
        obs.insert(obs.end(), v.begin(), v.end());
      };
      observe(dump(a + b));
      observe(dump(a + Word{7}));
      observe(dump(emin(a, b)));
      observe(dump(emax(a, b)));
      observe(dump(a == b));
      observe(dump(a != b));
      observe(dump(a < b));
      observe(dump(a <= b));
      observe(dump(a == Word{3}));
      observe(dump(a < Word{5}));
      observe(dump(select(a < b, a, b)));
      const Pbool lt = a < b;
      obs.push_back(static_cast<Word>(lt.count()));
      obs.push_back(any(lt) ? 1 : 0);
      observe(dump(lt.to_pint()));
      observe(dump(a.bit(0)));
      observe(dump(a.bit(9)));
      observe(dump(a.or_bit(2, lt)));
      return obs;
    }, "arithmetic");
  }
}

TEST(PpcBitPlane, MaskedStoresAndNestedWhere) {
  expect_backends_agree(config(8, 8), [](Context& ctx) {
    const std::size_t n = 8;
    util::Rng rng(42);
    std::vector<Word> cells(n * n);
    for (auto& c : cells) c = static_cast<Word>(rng.below(200));
    Pint v(ctx, cells);
    const Pint row = row_of(ctx);
    const Pint col = col_of(ctx);

    where(ctx, row < col, [&] {
      v = v + Word{10};
      where(ctx, v.bit(0), [&] { v = Pint(ctx, 1); });
    });
    where(ctx, !(row < col), [&] { v = emax(v, col + Word{3}); });

    Pbool flag(ctx, false);
    where(ctx, v == Word{1}, [&] { flag = Pbool(ctx, true); });
    flag.store_all(flag ^ (row == col));
    v.store_all(select(flag, v, col));

    std::vector<Word> obs = dump(v);
    const std::vector<Word> f = dump(flag);
    obs.insert(obs.end(), f.begin(), f.end());
    obs.push_back(static_cast<Word>(flag.count()));
    return obs;
  }, "masked stores");
}

TEST(PpcBitPlane, PrimitivesShiftBroadcastBusOrMin) {
  for (const std::size_t n : {5u, 12u, 66u}) {
    expect_backends_agree(config(n, 8), [n](Context& ctx) {
      util::Rng rng(n ^ 0xABCD);
      std::vector<Word> cells(n * n);
      const Word inf = ctx.machine().field().infinity();
      for (auto& c : cells) c = static_cast<Word>(rng.below(inf + 1));
      const Pint v(ctx, cells);
      const Pint row = row_of(ctx);
      const Pint col = col_of(ctx);
      const Pbool diag = (row == col);
      const Pbool row_end = (col == static_cast<Word>(n - 1));

      std::vector<Word> obs;
      const auto observe = [&obs](const std::vector<Word>& x) {
        obs.insert(obs.end(), x.begin(), x.end());
      };
      for (const auto dir :
           {Direction::East, Direction::West, Direction::South, Direction::North}) {
        observe(dump(shift(v, dir, /*fill=*/3)));
        observe(dump(shift(diag, dir, /*fill=*/true)));
        observe(dump(broadcast(v, dir, diag)));
        observe(dump(broadcast(diag, dir, row_end)));
        observe(dump(bus_or(v.bit(0), dir, diag)));
      }
      const Pint m = pmin(v, Direction::West, row_end);
      observe(dump(m));
      observe(dump(pmin_orprobe(v, Direction::West, row_end)));
      observe(dump(pmax(v, Direction::West, row_end)));
      // The paper's selected_min floats the bus on an empty selection, so
      // feed it the min attainers (never empty) — exactly the MCP's use.
      observe(dump(selected_min(col, Direction::West, row_end, m == v)));
      observe(dump(selected_min_orprobe(col, Direction::West, row_end, v.bit(0))));
      observe(dump(selected_max_orprobe(v, Direction::West, row_end, !v.bit(0))));
      obs.push_back(any(v == inf) ? 1 : 0);
      return obs;
    }, "primitives");
  }
}

TEST(PpcBitPlane, PartiallyDrivenBusReads) {
  // A Linear-topology broadcast from mid-line leaves upstream PEs
  // undriven; with the ReadZero policy those lanes are defined (0) and
  // both backends must agree on values AND on the driven mask.
  sim::MachineConfig cfg = config(7, 8);
  cfg.topology = sim::BusTopology::Linear;
  cfg.undriven = sim::UndrivenPolicy::ReadZero;
  expect_backends_agree(cfg, [](Context& ctx) {
    const std::size_t n = 7;
    std::vector<Word> cells(n * n);
    for (std::size_t pe = 0; pe < n * n; ++pe) cells[pe] = static_cast<Word>(pe % 101);
    const Pint v(ctx, cells);
    const Pbool mid = (col_of(ctx) == Word{3});

    const Pint east = broadcast(v, Direction::East, mid);
    const Pbool driven = driven_mask(east);
    const Pint sum = east + v;  // consumes undriven lanes as 0 (ReadZero)

    std::vector<Word> obs = dump(driven);
    const std::vector<Word> s = dump(sum);
    obs.insert(obs.end(), s.begin(), s.end());
    const Pint two = two_sided_broadcast(v, Direction::East, mid);
    const std::vector<Word> t = dump(two);
    obs.insert(obs.end(), t.begin(), t.end());
    obs.push_back(static_cast<Word>(driven.count()));

    // The line-structure primitives require a Linear machine.
    for (const auto dir :
         {Direction::East, Direction::West, Direction::South, Direction::North}) {
      const std::vector<Word> up = dump(has_upstream(mid, dir));
      obs.insert(obs.end(), up.begin(), up.end());
      const std::vector<Word> fst = dump(first_in_line(v.bit(1), dir));
      obs.insert(obs.end(), fst.begin(), fst.end());
      const std::vector<Word> near = dump(nearest_upstream(v, mid, dir));
      obs.insert(obs.end(), near.begin(), near.end());
    }
    return obs;
  }, "partially driven");
}

TEST(PpcBitPlane, WordWidthSweep) {
  // h = 1 and h = 32 are the field extremes (plane count 1 / 32). The
  // side shrinks with h: the machine requires n - 1 <= max_finite.
  for (const int bits : {1, 2, 5, 16, 32}) {
    const std::size_t n = bits == 1 ? 1 : bits == 2 ? 3 : 6;
    expect_backends_agree(config(n, bits), [bits, n](Context& ctx) {
      util::Rng rng(static_cast<std::uint64_t>(bits));
      const Word inf = ctx.machine().field().infinity();
      std::vector<Word> cells(n * n);
      for (auto& c : cells) {
        c = static_cast<Word>(rng.next() % (static_cast<std::uint64_t>(inf) + 1));
      }
      const Pint v(ctx, cells);
      const Pbool row_end = (col_of(ctx) == static_cast<Word>(n - 1));

      std::vector<Word> obs = dump(v + v);
      const std::vector<Word> m = dump(pmin(v, Direction::West, row_end));
      obs.insert(obs.end(), m.begin(), m.end());
      obs.push_back(any(v == inf) ? 1 : 0);
      return obs;
    }, "width sweep");
  }
}

}  // namespace
}  // namespace ppa::ppc
