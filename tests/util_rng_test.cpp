#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ppa::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBound> histogram{};
  for (int i = 0; i < kDraws; ++i) histogram[rng.below(kBound)]++;
  const double expected = double{kDraws} / kBound;
  for (const int bucket : histogram) {
    EXPECT_NEAR(bucket, expected, expected * 0.1);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.between(42, 42), 42);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(1234);
  Rng a1 = base.fork(0);
  Rng a2 = base.fork(0);
  Rng b = base.fork(1);
  int equal_ab = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t va = a1.next();
    EXPECT_EQ(va, a2.next());  // same stream id => same sequence
    equal_ab += (va == b.next());
  }
  EXPECT_LT(equal_ab, 3);
}

TEST(Rng, ForkDoesNotDisturbParent) {
  Rng a(55);
  Rng b(55);
  (void)a.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(8);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(items.begin(), items.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleHandlesTinyInputs) {
  Rng rng(8);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(SampleWithoutReplacement, ProducesDistinctValuesInRange) {
  Rng rng(21);
  const auto sample = sample_without_replacement(rng, 50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(SampleWithoutReplacement, FullRangeIsPermutation) {
  Rng rng(21);
  auto sample = sample_without_replacement(rng, 10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacement, RejectsOversizedRequest) {
  Rng rng(1);
  EXPECT_THROW((void)sample_without_replacement(rng, 3, 4), ContractError);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

}  // namespace
}  // namespace ppa::util
