#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace ppa::sim {
namespace {

MachineConfig config_of(std::size_t n, int bits = 8) {
  MachineConfig c;
  c.n = n;
  c.bits = bits;
  return c;
}

TEST(Trace, RecordsEveryPrimitive) {
  Machine m(config_of(3));
  RecordingTrace trace;
  m.set_trace(&trace);

  std::vector<Word> src(9, 1);
  std::vector<Word> dst(9);
  m.shift(src, Direction::South, 0, dst);
  std::vector<Flag> open(9, 0);
  open[4] = 1;
  (void)m.broadcast(src, Direction::East, open);
  std::vector<Flag> bits(9, 0);
  (void)m.wired_or(bits, Direction::West, open);
  (void)m.global_or(bits);
  m.charge_alu(2);

  // The two ALU instructions arrive as ONE bulk event with count 2.
  ASSERT_EQ(trace.events().size(), 5u);
  EXPECT_EQ(trace.events()[4].count, 2u);
  EXPECT_EQ(trace.instruction_count(), 6u);
  EXPECT_EQ(trace.count(StepCategory::Shift), 1u);
  EXPECT_EQ(trace.count(StepCategory::BusBroadcast), 1u);
  EXPECT_EQ(trace.count(StepCategory::BusOr), 1u);
  EXPECT_EQ(trace.count(StepCategory::GlobalOr), 1u);
  EXPECT_EQ(trace.count(StepCategory::Alu), 2u);

  const TraceEvent& bcast = trace.events()[1];
  EXPECT_EQ(bcast.direction, Direction::East);
  EXPECT_EQ(bcast.open_count, 1u);
  EXPECT_EQ(bcast.max_segment, 3u);  // row 1's single open drives the whole row
}

TEST(Trace, EventCountsMatchStepCounters) {
  util::Rng rng(5);
  const auto g = graph::random_digraph(8, 8, 0.3, {1, 9}, rng);
  MachineConfig cfg = config_of(8, 8);
  Machine machine(cfg);
  RecordingTrace trace;
  machine.set_trace(&trace);
  const auto result = mcp::minimum_cost_path(machine, g, 2);

  EXPECT_EQ(trace.count(StepCategory::Alu), result.total_steps.count(StepCategory::Alu));
  EXPECT_EQ(trace.count(StepCategory::BusBroadcast),
            result.total_steps.count(StepCategory::BusBroadcast));
  EXPECT_EQ(trace.count(StepCategory::BusOr), result.total_steps.count(StepCategory::BusOr));
  EXPECT_EQ(trace.count(StepCategory::GlobalOr),
            result.total_steps.count(StepCategory::GlobalOr));
  EXPECT_EQ(trace.instruction_count(), result.total_steps.total());
}

TEST(Trace, DetachStopsRecording) {
  Machine m(config_of(2));
  RecordingTrace trace;
  m.set_trace(&trace);
  m.charge_alu();
  m.set_trace(nullptr);
  m.charge_alu();
  EXPECT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(m.trace(), nullptr);
}

TEST(Trace, ClearResets) {
  RecordingTrace trace;
  trace.on_event(TraceEvent{StepCategory::Shift, Direction::East, 0, 0});
  EXPECT_EQ(trace.events().size(), 1u);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, ToStringFormats) {
  EXPECT_EQ(to_string(TraceEvent{StepCategory::Alu, Direction::North, 0, 0}), "alu");
  EXPECT_EQ(to_string(TraceEvent{StepCategory::Shift, Direction::East, 0, 0}),
            "shift dir=East");
  EXPECT_EQ(to_string(TraceEvent{StepCategory::BusBroadcast, Direction::South, 4, 8}),
            "bus_bcast dir=South open=4 seg=8");
  EXPECT_EQ(to_string(TraceEvent{StepCategory::BusOr, Direction::West, 2, 3}),
            "bus_or dir=West open=2 seg=3");
  EXPECT_EQ(to_string(TraceEvent{StepCategory::GlobalOr, Direction::North, 0, 0}),
            "global_or");
  EXPECT_EQ(to_string(TraceEvent{StepCategory::Alu, Direction::North, 0, 0, 3}), "alu x3");
  // The planes field only renders when a bus cycle moved more than one.
  EXPECT_EQ(to_string(TraceEvent{StepCategory::BusBroadcast, Direction::South, 4, 8, 1, 16}),
            "bus_bcast dir=South open=4 seg=8 planes=16");
  EXPECT_EQ(to_string(TraceEvent{StepCategory::BusOr, Direction::West, 2, 3, 1, 1}),
            "bus_or dir=West open=2 seg=3");
}

TEST(Trace, FaultEventNames) {
  EXPECT_STREQ(name_of(FaultEventKind::BusContention), "bus_contention");
  EXPECT_STREQ(name_of(FaultEventKind::UndrivenRead), "undriven_read");
  EXPECT_STREQ(name_of(FaultEventKind::VerificationFailed), "verification_failed");
  EXPECT_STREQ(name_of(FaultEventKind::NonConvergence), "non_convergence");
}

TEST(Trace, FaultEventToStringFormats) {
  // Bus-related kinds carry the cycle and the first affected PE; the
  // solver-level kinds are bare; counts > 1 render as a multiplier.
  EXPECT_EQ(to_string(FaultEvent{FaultEventKind::BusContention, StepCategory::BusBroadcast,
                                 Direction::South, 3, 7, 2}),
            "bus_contention bus_bcast dir=South pe=(3,7) x2");
  EXPECT_EQ(to_string(FaultEvent{FaultEventKind::UndrivenRead, StepCategory::BusOr,
                                 Direction::East, 0, 1, 1}),
            "undriven_read bus_or dir=East pe=(0,1)");
  EXPECT_EQ(to_string(FaultEvent{FaultEventKind::VerificationFailed, StepCategory::Alu,
                                 Direction::North, 0, 0, 1}),
            "verification_failed");
  EXPECT_EQ(to_string(FaultEvent{FaultEventKind::NonConvergence, StepCategory::Alu,
                                 Direction::North, 0, 0, 3}),
            "non_convergence x3");
}

TEST(Trace, CountWeighsBulkEvents) {
  RecordingTrace trace;
  trace.on_event(TraceEvent{StepCategory::Alu, Direction::North, 0, 0, 5});
  trace.on_event(TraceEvent{StepCategory::Alu, Direction::North, 0, 0, 1});
  trace.on_event(TraceEvent{StepCategory::Shift, Direction::East, 0, 0, 2});
  EXPECT_EQ(trace.count(StepCategory::Alu), 6u);
  EXPECT_EQ(trace.count(StepCategory::Shift), 2u);
  EXPECT_EQ(trace.count(StepCategory::BusOr), 0u);
  EXPECT_EQ(trace.instruction_count(), 8u);
}

TEST(Trace, RecordsFaultEvents) {
  RecordingTrace trace;
  trace.on_fault(FaultEvent{FaultEventKind::UndrivenRead, StepCategory::BusBroadcast,
                            Direction::East, 1, 2, 4});
  ASSERT_EQ(trace.faults().size(), 1u);
  EXPECT_EQ(trace.faults()[0].count, 4u);
  trace.clear();
  EXPECT_TRUE(trace.faults().empty());
}

TEST(Trace, BusEventsCarryPlaneWidth) {
  // A word broadcast reports the field width as its plane count; flag
  // cycles report 1. The bit-plane engine stamps the same numbers (ppc
  // passes the field width / 1 explicitly), which is what lets the
  // observability histograms compare backends.
  Machine m(config_of(3));
  RecordingTrace trace;
  m.set_trace(&trace);
  std::vector<Word> src(9, 1);
  std::vector<Flag> open(9, 0);
  open[0] = 1;
  open[3] = 1;
  open[6] = 1;
  (void)m.broadcast(src, Direction::East, open);
  std::vector<Flag> bits(9, 1);
  (void)m.wired_or(bits, Direction::East, open);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].planes, 8u);
  EXPECT_EQ(trace.events()[1].planes, 1u);
}

}  // namespace
}  // namespace ppa::sim
