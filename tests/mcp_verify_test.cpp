// Certificate checker tests: correct solutions (solver- and
// Dijkstra-produced) are accepted, and every mutation class — inflated or
// deflated costs, wrongly-infinite and wrongly-finite entries, broken or
// cyclic next pointers — is rejected with a non-empty detail. Plus the
// non-convergence regression: an artificially low iteration cap must yield
// SolveOutcome::NonConverged with a structured event, not a throw.
#include "mcp/verify.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

graph::McpSolution reference_solution(const graph::WeightMatrix& g, graph::Vertex d) {
  return baseline::dijkstra_to(g, d);
}

TEST(Certificate, AcceptsSolverAndDijkstraSolutions) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    const auto g = graph::random_digraph(12, 8, 0.25, {1, 20}, rng);
    const graph::Vertex d = static_cast<graph::Vertex>(rng.below(12));
    const CertificateReport dij = check_certificate(g, reference_solution(g, d));
    EXPECT_TRUE(dij.ok) << dij.detail;
    const Result solved = solve(g, d);
    const CertificateReport rep = check_certificate(g, solved.solution);
    EXPECT_TRUE(rep.ok) << rep.detail;
    EXPECT_GT(rep.relaxations_checked, 0u);
  }
}

TEST(Certificate, AcceptsDisconnectedAndTrivialGraphs) {
  const graph::WeightMatrix empty(5, 8);  // no edges: everything unreachable
  const CertificateReport rep = check_certificate(empty, reference_solution(empty, 2));
  EXPECT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.paths_checked, 0u);  // only d is finite, and d needs no chase

  const graph::WeightMatrix one(1, 4);
  EXPECT_TRUE(check_certificate(one, reference_solution(one, 0)).ok);
}

TEST(Certificate, RejectsEveryMutationClass) {
  const auto g = test::tiny_graph();  // costs to 3: {5, 3, 1, 0}
  const graph::McpSolution good = reference_solution(g, 3);
  ASSERT_TRUE(check_certificate(g, good).ok);

  const auto expect_reject = [&](graph::McpSolution bad, const char* label) {
    const CertificateReport rep = check_certificate(g, bad);
    EXPECT_FALSE(rep.ok) << label;
    EXPECT_FALSE(rep.detail.empty()) << label;
  };

  auto m = good;
  m.cost[0] += 1;  // inflated: not achieved by its own path
  expect_reject(m, "inflated cost");

  m = good;
  m.cost[0] -= 1;  // deflated: telescoping fails on the first hop
  expect_reject(m, "deflated cost");

  m = good;
  m.cost[1] = g.infinity();  // wrongly infinite: relaxation 1 -> 3 improves it
  expect_reject(m, "wrongly infinite");

  m = good;
  m.cost[3] = 1;  // destination cost must be exactly 0
  expect_reject(m, "nonzero destination cost");

  m = good;
  m.next[0] = 0;  // self-loop next: chase cannot make progress
  expect_reject(m, "self-loop next pointer");

  m = good;
  m.next[0] = 2;  // 0 -> 2 is not an edge
  expect_reject(m, "next along a non-edge");

  m = good;
  m.next[0] = 7;  // out of range
  expect_reject(m, "next out of range");

  m = good;
  m.cost.pop_back();  // structural: wrong vector length
  expect_reject(m, "truncated cost vector");

  m = good;
  m.destination = 9;  // out of range destination
  expect_reject(m, "destination out of range");
}

TEST(Certificate, RejectsNextCycleAmongFiniteVertices) {
  // 0 <-> 1 plus both connected to d = 2: corrupt next pointers into the
  // 2-cycle 0 -> 1 -> 0; costs kept consistent with a "would-be" path, so
  // only the cycle bound can catch it.
  graph::WeightMatrix g(3, 8);
  g.set(0, 1, 1);
  g.set(1, 0, 1);
  g.set(0, 2, 5);
  g.set(1, 2, 5);
  graph::McpSolution s;
  s.destination = 2;
  s.cost = {5, 5, 0};
  s.next = {1, 0, 2};
  const CertificateReport rep = check_certificate(g, s);
  EXPECT_FALSE(rep.ok);
}

TEST(SolveOutcome, NonConvergenceIsAnOutcomeNotAThrow) {
  util::Rng rng(11);
  // A directed ring needs ~n-1 relaxation iterations: one iteration is
  // provably not enough, so the cap always trips.
  const auto g = graph::directed_ring(10, 8, {1, 5}, rng);
  Options options;
  options.max_iterations = 1;
  const Result r = solve(g, 0, options);
  EXPECT_EQ(r.outcome, SolveOutcome::NonConverged);
  ASSERT_FALSE(r.fault_events.empty());
  EXPECT_EQ(r.fault_events.back().kind, sim::FaultEventKind::NonConvergence);
  EXPECT_EQ(r.iterations, 1u);

  // With retries allowed the fault-free oracle still hits the same cap
  // (the cap is in Options, not the machine), so the outcome persists and
  // the attempts are visible.
  options.max_retries = 1;
  const Result retried = solve(g, 0, options);
  EXPECT_EQ(retried.outcome, SolveOutcome::NonConverged);
  EXPECT_EQ(retried.attempts, 2u);
}

TEST(SolveOutcome, VerifyFlagSetsVerifiedOnCleanRuns) {
  const auto g = test::tiny_graph();
  Options options;
  options.verify = true;
  const Result r = solve(g, 3, options);
  EXPECT_EQ(r.outcome, SolveOutcome::Verified);
  EXPECT_TRUE(r.fault_events.empty());
  EXPECT_EQ(r.attempts, 1u);
  test::expect_solves(g, r.solution, "verified tiny graph");
}

TEST(SolveOutcome, Names) {
  EXPECT_STREQ(name_of(SolveOutcome::Verified), "verified");
  EXPECT_STREQ(name_of(SolveOutcome::NonConverged), "non-converged");
  EXPECT_STREQ(name_of(SolveOutcome::HardwareFault), "hardware-fault");
}

}  // namespace
}  // namespace ppa::mcp
