#include "baseline/gcn.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::baseline::gcn {
namespace {

using graph::Vertex;

TEST(GcnMcp, TinyGraph) {
  const auto g = test::tiny_graph();
  const auto r = solve(g, 3);
  EXPECT_EQ(r.solution.cost, (std::vector<graph::Weight>{5, 3, 1, 0}));
  test::expect_solves(g, r.solution, "gcn-tiny");
}

TEST(GcnMcp, RandomGraphsMatchDijkstra) {
  util::Rng rng(23);
  for (int t = 0; t < 8; ++t) {
    const std::size_t n = 2 + rng.below(14);
    const Vertex d = rng.below(n);
    const auto g = graph::random_digraph(n, 12, 0.3, {1, 20}, rng);
    test::expect_solves(g, solve(g, d).solution, "gcn t=" + std::to_string(t));
  }
}

TEST(GcnMcp, IdenticalOutputsToPpa) {
  util::Rng rng(24);
  const auto g = graph::random_reachable_digraph(15, 16, 0.2, {1, 25}, 6, rng);
  const auto gcn_result = solve(g, 6);
  const auto ppa_result = mcp::solve(g, 6);
  EXPECT_EQ(gcn_result.solution.cost, ppa_result.solution.cost);
  EXPECT_EQ(gcn_result.solution.next, ppa_result.solution.next);
  EXPECT_EQ(gcn_result.iterations, ppa_result.iterations);
}

TEST(GcnMcp, SameWiredOrCyclesNoRoutingBroadcasts) {
  // The parity claim, measurably: identical O(h) wired-OR cycles per
  // iteration; the GCN saves the PPA min()'s routing broadcasts (only the
  // two DP broadcasts per iteration and the init remain).
  util::Rng rng(25);
  const auto g = graph::random_reachable_digraph(12, 16, 0.2, {1, 25}, 3, rng);
  const auto gcn_result = solve(g, 3);
  const auto ppa_result = mcp::solve(g, 3);
  EXPECT_EQ(gcn_result.total_steps.count(sim::StepCategory::BusOr),
            ppa_result.total_steps.count(sim::StepCategory::BusOr));
  EXPECT_LT(gcn_result.total_steps.count(sim::StepCategory::BusBroadcast),
            ppa_result.total_steps.count(sim::StepCategory::BusBroadcast));
  // Exactly 3 DP broadcasts per iteration (statements 10, 16 and 18 — the
  // PTN broadcast is issued every iteration, its store is what's masked)
  // + 2 in the init transpose.
  EXPECT_EQ(gcn_result.total_steps.count(sim::StepCategory::BusBroadcast),
            3 * gcn_result.iterations + 2);
}

TEST(GcnMcp, BusOrCyclesPerIterationEqualTwoH) {
  // min + selected_min = 2h wired-OR cycles per relaxation iteration.
  util::Rng rng(26);
  const auto g = graph::complete(10, 16, {1, 9}, rng);
  const auto r = solve(g, 0);
  EXPECT_EQ(r.total_steps.count(sim::StepCategory::BusOr), 2u * 16u * r.iterations);
}

}  // namespace
}  // namespace ppa::baseline::gcn
