// Differential fuzzing of the two execution backends on the full MCP
// algorithm: for every generated workload the bit-plane run must produce
// a bit-identical solution (SOW costs AND PTN pointers) and an IDENTICAL
// step counter (componentwise, including the max_segment logs) to the
// word-backend run — the word backend is the oracle. Failures print the
// generator parameters, so any case reproduces from the log line alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/mcp.hpp"
#include "mcp/tiled.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa {
namespace {

using sim::Word;

/// Runs solve() under both backends with otherwise identical options and
/// asserts full observable equality.
void expect_backends_identical(const graph::WeightMatrix& g, graph::Vertex destination,
                               mcp::Options options, const std::string& label) {
  options.backend = sim::ExecBackend::Words;
  const mcp::Result word = mcp::solve(g, destination, options);
  options.backend = sim::ExecBackend::BitPlane;
  const mcp::Result plane = mcp::solve(g, destination, options);

  ASSERT_EQ(plane.solution.cost, word.solution.cost) << label;
  ASSERT_EQ(plane.solution.next, word.solution.next) << label;
  ASSERT_EQ(plane.iterations, word.iterations) << label;
  ASSERT_TRUE(plane.init_steps == word.init_steps) << label;
  ASSERT_TRUE(plane.total_steps == word.total_steps)
      << label << ": step counters diverged (word " << word.total_steps.summary()
      << " vs bitplane " << plane.total_steps.summary() << ")";
  // The word backend itself is validated against Dijkstra here, so the
  // chain oracle -> plane is anchored to ground truth too.
  test::expect_solves(g, word.solution, label + " (word oracle)");
}

TEST(McpBackendDiff, RandomGraphsAcrossSizesAndWidths) {
  // Sides straddle the 64-lane plane-word boundary; widths cover the
  // 1..32-bit field range. Density sweeps from near-empty (mostly
  // unreachable, SOW pinned at infinity) to dense.
  struct Case {
    std::size_t n;
    int bits;
    double density;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {1, 8, 0.5, 1},   {2, 4, 0.5, 2},   {3, 2, 0.9, 3},    {7, 6, 0.3, 4},
      {13, 16, 0.2, 5}, {16, 8, 0.05, 6}, {24, 12, 0.15, 7}, {33, 6, 0.1, 8},
      {63, 8, 0.04, 9}, {64, 8, 0.04, 10}, {65, 8, 0.04, 11}, {70, 16, 0.03, 12},
  };
  for (const Case& c : cases) {
    util::Rng rng(c.seed);
    const Word hi = std::max<Word>(1, std::min<Word>(30, (1u << c.bits) - 2));
    const auto g = graph::random_digraph(c.n, c.bits, c.density, {1, hi}, rng);
    std::ostringstream label;
    label << "random n=" << c.n << " bits=" << c.bits << " density=" << c.density
          << " seed=" << c.seed;
    const graph::Vertex dest = c.n > 1 ? static_cast<graph::Vertex>(rng.below(c.n)) : 0;
    expect_backends_identical(g, dest, {}, label.str());
  }
}

TEST(McpBackendDiff, SaturatingWeightsNearInfinity) {
  // Edge weights one step below the field's infinity: nearly every 2-edge
  // path saturates, exercising the add carry chain and the infinity
  // conventions identically on both backends.
  for (const int bits : {4, 5, 8}) {
    const Word inf = (1u << bits) - 1;
    for (const std::uint64_t seed : {21u, 22u}) {
      util::Rng rng(seed);
      const auto g = graph::random_digraph(9, bits, 0.4, {inf - 1, inf - 1}, rng);
      std::ostringstream label;
      label << "maxint bits=" << bits << " seed=" << seed;
      expect_backends_identical(g, 0, {}, label.str());
    }
  }
}

TEST(McpBackendDiff, StructuredFamilies) {
  util::Rng rng(99);
  const graph::WeightRange range{1, 20};
  const auto ring = graph::directed_ring(17, 8, range, rng);
  expect_backends_identical(ring, 5, {}, "ring n=17 seed=99");
  const auto grid = graph::grid_mesh(5, 5, 8, range, rng);
  expect_backends_identical(grid, 12, {}, "grid 5x5 seed=99");
  const auto band = graph::banded(21, 8, 3, range, rng);
  expect_backends_identical(band, 20, {}, "banded n=21 seed=99");
  const auto geo = graph::geometric(18, 10, 0.4, range, rng);
  expect_backends_identical(geo, 0, {}, "geometric n=18 seed=99");
  const auto full = graph::complete(12, 12, range, rng);
  expect_backends_identical(full, 3, {}, "complete n=12 seed=99");
  const auto reachable = graph::random_reachable_digraph(40, 16, 0.05, {1, 30}, 0, rng);
  expect_backends_identical(reachable, 0, {}, "reachable n=40 seed=99");
}

TEST(McpBackendDiff, ReadZeroPolicyOnLinearBuses) {
  // UndrivenPolicy::ReadZero on LINEAR buses: undriven reads return 0
  // instead of throwing, so the policy's masking takes a code path the
  // default Error policy never reaches — it must still be bit-identical
  // across backends. Machines are built by hand because solve() always
  // configures Ring + Error.
  util::Rng rng(41);
  const auto g = graph::random_reachable_digraph(14, 8, 0.25, {1, 20}, 3, rng);
  const auto run = [&](sim::ExecBackend backend) {
    sim::MachineConfig config;
    config.n = g.size();
    config.bits = g.field().bits();
    config.topology = sim::BusTopology::Linear;
    config.undriven = sim::UndrivenPolicy::ReadZero;
    config.backend = backend;
    sim::Machine machine(config);
    mcp::Options options;
    options.broadcast_scheme = mcp::BroadcastScheme::TwoSidedLinear;
    return mcp::minimum_cost_path(machine, g, 3, options);
  };
  const mcp::Result word = run(sim::ExecBackend::Words);
  const mcp::Result plane = run(sim::ExecBackend::BitPlane);
  ASSERT_EQ(plane.solution.cost, word.solution.cost);
  ASSERT_EQ(plane.solution.next, word.solution.next);
  ASSERT_EQ(plane.iterations, word.iterations);
  ASSERT_TRUE(plane.total_steps == word.total_steps)
      << "ReadZero linear: step counters diverged (word " << word.total_steps.summary()
      << " vs bitplane " << plane.total_steps.summary() << ")";
  test::expect_solves(g, word.solution, "ReadZero linear (word oracle)");
}

TEST(McpBackendDiff, AlgorithmVariants) {
  // Both row-minimum variants and both broadcast schemes, with the
  // per-iteration trace on (it reads changed.count() every iteration, an
  // extra host observation that must not disturb either backend).
  util::Rng rng(7);
  const auto g = graph::random_reachable_digraph(19, 8, 0.2, {1, 25}, 2, rng);
  for (const auto variant : {mcp::MinVariant::Paper, mcp::MinVariant::OrProbe}) {
    for (const auto scheme :
         {mcp::BroadcastScheme::SingleRing, mcp::BroadcastScheme::TwoSidedLinear}) {
      mcp::Options options;
      options.min_variant = variant;
      options.broadcast_scheme = scheme;
      options.record_iterations = true;
      std::ostringstream label;
      label << "variant=" << (variant == mcp::MinVariant::Paper ? "paper" : "orprobe")
            << " scheme="
            << (scheme == mcp::BroadcastScheme::SingleRing ? "ring" : "two-sided");
      expect_backends_identical(g, 2, options, label.str());
    }
  }
}

TEST(McpBackendDiff, HostThreadsInvariantOnBothBackends) {
  // MachineConfig::host_threads chunks PE sweeps on the Words backend and
  // plane sweeps / bus cycles on the BitPlane backend. The pinned contract
  // is the same everywhere: results and step counters are bit-identical
  // for every thread count, on both backends, full-array and tiled.
  // plane_sweep_min_words is forced to 1 so the pool actually engages at
  // these small sides (the production threshold would keep every sweep
  // inline and the bit-plane half of the test would be vacuous).
  util::Rng rng(83);
  const auto g = graph::random_reachable_digraph(33, 8, 0.15, {1, 20}, 6, rng);
  const auto run = [&](sim::ExecBackend backend, std::size_t threads, std::size_t side) {
    sim::MachineConfig config;
    config.n = side;
    config.bits = g.field().bits();
    config.backend = backend;
    config.host_threads = threads;
    config.plane_sweep_min_words = 1;
    sim::Machine machine(config);
    return mcp::run_minimum_cost_path(machine, g, 6, {});
  };
  for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
    for (const std::size_t side : {g.size(), std::size_t{8}}) {
      const mcp::Result sequential = run(backend, 1, side);
      for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        const mcp::Result threaded = run(backend, threads, side);
        const std::string label =
            std::string(backend == sim::ExecBackend::Words ? "word" : "bitplane") +
            " side=" + std::to_string(side) + " threads=" + std::to_string(threads);
        ASSERT_EQ(threaded.solution.cost, sequential.solution.cost) << label;
        ASSERT_EQ(threaded.solution.next, sequential.solution.next) << label;
        ASSERT_EQ(threaded.iterations, sequential.iterations) << label;
        ASSERT_TRUE(threaded.total_steps == sequential.total_steps)
            << label << ": host_threads changed the step counter (1 thread "
            << sequential.total_steps.summary() << " vs " << threads << " threads "
            << threaded.total_steps.summary() << ")";
      }
    }
  }
}

}  // namespace
}  // namespace ppa
