#include "analysis/fit.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ppa::analysis {
namespace {

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, FlatLine) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 4, 4};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);  // SS_tot == 0 convention
}

TEST(FitLinear, NoisyLineHasGoodButImperfectR2) {
  util::Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(7.0 + 0.5 * i + (rng.uniform() - 0.5) * 4.0);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, 7.0, 2.0);
  EXPECT_GT(fit.r_squared, 0.98);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(FitLinear, QuadraticDataFitsPoorlyAtSmallScale) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = -10; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(static_cast<double>(i) * i);
  }
  const LinearFit fit = fit_linear(x, y);
  // Symmetric parabola: slope ~0, poor linear explanation.
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_LT(fit.r_squared, 0.1);
}

TEST(FitLinear, Contracts) {
  EXPECT_THROW((void)fit_linear({1}, {2}), util::ContractError);
  EXPECT_THROW((void)fit_linear({1, 2}, {1}), util::ContractError);
  EXPECT_THROW((void)fit_linear({3, 3, 3}, {1, 2, 3}), util::ContractError);
}

TEST(Series, AccumulatesAndFits) {
  Series s{"test", {}, {}};
  s.add(0, 1);
  s.add(1, 3);
  s.add(2, 5);
  const LinearFit fit = s.fit();
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(SpreadRatio, Basics) {
  EXPECT_DOUBLE_EQ(spread_ratio({5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(spread_ratio({2, 8}), 4.0);
  EXPECT_THROW((void)spread_ratio({}), util::ContractError);
  EXPECT_THROW((void)spread_ratio({0, 1}), util::ContractError);
}

}  // namespace
}  // namespace ppa::analysis
