// The utilization profiler's deterministic telemetry: the new counters
// (bus occupancy, SIMD sweep throughput, active lanes) and the convergence
// series are part of the bit-identical contract — independent of host
// worker count, of the thread pool size, and of plane_sweep_min_words, in
// every solver mode (full / tiled / batched, both backends). Plus the
// tiled n = 128 ring: the per-panel change counts expose exactly the
// sparse-panel structure active-panel virtualization needs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/mcp.hpp"
#include "obs/collector.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace ppa::obs {
namespace {

struct ModeConfig {
  sim::ExecBackend backend;
  std::size_t array_side;   // 0 = full array
  std::size_t batch_width;  // 1 = per-destination engine
  const char* label;
};

TEST(Profiler, CountersAreWorkerCountIndependentInEveryMode) {
  util::Rng rng(7);
  const auto g = graph::random_reachable_digraph(12, 8, 0.3, {1, 9}, 0, rng);
  const ModeConfig modes[] = {
      {sim::ExecBackend::Words, 0, 1, "word/full"},
      {sim::ExecBackend::Words, 5, 1, "word/tiled"},
      {sim::ExecBackend::BitPlane, 0, 1, "bitplane/full"},
      {sim::ExecBackend::BitPlane, 5, 1, "bitplane/tiled"},
      {sim::ExecBackend::BitPlane, 0, 4, "bitplane/batched"},
  };
  for (const ModeConfig& mode : modes) {
    auto run = [&](std::size_t workers) {
      auto collector = std::make_unique<Collector>();
      mcp::AllPairsOptions options;
      options.workers = workers;
      options.mcp.backend = mode.backend;
      options.mcp.array_side = mode.array_side;
      options.mcp.batch_width = mode.batch_width;
      options.mcp.observer = collector.get();
      (void)mcp::all_pairs(g, options);
      return collector;
    };
    const auto one = run(1);
    // The telemetry is live in this mode at all (occupancy scans fed the
    // counters, the convergence series filled in)...
    EXPECT_GT(one->metrics().counters().at(metric::kBusTotalWires).value(), 0u)
        << mode.label;
    EXPECT_GT(one->metrics().counters().at(metric::kActiveLanes).value(), 0u)
        << mode.label;
    EXPECT_FALSE(one->convergence().empty()) << mode.label;
    if (mode.array_side != 0) {
      EXPECT_FALSE(one->convergence().front().panel_changes.empty()) << mode.label;
    }

    // ...and none of it depends on how many host workers ran the sweep.
    for (const std::size_t workers : {2u, 4u}) {
      const auto many = run(workers);
      ASSERT_EQ(one->metrics().counters().size(), many->metrics().counters().size())
          << mode.label << " workers=" << workers;
      for (const auto& [name, counter] : one->metrics().counters()) {
        // The plan cache is per worker machine and starts cold, so the
        // hit/miss SPLIT shifts with the destination partitioning; only
        // their sum (lookups) is invariant, checked below.
        if (name == metric::kPlanCacheHits || name == metric::kPlanCacheMisses) continue;
        EXPECT_EQ(counter.value(), many->metrics().counters().at(name).value())
            << mode.label << " " << name << " workers=" << workers;
      }
      const auto lookups = [](const Collector& c) {
        return c.metrics().counters().at(metric::kPlanCacheHits).value() +
               c.metrics().counters().at(metric::kPlanCacheMisses).value();
      };
      EXPECT_EQ(lookups(*one), lookups(*many)) << mode.label << " workers=" << workers;
      for (const auto& [name, hist] : one->metrics().histograms()) {
        EXPECT_EQ(hist.counts(), many->metrics().histograms().at(name).counts())
            << mode.label << " " << name << " workers=" << workers;
        EXPECT_EQ(hist.sum(), many->metrics().histograms().at(name).sum())
            << mode.label << " " << name << " workers=" << workers;
      }
      const auto& first = one->convergence();
      const auto& other = many->convergence();
      ASSERT_EQ(first.size(), other.size()) << mode.label << " workers=" << workers;
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].destination, other[i].destination) << mode.label << " " << i;
        EXPECT_EQ(first[i].iteration, other[i].iteration) << mode.label << " " << i;
        EXPECT_EQ(first[i].active, other[i].active) << mode.label << " " << i;
        EXPECT_EQ(first[i].panel_changes, other[i].panel_changes)
            << mode.label << " " << i;
      }
    }
  }
}

TEST(Profiler, SweepCountersArePoolAndMinWordsIndependent) {
  // simd.sweep.* is billed once per sweep on the controller thread,
  // BEFORE the pool / min-words dispatch decision — so the totals cannot
  // depend on either knob (and a sweep split into chunks still counts
  // once, with its full word footprint).
  util::Rng rng(11);
  const auto g = graph::random_reachable_digraph(17, 8, 0.3, {1, 9}, 0, rng);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const std::size_t host_threads : {1u, 4u}) {
    for (const std::size_t min_words : {1u, 65536u}) {
      sim::MachineConfig cfg;
      cfg.n = g.size();
      cfg.bits = g.field().bits();
      cfg.backend = sim::ExecBackend::BitPlane;
      cfg.host_threads = host_threads;
      cfg.plane_sweep_min_words = min_words;
      sim::Machine machine(cfg);
      Collector collector;
      mcp::Options options;
      options.observer = &collector;
      (void)mcp::minimum_cost_path(machine, g, 0, options);
      const auto& counters = collector.metrics().counters();
      seen.emplace_back(counters.at(metric::kSweepDispatches).value(),
                        counters.at(metric::kSweepWords).value());
    }
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_GT(seen.front().first, 0u);
  EXPECT_GT(seen.front().second, 0u);
  for (const auto& pair : seen) {
    EXPECT_EQ(pair.first, seen.front().first);
    EXPECT_EQ(pair.second, seen.front().second);
  }

  // The word backend has no plane ALU: its sweep counters stay zero
  // (present, so merged registries keep matching shapes).
  sim::MachineConfig cfg;
  cfg.n = g.size();
  cfg.bits = g.field().bits();
  cfg.backend = sim::ExecBackend::Words;
  sim::Machine machine(cfg);
  Collector collector;
  mcp::Options options;
  options.observer = &collector;
  (void)mcp::minimum_cost_path(machine, g, 0, options);
  EXPECT_EQ(collector.metrics().counters().at(metric::kSweepDispatches).value(), 0u);
  EXPECT_EQ(collector.metrics().counters().at(metric::kSweepWords).value(), 0u);
}

TEST(Profiler, TiledRingTelemetryShowsPerPanelSparsity) {
  // Directed ring, n = 128 on a 32 x 32 physical array (4 row blocks,
  // 16 panels per sweep). The DP's wavefront settles one vertex per
  // iteration, so every sample has active = 1 concentrated in exactly one
  // row block — the sparse-panel signal the ROADMAP's active-panel
  // virtualization item wants to consume, now visible in the telemetry.
  util::Rng rng(5);
  const auto g = graph::directed_ring(128, 16, {1, 9}, rng);
  Collector collector;
  mcp::Options options;
  options.observer = &collector;
  options.array_side = 32;
  options.active_panels = false;  // the dense sweep, to pin the waste below
  const auto result = mcp::solve(g, 0, options);
  EXPECT_EQ(result.iterations, 127u);

  const auto& series = collector.convergence();
  ASSERT_EQ(series.size(), 127u);
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    const IterationSample& sample = series[i];
    EXPECT_EQ(sample.iteration, i + 1) << i;
    EXPECT_EQ(sample.active, 1u) << i;
    ASSERT_EQ(sample.panel_changes.size(), 4u) << i;
    std::uint64_t sum = 0;
    std::size_t nonzero = 0;
    for (const std::uint64_t c : sample.panel_changes) {
      sum += c;
      if (c != 0) ++nonzero;
    }
    EXPECT_EQ(sum, sample.active) << i;
    EXPECT_EQ(nonzero, 1u) << i;
  }
  EXPECT_EQ(series.back().active, 0u);  // the settled sweep that ends the loop

  // The dense sweep visits every panel every iteration — the gap the
  // telemetry quantifies: 127 iterations x 16 panels.
  EXPECT_EQ(collector.metrics().counters().at(metric::kSolverPanels).value(),
            127u * 16u);

  // The active-panel schedule consumes exactly this signal: after the
  // first sweep only the single wavefront column block stays dirty, so
  // each of the remaining 126 iterations visits 4 panels (one per row
  // block) instead of 16 — with bit-identical results.
  Collector active_collector;
  mcp::Options active = options;
  active.observer = &active_collector;
  active.active_panels = true;
  const auto active_result = mcp::solve(g, 0, active);
  EXPECT_EQ(active_result.solution.cost, result.solution.cost);
  EXPECT_EQ(active_result.solution.next, result.solution.next);
  EXPECT_EQ(active_result.iterations, result.iterations);
  const auto& counters = active_collector.metrics().counters();
  EXPECT_EQ(counters.at(metric::kSolverPanels).value(), 16u + 126u * 4u);
  EXPECT_EQ(counters.at(metric::kSolverPanelsSkipped).value(),
            127u * 16u - (16u + 126u * 4u));
  EXPECT_EQ(counters.at(metric::kSolverActiveBlocks).value(), 4u + 126u * 1u);
}

}  // namespace
}  // namespace ppa::obs
