# CLI error handling + robustness flags for ppa_mcp. Every malformed
# invocation must exit non-zero with a one-line stderr diagnostic (never an
# uncaught exception abort), and the --faults/--verify/--max-retries path
# must round-trip: a faulty run recovers to a verified, exactly-checkable
# solution. Invoked by ctest with -DTOOL=<binary> -DWORKDIR=<scratch dir>.
if(NOT DEFINED TOOL OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "TOOL and WORKDIR must be defined")
endif()

set(graph_file "${WORKDIR}/tool_errors_graph.txt")
set(solution_file "${WORKDIR}/tool_errors_solution.txt")

# expect_fail(<expected substring in stderr> <tool args...>)
# The command must exit non-zero, must not crash with a signal (cmake
# reports signals as non-numeric rc strings), and must mention the cause.
function(expect_fail expected)
  execute_process(COMMAND ${TOOL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "ppa_mcp ${ARGN} unexpectedly succeeded\nstdout: ${out}")
  endif()
  if(NOT rc MATCHES "^[0-9]+$")
    message(FATAL_ERROR "ppa_mcp ${ARGN} crashed (rc=${rc})\nstderr: ${err}")
  endif()
  if(NOT "${out}${err}" MATCHES "${expected}")
    message(FATAL_ERROR "ppa_mcp ${ARGN}: diagnostic does not mention '${expected}'\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

function(run_ok)
  execute_process(COMMAND ${TOOL} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ppa_mcp ${ARGN} failed (rc=${rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

run_ok(gen --family reachable --n 10 --seed 5 --dest 1 --out ${graph_file})

# --- malformed invocations: one-line error, non-zero exit, no abort ---
expect_fail("usage")                                          # no subcommand
expect_fail("usage" frobnicate)                               # unknown subcommand
expect_fail("unknown flag" solve --graph ${graph_file} --frobnicate)
expect_fail("backend" solve --graph ${graph_file} --dest 1 --backend quantum
            --out ${solution_file})
expect_fail("cannot open" solve --graph ${WORKDIR}/no_such_graph.txt --dest 1
            --out ${solution_file})
expect_fail("fault" solve --graph ${graph_file} --dest 1 --faults bogus:1,2
            --out ${solution_file})
expect_fail("range" solve --graph ${graph_file} --dest 1 --faults dead:99,0
            --out ${solution_file})
# Fault coordinates validate against the PHYSICAL geometry: with
# --array-side 4 the virtualized run of a 10-vertex graph only has rows
# 0..3, so row 7 must be a one-line parse error, while the same spec is
# fine on the full 10x10 array (regression pin: specs used to be checked
# against the graph size instead of the array side).
expect_fail("range" solve --graph ${graph_file} --dest 1 --array-side 4
            --faults dead:7,0 --out ${solution_file})
run_ok(solve --graph ${graph_file} --dest 1 --faults dead:7,0 --verify
       --max-retries 2 --out ${solution_file})
# Transient-bit grammar: wrong arity, phase >= period, and out-of-range
# lines are all one-line errors.
expect_fail("fault" solve --graph ${graph_file} --dest 1
            --faults "transient-bit:row,1,3,1" --out ${solution_file})
expect_fail("fault" solve --graph ${graph_file} --dest 1
            --faults "transient-bit:row,1,3,1,4,7" --out ${solution_file})
expect_fail("range" solve --graph ${graph_file} --dest 1 --array-side 4
            --faults "transient-bit:row,9,3,1,4,1" --out ${solution_file})
# --recovery validation: unknown policy, ECC off the bit-plane backend,
# and recovery under a non-PPA model are all one-line errors.
expect_fail("recovery" solve --graph ${graph_file} --dest 1 --recovery voodoo
            --out ${solution_file})
expect_fail("bitplane" solve --graph ${graph_file} --dest 1 --recovery ecc
            --backend word --out ${solution_file})
expect_fail("model=ppa" solve --graph ${graph_file} --dest 1 --model gcn
            --recovery tmr --out ${solution_file})
expect_fail("not an integer" solve --graph ${graph_file} --dest xyz
            --out ${solution_file})
expect_fail("max-retries" solve --graph ${graph_file} --dest 1 --max-retries -3
            --out ${solution_file})
expect_fail("model=ppa" solve --graph ${graph_file} --dest 1 --model gcn --verify
            --out ${solution_file})
expect_fail("workers" allpairs --graph ${graph_file} --workers 0)
expect_fail("cannot open" allpairs --graph ${WORKDIR}/no_such_graph.txt)
expect_fail("fault" allpairs --graph ${graph_file} --faults "stuck-bit:row,0,99,1")

# --- the robustness flags end to end: a dead PE corrupts the run, the
# retry on the fault-free oracle recovers it, and the written solution
# passes the independent verify subcommand.
run_ok(solve --graph ${graph_file} --dest 1 --faults dead:1,2 --verify
       --max-retries 2 --out ${solution_file})
if(NOT last_output MATCHES "outcome=verified")
  message(FATAL_ERROR "faulty solve with retries did not verify: ${last_output}")
endif()
run_ok(verify --graph ${graph_file} --solution ${solution_file})
if(NOT last_output MATCHES "OK")
  message(FATAL_ERROR "recovered solution failed independent verify: ${last_output}")
endif()

# Without retries the same fault must surface as a non-zero exit carrying
# the outcome in stdout.
execute_process(COMMAND ${TOOL} solve --graph ${graph_file} --dest 1
                        --faults dead:1,2 --verify --out ${solution_file}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "faulty solve without retries exited 0:\n${out}")
endif()
if(NOT out MATCHES "outcome=(verification-failed|hardware-fault|non-converged)")
  message(FATAL_ERROR "faulty solve did not report a failure outcome:\n${out}")
endif()

# --- fault masking end to end (docs/robustness.md): the same stuck bus
# wire is corrected in place by ECC parity planes and by TMR voting, with
# zero retries, and the written solutions pass the independent verifier.
run_ok(solve --graph ${graph_file} --dest 1 --backend bitplane --recovery ecc
       --faults "stuck-bit:row,1,3,1" --verify --out ${solution_file})
if(NOT last_output MATCHES "outcome=verified" OR NOT last_output MATCHES "attempts=1")
  message(FATAL_ERROR "ECC-masked solve did not verify on the first attempt: ${last_output}")
endif()
if(NOT last_output MATCHES "masking: votes=[1-9]")
  message(FATAL_ERROR "ECC-masked solve did not report masking counters: ${last_output}")
endif()
run_ok(verify --graph ${graph_file} --solution ${solution_file})
run_ok(solve --graph ${graph_file} --dest 1 --recovery tmr
       --faults "transient-bit:row,1,3,1,5,2" --verify --out ${solution_file})
if(NOT last_output MATCHES "outcome=verified" OR NOT last_output MATCHES "attempts=1")
  message(FATAL_ERROR "TMR-masked solve did not verify on the first attempt: ${last_output}")
endif()
run_ok(verify --graph ${graph_file} --solution ${solution_file})

# Checked allpairs with retries: per-destination outcomes, all recovered.
run_ok(allpairs --graph ${graph_file} --faults dead:1,2 --verify --max-retries 2
       --workers 2)
if(NOT last_output MATCHES "outcomes: 10/10 ok")
  message(FATAL_ERROR "allpairs with retries did not recover all destinations: ${last_output}")
endif()

# --- observability flags: metrics + chrome trace round-trip ---
set(metrics_file "${WORKDIR}/tool_errors_metrics.json")
set(chrome_file "${WORKDIR}/tool_errors_trace.json")
run_ok(solve --graph ${graph_file} --dest 1 --verify --stats
       --metrics-out ${metrics_file} --trace-chrome ${chrome_file}
       --out ${solution_file})
if(NOT last_output MATCHES "run: workload=mcp")
  message(FATAL_ERROR "--stats did not print the run summary: ${last_output}")
endif()
if(NOT EXISTS ${metrics_file} OR NOT EXISTS ${chrome_file})
  message(FATAL_ERROR "--metrics-out / --trace-chrome did not write their files")
endif()
file(READ ${metrics_file} metrics_text)
if(NOT metrics_text MATCHES "ppa\\.metrics\\.v1")
  message(FATAL_ERROR "metrics dump missing the schema marker:\n${metrics_text}")
endif()
file(READ ${chrome_file} chrome_text)
if(NOT chrome_text MATCHES "^\\[" OR NOT chrome_text MATCHES "traceEvents|\"ph\"")
  message(FATAL_ERROR "chrome trace is not a trace_event JSON array:\n${chrome_text}")
endif()

# The observability flags are PPA-model-only, and unwritable paths are
# one-line errors, not crashes.
expect_fail("model=ppa" solve --graph ${graph_file} --dest 1 --model mesh
            --metrics-out ${metrics_file} --out ${solution_file})
expect_fail("cannot" solve --graph ${graph_file} --dest 1
            --trace-chrome ${WORKDIR}/no_such_dir/trace.json --out ${solution_file})

# --- fault tally: any recorded FaultEvents surface as one stderr line ---
execute_process(COMMAND ${TOOL} solve --graph ${graph_file} --dest 1
                        --faults dead:1,2 --verify --max-retries 2
                        --out ${solution_file}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulty solve with retries failed (rc=${rc}): ${err}")
endif()
if(NOT err MATCHES "fault-events: ")
  message(FATAL_ERROR "faulty run did not print the fault tally on stderr:\n${err}")
endif()
if(NOT err MATCHES "verification_failed=1")
  message(FATAL_ERROR "fault tally is missing the verification failure:\n${err}")
endif()

# A clean run stays silent on stderr.
execute_process(COMMAND ${TOOL} solve --graph ${graph_file} --dest 1 --verify
                        --out ${solution_file}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean solve failed (rc=${rc})")
endif()
if(err MATCHES "fault-events")
  message(FATAL_ERROR "clean run printed a fault tally:\n${err}")
endif()

file(REMOVE ${graph_file} ${solution_file} ${metrics_file} ${chrome_file})
message(STATUS "tool error handling OK")
