#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace ppa::util {
namespace {

TEST(FormatNumber, Integers) {
  EXPECT_EQ(format_number(0), "0");
  EXPECT_EQ(format_number(42), "42");
  EXPECT_EQ(format_number(-17), "-17");
  EXPECT_EQ(format_number(1000000), "1000000");
}

TEST(FormatNumber, Fractions) {
  EXPECT_EQ(format_number(1.5), "1.5000");
  EXPECT_EQ(format_number(0.25), "0.2500");
}

TEST(FormatNumber, ExtremeMagnitudesUseScientific) {
  // Integer-valued doubles print exactly; fractional large/small magnitudes
  // switch to %.4g.
  EXPECT_EQ(format_number(1.23456e9), "1234560000");
  EXPECT_EQ(format_number(1234567890.123), "1.235e+09");
  EXPECT_EQ(format_number(0.000123), "0.000123");
}

TEST(FormatNumber, NonFinite) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table("t", {}), ContractError);
}

TEST(Table, RejectsMismatchedRows) {
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({Cell{std::int64_t{1}}}), ContractError);
}

TEST(Table, StoresAndReadsBack) {
  Table t("demo", {"name", "count", "ratio"});
  t.add_row({Cell{std::string{"x"}}, Cell{std::int64_t{3}}, Cell{1.5}});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "x");
  EXPECT_EQ(std::get<std::int64_t>(t.at(0, 1)), 3);
  EXPECT_THROW((void)t.at(1, 0), ContractError);
}

TEST(Table, NumericRowConvenience) {
  Table t("nums", {"x", "y"});
  t.add_numeric_row({1.0, 2.0});
  t.add_numeric_row({3.0, 4.0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(std::get<double>(t.at(1, 1)), 4.0);
}

TEST(Table, TextRenderingAlignsColumns) {
  Table t("demo", {"col", "value"});
  t.add_row({Cell{std::string{"short"}}, Cell{std::int64_t{1}}});
  t.add_row({Cell{std::string{"a-much-longer-cell"}}, Cell{std::int64_t{22}}});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-cell"), std::string::npos);
  // Header row and rule line are present.
  EXPECT_NE(text.find("col"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t("demo", {"a", "b"});
  t.add_row({Cell{std::string{"x,y"}}, Cell{2.5}});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\n\"x,y\",2.5000\n");
}

TEST(Table, PrintWritesToStream) {
  Table t("demo", {"a"});
  t.add_row({Cell{std::int64_t{1}}});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace ppa::util
