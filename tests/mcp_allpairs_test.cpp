// All-pairs, eccentricity and diameter on the PPA vs Floyd–Warshall.
#include "mcp/allpairs.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace ppa::mcp {
namespace {

using graph::Vertex;
using graph::WeightMatrix;

TEST(AllPairs, MatchesFloydWarshall) {
  util::Rng rng(41);
  for (int t = 0; t < 4; ++t) {
    const std::size_t n = 3 + rng.below(10);
    const auto g = graph::random_digraph(n, 16, 0.25, {1, 20}, rng);
    const auto machine_result = all_pairs(g);
    const auto host = baseline::floyd_warshall(g);
    ASSERT_EQ(machine_result.n, n);
    for (Vertex i = 0; i < n; ++i) {
      for (Vertex j = 0; j < n; ++j) {
        EXPECT_EQ(machine_result.dist_at(i, j), host.dist_at(i, j))
            << "pair " << i << "," << j;
      }
    }
  }
}

TEST(AllPairs, DiameterIsMaxFiniteEntry) {
  util::Rng rng(43);
  const auto g = graph::random_digraph(9, 16, 0.3, {1, 15}, rng);
  const auto machine_result = all_pairs(g);
  graph::Weight expected = 0;
  for (const auto dist : machine_result.dist) {
    if (dist != g.infinity()) expected = std::max(expected, dist);
  }
  EXPECT_EQ(machine_result.diameter, expected);
}

TEST(AllPairs, PathsAreValid) {
  util::Rng rng(44);
  const auto g = graph::random_digraph(8, 16, 0.3, {1, 15}, rng);
  const auto machine_result = all_pairs(g);
  for (Vertex d = 0; d < 8; ++d) {
    graph::McpSolution slice;
    slice.destination = d;
    slice.cost.resize(8);
    slice.next.resize(8);
    for (Vertex i = 0; i < 8; ++i) {
      slice.cost[i] = machine_result.dist_at(i, d);
      slice.next[i] = machine_result.next_at(i, d);
    }
    test::expect_solves(g, slice, "all-pairs d=" + std::to_string(d));
  }
}

TEST(Eccentricity, HandGraph) {
  // Path 0 -> 1 -> 2 with weights 2, 3: costs into 2 are {5, 3, 0}.
  WeightMatrix g(3, 8);
  g.set(0, 1, 2);
  g.set(1, 2, 3);
  const auto r = solve_eccentricity(g, 2);
  EXPECT_EQ(r.eccentricity, 5u);
  EXPECT_GT(r.reduction_steps.total(), 0u);
  EXPECT_EQ(r.reduction_steps.count(sim::StepCategory::BusOr),
            static_cast<std::uint64_t>(g.field().bits()));
}

TEST(Eccentricity, IgnoresUnreachableSources) {
  WeightMatrix g(4, 8);
  g.set(0, 1, 7);
  // vertices 2, 3 cannot reach 1.
  const auto r = solve_eccentricity(g, 1);
  EXPECT_EQ(r.eccentricity, 7u);
}

TEST(Eccentricity, IsolatedDestinationIsZero) {
  const WeightMatrix g(4, 8);
  const auto r = solve_eccentricity(g, 2);
  EXPECT_EQ(r.eccentricity, 0u);  // only (d,d) = 0 is finite
}

TEST(Eccentricity, MatchesHostMaxOverDijkstra) {
  util::Rng rng(45);
  for (int t = 0; t < 6; ++t) {
    const std::size_t n = 3 + rng.below(12);
    const Vertex d = rng.below(n);
    const auto g = graph::random_digraph(n, 16, 0.3, {1, 20}, rng);
    const auto machine_result = solve_eccentricity(g, d);
    const auto host = baseline::dijkstra_to(g, d);
    graph::Weight expected = 0;
    for (const auto cost : host.cost) {
      if (cost != g.infinity()) expected = std::max(expected, cost);
    }
    EXPECT_EQ(machine_result.eccentricity, expected) << "n=" << n << " d=" << d;
  }
}

TEST(Eccentricity, VirtualizedMatchesDenseOnBothBackendsAndSchedules) {
  // solve_eccentricity honoring Options::array_side: the tiled MCP run
  // plus the block-folded reduction must reproduce the full-array
  // eccentricity exactly — per backend, active panels on or off.
  util::Rng rng(47);
  for (int t = 0; t < 3; ++t) {
    const std::size_t n = 9 + rng.below(10);
    const Vertex d = rng.below(n);
    const auto g = graph::random_digraph(n, 16, 0.3, {1, 20}, rng);
    const auto dense = solve_eccentricity(g, d);
    for (const auto backend : {sim::ExecBackend::Words, sim::ExecBackend::BitPlane}) {
      for (const bool active : {false, true}) {
        Options options;
        options.backend = backend;
        options.array_side = 4;
        options.active_panels = active;
        const auto tiled = solve_eccentricity(g, d, options);
        EXPECT_EQ(tiled.eccentricity, dense.eccentricity)
            << "n=" << n << " d=" << d << " active=" << active;
        EXPECT_EQ(tiled.mcp.solution.cost, dense.mcp.solution.cost)
            << "n=" << n << " d=" << d << " active=" << active;
        EXPECT_EQ(tiled.mcp.iterations, dense.mcp.iterations)
            << "n=" << n << " d=" << d << " active=" << active;
        EXPECT_GT(tiled.reduction_steps.count(sim::StepCategory::PanelIo), 0u)
            << "virtualized reduction must move cost fragments over PanelIo";
      }
    }
  }
}

TEST(AllPairs, AccumulatedStepsConsistent) {
  util::Rng rng(46);
  const auto g = graph::random_digraph(6, 16, 0.4, {1, 9}, rng);
  const auto machine_result = all_pairs(g);
  // n runs, each >= init + 1 iteration; the reused machine accumulated
  // everything.
  EXPECT_GE(machine_result.total_iterations, g.size());
  EXPECT_GT(machine_result.total_steps.total(), 0u);
  EXPECT_EQ(machine_result.total_steps.count(sim::StepCategory::GlobalOr),
            machine_result.total_iterations);
}

}  // namespace
}  // namespace ppa::mcp
