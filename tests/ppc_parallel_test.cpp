// Masked-SIMD semantics of the PPC layer: parallel variables, where /
// elsewhere, operator evaluation, and step charging.
#include "ppc/parallel.hpp"

#include <gtest/gtest.h>

#include "ppc/primitives.hpp"
#include "ppc/where.hpp"
#include "util/check.hpp"

namespace ppa::ppc {
namespace {

sim::MachineConfig config_of(std::size_t n, int bits = 8) {
  sim::MachineConfig c;
  c.n = n;
  c.bits = bits;
  return c;
}

TEST(Parallel, DeclarationFillsEveryPe) {
  sim::Machine m(config_of(3));
  Context ctx(m);
  const Pint x(ctx, 7);
  for (std::size_t pe = 0; pe < 9; ++pe) EXPECT_EQ(x.at(pe), 7u);
  const Pbool b(ctx, true);
  EXPECT_EQ(b.count(), 9u);
}

TEST(Parallel, DeclarationRejectsUnrepresentable) {
  sim::Machine m(config_of(3, 4));
  Context ctx(m);
  EXPECT_NO_THROW(Pint(ctx, 15));
  EXPECT_THROW(Pint(ctx, 16), util::ContractError);
}

TEST(Parallel, RowColConstants) {
  sim::Machine m(config_of(3));
  Context ctx(m);
  const Pint r = row_of(ctx);
  const Pint c = col_of(ctx);
  EXPECT_EQ(r.at(2, 1), 2u);
  EXPECT_EQ(c.at(2, 1), 1u);
}

TEST(Parallel, MaskedAssignmentOnlyWritesActivePes) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  Pint x(ctx, 0);
  const Pint fives(ctx, 5);
  const Pbool top_row = (row_of(ctx) == Word{0});
  where(ctx, top_row, [&] { x = fives; });
  EXPECT_EQ(x.at(0, 0), 5u);
  EXPECT_EQ(x.at(0, 1), 5u);
  EXPECT_EQ(x.at(1, 0), 0u);
  EXPECT_EQ(x.at(1, 1), 0u);
}

TEST(Parallel, WhereElsePartitions) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  Pint x(ctx, 0);
  const Pbool diag = (row_of(ctx) == col_of(ctx));
  where_else(
      ctx, diag, [&] { x = Pint(ctx, 1); }, [&] { x = Pint(ctx, 2); });
  EXPECT_EQ(x.at(0, 0), 1u);
  EXPECT_EQ(x.at(1, 1), 1u);
  EXPECT_EQ(x.at(0, 1), 2u);
  EXPECT_EQ(x.at(1, 0), 2u);
}

TEST(Parallel, NestedWheresAndCompose) {
  sim::Machine m(config_of(3));
  Context ctx(m);
  Pint x(ctx, 0);
  const Pbool row0 = (row_of(ctx) == Word{0});
  const Pbool col0 = (col_of(ctx) == Word{0});
  where(ctx, row0, [&] {
    where(ctx, col0, [&] { x = Pint(ctx, 9); });
  });
  EXPECT_EQ(x.at(0, 0), 9u);
  EXPECT_EQ(x.at(0, 1), 0u);
  EXPECT_EQ(x.at(1, 0), 0u);
  EXPECT_EQ(ctx.mask_depth(), 0u);
}

TEST(Parallel, MaskRestoredAfterException) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  const Pbool cond(ctx, true);
  EXPECT_THROW(where(ctx, cond, [&] { throw std::runtime_error("x"); }), std::runtime_error);
  EXPECT_EQ(ctx.mask_depth(), 0u);
  EXPECT_TRUE(ctx.mask_is_full());
}

TEST(Parallel, ExpressionsEvaluateUnmasked) {
  // Operators run on every PE; only stores are masked.
  sim::Machine m(config_of(2));
  Context ctx(m);
  Pint x(ctx, 3);
  Pint y(ctx, 0);
  const Pbool nothing(ctx, false);
  where(ctx, nothing, [&] { y = x + Word{1}; });
  for (std::size_t pe = 0; pe < 4; ++pe) EXPECT_EQ(y.at(pe), 0u);  // no store happened
  const Pint z = x + Word{1};  // outside any where: plain expression
  for (std::size_t pe = 0; pe < 4; ++pe) EXPECT_EQ(z.at(pe), 4u);
}

TEST(Parallel, SaturatingAdd) {
  sim::Machine m(config_of(2, 4));  // infinity = 15
  Context ctx(m);
  const Pint a(ctx, 9);
  const Pint b(ctx, 9);
  const Pint s = a + b;
  for (std::size_t pe = 0; pe < 4; ++pe) EXPECT_EQ(s.at(pe), 15u);
  const Pint inf(ctx, 15);
  const Pint t = inf + Word{1};
  for (std::size_t pe = 0; pe < 4; ++pe) EXPECT_EQ(t.at(pe), 15u);
}

TEST(Parallel, ComparisonsAndLogic) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  const Pint r = row_of(ctx);
  const Pint c = col_of(ctx);
  EXPECT_EQ((r == c).count(), 2u);
  EXPECT_EQ((r != c).count(), 2u);
  EXPECT_EQ((r < c).count(), 1u);   // only (0,1)
  EXPECT_EQ((r <= c).count(), 3u);
  EXPECT_EQ((r < Word{1}).count(), 2u);  // row 0
  const Pbool a = (r == Word{0});
  const Pbool b = (c == Word{0});
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a ^ b).count(), 2u);
  EXPECT_EQ((!a).count(), 2u);
  EXPECT_EQ((a == b).count(), 2u);
  EXPECT_EQ((a != b).count(), 2u);
}

TEST(Parallel, EminEmaxSelect) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  const Pint r = row_of(ctx);
  const Pint c = col_of(ctx);
  const Pint lo = emin(r, c);
  const Pint hi = emax(r, c);
  EXPECT_EQ(lo.at(0, 1), 0u);
  EXPECT_EQ(hi.at(0, 1), 1u);
  const Pint sel = select(r == c, Pint(ctx, 8), Pint(ctx, 9));
  EXPECT_EQ(sel.at(0, 0), 8u);
  EXPECT_EQ(sel.at(0, 1), 9u);
}

TEST(Parallel, BitPlanesRoundTrip) {
  sim::Machine m(config_of(2, 8));
  Context ctx(m);
  const Pint x(ctx, 0b10110101);
  EXPECT_EQ(x.bit(0).count(), 4u);
  EXPECT_TRUE(x.bit(7).at(0));
  EXPECT_FALSE(x.bit(6).at(0));
  EXPECT_THROW((void)x.bit(8), util::ContractError);
  EXPECT_THROW((void)x.bit(-1), util::ContractError);

  // Reassemble the value from its planes with or_bit.
  Pint rebuilt(ctx, 0);
  for (int j = 0; j < 8; ++j) rebuilt = rebuilt.or_bit(j, x.bit(j));
  for (std::size_t pe = 0; pe < 4; ++pe) EXPECT_EQ(rebuilt.at(pe), x.at(pe));
}

TEST(Parallel, ToPintAndBack) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  const Pbool diag = (row_of(ctx) == col_of(ctx));
  const Pint as_int = diag.to_pint();
  EXPECT_EQ(as_int.at(0, 0), 1u);
  EXPECT_EQ(as_int.at(0, 1), 0u);
}

TEST(Parallel, StoreAllIgnoresMask) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  Pint x(ctx, 0);
  const Pbool nothing(ctx, false);
  where(ctx, nothing, [&] { x.store_all(6); });
  for (std::size_t pe = 0; pe < 4; ++pe) EXPECT_EQ(x.at(pe), 6u);
}

TEST(Parallel, CrossMachineOperandsRejected) {
  sim::Machine m1(config_of(2));
  sim::Machine m2(config_of(2));
  Context c1(m1);
  Context c2(m2);
  const Pint a(c1, 1);
  const Pint b(c2, 1);
  EXPECT_THROW((void)(a + b), util::ContractError);
  Pint x(c1, 0);
  EXPECT_THROW(x = b, util::ContractError);
}

TEST(Parallel, EveryOperationChargesSteps) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  const auto base = m.steps().total();
  const Pint a(ctx, 1);                 // +1 store
  const Pint b(ctx, 2);                 // +1
  const Pint c = a + b;                 // +1
  const Pbool eq = (a == b);            // +1
  (void)c;
  (void)eq;
  EXPECT_EQ(m.steps().total() - base, 4u);
}

TEST(Parallel, PopWithoutPushRejected) {
  sim::Machine m(config_of(2));
  Context ctx(m);
  EXPECT_THROW(ctx.pop_mask(), util::ContractError);
}

TEST(Parallel, UndrivenConsumptionThrowsUnderErrorPolicy) {
  auto cfg = config_of(4);
  cfg.topology = sim::BusTopology::Linear;
  sim::Machine m(cfg);
  Context ctx(m);
  const Pint src = row_of(ctx);
  // Open only in row 0 at column 1: columns 0..1 of row 0 float, and every
  // other row floats entirely.
  const Pbool open = (row_of(ctx) == Word{0}) & (col_of(ctx) == Word{1});
  const Pint received = broadcast(src, sim::Direction::East, open);
  EXPECT_FALSE(received.fully_driven());
  Pint sink(ctx, 0);
  EXPECT_THROW(sink = received, util::ContractError);
  // Masking the store to driven PEs only is fine.
  const Pbool safe = (row_of(ctx) == Word{0}) & !(col_of(ctx) < Word{2});
  EXPECT_NO_THROW(where(ctx, safe, [&] { sink = received; }));
  EXPECT_EQ(sink.at(0, 2), 0u);  // value injected by row 0's driver
}

TEST(Parallel, UndrivenReadZeroPolicyStoresZero) {
  auto cfg = config_of(4);
  cfg.topology = sim::BusTopology::Linear;
  cfg.undriven = sim::UndrivenPolicy::ReadZero;
  sim::Machine m(cfg);
  Context ctx(m);
  const Pint src(ctx, 9);
  const Pbool open = (row_of(ctx) == Word{0}) & (col_of(ctx) == Word{1});
  const Pint received = broadcast(src, sim::Direction::East, open);
  Pint sink(ctx, 7);
  EXPECT_NO_THROW(sink = received);
  EXPECT_EQ(sink.at(0, 0), 0u);  // floating read becomes 0
  EXPECT_EQ(sink.at(0, 2), 9u);
  EXPECT_EQ(sink.at(3, 3), 0u);
}

}  // namespace
}  // namespace ppa::ppc
