// Deterministic hardware fault injection.
//
// Real polymorphic arrays fail in the reconfiguration layer the paper's
// algorithm depends on: switch boxes jam (stuck-open segments the bus where
// the program wanted a through-connection, stuck-closed merges segments the
// program meant to keep apart), individual bus wires short to power or
// ground (stuck-at bits), and whole PEs die. A FaultModel is a seedable,
// reproducible description of such defects; Machine::inject_faults compiles
// it into per-axis masks applied identically by BOTH execution backends
// (word and bit-plane), so the backend-differential oracle extends to
// faulty runs: under the same FaultModel the two backends still agree bit
// for bit.
//
// Semantics (applied around the fault-free bus kernels, per cycle):
//   * effective switch setting = (program Open | stuck-open) & ~stuck-closed;
//   * a dead PE never drives (its injected value is removed; a broadcast
//     segment whose only driver is dead floats undriven) and always reads 0;
//   * a stuck bus-line bit forces that wire of every PE's received value on
//     the faulty line (bit 0 for flag/wired-OR cycles); driven flags are a
//     host bookkeeping notion and are not affected by stuck bits.
//
// In checked execution (MachineConfig::checked) a program driver whose
// switch is forced closed is reported as bus contention: it injects into a
// segment it no longer bounds, so its value collides with the upstream
// driver's.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/bit_planes.hpp"
#include "sim/bus.hpp"
#include "sim/geometry.hpp"

namespace ppa::sim {

enum class FaultKind : std::uint8_t {
  StuckOpen,    // switch box jammed Open (always segments + injects)
  StuckClosed,  // switch box jammed Short (never segments, never injects)
  StuckBit,     // one wire of one bus line stuck at 0 or 1
  DeadPe,       // PE never drives any bus and reads 0 from every bus
};

[[nodiscard]] const char* name_of(FaultKind kind) noexcept;

/// One hardware defect. Field meaning depends on `kind`:
///   StuckOpen/StuckClosed — axis + (row, col) of the jammed switch box;
///   StuckBit              — axis, `row` = bus line index (row number on the
///                           Row axis, column number on the Column axis),
///                           `bit` = wire index, `stuck_value` = forced level;
///   DeadPe                — (row, col) of the dead PE; axis ignored.
///
/// A StuckBit with `period` > 0 is TRANSIENT: it afflicts a bus cycle only
/// when the machine's bus-cycle index satisfies cycle % period == phase (a
/// deterministic stand-in for intermittent contacts / coupling glitches —
/// seed-reproducible, identical under both backends). period == 0 is the
/// persistent defect. With period >= 3 at most one of any three
/// consecutive cycles is hit, which is what makes TMR's 2-of-3 vote a
/// guaranteed correction (docs/robustness.md).
struct Fault {
  FaultKind kind = FaultKind::StuckOpen;
  Axis axis = Axis::Row;
  std::size_t row = 0;
  std::size_t col = 0;
  int bit = 0;
  bool stuck_value = false;
  std::size_t period = 0;  // StuckBit only: 0 = persistent, else cycle period
  std::size_t phase = 0;   // StuckBit only: afflicted when cycle % period == phase

  friend bool operator==(const Fault&, const Fault&) = default;
};

[[nodiscard]] std::string to_string(const Fault& fault);

/// An ordered, reproducible collection of defects.
class FaultModel {
 public:
  FaultModel() = default;

  void add(const Fault& fault) { faults_.push_back(fault); }
  [[nodiscard]] const std::vector<Fault>& faults() const noexcept { return faults_; }
  [[nodiscard]] bool empty() const noexcept { return faults_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return faults_.size(); }

  /// `count` defects drawn uniformly over all four classes, deterministic in
  /// `seed` (util::Rng), valid for an n x n array with h-bit buses.
  [[nodiscard]] static FaultModel random(std::size_t n, int bits, std::uint64_t seed,
                                         std::size_t count);

  /// Parses the CLI spec grammar: items separated by ';', each one of
  ///   stuck-open:<row|col>,<r>,<c>
  ///   stuck-closed:<row|col>,<r>,<c>
  ///   stuck-bit:<row|col>,<line>,<bit>,<0|1>
  ///   transient-bit:<row|col>,<line>,<bit>,<0|1>,<period>,<phase>
  ///   dead:<r>,<c>
  ///   random:<seed>,<count>
  /// Throws util::ParseError on malformed input or out-of-range coordinates.
  [[nodiscard]] static FaultModel parse(std::string_view spec, std::size_t n, int bits);

  friend bool operator==(const FaultModel&, const FaultModel&) = default;

 private:
  std::vector<Fault> faults_;
};

// ---------------------------------------------------------------------------
// Compiled per-machine form. Both backends read the same compiled masks: the
// word kernels use the Flag vectors, the plane kernels the bit planes packed
// from those same vectors, so the fault transform is structurally identical.
// ---------------------------------------------------------------------------

struct StuckBitFault {
  std::size_t line = 0;
  int bit = 0;
  bool value = false;
  std::size_t period = 0;  // 0 = persistent; else active iff cycle % period == phase
  std::size_t phase = 0;
};

struct CompiledFaults {
  bool any = false;
  bool any_dead = false;
  bool any_switch[2] = {false, false};  // indexed by Axis

  // 1 where the switch box on that axis is jammed (per PE, row-major).
  std::vector<Flag> stuck_open[2];
  std::vector<Flag> stuck_closed[2];
  std::vector<PlaneWord> stuck_open_plane[2];
  std::vector<PlaneWord> stuck_closed_plane[2];

  std::vector<Flag> dead;        // 1 where the PE is dead
  std::vector<Flag> alive;       // complement, used as the driver-liveness src
  std::vector<PlaneWord> dead_plane;
  std::vector<PlaneWord> alive_plane;  // full-array mask & ~dead (pads zero)

  std::vector<StuckBitFault> stuck_bits[2];  // indexed by Axis
};

/// Validates coordinates against the array geometry and word width, then
/// expands the model into the mask form above. Throws util::ContractError
/// on out-of-range faults.
[[nodiscard]] CompiledFaults compile_faults(const FaultModel& model,
                                            const PlaneGeometry& geometry, int bits);

}  // namespace ppa::sim
