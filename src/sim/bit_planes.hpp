// Bit-plane packing: 64 PE lanes per host word.
//
// The PPA the paper targets is bit-serial hardware — every PE handles one
// bit per cycle, and the expensive primitives (the h wired-OR rounds of
// min()/selected_min()) are defined plane by plane. The bit-plane backend
// stores each parallel value as h planes of n*n bits, so one host word
// operation advances 64 PEs at once (the same representation Matsumae's
// reconfigurable-mesh simulations and Stout's mesh-labeling work use to
// make bus-mesh simulation tractable).
//
// Layout: planes are ROW-ALIGNED. Each row occupies `row_words` 64-bit
// words (ceil(n/64)); PE (r, c) lives in word r*row_words + c/64 at bit
// c%64. Row alignment keeps every row bus a contiguous word run and every
// column bus a fixed word-column, so both bus systems resolve without
// unpacking. The pad bits past column n-1 in each row's last word are
// CANONICALLY ZERO — every kernel preserves that invariant (NOT is
// implemented as AND with the full-array mask), so whole-word comparisons
// against the full mask answer "all PEs?" questions directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/bus.hpp"

namespace ppa::sim {

/// One 64-lane chunk of a bit plane.
using PlaneWord = std::uint64_t;

inline constexpr std::size_t kLanesPerWord = 64;

/// Geometry of one n x n bit plane under the row-aligned layout.
struct PlaneGeometry {
  std::size_t n = 0;
  std::size_t row_words = 0;  // words per row = ceil(n / 64)

  constexpr PlaneGeometry() = default;
  explicit constexpr PlaneGeometry(std::size_t side)
      : n(side), row_words((side + kLanesPerWord - 1) / kLanesPerWord) {}

  /// Words in one full plane (n rows of row_words words).
  [[nodiscard]] constexpr std::size_t plane_words() const noexcept { return n * row_words; }

  /// Word index of PE (row, col) within a plane.
  [[nodiscard]] constexpr std::size_t word_of(std::size_t row, std::size_t col) const noexcept {
    return row * row_words + col / kLanesPerWord;
  }

  /// Bit index of `col` within its word.
  [[nodiscard]] static constexpr unsigned bit_of(std::size_t col) noexcept {
    return static_cast<unsigned>(col % kLanesPerWord);
  }

  /// Valid-lane mask of word `w` of a row (all ones except a partial last
  /// word; pads read 0).
  [[nodiscard]] constexpr PlaneWord word_mask(std::size_t w) const noexcept {
    const std::size_t lanes_before = w * kLanesPerWord;
    if (lanes_before >= n) return 0;
    const std::size_t lanes = n - lanes_before;
    return lanes >= kLanesPerWord ? ~PlaneWord{0} : ((PlaneWord{1} << lanes) - 1);
  }
};

[[nodiscard]] inline bool plane_get(const PlaneGeometry& g, const PlaneWord* plane,
                                    std::size_t row, std::size_t col) noexcept {
  return (plane[g.word_of(row, col)] >> PlaneGeometry::bit_of(col)) & 1u;
}

inline void plane_set(const PlaneGeometry& g, PlaneWord* plane, std::size_t row,
                      std::size_t col, bool value) noexcept {
  const PlaneWord bit = PlaneWord{1} << PlaneGeometry::bit_of(col);
  PlaneWord& w = plane[g.word_of(row, col)];
  w = value ? (w | bit) : (w & ~bit);
}

/// Builds the full-array mask plane (1 on every PE, 0 on every pad bit).
inline void plane_fill_full(const PlaneGeometry& g, PlaneWord* plane) noexcept {
  for (std::size_t r = 0; r < g.n; ++r) {
    for (std::size_t w = 0; w < g.row_words; ++w) plane[r * g.row_words + w] = g.word_mask(w);
  }
}

/// Number of set lanes in a plane (pads are zero by invariant).
[[nodiscard]] inline std::size_t plane_popcount(const PlaneGeometry& g,
                                                const PlaneWord* plane) noexcept {
  std::size_t total = 0;
  const std::size_t words = g.plane_words();
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(plane[i]));
  }
  return total;
}

// ---------------------------------------------------------------------------
// Packing between the word backend's per-PE vectors and bit planes. Used at
// load/unload boundaries and by the differential tests; the hot path never
// round-trips.
// ---------------------------------------------------------------------------

/// Packs per-PE words into `planes` contiguous bit planes (plane j at
/// offset j * plane_words).
inline void pack_words(const PlaneGeometry& g, std::span<const Word> src, int planes,
                       PlaneWord* out) {
  const std::size_t pw = g.plane_words();
  for (std::size_t i = 0; i < pw * static_cast<std::size_t>(planes); ++i) out[i] = 0;
  for (std::size_t pe = 0; pe < src.size(); ++pe) {
    const std::size_t word = (pe / g.n) * g.row_words + (pe % g.n) / kLanesPerWord;
    const unsigned bit = PlaneGeometry::bit_of(pe % g.n);
    Word v = src[pe];
    while (v != 0) {
      const int j = __builtin_ctz(v);
      out[static_cast<std::size_t>(j) * pw + word] |= PlaneWord{1} << bit;
      v &= v - 1;
    }
  }
}

inline void unpack_words(const PlaneGeometry& g, const PlaneWord* planes, int count,
                         std::span<Word> dst) {
  const std::size_t pw = g.plane_words();
  for (std::size_t pe = 0; pe < dst.size(); ++pe) {
    const std::size_t row = pe / g.n;
    const std::size_t col = pe % g.n;
    Word v = 0;
    for (int j = 0; j < count; ++j) {
      if (plane_get(g, planes + static_cast<std::size_t>(j) * pw, row, col)) {
        v |= Word{1} << j;
      }
    }
    dst[pe] = v;
  }
}

inline void pack_flags(const PlaneGeometry& g, std::span<const Flag> src, PlaneWord* out) {
  const std::size_t pw = g.plane_words();
  for (std::size_t i = 0; i < pw; ++i) out[i] = 0;
  for (std::size_t pe = 0; pe < src.size(); ++pe) {
    if (src[pe] != 0) {
      out[(pe / g.n) * g.row_words + (pe % g.n) / kLanesPerWord] |=
          PlaneWord{1} << PlaneGeometry::bit_of(pe % g.n);
    }
  }
}

inline void unpack_flags(const PlaneGeometry& g, const PlaneWord* plane,
                         std::span<Flag> dst) {
  for (std::size_t pe = 0; pe < dst.size(); ++pe) {
    dst[pe] = plane_get(g, plane, pe / g.n, pe % g.n) ? Flag{1} : Flag{0};
  }
}

}  // namespace ppa::sim
