// Naive reference implementation of the bus engine.
//
// This is the original per-position walk (one driver search plus an O(n)
// downstream walk per line, with explicit segment-key bookkeeping for the
// wired-OR). The production engine in bus.cpp resolves clusters with a
// single forward scan per line; this version is retained verbatim as the
// differential-testing oracle (tests/sim_bus_fuzz_test.cpp checks the two
// against each other and against an independent brute-force model).
//
// Not for use outside tests: it allocates per call and walks each line
// through the (line, flow-position) index map.
#pragma once

#include "sim/bus.hpp"

namespace ppa::sim::reference {

/// Semantics identical to ppa::sim::bus_broadcast.
[[nodiscard]] BusResult bus_broadcast(std::size_t n, BusTopology topology, Direction dir,
                                      std::span<const Word> src, std::span<const Flag> open);

/// Semantics identical to ppa::sim::bus_wired_or.
[[nodiscard]] BusResult bus_wired_or(std::size_t n, BusTopology topology, Direction dir,
                                     std::span<const Flag> src, std::span<const Flag> open);

}  // namespace ppa::sim::reference
