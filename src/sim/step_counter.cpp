#include "sim/step_counter.hpp"

#include <sstream>

#include "util/bits.hpp"

namespace ppa::sim {

const char* name_of(StepCategory c) noexcept {
  switch (c) {
    case StepCategory::Alu: return "alu";
    case StepCategory::Shift: return "shift";
    case StepCategory::BusBroadcast: return "bus_bcast";
    case StepCategory::BusOr: return "bus_or";
    case StepCategory::GlobalOr: return "global_or";
    case StepCategory::PanelIo: return "panel_io";
    case StepCategory::Masking: return "masking";
    case StepCategory::kCount: break;
  }
  return "?";
}

void StepCounter::charge(StepCategory category, std::uint64_t count) noexcept {
  counts_[static_cast<std::size_t>(category)] += count;
}

void StepCounter::charge_bus(StepCategory category, std::size_t max_segment) noexcept {
  const auto idx = static_cast<std::size_t>(category);
  counts_[idx] += 1;
  const std::uint64_t len = max_segment == 0 ? 1 : max_segment;
  log_extra_[idx] += static_cast<std::uint64_t>(util::ceil_log2(len));  // (1+log) - 1
  linear_extra_[idx] += len - 1;                                        // len - 1
}

std::uint64_t StepCounter::count(StepCategory category) const noexcept {
  return counts_[static_cast<std::size_t>(category)];
}

std::uint64_t StepCounter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto c : counts_) sum += c;
  return sum;
}

std::uint64_t StepCounter::total_under(BusDelayModel model) const noexcept {
  std::uint64_t sum = total();
  if (model == BusDelayModel::Unit) return sum;
  const auto& extra = (model == BusDelayModel::Log) ? log_extra_ : linear_extra_;
  for (const auto e : extra) sum += e;
  return sum;
}

StepCounter StepCounter::since(const StepCounter& baseline) const noexcept {
  StepCounter delta;
  for (std::size_t i = 0; i < kCategories; ++i) {
    delta.counts_[i] = counts_[i] - baseline.counts_[i];
    delta.log_extra_[i] = log_extra_[i] - baseline.log_extra_[i];
    delta.linear_extra_[i] = linear_extra_[i] - baseline.linear_extra_[i];
  }
  return delta;
}

void StepCounter::merge(const StepCounter& other) noexcept {
  for (std::size_t i = 0; i < kCategories; ++i) {
    counts_[i] += other.counts_[i];
    log_extra_[i] += other.log_extra_[i];
    linear_extra_[i] += other.linear_extra_[i];
  }
}

void StepCounter::reset() noexcept {
  counts_.fill(0);
  log_extra_.fill(0);
  linear_extra_.fill(0);
}

std::string StepCounter::summary() const {
  std::ostringstream os;
  os << "steps=" << total();
  for (std::size_t i = 0; i < kCategories; ++i) {
    if (counts_[i] == 0) continue;
    os << ' ' << name_of(static_cast<StepCategory>(static_cast<int>(i))) << '=' << counts_[i];
  }
  return os.str();
}

}  // namespace ppa::sim
