// AVX2 kernel arm. This TU is compiled with -mavx2 (see src/ppc/
// CMakeLists.txt) and only when the toolchain supports the flag; callers
// must gate on avx2_kernels() != nullptr, which also checks the CPU.
#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "sim/plane_kernels.hpp"
#include "sim/plane_kernels_detail.hpp"

namespace ppa::sim::plane_kernels {

namespace {

struct VecAvx2 {
  static constexpr std::size_t W = 4;  // 4 x 64-bit lanes
  using reg = __m256i;
  static reg load(const sim::PlaneWord* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(sim::PlaneWord* p, reg v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static reg zero() noexcept { return _mm256_setzero_si256(); }
  static reg and_(reg a, reg b) noexcept { return _mm256_and_si256(a, b); }
  static reg or_(reg a, reg b) noexcept { return _mm256_or_si256(a, b); }
  static reg xor_(reg a, reg b) noexcept { return _mm256_xor_si256(a, b); }
  // _mm256_andnot_si256(a, b) computes ~a & b; our contract is a & ~b.
  static reg andnot(reg a, reg b) noexcept { return _mm256_andnot_si256(b, a); }
  static bool is_zero(reg a) noexcept { return _mm256_testz_si256(a, a) != 0; }
};

/// 64 lanes per group: bit j of each 32-bit PE word is lifted to the sign
/// position and harvested with movemask — 8 bits per 256-bit register,
/// eight registers per plane word.
void pack_words_rows_avx2(const sim::PlaneGeometry& g, const sim::Word* src, int planes,
                          sim::PlaneWord* out, std::size_t row_begin, std::size_t row_end) {
  const std::size_t pw = g.plane_words();
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  alignas(32) sim::Word buf[sim::kLanesPerWord];
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const sim::Word* row = src + r * n;
    for (std::size_t w = 0; w < rw; ++w) {
      const std::size_t lane0 = w * sim::kLanesPerWord;
      const std::size_t lanes = std::min(sim::kLanesPerWord, n - lane0);
      const sim::Word* p = row + lane0;
      if (lanes < sim::kLanesPerWord) {
        std::memset(buf, 0, sizeof(buf));
        std::memcpy(buf, p, lanes * sizeof(sim::Word));
        p = buf;
      }
      __m256i v[8];
      for (int k = 0; k < 8; ++k) {
        v[k] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8 * k));
      }
      const std::size_t idx = r * rw + w;
      for (int j = 0; j < planes; ++j) {
        std::uint64_t m = 0;
        for (int k = 0; k < 8; ++k) {
          const int bits = _mm256_movemask_ps(
              _mm256_castsi256_ps(_mm256_slli_epi32(v[k], 31 - j)));
          m |= static_cast<std::uint64_t>(static_cast<unsigned>(bits) & 0xffu) << (8 * k);
        }
        out[static_cast<std::size_t>(j) * pw + idx] = m;
      }
    }
  }
}

}  // namespace

const PlaneKernels* avx2_table() noexcept;  // referenced by plane_kernels.cpp

const PlaneKernels* avx2_table() noexcept {
  static const PlaneKernels table = [] {
    PlaneKernels t;
    t.variant = SimdVariant::Avx2;
    t.op_and = detail::t_op_and<VecAvx2>;
    t.op_or = detail::t_op_or<VecAvx2>;
    t.op_xor = detail::t_op_xor<VecAvx2>;
    t.op_andnot = detail::t_op_andnot<VecAvx2>;
    t.op_copy = detail::t_op_copy<VecAvx2>;
    t.op_zero = detail::t_op_zero<VecAvx2>;
    t.masked_assign = detail::t_masked_assign<VecAvx2>;
    t.blend = detail::t_blend<VecAvx2>;
    t.all_zero = detail::t_all_zero<VecAvx2>;
    t.equal = detail::t_equal<VecAvx2>;
    t.add_sat = detail::t_add_sat<VecAvx2>;
    t.compare_lt = detail::t_compare_lt<VecAvx2>;
    t.compare_eq = detail::t_compare_eq<VecAvx2>;
    t.pack_words = pack_words_rows_avx2;
    return t;
  }();
  return &table;
}

}  // namespace ppa::sim::plane_kernels

#endif  // __AVX2__
