// Scalar kernel arm: the template bodies instantiated at W = 1. Compiled
// unconditionally with the project's default flags — this is the dispatch
// fallback on any host.
#include "sim/plane_kernels.hpp"
#include "sim/plane_kernels_detail.hpp"

namespace ppa::sim::plane_kernels {

namespace {
using detail::VecScalar;
}  // namespace

const PlaneKernels& scalar_kernels() noexcept {
  static const PlaneKernels table = [] {
    PlaneKernels t;
    t.variant = SimdVariant::Scalar;
    t.op_and = detail::t_op_and<VecScalar>;
    t.op_or = detail::t_op_or<VecScalar>;
    t.op_xor = detail::t_op_xor<VecScalar>;
    t.op_andnot = detail::t_op_andnot<VecScalar>;
    t.op_copy = detail::t_op_copy<VecScalar>;
    t.op_zero = detail::t_op_zero<VecScalar>;
    t.masked_assign = detail::t_masked_assign<VecScalar>;
    t.blend = detail::t_blend<VecScalar>;
    t.all_zero = detail::t_all_zero<VecScalar>;
    t.equal = detail::t_equal<VecScalar>;
    t.add_sat = detail::t_add_sat<VecScalar>;
    t.compare_lt = detail::t_compare_lt<VecScalar>;
    t.compare_eq = detail::t_compare_eq<VecScalar>;
    t.pack_words = detail::pack_words_rows_scalar;
    return t;
  }();
  return table;
}

}  // namespace ppa::sim::plane_kernels
