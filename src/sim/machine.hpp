// The Polymorphic Processor Array machine.
//
// A Machine is an n x n SIMD array with:
//   * an h-bit word field (util::HField) shared by every PE,
//   * the two segmented bus systems (sim/bus.hpp),
//   * nearest-neighbour shift links,
//   * a controller "global OR" response line for loop tests,
//   * a StepCounter charging one step per issued SIMD instruction.
//
// The Machine works on raw per-PE vectors; the masked-SIMD programming
// model (parallel variables, where/elsewhere) lives one layer up in
// ppa::ppc. This split mirrors the real system: the array executes whatever
// the controller issues, and activity masking is a property of the
// *program*, applied at register write-back.
//
// Host execution can be parallelized over a thread pool (config
// host_threads). Every primitive computes each PE's result independently,
// so results are identical for any thread count.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/bit_planes.hpp"
#include "sim/bus.hpp"
#include "sim/bus_planes.hpp"
#include "sim/fault_model.hpp"
#include "sim/plane_kernels.hpp"
#include "sim/step_counter.hpp"
#include "sim/trace.hpp"
#include "util/saturating.hpp"
#include "util/thread_pool.hpp"

namespace ppa::sim {

/// What a program-level read of an undriven bus input does (only reachable
/// with Linear topology or an all-Short line).
enum class UndrivenPolicy {
  Error,     // throw ContractError — the default; the MCP algorithm never
             // legitimately consumes a floating bus
  ReadZero,  // the PE reads 0 (a pulled-down line); useful in tests
};

/// How parallel values are stored and swept on the HOST. Pure host
/// artifact: programs, results, driven flags and step counts are
/// bit-identical under both backends (tests/mcp_backend_diff_test.cpp).
enum class ExecBackend {
  Words,     // one Word per PE; elementwise loops sweep one PE per op
  BitPlane,  // h bit planes, 64 PE lanes per uint64_t (sim/bit_planes.hpp)
};

/// In-place bus-cycle fault masking (docs/robustness.md). Orthogonal to the
/// verify-then-retry recovery loop: masking corrects corruption DURING the
/// run instead of detecting it afterwards.
enum class BusMasking {
  None,  // bus cycles execute once, unprotected
  Tmr,   // triple modular redundancy: every charged bus cycle executes
         // three times and the received values (and driven flags) are
         // majority-voted per wire. Trial 1 is charged to the cycle's
         // normal category; trials 2 and 3 are charged to
         // StepCategory::Masking, so a fault-free masked run minus its
         // Masking steps is bit-identical to the unmasked run. Both
         // backends implement the identical vote, so the differential
         // oracle extends to masked runs. Corrects transient faults
         // (period >= 3); a persistent defect corrupts all three trials
         // identically and is NOT masked.
  Ecc,   // BitPlane backend only: r = ceil(log2(h + 1)) parity planes ride
         // every plane broadcast (r = 1 for a wired-OR cycle) on spare bus
         // wires outside the h-bit fault surface, through the same switch
         // fabric (switch and dead-PE faults hit data and parity alike).
         // A syndrome decode after the cycle corrects any single stuck
         // data wire — transient or persistent — without repetition. The
         // parity beat is charged as ONE StepCategory::Masking bus cycle.
};

struct MachineConfig {
  std::size_t n = 8;        // array side; the graph's vertex count
  int bits = 16;            // word width h
  BusTopology topology = BusTopology::Ring;
  UndrivenPolicy undriven = UndrivenPolicy::Error;
  /// Host worker threads for per-PE sweeps; 0 or 1 = host-sequential.
  /// Both backends honor it: the Words backend chunks PE ranges, the
  /// BitPlane backend chunks contiguous plane-word ranges of its ALU
  /// sweeps (ppc/plane_kernels.hpp) once a sweep reaches
  /// `plane_sweep_min_words` words. Results, driven flags and step counts
  /// are bit-identical for every value on both backends
  /// (tests/mcp_backend_diff_test.cpp pins thread-count invariance).
  std::size_t host_threads = 1;
  /// Minimum plane-sweep length (in 64-bit plane words, total across the
  /// h planes of a value) before the BitPlane backend dispatches the
  /// sweep to the thread pool. Below it, pool hand-off costs more than
  /// the loop: a full n = 512, h = 16 value is 65536 words (~one L2-ish
  /// working set), which is roughly where chunking starts to pay. Tests
  /// set 1 to force chunking on small arrays.
  std::size_t plane_sweep_min_words = 65536;
  ExecBackend backend = ExecBackend::Words;
  /// Checked execution: bus contention (a program driver whose switch a
  /// fault forced closed) and undriven program reads are recorded as
  /// structured FaultEvents — and execution continues reading 0 — instead
  /// of the UndrivenPolicy::Error throw. Lets a solver finish a corrupted
  /// run and decide on the diagnostics afterwards.
  bool checked = false;
  /// Fault masking applied to every charged bus cycle (see BusMasking).
  /// Ecc requires backend == BitPlane (enforced by the constructor).
  BusMasking masking = BusMasking::None;
};

/// Cumulative fault-masking counters (ppa.metrics.v1: mask.votes /
/// mask.corrections / mask.uncorrectable).
struct MaskingStats {
  std::uint64_t votes = 0;          // masked bus cycles executed
  std::uint64_t corrections = 0;    // cycles where masking changed a value
  std::uint64_t uncorrectable = 0;  // ECC cycles with residual syndrome

  /// Counters spent since `baseline` (snapshot-delta, like StepCounter).
  [[nodiscard]] MaskingStats since(const MaskingStats& baseline) const noexcept {
    return {votes - baseline.votes, corrections - baseline.corrections,
            uncorrectable - baseline.uncorrectable};
  }
  void merge(const MaskingStats& other) noexcept {
    votes += other.votes;
    corrections += other.corrections;
    uncorrectable += other.uncorrectable;
  }
  friend bool operator==(const MaskingStats&, const MaskingStats&) = default;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::size_t pe_count() const noexcept { return config_.n * config_.n; }
  [[nodiscard]] const util::HField& field() const noexcept { return field_; }

  [[nodiscard]] StepCounter& steps() noexcept { return steps_; }
  [[nodiscard]] const StepCounter& steps() const noexcept { return steps_; }

  /// Per-PE row / column index constants (the paper's ROW and COL).
  [[nodiscard]] std::span<const Word> row_index() const noexcept { return row_index_; }
  [[nodiscard]] std::span<const Word> col_index() const noexcept { return col_index_; }

  /// Attaches / detaches an instruction observer (nullptr = off). The
  /// sink is not owned and must outlive its attachment.
  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }
  [[nodiscard]] TraceSink* trace() const noexcept { return trace_; }

  /// Compiles and installs a hardware fault model (sim/fault_model.hpp);
  /// every subsequent bus cycle applies it, identically under both
  /// backends. Throws util::ContractError on out-of-range faults.
  /// An empty model clears previously injected faults.
  void inject_faults(const FaultModel& model);
  [[nodiscard]] bool has_faults() const noexcept { return faults_.any; }

  /// Cumulative fault-masking counters (zero when config.masking == None).
  [[nodiscard]] const MaskingStats& masking_stats() const noexcept { return mask_stats_; }

  /// Physical bus cycles executed so far. Every charged bus cycle —
  /// including each individual TMR trial — advances it; shadow cycles and
  /// the ECC parity beat (which shares its data cycle's slot) do not.
  /// Transient StuckBit faults key on this index, identically under both
  /// backends.
  [[nodiscard]] std::uint64_t bus_cycles() const noexcept { return bus_cycles_; }

  /// Structured checked-execution diagnostics. The log keeps the first
  /// kMaxFaultLog events; fault_count() counts every report.
  static constexpr std::size_t kMaxFaultLog = 1024;
  [[nodiscard]] const std::vector<FaultEvent>& fault_events() const noexcept {
    return fault_log_;
  }
  [[nodiscard]] std::size_t fault_count() const noexcept { return fault_count_; }
  void clear_fault_events() noexcept {
    fault_log_.clear();
    fault_count_ = 0;
  }

  /// Records a diagnostic in the fault log and forwards it to the trace
  /// sink. Called by the bus wrappers below and by the ppc layer's
  /// undriven-store checks in checked mode.
  void report_fault(const FaultEvent& event);

  /// Charges `instructions` elementwise SIMD instructions. Called by the
  /// ppc layer once per parallel operation (NOT per PE). A bulk charge
  /// emits ONE trace event carrying the instruction count.
  void charge_alu(std::uint64_t instructions = 1) noexcept {
    steps_.charge(StepCategory::Alu, instructions);
    if (trace_ != nullptr && instructions > 0) {
      trace_->on_event(TraceEvent{StepCategory::Alu, Direction::North, 0, 0, instructions});
    }
  }

  /// Controller panel I/O for the virtualized (tiled) array: charges
  /// `rows` PanelIo steps — the array moves one p-wide row of words per
  /// I/O cycle over its edge ports — and emits one trace event carrying
  /// the row count. Loading a p x p register panel is p cycles, a single
  /// row fragment 1, and a column readback 1 (docs/tiling.md). The actual
  /// data movement stays host-side (Pint construction / at()); this call
  /// is what makes a panel reload a *counted, traced* operation instead
  /// of free controller I/O.
  void charge_panel_io(std::uint64_t rows = 1) noexcept {
    steps_.charge(StepCategory::PanelIo, rows);
    if (trace_ != nullptr && rows > 0) {
      trace_->on_event(TraceEvent{StepCategory::PanelIo, Direction::North, 0, 0, rows});
    }
  }

  /// Nearest-neighbour move: every PE receives its upstream neighbour's
  /// src value ("sends data to its nearest neighbor along dir"); array-edge
  /// PEs receive `fill`. dst must not alias src. One Shift step.
  void shift(std::span<const Word> src, Direction dir, Word fill, std::span<Word> dst);

  /// One broadcast bus cycle (see bus.hpp). One BusBroadcast step.
  [[nodiscard]] BusResult broadcast(std::span<const Word> src, Direction dir,
                                    std::span<const Flag> open);

  /// One wired-OR bus cycle. One BusOr step.
  [[nodiscard]] BusResult wired_or(std::span<const Flag> src, Direction dir,
                                   std::span<const Flag> open);

  // Allocation-free bus cycles: same charging and tracing as the BusResult
  // variants, but the caller provides the n*n output buffers (the ppc
  // layer's register arena). Each returns the cycle's max_segment.
  std::size_t broadcast_into(std::span<const Word> src, Direction dir,
                             std::span<const Flag> open, std::span<Word> values,
                             std::span<Flag> driven);
  std::size_t broadcast_into(std::span<const Flag> src, Direction dir,
                             std::span<const Flag> open, std::span<Flag> values,
                             std::span<Flag> driven);
  std::size_t wired_or_into(std::span<const Flag> src, Direction dir,
                            std::span<const Flag> open, std::span<Flag> values);

  /// Fault-transformed shadow cycle for host bookkeeping that rides a data
  /// cycle (the ppc layer's taint flags): applies the effective switch
  /// state and dead-PE silencing exactly like a data broadcast, but
  /// charges no step, emits no trace event, and reports no contention —
  /// the data cycle it rides already did all three. Stuck line bits are
  /// NOT applied: driven/taint flags are host bookkeeping, not wires
  /// (sim/fault_model.hpp).
  std::size_t shadow_broadcast_into(std::span<const Flag> src, Direction dir,
                                    std::span<const Flag> open, std::span<Flag> values,
                                    std::span<Flag> driven);

  /// Controller response line: OR over all PEs' flags. One GlobalOr step.
  [[nodiscard]] bool global_or(std::span<const Flag> flags);

  // -------------------------------------------------------------------------
  // Bit-plane twins of the primitives above, used by the BitPlane backend.
  // Same charging and tracing (a plane-packed cycle is still ONE bus cycle;
  // count_open and max_segment match the word kernels bit for bit), so
  // StepCounter equality between backends is structural, not incidental.
  // -------------------------------------------------------------------------

  [[nodiscard]] const PlaneGeometry& plane_geometry() const noexcept { return geometry_; }

  /// One broadcast cycle over `planes` contiguous bit planes. Charges one
  /// BusBroadcast step.
  std::size_t broadcast_planes_into(const PlaneWord* src, int planes, Direction dir,
                                    const PlaneWord* open, PlaneWord* out,
                                    PlaneWord* driven);

  /// One wired-OR cycle on a single plane. Charges one BusOr step.
  std::size_t wired_or_plane_into(const PlaneWord* src, Direction dir,
                                  const PlaneWord* open, PlaneWord* out);

  /// Plane twin of shadow_broadcast_into (one flag plane): same fault
  /// transform, no charge, no trace, no contention report.
  std::size_t shadow_broadcast_planes_into(const PlaneWord* src, Direction dir,
                                           const PlaneWord* open, PlaneWord* out,
                                           PlaneWord* driven);

  /// Plane-packed nearest-neighbour move; edge lanes of plane j read bit j
  /// of `fill_bits`. Charges one Shift step.
  void shift_planes(const PlaneWord* src, int planes, Direction dir,
                    std::uint64_t fill_bits, PlaneWord* dst);

  /// Controller response line over a flag plane. Charges one GlobalOr step.
  [[nodiscard]] bool global_or_plane(const PlaneWord* plane);

  /// Splits [0, pe_count) over the host pool; `body(begin, end)` must only
  /// write indices it owns. Charges nothing (callers charge per SIMD
  /// instruction, not per sweep). A template so the host-sequential path
  /// is a direct, inlinable call — no std::function on the hot path.
  template <typename Body>
  void for_each_pe(Body&& body) {
    if (pool_) {
      pool_->parallel_for(pe_count(), body);
    } else {
      body(std::size_t{0}, pe_count());
    }
  }

  /// The host worker pool (nullptr when host_threads <= 1). The BitPlane
  /// backend's ALU (ppc/plane_kernels.hpp) and the plane bus engine chunk
  /// their sweeps over it.
  [[nodiscard]] util::ThreadPool* host_pool() noexcept { return pool_.get(); }

  /// Cumulative hit/miss counters of this machine's broadcast-decomposition
  /// plan cache (sim::BroadcastPlanCache — bit-plane backend only; the word
  /// backend never consults it). Solvers report the per-run delta as
  /// bus.plan_cache.hits / bus.plan_cache.misses in ppa.metrics.v1.
  struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] PlanCacheStats plan_cache_stats() const noexcept {
    return {bus_scratch_.broadcast_plans.hits, bus_scratch_.broadcast_plans.misses};
  }

  /// Cumulative SIMD kernel-dispatch / plane-word throughput counters for
  /// the ppc-layer plane ALU bound to this machine (ppc::Context wires its
  /// PlaneAlu here). Billed once per sweep on the controller thread, so
  /// the totals are pool-size and plane_sweep_min_words independent;
  /// solvers report the per-run delta as simd.sweep.* counters.
  [[nodiscard]] const plane_kernels::SweepStats& sweep_stats() const noexcept {
    return sweep_stats_;
  }
  [[nodiscard]] plane_kernels::SweepStats* mutable_sweep_stats() noexcept {
    return &sweep_stats_;
  }

 private:
  /// Execution knobs handed to every plane bus cycle: the host pool (when
  /// the cycle is large enough to chunk) and the machine-owned scratch.
  [[nodiscard]] PlaneBusExec plane_bus_exec() noexcept {
    return PlaneBusExec{pool_.get(), config_.plane_sweep_min_words, &bus_scratch_};
  }

  // Fault transform around a bus cycle (machine.cpp). `effective_open`
  // returns `open` untouched when the axis has no switch faults; the other
  // helpers are no-ops without the corresponding fault class.
  [[nodiscard]] std::span<const Flag> effective_open(Axis axis, std::span<const Flag> open);
  [[nodiscard]] const PlaneWord* effective_open_plane(Axis axis, const PlaneWord* open);
  void check_contention(StepCategory category, Direction dir,
                        std::span<const Flag> program_open);
  void check_contention_plane(StepCategory category, Direction dir,
                              const PlaneWord* program_open);
  void clear_dead_driven(Direction dir, std::span<const Flag> open_eff,
                         std::span<Flag> driven);
  void clear_dead_driven_plane(Direction dir, const PlaneWord* open_eff, PlaneWord* driven);
  template <typename T>
  void apply_stuck_bits(Axis axis, std::span<T> values, int value_bits, std::uint64_t cycle);
  void apply_stuck_bits_planes(Axis axis, PlaneWord* out, int planes, std::uint64_t cycle);

  // One physical bus cycle, clean or fault-transformed, charged and traced
  // under `category` (contention is only reported for the primary category
  // of a masked cycle, never for the Masking re-executions). Each call
  // advances bus_cycles_.
  template <typename T>
  std::size_t broadcast_cycle(std::span<const T> src, Direction dir,
                              std::span<const Flag> open, std::span<T> values,
                              std::span<Flag> driven, int value_bits,
                              StepCategory category);
  std::size_t wired_or_cycle(std::span<const Flag> src, Direction dir,
                             std::span<const Flag> open, std::span<Flag> values,
                             StepCategory category);
  std::size_t broadcast_planes_cycle(const PlaneWord* src, int planes, Direction dir,
                                     const PlaneWord* open, PlaneWord* out,
                                     PlaneWord* driven, StepCategory category);
  std::size_t wired_or_plane_cycle(const PlaneWord* src, Direction dir,
                                   const PlaneWord* open, PlaneWord* out,
                                   StepCategory category);

  // TMR wrappers: trial 1 into the caller's buffers (normal category),
  // trials 2-3 into machine scratch (Masking), then a per-wire majority
  // vote over values and driven flags.
  template <typename T>
  std::size_t tmr_broadcast_into(std::span<const T> src, Direction dir,
                                 std::span<const Flag> open, std::span<T> values,
                                 std::span<Flag> driven, int value_bits);
  std::size_t tmr_wired_or_into(std::span<const Flag> src, Direction dir,
                                std::span<const Flag> open, std::span<Flag> values);
  std::size_t tmr_broadcast_planes_into(const PlaneWord* src, int planes, Direction dir,
                                        const PlaneWord* open, PlaneWord* out,
                                        PlaneWord* driven);
  std::size_t tmr_wired_or_plane_into(const PlaneWord* src, Direction dir,
                                      const PlaneWord* open, PlaneWord* out);

  // ECC wrappers: data cycle, then a parity beat (r parity planes of the
  // program source through the same fault transform minus stuck bits —
  // parity rides spare wires), then a Hamming syndrome decode on the
  // received planes. Parity planes are computed with the dispatched SIMD
  // plane kernels (sim/plane_kernels.hpp).
  std::size_t ecc_broadcast_planes_into(const PlaneWord* src, int planes, Direction dir,
                                        const PlaneWord* open, PlaneWord* out,
                                        PlaneWord* driven);
  std::size_t ecc_wired_or_plane_into(const PlaneWord* src, Direction dir,
                                      const PlaneWord* open, PlaneWord* out);
  void ecc_parity_of(const PlaneWord* data, int planes, int r, PlaneWord* parity);
  void ecc_parity_beat(int r, Direction dir, const PlaneWord* program_open, bool wired_or);
  void ecc_decode(PlaneWord* out, int planes, int r);

  MachineConfig config_;
  util::HField field_;
  PlaneGeometry geometry_;
  StepCounter steps_;
  std::vector<Word> row_index_;
  std::vector<Word> col_index_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when host-sequential
  TraceSink* trace_ = nullptr;              // not owned

  CompiledFaults faults_;
  std::vector<FaultEvent> fault_log_;
  std::size_t fault_count_ = 0;
  MaskingStats mask_stats_;
  std::uint64_t bus_cycles_ = 0;
  // TMR trial buffers (2 extra trials per masked cycle).
  std::vector<Word> tmr_word_[2];
  std::vector<Flag> tmr_flag_[2];
  std::vector<Flag> tmr_driven_[2];
  std::vector<PlaneWord> tmr_planes_[2];
  std::vector<PlaneWord> tmr_planes_driven_[2];
  // ECC parity-beat and decode scratch.
  std::vector<PlaneWord> ecc_parity_src_;
  std::vector<PlaneWord> ecc_parity_recv_;
  std::vector<PlaneWord> ecc_parity_driven_;
  std::vector<PlaneWord> ecc_check_;
  std::vector<PlaneWord> ecc_nonzero_;
  std::vector<PlaneWord> ecc_corrected_;
  std::vector<PlaneWord> ecc_mask_;
  // Scratch for the fault transform, sized on first faulty cycle.
  std::vector<Flag> scratch_open_;
  std::vector<Word> scratch_src_word_;
  std::vector<Flag> scratch_src_flag_;
  std::vector<Flag> scratch_alive_value_;
  std::vector<Flag> scratch_alive_driven_;
  std::vector<PlaneWord> scratch_open_plane_;
  std::vector<PlaneWord> scratch_src_planes_;
  std::vector<PlaneWord> scratch_alive_out_;
  std::vector<PlaneWord> scratch_alive_driven_plane_;
  PlaneBusScratch bus_scratch_;  // reused by every plane bus cycle
  plane_kernels::SweepStats sweep_stats_;  // ppc PlaneAlu throughput billing
};

}  // namespace ppa::sim
