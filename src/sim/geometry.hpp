// Array geometry: directions, bus axes and PE coordinates.
//
// The PPA is an n x n SIMD array. Two bus systems run through every PE's
// switch box: one along the rows (data moves East or West) and one along
// the columns (North or South). The *direction* of data movement is global
// — "at any given time, all the nodes send data in the same direction
// (North, East, West or South), which is selected by the SIMD program
// controller" — while the Open/Short switch setting is local per PE.
#pragma once

#include <cstddef>
#include <string_view>

#include "util/check.hpp"

namespace ppa::sim {

/// Global data-movement direction chosen by the controller.
enum class Direction : int { North = 0, East = 1, South = 2, West = 3 };

/// Which physical bus system a direction uses.
enum class Axis : int { Row = 0, Column = 1 };

/// Switch-box setting of one PE: Open disconnects the two bus stubs and
/// lets the PE inject; Short passes data through and isolates the PE's
/// driver from the bus.
enum class Switch : std::uint8_t { Short = 0, Open = 1 };

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::North: return Direction::South;
    case Direction::South: return Direction::North;
    case Direction::East: return Direction::West;
    case Direction::West: return Direction::East;
  }
  return Direction::North;  // unreachable
}

[[nodiscard]] constexpr Axis axis_of(Direction d) noexcept {
  return (d == Direction::East || d == Direction::West) ? Axis::Row : Axis::Column;
}

[[nodiscard]] constexpr std::string_view name_of(Direction d) noexcept {
  switch (d) {
    case Direction::North: return "North";
    case Direction::East: return "East";
    case Direction::South: return "South";
    case Direction::West: return "West";
  }
  return "?";
}

/// PE coordinates in an n x n array; pe id == row * n + col (row-major).
struct Coord {
  std::size_t row = 0;
  std::size_t col = 0;

  friend constexpr bool operator==(const Coord&, const Coord&) = default;
};

[[nodiscard]] constexpr std::size_t pe_id(Coord c, std::size_t n) noexcept {
  return c.row * n + c.col;
}

[[nodiscard]] constexpr Coord coord_of(std::size_t pe, std::size_t n) noexcept {
  return Coord{pe / n, pe % n};
}

}  // namespace ppa::sim
