// Runtime-dispatched SIMD kernel table for the bit-plane ALU.
//
// plane_ops.hpp holds the portable scalar loops — they remain the
// always-available reference implementation and the differential oracle
// (tests/ppc_plane_kernels_test.cpp fuzzes every table below against
// them). This header adds the production path: a table of function
// pointers filled per SIMD variant (scalar / AVX2 / AVX-512), selected
// once per process from what the build compiled in and what the CPU
// reports, plus the PlaneAlu wrapper that chunks big sweeps over the
// machine's host thread pool.
//
// Dispatch order:
//   1. A PPA_FORCE_SIMD=<arm> build (CMake option) pins the arm at
//      compile time; if the CPU cannot execute the pinned arm the next
//      best one is used and a one-line note goes to stderr (keeps forced
//      CI legs green on heterogeneous runners).
//   2. The PPA_SIMD environment variable (scalar|avx2|avx512) overrides
//      at run time, with the same graceful fallback.
//   3. Otherwise the widest compiled-in variant the CPU supports wins.
//
// The multi-plane kernels (add_sat / compare_*) take a [begin, end) word
// sub-range of every plane so the thread pool can split one logical SIMD
// instruction into contiguous plane-word chunks: the ripple-carry and
// MSB-first scans carry state across PLANES (j), never across word index
// (i), so range splitting is exact, not approximate.
#pragma once

#include <cstddef>

#include "sim/bit_planes.hpp"
#include "util/thread_pool.hpp"

namespace ppa::sim::plane_kernels {

using sim::PlaneWord;

enum class SimdVariant { Scalar, Avx2, Avx512 };

[[nodiscard]] const char* variant_name(SimdVariant v) noexcept;

/// One fully-populated kernel arm. All pointers are non-null.
struct PlaneKernels {
  SimdVariant variant = SimdVariant::Scalar;

  // Elementwise bitwise sweeps over raw word ranges (callers pass pw or
  // h * pw; chunking slices the pointers).
  void (*op_and)(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                 std::size_t words) noexcept = nullptr;
  void (*op_or)(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                std::size_t words) noexcept = nullptr;
  void (*op_xor)(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                 std::size_t words) noexcept = nullptr;
  void (*op_andnot)(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                    std::size_t words) noexcept = nullptr;
  void (*op_copy)(const PlaneWord* a, PlaneWord* out, std::size_t words) noexcept = nullptr;
  void (*op_zero)(PlaneWord* out, std::size_t words) noexcept = nullptr;
  void (*masked_assign)(const PlaneWord* mask, const PlaneWord* src, PlaneWord* dst,
                        std::size_t words) noexcept = nullptr;
  void (*blend)(const PlaneWord* cond, const PlaneWord* a, const PlaneWord* b,
                PlaneWord* out, std::size_t words) noexcept = nullptr;
  bool (*all_zero)(const PlaneWord* a, std::size_t words) noexcept = nullptr;
  bool (*equal)(const PlaneWord* a, const PlaneWord* b, std::size_t words) noexcept = nullptr;

  // Multi-plane kernels on the word sub-range [begin, end) of every
  // plane. Semantics match plane_ops exactly (same clamp rule, same
  // MSB-first compare); the scratch planes of the plane_ops signatures
  // are gone — carry/ones/lt/eq live in registers per word block.
  void (*add_sat)(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                  const PlaneWord* full, PlaneWord* out, std::size_t begin,
                  std::size_t end) noexcept = nullptr;
  void (*compare_lt)(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                     const PlaneWord* full, PlaneWord* lt, PlaneWord* eq,
                     std::size_t begin, std::size_t end) noexcept = nullptr;
  void (*compare_eq)(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                     const PlaneWord* full, PlaneWord* eq, std::size_t begin,
                     std::size_t end) noexcept = nullptr;

  /// Packs rows [row_begin, row_end) of per-PE words into `planes` bit
  /// planes (plane j at offset j * plane_words). Fully overwrites the
  /// covered words, pads read 0 — no pre-zeroing needed, and row ranges
  /// write disjoint words, so the pool can split on rows.
  void (*pack_words)(const sim::PlaneGeometry& g, const sim::Word* src, int planes,
                     PlaneWord* out, std::size_t row_begin, std::size_t row_end) = nullptr;
};

/// The scalar arm (always compiled; the dispatch fallback).
[[nodiscard]] const PlaneKernels& scalar_kernels() noexcept;

/// The AVX2 / AVX-512 arms, or nullptr when the build did not compile
/// them (non-x86, or compiler without the flags) or the CPU cannot run
/// them. Tests iterate these directly to fuzz every arm.
[[nodiscard]] const PlaneKernels* avx2_kernels() noexcept;
[[nodiscard]] const PlaneKernels* avx512_kernels() noexcept;

/// The dispatched table / its variant (chosen once per process).
[[nodiscard]] const PlaneKernels& active() noexcept;
[[nodiscard]] SimdVariant active_variant() noexcept;

/// SIMD kernel-throughput counters, billed on the controller thread once
/// per dispatched sweep (BEFORE any pool chunking), so the totals are
/// independent of the pool size and of `plane_sweep_min_words` — the
/// profiler's determinism contract (docs/observability.md). Plain host
/// bookkeeping: never charged as SIMD steps.
struct SweepStats {
  std::uint64_t dispatches = 0;  // kernel sweeps issued
  std::uint64_t words = 0;       // total plane words those sweeps covered

  [[nodiscard]] SweepStats since(const SweepStats& earlier) const noexcept {
    return {dispatches - earlier.dispatches, words - earlier.words};
  }
};

/// The ppc layer's view of one plane sweep: the dispatched kernels plus
/// the machine's thread pool. Sweeps at least `min_words` words long are
/// chunked into contiguous plane-word ranges over the pool (one chunk per
/// pool lane, deterministic boundaries); smaller sweeps run inline.
/// Results are bit-identical for every pool size because no kernel
/// carries state across the word index.
class PlaneAlu {
 public:
  PlaneAlu() = default;
  PlaneAlu(const PlaneKernels& kernels, util::ThreadPool* pool,
           std::size_t min_words, SweepStats* stats = nullptr) noexcept
      : k_(&kernels), pool_(pool), min_words_(min_words), stats_(stats) {}

  [[nodiscard]] const PlaneKernels& kernels() const noexcept { return *k_; }

  void op_and(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
              std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) {
      k_->op_and(a + lo, b + lo, out + lo, hi - lo);
    });
  }
  void op_or(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
             std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) {
      k_->op_or(a + lo, b + lo, out + lo, hi - lo);
    });
  }
  void op_xor(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
              std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) {
      k_->op_xor(a + lo, b + lo, out + lo, hi - lo);
    });
  }
  void op_andnot(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                 std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) {
      k_->op_andnot(a + lo, b + lo, out + lo, hi - lo);
    });
  }
  void op_copy(const PlaneWord* a, PlaneWord* out, std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) {
      k_->op_copy(a + lo, out + lo, hi - lo);
    });
  }
  void op_zero(PlaneWord* out, std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) { k_->op_zero(out + lo, hi - lo); });
  }
  void masked_assign(const PlaneWord* mask, const PlaneWord* src, PlaneWord* dst,
                     std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) {
      k_->masked_assign(mask + lo, src + lo, dst + lo, hi - lo);
    });
  }
  void blend(const PlaneWord* cond, const PlaneWord* a, const PlaneWord* b,
             PlaneWord* out, std::size_t words) const {
    sweep(words, [&](std::size_t lo, std::size_t hi) {
      k_->blend(cond + lo, a + lo, b + lo, out + lo, hi - lo);
    });
  }

  // Early-exit scans stay inline: splitting them buys nothing.
  [[nodiscard]] bool all_zero(const PlaneWord* a, std::size_t words) const {
    return k_->all_zero(a, words);
  }
  [[nodiscard]] bool equal(const PlaneWord* a, const PlaneWord* b,
                           std::size_t words) const {
    return k_->equal(a, b, words);
  }

  void fill_scalar(sim::Word value, int h, std::size_t pw, const PlaneWord* full,
                   PlaneWord* out) const {
    for (int j = 0; j < h; ++j) {
      PlaneWord* plane = out + static_cast<std::size_t>(j) * pw;
      if ((value >> j) & 1u) {
        op_copy(full, plane, pw);
      } else {
        op_zero(plane, pw);
      }
    }
  }

  void add_sat(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
               const PlaneWord* full, PlaneWord* out) const {
    planes_sweep(h, pw, [&](std::size_t lo, std::size_t hi) {
      k_->add_sat(a, b, h, pw, full, out, lo, hi);
    });
  }
  void compare_lt(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                  const PlaneWord* full, PlaneWord* lt, PlaneWord* eq) const {
    planes_sweep(h, pw, [&](std::size_t lo, std::size_t hi) {
      k_->compare_lt(a, b, h, pw, full, lt, eq, lo, hi);
    });
  }
  void compare_eq(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                  const PlaneWord* full, PlaneWord* eq) const {
    planes_sweep(h, pw, [&](std::size_t lo, std::size_t hi) {
      k_->compare_eq(a, b, h, pw, full, eq, lo, hi);
    });
  }

  void pack_words(const sim::PlaneGeometry& g, const sim::Word* src, int planes,
                  PlaneWord* out) const {
    bill(g.plane_words() * static_cast<std::size_t>(planes));
    if (pool_ == nullptr || g.plane_words() * static_cast<std::size_t>(planes) < min_words_) {
      k_->pack_words(g, src, planes, out, 0, g.n);
      return;
    }
    pool_->parallel_for(g.n, [&](std::size_t lo, std::size_t hi) {
      k_->pack_words(g, src, planes, out, lo, hi);
    });
  }

 private:
  /// Controller-thread throughput billing; deterministic by construction
  /// (counts the whole sweep, not its chunks).
  void bill(std::size_t words) const noexcept {
    if (stats_ != nullptr) {
      ++stats_->dispatches;
      stats_->words += words;
    }
  }
  template <typename Body>
  void sweep(std::size_t words, Body&& body) const {
    bill(words);
    if (pool_ == nullptr || words < min_words_) {
      body(std::size_t{0}, words);
      return;
    }
    pool_->parallel_for(words, body);
  }
  /// Chunks the word domain [0, pw) when the TOTAL work (h planes) is big
  /// enough; every chunk runs all h planes of its word range.
  template <typename Body>
  void planes_sweep(int h, std::size_t pw, Body&& body) const {
    bill(static_cast<std::size_t>(h) * pw);
    if (pool_ == nullptr || static_cast<std::size_t>(h) * pw < min_words_) {
      body(std::size_t{0}, pw);
      return;
    }
    pool_->parallel_for(pw, body);
  }

  const PlaneKernels* k_ = &scalar_kernels();
  util::ThreadPool* pool_ = nullptr;
  std::size_t min_words_ = static_cast<std::size_t>(-1);
  SweepStats* stats_ = nullptr;
};

}  // namespace ppa::sim::plane_kernels
