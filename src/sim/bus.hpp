// The reconfigurable bus engine.
//
// Each of the n rows (and each of the n columns) carries one bus. Under a
// given global direction, every PE whose switch is *Short* passes the
// signal through; every PE whose switch is *Open* breaks the bus at its
// position and drives the segment on its downstream side. A PE always
// *reads* its upstream port, so the value a PE receives is the value
// injected by the nearest Open PE strictly upstream of it ("the extreme
// node of the cluster the processor belongs to", paper Section 2).
//
// Topology: the MCP algorithm broadcasts from row d to *all* rows and from
// the diagonal to row d, which for interior d only reaches every PE if the
// bus wraps around — so Ring is the default; Linear is provided (with
// explicit undriven-segment reporting) to document exactly which steps of
// the algorithm rely on the wrap (tests/sim_bus_test.cpp).
//
// The wired-OR cycle models an open-drain response line on the same
// segments: every PE of a cluster can pull the line (a Short switch passes
// the line through the PE, and its input tap still sees it), so the whole
// cluster computes the OR of its members' bits in one bus cycle. Cluster
// membership of PE x is {driver(x)} ∪ {Short PEs driven by driver(x)};
// a downstream Open PE reads the segment but injects only into its own.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/geometry.hpp"

namespace ppa::sim {

/// Per-PE machine word (the h-bit field lives in the low bits).
using Word = std::uint32_t;
/// Per-PE flag (0 or 1). uint8_t, not bool, so spans and vectors are sane.
using Flag = std::uint8_t;

/// How the row/column buses terminate.
enum class BusTopology { Ring, Linear };

/// Result of one bus cycle over the whole array.
struct BusResult {
  std::vector<Word> values;  // value received at each PE (0 where undriven)
  std::vector<Flag> driven;  // 1 iff the PE's upstream port was driven
  std::size_t max_segment = 0;  // longest driven segment, in switch hops
};

/// One broadcast bus cycle: PEs with open[pe] == 1 drive their src value
/// downstream in `dir`; every PE receives from its nearest upstream driver.
/// `n` is the array side; all spans have n*n elements.
[[nodiscard]] BusResult bus_broadcast(std::size_t n, BusTopology topology, Direction dir,
                                      std::span<const Word> src, std::span<const Flag> open);

// ---------------------------------------------------------------------------
// Allocation-free variants: the caller supplies the n*n output buffers
// (the ppc layer feeds them from its register arena so a bus cycle costs no
// heap traffic). Each returns the longest driven segment (BusResult's
// max_segment). Every output element is written. The Flag overloads route
// parallel logicals over the same switches as 1-bit lanes.
// ---------------------------------------------------------------------------

std::size_t bus_broadcast_into(std::size_t n, BusTopology topology, Direction dir,
                               std::span<const Word> src, std::span<const Flag> open,
                               std::span<Word> values, std::span<Flag> driven);

std::size_t bus_broadcast_into(std::size_t n, BusTopology topology, Direction dir,
                               std::span<const Flag> src, std::span<const Flag> open,
                               std::span<Flag> values, std::span<Flag> driven);

/// Wired-OR writes no driven flags: an open-collector read never floats
/// (see bus_wired_or below), so the result is implicitly all-driven.
std::size_t bus_wired_or_into(std::size_t n, BusTopology topology, Direction dir,
                              std::span<const Flag> src, std::span<const Flag> open,
                              std::span<Flag> values);

/// One wired-OR bus cycle. The open-collector line needs no driver: the
/// Open switches split each line into electrically separate segments, and
/// every PE reads the segment it pulls — an Open PE pulls (and reads) its
/// DOWNSTREAM segment, a Short PE the segment it sits on. Consequently a
/// wired-OR read is never floating (`driven` is all ones): a segment
/// nobody pulls simply reads 0. Segment membership of PE x is
/// {driver(x)} ∪ {Short PEs with the same driver}, where driver(x) is the
/// nearest Open PE at or upstream of x; on a Linear bus the PEs upstream
/// of the first Open switch form a head segment of their own.
/// src values must be 0/1.
[[nodiscard]] BusResult bus_wired_or(std::size_t n, BusTopology topology, Direction dir,
                                     std::span<const Flag> src, std::span<const Flag> open);

}  // namespace ppa::sim
