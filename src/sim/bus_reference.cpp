#include "sim/bus_reference.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace ppa::sim::reference {

namespace {

constexpr std::size_t kNoDriver = std::numeric_limits<std::size_t>::max();

/// Maps (line, position-in-flow-order) to a PE id. For row buses the line
/// is a row and positions run along columns; for column buses vice versa.
/// `reversed` flips the flow order (West / North).
struct LineMap {
  std::size_t n;
  Axis axis;
  bool reversed;

  [[nodiscard]] std::size_t pe(std::size_t line, std::size_t k) const noexcept {
    const std::size_t q = reversed ? n - 1 - k : k;
    return axis == Axis::Row ? line * n + q : q * n + line;
  }
};

LineMap line_map(std::size_t n, Direction dir) noexcept {
  return LineMap{n, axis_of(dir), dir == Direction::West || dir == Direction::North};
}

/// Index (in flow order) of the last Open position on a line, or kNoDriver.
std::size_t last_open(const LineMap& map, std::size_t line, std::span<const Flag> open) {
  std::size_t result = kNoDriver;
  for (std::size_t k = 0; k < map.n; ++k) {
    if (open[map.pe(line, k)]) result = k;
  }
  return result;
}

void check_sizes(std::size_t n, std::size_t src_size, std::size_t open_size) {
  PPA_REQUIRE(n >= 1, "array side must be positive");
  PPA_REQUIRE(src_size == n * n && open_size == n * n,
              "bus operands must cover the whole array");
}

}  // namespace

BusResult bus_broadcast(std::size_t n, BusTopology topology, Direction dir,
                        std::span<const Word> src, std::span<const Flag> open) {
  check_sizes(n, src.size(), open.size());
  const LineMap map = line_map(n, dir);
  BusResult result;
  result.values.assign(n * n, 0);
  result.driven.assign(n * n, 0);

  for (std::size_t line = 0; line < n; ++line) {
    const std::size_t s = last_open(map, line, open);
    if (s == kNoDriver) continue;  // floating bus: whole line undriven

    std::size_t run = 0;
    if (topology == BusTopology::Ring) {
      // Walk downstream starting just past the last Open node; every
      // position reads the most recent Open node passed ("cur").
      std::size_t cur = s;
      Word cur_value = src[map.pe(line, cur)];
      for (std::size_t step = 1; step <= n; ++step) {
        const std::size_t k = (s + step) % n;
        const std::size_t p = map.pe(line, k);
        result.values[p] = cur_value;
        result.driven[p] = 1;
        ++run;
        if (open[p]) {
          result.max_segment = std::max(result.max_segment, run);
          run = 0;
          cur = k;
          cur_value = src[p];
        }
      }
      result.max_segment = std::max(result.max_segment, run);
    } else {
      // Linear: positions at or before the first Open node float.
      bool have_driver = false;
      Word cur_value = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t p = map.pe(line, k);
        if (have_driver) {
          result.values[p] = cur_value;
          result.driven[p] = 1;
          ++run;
        }
        if (open[p]) {
          result.max_segment = std::max(result.max_segment, run);
          run = 0;
          have_driver = true;
          cur_value = src[p];
        }
      }
      result.max_segment = std::max(result.max_segment, run);
    }
  }
  return result;
}

BusResult bus_wired_or(std::size_t n, BusTopology topology, Direction dir,
                       std::span<const Flag> src, std::span<const Flag> open) {
  check_sizes(n, src.size(), open.size());
  const LineMap map = line_map(n, dir);
  BusResult result;
  result.values.assign(n * n, 0);
  // An open-collector read never floats: a segment nobody pulls reads 0.
  result.driven.assign(n * n, 1);

  // Per-line scratch, reused across lines. Segment key per position: an
  // Open PE keys its own (downstream) segment, a Short PE the segment it
  // sits on. Key n is the Linear head segment (upstream of every Open
  // switch, or the whole line when there is none).
  const std::size_t kHead = n;
  std::vector<std::size_t> key(n, kHead);
  std::vector<Flag> acc(n + 1, 0);
  std::vector<std::size_t> members(n + 1, 0);

  for (std::size_t line = 0; line < n; ++line) {
    const std::size_t s = last_open(map, line, open);

    if (topology == BusTopology::Ring && s != kNoDriver) {
      std::size_t cur = s;
      for (std::size_t step = 1; step <= n; ++step) {
        const std::size_t k = (s + step) % n;
        if (open[map.pe(line, k)]) cur = k;
        key[k] = cur;
      }
    } else {
      // Linear — or a Ring with no Open switch at all, which is a single
      // unsegmented loop and behaves like one head segment.
      std::size_t cur = kHead;
      for (std::size_t k = 0; k < n; ++k) {
        if (open[map.pe(line, k)]) cur = k;
        key[k] = cur;
      }
    }

    std::fill(acc.begin(), acc.end(), Flag{0});
    std::fill(members.begin(), members.end(), std::size_t{0});
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t p = map.pe(line, k);
      if (src[p] != 0) acc[key[k]] = 1;
      ++members[key[k]];
    }
    for (std::size_t k = 0; k < n; ++k) {
      result.values[map.pe(line, k)] = acc[key[k]];
      result.max_segment = std::max(result.max_segment, members[key[k]]);
    }
  }
  return result;
}

}  // namespace ppa::sim::reference
