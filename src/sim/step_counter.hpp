// SIMD step accounting.
//
// Every complexity claim in the paper is stated in SIMD instruction steps,
// so the simulator's primary output is a step counter, not wall time. Each
// machine primitive charges one step per *issued instruction* (the array
// executes it on all PEs simultaneously — that is the whole point of the
// model).
//
// Bus operations additionally record the longest segment they drove, so a
// *settle-delay ablation* (experiment E7b) can re-cost the same run under
// three physical models without re-running it:
//
//   Unit   — a bus cycle costs 1 regardless of segment length (the paper's
//            model; ref [2] argues the PPA bus settles within a clock).
//   Log    — cost 1 + ceil(log2(len)): a repeatered / tree-buffered bus.
//   Linear — cost len: a naive RC chain of pass transistors.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ppa::sim {

/// Instruction categories, each counted separately.
enum class StepCategory : int {
  Alu = 0,       // elementwise compute / masked register writeback
  Shift = 1,     // nearest-neighbour move
  BusBroadcast = 2,
  BusOr = 3,     // wired-OR bus cycle
  GlobalOr = 4,  // controller's global response line (loop tests)
  PanelIo = 5,   // controller panel load/unload on a virtualized (tiled)
                 // array — one step per p-wide row of words moved over the
                 // array's I/O ports (docs/tiling.md)
  Masking = 6,   // fault-masking overhead (docs/robustness.md): the 2 extra
                 // TMR voting trials of a masked bus cycle, or the ECC
                 // parity-plane beat riding a plane bus cycle. Kept separate
                 // so a masked run minus its Masking steps is bit-identical
                 // to the unmasked run on a fault-free machine.
  kCount = 7,
};

[[nodiscard]] const char* name_of(StepCategory c) noexcept;

/// Settle-delay model for re-costing bus cycles.
enum class BusDelayModel : int { Unit = 0, Log = 1, Linear = 2 };

/// Accumulated step counts. Copyable; subtract snapshots to measure phases.
class StepCounter {
 public:
  /// Charges `count` instructions of a non-bus category.
  void charge(StepCategory category, std::uint64_t count = 1) noexcept;

  /// Charges one bus cycle whose longest driven segment spans `max_segment`
  /// switch hops (used by the Log / Linear re-costing).
  void charge_bus(StepCategory category, std::size_t max_segment) noexcept;

  [[nodiscard]] std::uint64_t count(StepCategory category) const noexcept;

  /// Total SIMD steps under the paper's unit-cost model.
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// Total steps when bus cycles are re-costed under `model` (non-bus
  /// categories always cost 1 per instruction).
  [[nodiscard]] std::uint64_t total_under(BusDelayModel model) const noexcept;

  /// Steps elapsed since `baseline` (component-wise difference).
  [[nodiscard]] StepCounter since(const StepCounter& baseline) const noexcept;

  /// Component-wise accumulation of another counter, e.g. folding the
  /// per-destination counters of a threaded all-pairs run back into one
  /// total. Addition is commutative, so the merged total is independent of
  /// how runs were distributed over host threads.
  void merge(const StepCounter& other) noexcept;

  void reset() noexcept;

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const StepCounter&, const StepCounter&) = default;

 private:
  static constexpr std::size_t kCategories = static_cast<std::size_t>(StepCategory::kCount);
  std::array<std::uint64_t, kCategories> counts_{};
  // Extra cost (beyond the unit charge) accumulated for the two non-unit
  // delay models, per bus category.
  std::array<std::uint64_t, kCategories> log_extra_{};
  std::array<std::uint64_t, kCategories> linear_extra_{};
};

}  // namespace ppa::sim
