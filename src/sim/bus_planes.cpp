#include "sim/bus_planes.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace ppa::sim {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

[[nodiscard]] bool is_row_axis(Direction dir) noexcept {
  return dir == Direction::East || dir == Direction::West;
}

[[nodiscard]] std::size_t flow_row(std::size_t n, Direction dir, std::size_t k) noexcept {
  return dir == Direction::South ? k : n - 1 - k;
}

/// OR-masks the column range [clo, chi] of one row into every plane whose
/// bit is set in `drv_bits`, and into the driven plane unconditionally.
void fill_col_range(const PlaneGeometry& g, std::size_t row, std::size_t clo,
                    std::size_t chi, std::uint64_t drv_bits,
                    const std::size_t plane_words, PlaneWord* out, PlaneWord* driven) {
  if (clo > chi) return;
  const std::size_t w_lo = clo / kLanesPerWord;
  const std::size_t w_hi = chi / kLanesPerWord;
  for (std::size_t w = w_lo; w <= w_hi; ++w) {
    const std::size_t base = w * kLanesPerWord;
    const unsigned lo = static_cast<unsigned>(clo > base ? clo - base : 0);
    const unsigned hi = static_cast<unsigned>(std::min(chi - base, kLanesPerWord - 1));
    const PlaneWord mask =
        (hi >= 63 ? ~PlaneWord{0} : ((PlaneWord{1} << (hi + 1)) - 1)) & ~((PlaneWord{1} << lo) - 1);
    const std::size_t idx = row * g.row_words + w;
    if (driven != nullptr) driven[idx] |= mask;
    std::uint64_t bits = drv_bits;
    while (bits != 0) {
      const int j = __builtin_ctzll(bits);
      out[static_cast<std::size_t>(j) * plane_words + idx] |= mask;
      bits &= bits - 1;
    }
  }
}

/// True iff any src bit is set in columns [clo, chi] of `row`.
[[nodiscard]] bool any_in_col_range(const PlaneGeometry& g, const PlaneWord* plane,
                                    std::size_t row, std::size_t clo, std::size_t chi) {
  if (clo > chi) return false;
  const std::size_t w_lo = clo / kLanesPerWord;
  const std::size_t w_hi = chi / kLanesPerWord;
  for (std::size_t w = w_lo; w <= w_hi; ++w) {
    const std::size_t base = w * kLanesPerWord;
    const unsigned lo = static_cast<unsigned>(clo > base ? clo - base : 0);
    const unsigned hi = static_cast<unsigned>(std::min(chi - base, kLanesPerWord - 1));
    const PlaneWord mask =
        (hi >= 63 ? ~PlaneWord{0} : ((PlaneWord{1} << (hi + 1)) - 1)) & ~((PlaneWord{1} << lo) - 1);
    if ((plane[row * g.row_words + w] & mask) != 0) return true;
  }
  return false;
}

/// Calls `visit(flow_position, column)` for every Open bit of `row`, in
/// flow order for `dir`.
template <typename Visit>
void for_each_open_in_row(const PlaneGeometry& g, const PlaneWord* open, std::size_t row,
                          Direction dir, Visit&& visit) {
  const PlaneWord* base = open + row * g.row_words;
  if (dir == Direction::East) {
    for (std::size_t w = 0; w < g.row_words; ++w) {
      PlaneWord bits = base[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(__builtin_ctzll(bits));
        const std::size_t c = w * kLanesPerWord + b;
        visit(c, c);
        bits &= bits - 1;
      }
    }
  } else {
    for (std::size_t w = g.row_words; w-- > 0;) {
      PlaneWord bits = base[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(63 - __builtin_clzll(bits));
        const std::size_t c = w * kLanesPerWord + b;
        visit(g.n - 1 - c, c);
        bits &= ~(PlaneWord{1} << b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Row buses (East / West)
// ---------------------------------------------------------------------------

std::size_t row_broadcast(const PlaneGeometry& g, BusTopology topology, Direction dir,
                          const PlaneWord* src, int planes, const PlaneWord* open,
                          PlaneWord* out, PlaneWord* driven) {
  const std::size_t n = g.n;
  const std::size_t pw = g.plane_words();
  std::fill(out, out + pw * static_cast<std::size_t>(planes), PlaneWord{0});
  std::fill(driven, driven + pw, PlaneWord{0});
  std::size_t max_segment = 0;

  const auto fill_flow = [&](std::size_t row, std::size_t fa, std::size_t fb,
                             std::uint64_t drv) {
    if (fa > fb) return;
    const std::size_t clo = dir == Direction::East ? fa : n - 1 - fb;
    const std::size_t chi = dir == Direction::East ? fb : n - 1 - fa;
    fill_col_range(g, row, clo, chi, drv, pw, out, driven);
  };

  for (std::size_t r = 0; r < n; ++r) {
    std::size_t first = kNone;
    std::size_t prev = kNone;
    std::uint64_t drv = 0;
    for_each_open_in_row(g, open, r, dir, [&](std::size_t k, std::size_t c) {
      if (prev != kNone) {
        max_segment = std::max(max_segment, k - prev);
        fill_flow(r, prev + 1, k, drv);
      } else {
        first = k;
      }
      const std::size_t word = r * g.row_words + c / kLanesPerWord;
      const unsigned bit = PlaneGeometry::bit_of(c);
      drv = 0;
      for (int j = 0; j < planes; ++j) {
        drv |= ((src[static_cast<std::size_t>(j) * pw + word] >> bit) & 1u) << j;
      }
      prev = k;
    });
    if (prev == kNone) continue;  // no driver: the whole line floats (zeros)
    if (topology == BusTopology::Ring) {
      fill_flow(r, prev + 1, n - 1, drv);
      fill_flow(r, 0, first, drv);
      max_segment = std::max(max_segment, n - prev + first);
    } else {
      fill_flow(r, prev + 1, n - 1, drv);
      max_segment = std::max(max_segment, n - 1 - prev);
    }
  }
  return max_segment;
}

std::size_t row_wired_or(const PlaneGeometry& g, BusTopology topology, Direction dir,
                         const PlaneWord* src, const PlaneWord* open, PlaneWord* out) {
  const std::size_t n = g.n;
  const std::size_t pw = g.plane_words();
  std::fill(out, out + pw, PlaneWord{0});
  std::size_t max_segment = 0;

  const auto range_or = [&](std::size_t row, std::size_t fa, std::size_t fb) -> bool {
    if (fa > fb) return false;
    const std::size_t clo = dir == Direction::East ? fa : n - 1 - fb;
    const std::size_t chi = dir == Direction::East ? fb : n - 1 - fa;
    return any_in_col_range(g, src, row, clo, chi);
  };
  const auto fill_flow = [&](std::size_t row, std::size_t fa, std::size_t fb, bool value) {
    if (!value || fa > fb) return;
    const std::size_t clo = dir == Direction::East ? fa : n - 1 - fb;
    const std::size_t chi = dir == Direction::East ? fb : n - 1 - fa;
    fill_col_range(g, row, clo, chi, 1u, pw, out, nullptr);
  };

  for (std::size_t r = 0; r < n; ++r) {
    std::size_t first = kNone;
    std::size_t prev = kNone;
    for_each_open_in_row(g, open, r, dir, [&](std::size_t k, std::size_t) {
      if (prev == kNone) {
        first = k;
      } else {
        fill_flow(r, prev, k - 1, range_or(r, prev, k - 1));
        max_segment = std::max(max_segment, k - prev);
      }
      prev = k;
    });
    if (prev == kNone) {
      // No Open switch: one unsegmented line.
      fill_flow(r, 0, n - 1, range_or(r, 0, n - 1));
      max_segment = std::max(max_segment, n);
    } else if (topology == BusTopology::Ring) {
      // The tail segment and the head stub [0, first) merge around the wrap.
      const bool head = first > 0 && range_or(r, 0, first - 1);
      const bool tail = range_or(r, prev, n - 1);
      const bool v = head || tail;
      fill_flow(r, prev, n - 1, v);
      if (first > 0) fill_flow(r, 0, first - 1, v);
      max_segment = std::max(max_segment, n - prev + first);
    } else {
      fill_flow(r, prev, n - 1, range_or(r, prev, n - 1));
      max_segment = std::max(max_segment, n - prev);
      if (first > 0) fill_flow(r, 0, first - 1, range_or(r, 0, first - 1));
      max_segment = std::max(max_segment, first);
    }
  }
  return max_segment;
}

// ---------------------------------------------------------------------------
// Column buses (South / North): 64 lines per word-column, resolved with
// vertical scans over the rows in flow order.
// ---------------------------------------------------------------------------

/// max_segment of the column lines, computed from per-line Open positions
/// (one pass over the open plane; O(n * row_words + popcount)).
std::size_t column_max_segment(const PlaneGeometry& g, BusTopology topology, Direction dir,
                               const PlaneWord* open, bool wired_or) {
  const std::size_t n = g.n;
  std::vector<std::size_t> first(n, kNone);
  std::vector<std::size_t> last(n, 0);
  std::vector<std::size_t> gap(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = flow_row(n, dir, k);
    for (std::size_t w = 0; w < g.row_words; ++w) {
      PlaneWord bits = open[r * g.row_words + w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(__builtin_ctzll(bits));
        const std::size_t c = w * kLanesPerWord + b;
        if (first[c] == kNone) {
          first[c] = k;
        } else {
          gap[c] = std::max(gap[c], k - last[c]);
        }
        last[c] = k;
        bits &= bits - 1;
      }
    }
  }
  std::size_t max_segment = 0;
  for (std::size_t c = 0; c < n; ++c) {
    if (first[c] == kNone) {
      if (wired_or) max_segment = std::max(max_segment, n);
      continue;
    }
    std::size_t line = gap[c];
    if (topology == BusTopology::Ring) {
      line = std::max(line, n - last[c] + first[c]);
    } else if (wired_or) {
      line = std::max({line, n - last[c], first[c]});
    } else {
      line = std::max(line, n - 1 - last[c]);
    }
    max_segment = std::max(max_segment, line);
  }
  return max_segment;
}

std::size_t column_broadcast(const PlaneGeometry& g, BusTopology topology, Direction dir,
                             const PlaneWord* src, int planes, const PlaneWord* open,
                             PlaneWord* out, PlaneWord* driven) {
  const std::size_t n = g.n;
  const std::size_t pw = g.plane_words();
  PlaneWord cur[32] = {};
  PPA_ASSERT(planes <= 32, "a register has at most 32 planes");
  for (std::size_t w = 0; w < g.row_words; ++w) {
    for (int j = 0; j < planes; ++j) cur[j] = 0;
    PlaneWord have = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = flow_row(n, dir, k) * g.row_words + w;
      const PlaneWord ow = open[idx];
      for (int j = 0; j < planes; ++j) {
        out[static_cast<std::size_t>(j) * pw + idx] = cur[j] & have;
        cur[j] = (cur[j] & ~ow) | (src[static_cast<std::size_t>(j) * pw + idx] & ow);
      }
      driven[idx] = have;
      have |= ow;
    }
    if (topology == BusTopology::Ring && have != 0) {
      // Wrap: every lane's prefix through its FIRST Open row reads the
      // signal carried around from its LAST Open row (now in cur).
      PlaneWord pending = have;  // lanes whose first Open row is still ahead
      for (std::size_t k = 0; k < n && pending != 0; ++k) {
        const std::size_t idx = flow_row(n, dir, k) * g.row_words + w;
        for (int j = 0; j < planes; ++j) {
          out[static_cast<std::size_t>(j) * pw + idx] |= cur[j] & pending;
        }
        driven[idx] |= pending;
        pending &= ~open[idx];
      }
    }
  }
  return column_max_segment(g, topology, dir, open, /*wired_or=*/false);
}

std::size_t column_wired_or(const PlaneGeometry& g, BusTopology topology, Direction dir,
                            const PlaneWord* src, const PlaneWord* open, PlaneWord* out) {
  const std::size_t n = g.n;
  std::vector<PlaneWord> forward(n);    // running OR of the segment so far
  std::vector<PlaneWord> head_mask(n);  // lanes still before their first Open row
  for (std::size_t w = 0; w < g.row_words; ++w) {
    PlaneWord acc = 0;
    PlaneWord have = 0;
    PlaneWord head_acc = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = flow_row(n, dir, k) * g.row_words + w;
      const PlaneWord ow = open[idx];
      const PlaneWord sw = src[idx];
      const PlaneWord head = ~(have | ow);
      head_acc |= sw & head;
      // An Open row starts a new segment that includes its own src bit.
      acc = sw | (acc & ~ow);
      forward[k] = acc;
      head_mask[k] = head;
      have |= ow;
    }
    // Backward pass: G carries each row's full-segment OR; M marks lanes
    // with no Open row strictly downstream (the tail segment).
    PlaneWord seg = forward[n - 1];
    PlaneWord tail = ~PlaneWord{0};
    const PlaneWord wrap = forward[n - 1] | head_acc;
    for (std::size_t k = n; k-- > 0;) {
      const std::size_t idx = flow_row(n, dir, k) * g.row_words + w;
      PlaneWord value;
      if (topology == BusTopology::Ring) {
        const PlaneWord in_wrap = head_mask[k] | tail;
        value = (wrap & in_wrap) | (seg & ~in_wrap);
      } else {
        value = (head_acc & head_mask[k]) | (seg & ~head_mask[k]);
      }
      out[idx] = value;
      if (k > 0) {
        const PlaneWord ow = open[idx];
        seg = (forward[k - 1] & ow) | (seg & ~ow);
        tail &= ~ow;
      }
    }
  }
  return column_max_segment(g, topology, dir, open, /*wired_or=*/true);
}

}  // namespace

std::size_t plane_broadcast_into(const PlaneGeometry& g, BusTopology topology,
                                 Direction dir, const PlaneWord* src, int planes,
                                 const PlaneWord* open, PlaneWord* out,
                                 PlaneWord* driven) {
  PPA_REQUIRE(g.n >= 1, "array side must be positive");
  PPA_REQUIRE(planes >= 1, "a bus cycle needs at least one plane");
  return is_row_axis(dir) ? row_broadcast(g, topology, dir, src, planes, open, out, driven)
                          : column_broadcast(g, topology, dir, src, planes, open, out, driven);
}

std::size_t plane_wired_or_into(const PlaneGeometry& g, BusTopology topology,
                                Direction dir, const PlaneWord* src,
                                const PlaneWord* open, PlaneWord* out) {
  PPA_REQUIRE(g.n >= 1, "array side must be positive");
  return is_row_axis(dir) ? row_wired_or(g, topology, dir, src, open, out)
                          : column_wired_or(g, topology, dir, src, open, out);
}

void plane_shift(const PlaneGeometry& g, Direction dir, const PlaneWord* src, int planes,
                 std::uint64_t fill_bits, PlaneWord* dst) {
  PPA_REQUIRE(src != dst, "shift source and destination must not alias");
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();
  for (int j = 0; j < planes; ++j) {
    const PlaneWord* sp = src + static_cast<std::size_t>(j) * pw;
    PlaneWord* dp = dst + static_cast<std::size_t>(j) * pw;
    const bool fill = (fill_bits >> j) & 1u;
    switch (dir) {
      case Direction::East:
        // dst(r, c) = src(r, c-1); column 0 reads the fill bit.
        for (std::size_t r = 0; r < n; ++r) {
          const PlaneWord* s = sp + r * rw;
          PlaneWord* d = dp + r * rw;
          PlaneWord carry = fill ? 1u : 0u;
          for (std::size_t w = 0; w < rw; ++w) {
            const PlaneWord next_carry = s[w] >> 63;
            d[w] = (s[w] << 1) | carry;
            carry = next_carry;
          }
          d[rw - 1] &= g.word_mask(rw - 1);
        }
        break;
      case Direction::West:
        // dst(r, c) = src(r, c+1); column n-1 reads the fill bit.
        for (std::size_t r = 0; r < n; ++r) {
          const PlaneWord* s = sp + r * rw;
          PlaneWord* d = dp + r * rw;
          for (std::size_t w = 0; w < rw; ++w) {
            d[w] = (s[w] >> 1) | (w + 1 < rw ? s[w + 1] << 63 : PlaneWord{0});
          }
          if (fill) d[(n - 1) / kLanesPerWord] |= PlaneWord{1} << PlaneGeometry::bit_of(n - 1);
        }
        break;
      case Direction::South:
        // dst(r, ·) = src(r-1, ·); row 0 reads the fill bit.
        for (std::size_t r = n; r-- > 1;) {
          for (std::size_t w = 0; w < rw; ++w) dp[r * rw + w] = sp[(r - 1) * rw + w];
        }
        for (std::size_t w = 0; w < rw; ++w) dp[w] = fill ? g.word_mask(w) : PlaneWord{0};
        break;
      case Direction::North:
        // dst(r, ·) = src(r+1, ·); row n-1 reads the fill bit.
        for (std::size_t r = 0; r + 1 < n; ++r) {
          for (std::size_t w = 0; w < rw; ++w) dp[r * rw + w] = sp[(r + 1) * rw + w];
        }
        for (std::size_t w = 0; w < rw; ++w) {
          dp[(n - 1) * rw + w] = fill ? g.word_mask(w) : PlaneWord{0};
        }
        break;
    }
  }
}

}  // namespace ppa::sim
