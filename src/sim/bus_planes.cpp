#include "sim/bus_planes.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "util/check.hpp"

namespace ppa::sim {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

[[nodiscard]] bool is_row_axis(Direction dir) noexcept {
  return dir == Direction::East || dir == Direction::West;
}

[[nodiscard]] std::size_t flow_row(std::size_t n, Direction dir, std::size_t k) noexcept {
  return dir == Direction::South ? k : n - 1 - k;
}

/// max_segment partials from concurrent chunks merge with max, which is
/// commutative and idempotent — the result is identical for every chunk
/// interleaving (and every pool size).
void merge_max(std::atomic<std::size_t>& into, std::size_t value) noexcept {
  std::size_t cur = into.load(std::memory_order_relaxed);
  while (cur < value &&
         !into.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Runs `body(begin, end)` over [0, total_units), chunked across the pool
/// when the cycle is big enough to amortize the fan-out. Chunks own
/// disjoint unit ranges, so bodies never race on output words.
template <typename Body>
void run_chunked(const PlaneBusExec& exec, std::size_t total_units,
                 std::size_t total_words, const Body& body) {
  if (exec.pool != nullptr && exec.pool->worker_count() > 0 && total_units > 1 &&
      total_words >= exec.min_words) {
    exec.pool->parallel_for(total_units, body);
  } else {
    body(0, total_units);
  }
}

/// Grows (never shrinks) a scratch vector to `need` elements.
template <typename T>
[[nodiscard]] T* grown(std::vector<T>& v, std::size_t need) {
  if (v.size() < need) v.resize(need);
  return v.data();
}

/// OR-masks the column range [clo, chi] of one row into every plane whose
/// bit is set in `drv_bits`, and into the driven plane unconditionally.
void fill_col_range(const PlaneGeometry& g, std::size_t row, std::size_t clo,
                    std::size_t chi, std::uint64_t drv_bits,
                    const std::size_t plane_words, PlaneWord* out, PlaneWord* driven) {
  if (clo > chi) return;
  const std::size_t w_lo = clo / kLanesPerWord;
  const std::size_t w_hi = chi / kLanesPerWord;
  for (std::size_t w = w_lo; w <= w_hi; ++w) {
    const std::size_t base = w * kLanesPerWord;
    const unsigned lo = static_cast<unsigned>(clo > base ? clo - base : 0);
    const unsigned hi = static_cast<unsigned>(std::min(chi - base, kLanesPerWord - 1));
    const PlaneWord mask =
        (hi >= 63 ? ~PlaneWord{0} : ((PlaneWord{1} << (hi + 1)) - 1)) & ~((PlaneWord{1} << lo) - 1);
    const std::size_t idx = row * g.row_words + w;
    if (driven != nullptr) driven[idx] |= mask;
    std::uint64_t bits = drv_bits;
    while (bits != 0) {
      const int j = __builtin_ctzll(bits);
      out[static_cast<std::size_t>(j) * plane_words + idx] |= mask;
      bits &= bits - 1;
    }
  }
}

/// True iff any src bit is set in columns [clo, chi] of `row`.
[[nodiscard]] bool any_in_col_range(const PlaneGeometry& g, const PlaneWord* plane,
                                    std::size_t row, std::size_t clo, std::size_t chi) {
  if (clo > chi) return false;
  const std::size_t w_lo = clo / kLanesPerWord;
  const std::size_t w_hi = chi / kLanesPerWord;
  for (std::size_t w = w_lo; w <= w_hi; ++w) {
    const std::size_t base = w * kLanesPerWord;
    const unsigned lo = static_cast<unsigned>(clo > base ? clo - base : 0);
    const unsigned hi = static_cast<unsigned>(std::min(chi - base, kLanesPerWord - 1));
    const PlaneWord mask =
        (hi >= 63 ? ~PlaneWord{0} : ((PlaneWord{1} << (hi + 1)) - 1)) & ~((PlaneWord{1} << lo) - 1);
    if ((plane[row * g.row_words + w] & mask) != 0) return true;
  }
  return false;
}

/// Open-switch count of one row.
[[nodiscard]] std::size_t row_open_count(const PlaneGeometry& g, const PlaneWord* open,
                                         std::size_t row) noexcept {
  const PlaneWord* base = open + row * g.row_words;
  std::size_t m = 0;
  for (std::size_t w = 0; w < g.row_words; ++w) {
    m += static_cast<std::size_t>(__builtin_popcountll(base[w]));
  }
  return m;
}

/// Calls `visit(flow_position, column)` for every Open bit of `row`, in
/// flow order for `dir`.
template <typename Visit>
void for_each_open_in_row(const PlaneGeometry& g, const PlaneWord* open, std::size_t row,
                          Direction dir, Visit&& visit) {
  const PlaneWord* base = open + row * g.row_words;
  if (dir == Direction::East) {
    for (std::size_t w = 0; w < g.row_words; ++w) {
      PlaneWord bits = base[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(__builtin_ctzll(bits));
        const std::size_t c = w * kLanesPerWord + b;
        visit(c, c);
        bits &= bits - 1;
      }
    }
  } else {
    for (std::size_t w = g.row_words; w-- > 0;) {
      PlaneWord bits = base[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(63 - __builtin_clzll(bits));
        const std::size_t c = w * kLanesPerWord + b;
        visit(g.n - 1 - c, c);
        bits &= ~(PlaneWord{1} << b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Broadcast plan cache (BroadcastPlanCache): exact-key LRU lookup shared by
// the row and column broadcast resolvers. A hit skips the whole switch
// resolution pass; a miss rebuilds the least-recently-used slot.
// ---------------------------------------------------------------------------

/// Cache probe. Returns the matching slot with hit=true; on a miss, either
/// the LRU victim to record into (configuration seen before, hit=false) or
/// nullptr (first sight — the caller must run the plain resolver and leave
/// the cache alone).
[[nodiscard]] BroadcastPlan* lookup_broadcast_plan(BroadcastPlanCache& cache,
                                                   const PlaneGeometry& g,
                                                   BusTopology topology, Direction dir,
                                                   const PlaneWord* open, bool& hit) {
  const std::size_t pw = g.plane_words();
  for (BroadcastPlan& slot : cache.slots) {
    if (slot.n == g.n && slot.topology == static_cast<std::uint8_t>(topology) &&
        slot.dir == static_cast<std::uint8_t>(dir) && slot.open.size() == pw &&
        std::equal(slot.open.begin(), slot.open.end(), open)) {
      slot.stamp = ++cache.clock;
      ++cache.hits;
      hit = true;
      return &slot;
    }
  }
  ++cache.misses;
  hit = false;
  // Second-chance filter: plan only configurations seen at least twice. A
  // hash collision merely plans one cycle early — slot matches stay exact.
  std::uint64_t h = std::uint64_t{0x9E3779B97F4A7C15} ^
                    (static_cast<std::uint64_t>(g.n) << 16) ^
                    (static_cast<std::uint64_t>(topology) << 8) ^
                    static_cast<std::uint64_t>(dir);
  for (std::size_t w = 0; w < pw; ++w) {
    h = (h ^ open[w]) * std::uint64_t{0x100000001B3};
  }
  h |= 1;  // 0 marks an empty seen[] entry
  bool seen = false;
  for (std::uint64_t& s : cache.seen) {
    if (s == h) {
      seen = true;
      s = 0;
      break;
    }
  }
  if (!seen) {
    cache.seen[cache.seen_next] = h;
    cache.seen_next = (cache.seen_next + 1) % BroadcastPlanCache::kSeen;
    return nullptr;
  }
  BroadcastPlan* victim = nullptr;
  for (BroadcastPlan& slot : cache.slots) {
    if (slot.n == 0) {
      victim = &slot;
      break;
    }
    if (victim == nullptr || slot.stamp < victim->stamp) victim = &slot;
  }
  victim->stamp = ++cache.clock;
  return victim;
}

void stamp_plan_key(const PlaneGeometry& g, BusTopology topology, Direction dir,
                    const PlaneWord* open, BroadcastPlan& plan) {
  plan.open.assign(open, open + g.plane_words());
  plan.n = g.n;
  plan.topology = static_cast<std::uint8_t>(topology);
  plan.dir = static_cast<std::uint8_t>(dir);
  plan.whole_rows.clear();
  plan.segs.clear();
  plan.col_have.clear();
  plan.col_pend.clear();
  plan.k_stop = 0;
}

/// True when run_chunked would fan this cycle out over the pool — the plan
/// cache serves only inline cycles (the paper-scale configuration), so the
/// chunked resolvers stay exactly as profiled.
[[nodiscard]] bool would_chunk(const PlaneBusExec& exec, std::size_t total_units,
                               std::size_t total_words) noexcept {
  return exec.pool != nullptr && exec.pool->worker_count() > 0 && total_units > 1 &&
         total_words >= exec.min_words;
}

// ---------------------------------------------------------------------------
// Row buses (East / West)
// ---------------------------------------------------------------------------
//
// Both resolvers special-case the configurations where a whole row is one
// segment: zero Open switches, and — on a ring — exactly one (the head and
// tail intervals meet around the wrap). Those are the overwhelmingly
// common rows in the minimum-cost-path kernels (Open = the cluster
// delimiter L, at most one per row), and they reduce to whole-row masked
// fills with no per-bit scanning.

/// One word's worth of segment fill: OR `mask` into plane word `widx`
/// (absolute, row * row_words + w) of every plane whose bit is set in
/// `drv`. A register has at most 32 planes, so drv fits 32 bits.
struct RowFill {
  std::uint32_t widx;
  std::uint32_t drv;
  PlaneWord mask;
};

/// Fused miss path: the same resolve-and-fill pass as the chunked resolver
/// below, recording the configuration into `plan` as it goes — so a miss
/// costs what the plain resolver costs (the minimum-variant kernels issue
/// data-dependent configurations that never repeat, and they must not pay
/// a separate resolve pass for a plan nothing will reuse).
void row_broadcast_record(const PlaneGeometry& g, BusTopology topology, Direction dir,
                          const PlaneWord* src, int planes, const PlaneWord* open,
                          PlaneWord* out, PlaneWord* driven, BroadcastPlan& plan) {
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();
  stamp_plan_key(g, topology, dir, open, plan);
  std::size_t max_segment = 0;

  std::fill(driven, driven + pw, PlaneWord{0});
  for (int j = 0; j < planes; ++j) {
    PlaneWord* p = out + static_cast<std::size_t>(j) * pw;
    std::fill(p, p + pw, PlaneWord{0});
  }
  const auto driver_bits = [&](std::size_t row, std::size_t c) {
    const std::size_t word = row * rw + c / kLanesPerWord;
    const unsigned bit = PlaneGeometry::bit_of(c);
    std::uint64_t drv = 0;
    for (int j = 0; j < planes; ++j) {
      drv |= ((src[static_cast<std::size_t>(j) * pw + word] >> bit) & 1u) << j;
    }
    return drv;
  };
  // Fill the flow interval [fa, fb] from the switch at `col`, and record
  // it; segments whose driver happens to be all-zero still go in the plan
  // (a hit replays the configuration under different data).
  const auto emit = [&](std::size_t row, std::size_t fa, std::size_t fb, std::size_t col,
                        std::uint64_t drv) {
    if (fa > fb) return;
    const std::size_t clo = dir == Direction::East ? fa : n - 1 - fb;
    const std::size_t chi = dir == Direction::East ? fb : n - 1 - fa;
    plan.segs.push_back({static_cast<std::uint32_t>(row), static_cast<std::uint32_t>(col),
                         static_cast<std::uint32_t>(clo), static_cast<std::uint32_t>(chi)});
    const std::size_t w_lo = clo / kLanesPerWord;
    const std::size_t w_hi = chi / kLanesPerWord;
    for (std::size_t w = w_lo; w <= w_hi; ++w) {
      const std::size_t base = w * kLanesPerWord;
      const unsigned lo = static_cast<unsigned>(clo > base ? clo - base : 0);
      const unsigned hi = static_cast<unsigned>(std::min(chi - base, kLanesPerWord - 1));
      const PlaneWord mask = (hi >= 63 ? ~PlaneWord{0} : ((PlaneWord{1} << (hi + 1)) - 1)) &
                             ~((PlaneWord{1} << lo) - 1);
      const std::size_t idx = row * rw + w;
      driven[idx] |= mask;
      std::uint64_t bits = drv;
      while (bits != 0) {
        const int j = __builtin_ctzll(bits);
        out[static_cast<std::size_t>(j) * pw + idx] |= mask;
        bits &= bits - 1;
      }
    }
  };

  for (std::size_t r = 0; r < n; ++r) {
    if (topology == BusTopology::Ring && row_open_count(g, open, r) == 1) {
      std::size_t c = 0;
      for (std::size_t w = 0; w < rw; ++w) {
        if (open[r * rw + w] != 0) {
          c = w * kLanesPerWord + static_cast<unsigned>(__builtin_ctzll(open[r * rw + w]));
          break;
        }
      }
      plan.whole_rows.push_back({static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(c)});
      for (std::size_t w = 0; w < rw; ++w) driven[r * rw + w] = g.word_mask(w);
      std::uint64_t drv = driver_bits(r, c);
      while (drv != 0) {
        const int j = __builtin_ctzll(drv);
        PlaneWord* p = out + static_cast<std::size_t>(j) * pw + r * rw;
        for (std::size_t w = 0; w < rw; ++w) p[w] = g.word_mask(w);
        drv &= drv - 1;
      }
      max_segment = std::max(max_segment, n);
      continue;
    }
    std::size_t first = kNone;
    std::size_t prev = kNone;
    std::size_t col = 0;
    std::uint64_t drv = 0;
    for_each_open_in_row(g, open, r, dir, [&](std::size_t k, std::size_t c) {
      if (prev != kNone) {
        max_segment = std::max(max_segment, k - prev);
        emit(r, prev + 1, k, col, drv);
      } else {
        first = k;
      }
      col = c;
      drv = driver_bits(r, c);
      prev = k;
    });
    if (prev != kNone) {
      if (topology == BusTopology::Ring) {
        emit(r, prev + 1, n - 1, col, drv);
        emit(r, 0, first, col, drv);
        max_segment = std::max(max_segment, n - prev + first);
      } else {
        emit(r, prev + 1, n - 1, col, drv);
        max_segment = std::max(max_segment, n - 1 - prev);
      }
    }
  }
  plan.driven.assign(driven, driven + pw);
  plan.max_segment = max_segment;
}

/// Executes one row broadcast from a resolved plan: re-derives each
/// segment's driver bits from its recorded column and stamps the fills.
void row_broadcast_exec(const PlaneGeometry& g, const BroadcastPlan& plan,
                        const PlaneWord* src, int planes, PlaneWord* out,
                        PlaneWord* driven) {
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();
  std::copy(plan.driven.begin(), plan.driven.end(), driven);
  for (int j = 0; j < planes; ++j) {
    PlaneWord* p = out + static_cast<std::size_t>(j) * pw;
    std::fill(p, p + pw, PlaneWord{0});
  }
  const auto driver_bits = [&](std::size_t row, std::size_t c) {
    const std::size_t word = row * rw + c / kLanesPerWord;
    const unsigned bit = PlaneGeometry::bit_of(c);
    std::uint64_t drv = 0;
    for (int j = 0; j < planes; ++j) {
      drv |= ((src[static_cast<std::size_t>(j) * pw + word] >> bit) & 1u) << j;
    }
    return drv;
  };
  for (const BroadcastPlan::RowDrive& d : plan.whole_rows) {
    std::uint64_t drv = driver_bits(d.row, d.col);
    while (drv != 0) {
      const int j = __builtin_ctzll(drv);
      PlaneWord* p = out + static_cast<std::size_t>(j) * pw +
                     static_cast<std::size_t>(d.row) * rw;
      for (std::size_t w = 0; w < rw; ++w) p[w] = g.word_mask(w);
      drv &= drv - 1;
    }
  }
  for (const BroadcastPlan::RowSeg& s : plan.segs) {
    const std::uint64_t drv = driver_bits(s.row, s.col);
    if (drv == 0) continue;
    const std::size_t w_lo = s.clo / kLanesPerWord;
    const std::size_t w_hi = s.chi / kLanesPerWord;
    for (std::size_t w = w_lo; w <= w_hi; ++w) {
      const std::size_t base = w * kLanesPerWord;
      const unsigned lo = static_cast<unsigned>(s.clo > base ? s.clo - base : 0);
      const unsigned hi = static_cast<unsigned>(std::min(s.chi - base, kLanesPerWord - 1));
      const PlaneWord mask = (hi >= 63 ? ~PlaneWord{0} : ((PlaneWord{1} << (hi + 1)) - 1)) &
                             ~((PlaneWord{1} << lo) - 1);
      const std::size_t idx = static_cast<std::size_t>(s.row) * rw + w;
      std::uint64_t bits = drv;
      while (bits != 0) {
        const int j = __builtin_ctzll(bits);
        out[static_cast<std::size_t>(j) * pw + idx] |= mask;
        bits &= bits - 1;
      }
    }
  }
}

std::size_t row_broadcast(const PlaneGeometry& g, BusTopology topology, Direction dir,
                          const PlaneWord* src, int planes, const PlaneWord* open,
                          PlaneWord* out, PlaneWord* driven, const PlaneBusExec& exec) {
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();
  PPA_ASSERT(planes <= 32, "a register has at most 32 planes");
  if (exec.scratch != nullptr &&
      !would_chunk(exec, n, pw * static_cast<std::size_t>(planes + 1))) {
    bool hit = false;
    BroadcastPlan* plan = lookup_broadcast_plan(exec.scratch->broadcast_plans, g,
                                                topology, dir, open, hit);
    if (plan != nullptr) {
      if (hit) {
        row_broadcast_exec(g, *plan, src, planes, out, driven);
      } else {
        row_broadcast_record(g, topology, dir, src, planes, open, out, driven, *plan);
      }
      return plan->max_segment;
    }
  }
  std::atomic<std::size_t> max_segment{0};

  run_chunked(exec, n, pw * static_cast<std::size_t>(planes + 1),
              [&](std::size_t r_begin, std::size_t r_end) {
    std::size_t chunk_max = 0;
    // Pass 1 resolves the switch configuration once — per-row fill entries
    // and the driven plane — so pass 2 only touches planes a driver
    // actually pulls high. A segment tiles into at most (words spanned)
    // entries, so `fills` stays small.
    std::vector<RowFill> fills;
    fills.reserve((r_end - r_begin) * (rw + 2));
    // Rows whose single ring driver covers the whole line (the dominant
    // configuration in the MCP kernels) compress to one record; widx holds
    // the ROW index for these.
    std::vector<RowFill> whole_rows;
    whole_rows.reserve(r_end - r_begin);

    const auto emit = [&](std::size_t row, std::size_t fa, std::size_t fb,
                          std::uint64_t drv) {
      if (fa > fb) return;
      const std::size_t clo = dir == Direction::East ? fa : n - 1 - fb;
      const std::size_t chi = dir == Direction::East ? fb : n - 1 - fa;
      const std::size_t w_lo = clo / kLanesPerWord;
      const std::size_t w_hi = chi / kLanesPerWord;
      for (std::size_t w = w_lo; w <= w_hi; ++w) {
        const std::size_t base = w * kLanesPerWord;
        const unsigned lo = static_cast<unsigned>(clo > base ? clo - base : 0);
        const unsigned hi = static_cast<unsigned>(std::min(chi - base, kLanesPerWord - 1));
        const PlaneWord mask = (hi >= 63 ? ~PlaneWord{0} : ((PlaneWord{1} << (hi + 1)) - 1)) &
                               ~((PlaneWord{1} << lo) - 1);
        driven[row * rw + w] |= mask;
        if (drv != 0) {
          fills.push_back({static_cast<std::uint32_t>(row * rw + w),
                           static_cast<std::uint32_t>(drv), mask});
        }
      }
    };
    // Per-driver plane reads stay inline: the `planes` loads stride the
    // plane pitch at a CONSTANT step, which the hardware stride prefetcher
    // covers — both a plane-at-a-time gather and per-row word staging
    // measure faster in isolation but slower end to end.
    const auto driver_bits = [&](std::size_t row, std::size_t c) {
      const std::size_t word = row * rw + c / kLanesPerWord;
      const unsigned bit = PlaneGeometry::bit_of(c);
      std::uint64_t drv = 0;
      for (int j = 0; j < planes; ++j) {
        drv |= ((src[static_cast<std::size_t>(j) * pw + word] >> bit) & 1u) << j;
      }
      return drv;
    };

    for (std::size_t r = r_begin; r < r_end; ++r) {
      if (topology == BusTopology::Ring && row_open_count(g, open, r) == 1) {
        // One Open switch on a ring: its value wraps all the way around and
        // every lane of the row (driver included) reads it.
        std::size_t c = 0;
        for (std::size_t w = 0; w < rw; ++w) {
          if (open[r * rw + w] != 0) {
            c = w * kLanesPerWord +
                static_cast<unsigned>(__builtin_ctzll(open[r * rw + w]));
            break;
          }
        }
        const std::uint64_t drv = driver_bits(r, c);
        for (std::size_t w = 0; w < rw; ++w) driven[r * rw + w] = g.word_mask(w);
        if (drv != 0) {
          whole_rows.push_back({static_cast<std::uint32_t>(r),
                                static_cast<std::uint32_t>(drv), 0});
        }
        chunk_max = std::max(chunk_max, n);
        continue;
      }
      for (std::size_t w = 0; w < rw; ++w) driven[r * rw + w] = 0;
      std::size_t first = kNone;
      std::size_t prev = kNone;
      std::uint64_t drv = 0;
      for_each_open_in_row(g, open, r, dir, [&](std::size_t k, std::size_t c) {
        if (prev != kNone) {
          chunk_max = std::max(chunk_max, k - prev);
          emit(r, prev + 1, k, drv);
        } else {
          first = k;
        }
        drv = driver_bits(r, c);
        prev = k;
      });
      if (prev != kNone) {  // no Open switch: the whole line floats (zeros)
        if (topology == BusTopology::Ring) {
          emit(r, prev + 1, n - 1, drv);
          emit(r, 0, first, drv);
          chunk_max = std::max(chunk_max, n - prev + first);
        } else {
          emit(r, prev + 1, n - 1, drv);
          chunk_max = std::max(chunk_max, n - 1 - prev);
        }
      }
    }

    // Pass 2: zero the chunk's slice of every plane, then stamp each fill
    // entry into just the planes its driver pulls high. (Bucketing the
    // entries by plane first measures as a net loss here: MCP drivers
    // light up ~14 of 16 planes, so the expanded side buffer outweighs
    // the store locality it buys.)
    for (int j = 0; j < planes; ++j) {
      PlaneWord* p = out + static_cast<std::size_t>(j) * pw;
      std::fill(p + r_begin * rw, p + r_end * rw, PlaneWord{0});
    }
    for (const RowFill& f : whole_rows) {
      std::uint32_t drv = f.drv;
      while (drv != 0) {
        const int j = __builtin_ctz(drv);
        PlaneWord* p = out + static_cast<std::size_t>(j) * pw +
                       static_cast<std::size_t>(f.widx) * rw;
        for (std::size_t w = 0; w < rw; ++w) p[w] = g.word_mask(w);
        drv &= drv - 1;
      }
    }
    for (const RowFill& f : fills) {
      std::uint32_t drv = f.drv;
      while (drv != 0) {
        const int j = __builtin_ctz(drv);
        out[static_cast<std::size_t>(j) * pw + f.widx] |= f.mask;
        drv &= drv - 1;
      }
    }
    merge_max(max_segment, chunk_max);
  });
  return max_segment.load(std::memory_order_relaxed);
}

/// Rebuilds `plan` for one (topology, dir, open) wired-OR configuration:
/// classifies every row, records the general rows' segments as column
/// ranges in flow order, and fixes max_segment (configuration-only).
void build_row_wired_or_plan(const PlaneGeometry& g, BusTopology topology, Direction dir,
                             const PlaneWord* open, RowWiredOrPlan& plan) {
  const std::size_t n = g.n;
  plan.open.assign(open, open + g.plane_words());
  plan.n = n;
  plan.topology = static_cast<std::uint8_t>(topology);
  plan.dir = static_cast<std::uint8_t>(dir);
  plan.fast_rows.clear();
  plan.segs.clear();
  std::size_t max_segment = 0;

  // Push the flow interval [fa, fb] of `row` as a column range.
  const auto push = [&](std::size_t row, std::size_t fa, std::size_t fb, bool fuse) {
    if (fa > fb) return;
    const std::size_t clo = dir == Direction::East ? fa : n - 1 - fb;
    const std::size_t chi = dir == Direction::East ? fb : n - 1 - fa;
    plan.segs.push_back({static_cast<std::uint32_t>(row), static_cast<std::uint32_t>(clo),
                         static_cast<std::uint32_t>(chi), fuse ? 1u : 0u});
  };

  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t m = row_open_count(g, open, r);
    if (m == 0 || (m == 1 && topology == BusTopology::Ring)) {
      // One unsegmented line (the single ring switch's head and tail
      // intervals merge around the wrap): whole-row OR.
      plan.fast_rows.push_back(static_cast<std::uint32_t>(r));
      max_segment = std::max(max_segment, n);
      continue;
    }
    std::size_t first = kNone;
    std::size_t prev = kNone;
    for_each_open_in_row(g, open, r, dir, [&](std::size_t k, std::size_t) {
      if (prev == kNone) {
        first = k;
      } else {
        push(r, prev, k - 1, false);
        max_segment = std::max(max_segment, k - prev);
      }
      prev = k;
    });
    if (topology == BusTopology::Ring) {
      // The tail segment and the head stub [0, first) merge around the wrap.
      push(r, prev, n - 1, first > 0);
      if (first > 0) push(r, 0, first - 1, false);
      max_segment = std::max(max_segment, n - prev + first);
    } else {
      push(r, prev, n - 1, false);
      max_segment = std::max(max_segment, n - prev);
      if (first > 0) push(r, 0, first - 1, false);
      max_segment = std::max(max_segment, first);
    }
  }
  plan.max_segment = max_segment;
}

std::size_t row_wired_or(const PlaneGeometry& g, BusTopology topology, Direction dir,
                         const PlaneWord* src, const PlaneWord* open, PlaneWord* out,
                         const PlaneBusExec& exec) {
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();

  RowWiredOrPlan local_plan;
  RowWiredOrPlan& plan =
      exec.scratch != nullptr ? exec.scratch->wired_or_plan : local_plan;
  if (plan.n != n || plan.topology != static_cast<std::uint8_t>(topology) ||
      plan.dir != static_cast<std::uint8_t>(dir) ||
      !std::equal(plan.open.begin(), plan.open.end(), open, open + pw)) {
    build_row_wired_or_plan(g, topology, dir, open, plan);
  }

  run_chunked(exec, n, pw, [&](std::size_t r_begin, std::size_t r_end) {
    const auto fast_lo = std::lower_bound(plan.fast_rows.begin(), plan.fast_rows.end(),
                                          static_cast<std::uint32_t>(r_begin));
    const auto fast_hi = std::lower_bound(fast_lo, plan.fast_rows.end(),
                                          static_cast<std::uint32_t>(r_end));
    for (auto it = fast_lo; it != fast_hi; ++it) {
      const std::size_t r = *it;
      PlaneWord any = 0;
      for (std::size_t w = 0; w < rw; ++w) any |= src[r * rw + w];
      for (std::size_t w = 0; w < rw; ++w) {
        out[r * rw + w] = any != 0 ? g.word_mask(w) : PlaneWord{0};
      }
    }
    const auto by_row = [](const RowWiredOrPlan::Seg& s, std::uint32_t row) {
      return s.row < row;
    };
    const auto seg_lo = std::lower_bound(plan.segs.begin(), plan.segs.end(),
                                         static_cast<std::uint32_t>(r_begin), by_row);
    const auto seg_hi = std::lower_bound(seg_lo, plan.segs.end(),
                                         static_cast<std::uint32_t>(r_end), by_row);
    std::size_t last_zeroed = kNone;
    for (auto it = seg_lo; it != seg_hi; ++it) {
      const std::size_t r = it->row;
      if (r != last_zeroed) {
        for (std::size_t w = 0; w < rw; ++w) out[r * rw + w] = 0;
        last_zeroed = r;
      }
      bool v = any_in_col_range(g, src, r, it->clo, it->chi);
      if (it->fuse_next != 0) {
        // A ring's tail + head pair reads as one segment across the wrap.
        const auto& head = *(it + 1);
        v = v || any_in_col_range(g, src, r, head.clo, head.chi);
        if (v) {
          fill_col_range(g, r, it->clo, it->chi, 1u, pw, out, nullptr);
          fill_col_range(g, r, head.clo, head.chi, 1u, pw, out, nullptr);
        }
        ++it;
      } else if (v) {
        fill_col_range(g, r, it->clo, it->chi, 1u, pw, out, nullptr);
      }
    }
  });
  return plan.max_segment;
}

// ---------------------------------------------------------------------------
// Column buses (South / North): 64 lines per word-column, resolved with
// vertical scans over the rows in flow order. The scans keep their running
// state in per-word-column arrays and put the word index in the INNER loop,
// so every inner iteration reads/writes consecutive words of one row — the
// layout the compiler auto-vectorizes.
// ---------------------------------------------------------------------------

/// max_segment of the column lines, computed from per-line Open positions
/// (one pass over the open plane; O(n * row_words + popcount)).
std::size_t column_max_segment(const PlaneGeometry& g, BusTopology topology, Direction dir,
                               const PlaneWord* open, bool wired_or,
                               PlaneBusScratch& s) {
  const std::size_t n = g.n;
  std::size_t* first = grown(s.pos_a, n);
  std::size_t* last = grown(s.pos_b, n);
  std::size_t* gap = grown(s.pos_c, n);
  std::fill(first, first + n, kNone);
  std::fill(last, last + n, std::size_t{0});
  std::fill(gap, gap + n, std::size_t{0});
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = flow_row(n, dir, k);
    for (std::size_t w = 0; w < g.row_words; ++w) {
      PlaneWord bits = open[r * g.row_words + w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(__builtin_ctzll(bits));
        const std::size_t c = w * kLanesPerWord + b;
        if (first[c] == kNone) {
          first[c] = k;
        } else {
          gap[c] = std::max(gap[c], k - last[c]);
        }
        last[c] = k;
        bits &= bits - 1;
      }
    }
  }
  std::size_t max_segment = 0;
  for (std::size_t c = 0; c < n; ++c) {
    if (first[c] == kNone) {
      if (wired_or) max_segment = std::max(max_segment, n);
      continue;
    }
    std::size_t line = gap[c];
    if (topology == BusTopology::Ring) {
      line = std::max(line, n - last[c] + first[c]);
    } else if (wired_or) {
      line = std::max({line, n - last[c], first[c]});
    } else {
      line = std::max(line, n - 1 - last[c]);
    }
    max_segment = std::max(max_segment, line);
  }
  return max_segment;
}

/// Column-broadcast pass 2 over the full word range: carry the latest
/// driver word down the flow, reading the pass-1 products (per-row driven
/// and wrap-carry masks) from wherever they live — the scratch block on
/// the plain path, a cached plan on a hit.
void column_pass2(const PlaneGeometry& g, Direction dir, const PlaneWord* src, int planes,
                  const PlaneWord* open, PlaneWord* out, const PlaneWord* have_k,
                  const PlaneWord* pend_k, std::size_t k_stop, PlaneWord* cur) {
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();
  for (int j = 0; j < planes; ++j) {
    const PlaneWord* sp = src + static_cast<std::size_t>(j) * pw;
    PlaneWord* op = out + static_cast<std::size_t>(j) * pw;
    std::fill(cur, cur + rw, PlaneWord{0});
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t base = flow_row(n, dir, k) * rw;
      for (std::size_t w = 0; w < rw; ++w) {
        const PlaneWord ow = open[base + w];
        op[base + w] = cur[w] & have_k[k * rw + w];
        cur[w] = (cur[w] & ~ow) | (sp[base + w] & ow);
      }
    }
    for (std::size_t k = 0; k < k_stop; ++k) {
      const std::size_t base = flow_row(n, dir, k) * rw;
      for (std::size_t w = 0; w < rw; ++w) {
        op[base + w] |= cur[w] & pend_k[k * rw + w];
      }
    }
  }
}

/// Fused miss path: column_broadcast's pass 1 writing its per-row products
/// straight into `plan` (same stores, different destination), then the
/// shared pass 2 — a miss costs what the plain resolver costs.
void column_broadcast_record(const PlaneGeometry& g, BusTopology topology, Direction dir,
                             const PlaneWord* src, int planes, const PlaneWord* open,
                             PlaneWord* out, PlaneWord* driven, PlaneBusScratch& s,
                             BroadcastPlan& plan) {
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  stamp_plan_key(g, topology, dir, open, plan);
  plan.col_have.resize(n * rw);
  plan.col_pend.resize(topology == BusTopology::Ring ? n * rw : 0);
  PlaneWord* have_k = plan.col_have.data();
  PlaneWord* pend_k = plan.col_pend.data();
  PlaneWord* state = grown(s.lane_a, rw);
  std::fill(state, state + rw, PlaneWord{0});
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t base = flow_row(n, dir, k) * rw;
    for (std::size_t w = 0; w < rw; ++w) {
      const PlaneWord ow = open[base + w];
      have_k[k * rw + w] = state[w];
      driven[base + w] = state[w];
      state[w] |= ow;
    }
  }
  std::size_t k_stop = 0;
  if (topology == BusTopology::Ring) {
    for (std::size_t k = 0; k < n; ++k) {
      PlaneWord alive = 0;
      const std::size_t base = flow_row(n, dir, k) * rw;
      for (std::size_t w = 0; w < rw; ++w) {
        const PlaneWord ow = open[base + w];
        alive |= state[w];
        pend_k[k * rw + w] = state[w];
        driven[base + w] |= state[w];
        state[w] &= ~ow;
      }
      if (alive == 0) break;
      k_stop = k + 1;
    }
  }
  plan.k_stop = k_stop;
  column_pass2(g, dir, src, planes, open, out, have_k, pend_k, k_stop, state);
  plan.driven.assign(driven, driven + g.plane_words());
  plan.max_segment = column_max_segment(g, topology, dir, open, /*wired_or=*/false, s);
}

/// Executes one column broadcast from a resolved plan: pass 2 only.
void column_broadcast_exec(const PlaneGeometry& g, const BroadcastPlan& plan,
                           Direction dir, const PlaneWord* src, int planes,
                           PlaneWord* out, PlaneWord* driven, PlaneBusScratch& s) {
  std::copy(plan.driven.begin(), plan.driven.end(), driven);
  column_pass2(g, dir, src, planes, plan.open.data(), out, plan.col_have.data(),
               plan.col_pend.data(), plan.k_stop, grown(s.lane_a, g.row_words));
}

std::size_t column_broadcast(const PlaneGeometry& g, BusTopology topology, Direction dir,
                             const PlaneWord* src, int planes, const PlaneWord* open,
                             PlaneWord* out, PlaneWord* driven, const PlaneBusExec& exec) {
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();
  PPA_ASSERT(planes <= 32, "a register has at most 32 planes");
  if (exec.scratch != nullptr &&
      !would_chunk(exec, rw, pw * static_cast<std::size_t>(planes + 1))) {
    bool hit = false;
    BroadcastPlan* plan = lookup_broadcast_plan(exec.scratch->broadcast_plans, g,
                                                topology, dir, open, hit);
    if (plan != nullptr) {
      if (hit) {
        column_broadcast_exec(g, *plan, dir, src, planes, out, driven, *exec.scratch);
      } else {
        column_broadcast_record(g, topology, dir, src, planes, open, out, driven,
                                *exec.scratch, *plan);
      }
      return plan->max_segment;
    }
  }

  PlaneBusScratch local;
  PlaneBusScratch& s = exec.scratch != nullptr ? *exec.scratch : local;
  // have_k[k*rw + w]: driven mask of row k (flow order) — the lanes that saw
  // an Open switch strictly upstream. pend_k: the wrap-carry mask per row.
  PlaneWord* have_k = grown(s.per_k_a, n * rw);
  PlaneWord* pend_k = grown(s.per_k_b, n * rw);
  PlaneWord* state = grown(s.lane_a, rw);

  run_chunked(exec, rw, pw * static_cast<std::size_t>(planes + 1),
              [&](std::size_t w_begin, std::size_t w_end) {
    // Pass 1 (plane-independent): per-row driven masks, and the wrap
    // extent. driven[] is exactly "have before this row".
    PlaneWord* have = state + w_begin;
    std::fill(have, have + (w_end - w_begin), PlaneWord{0});
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t base = flow_row(n, dir, k) * rw;
      for (std::size_t w = w_begin; w < w_end; ++w) {
        const PlaneWord ow = open[base + w];
        have_k[k * rw + w] = state[w];
        driven[base + w] = state[w];
        state[w] |= ow;
      }
    }
    std::size_t k_stop = 0;  // rows the wrap reaches in this w slice
    if (topology == BusTopology::Ring) {
      // Wrap: every lane's prefix through its FIRST Open row reads the
      // signal carried around from its LAST Open row.
      for (std::size_t k = 0; k < n; ++k) {
        PlaneWord alive = 0;
        const std::size_t base = flow_row(n, dir, k) * rw;
        for (std::size_t w = w_begin; w < w_end; ++w) {
          const PlaneWord ow = open[base + w];
          alive |= state[w];
          pend_k[k * rw + w] = state[w];
          driven[base + w] |= state[w];
          state[w] &= ~ow;
        }
        if (alive == 0) break;
        k_stop = k + 1;
      }
    }
    // Pass 2, per plane: carry the latest driver word down the flow. All
    // accesses at row k are consecutive words, so this vectorizes.
    for (int j = 0; j < planes; ++j) {
      const PlaneWord* sp = src + static_cast<std::size_t>(j) * pw;
      PlaneWord* op = out + static_cast<std::size_t>(j) * pw;
      PlaneWord* cur = state;
      std::fill(cur + w_begin, cur + w_end, PlaneWord{0});
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t base = flow_row(n, dir, k) * rw;
        for (std::size_t w = w_begin; w < w_end; ++w) {
          const PlaneWord ow = open[base + w];
          op[base + w] = cur[w] & have_k[k * rw + w];
          cur[w] = (cur[w] & ~ow) | (sp[base + w] & ow);
        }
      }
      for (std::size_t k = 0; k < k_stop; ++k) {
        const std::size_t base = flow_row(n, dir, k) * rw;
        for (std::size_t w = w_begin; w < w_end; ++w) {
          op[base + w] |= cur[w] & pend_k[k * rw + w];
        }
      }
    }
  });
  return column_max_segment(g, topology, dir, open, /*wired_or=*/false, s);
}

std::size_t column_wired_or(const PlaneGeometry& g, BusTopology topology, Direction dir,
                            const PlaneWord* src, const PlaneWord* open, PlaneWord* out,
                            const PlaneBusExec& exec) {
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;

  PlaneBusScratch local;
  PlaneBusScratch& s = exec.scratch != nullptr ? *exec.scratch : local;
  PlaneWord* forward = grown(s.per_k_a, n * rw);    // running OR of the segment
  PlaneWord* head_mask = grown(s.per_k_b, n * rw);  // lanes before their first Open
  PlaneWord* acc = grown(s.lane_a, rw);   // then: seg (backward full-segment OR)
  PlaneWord* have = grown(s.lane_b, rw);  // then: tail (no Open strictly downstream)
  PlaneWord* head_acc = grown(s.lane_c, rw);  // then, on a ring: the wrap value

  run_chunked(exec, rw, g.plane_words(), [&](std::size_t w_begin, std::size_t w_end) {
    std::fill(acc + w_begin, acc + w_end, PlaneWord{0});
    std::fill(have + w_begin, have + w_end, PlaneWord{0});
    std::fill(head_acc + w_begin, head_acc + w_end, PlaneWord{0});
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t base = flow_row(n, dir, k) * rw;
      for (std::size_t w = w_begin; w < w_end; ++w) {
        const PlaneWord ow = open[base + w];
        const PlaneWord sw = src[base + w];
        const PlaneWord head = ~(have[w] | ow);
        head_acc[w] |= sw & head;
        // An Open row starts a new segment that includes its own src bit.
        acc[w] = sw | (acc[w] & ~ow);
        forward[k * rw + w] = acc[w];
        head_mask[k * rw + w] = head;
        have[w] |= ow;
      }
    }
    // Backward pass: seg carries each row's full-segment OR; tail marks
    // lanes with no Open row strictly downstream (the tail segment).
    PlaneWord* seg = acc;   // seg starts as forward[n-1], which acc now holds
    PlaneWord* tail = have;
    PlaneWord* wrap = head_acc;
    if (topology == BusTopology::Ring) {
      for (std::size_t w = w_begin; w < w_end; ++w) {
        wrap[w] = forward[(n - 1) * rw + w] | head_acc[w];
        tail[w] = ~PlaneWord{0};
      }
      for (std::size_t k = n; k-- > 0;) {
        const std::size_t base = flow_row(n, dir, k) * rw;
        for (std::size_t w = w_begin; w < w_end; ++w) {
          const PlaneWord in_wrap = head_mask[k * rw + w] | tail[w];
          out[base + w] = (wrap[w] & in_wrap) | (seg[w] & ~in_wrap);
        }
        if (k > 0) {
          for (std::size_t w = w_begin; w < w_end; ++w) {
            const PlaneWord ow = open[base + w];
            seg[w] = (forward[(k - 1) * rw + w] & ow) | (seg[w] & ~ow);
            tail[w] &= ~ow;
          }
        }
      }
    } else {
      for (std::size_t k = n; k-- > 0;) {
        const std::size_t base = flow_row(n, dir, k) * rw;
        for (std::size_t w = w_begin; w < w_end; ++w) {
          const PlaneWord hm = head_mask[k * rw + w];
          out[base + w] = (head_acc[w] & hm) | (seg[w] & ~hm);
        }
        if (k > 0) {
          for (std::size_t w = w_begin; w < w_end; ++w) {
            const PlaneWord ow = open[base + w];
            seg[w] = (forward[(k - 1) * rw + w] & ow) | (seg[w] & ~ow);
          }
        }
      }
    }
  });
  return column_max_segment(g, topology, dir, open, /*wired_or=*/true, s);
}

}  // namespace

std::size_t plane_broadcast_into(const PlaneGeometry& g, BusTopology topology,
                                 Direction dir, const PlaneWord* src, int planes,
                                 const PlaneWord* open, PlaneWord* out,
                                 PlaneWord* driven, const PlaneBusExec& exec) {
  PPA_REQUIRE(g.n >= 1, "array side must be positive");
  PPA_REQUIRE(planes >= 1, "a bus cycle needs at least one plane");
  return is_row_axis(dir)
             ? row_broadcast(g, topology, dir, src, planes, open, out, driven, exec)
             : column_broadcast(g, topology, dir, src, planes, open, out, driven, exec);
}

std::size_t plane_wired_or_into(const PlaneGeometry& g, BusTopology topology,
                                Direction dir, const PlaneWord* src,
                                const PlaneWord* open, PlaneWord* out,
                                const PlaneBusExec& exec) {
  PPA_REQUIRE(g.n >= 1, "array side must be positive");
  return is_row_axis(dir) ? row_wired_or(g, topology, dir, src, open, out, exec)
                          : column_wired_or(g, topology, dir, src, open, out, exec);
}

void plane_shift(const PlaneGeometry& g, Direction dir, const PlaneWord* src, int planes,
                 std::uint64_t fill_bits, PlaneWord* dst) {
  PPA_REQUIRE(src != dst, "shift source and destination must not alias");
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  const std::size_t pw = g.plane_words();
  for (int j = 0; j < planes; ++j) {
    const PlaneWord* sp = src + static_cast<std::size_t>(j) * pw;
    PlaneWord* dp = dst + static_cast<std::size_t>(j) * pw;
    const bool fill = (fill_bits >> j) & 1u;
    switch (dir) {
      case Direction::East:
        // dst(r, c) = src(r, c-1); column 0 reads the fill bit.
        for (std::size_t r = 0; r < n; ++r) {
          const PlaneWord* s = sp + r * rw;
          PlaneWord* d = dp + r * rw;
          PlaneWord carry = fill ? 1u : 0u;
          for (std::size_t w = 0; w < rw; ++w) {
            const PlaneWord next_carry = s[w] >> 63;
            d[w] = (s[w] << 1) | carry;
            carry = next_carry;
          }
          d[rw - 1] &= g.word_mask(rw - 1);
        }
        break;
      case Direction::West:
        // dst(r, c) = src(r, c+1); column n-1 reads the fill bit.
        for (std::size_t r = 0; r < n; ++r) {
          const PlaneWord* s = sp + r * rw;
          PlaneWord* d = dp + r * rw;
          for (std::size_t w = 0; w < rw; ++w) {
            d[w] = (s[w] >> 1) | (w + 1 < rw ? s[w + 1] << 63 : PlaneWord{0});
          }
          if (fill) d[(n - 1) / kLanesPerWord] |= PlaneWord{1} << PlaneGeometry::bit_of(n - 1);
        }
        break;
      case Direction::South:
        // dst(r, ·) = src(r-1, ·); row 0 reads the fill bit.
        for (std::size_t r = n; r-- > 1;) {
          for (std::size_t w = 0; w < rw; ++w) dp[r * rw + w] = sp[(r - 1) * rw + w];
        }
        for (std::size_t w = 0; w < rw; ++w) dp[w] = fill ? g.word_mask(w) : PlaneWord{0};
        break;
      case Direction::North:
        // dst(r, ·) = src(r+1, ·); row n-1 reads the fill bit.
        for (std::size_t r = 0; r + 1 < n; ++r) {
          for (std::size_t w = 0; w < rw; ++w) dp[r * rw + w] = sp[(r + 1) * rw + w];
        }
        for (std::size_t w = 0; w < rw; ++w) {
          dp[(n - 1) * rw + w] = fill ? g.word_mask(w) : PlaneWord{0};
        }
        break;
    }
  }
}

}  // namespace ppa::sim
