// Runtime dispatch for the SIMD kernel arms: what the build compiled in
// (PPA_HAVE_KERNELS_*) intersected with what the CPU reports, overridable
// by a PPA_FORCE_SIMD=<arm> build or a PPA_SIMD=<arm> environment
// variable. A forced arm that is unavailable falls back to the widest
// available one with a one-line stderr note instead of failing, so forced
// CI legs stay green on heterogeneous runners.
#include "sim/plane_kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ppa::sim::plane_kernels {

#if defined(PPA_HAVE_KERNELS_AVX2)
const PlaneKernels* avx2_table() noexcept;
#endif
#if defined(PPA_HAVE_KERNELS_AVX512)
const PlaneKernels* avx512_table() noexcept;
#endif

const char* variant_name(SimdVariant v) noexcept {
  switch (v) {
    case SimdVariant::Scalar:
      return "scalar";
    case SimdVariant::Avx2:
      return "avx2";
    case SimdVariant::Avx512:
      return "avx512";
  }
  return "unknown";
}

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 && __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

const PlaneKernels* table_for(SimdVariant v) noexcept {
  switch (v) {
    case SimdVariant::Scalar:
      return &scalar_kernels();
    case SimdVariant::Avx2:
      return avx2_kernels();
    case SimdVariant::Avx512:
      return avx512_kernels();
  }
  return nullptr;
}

const PlaneKernels& widest_available() noexcept {
  if (const PlaneKernels* t = avx512_kernels()) return *t;
  if (const PlaneKernels* t = avx2_kernels()) return *t;
  return scalar_kernels();
}

/// Applies a requested arm, or falls back (with a stderr note) when the
/// build/CPU cannot honor it.
const PlaneKernels& resolve_request(const char* source, const char* name) noexcept {
  SimdVariant want;
  if (std::strcmp(name, "scalar") == 0) {
    want = SimdVariant::Scalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    want = SimdVariant::Avx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    want = SimdVariant::Avx512;
  } else {
    std::fprintf(stderr, "[ppa] %s requested unknown SIMD variant '%s'; using %s\n", source,
                 name, variant_name(widest_available().variant));
    return widest_available();
  }
  if (const PlaneKernels* t = table_for(want)) return *t;
  const PlaneKernels& fb = widest_available();
  std::fprintf(stderr, "[ppa] %s requested SIMD variant '%s' but it is unavailable here; using %s\n",
               source, name, variant_name(fb.variant));
  return fb;
}

const PlaneKernels& choose() noexcept {
  if (const char* env = std::getenv("PPA_SIMD")) {
    if (*env != '\0') return resolve_request("PPA_SIMD", env);
  }
#if defined(PPA_FORCE_SIMD_SCALAR)
  return resolve_request("PPA_FORCE_SIMD build", "scalar");
#elif defined(PPA_FORCE_SIMD_AVX2)
  return resolve_request("PPA_FORCE_SIMD build", "avx2");
#elif defined(PPA_FORCE_SIMD_AVX512)
  return resolve_request("PPA_FORCE_SIMD build", "avx512");
#else
  return widest_available();
#endif
}

}  // namespace

const PlaneKernels* avx2_kernels() noexcept {
#if defined(PPA_HAVE_KERNELS_AVX2)
  return cpu_has_avx2() ? avx2_table() : nullptr;
#else
  return nullptr;
#endif
}

const PlaneKernels* avx512_kernels() noexcept {
#if defined(PPA_HAVE_KERNELS_AVX512)
  return cpu_has_avx512() ? avx512_table() : nullptr;
#else
  return nullptr;
#endif
}

const PlaneKernels& active() noexcept {
  static const PlaneKernels& chosen = choose();
  return chosen;
}

SimdVariant active_variant() noexcept { return active().variant; }

}  // namespace ppa::sim::plane_kernels
