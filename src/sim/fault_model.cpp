#include "sim/fault_model.hpp"

#include <charconv>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ppa::sim {

const char* name_of(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::StuckOpen: return "stuck-open";
    case FaultKind::StuckClosed: return "stuck-closed";
    case FaultKind::StuckBit: return "stuck-bit";
    case FaultKind::DeadPe: return "dead";
  }
  return "?";
}

std::string to_string(const Fault& fault) {
  std::ostringstream os;
  const char* axis = fault.axis == Axis::Row ? "row" : "col";
  switch (fault.kind) {
    case FaultKind::StuckOpen:
    case FaultKind::StuckClosed:
      os << name_of(fault.kind) << ':' << axis << ',' << fault.row << ',' << fault.col;
      break;
    case FaultKind::StuckBit:
      if (fault.period > 0) {
        os << "transient-bit:" << axis << ',' << fault.row << ',' << fault.bit << ','
           << (fault.stuck_value ? 1 : 0) << ',' << fault.period << ',' << fault.phase;
      } else {
        os << "stuck-bit:" << axis << ',' << fault.row << ',' << fault.bit << ','
           << (fault.stuck_value ? 1 : 0);
      }
      break;
    case FaultKind::DeadPe:
      os << "dead:" << fault.row << ',' << fault.col;
      break;
  }
  return os.str();
}

FaultModel FaultModel::random(std::size_t n, int bits, std::uint64_t seed,
                              std::size_t count) {
  PPA_REQUIRE(n >= 1 && bits >= 1, "fault model needs a non-empty array");
  util::Rng rng(seed);
  FaultModel model;
  for (std::size_t i = 0; i < count; ++i) {
    Fault fault;
    fault.kind = static_cast<FaultKind>(rng.below(4));
    fault.axis = rng.below(2) == 0 ? Axis::Row : Axis::Column;
    fault.row = static_cast<std::size_t>(rng.below(n));
    fault.col = static_cast<std::size_t>(rng.below(n));
    if (fault.kind == FaultKind::StuckBit) {
      fault.col = 0;
      fault.bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(bits)));
      fault.stuck_value = rng.below(2) != 0;
    }
    model.add(fault);
  }
  return model;
}

namespace {

[[noreturn]] void fail_parse(std::string_view item, const char* why) {
  std::ostringstream os;
  os << "malformed fault spec item '" << item << "': " << why;
  throw util::ParseError(os.str());
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      parts.push_back(trim(s));
      return parts;
    }
    parts.push_back(trim(s.substr(0, pos)));
    s.remove_prefix(pos + 1);
  }
}

std::uint64_t parse_number(std::string_view item, std::string_view text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    fail_parse(item, "expected a non-negative integer");
  }
  return value;
}

Axis parse_axis(std::string_view item, std::string_view text) {
  if (text == "row") return Axis::Row;
  if (text == "col") return Axis::Column;
  fail_parse(item, "axis must be 'row' or 'col'");
}

void require_range(std::string_view item, std::uint64_t value, std::uint64_t bound,
                   const char* what) {
  if (value >= bound) {
    std::ostringstream os;
    os << what << ' ' << value << " out of range [0, " << bound << ')';
    fail_parse(item, os.str().c_str());
  }
}

}  // namespace

FaultModel FaultModel::parse(std::string_view spec, std::size_t n, int bits) {
  PPA_REQUIRE(n >= 1 && bits >= 1, "fault model needs a non-empty array");
  FaultModel model;
  for (std::string_view item : split(spec, ';')) {
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) fail_parse(item, "expected '<kind>:<args>'");
    const std::string_view kind = trim(item.substr(0, colon));
    const std::vector<std::string_view> args = split(item.substr(colon + 1), ',');
    Fault fault;
    if (kind == "stuck-open" || kind == "stuck-closed") {
      if (args.size() != 3) fail_parse(item, "expected <row|col>,<r>,<c>");
      fault.kind = kind == "stuck-open" ? FaultKind::StuckOpen : FaultKind::StuckClosed;
      fault.axis = parse_axis(item, args[0]);
      fault.row = parse_number(item, args[1]);
      fault.col = parse_number(item, args[2]);
      require_range(item, fault.row, n, "row");
      require_range(item, fault.col, n, "col");
    } else if (kind == "stuck-bit" || kind == "transient-bit") {
      const bool transient = kind == "transient-bit";
      if (!transient && args.size() != 4) {
        fail_parse(item, "expected <row|col>,<line>,<bit>,<0|1>");
      }
      if (transient && args.size() != 6) {
        fail_parse(item, "expected <row|col>,<line>,<bit>,<0|1>,<period>,<phase>");
      }
      fault.kind = FaultKind::StuckBit;
      fault.axis = parse_axis(item, args[0]);
      fault.row = parse_number(item, args[1]);
      const std::uint64_t bit = parse_number(item, args[2]);
      const std::uint64_t value = parse_number(item, args[3]);
      require_range(item, fault.row, n, "line");
      require_range(item, bit, static_cast<std::uint64_t>(bits), "bit");
      if (value > 1) fail_parse(item, "stuck value must be 0 or 1");
      fault.bit = static_cast<int>(bit);
      fault.stuck_value = value != 0;
      if (transient) {
        fault.period = parse_number(item, args[4]);
        fault.phase = parse_number(item, args[5]);
        if (fault.period == 0) fail_parse(item, "transient period must be >= 1");
        if (fault.phase >= fault.period) fail_parse(item, "phase must be < period");
      }
    } else if (kind == "dead") {
      if (args.size() != 2) fail_parse(item, "expected <r>,<c>");
      fault.kind = FaultKind::DeadPe;
      fault.row = parse_number(item, args[0]);
      fault.col = parse_number(item, args[1]);
      require_range(item, fault.row, n, "row");
      require_range(item, fault.col, n, "col");
    } else if (kind == "random") {
      if (args.size() != 2) fail_parse(item, "expected <seed>,<count>");
      const std::uint64_t seed = parse_number(item, args[0]);
      const std::uint64_t count = parse_number(item, args[1]);
      const FaultModel drawn = random(n, bits, seed, count);
      for (const Fault& f : drawn.faults()) model.add(f);
      continue;
    } else {
      fail_parse(item, "unknown fault kind");
    }
    model.add(fault);
  }
  return model;
}

CompiledFaults compile_faults(const FaultModel& model, const PlaneGeometry& geometry,
                              int bits) {
  CompiledFaults compiled;
  if (model.empty()) return compiled;
  const std::size_t n = geometry.n;
  const std::size_t count = n * n;
  compiled.any = true;
  for (int axis = 0; axis < 2; ++axis) {
    compiled.stuck_open[axis].assign(count, 0);
    compiled.stuck_closed[axis].assign(count, 0);
  }
  compiled.dead.assign(count, 0);

  for (const Fault& fault : model.faults()) {
    const int axis = static_cast<int>(fault.axis);
    switch (fault.kind) {
      case FaultKind::StuckOpen:
      case FaultKind::StuckClosed: {
        PPA_REQUIRE(fault.row < n && fault.col < n,
                    "switch fault coordinates out of range: " + to_string(fault));
        auto& mask = fault.kind == FaultKind::StuckOpen ? compiled.stuck_open[axis]
                                                        : compiled.stuck_closed[axis];
        mask[fault.row * n + fault.col] = 1;
        compiled.any_switch[axis] = true;
        break;
      }
      case FaultKind::StuckBit:
        PPA_REQUIRE(fault.row < n, "stuck-bit line out of range: " + to_string(fault));
        PPA_REQUIRE(fault.bit >= 0 && fault.bit < bits,
                    "stuck-bit wire out of range: " + to_string(fault));
        PPA_REQUIRE(fault.period == 0 || fault.phase < fault.period,
                    "transient phase out of range: " + to_string(fault));
        compiled.stuck_bits[axis].push_back(StuckBitFault{
            fault.row, fault.bit, fault.stuck_value, fault.period, fault.phase});
        break;
      case FaultKind::DeadPe:
        PPA_REQUIRE(fault.row < n && fault.col < n,
                    "dead PE coordinates out of range: " + to_string(fault));
        compiled.dead[fault.row * n + fault.col] = 1;
        compiled.any_dead = true;
        break;
    }
  }

  // A stuck-closed switch wins over stuck-open at the same box (the short
  // dominates electrically); the per-cycle transform applies & ~stuck_closed
  // last, so no cleanup is needed here.
  compiled.alive.resize(count);
  for (std::size_t pe = 0; pe < count; ++pe) {
    compiled.alive[pe] = compiled.dead[pe] ? Flag{0} : Flag{1};
  }

  const std::size_t pw = geometry.plane_words();
  for (int axis = 0; axis < 2; ++axis) {
    compiled.stuck_open_plane[axis].resize(pw);
    compiled.stuck_closed_plane[axis].resize(pw);
    pack_flags(geometry, compiled.stuck_open[axis], compiled.stuck_open_plane[axis].data());
    pack_flags(geometry, compiled.stuck_closed[axis],
               compiled.stuck_closed_plane[axis].data());
  }
  compiled.dead_plane.resize(pw);
  compiled.alive_plane.resize(pw);
  pack_flags(geometry, compiled.dead, compiled.dead_plane.data());
  pack_flags(geometry, compiled.alive, compiled.alive_plane.data());
  return compiled;
}

}  // namespace ppa::sim
