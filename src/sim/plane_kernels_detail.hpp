// Shared kernel bodies for the SIMD arms, templated on a vector trait.
//
// Each arm supplies a trait type V with:
//   V::W                          — words per vector register
//   V::reg                        — register type
//   load / store / zero           — unaligned word access
//   and_ / or_ / xor_ / andnot    — bitwise lanes (andnot(a, b) = a & ~b)
//   is_zero                       — whole-register test
// The bodies below keep all loop-carried state (ripple carry, the
// MSB-first lt/eq pair, the saturation mask) in registers; the only
// memory traffic is the operand planes themselves. Every multi-plane
// kernel iterates the WORD index outermost and the plane index inside,
// so a [begin, end) word sub-range is exact — that is what makes the
// thread-pool chunking in PlaneAlu bit-identical to a sequential sweep.
//
// VecScalar (W = 1) instantiates the same bodies for the scalar table
// and serves as every wider arm's tail loop.
#pragma once

#include <cstddef>

#include "sim/bit_planes.hpp"

namespace ppa::sim::plane_kernels::detail {

using sim::PlaneWord;

struct VecScalar {
  static constexpr std::size_t W = 1;
  using reg = PlaneWord;
  static reg load(const PlaneWord* p) noexcept { return *p; }
  static void store(PlaneWord* p, reg v) noexcept { *p = v; }
  static reg zero() noexcept { return 0; }
  static reg and_(reg a, reg b) noexcept { return a & b; }
  static reg or_(reg a, reg b) noexcept { return a | b; }
  static reg xor_(reg a, reg b) noexcept { return a ^ b; }
  static reg andnot(reg a, reg b) noexcept { return a & ~b; }
  static bool is_zero(reg a) noexcept { return a == 0; }
};

template <class V>
void t_op_and(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
              std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    V::store(out + i, V::and_(V::load(a + i), V::load(b + i)));
  }
  for (; i < words; ++i) out[i] = a[i] & b[i];
}

template <class V>
void t_op_or(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
             std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    V::store(out + i, V::or_(V::load(a + i), V::load(b + i)));
  }
  for (; i < words; ++i) out[i] = a[i] | b[i];
}

template <class V>
void t_op_xor(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
              std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    V::store(out + i, V::xor_(V::load(a + i), V::load(b + i)));
  }
  for (; i < words; ++i) out[i] = a[i] ^ b[i];
}

template <class V>
void t_op_andnot(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                 std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    V::store(out + i, V::andnot(V::load(a + i), V::load(b + i)));
  }
  for (; i < words; ++i) out[i] = a[i] & ~b[i];
}

template <class V>
void t_op_copy(const PlaneWord* a, PlaneWord* out, std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) V::store(out + i, V::load(a + i));
  for (; i < words; ++i) out[i] = a[i];
}

template <class V>
void t_op_zero(PlaneWord* out, std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) V::store(out + i, V::zero());
  for (; i < words; ++i) out[i] = 0;
}

template <class V>
void t_masked_assign(const PlaneWord* mask, const PlaneWord* src, PlaneWord* dst,
                     std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    const auto d = V::load(dst + i);
    V::store(dst + i, V::xor_(d, V::and_(V::xor_(d, V::load(src + i)), V::load(mask + i))));
  }
  for (; i < words; ++i) dst[i] ^= (dst[i] ^ src[i]) & mask[i];
}

template <class V>
void t_blend(const PlaneWord* cond, const PlaneWord* a, const PlaneWord* b,
             PlaneWord* out, std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    const auto vb = V::load(b + i);
    V::store(out + i,
             V::xor_(vb, V::and_(V::xor_(vb, V::load(a + i)), V::load(cond + i))));
  }
  for (; i < words; ++i) out[i] = b[i] ^ ((b[i] ^ a[i]) & cond[i]);
}

template <class V>
bool t_all_zero(const PlaneWord* a, std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    if (!V::is_zero(V::load(a + i))) return false;
  }
  for (; i < words; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

template <class V>
bool t_equal(const PlaneWord* a, const PlaneWord* b, std::size_t words) noexcept {
  std::size_t i = 0;
  for (; i + V::W <= words; i += V::W) {
    if (!V::is_zero(V::xor_(V::load(a + i), V::load(b + i)))) return false;
  }
  for (; i < words; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

template <class V>
void t_add_sat(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
               const PlaneWord* full, PlaneWord* out, std::size_t begin,
               std::size_t end) noexcept {
  std::size_t i = begin;
  for (; i + V::W <= end; i += V::W) {
    auto carry = V::zero();
    auto ones = V::load(full + i);
    for (int j = 0; j < h; ++j) {
      const std::size_t off = static_cast<std::size_t>(j) * pw + i;
      const auto va = V::load(a + off);
      const auto vb = V::load(b + off);
      const auto axb = V::xor_(va, vb);
      const auto s = V::xor_(axb, carry);
      carry = V::or_(V::and_(va, vb), V::and_(carry, axb));
      V::store(out + off, s);
      ones = V::and_(ones, s);
    }
    // carry|ones = lanes whose sum reached the clamp; force them all-ones.
    ones = V::or_(ones, carry);
    for (int j = 0; j < h; ++j) {
      const std::size_t off = static_cast<std::size_t>(j) * pw + i;
      V::store(out + off, V::or_(V::load(out + off), ones));
    }
  }
  if constexpr (V::W > 1) {
    if (i < end) t_add_sat<VecScalar>(a, b, h, pw, full, out, i, end);
  }
}

template <class V>
void t_compare_lt(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                  const PlaneWord* full, PlaneWord* lt, PlaneWord* eq,
                  std::size_t begin, std::size_t end) noexcept {
  std::size_t i = begin;
  for (; i + V::W <= end; i += V::W) {
    auto vlt = V::zero();
    auto veq = V::load(full + i);
    for (int j = h - 1; j >= 0; --j) {
      const std::size_t off = static_cast<std::size_t>(j) * pw + i;
      const auto va = V::load(a + off);
      const auto vb = V::load(b + off);
      vlt = V::or_(vlt, V::and_(veq, V::andnot(vb, va)));
      veq = V::andnot(veq, V::xor_(va, vb));
    }
    V::store(lt + i, vlt);
    V::store(eq + i, veq);
  }
  if constexpr (V::W > 1) {
    if (i < end) t_compare_lt<VecScalar>(a, b, h, pw, full, lt, eq, i, end);
  }
}

template <class V>
void t_compare_eq(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                  const PlaneWord* full, PlaneWord* eq, std::size_t begin,
                  std::size_t end) noexcept {
  std::size_t i = begin;
  for (; i + V::W <= end; i += V::W) {
    auto veq = V::load(full + i);
    for (int j = 0; j < h; ++j) {
      const std::size_t off = static_cast<std::size_t>(j) * pw + i;
      veq = V::andnot(veq, V::xor_(V::load(a + off), V::load(b + off)));
    }
    V::store(eq + i, veq);
  }
  if constexpr (V::W > 1) {
    if (i < end) t_compare_eq<VecScalar>(a, b, h, pw, full, eq, i, end);
  }
}

/// Scalar pack: transpose one 64-lane group at a time through a register
/// accumulator, then store each plane word once — instead of the
/// oracle's per-bit read-modify-write into spread-out plane words.
inline void pack_words_rows_scalar(const sim::PlaneGeometry& g, const sim::Word* src,
                                   int planes, PlaneWord* out, std::size_t row_begin,
                                   std::size_t row_end) {
  const std::size_t pw = g.plane_words();
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const sim::Word* row = src + r * n;
    for (std::size_t w = 0; w < rw; ++w) {
      const std::size_t lane0 = w * sim::kLanesPerWord;
      const std::size_t lanes = std::min(sim::kLanesPerWord, n - lane0);
      PlaneWord acc[32] = {};
      for (std::size_t l = 0; l < lanes; ++l) {
        sim::Word v = row[lane0 + l];
        while (v != 0) {
          const int j = __builtin_ctz(v);
          acc[j] |= PlaneWord{1} << l;
          v &= v - 1;
        }
      }
      const std::size_t idx = r * rw + w;
      for (int j = 0; j < planes; ++j) out[static_cast<std::size_t>(j) * pw + idx] = acc[j];
    }
  }
}

}  // namespace ppa::sim::plane_kernels::detail
