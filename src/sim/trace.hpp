// Instruction tracing.
//
// A TraceSink attached to a Machine observes every issued SIMD instruction
// — category, data-movement direction, how many switch boxes were Open and
// the longest bus segment driven. Used by debugging tools and by the
// ppc_tour example; the step counters stay the source of truth for costs
// (tracing never changes them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/step_counter.hpp"

namespace ppa::sim {

struct TraceEvent {
  StepCategory category = StepCategory::Alu;
  /// Meaningful for Shift / BusBroadcast / BusOr; North otherwise.
  Direction direction = Direction::North;
  /// Number of Open switch boxes (bus cycles only).
  std::size_t open_count = 0;
  /// Longest driven segment in switch hops (bus cycles only).
  std::size_t max_segment = 0;
  /// How many identical instructions this event stands for. Bulk ALU
  /// charges emit ONE event with count > 1 instead of one event per
  /// instruction, so tracing stays O(events) off the hot path.
  std::uint64_t count = 1;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Observer interface; implementations must not call back into the
/// machine they observe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Stores every event; convenient in tests and small demos.
class RecordingTrace final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Total instructions recorded for `category` (bulk events weighted by
  /// their count).
  [[nodiscard]] std::uint64_t count(StepCategory category) const noexcept;

  /// Total instructions over all events (the traced StepCounter::total()).
  [[nodiscard]] std::uint64_t instruction_count() const noexcept;
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// One-line rendering, e.g. "bus_bcast dir=South open=4 seg=8".
[[nodiscard]] std::string to_string(const TraceEvent& event);

}  // namespace ppa::sim
