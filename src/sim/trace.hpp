// Instruction tracing.
//
// A TraceSink attached to a Machine observes every issued SIMD instruction
// — category, data-movement direction, how many switch boxes were Open and
// the longest bus segment driven. Used by debugging tools and by the
// ppc_tour example; the step counters stay the source of truth for costs
// (tracing never changes them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/step_counter.hpp"

namespace ppa::sim {

struct TraceEvent {
  StepCategory category = StepCategory::Alu;
  /// Meaningful for Shift / BusBroadcast / BusOr; North otherwise.
  Direction direction = Direction::North;
  /// Number of Open switch boxes (bus cycles only).
  std::size_t open_count = 0;
  /// Longest driven segment in switch hops (bus cycles only).
  std::size_t max_segment = 0;
  /// How many identical instructions this event stands for. Bulk ALU
  /// charges emit ONE event with count > 1 instead of one event per
  /// instruction, so tracing stays O(events) off the hot path.
  std::uint64_t count = 1;
  /// Bit planes riding the cycle (bus cycles only): the value width for a
  /// word broadcast, 1 for flag cycles. Identical across backends — the
  /// bit-plane engine sweeps the same logical planes the word engine moves
  /// at once.
  std::size_t planes = 1;
  /// Bus occupancy (bus cycles only, and only when a sink is attached —
  /// tracing off means the occupancy scan never runs): how many of the
  /// array's `wires` PE bus ports read a driven value this cycle. Wired-OR
  /// cycles never float, so there driven_wires == wires. Derived from the
  /// driven flags, which are pinned bit-identical across backends.
  std::size_t driven_wires = 0;
  /// Total PE bus ports on the array (pe_count); 0 for non-bus events.
  std::size_t wires = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// What went wrong in a checked / fault-injected run.
enum class FaultEventKind : std::uint8_t {
  /// Two (or more) program drivers ended up in one bus segment — on the
  /// simulated hardware this happens when a stuck-closed switch box merges
  /// segments the program meant to keep apart.
  BusContention,
  /// A masked store consumed a bus value no PE drove (checked mode records
  /// this instead of throwing; the read yields 0).
  UndrivenRead,
  /// The host-side certificate checker rejected the unloaded solution.
  VerificationFailed,
  /// The relaxation loop exhausted its iteration budget without settling.
  NonConvergence,
};

[[nodiscard]] const char* name_of(FaultEventKind kind) noexcept;

/// Structured diagnostic recorded by checked execution and the solver's
/// verification layer. `row`/`col` identify the first affected PE (when
/// known), `count` how many PEs the event stands for.
struct FaultEvent {
  FaultEventKind kind = FaultEventKind::BusContention;
  /// Bus category for bus-related kinds; Alu otherwise.
  StepCategory category = StepCategory::Alu;
  Direction direction = Direction::North;
  std::size_t row = 0;
  std::size_t col = 0;
  std::size_t count = 1;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Observer interface; implementations must not call back into the
/// machine they observe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  /// Checked-execution diagnostics; default ignores them so existing
  /// sinks keep compiling.
  virtual void on_fault(const FaultEvent& /*event*/) {}
};

/// Stores every event; convenient in tests and small demos.
class RecordingTrace final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }
  void on_fault(const FaultEvent& event) override { faults_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] const std::vector<FaultEvent>& faults() const noexcept { return faults_; }

  /// Total instructions recorded for `category` (bulk events weighted by
  /// their count).
  [[nodiscard]] std::uint64_t count(StepCategory category) const noexcept;

  /// Total instructions over all events (the traced StepCounter::total()).
  [[nodiscard]] std::uint64_t instruction_count() const noexcept;
  void clear() noexcept {
    events_.clear();
    faults_.clear();
  }

 private:
  std::vector<TraceEvent> events_;
  std::vector<FaultEvent> faults_;
};

/// One-line rendering, e.g. "bus_bcast dir=South open=4 seg=8".
[[nodiscard]] std::string to_string(const TraceEvent& event);

/// One-line rendering, e.g. "bus_contention bus_bcast dir=South pe=(3,7) x2".
[[nodiscard]] std::string to_string(const FaultEvent& event);

}  // namespace ppa::sim
