// AVX-512 kernel arm. Compiled with -mavx512f -mavx512bw -mavx512vl
// -mavx512dq (see src/ppc/CMakeLists.txt); avx512_kernels() additionally
// checks the CPU for the same feature set before handing the table out.
#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "sim/plane_kernels.hpp"
#include "sim/plane_kernels_detail.hpp"

namespace ppa::sim::plane_kernels {

namespace {

struct VecAvx512 {
  static constexpr std::size_t W = 8;  // 8 x 64-bit lanes
  using reg = __m512i;
  static reg load(const sim::PlaneWord* p) noexcept { return _mm512_loadu_si512(p); }
  static void store(sim::PlaneWord* p, reg v) noexcept { _mm512_storeu_si512(p, v); }
  static reg zero() noexcept { return _mm512_setzero_si512(); }
  static reg and_(reg a, reg b) noexcept { return _mm512_and_si512(a, b); }
  static reg or_(reg a, reg b) noexcept { return _mm512_or_si512(a, b); }
  static reg xor_(reg a, reg b) noexcept { return _mm512_xor_si512(a, b); }
  // _mm512_andnot_si512(a, b) computes ~a & b; our contract is a & ~b.
  static reg andnot(reg a, reg b) noexcept { return _mm512_andnot_si512(b, a); }
  static bool is_zero(reg a) noexcept { return _mm512_test_epi64_mask(a, a) == 0; }
};

/// 64 lanes per group: bit j of each 32-bit PE word is harvested with a
/// vptestm mask — 16 lanes per 512-bit register, four registers per plane
/// word.
void pack_words_rows_avx512(const sim::PlaneGeometry& g, const sim::Word* src,
                            int planes, sim::PlaneWord* out, std::size_t row_begin,
                            std::size_t row_end) {
  const std::size_t pw = g.plane_words();
  const std::size_t n = g.n;
  const std::size_t rw = g.row_words;
  alignas(64) sim::Word buf[sim::kLanesPerWord];
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const sim::Word* row = src + r * n;
    for (std::size_t w = 0; w < rw; ++w) {
      const std::size_t lane0 = w * sim::kLanesPerWord;
      const std::size_t lanes = std::min(sim::kLanesPerWord, n - lane0);
      const sim::Word* p = row + lane0;
      if (lanes < sim::kLanesPerWord) {
        std::memset(buf, 0, sizeof(buf));
        std::memcpy(buf, p, lanes * sizeof(sim::Word));
        p = buf;
      }
      __m512i v[4];
      for (int k = 0; k < 4; ++k) v[k] = _mm512_loadu_si512(p + 16 * k);
      const std::size_t idx = r * rw + w;
      for (int j = 0; j < planes; ++j) {
        const __m512i bit = _mm512_set1_epi32(1 << j);
        std::uint64_t m = 0;
        for (int k = 0; k < 4; ++k) {
          m |= static_cast<std::uint64_t>(_mm512_test_epi32_mask(v[k], bit)) << (16 * k);
        }
        out[static_cast<std::size_t>(j) * pw + idx] = m;
      }
    }
  }
}

}  // namespace

const PlaneKernels* avx512_table() noexcept;  // referenced by plane_kernels.cpp

const PlaneKernels* avx512_table() noexcept {
  static const PlaneKernels table = [] {
    PlaneKernels t;
    t.variant = SimdVariant::Avx512;
    t.op_and = detail::t_op_and<VecAvx512>;
    t.op_or = detail::t_op_or<VecAvx512>;
    t.op_xor = detail::t_op_xor<VecAvx512>;
    t.op_andnot = detail::t_op_andnot<VecAvx512>;
    t.op_copy = detail::t_op_copy<VecAvx512>;
    t.op_zero = detail::t_op_zero<VecAvx512>;
    t.masked_assign = detail::t_masked_assign<VecAvx512>;
    t.blend = detail::t_blend<VecAvx512>;
    t.all_zero = detail::t_all_zero<VecAvx512>;
    t.equal = detail::t_equal<VecAvx512>;
    t.add_sat = detail::t_add_sat<VecAvx512>;
    t.compare_lt = detail::t_compare_lt<VecAvx512>;
    t.compare_eq = detail::t_compare_eq<VecAvx512>;
    t.pack_words = pack_words_rows_avx512;
    return t;
  }();
  return &table;
}

}  // namespace ppa::sim::plane_kernels

#endif  // __AVX512F__
