#include "sim/bus.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace ppa::sim {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// One line of the array as a strided walk in flow order: position k lives
/// at element base + k*stride. Row lines are contiguous (stride ±1), column
/// lines stride by ±n; West/North flow is the same memory walked backward.
/// This replaces the per-access (line, k) -> PE index map of the reference
/// engine with pointer arithmetic the compiler strength-reduces.
struct LineWalk {
  std::size_t base;
  std::ptrdiff_t stride;
};

LineWalk line_walk(std::size_t n, Direction dir, std::size_t line) noexcept {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  switch (dir) {
    case Direction::East: return {line * n, 1};
    case Direction::West: return {line * n + (n - 1), -1};
    case Direction::South: return {line, sn};
    case Direction::North: return {line + (n - 1) * n, -sn};
  }
  return {0, 1};  // unreachable
}

void check_sizes(std::size_t n, std::size_t src_size, std::size_t open_size) {
  PPA_REQUIRE(n >= 1, "array side must be positive");
  PPA_REQUIRE(src_size == n * n && open_size == n * n,
              "bus operands must cover the whole array");
}

void check_out_sizes(std::size_t n, std::size_t values_size, std::size_t driven_size) {
  PPA_REQUIRE(values_size == n * n && driven_size == n * n,
              "bus output buffers must cover the whole array");
}

/// Broadcast over every line in O(n) per line: one forward scan resolves
/// every interior cluster (each position past an Open node reads the most
/// recent one), then the Ring wrap is settled by revisiting only the
/// prefix up to the first Open node — the positions whose driver is the
/// LAST Open node of the line. Lane type T is Word for registers and Flag
/// for parallel logicals (which ride the same switches as 1-bit lanes).
template <typename T>
std::size_t broadcast_lines(std::size_t n, BusTopology topology, Direction dir,
                            const T* src, const Flag* open, T* values, Flag* driven) {
  std::size_t max_segment = 0;
  for (std::size_t line = 0; line < n; ++line) {
    const LineWalk walk = line_walk(n, dir, line);
    bool have_driver = false;
    T cur{};
    std::size_t first_open = kNone;
    std::size_t last_open = kNone;
    std::size_t run = 0;

    auto p = static_cast<std::ptrdiff_t>(walk.base);
    for (std::size_t k = 0; k < n; ++k, p += walk.stride) {
      if (have_driver) {
        values[p] = cur;
        driven[p] = 1;
        ++run;
      }
      if (open[p]) {
        // A cluster ends at (and includes) its next Open node downstream.
        max_segment = std::max(max_segment, run);
        run = 0;
        have_driver = true;
        cur = src[p];
        last_open = k;
        if (first_open == kNone) first_open = k;
      }
    }

    p = static_cast<std::ptrdiff_t>(walk.base);
    if (!have_driver) {
      // No Open switch: the whole line floats (broadcast needs a driver).
      for (std::size_t k = 0; k < n; ++k, p += walk.stride) {
        values[p] = T{};
        driven[p] = 0;
      }
    } else if (topology == BusTopology::Ring) {
      // Wrap cluster: positions after the last Open node (already written
      // with its value by the forward scan) plus the prefix through the
      // first Open node, which reads the wrapped signal.
      for (std::size_t k = 0; k <= first_open; ++k, p += walk.stride) {
        values[p] = cur;
        driven[p] = 1;
      }
      max_segment = std::max(max_segment, n - last_open + first_open);
    } else {
      // Linear: the head stub up to and including the first Open node
      // floats; the tail run past the last Open node ends at the wall.
      for (std::size_t k = 0; k <= first_open; ++k, p += walk.stride) {
        values[p] = T{};
        driven[p] = 0;
      }
      max_segment = std::max(max_segment, run);
    }
  }
  return max_segment;
}

/// Wired-OR over every line in O(n) per line. Segments are the contiguous
/// intervals [Open_i, Open_{i+1}) in flow order; one forward scan
/// accumulates each segment's OR and writes it back over the interval as
/// soon as the segment closes (intervals are disjoint, so the write-backs
/// also total O(n)). The head stub before the first Open node joins the
/// last segment on a Ring (the wrap) and forms its own segment on a
/// Linear bus. T is the output lane type (the 0/1 result widens to Word
/// for the BusResult API).
template <typename T>
std::size_t wired_or_lines(std::size_t n, BusTopology topology, Direction dir,
                           const Flag* src, const Flag* open, T* values) {
  std::size_t max_segment = 0;
  for (std::size_t line = 0; line < n; ++line) {
    const LineWalk walk = line_walk(n, dir, line);
    const auto at = [&](std::size_t k) {
      return static_cast<std::ptrdiff_t>(walk.base) + static_cast<std::ptrdiff_t>(k) * walk.stride;
    };
    const auto write_back = [&](std::size_t begin, std::size_t end, Flag value) {
      auto p = at(begin);
      for (std::size_t k = begin; k < end; ++k, p += walk.stride) {
        values[p] = static_cast<T>(value);
      }
    };

    std::size_t first_open = kNone;
    std::size_t seg_start = 0;  // start of the segment currently accumulating
    Flag acc = 0;
    Flag head_acc = 0;  // OR of the positions before the first Open node

    auto p = at(0);
    for (std::size_t k = 0; k < n; ++k, p += walk.stride) {
      if (open[p]) {
        if (first_open == kNone) {
          first_open = k;
          head_acc = acc;
        } else {
          write_back(seg_start, k, acc);
          max_segment = std::max(max_segment, k - seg_start);
        }
        seg_start = k;
        acc = 0;
      }
      // An Open node pulls (and reads) its DOWNSTREAM segment, so its own
      // bit joins the segment it just started.
      acc = static_cast<Flag>(acc | (src[p] != 0 ? 1 : 0));
    }

    if (first_open == kNone) {
      // No Open switch: one unsegmented line (a Ring loop or the Linear
      // head segment covering everything).
      write_back(0, n, acc);
      max_segment = std::max(max_segment, n);
    } else if (topology == BusTopology::Ring) {
      const auto wrap = static_cast<Flag>(acc | head_acc);
      write_back(seg_start, n, wrap);
      write_back(0, first_open, wrap);
      max_segment = std::max(max_segment, n - seg_start + first_open);
    } else {
      write_back(seg_start, n, acc);
      max_segment = std::max(max_segment, n - seg_start);
      write_back(0, first_open, head_acc);
      max_segment = std::max(max_segment, first_open);
    }
  }
  return max_segment;
}

}  // namespace

std::size_t bus_broadcast_into(std::size_t n, BusTopology topology, Direction dir,
                               std::span<const Word> src, std::span<const Flag> open,
                               std::span<Word> values, std::span<Flag> driven) {
  check_sizes(n, src.size(), open.size());
  check_out_sizes(n, values.size(), driven.size());
  return broadcast_lines(n, topology, dir, src.data(), open.data(), values.data(),
                         driven.data());
}

std::size_t bus_broadcast_into(std::size_t n, BusTopology topology, Direction dir,
                               std::span<const Flag> src, std::span<const Flag> open,
                               std::span<Flag> values, std::span<Flag> driven) {
  check_sizes(n, src.size(), open.size());
  check_out_sizes(n, values.size(), driven.size());
  return broadcast_lines(n, topology, dir, src.data(), open.data(), values.data(),
                         driven.data());
}

std::size_t bus_wired_or_into(std::size_t n, BusTopology topology, Direction dir,
                              std::span<const Flag> src, std::span<const Flag> open,
                              std::span<Flag> values) {
  check_sizes(n, src.size(), open.size());
  PPA_REQUIRE(values.size() == n * n, "bus output buffers must cover the whole array");
  return wired_or_lines(n, topology, dir, src.data(), open.data(), values.data());
}

BusResult bus_broadcast(std::size_t n, BusTopology topology, Direction dir,
                        std::span<const Word> src, std::span<const Flag> open) {
  check_sizes(n, src.size(), open.size());
  BusResult result;
  result.values.resize(n * n);
  result.driven.resize(n * n);
  result.max_segment =
      broadcast_lines(n, topology, dir, src.data(), open.data(), result.values.data(),
                      result.driven.data());
  return result;
}

BusResult bus_wired_or(std::size_t n, BusTopology topology, Direction dir,
                       std::span<const Flag> src, std::span<const Flag> open) {
  check_sizes(n, src.size(), open.size());
  BusResult result;
  result.values.resize(n * n);
  // An open-collector read never floats: a segment nobody pulls reads 0.
  result.driven.assign(n * n, 1);
  result.max_segment =
      wired_or_lines(n, topology, dir, src.data(), open.data(), result.values.data());
  return result;
}

}  // namespace ppa::sim
