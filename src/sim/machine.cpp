#include "sim/machine.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

#include "sim/plane_kernels.hpp"
#include "util/check.hpp"

namespace ppa::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config), field_(config.bits), geometry_(config.n) {
  PPA_REQUIRE(config.n >= 1, "array side must be positive");
  // The array must be addressable by its own words: ROW and COL constants
  // (and selected_min over COL) live in the h-bit field.
  PPA_REQUIRE(config.n - 1 <= field_.max_finite(),
              "array side does not fit in the h-bit word field");
  PPA_REQUIRE(config.masking != BusMasking::Ecc || config.backend == ExecBackend::BitPlane,
              "ECC masking rides the bit-plane bus engine; it requires "
              "backend == BitPlane (use TMR on the word backend)");
  const std::size_t count = pe_count();
  row_index_.resize(count);
  col_index_.resize(count);
  for (std::size_t pe = 0; pe < count; ++pe) {
    row_index_[pe] = static_cast<Word>(pe / config.n);
    col_index_[pe] = static_cast<Word>(pe % config.n);
  }
  if (config.host_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config.host_threads);
  }
}

void Machine::shift(std::span<const Word> src, Direction dir, Word fill,
                    std::span<Word> dst) {
  PPA_REQUIRE(src.size() == pe_count() && dst.size() == pe_count(),
              "shift operands must cover the whole array");
  PPA_REQUIRE(src.data() != dst.data(), "shift source and destination must not alias");
  const std::size_t side = config_.n;
  steps_.charge(StepCategory::Shift);
  if (trace_ != nullptr) trace_->on_event(TraceEvent{StepCategory::Shift, dir, 0, 0});
  for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      const std::size_t r = pe / side;
      const std::size_t c = pe % side;
      // Receiving from the upstream neighbour: data moving East arrives
      // from the West, etc.
      switch (dir) {
        case Direction::East:
          dst[pe] = (c == 0) ? fill : src[pe - 1];
          break;
        case Direction::West:
          dst[pe] = (c + 1 == side) ? fill : src[pe + 1];
          break;
        case Direction::South:
          dst[pe] = (r == 0) ? fill : src[pe - side];
          break;
        case Direction::North:
          dst[pe] = (r + 1 == side) ? fill : src[pe + side];
          break;
      }
    }
  });
}

namespace {

std::size_t count_open(std::span<const Flag> open) {
  std::size_t total = 0;
  for (const Flag f : open) total += (f != 0);
  return total;
}

/// True when a transient (or persistent) stuck bit afflicts this cycle.
bool stuck_bit_active(const StuckBitFault& sb, std::uint64_t cycle) {
  return sb.period == 0 || cycle % sb.period == sb.phase;
}

/// Per-element 2-of-3 majority vote of a (the primary trial, updated in
/// place), b and c. Bitwise, so it is simultaneously a per-wire vote on
/// words and a per-lane vote on packed planes. Returns true when any trial
/// disagreed with the voted result — i.e. the vote actually masked
/// something.
template <typename T>
bool majority_vote(std::span<T> a, std::span<const T> b, std::span<const T> c) {
  bool changed = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const T m = static_cast<T>((a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i]));
    changed = changed || m != a[i] || m != b[i] || m != c[i];
    a[i] = m;
  }
  return changed;
}

bool majority_vote_words(PlaneWord* a, const PlaneWord* b, const PlaneWord* c,
                         std::size_t words) {
  bool changed = false;
  for (std::size_t i = 0; i < words; ++i) {
    const PlaneWord m = (a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i]);
    changed = changed || m != a[i] || m != b[i] || m != c[i];
    a[i] = m;
  }
  return changed;
}

/// Parity planes protecting `planes` data planes: Hamming with data plane j
/// assigned the nonzero signature j + 1, so r = bit_width(planes) parity
/// planes distinguish every single-plane error (h = 16 -> r = 5).
int ecc_parity_count(int planes) {
  return static_cast<int>(std::bit_width(static_cast<unsigned>(planes)));
}

}  // namespace

void Machine::inject_faults(const FaultModel& model) {
  faults_ = compile_faults(model, geometry_, field_.bits());
}

void Machine::report_fault(const FaultEvent& event) {
  ++fault_count_;
  if (fault_log_.size() < kMaxFaultLog) fault_log_.push_back(event);
  if (trace_ != nullptr) trace_->on_fault(event);
}

// ---------------------------------------------------------------------------
// Fault transform. Every faulty bus cycle runs the fault-free kernel on
// transformed inputs (effective switches, dead drivers silenced), then
// post-processes the received values (driver liveness, stuck line bits,
// dead reads). Word and plane paths compute the same function over the same
// compiled masks, so backend parity extends to faulty runs.
// ---------------------------------------------------------------------------

std::span<const Flag> Machine::effective_open(Axis axis, std::span<const Flag> open) {
  const int a = static_cast<int>(axis);
  if (!faults_.any_switch[a]) return open;
  scratch_open_.resize(open.size());
  const Flag* so = faults_.stuck_open[a].data();
  const Flag* sc = faults_.stuck_closed[a].data();
  for (std::size_t pe = 0; pe < open.size(); ++pe) {
    scratch_open_[pe] = static_cast<Flag>((open[pe] | so[pe]) & (sc[pe] ^ 1u));
  }
  return scratch_open_;
}

const PlaneWord* Machine::effective_open_plane(Axis axis, const PlaneWord* open) {
  const int a = static_cast<int>(axis);
  if (!faults_.any_switch[a]) return open;
  const std::size_t pw = geometry_.plane_words();
  scratch_open_plane_.resize(pw);
  const PlaneWord* so = faults_.stuck_open_plane[a].data();
  const PlaneWord* sc = faults_.stuck_closed_plane[a].data();
  for (std::size_t i = 0; i < pw; ++i) scratch_open_plane_[i] = (open[i] | so[i]) & ~sc[i];
  return scratch_open_plane_.data();
}

void Machine::check_contention(StepCategory category, Direction dir,
                               std::span<const Flag> program_open) {
  if (!config_.checked) return;
  const int a = static_cast<int>(axis_of(dir));
  if (!faults_.any_switch[a]) return;
  const Flag* sc = faults_.stuck_closed[a].data();
  std::size_t first = 0;
  std::size_t count = 0;
  for (std::size_t pe = 0; pe < program_open.size(); ++pe) {
    if (program_open[pe] != 0 && sc[pe] != 0) {
      if (count == 0) first = pe;
      ++count;
    }
  }
  if (count != 0) {
    report_fault(FaultEvent{FaultEventKind::BusContention, category, dir,
                            first / config_.n, first % config_.n, count});
  }
}

void Machine::check_contention_plane(StepCategory category, Direction dir,
                                     const PlaneWord* program_open) {
  if (!config_.checked) return;
  const int a = static_cast<int>(axis_of(dir));
  if (!faults_.any_switch[a]) return;
  const PlaneWord* sc = faults_.stuck_closed_plane[a].data();
  const std::size_t pw = geometry_.plane_words();
  std::size_t first = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < pw; ++i) {
    const PlaneWord hit = program_open[i] & sc[i];
    if (hit == 0) continue;
    if (count == 0) {
      const std::size_t row = i / geometry_.row_words;
      const std::size_t col = (i % geometry_.row_words) * kLanesPerWord +
                              static_cast<std::size_t>(__builtin_ctzll(hit));
      first = row * config_.n + col;
    }
    count += static_cast<std::size_t>(__builtin_popcountll(hit));
  }
  if (count != 0) {
    report_fault(FaultEvent{FaultEventKind::BusContention, category, dir,
                            first / config_.n, first % config_.n, count});
  }
}

void Machine::clear_dead_driven(Direction dir, std::span<const Flag> open_eff,
                                std::span<Flag> driven) {
  if (!faults_.any_dead) return;
  // Ride-along liveness cycle: broadcast "I am alive" over the same
  // effective switches; a segment reads 0 exactly when its driver is dead
  // (or the segment floats, in which case driven is already 0). Raw kernel
  // call — physically this is the same bus cycle, so no extra charge.
  scratch_alive_value_.resize(pe_count());
  scratch_alive_driven_.resize(pe_count());
  (void)bus_broadcast_into(config_.n, config_.topology, dir,
                           std::span<const Flag>(faults_.alive), open_eff,
                           std::span<Flag>(scratch_alive_value_),
                           std::span<Flag>(scratch_alive_driven_));
  for (std::size_t pe = 0; pe < driven.size(); ++pe) {
    driven[pe] = static_cast<Flag>(driven[pe] & scratch_alive_value_[pe]);
  }
}

void Machine::clear_dead_driven_plane(Direction dir, const PlaneWord* open_eff,
                                      PlaneWord* driven) {
  if (!faults_.any_dead) return;
  const std::size_t pw = geometry_.plane_words();
  scratch_alive_out_.resize(pw);
  scratch_alive_driven_plane_.resize(pw);
  (void)plane_broadcast_into(geometry_, config_.topology, dir, faults_.alive_plane.data(),
                             1, open_eff, scratch_alive_out_.data(),
                             scratch_alive_driven_plane_.data(), plane_bus_exec());
  for (std::size_t i = 0; i < pw; ++i) driven[i] &= scratch_alive_out_[i];
}

template <typename T>
void Machine::apply_stuck_bits(Axis axis, std::span<T> values, int value_bits,
                               std::uint64_t cycle) {
  const std::size_t n = config_.n;
  for (const StuckBitFault& sb : faults_.stuck_bits[static_cast<int>(axis)]) {
    if (sb.bit >= value_bits || !stuck_bit_active(sb, cycle)) continue;
    const T bit = static_cast<T>(T{1} << sb.bit);
    const std::size_t base = axis == Axis::Row ? sb.line * n : sb.line;
    const std::size_t stride = axis == Axis::Row ? 1 : n;
    for (std::size_t k = 0; k < n; ++k) {
      T& v = values[base + k * stride];
      v = static_cast<T>(sb.value ? (v | bit) : (v & static_cast<T>(~bit)));
    }
  }
}

void Machine::apply_stuck_bits_planes(Axis axis, PlaneWord* out, int planes,
                                      std::uint64_t cycle) {
  const std::size_t pw = geometry_.plane_words();
  for (const StuckBitFault& sb : faults_.stuck_bits[static_cast<int>(axis)]) {
    if (sb.bit >= planes || !stuck_bit_active(sb, cycle)) continue;
    PlaneWord* plane = out + static_cast<std::size_t>(sb.bit) * pw;
    if (axis == Axis::Row) {
      for (std::size_t w = 0; w < geometry_.row_words; ++w) {
        PlaneWord& v = plane[sb.line * geometry_.row_words + w];
        const PlaneWord mask = geometry_.word_mask(w);  // keeps pads zero
        v = sb.value ? (v | mask) : (v & ~mask);
      }
    } else {
      const std::size_t w = sb.line / kLanesPerWord;
      const PlaneWord mask = PlaneWord{1} << PlaneGeometry::bit_of(sb.line);
      for (std::size_t r = 0; r < config_.n; ++r) {
        PlaneWord& v = plane[r * geometry_.row_words + w];
        v = sb.value ? (v | mask) : (v & ~mask);
      }
    }
  }
}

template <typename T>
std::size_t Machine::broadcast_cycle(std::span<const T> src, Direction dir,
                                     std::span<const Flag> open, std::span<T> values,
                                     std::span<Flag> driven, int value_bits,
                                     StepCategory category) {
  const std::uint64_t cycle = bus_cycles_++;
  const Axis axis = axis_of(dir);
  std::span<const Flag> open_eff = open;
  std::span<const T> src_eff = src;
  if (faults_.any) {
    open_eff = effective_open(axis, open);
    if (faults_.any_dead) {
      auto& scratch = [&]() -> std::vector<T>& {
        if constexpr (std::is_same_v<T, Word>) return scratch_src_word_;
        else return scratch_src_flag_;
      }();
      scratch.resize(src.size());
      const Flag* dead = faults_.dead.data();
      for (std::size_t pe = 0; pe < src.size(); ++pe) {
        scratch[pe] = dead[pe] != 0 ? T{0} : src[pe];
      }
      src_eff = scratch;
    }
  }
  const std::size_t max_segment =
      bus_broadcast_into(config_.n, config_.topology, dir, src_eff, open_eff, values, driven);
  if (faults_.any) {
    // A masked re-execution rides the primary trial's cycle: that trial
    // already reported any contention, so the Masking trials stay silent.
    if (category != StepCategory::Masking) check_contention(category, dir, open);
    clear_dead_driven(dir, open_eff, driven);
    apply_stuck_bits(axis, values, value_bits, cycle);
    if (faults_.any_dead) {
      const Flag* dead = faults_.dead.data();
      for (std::size_t pe = 0; pe < values.size(); ++pe) {
        if (dead[pe] != 0) values[pe] = T{0};
      }
    }
  }
  steps_.charge_bus(category, max_segment);
  if (trace_ != nullptr) {
    // Bus occupancy rides the event only while a sink is attached: the
    // driven-flag scan is host bookkeeping, never charged, and the flags
    // themselves are pinned bit-identical across backends.
    std::size_t driven_wires = 0;
    for (const Flag f : driven) driven_wires += static_cast<std::size_t>(f != 0);
    trace_->on_event(TraceEvent{category, dir, count_open(open_eff), max_segment, 1,
                                static_cast<std::size_t>(value_bits), driven_wires,
                                driven.size()});
  }
  return max_segment;
}

template <typename T>
std::size_t Machine::tmr_broadcast_into(std::span<const T> src, Direction dir,
                                        std::span<const Flag> open, std::span<T> values,
                                        std::span<Flag> driven, int value_bits) {
  const std::size_t max_segment =
      broadcast_cycle<T>(src, dir, open, values, driven, value_bits,
                         StepCategory::BusBroadcast);
  auto trial = [&](int i) -> std::vector<T>& {
    if constexpr (std::is_same_v<T, Word>) return tmr_word_[i];
    else return tmr_flag_[i];
  };
  for (int i = 0; i < 2; ++i) {
    trial(i).resize(values.size());
    tmr_driven_[i].resize(driven.size());
    (void)broadcast_cycle<T>(src, dir, open, std::span<T>(trial(i)),
                             std::span<Flag>(tmr_driven_[i]), value_bits,
                             StepCategory::Masking);
  }
  ++mask_stats_.votes;
  bool changed = majority_vote<T>(values, trial(0), trial(1));
  changed |= majority_vote<Flag>(driven, tmr_driven_[0], tmr_driven_[1]);
  if (changed) ++mask_stats_.corrections;
  return max_segment;
}

BusResult Machine::broadcast(std::span<const Word> src, Direction dir,
                             std::span<const Flag> open) {
  BusResult result;
  result.values.resize(pe_count());
  result.driven.resize(pe_count());
  result.max_segment = broadcast_into(src, dir, open, result.values, result.driven);
  return result;
}

BusResult Machine::wired_or(std::span<const Flag> src, Direction dir,
                            std::span<const Flag> open) {
  BusResult result;
  std::vector<Flag> values(pe_count());
  result.max_segment = wired_or_into(src, dir, open, values);
  result.values.assign(values.begin(), values.end());
  result.driven.assign(pe_count(), 1);  // an open-collector read never floats
  return result;
}

std::size_t Machine::broadcast_into(std::span<const Word> src, Direction dir,
                                    std::span<const Flag> open, std::span<Word> values,
                                    std::span<Flag> driven) {
  if (config_.masking == BusMasking::Tmr) {
    return tmr_broadcast_into<Word>(src, dir, open, values, driven, field_.bits());
  }
  return broadcast_cycle<Word>(src, dir, open, values, driven, field_.bits(),
                               StepCategory::BusBroadcast);
}

std::size_t Machine::broadcast_into(std::span<const Flag> src, Direction dir,
                                    std::span<const Flag> open, std::span<Flag> values,
                                    std::span<Flag> driven) {
  if (config_.masking == BusMasking::Tmr) {
    return tmr_broadcast_into<Flag>(src, dir, open, values, driven, 1);
  }
  return broadcast_cycle<Flag>(src, dir, open, values, driven, 1,
                               StepCategory::BusBroadcast);
}

std::size_t Machine::wired_or_cycle(std::span<const Flag> src, Direction dir,
                                    std::span<const Flag> open, std::span<Flag> values,
                                    StepCategory category) {
  const std::uint64_t cycle = bus_cycles_++;
  const Axis axis = axis_of(dir);
  std::span<const Flag> open_eff = open;
  std::span<const Flag> src_eff = src;
  if (faults_.any) {
    open_eff = effective_open(axis, open);
    if (faults_.any_dead) {
      scratch_src_flag_.resize(src.size());
      const Flag* dead = faults_.dead.data();
      for (std::size_t pe = 0; pe < src.size(); ++pe) {
        scratch_src_flag_[pe] = dead[pe] != 0 ? Flag{0} : src[pe];
      }
      src_eff = scratch_src_flag_;
    }
  }
  const std::size_t max_segment =
      bus_wired_or_into(config_.n, config_.topology, dir, src_eff, open_eff, values);
  if (faults_.any) {
    apply_stuck_bits(axis, values, 1, cycle);
    if (faults_.any_dead) {
      const Flag* dead = faults_.dead.data();
      for (std::size_t pe = 0; pe < values.size(); ++pe) {
        if (dead[pe] != 0) values[pe] = 0;
      }
    }
  }
  steps_.charge_bus(category, max_segment);
  if (trace_ != nullptr) {
    // An open-collector read never floats: every PE port sees the OR.
    trace_->on_event(TraceEvent{category, dir, count_open(open_eff), max_segment, 1, 1,
                                values.size(), values.size()});
  }
  return max_segment;
}

std::size_t Machine::tmr_wired_or_into(std::span<const Flag> src, Direction dir,
                                       std::span<const Flag> open, std::span<Flag> values) {
  const std::size_t max_segment =
      wired_or_cycle(src, dir, open, values, StepCategory::BusOr);
  for (int i = 0; i < 2; ++i) {
    tmr_flag_[i].resize(values.size());
    (void)wired_or_cycle(src, dir, open, std::span<Flag>(tmr_flag_[i]),
                         StepCategory::Masking);
  }
  ++mask_stats_.votes;
  if (majority_vote<Flag>(values, tmr_flag_[0], tmr_flag_[1])) ++mask_stats_.corrections;
  return max_segment;
}

std::size_t Machine::wired_or_into(std::span<const Flag> src, Direction dir,
                                   std::span<const Flag> open, std::span<Flag> values) {
  if (config_.masking == BusMasking::Tmr) return tmr_wired_or_into(src, dir, open, values);
  return wired_or_cycle(src, dir, open, values, StepCategory::BusOr);
}

std::size_t Machine::broadcast_planes_cycle(const PlaneWord* src, int planes,
                                            Direction dir, const PlaneWord* open,
                                            PlaneWord* out, PlaneWord* driven,
                                            StepCategory category) {
  const std::uint64_t cycle = bus_cycles_++;
  const Axis axis = axis_of(dir);
  const PlaneWord* open_eff = open;
  const PlaneWord* src_eff = src;
  const std::size_t pw = geometry_.plane_words();
  if (faults_.any) {
    open_eff = effective_open_plane(axis, open);
    if (faults_.any_dead) {
      scratch_src_planes_.resize(pw * static_cast<std::size_t>(planes));
      const PlaneWord* alive = faults_.alive_plane.data();
      for (int j = 0; j < planes; ++j) {
        const std::size_t off = static_cast<std::size_t>(j) * pw;
        for (std::size_t i = 0; i < pw; ++i) {
          scratch_src_planes_[off + i] = src[off + i] & alive[i];
        }
      }
      src_eff = scratch_src_planes_.data();
    }
  }
  const std::size_t max_segment =
      plane_broadcast_into(geometry_, config_.topology, dir, src_eff, planes, open_eff,
                           out, driven, plane_bus_exec());
  if (faults_.any) {
    if (category != StepCategory::Masking) check_contention_plane(category, dir, open);
    clear_dead_driven_plane(dir, open_eff, driven);
    apply_stuck_bits_planes(axis, out, planes, cycle);
    if (faults_.any_dead) {
      const PlaneWord* alive = faults_.alive_plane.data();
      for (int j = 0; j < planes; ++j) {
        const std::size_t off = static_cast<std::size_t>(j) * pw;
        for (std::size_t i = 0; i < pw; ++i) out[off + i] &= alive[i];
      }
    }
  }
  steps_.charge_bus(category, max_segment);
  if (trace_ != nullptr) {
    // Pads are canonically zero, so the plane popcount equals the word
    // engine's driven-flag count exactly (the parity the tests pin).
    trace_->on_event(TraceEvent{category, dir, plane_popcount(geometry_, open_eff),
                                max_segment, 1, static_cast<std::size_t>(planes),
                                plane_popcount(geometry_, driven), pe_count()});
  }
  return max_segment;
}

std::size_t Machine::tmr_broadcast_planes_into(const PlaneWord* src, int planes,
                                               Direction dir, const PlaneWord* open,
                                               PlaneWord* out, PlaneWord* driven) {
  const std::size_t max_segment =
      broadcast_planes_cycle(src, planes, dir, open, out, driven,
                             StepCategory::BusBroadcast);
  const std::size_t pw = geometry_.plane_words();
  const std::size_t words = pw * static_cast<std::size_t>(planes);
  for (int i = 0; i < 2; ++i) {
    tmr_planes_[i].resize(words);
    tmr_planes_driven_[i].resize(pw);
    (void)broadcast_planes_cycle(src, planes, dir, open, tmr_planes_[i].data(),
                                 tmr_planes_driven_[i].data(), StepCategory::Masking);
  }
  ++mask_stats_.votes;
  bool changed =
      majority_vote_words(out, tmr_planes_[0].data(), tmr_planes_[1].data(), words);
  changed |= majority_vote_words(driven, tmr_planes_driven_[0].data(),
                                 tmr_planes_driven_[1].data(), pw);
  if (changed) ++mask_stats_.corrections;
  return max_segment;
}

std::size_t Machine::broadcast_planes_into(const PlaneWord* src, int planes,
                                           Direction dir, const PlaneWord* open,
                                           PlaneWord* out, PlaneWord* driven) {
  if (config_.masking == BusMasking::Tmr) {
    return tmr_broadcast_planes_into(src, planes, dir, open, out, driven);
  }
  if (config_.masking == BusMasking::Ecc) {
    return ecc_broadcast_planes_into(src, planes, dir, open, out, driven);
  }
  return broadcast_planes_cycle(src, planes, dir, open, out, driven,
                                StepCategory::BusBroadcast);
}

std::size_t Machine::shadow_broadcast_into(std::span<const Flag> src, Direction dir,
                                           std::span<const Flag> open,
                                           std::span<Flag> values, std::span<Flag> driven) {
  if (!faults_.any) {
    return bus_broadcast_into(config_.n, config_.topology, dir, src, open, values, driven);
  }
  const Axis axis = axis_of(dir);
  const std::span<const Flag> open_eff = effective_open(axis, open);
  std::span<const Flag> src_eff = src;
  if (faults_.any_dead) {
    scratch_src_flag_.resize(src.size());
    const Flag* dead = faults_.dead.data();
    for (std::size_t pe = 0; pe < src.size(); ++pe) {
      scratch_src_flag_[pe] = dead[pe] != 0 ? Flag{0} : src[pe];
    }
    src_eff = scratch_src_flag_;
  }
  const std::size_t max_segment =
      bus_broadcast_into(config_.n, config_.topology, dir, src_eff, open_eff, values, driven);
  clear_dead_driven(dir, open_eff, driven);
  if (faults_.any_dead) {
    const Flag* dead = faults_.dead.data();
    for (std::size_t pe = 0; pe < values.size(); ++pe) {
      if (dead[pe] != 0) values[pe] = 0;
    }
  }
  return max_segment;
}

std::size_t Machine::shadow_broadcast_planes_into(const PlaneWord* src, Direction dir,
                                                  const PlaneWord* open, PlaneWord* out,
                                                  PlaneWord* driven) {
  if (!faults_.any) {
    return plane_broadcast_into(geometry_, config_.topology, dir, src, 1, open, out, driven,
                                plane_bus_exec());
  }
  const Axis axis = axis_of(dir);
  const PlaneWord* open_eff = effective_open_plane(axis, open);
  const PlaneWord* src_eff = src;
  const std::size_t pw = geometry_.plane_words();
  if (faults_.any_dead) {
    scratch_src_planes_.resize(pw);
    const PlaneWord* alive = faults_.alive_plane.data();
    for (std::size_t i = 0; i < pw; ++i) scratch_src_planes_[i] = src[i] & alive[i];
    src_eff = scratch_src_planes_.data();
  }
  const std::size_t max_segment =
      plane_broadcast_into(geometry_, config_.topology, dir, src_eff, 1, open_eff, out,
                           driven, plane_bus_exec());
  clear_dead_driven_plane(dir, open_eff, driven);
  if (faults_.any_dead) {
    const PlaneWord* alive = faults_.alive_plane.data();
    for (std::size_t i = 0; i < pw; ++i) out[i] &= alive[i];
  }
  return max_segment;
}

std::size_t Machine::wired_or_plane_cycle(const PlaneWord* src, Direction dir,
                                          const PlaneWord* open, PlaneWord* out,
                                          StepCategory category) {
  const std::uint64_t cycle = bus_cycles_++;
  const Axis axis = axis_of(dir);
  const PlaneWord* open_eff = open;
  const PlaneWord* src_eff = src;
  const std::size_t pw = geometry_.plane_words();
  if (faults_.any) {
    open_eff = effective_open_plane(axis, open);
    if (faults_.any_dead) {
      scratch_src_planes_.resize(pw);
      const PlaneWord* alive = faults_.alive_plane.data();
      for (std::size_t i = 0; i < pw; ++i) scratch_src_planes_[i] = src[i] & alive[i];
      src_eff = scratch_src_planes_.data();
    }
  }
  const std::size_t max_segment =
      plane_wired_or_into(geometry_, config_.topology, dir, src_eff, open_eff, out,
                          plane_bus_exec());
  if (faults_.any) {
    apply_stuck_bits_planes(axis, out, 1, cycle);
    if (faults_.any_dead) {
      const PlaneWord* alive = faults_.alive_plane.data();
      for (std::size_t i = 0; i < pw; ++i) out[i] &= alive[i];
    }
  }
  steps_.charge_bus(category, max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{category, dir, plane_popcount(geometry_, open_eff),
                                max_segment, 1, 1, pe_count(), pe_count()});
  }
  return max_segment;
}

std::size_t Machine::tmr_wired_or_plane_into(const PlaneWord* src, Direction dir,
                                             const PlaneWord* open, PlaneWord* out) {
  const std::size_t max_segment =
      wired_or_plane_cycle(src, dir, open, out, StepCategory::BusOr);
  const std::size_t pw = geometry_.plane_words();
  for (int i = 0; i < 2; ++i) {
    tmr_planes_[i].resize(pw);
    (void)wired_or_plane_cycle(src, dir, open, tmr_planes_[i].data(),
                               StepCategory::Masking);
  }
  ++mask_stats_.votes;
  if (majority_vote_words(out, tmr_planes_[0].data(), tmr_planes_[1].data(), pw)) {
    ++mask_stats_.corrections;
  }
  return max_segment;
}

std::size_t Machine::wired_or_plane_into(const PlaneWord* src, Direction dir,
                                         const PlaneWord* open, PlaneWord* out) {
  if (config_.masking == BusMasking::Tmr) return tmr_wired_or_plane_into(src, dir, open, out);
  if (config_.masking == BusMasking::Ecc) return ecc_wired_or_plane_into(src, dir, open, out);
  return wired_or_plane_cycle(src, dir, open, out, StepCategory::BusOr);
}

// ---------------------------------------------------------------------------
// ECC rider (docs/robustness.md). Every plane bus cycle is followed by a
// parity beat: r = bit_width(planes) parity planes of the PROGRAM source,
// computed with the dispatched SIMD plane kernels and sent through the same
// switch fabric (effective switches, dead-driver silencing, dead reads) but
// on spare wires outside the h-bit stuck-bit fault surface. The receiver
// recomputes parity over the received data planes; the XOR of the two is a
// per-lane Hamming syndrome that names the single corrupted data plane
// (signature j + 1), which is then bit-flipped in place. Double faults on
// one lane can alias to a wrong signature — the run's verification
// certificate stays the backstop for that.
// ---------------------------------------------------------------------------

void Machine::ecc_parity_of(const PlaneWord* data, int planes, int r, PlaneWord* parity) {
  const auto& k = plane_kernels::active();
  const std::size_t pw = geometry_.plane_words();
  for (int b = 0; b < r; ++b) {
    PlaneWord* p = parity + static_cast<std::size_t>(b) * pw;
    bool first = true;
    for (int j = 0; j < planes; ++j) {
      if ((static_cast<unsigned>(j + 1) >> b & 1u) == 0) continue;
      const PlaneWord* d = data + static_cast<std::size_t>(j) * pw;
      if (first) {
        k.op_copy(d, p, pw);
        first = false;
      } else {
        k.op_xor(p, d, p, pw);
      }
    }
    if (first) k.op_zero(p, pw);  // unreachable for r = bit_width(planes)
  }
}

void Machine::ecc_parity_beat(int r, Direction dir, const PlaneWord* program_open,
                              bool wired_or) {
  const Axis axis = axis_of(dir);
  const std::size_t pw = geometry_.plane_words();
  const PlaneWord* open_eff =
      faults_.any ? effective_open_plane(axis, program_open) : program_open;
  if (faults_.any_dead) {
    const PlaneWord* alive = faults_.alive_plane.data();
    for (int b = 0; b < r; ++b) {
      const std::size_t off = static_cast<std::size_t>(b) * pw;
      for (std::size_t i = 0; i < pw; ++i) ecc_parity_src_[off + i] &= alive[i];
    }
  }
  ecc_parity_recv_.resize(static_cast<std::size_t>(r) * pw);
  std::size_t max_segment = 0;
  if (wired_or) {
    max_segment = plane_wired_or_into(geometry_, config_.topology, dir,
                                      ecc_parity_src_.data(), open_eff,
                                      ecc_parity_recv_.data(), plane_bus_exec());
  } else {
    ecc_parity_driven_.resize(pw);
    max_segment = plane_broadcast_into(geometry_, config_.topology, dir,
                                       ecc_parity_src_.data(), r, open_eff,
                                       ecc_parity_recv_.data(), ecc_parity_driven_.data(),
                                       plane_bus_exec());
  }
  // No apply_stuck_bits_planes: the modeled stuck wires are data wires
  // (bit < h); the parity beat's spare wires are clean. Dead PEs still
  // read zero — zero received data plus zero parity is a valid codeword,
  // so dead lanes never trigger a false correction.
  if (faults_.any_dead) {
    const PlaneWord* alive = faults_.alive_plane.data();
    for (int b = 0; b < r; ++b) {
      const std::size_t off = static_cast<std::size_t>(b) * pw;
      for (std::size_t i = 0; i < pw; ++i) ecc_parity_recv_[off + i] &= alive[i];
    }
  }
  steps_.charge_bus(StepCategory::Masking, max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{StepCategory::Masking, dir,
                                plane_popcount(geometry_, open_eff), max_segment, 1,
                                static_cast<std::size_t>(r)});
  }
}

void Machine::ecc_decode(PlaneWord* out, int planes, int r) {
  const auto& k = plane_kernels::active();
  const std::size_t pw = geometry_.plane_words();
  ecc_check_.resize(static_cast<std::size_t>(r) * pw);
  ecc_parity_of(out, planes, r, ecc_check_.data());
  // Per-lane syndrome, in place: received parity XOR recomputed parity.
  k.op_xor(ecc_parity_recv_.data(), ecc_check_.data(), ecc_parity_recv_.data(),
           static_cast<std::size_t>(r) * pw);
  const PlaneWord* s = ecc_parity_recv_.data();
  ++mask_stats_.votes;
  ecc_nonzero_.resize(pw);
  k.op_copy(s, ecc_nonzero_.data(), pw);
  for (int b = 1; b < r; ++b) {
    k.op_or(ecc_nonzero_.data(), s + static_cast<std::size_t>(b) * pw,
            ecc_nonzero_.data(), pw);
  }
  if (k.all_zero(ecc_nonzero_.data(), pw)) return;  // clean cycle
  ecc_corrected_.resize(pw);
  ecc_mask_.resize(pw);
  k.op_zero(ecc_corrected_.data(), pw);
  for (int j = 0; j < planes; ++j) {
    const unsigned sig = static_cast<unsigned>(j) + 1;
    // Lanes whose syndrome equals this plane's signature exactly.
    bool first = true;
    for (int b = 0; b < r; ++b) {
      if ((sig >> b & 1u) == 0) continue;
      const PlaneWord* sb = s + static_cast<std::size_t>(b) * pw;
      if (first) {
        k.op_copy(sb, ecc_mask_.data(), pw);
        first = false;
      } else {
        k.op_and(ecc_mask_.data(), sb, ecc_mask_.data(), pw);
      }
    }
    for (int b = 0; b < r; ++b) {
      if ((sig >> b & 1u) != 0) continue;
      k.op_andnot(ecc_mask_.data(), s + static_cast<std::size_t>(b) * pw,
                  ecc_mask_.data(), pw);
    }
    if (k.all_zero(ecc_mask_.data(), pw)) continue;
    PlaneWord* dj = out + static_cast<std::size_t>(j) * pw;
    k.op_xor(dj, ecc_mask_.data(), dj, pw);
    k.op_or(ecc_corrected_.data(), ecc_mask_.data(), ecc_corrected_.data(), pw);
  }
  if (!k.all_zero(ecc_corrected_.data(), pw)) ++mask_stats_.corrections;
  // Lanes whose syndrome matched no data-plane signature (e.g. a multi-bit
  // hit aliasing past `planes`): flagged, not repaired.
  k.op_andnot(ecc_nonzero_.data(), ecc_corrected_.data(), ecc_nonzero_.data(), pw);
  if (!k.all_zero(ecc_nonzero_.data(), pw)) ++mask_stats_.uncorrectable;
}

std::size_t Machine::ecc_broadcast_planes_into(const PlaneWord* src, int planes,
                                               Direction dir, const PlaneWord* open,
                                               PlaneWord* out, PlaneWord* driven) {
  const int r = ecc_parity_count(planes);
  const std::size_t pw = geometry_.plane_words();
  ecc_parity_src_.resize(static_cast<std::size_t>(r) * pw);
  ecc_parity_of(src, planes, r, ecc_parity_src_.data());
  const std::size_t max_segment =
      broadcast_planes_cycle(src, planes, dir, open, out, driven,
                             StepCategory::BusBroadcast);
  ecc_parity_beat(r, dir, open, /*wired_or=*/false);
  ecc_decode(out, planes, r);
  return max_segment;
}

std::size_t Machine::ecc_wired_or_plane_into(const PlaneWord* src, Direction dir,
                                             const PlaneWord* open, PlaneWord* out) {
  // A 1-plane wired-OR cycle degenerates to r = 1: the parity "plane" is a
  // duplicate of the data plane on the clean spare wire.
  const std::size_t pw = geometry_.plane_words();
  ecc_parity_src_.resize(pw);
  plane_kernels::active().op_copy(src, ecc_parity_src_.data(), pw);
  const std::size_t max_segment =
      wired_or_plane_cycle(src, dir, open, out, StepCategory::BusOr);
  ecc_parity_beat(1, dir, open, /*wired_or=*/true);
  ecc_decode(out, 1, 1);
  return max_segment;
}

void Machine::shift_planes(const PlaneWord* src, int planes, Direction dir,
                           std::uint64_t fill_bits, PlaneWord* dst) {
  PPA_REQUIRE(src != dst, "shift source and destination must not alias");
  steps_.charge(StepCategory::Shift);
  if (trace_ != nullptr) trace_->on_event(TraceEvent{StepCategory::Shift, dir, 0, 0});
  plane_shift(geometry_, dir, src, planes, fill_bits, dst);
}

bool Machine::global_or_plane(const PlaneWord* plane) {
  steps_.charge(StepCategory::GlobalOr);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{StepCategory::GlobalOr, Direction::North, 0, 0});
  }
  const std::size_t words = geometry_.plane_words();
  for (std::size_t i = 0; i < words; ++i) {
    if (plane[i] != 0) return true;
  }
  return false;
}

bool Machine::global_or(std::span<const Flag> flags) {
  PPA_REQUIRE(flags.size() == pe_count(), "global_or operand must cover the whole array");
  steps_.charge(StepCategory::GlobalOr);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{StepCategory::GlobalOr, Direction::North, 0, 0});
  }
  return std::any_of(flags.begin(), flags.end(), [](Flag f) { return f != 0; });
}

}  // namespace ppa::sim
