#include "sim/machine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ppa::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config), field_(config.bits), geometry_(config.n) {
  PPA_REQUIRE(config.n >= 1, "array side must be positive");
  // The array must be addressable by its own words: ROW and COL constants
  // (and selected_min over COL) live in the h-bit field.
  PPA_REQUIRE(config.n - 1 <= field_.max_finite(),
              "array side does not fit in the h-bit word field");
  const std::size_t count = pe_count();
  row_index_.resize(count);
  col_index_.resize(count);
  for (std::size_t pe = 0; pe < count; ++pe) {
    row_index_[pe] = static_cast<Word>(pe / config.n);
    col_index_[pe] = static_cast<Word>(pe % config.n);
  }
  if (config.host_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config.host_threads);
  }
}

void Machine::shift(std::span<const Word> src, Direction dir, Word fill,
                    std::span<Word> dst) {
  PPA_REQUIRE(src.size() == pe_count() && dst.size() == pe_count(),
              "shift operands must cover the whole array");
  PPA_REQUIRE(src.data() != dst.data(), "shift source and destination must not alias");
  const std::size_t side = config_.n;
  steps_.charge(StepCategory::Shift);
  if (trace_ != nullptr) trace_->on_event(TraceEvent{StepCategory::Shift, dir, 0, 0});
  for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      const std::size_t r = pe / side;
      const std::size_t c = pe % side;
      // Receiving from the upstream neighbour: data moving East arrives
      // from the West, etc.
      switch (dir) {
        case Direction::East:
          dst[pe] = (c == 0) ? fill : src[pe - 1];
          break;
        case Direction::West:
          dst[pe] = (c + 1 == side) ? fill : src[pe + 1];
          break;
        case Direction::South:
          dst[pe] = (r == 0) ? fill : src[pe - side];
          break;
        case Direction::North:
          dst[pe] = (r + 1 == side) ? fill : src[pe + side];
          break;
      }
    }
  });
}

namespace {

std::size_t count_open(std::span<const Flag> open) {
  std::size_t total = 0;
  for (const Flag f : open) total += (f != 0);
  return total;
}

}  // namespace

BusResult Machine::broadcast(std::span<const Word> src, Direction dir,
                             std::span<const Flag> open) {
  BusResult result = bus_broadcast(config_.n, config_.topology, dir, src, open);
  steps_.charge_bus(StepCategory::BusBroadcast, result.max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(
        TraceEvent{StepCategory::BusBroadcast, dir, count_open(open), result.max_segment});
  }
  return result;
}

BusResult Machine::wired_or(std::span<const Flag> src, Direction dir,
                            std::span<const Flag> open) {
  BusResult result = bus_wired_or(config_.n, config_.topology, dir, src, open);
  steps_.charge_bus(StepCategory::BusOr, result.max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(
        TraceEvent{StepCategory::BusOr, dir, count_open(open), result.max_segment});
  }
  return result;
}

std::size_t Machine::broadcast_into(std::span<const Word> src, Direction dir,
                                    std::span<const Flag> open, std::span<Word> values,
                                    std::span<Flag> driven) {
  const std::size_t max_segment =
      bus_broadcast_into(config_.n, config_.topology, dir, src, open, values, driven);
  steps_.charge_bus(StepCategory::BusBroadcast, max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(
        TraceEvent{StepCategory::BusBroadcast, dir, count_open(open), max_segment});
  }
  return max_segment;
}

std::size_t Machine::broadcast_into(std::span<const Flag> src, Direction dir,
                                    std::span<const Flag> open, std::span<Flag> values,
                                    std::span<Flag> driven) {
  const std::size_t max_segment =
      bus_broadcast_into(config_.n, config_.topology, dir, src, open, values, driven);
  steps_.charge_bus(StepCategory::BusBroadcast, max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(
        TraceEvent{StepCategory::BusBroadcast, dir, count_open(open), max_segment});
  }
  return max_segment;
}

std::size_t Machine::wired_or_into(std::span<const Flag> src, Direction dir,
                                   std::span<const Flag> open, std::span<Flag> values) {
  const std::size_t max_segment =
      bus_wired_or_into(config_.n, config_.topology, dir, src, open, values);
  steps_.charge_bus(StepCategory::BusOr, max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{StepCategory::BusOr, dir, count_open(open), max_segment});
  }
  return max_segment;
}

std::size_t Machine::broadcast_planes_into(const PlaneWord* src, int planes,
                                           Direction dir, const PlaneWord* open,
                                           PlaneWord* out, PlaneWord* driven) {
  const std::size_t max_segment =
      plane_broadcast_into(geometry_, config_.topology, dir, src, planes, open, out, driven);
  steps_.charge_bus(StepCategory::BusBroadcast, max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{StepCategory::BusBroadcast, dir,
                                plane_popcount(geometry_, open), max_segment});
  }
  return max_segment;
}

std::size_t Machine::wired_or_plane_into(const PlaneWord* src, Direction dir,
                                         const PlaneWord* open, PlaneWord* out) {
  const std::size_t max_segment =
      plane_wired_or_into(geometry_, config_.topology, dir, src, open, out);
  steps_.charge_bus(StepCategory::BusOr, max_segment);
  if (trace_ != nullptr) {
    trace_->on_event(
        TraceEvent{StepCategory::BusOr, dir, plane_popcount(geometry_, open), max_segment});
  }
  return max_segment;
}

void Machine::shift_planes(const PlaneWord* src, int planes, Direction dir,
                           std::uint64_t fill_bits, PlaneWord* dst) {
  PPA_REQUIRE(src != dst, "shift source and destination must not alias");
  steps_.charge(StepCategory::Shift);
  if (trace_ != nullptr) trace_->on_event(TraceEvent{StepCategory::Shift, dir, 0, 0});
  plane_shift(geometry_, dir, src, planes, fill_bits, dst);
}

bool Machine::global_or_plane(const PlaneWord* plane) {
  steps_.charge(StepCategory::GlobalOr);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{StepCategory::GlobalOr, Direction::North, 0, 0});
  }
  const std::size_t words = geometry_.plane_words();
  for (std::size_t i = 0; i < words; ++i) {
    if (plane[i] != 0) return true;
  }
  return false;
}

bool Machine::global_or(std::span<const Flag> flags) {
  PPA_REQUIRE(flags.size() == pe_count(), "global_or operand must cover the whole array");
  steps_.charge(StepCategory::GlobalOr);
  if (trace_ != nullptr) {
    trace_->on_event(TraceEvent{StepCategory::GlobalOr, Direction::North, 0, 0});
  }
  return std::any_of(flags.begin(), flags.end(), [](Flag f) { return f != 0; });
}

}  // namespace ppa::sim
