// Reconfigurable-bus cycles on bit-plane operands.
//
// These kernels are the plane-packed twins of bus.cpp's scan resolvers:
// same switch semantics, same driven-flag rules, and — load-bearing for
// the step-accounting contract — the same max_segment for every
// configuration, so StepCounter totals are bit-identical between the word
// and bit-plane backends (tests/sim_bus_planes_test.cpp fuzzes exactly
// this equivalence, with bus.cpp as the oracle).
//
// Row buses (East/West) stream each row's Open bits in flow order and fill
// whole receiving intervals with word-masked ORs; column buses
// (South/North) are resolved 64 lines at a time with a vertical scan per
// word-column, which is where the packing pays: one pass over n words
// settles 64 independent column lines.
#pragma once

#include <cstdint>

#include "sim/bit_planes.hpp"

namespace ppa::sim {

/// One broadcast bus cycle over `planes` bit planes sharing a single
/// switch configuration (the planes of one h-bit register ride the same
/// physical cycle). `src`/`out` hold `planes` contiguous planes; `open`
/// and `driven` are single planes. Undriven lanes read 0 and get driven
/// bit 0, exactly like bus_broadcast_into. Returns max_segment.
std::size_t plane_broadcast_into(const PlaneGeometry& g, BusTopology topology,
                                 Direction dir, const PlaneWord* src, int planes,
                                 const PlaneWord* open, PlaneWord* out,
                                 PlaneWord* driven);

/// One wired-OR bus cycle on a single plane. Never floats (a segment
/// nobody pulls reads 0), so there is no driven output. Returns
/// max_segment.
std::size_t plane_wired_or_into(const PlaneGeometry& g, BusTopology topology,
                                Direction dir, const PlaneWord* src,
                                const PlaneWord* open, PlaneWord* out);

/// Nearest-neighbour move of `planes` bit planes; lanes shifted in from
/// the array edge read bit j of `fill_bits` in plane j. dst must not alias
/// src.
void plane_shift(const PlaneGeometry& g, Direction dir, const PlaneWord* src, int planes,
                 std::uint64_t fill_bits, PlaneWord* dst);

}  // namespace ppa::sim
