// Reconfigurable-bus cycles on bit-plane operands.
//
// These kernels are the plane-packed twins of bus.cpp's scan resolvers:
// same switch semantics, same driven-flag rules, and — load-bearing for
// the step-accounting contract — the same max_segment for every
// configuration, so StepCounter totals are bit-identical between the word
// and bit-plane backends (tests/sim_bus_planes_test.cpp fuzzes exactly
// this equivalence, with bus.cpp as the oracle).
//
// Row buses (East/West) stream each row's Open bits in flow order and fill
// whole receiving intervals with word-masked ORs; rows with zero or (on a
// ring) one Open switch — the minimum-cost-path solver's steady state —
// collapse to whole-row fills. Column buses (South/North) are resolved 64
// lines at a time with vertical scans whose inner loop runs across the
// row's words, so the compiler vectorizes the 64-lane bit arithmetic.
//
// Each entry point takes an optional PlaneBusExec: a thread pool to chunk
// the cycle over (rows for the row axis, word-columns for the column axis
// — every chunk owns a disjoint slice of the output planes, and per-chunk
// max_segment partials merge with max, which is order-independent, so
// results and step counts are bit-identical for every pool size) and a
// scratch block that keeps the column resolvers allocation-free across
// cycles. Unchunked broadcasts with a scratch additionally memoize their
// switch decomposition in an 8-deep LRU plan cache (BroadcastPlanCache
// below), so repeat cycles on a recently seen configuration skip the
// resolution pass entirely — results and max_segment are identical either
// way (tests/sim_bus_planes_test.cpp fuzzes cached vs. cold).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/bit_planes.hpp"
#include "util/thread_pool.hpp"

namespace ppa::sim {

/// Memoized segmentation of one row wired-OR switch configuration. The
/// minimum-cost-path kernels issue long runs of wired-OR cycles on an
/// unchanged configuration (the cluster delimiters only move between
/// iterations), so the resolver caches the per-row decomposition keyed on
/// the exact open-plane contents and re-derives only the src-dependent
/// segment values per cycle.
struct RowWiredOrPlan {
  // Key: exact switch configuration this plan was built for. n == 0 marks
  // an empty plan.
  std::vector<PlaneWord> open;
  std::size_t n = 0;
  std::uint8_t topology = 0;
  std::uint8_t dir = 0;
  // Payload. fast_rows: rows that resolve to a single whole-line segment.
  // segs: remaining segments as column ranges, sorted by row; an entry
  // with fuse_next set shares its OR value with the next entry (a ring's
  // tail + head pair). max_segment depends only on the configuration.
  struct Seg {
    std::uint32_t row;
    std::uint32_t clo;
    std::uint32_t chi;
    std::uint32_t fuse_next;
  };
  std::vector<std::uint32_t> fast_rows;
  std::vector<Seg> segs;
  std::size_t max_segment = 0;
};

/// Memoized decomposition of one BROADCAST switch configuration (the
/// wired-OR twin is RowWiredOrPlan above). Everything a broadcast cycle
/// derives from the switches alone is cached: the driven plane, the
/// max_segment, and either the per-row fill segments (row axis; driver
/// VALUES are src-dependent and re-derived per cycle from the recorded
/// driver columns) or the vertical-scan products (column axis).
struct BroadcastPlan {
  // Key: exact switch configuration. n == 0 marks an empty slot.
  std::vector<PlaneWord> open;
  std::size_t n = 0;
  std::uint8_t topology = 0;
  std::uint8_t dir = 0;
  std::uint64_t stamp = 0;  // LRU clock of the owning cache
  // Configuration-only products shared by both axes.
  std::size_t max_segment = 0;
  std::vector<PlaneWord> driven;  // plane_words
  // Row-axis payload: rows whose single ring driver covers the whole
  // line, and the general segments as inclusive column ranges.
  struct RowDrive {
    std::uint32_t row;
    std::uint32_t col;
  };
  struct RowSeg {
    std::uint32_t row;
    std::uint32_t col;  // column of the switch driving [clo, chi]
    std::uint32_t clo;
    std::uint32_t chi;
  };
  std::vector<RowDrive> whole_rows;
  std::vector<RowSeg> segs;
  // Column-axis payload: pass-1 scan state per flow row (see
  // column_broadcast), indexed [k * row_words + w].
  std::vector<PlaneWord> col_have;
  std::vector<PlaneWord> col_pend;
  std::size_t k_stop = 0;
};

/// 8-deep LRU cache of broadcast decompositions. The minimum-cost-path
/// kernels rotate through a handful of switch configurations (carrier
/// row, diagonal, row end — per scheme and per panel), so a shallow
/// exact-key cache absorbs nearly every resolution after the first
/// sweep; hits/misses surface as bus.plan_cache.* in ppa.metrics.v1.
struct BroadcastPlanCache {
  static constexpr std::size_t kDepth = 8;
  BroadcastPlan slots[kDepth];
  std::uint64_t clock = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // Second-chance filter: a configuration is only planned once it has been
  // seen twice (the minimum-variant kernels issue data-dependent
  // configurations that never repeat — planning those would evict live
  // plans and pay recording cost for nothing). First sight leaves a hash
  // here; the cycle itself runs the plain resolver untouched.
  static constexpr std::size_t kSeen = 16;
  std::uint64_t seen[kSeen] = {};
  std::size_t seen_next = 0;
};

/// Reusable buffers for the plane bus resolvers, owned by the Machine (one
/// per machine; bus cycles are issued sequentially by the controller).
/// Sized lazily on first use. The per-k arrays are indexed [k * row_words
/// + w], the per-line arrays by column — under chunking, every chunk
/// touches only its own w / column slice.
struct PlaneBusScratch {
  std::vector<PlaneWord> per_k_a;     // n * row_words
  std::vector<PlaneWord> per_k_b;     // n * row_words
  std::vector<PlaneWord> lane_a;      // row_words
  std::vector<PlaneWord> lane_b;      // row_words
  std::vector<PlaneWord> lane_c;      // row_words
  std::vector<std::size_t> pos_a;     // n (column_max_segment: first)
  std::vector<std::size_t> pos_b;     // n (column_max_segment: last)
  std::vector<std::size_t> pos_c;     // n (column_max_segment: gap)
  RowWiredOrPlan wired_or_plan;       // see RowWiredOrPlan
  BroadcastPlanCache broadcast_plans; // see BroadcastPlanCache
};

/// Execution knobs for one plane bus cycle. Defaults preserve the plain
/// sequential, self-allocating behavior (free-function callers and tests).
struct PlaneBusExec {
  util::ThreadPool* pool = nullptr;  // null = run on the caller
  /// Minimum total plane words the cycle must touch before it is chunked
  /// over the pool (same knob as MachineConfig::plane_sweep_min_words).
  std::size_t min_words = static_cast<std::size_t>(-1);
  PlaneBusScratch* scratch = nullptr;  // null = allocate locally
};

/// One broadcast bus cycle over `planes` bit planes sharing a single
/// switch configuration (the planes of one h-bit register ride the same
/// physical cycle). `src`/`out` hold `planes` contiguous planes; `open`
/// and `driven` are single planes. Undriven lanes read 0 and get driven
/// bit 0, exactly like bus_broadcast_into. Returns max_segment.
std::size_t plane_broadcast_into(const PlaneGeometry& g, BusTopology topology,
                                 Direction dir, const PlaneWord* src, int planes,
                                 const PlaneWord* open, PlaneWord* out,
                                 PlaneWord* driven, const PlaneBusExec& exec = {});

/// One wired-OR bus cycle on a single plane. Never floats (a segment
/// nobody pulls reads 0), so there is no driven output. Returns
/// max_segment.
std::size_t plane_wired_or_into(const PlaneGeometry& g, BusTopology topology,
                                Direction dir, const PlaneWord* src,
                                const PlaneWord* open, PlaneWord* out,
                                const PlaneBusExec& exec = {});

/// Nearest-neighbour move of `planes` bit planes; lanes shifted in from
/// the array edge read bit j of `fill_bits` in plane j. dst must not alias
/// src.
void plane_shift(const PlaneGeometry& g, Direction dir, const PlaneWord* src, int planes,
                 std::uint64_t fill_bits, PlaneWord* dst);

}  // namespace ppa::sim
