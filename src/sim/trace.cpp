#include "sim/trace.hpp"

#include <sstream>

namespace ppa::sim {

std::uint64_t RecordingTrace::count(StepCategory category) const noexcept {
  std::uint64_t total = 0;
  for (const auto& event : events_) {
    if (event.category == category) total += event.count;
  }
  return total;
}

std::uint64_t RecordingTrace::instruction_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& event : events_) total += event.count;
  return total;
}

const char* name_of(FaultEventKind kind) noexcept {
  switch (kind) {
    case FaultEventKind::BusContention: return "bus_contention";
    case FaultEventKind::UndrivenRead: return "undriven_read";
    case FaultEventKind::VerificationFailed: return "verification_failed";
    case FaultEventKind::NonConvergence: return "non_convergence";
  }
  return "?";
}

std::string to_string(const FaultEvent& event) {
  std::ostringstream os;
  os << name_of(event.kind);
  switch (event.kind) {
    case FaultEventKind::BusContention:
    case FaultEventKind::UndrivenRead:
      os << ' ' << name_of(event.category) << " dir=" << name_of(event.direction) << " pe=("
         << event.row << ',' << event.col << ')';
      break;
    case FaultEventKind::VerificationFailed:
    case FaultEventKind::NonConvergence:
      break;
  }
  if (event.count != 1) os << " x" << event.count;
  return os.str();
}

std::string to_string(const TraceEvent& event) {
  std::ostringstream os;
  os << name_of(event.category);
  switch (event.category) {
    case StepCategory::Shift:
      os << " dir=" << name_of(event.direction);
      break;
    case StepCategory::BusBroadcast:
    case StepCategory::BusOr:
    case StepCategory::Masking:  // a re-executed / parity bus cycle
      os << " dir=" << name_of(event.direction) << " open=" << event.open_count
         << " seg=" << event.max_segment;
      if (event.planes != 1) os << " planes=" << event.planes;
      break;
    case StepCategory::Alu:
    case StepCategory::GlobalOr:
    case StepCategory::PanelIo:
    case StepCategory::kCount:
      break;
  }
  if (event.count != 1) os << " x" << event.count;
  return os.str();
}

}  // namespace ppa::sim
