// PPC execution context: a machine plus the activity-mask stack.
//
// Polymorphic Parallel C partitions the PEs with the `where/elsewhere`
// control structure; nested wheres AND-compose. The mask gates *register
// write-back only*: expressions and bus cycles are executed by the whole
// physical array (the buses do not know about the program's mask — see
// DESIGN.md §4.1; the paper's statement 10 broadcasts FROM row d INSIDE a
// `where(ROW != d)` block, which only works under these semantics).
//
// Context is the object every Parallel variable holds a pointer to; it
// provides the mask stack and forwards geometry/primitives to the Machine.
#pragma once

#include <span>
#include <vector>

#include "ppc/plane_kernels.hpp"
#include "sim/machine.hpp"

namespace ppa::ppc {

using sim::Flag;
using sim::Word;

class Context {
 public:
  explicit Context(sim::Machine& machine);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] sim::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] const sim::Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] const util::HField& field() const noexcept { return machine_.field(); }
  [[nodiscard]] std::size_t n() const noexcept { return machine_.n(); }
  [[nodiscard]] std::size_t pe_count() const noexcept { return machine_.pe_count(); }

  /// True when the machine runs the bit-plane backend; every parallel
  /// operation dispatches on this once, up front.
  [[nodiscard]] bool bitplane() const noexcept {
    return machine_.config().backend == sim::ExecBackend::BitPlane;
  }
  [[nodiscard]] const sim::PlaneGeometry& geometry() const noexcept {
    return machine_.plane_geometry();
  }
  /// The all-PEs mask plane (1 on every PE, 0 on pads).
  [[nodiscard]] const sim::PlaneWord* full_plane() const noexcept { return full_.data(); }

  /// The bit-plane ALU: the runtime-dispatched SIMD kernel table, bound to
  /// the machine's thread pool for big sweeps (plane_kernels.hpp). Every
  /// plane-backend elementwise operation goes through it.
  [[nodiscard]] const plane_kernels::PlaneAlu& alu() const noexcept { return alu_; }

  /// Current activity mask (1 = PE executes write-backs).
  [[nodiscard]] std::span<const Flag> mask() const noexcept { return stack_.back(); }

  /// True iff no `where` is active (every PE active).
  [[nodiscard]] bool mask_is_full() const noexcept;

  /// Pushes `current & cond` / `current & !cond`. Each costs one ALU step
  /// (the hardware computes the new activity bit in every PE).
  void push_mask_and(std::span<const Flag> cond);
  void push_mask_and_not(std::span<const Flag> cond);
  void pop_mask();

  /// Bit-plane twins of the mask stack (used when bitplane() is true; the
  /// two stacks never mix — a Context runs one backend for its lifetime).
  [[nodiscard]] const sim::PlaneWord* mask_plane() const noexcept {
    return plane_stack_.back().data();
  }
  void push_mask_and_plane(const sim::PlaneWord* cond);
  void push_mask_and_not_plane(const sim::PlaneWord* cond);

  [[nodiscard]] std::size_t mask_depth() const noexcept { return stack_.size() - 1; }

  // -------------------------------------------------------------------------
  // Register arena. Parallel temporaries (every SIMD operator's result, mask
  // pushes, primitive scratch lanes) draw pe_count-sized buffers from these
  // free-lists instead of hitting the allocator once per operation; Pint /
  // Pbool destructors hand the buffers back. Single-threaded by design: the
  // controller issues instructions sequentially, so the arena needs no locks
  // (host data-parallelism happens inside a single instruction).
  // -------------------------------------------------------------------------

  /// A pe_count-sized Word buffer with unspecified contents.
  [[nodiscard]] std::vector<Word> acquire_words();
  /// A pe_count-sized Flag buffer with unspecified contents.
  [[nodiscard]] std::vector<Flag> acquire_flags();

  /// Return a buffer to the arena. Accepts any vector: too-small ones
  /// (e.g. moved-from husks) are simply dropped. Never throws — a failed
  /// recycle just frees the buffer.
  void release_words(std::vector<Word>&& buffer) noexcept;
  void release_flags(std::vector<Flag>&& buffer) noexcept;

  /// Plane arenas: an h-plane value buffer (h * plane_words words) and a
  /// single-plane flag buffer (plane_words words), both with unspecified
  /// contents.
  [[nodiscard]] std::vector<sim::PlaneWord> acquire_value_planes();
  [[nodiscard]] std::vector<sim::PlaneWord> acquire_flag_plane();
  void release_value_planes(std::vector<sim::PlaneWord>&& buffer) noexcept;
  void release_flag_plane(std::vector<sim::PlaneWord>&& buffer) noexcept;

 private:
  sim::Machine& machine_;
  plane_kernels::PlaneAlu alu_;
  std::vector<std::vector<Flag>> stack_;  // stack_[0] = all ones
  std::vector<std::vector<Word>> free_words_;
  std::vector<std::vector<Flag>> free_flags_;
  // Bit-plane state (empty planes when running the Word backend).
  std::vector<sim::PlaneWord> full_;
  std::vector<std::vector<sim::PlaneWord>> plane_stack_;  // plane_stack_[0] = full_
  std::vector<std::vector<sim::PlaneWord>> free_value_planes_;
  std::vector<std::vector<sim::PlaneWord>> free_flag_planes_;
};

}  // namespace ppa::ppc
