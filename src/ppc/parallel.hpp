// Parallel variables — PPC's `parallel` memorization class as a C++ eDSL.
//
// A Pint is "an array of h-bit integer variables, each element of which is
// associated to a different local memory" (paper Section 2); a Pbool is the
// `parallel logical` used for switch settings and conditions.
//
// SEMANTICS THAT DIFFER FROM PLAIN C++ — read before using:
//
//  * Copy construction / declaration-with-initializer is UNMASKED: it
//    allocates a fresh register in every PE, like a PPC declaration.
//  * ASSIGNMENT (operator=) is MASKED: only PEs active under the current
//    where-mask store the value; inactive PEs keep their old contents.
//    Use store_all() for an explicit unmasked store.
//  * Operators (+, ==, <, &, |, !) are evaluated by ALL PEs regardless of
//    the mask (the array executes every issued instruction; masking gates
//    write-back only). Each operator charges one SIMD ALU step.
//  * Values read from a bus carry a per-PE "driven" flag; consuming an
//    undriven value (storing it on an active PE) triggers the machine's
//    UndrivenPolicy. Values that never touched a floating bus are always
//    fully driven.
//
// Host-side introspection (at(), values()) reads the array without
// charging steps — that is the controller peeking at local memories, used
// for I/O and for assertions in tests.
#pragma once

#include <span>
#include <vector>

#include "ppc/context.hpp"

namespace ppa::ppc {

class Pbool;

/// Parallel h-bit unsigned integer (one per PE).
class Pint {
 public:
  /// Declaration with a scalar initializer — unmasked broadcast fill.
  /// `init` must be representable in the machine's h-bit field.
  Pint(Context& ctx, Word init);

  /// Declaration initialized from host data (the controller loading the
  /// local memories, e.g. the weight matrix W). Unmasked. Every value must
  /// be representable in the field.
  Pint(Context& ctx, std::span<const Word> values);

  /// Clone — a fresh register unmasked-copied from `other` (buffer drawn
  /// from the context's register arena; charges nothing, like the old
  /// memberwise copy).
  Pint(const Pint& other);
  Pint(Pint&& other) noexcept = default;

  /// Hands the registers back to the context's arena. Moved-from shells
  /// (empty buffers) release nothing.
  ~Pint();

  /// MASKED store (see header comment). Charges one ALU step.
  Pint& operator=(const Pint& rhs);
  Pint& operator=(Pint&& rhs);

  /// Unmasked stores.
  void store_all(const Pint& rhs);
  void store_all(Word value);

  [[nodiscard]] Context& context() const noexcept { return *ctx_; }

  /// Word-backend storage view (empty under the BitPlane backend — use
  /// at() / planes_view() there).
  [[nodiscard]] std::span<const Word> values() const noexcept { return data_; }
  [[nodiscard]] Word at(std::size_t pe) const;
  [[nodiscard]] Word at(std::size_t row, std::size_t col) const;

  /// BitPlane-backend storage: h contiguous planes (empty under Word).
  [[nodiscard]] std::span<const sim::PlaneWord> planes_view() const noexcept {
    return planes_;
  }

  /// True when no element is a floating-bus read.
  [[nodiscard]] bool fully_driven() const noexcept {
    return driven_.empty() && driven_plane_.empty();
  }

  /// Per-PE driven flags; empty span when fully driven.
  [[nodiscard]] std::span<const Flag> driven_view() const noexcept { return driven_; }
  [[nodiscard]] std::span<const sim::PlaneWord> driven_plane_view() const noexcept {
    return driven_plane_;
  }

  /// The j-th bit plane as a parallel logical — the paper's bit(x, j).
  [[nodiscard]] Pbool bit(int j) const;

  /// `this | (flag << j)` — writes a bit plane; used by the bit-serial
  /// primitives to assemble values LSB by LSB.
  [[nodiscard]] Pint or_bit(int j, const Pbool& flag) const;

  // Saturating h-bit arithmetic.
  friend Pint operator+(const Pint& a, const Pint& b);
  friend Pint operator+(const Pint& a, Word b);

  /// Elementwise minimum / maximum (plain ALU ops, not bus reductions).
  friend Pint emin(const Pint& a, const Pint& b);
  friend Pint emax(const Pint& a, const Pint& b);

  // Comparisons — parallel logical results.
  friend Pbool operator==(const Pint& a, const Pint& b);
  friend Pbool operator!=(const Pint& a, const Pint& b);
  friend Pbool operator<(const Pint& a, const Pint& b);
  friend Pbool operator<=(const Pint& a, const Pint& b);
  friend Pbool operator==(const Pint& a, Word b);
  friend Pbool operator!=(const Pint& a, Word b);
  friend Pbool operator<(const Pint& a, Word b);

  /// cond ? a : b, elementwise (unmasked expression).
  friend Pint select(const Pbool& cond, const Pint& a, const Pint& b);

 private:
  friend class detail_access;

  /// Uncharged shell used by detail_access to wrap bus results.
  explicit Pint(Context* ctx) : ctx_(ctx) {}

  Context* ctx_;
  // Exactly one representation is populated, fixed by the machine's
  // ExecBackend: per-PE words (data_/driven_) or h bit planes
  // (planes_/driven_plane_). Programs cannot observe which.
  std::vector<Word> data_;
  // Empty = every element driven; otherwise one flag per PE.
  std::vector<Flag> driven_;
  std::vector<sim::PlaneWord> planes_;
  // Empty = every element driven; otherwise one bit per PE.
  std::vector<sim::PlaneWord> driven_plane_;
};

/// Parallel logical (one flag per PE); doubles as the Open/Short switch
/// setting for the bus primitives (1 = Open).
class Pbool {
 public:
  Pbool(Context& ctx, bool init);
  Pbool(Context& ctx, std::span<const Flag> values);
  Pbool(const Pbool& other);
  Pbool(Pbool&& other) noexcept = default;
  ~Pbool();

  /// MASKED store. Charges one ALU step.
  Pbool& operator=(const Pbool& rhs);
  Pbool& operator=(Pbool&& rhs);

  void store_all(const Pbool& rhs);
  void store_all(bool value);

  [[nodiscard]] Context& context() const noexcept { return *ctx_; }

  /// Word-backend storage view (empty under the BitPlane backend).
  [[nodiscard]] std::span<const Flag> values() const noexcept { return data_; }
  [[nodiscard]] bool at(std::size_t pe) const;
  [[nodiscard]] bool at(std::size_t row, std::size_t col) const;

  /// BitPlane-backend storage: one plane (empty under Word).
  [[nodiscard]] std::span<const sim::PlaneWord> plane_view() const noexcept {
    return plane_;
  }

  [[nodiscard]] bool fully_driven() const noexcept {
    return driven_.empty() && driven_plane_.empty();
  }

  /// Per-PE driven flags; empty span when fully driven.
  [[nodiscard]] std::span<const Flag> driven_view() const noexcept { return driven_; }
  [[nodiscard]] std::span<const sim::PlaneWord> driven_plane_view() const noexcept {
    return driven_plane_;
  }

  /// Number of PEs whose flag is set (host introspection, no step charge).
  [[nodiscard]] std::size_t count() const noexcept;

  // Parallel logic. `!` is logical NOT; `&`, `|`, `^` are elementwise.
  friend Pbool operator!(const Pbool& a);
  friend Pbool operator&(const Pbool& a, const Pbool& b);
  friend Pbool operator|(const Pbool& a, const Pbool& b);
  friend Pbool operator^(const Pbool& a, const Pbool& b);
  friend Pbool operator==(const Pbool& a, const Pbool& b);
  friend Pbool operator!=(const Pbool& a, const Pbool& b);

  /// The flag as a 0/1 parallel integer.
  [[nodiscard]] Pint to_pint() const;

 private:
  friend class detail_access;

  /// Uncharged shell used by detail_access to wrap bus results.
  explicit Pbool(Context* ctx) : ctx_(ctx) {}

  Context* ctx_;
  // One representation populated, per the machine's ExecBackend.
  std::vector<Flag> data_;
  std::vector<Flag> driven_;
  std::vector<sim::PlaneWord> plane_;
  std::vector<sim::PlaneWord> driven_plane_;
};

/// ROW and COL — the coordinate constants every PPC program can read.
[[nodiscard]] Pint row_of(Context& ctx);
[[nodiscard]] Pint col_of(Context& ctx);

/// The per-PE driven flags of a (possibly bus-read) value as a parallel
/// logical — all-true for fully driven values. On hardware this is the
/// bus sense line every PE can test. One ALU step.
[[nodiscard]] Pbool driven_mask(const Pint& value);
[[nodiscard]] Pbool driven_mask(const Pbool& value);

namespace detail {
/// Internal: builds a Pint/Pbool that carries a driven mask from a bus
/// read. Exposed for primitives.cpp only.
Pint make_bus_pint(Context& ctx, std::vector<Word> values, std::vector<Flag> driven);
Pbool make_bus_pbool(Context& ctx, std::vector<Flag> values, std::vector<Flag> driven);
/// BitPlane-backend twins.
Pint make_bus_pint_planes(Context& ctx, std::vector<sim::PlaneWord> planes,
                          std::vector<sim::PlaneWord> driven);
Pbool make_bus_pbool_plane(Context& ctx, std::vector<sim::PlaneWord> plane,
                           std::vector<sim::PlaneWord> driven);
}  // namespace detail

}  // namespace ppa::ppc
