// The dispatched SIMD plane-kernel table moved to sim/plane_kernels.hpp:
// the bus engines consume it too now (the ECC parity rider computes and
// decodes its parity planes through the same kernels as the ppc ALU), and
// ppa_ppc already links ppa_sim, so the table lives in the lower layer.
// This shim keeps the historical include path and ppc::plane_kernels
// spelling alive for existing call sites.
#pragma once

#include "sim/plane_kernels.hpp"

namespace ppa::ppc {
namespace plane_kernels = ppa::sim::plane_kernels;
}  // namespace ppa::ppc
