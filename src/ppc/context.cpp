#include "ppc/context.hpp"

#include <algorithm>

#include "ppc/flag_sweep.hpp"
#include "ppc/plane_ops.hpp"
#include "util/check.hpp"

namespace ppa::ppc {

Context::Context(sim::Machine& machine)
    : machine_(machine),
      alu_(plane_kernels::active(), machine.host_pool(),
           machine.config().plane_sweep_min_words, machine.mutable_sweep_stats()) {
  if (bitplane()) {
    full_.resize(geometry().plane_words());
    sim::plane_fill_full(geometry(), full_.data());
    plane_stack_.push_back(full_);
  } else {
    stack_.emplace_back(machine.pe_count(), Flag{1});
  }
}

bool Context::mask_is_full() const noexcept {
  if (bitplane()) {
    return alu_.equal(plane_stack_.back().data(), full_.data(),
                      geometry().plane_words());
  }
  const auto& top = stack_.back();
  return std::all_of(top.begin(), top.end(), [](Flag f) { return f != 0; });
}

void Context::push_mask_and(std::span<const Flag> cond) {
  PPA_REQUIRE(cond.size() == pe_count(), "where-condition must cover the whole array");
  const auto& top = stack_.back();
  std::vector<Flag> next = acquire_flags();
  // Raw pointers: keeps the sweep at real loads/stores even when the
  // vector/span operator[] calls don't inline (unoptimized builds).
  const Flag* pt = top.data();
  const Flag* pc = cond.data();
  Flag* pn = next.data();
  machine_.for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::mask_and_cond(pt, pc, pn, /*negate=*/false, begin, end);
  });
  machine_.charge_alu();
  stack_.push_back(std::move(next));
}

void Context::push_mask_and_not(std::span<const Flag> cond) {
  PPA_REQUIRE(cond.size() == pe_count(), "where-condition must cover the whole array");
  const auto& top = stack_.back();
  std::vector<Flag> next = acquire_flags();
  const Flag* pt = top.data();
  const Flag* pc = cond.data();
  Flag* pn = next.data();
  machine_.for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::mask_and_cond(pt, pc, pn, /*negate=*/true, begin, end);
  });
  machine_.charge_alu();
  stack_.push_back(std::move(next));
}

void Context::pop_mask() {
  if (bitplane()) {
    PPA_REQUIRE(plane_stack_.size() > 1, "pop_mask without a matching where");
    release_flag_plane(std::move(plane_stack_.back()));
    plane_stack_.pop_back();
    return;
  }
  PPA_REQUIRE(stack_.size() > 1, "pop_mask without a matching where");
  release_flags(std::move(stack_.back()));
  stack_.pop_back();
}

void Context::push_mask_and_plane(const sim::PlaneWord* cond) {
  std::vector<sim::PlaneWord> next = acquire_flag_plane();
  alu_.op_and(plane_stack_.back().data(), cond, next.data(),
              geometry().plane_words());
  machine_.charge_alu();
  plane_stack_.push_back(std::move(next));
}

void Context::push_mask_and_not_plane(const sim::PlaneWord* cond) {
  std::vector<sim::PlaneWord> next = acquire_flag_plane();
  alu_.op_andnot(plane_stack_.back().data(), cond, next.data(),
                 geometry().plane_words());
  machine_.charge_alu();
  plane_stack_.push_back(std::move(next));
}

std::vector<Word> Context::acquire_words() {
  if (!free_words_.empty()) {
    std::vector<Word> buffer = std::move(free_words_.back());
    free_words_.pop_back();
    buffer.resize(pe_count());
    return buffer;
  }
  return std::vector<Word>(pe_count());
}

std::vector<Flag> Context::acquire_flags() {
  if (!free_flags_.empty()) {
    std::vector<Flag> buffer = std::move(free_flags_.back());
    free_flags_.pop_back();
    buffer.resize(pe_count());
    return buffer;
  }
  return std::vector<Flag>(pe_count());
}

void Context::release_words(std::vector<Word>&& buffer) noexcept {
  if (buffer.capacity() < pe_count()) return;  // moved-from husk or wrong size
  try {
    free_words_.push_back(std::move(buffer));
  } catch (...) {
    // Out of memory growing the free-list: just let the buffer die.
  }
}

void Context::release_flags(std::vector<Flag>&& buffer) noexcept {
  if (buffer.capacity() < pe_count()) return;
  try {
    free_flags_.push_back(std::move(buffer));
  } catch (...) {
  }
}

std::vector<sim::PlaneWord> Context::acquire_value_planes() {
  const std::size_t words =
      geometry().plane_words() * static_cast<std::size_t>(field().bits());
  if (!free_value_planes_.empty()) {
    std::vector<sim::PlaneWord> buffer = std::move(free_value_planes_.back());
    free_value_planes_.pop_back();
    buffer.resize(words);
    return buffer;
  }
  return std::vector<sim::PlaneWord>(words);
}

std::vector<sim::PlaneWord> Context::acquire_flag_plane() {
  if (!free_flag_planes_.empty()) {
    std::vector<sim::PlaneWord> buffer = std::move(free_flag_planes_.back());
    free_flag_planes_.pop_back();
    buffer.resize(geometry().plane_words());
    return buffer;
  }
  return std::vector<sim::PlaneWord>(geometry().plane_words());
}

void Context::release_value_planes(std::vector<sim::PlaneWord>&& buffer) noexcept {
  const std::size_t words =
      geometry().plane_words() * static_cast<std::size_t>(field().bits());
  if (buffer.capacity() < words) return;
  try {
    free_value_planes_.push_back(std::move(buffer));
  } catch (...) {
  }
}

void Context::release_flag_plane(std::vector<sim::PlaneWord>&& buffer) noexcept {
  if (buffer.capacity() < geometry().plane_words()) return;
  try {
    free_flag_planes_.push_back(std::move(buffer));
  } catch (...) {
  }
}

}  // namespace ppa::ppc
