#include "ppc/context.hpp"

#include <algorithm>

#include "ppc/flag_sweep.hpp"
#include "util/check.hpp"

namespace ppa::ppc {

Context::Context(sim::Machine& machine) : machine_(machine) {
  stack_.emplace_back(machine.pe_count(), Flag{1});
}

bool Context::mask_is_full() const noexcept {
  const auto& top = stack_.back();
  return std::all_of(top.begin(), top.end(), [](Flag f) { return f != 0; });
}

void Context::push_mask_and(std::span<const Flag> cond) {
  PPA_REQUIRE(cond.size() == pe_count(), "where-condition must cover the whole array");
  const auto& top = stack_.back();
  std::vector<Flag> next = acquire_flags();
  // Raw pointers: keeps the sweep at real loads/stores even when the
  // vector/span operator[] calls don't inline (unoptimized builds).
  const Flag* pt = top.data();
  const Flag* pc = cond.data();
  Flag* pn = next.data();
  machine_.for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::mask_and_cond(pt, pc, pn, /*negate=*/false, begin, end);
  });
  machine_.charge_alu();
  stack_.push_back(std::move(next));
}

void Context::push_mask_and_not(std::span<const Flag> cond) {
  PPA_REQUIRE(cond.size() == pe_count(), "where-condition must cover the whole array");
  const auto& top = stack_.back();
  std::vector<Flag> next = acquire_flags();
  const Flag* pt = top.data();
  const Flag* pc = cond.data();
  Flag* pn = next.data();
  machine_.for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::mask_and_cond(pt, pc, pn, /*negate=*/true, begin, end);
  });
  machine_.charge_alu();
  stack_.push_back(std::move(next));
}

void Context::pop_mask() {
  PPA_REQUIRE(stack_.size() > 1, "pop_mask without a matching where");
  release_flags(std::move(stack_.back()));
  stack_.pop_back();
}

std::vector<Word> Context::acquire_words() {
  if (!free_words_.empty()) {
    std::vector<Word> buffer = std::move(free_words_.back());
    free_words_.pop_back();
    buffer.resize(pe_count());
    return buffer;
  }
  return std::vector<Word>(pe_count());
}

std::vector<Flag> Context::acquire_flags() {
  if (!free_flags_.empty()) {
    std::vector<Flag> buffer = std::move(free_flags_.back());
    free_flags_.pop_back();
    buffer.resize(pe_count());
    return buffer;
  }
  return std::vector<Flag>(pe_count());
}

void Context::release_words(std::vector<Word>&& buffer) noexcept {
  if (buffer.capacity() < pe_count()) return;  // moved-from husk or wrong size
  try {
    free_words_.push_back(std::move(buffer));
  } catch (...) {
    // Out of memory growing the free-list: just let the buffer die.
  }
}

void Context::release_flags(std::vector<Flag>&& buffer) noexcept {
  if (buffer.capacity() < pe_count()) return;
  try {
    free_flags_.push_back(std::move(buffer));
  } catch (...) {
  }
}

}  // namespace ppa::ppc
