#include "ppc/context.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ppa::ppc {

Context::Context(sim::Machine& machine) : machine_(machine) {
  stack_.emplace_back(machine.pe_count(), Flag{1});
}

bool Context::mask_is_full() const noexcept {
  const auto& top = stack_.back();
  return std::all_of(top.begin(), top.end(), [](Flag f) { return f != 0; });
}

void Context::push_mask_and(std::span<const Flag> cond) {
  PPA_REQUIRE(cond.size() == pe_count(), "where-condition must cover the whole array");
  const auto& top = stack_.back();
  std::vector<Flag> next(pe_count());
  machine_.for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      next[pe] = static_cast<Flag>(top[pe] & (cond[pe] ? 1 : 0));
    }
  });
  machine_.charge_alu();
  stack_.push_back(std::move(next));
}

void Context::push_mask_and_not(std::span<const Flag> cond) {
  PPA_REQUIRE(cond.size() == pe_count(), "where-condition must cover the whole array");
  const auto& top = stack_.back();
  std::vector<Flag> next(pe_count());
  machine_.for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      next[pe] = static_cast<Flag>(top[pe] & (cond[pe] ? 0 : 1));
    }
  });
  machine_.charge_alu();
  stack_.push_back(std::move(next));
}

void Context::pop_mask() {
  PPA_REQUIRE(stack_.size() > 1, "pop_mask without a matching where");
  stack_.pop_back();
}

}  // namespace ppa::ppc
