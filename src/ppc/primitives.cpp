#include "ppc/primitives.hpp"

#include <algorithm>
#include <vector>

#include "ppc/plane_ops.hpp"
#include "util/check.hpp"

namespace ppa::ppc {

using sim::PlaneWord;

namespace {

void require_injectable(const Pint& src, const char* what) {
  PPA_REQUIRE(src.fully_driven(),
              std::string(what) + ": values injected on a bus must be fully driven — store "
                                  "the previous bus result into a variable first");
}

void require_injectable(const Pbool& src, const char* what) {
  PPA_REQUIRE(src.fully_driven(),
              std::string(what) + ": values injected on a bus must be fully driven — store "
                                  "the previous bus result into a variable first");
}

void require_same(const Context& a, const Context& b) {
  PPA_REQUIRE(&a == &b, "operands belong to different machines");
}

}  // namespace

Pint shift(const Pint& src, sim::Direction dir, Word fill) {
  require_injectable(src, "shift");
  Context& ctx = src.context();
  PPA_REQUIRE(ctx.field().representable(fill), "shift fill value does not fit in the field");
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = ctx.acquire_value_planes();
    // Bit j of the scalar fill feeds plane j's edge lanes.
    ctx.machine().shift_planes(src.planes_view().data(), ctx.field().bits(), dir, fill,
                               out.data());
    return detail::make_bus_pint_planes(ctx, std::move(out), {});
  }
  std::vector<Word> out = ctx.acquire_words();
  ctx.machine().shift(src.values(), dir, fill, out);
  return detail::make_bus_pint(ctx, std::move(out), {});
}

Pbool shift(const Pbool& src, sim::Direction dir, bool fill) {
  require_injectable(src, "shift");
  Context& ctx = src.context();
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = ctx.acquire_flag_plane();
    ctx.machine().shift_planes(src.plane_view().data(), 1, dir, fill ? 1u : 0u,
                               out.data());
    return detail::make_bus_pbool_plane(ctx, std::move(out), {});
  }
  // Route the flags through the word links: a logical is a 1-bit register.
  std::vector<Word> in = ctx.acquire_words();
  const auto sv = src.values();
  for (std::size_t pe = 0; pe < in.size(); ++pe) in[pe] = sv[pe];
  std::vector<Word> out = ctx.acquire_words();
  ctx.machine().shift(in, dir, fill ? 1u : 0u, out);
  std::vector<Flag> bits = ctx.acquire_flags();
  for (std::size_t pe = 0; pe < bits.size(); ++pe) bits[pe] = out[pe] ? Flag{1} : Flag{0};
  ctx.release_words(std::move(in));
  ctx.release_words(std::move(out));
  return detail::make_bus_pbool(ctx, std::move(bits), {});
}

Pint broadcast(const Pint& src, sim::Direction dir, const Pbool& open) {
  require_same(src.context(), open.context());
  Context& ctx = src.context();
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> values = ctx.acquire_value_planes();
    std::vector<PlaneWord> driven = ctx.acquire_flag_plane();
    ctx.machine().broadcast_planes_into(src.planes_view().data(), ctx.field().bits(), dir,
                                        open.plane_view().data(), values.data(),
                                        driven.data());
    if (!src.fully_driven()) {
      // The taint flags ride the same physical cycle (no extra step): a
      // receiver is driven only if its driver's own value was. The shadow
      // cycle sees the same effective switches and dead PEs as the data
      // cycle it rides.
      std::vector<PlaneWord> taint = ctx.acquire_flag_plane();
      std::vector<PlaneWord> taint_driven = ctx.acquire_flag_plane();
      ctx.machine().shadow_broadcast_planes_into(src.driven_plane_view().data(), dir,
                                                 open.plane_view().data(), taint.data(),
                                                 taint_driven.data());
      ctx.alu().op_and(driven.data(), taint.data(), driven.data(), pw);
      ctx.release_flag_plane(std::move(taint));
      ctx.release_flag_plane(std::move(taint_driven));
    }
    if (ctx.alu().equal(driven.data(), ctx.full_plane(), pw)) {
      ctx.release_flag_plane(std::move(driven));
      driven = {};
    }
    return detail::make_bus_pint_planes(ctx, std::move(values), std::move(driven));
  }
  std::vector<Word> values = ctx.acquire_words();
  std::vector<Flag> driven = ctx.acquire_flags();
  ctx.machine().broadcast_into(src.values(), dir, open.values(), values, driven);
  if (!src.fully_driven()) {
    // The taint flags ride the same physical cycle (no extra step): a
    // receiver is driven only if its driver's own value was. The shadow
    // cycle sees the same effective switches and dead PEs as the data
    // cycle it rides.
    std::vector<Flag> taint = ctx.acquire_flags();
    std::vector<Flag> taint_driven = ctx.acquire_flags();
    ctx.machine().shadow_broadcast_into(src.driven_view(), dir, open.values(), taint,
                                        taint_driven);
    for (std::size_t pe = 0; pe < driven.size(); ++pe) {
      driven[pe] = static_cast<Flag>(driven[pe] & (taint[pe] ? 1 : 0));
    }
    ctx.release_flags(std::move(taint));
    ctx.release_flags(std::move(taint_driven));
  }
  const bool all_driven =
      std::all_of(driven.begin(), driven.end(), [](Flag f) { return f != 0; });
  if (all_driven) {
    ctx.release_flags(std::move(driven));
    driven = {};
  }
  return detail::make_bus_pint(ctx, std::move(values), std::move(driven));
}

Pint two_sided_broadcast(const Pint& src, sim::Direction dir, const Pbool& open) {
  const Pint forward = broadcast(src, dir, open);
  const Pint backward = broadcast(src, sim::opposite(dir), open);
  return select(driven_mask(forward), forward, backward);
}

Pbool broadcast(const Pbool& src, sim::Direction dir, const Pbool& open) {
  require_injectable(src, "broadcast");
  require_same(src.context(), open.context());
  Context& ctx = src.context();
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> bits = ctx.acquire_flag_plane();
    std::vector<PlaneWord> driven = ctx.acquire_flag_plane();
    ctx.machine().broadcast_planes_into(src.plane_view().data(), 1, dir,
                                        open.plane_view().data(), bits.data(),
                                        driven.data());
    if (ctx.alu().equal(driven.data(), ctx.full_plane(), pw)) {
      ctx.release_flag_plane(std::move(driven));
      driven = {};
    }
    return detail::make_bus_pbool_plane(ctx, std::move(bits), std::move(driven));
  }
  // Flag-lane cycle: the received bits are the drivers' 0/1 flags verbatim.
  std::vector<Flag> bits = ctx.acquire_flags();
  std::vector<Flag> driven = ctx.acquire_flags();
  ctx.machine().broadcast_into(src.values(), dir, open.values(), bits, driven);
  const bool all_driven =
      std::all_of(driven.begin(), driven.end(), [](Flag f) { return f != 0; });
  if (all_driven) {
    ctx.release_flags(std::move(driven));
    driven = {};
  }
  return detail::make_bus_pbool(ctx, std::move(bits), std::move(driven));
}

Pbool bus_or(const Pbool& src, sim::Direction dir, const Pbool& open) {
  require_injectable(src, "bus_or");
  require_same(src.context(), open.context());
  Context& ctx = src.context();
  if (ctx.bitplane()) {
    // An open-collector read never floats, so the result is fully driven.
    std::vector<PlaneWord> bits = ctx.acquire_flag_plane();
    ctx.machine().wired_or_plane_into(src.plane_view().data(), dir,
                                      open.plane_view().data(), bits.data());
    return detail::make_bus_pbool_plane(ctx, std::move(bits), {});
  }
  // An open-collector read never floats, so the result is fully driven.
  std::vector<Flag> bits = ctx.acquire_flags();
  ctx.machine().wired_or_into(src.values(), dir, open.values(), bits);
  return detail::make_bus_pbool(ctx, std::move(bits), {});
}

bool any(const Pbool& flags) {
  Context& ctx = flags.context();
  if (ctx.bitplane()) return ctx.machine().global_or_plane(flags.plane_view().data());
  return ctx.machine().global_or(flags.values());
}

namespace {

/// The shared MSB-first elimination loop of min()/selected_min(): after it
/// runs, `enable` is 1 exactly on the PEs holding the minimum src value
/// among the initially enabled PEs of each cluster. Paper listing,
/// statements 8–10. `or_probe` (when non-null) additionally reconstructs
/// the minimum value from the wired-OR results.
void eliminate_non_minima(const Pint& src, sim::Direction orientation, const Pbool& L,
                          Pbool& enable, Pint* or_probe) {
  Context& ctx = src.context();
  const int h = ctx.field().bits();
  const Pbool k_false(ctx, false);
  for (int j = h - 1; j >= 0; --j) {
    const Pbool bit_j = src.bit(j);
    // "if at least one 0 is found, all the values having 1 at that
    // position are excluded from the following comparisons"
    const Pbool some_zero = bus_or((!bit_j) & enable, orientation, L);
    where(ctx, some_zero & bit_j, [&] { enable = k_false; });
    if (or_probe != nullptr) {
      // Bit j of the cluster minimum is 1 iff NO enabled candidate had a 0
      // there. (On an empty candidate set every round reads 0, so the
      // reconstruction yields all ones — the field's infinity.)
      *or_probe = or_probe->or_bit(j, !some_zero);
    }
  }
}

/// Statements 11–13: route the surviving minimum to the cluster's extreme
/// node and broadcast it back to the whole cluster.
Pint route_and_spread(const Pint& src, sim::Direction orientation, const Pbool& L,
                      const Pbool& enable) {
  Context& ctx = src.context();
  Pint result(src);
  where(ctx, L, [&] {
    result = broadcast(result, sim::opposite(orientation), enable);
  });
  return broadcast(result, orientation, L);
}

}  // namespace

Pint pmin(const Pint& src, sim::Direction orientation, const Pbool& L) {
  require_injectable(src, "pmin");
  require_same(src.context(), L.context());
  Pbool enable(src.context(), true);
  eliminate_non_minima(src, orientation, L, enable, nullptr);
  return route_and_spread(src, orientation, L, enable);
}

Pint selected_min(const Pint& src, sim::Direction orientation, const Pbool& L,
                  const Pbool& selected) {
  require_injectable(src, "selected_min");
  require_same(src.context(), L.context());
  require_same(src.context(), selected.context());
  Pbool enable(selected);
  eliminate_non_minima(src, orientation, L, enable, nullptr);
  return route_and_spread(src, orientation, L, enable);
}

Pint pmin_orprobe(const Pint& src, sim::Direction orientation, const Pbool& L) {
  require_injectable(src, "pmin_orprobe");
  require_same(src.context(), L.context());
  Context& ctx = src.context();
  Pbool enable(ctx, true);
  Pint reconstructed(ctx, 0);
  eliminate_non_minima(src, orientation, L, enable, &reconstructed);
  return reconstructed;
}

Pint selected_min_orprobe(const Pint& src, sim::Direction orientation, const Pbool& L,
                          const Pbool& selected) {
  require_injectable(src, "selected_min_orprobe");
  require_same(src.context(), L.context());
  require_same(src.context(), selected.context());
  Context& ctx = src.context();
  Pbool enable(selected);
  Pint reconstructed(ctx, 0);
  eliminate_non_minima(src, orientation, L, enable, &reconstructed);
  return reconstructed;
}

namespace {

/// Mirror of eliminate_non_minima for the MAXIMUM: a candidate survives
/// round j unless some enabled candidate has a 1 where it has a 0. The
/// probe reconstructs bit j of the maximum as "some enabled candidate has
/// a 1 there" — an empty candidate set yields 0.
void eliminate_non_maxima(const Pint& src, sim::Direction orientation, const Pbool& L,
                          Pbool& enable, Pint* or_probe) {
  Context& ctx = src.context();
  const int h = ctx.field().bits();
  const Pbool k_false(ctx, false);
  for (int j = h - 1; j >= 0; --j) {
    const Pbool bit_j = src.bit(j);
    const Pbool some_one = bus_or(bit_j & enable, orientation, L);
    where(ctx, some_one & !bit_j, [&] { enable = k_false; });
    if (or_probe != nullptr) *or_probe = or_probe->or_bit(j, some_one);
  }
}

}  // namespace

Pint pmax(const Pint& src, sim::Direction orientation, const Pbool& L) {
  require_injectable(src, "pmax");
  require_same(src.context(), L.context());
  Pbool enable(src.context(), true);
  eliminate_non_maxima(src, orientation, L, enable, nullptr);
  return route_and_spread(src, orientation, L, enable);
}

Pint selected_max(const Pint& src, sim::Direction orientation, const Pbool& L,
                  const Pbool& selected) {
  require_injectable(src, "selected_max");
  require_same(src.context(), L.context());
  require_same(src.context(), selected.context());
  Pbool enable(selected);
  eliminate_non_maxima(src, orientation, L, enable, nullptr);
  return route_and_spread(src, orientation, L, enable);
}

Pint pmax_orprobe(const Pint& src, sim::Direction orientation, const Pbool& L) {
  require_injectable(src, "pmax_orprobe");
  require_same(src.context(), L.context());
  Context& ctx = src.context();
  Pbool enable(ctx, true);
  Pint reconstructed(ctx, 0);
  eliminate_non_maxima(src, orientation, L, enable, &reconstructed);
  return reconstructed;
}

Pint selected_max_orprobe(const Pint& src, sim::Direction orientation, const Pbool& L,
                          const Pbool& selected) {
  require_injectable(src, "selected_max_orprobe");
  require_same(src.context(), L.context());
  require_same(src.context(), selected.context());
  Context& ctx = src.context();
  Pbool enable(selected);
  Pint reconstructed(ctx, 0);
  eliminate_non_maxima(src, orientation, L, enable, &reconstructed);
  return reconstructed;
}

Pbool has_upstream(const Pbool& flags, sim::Direction dir) {
  Context& ctx = flags.context();
  PPA_REQUIRE(ctx.machine().config().topology == sim::BusTopology::Linear,
              "has_upstream needs a Linear machine (on a Ring every PE has upstream flags "
              "whenever the line has any)");
  // Flagged PEs open their switch and drive; a PE reads a driven line iff
  // some flag lies strictly upstream. The broadcast payload is irrelevant.
  const Pint probe = broadcast(Pint(ctx, 1), dir, flags);
  const Pbool driven = driven_mask(probe);
  return driven;
}

Pbool first_in_line(const Pbool& flags, sim::Direction dir) {
  return flags & !has_upstream(flags, dir);
}

Pint nearest_upstream(const Pint& payload, const Pbool& flags, sim::Direction dir) {
  return broadcast(payload, dir, flags);
}

}  // namespace ppa::ppc
