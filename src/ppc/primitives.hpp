// PPC communication and combination primitives.
//
// These are the paper's Section-2/3 primitives:
//
//   shift(src, dir)            — nearest-neighbour move.
//   broadcast(src, dir, L)     — segmented bus broadcast: L partitions each
//                                row/column bus into clusters; every PE
//                                receives the value of "the extreme node of
//                                the cluster the processor belongs to".
//   bus_or(src, dir, L)        — cluster-wide wired-OR (the paper's
//                                `or(...)` inside min()); one bus cycle.
//   any(flags)                 — the controller's global-OR response line,
//                                used for "while (at least one SOW in row d
//                                has changed)".
//   pmin / selected_min        — the paper's bit-serial minimum / argmin
//                                (Section 3, second listing): h wired-OR
//                                rounds MSB-first, then the surviving
//                                minimum is routed to the cluster's extreme
//                                node and broadcast back. O(h) bus cycles.
//   pmin_orprobe               — GCN-style variant that *reconstructs* the
//                                minimum from the OR bits instead of
//                                routing it at the end (every PE already
//                                learns each bit of the minimum); used by
//                                the GCN baseline and the ablation bench.
//
// Injection precondition for shift and bus_or: values injected must be
// fully driven (store a received bus value into a variable first).
// broadcast additionally accepts tainted sources and propagates the taint
// to the receivers — needed by two_sided_broadcast chains on Linear
// machines.
#pragma once

#include "ppc/parallel.hpp"
#include "ppc/where.hpp"

namespace ppa::ppc {

/// Nearest-neighbour move along `dir`; array-edge PEs receive `fill`.
[[nodiscard]] Pint shift(const Pint& src, sim::Direction dir, Word fill = 0);

/// Nearest-neighbour move of a parallel logical (one Shift step).
[[nodiscard]] Pbool shift(const Pbool& src, sim::Direction dir, bool fill = false);

/// Segmented bus broadcast; `open` is the parallel Open/Short setting
/// (1 = Open = inject & segment). The result carries per-PE driven flags;
/// consuming an undriven element triggers the machine's UndrivenPolicy.
/// A tainted src may be injected: a driver that is itself a floating read
/// taints everything it drives (the taint flags ride the same bus cycle).
[[nodiscard]] Pint broadcast(const Pint& src, sim::Direction dir, const Pbool& open);

/// Two broadcasts — `dir` and its opposite — combined by per-PE
/// driven-ness. On a Linear machine this reaches both sides of every Open
/// node (the PPA's way to emulate the Ring reach at 2x the bus cycles);
/// only the drivers' own positions (and open-free lines) stay undriven.
/// On a Ring machine the second cycle is redundant but harmless.
[[nodiscard]] Pint two_sided_broadcast(const Pint& src, sim::Direction dir, const Pbool& open);

/// Segmented broadcast of a parallel logical (one bus cycle on a 1-bit
/// lane). Same driver/cluster semantics as the word broadcast.
[[nodiscard]] Pbool broadcast(const Pbool& src, sim::Direction dir, const Pbool& open);

/// Cluster-wide wired-OR of parallel logicals, one bus cycle.
[[nodiscard]] Pbool bus_or(const Pbool& src, sim::Direction dir, const Pbool& open);

/// Controller global-OR over all PEs (one GlobalOr step).
[[nodiscard]] bool any(const Pbool& flags);

/// Bit-serial cluster minimum (paper's min()). Every PE of a cluster
/// receives the minimum of src over the cluster's members. O(h) bus
/// cycles. Clusters are defined by `L` (Open nodes) along `orientation`.
[[nodiscard]] Pint pmin(const Pint& src, sim::Direction orientation, const Pbool& L);

/// Bit-serial cluster minimum restricted to PEs with selected != 0
/// (paper's selected_min()). Used with src = COL it returns the smallest
/// column index among the selected PEs — the deterministic argmin.
/// Clusters whose selected set is empty produce an undriven result in
/// those PEs; it must not be consumed there (mask it off).
[[nodiscard]] Pint selected_min(const Pint& src, sim::Direction orientation, const Pbool& L,
                                const Pbool& selected);

/// OR-probe minimum: same O(h) wired-OR rounds, but each PE reconstructs
/// the minimum locally from the OR results (bit j of the minimum is the
/// complement of "some enabled candidate has 0 at j"). No final routing
/// step; an empty candidate set yields the field's infinity.
[[nodiscard]] Pint pmin_orprobe(const Pint& src, sim::Direction orientation, const Pbool& L);

/// OR-probe argmin restricted to `selected`; empty selections yield
/// infinity (never undriven), which callers can detect and mask.
[[nodiscard]] Pint selected_min_orprobe(const Pint& src, sim::Direction orientation,
                                        const Pbool& L, const Pbool& selected);

/// Bit-serial cluster MAXIMUM — the mirror image of pmin (keep the
/// candidates holding a 1 whenever some enabled candidate holds a 1,
/// MSB first). Same O(h) cost. Used by the eccentricity/diameter
/// extension (DESIGN.md §7).
[[nodiscard]] Pint pmax(const Pint& src, sim::Direction orientation, const Pbool& L);

/// pmax restricted to `selected` candidates. Clusters whose selected set
/// is empty produce an undriven result in those PEs (mask it off).
[[nodiscard]] Pint selected_max(const Pint& src, sim::Direction orientation, const Pbool& L,
                                const Pbool& selected);

/// OR-probe maximum: reconstructs the maximum locally from the OR bits;
/// an empty candidate set yields 0 (never undriven).
[[nodiscard]] Pint pmax_orprobe(const Pint& src, sim::Direction orientation, const Pbool& L);

/// OR-probe maximum over the `selected` candidates; empty selections
/// yield 0.
[[nodiscard]] Pint selected_max_orprobe(const Pint& src, sim::Direction orientation,
                                        const Pbool& L, const Pbool& selected);

// ---------------------------------------------------------------------------
// Priority-resolution idioms (classic reconfigurable-mesh building blocks,
// cf. the paper's reference [1], Miller et al.). They exploit the LINEAR
// bus reading: a PE whose upstream stub has no Open node reads a floating
// line, so "is my input driven?" answers "does any flag precede me?" in
// ONE bus cycle. They therefore require a Linear machine.
// ---------------------------------------------------------------------------

/// has_upstream(flags, dir)[pe] == true iff some PE strictly upstream of
/// `pe` on its line (against the data direction `dir`) has its flag set.
/// One broadcast cycle + one ALU step. Linear topology only.
[[nodiscard]] Pbool has_upstream(const Pbool& flags, sim::Direction dir);

/// The per-line leader: the first flagged PE in flow order (e.g. with
/// dir == East, the westernmost flag of each row). flags & !has_upstream.
/// Linear topology only.
[[nodiscard]] Pbool first_in_line(const Pbool& flags, sim::Direction dir);

/// Each PE receives the payload of the nearest flagged PE strictly
/// upstream of it; PEs with no flagged predecessor get an undriven
/// element (mask or detect via driven_mask). One bus cycle. Works on both
/// topologies; on a Ring the "nearest upstream" wraps.
[[nodiscard]] Pint nearest_upstream(const Pint& payload, const Pbool& flags,
                                    sim::Direction dir);

}  // namespace ppa::ppc
