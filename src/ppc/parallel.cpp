#include "ppc/parallel.hpp"

#include <algorithm>
#include <sstream>

#include "ppc/flag_sweep.hpp"
#include "util/check.hpp"

namespace ppa::ppc {

using sim::PlaneWord;

/// Private-access backdoor for primitives.cpp: builds parallel values that
/// carry bus-driven masks without charging a store instruction (the bus
/// primitive itself already charged the cycle).
class detail_access {
 public:
  static Pint raw_pint(Context& ctx, std::vector<Word> data, std::vector<Flag> driven) {
    Pint p(&ctx);
    p.data_ = std::move(data);
    p.driven_ = std::move(driven);
    PPA_ASSERT(p.data_.size() == ctx.pe_count(), "raw pint size mismatch");
    return p;
  }

  static Pbool raw_pbool(Context& ctx, std::vector<Flag> data, std::vector<Flag> driven) {
    Pbool p(&ctx);
    p.data_ = std::move(data);
    p.driven_ = std::move(driven);
    PPA_ASSERT(p.data_.size() == ctx.pe_count(), "raw pbool size mismatch");
    return p;
  }

  static Pint raw_pint_planes(Context& ctx, std::vector<PlaneWord> planes,
                              std::vector<PlaneWord> driven) {
    Pint p(&ctx);
    p.planes_ = std::move(planes);
    p.driven_plane_ = std::move(driven);
    PPA_ASSERT(p.planes_.size() == ctx.geometry().plane_words() *
                                       static_cast<std::size_t>(ctx.field().bits()),
               "raw pint plane size mismatch");
    return p;
  }

  static Pbool raw_pbool_plane(Context& ctx, std::vector<PlaneWord> plane,
                               std::vector<PlaneWord> driven) {
    Pbool p(&ctx);
    p.plane_ = std::move(plane);
    p.driven_plane_ = std::move(driven);
    PPA_ASSERT(p.plane_.size() == ctx.geometry().plane_words(),
               "raw pbool plane size mismatch");
    return p;
  }
};

namespace {

void check_same_context(const Context& a, const Context& b) {
  PPA_REQUIRE(&a == &b, "parallel operands belong to different machines");
}

/// Elementwise AND of the operands' driven masks; empty when both are
/// fully driven.
std::vector<Flag> combine_driven(Context& ctx, std::span<const Flag> a,
                                 std::span<const Flag> b) {
  if (a.empty() && b.empty()) return {};
  std::vector<Flag> out = ctx.acquire_flags();
  // Raw pointers: the elementwise sweeps below are the simulator's hot
  // path and must stay cheap even in unoptimized builds, where the
  // vector/span operator[] calls don't inline.
  const Flag* pa = a.empty() ? nullptr : a.data();
  const Flag* pb = b.empty() ? nullptr : b.data();
  Flag* po = out.data();
  const std::size_t count = out.size();
  for (std::size_t pe = 0; pe < count; ++pe) {
    Flag f = 1;
    if (pa != nullptr) f = static_cast<Flag>(f & pa[pe]);
    if (pb != nullptr) f = static_cast<Flag>(f & pb[pe]);
    po[pe] = f;
  }
  return out;
}

/// Arena-backed clone of a driven mask; empty in, empty out.
std::vector<Flag> copy_driven(Context& ctx, std::span<const Flag> driven) {
  if (driven.empty()) return {};
  std::vector<Flag> out = ctx.acquire_flags();
  std::copy(driven.begin(), driven.end(), out.begin());
  return out;
}

/// Plane twin of combine_driven: AND of the driven planes (full stands in
/// for an empty side); {} only when both sides are fully driven. Like the
/// word version, an all-ones result is NOT collapsed — the taint structure
/// stays observable.
std::vector<PlaneWord> combine_driven_planes(Context& ctx, std::span<const PlaneWord> a,
                                             std::span<const PlaneWord> b) {
  if (a.empty() && b.empty()) return {};
  std::vector<PlaneWord> out = ctx.acquire_flag_plane();
  const PlaneWord* pa = a.empty() ? ctx.full_plane() : a.data();
  const PlaneWord* pb = b.empty() ? ctx.full_plane() : b.data();
  ctx.alu().op_and(pa, pb, out.data(), ctx.geometry().plane_words());
  return out;
}

std::vector<PlaneWord> copy_driven_plane(Context& ctx,
                                         std::span<const PlaneWord> driven) {
  if (driven.empty()) return {};
  std::vector<PlaneWord> out = ctx.acquire_flag_plane();
  ctx.alu().op_copy(driven.data(), out.data(), ctx.geometry().plane_words());
  return out;
}

[[noreturn]] void fail_undriven(const Context& ctx, std::size_t pe) {
  std::ostringstream os;
  const std::size_t n = ctx.n();
  os << "PE (" << pe / n << ", " << pe % n
     << ") consumed an undriven bus value; with BusTopology::Linear this usually means a "
        "broadcast relied on ring wrap-around (see DESIGN.md), or an empty candidate set "
        "drove nothing onto the bus";
  throw util::ContractError(os.str());
}

/// Resolves a masked consume of undriven bus values. Checked execution
/// records a structured diagnostic and lets the store proceed (the bus
/// kernels already zeroed the undriven cells, so the PE reads 0); otherwise
/// the UndrivenPolicy::Error contract throws.
void handle_undriven(Context& ctx, std::size_t first_pe, std::size_t count) {
  if (ctx.machine().config().checked) {
    const std::size_t n = ctx.n();
    ctx.machine().report_fault(sim::FaultEvent{sim::FaultEventKind::UndrivenRead,
                                               sim::StepCategory::Alu,
                                               sim::Direction::North, first_pe / n,
                                               first_pe % n, count});
    return;
  }
  fail_undriven(ctx, first_pe);
}

/// Enforces the machine's UndrivenPolicy for a masked store of `rhs_driven`
/// (empty = fully driven, nothing to check).
void check_store_driven(Context& ctx, std::span<const Flag> mask,
                        std::span<const Flag> rhs_driven) {
  if (rhs_driven.empty()) return;
  const sim::MachineConfig& config = ctx.machine().config();
  if (!config.checked && config.undriven != sim::UndrivenPolicy::Error) return;
  std::size_t first = 0;
  std::size_t count = 0;
  for (std::size_t pe = 0; pe < mask.size(); ++pe) {
    if (mask[pe] && !rhs_driven[pe]) {
      if (count == 0) first = pe;
      ++count;
      if (!config.checked) break;  // the throw only reports the first PE
    }
  }
  if (count != 0) handle_undriven(ctx, first, count);
}

/// PE index of the lowest set bit of `bits` within word `word` of a plane
/// (row-major word order == PE order, so the first hit is the lowest PE).
std::size_t plane_pe_of(const sim::PlaneGeometry& g, std::size_t word, PlaneWord bits) {
  const std::size_t row = word / g.row_words;
  const std::size_t col = (word % g.row_words) * sim::kLanesPerWord +
                          static_cast<std::size_t>(__builtin_ctzll(bits));
  return row * g.n + col;
}

void check_store_driven_plane(Context& ctx, const PlaneWord* mask,
                              std::span<const PlaneWord> rhs_driven) {
  if (rhs_driven.empty()) return;
  const sim::MachineConfig& config = ctx.machine().config();
  if (!config.checked && config.undriven != sim::UndrivenPolicy::Error) return;
  const std::size_t pw = ctx.geometry().plane_words();
  const PlaneWord* pd = rhs_driven.data();
  std::size_t first = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < pw; ++i) {
    const PlaneWord bad = mask[i] & ~pd[i];
    if (bad == 0) continue;
    if (count == 0) first = plane_pe_of(ctx.geometry(), i, bad);
    count += static_cast<std::size_t>(__builtin_popcountll(bad));
    if (!config.checked) break;  // the throw only reports the first PE
  }
  if (count != 0) handle_undriven(ctx, first, count);
}

/// store_all's unmasked variant of the check: every PE must be driven.
void check_store_all_driven_plane(Context& ctx, std::span<const PlaneWord> rhs_driven) {
  check_store_driven_plane(ctx, ctx.full_plane(), rhs_driven);
}

/// store_all's unmasked word-path variant.
void check_store_all_driven(Context& ctx, std::span<const Flag> rhs_driven) {
  if (rhs_driven.empty()) return;
  const sim::MachineConfig& config = ctx.machine().config();
  if (!config.checked && config.undriven != sim::UndrivenPolicy::Error) return;
  std::size_t first = 0;
  std::size_t count = 0;
  for (std::size_t pe = 0; pe < rhs_driven.size(); ++pe) {
    if (!rhs_driven[pe]) {
      if (count == 0) first = pe;
      ++count;
      if (!config.checked) break;
    }
  }
  if (count != 0) handle_undriven(ctx, first, count);
}

}  // namespace

// ---------------------------------------------------------------------------
// Pint
// ---------------------------------------------------------------------------

Pint::Pint(Context& ctx, Word init) : ctx_(&ctx) {
  PPA_REQUIRE(ctx.field().representable(init), "initializer does not fit in the h-bit field");
  if (ctx.bitplane()) {
    planes_ = ctx.acquire_value_planes();
    ctx.alu().fill_scalar(init, ctx.field().bits(), ctx.geometry().plane_words(),
                           ctx.full_plane(), planes_.data());
  } else {
    data_ = ctx.acquire_words();
    std::fill(data_.begin(), data_.end(), init);
  }
  ctx.machine().charge_alu();
}

Pint::Pint(Context& ctx, std::span<const Word> values) : ctx_(&ctx) {
  PPA_REQUIRE(values.size() == ctx.pe_count(), "initializer must cover the whole array");
  for (const Word v : values) {
    PPA_REQUIRE(ctx.field().representable(v), "initializer value does not fit in the field");
  }
  if (ctx.bitplane()) {
    planes_ = ctx.acquire_value_planes();
    ctx.alu().pack_words(ctx.geometry(), values.data(), ctx.field().bits(),
                         planes_.data());
  } else {
    data_ = ctx.acquire_words();
    std::copy(values.begin(), values.end(), data_.begin());
  }
  ctx.machine().charge_alu();
}

Pint::Pint(const Pint& other) : ctx_(other.ctx_) {
  if (ctx_->bitplane()) {
    planes_ = ctx_->acquire_value_planes();
    planes_.resize(other.planes_.size());  // no-op except for moved-from shells
    std::copy(other.planes_.begin(), other.planes_.end(), planes_.begin());
    if (!other.driven_plane_.empty()) {
      driven_plane_ = ctx_->acquire_flag_plane();
      driven_plane_.resize(other.driven_plane_.size());
      std::copy(other.driven_plane_.begin(), other.driven_plane_.end(),
                driven_plane_.begin());
    }
    return;
  }
  data_ = ctx_->acquire_words();
  data_.resize(other.data_.size());  // no-op except for moved-from shells
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  if (!other.driven_.empty()) {
    driven_ = ctx_->acquire_flags();
    driven_.resize(other.driven_.size());
    std::copy(other.driven_.begin(), other.driven_.end(), driven_.begin());
  }
}

Pint::~Pint() {
  if (ctx_ != nullptr) {
    ctx_->release_words(std::move(data_));
    ctx_->release_flags(std::move(driven_));
    ctx_->release_value_planes(std::move(planes_));
    ctx_->release_flag_plane(std::move(driven_plane_));
  }
}

Pint& Pint::operator=(const Pint& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  Context& ctx = *ctx_;
  if (ctx.bitplane()) {
    const PlaneWord* pm = ctx.mask_plane();
    check_store_driven_plane(ctx, pm, rhs.driven_plane_);
    ctx.machine().charge_alu();
    const std::size_t pw = ctx.geometry().plane_words();
    const int h = ctx.field().bits();
    for (int j = 0; j < h; ++j) {
      ctx.alu().masked_assign(pm, rhs.planes_.data() + static_cast<std::size_t>(j) * pw,
                               planes_.data() + static_cast<std::size_t>(j) * pw, pw);
    }
    if (!driven_plane_.empty()) {
      ctx.alu().op_or(driven_plane_.data(), pm, driven_plane_.data(), pw);
    }
    return *this;
  }
  const auto mask = ctx.mask();
  check_store_driven(ctx, mask, rhs.driven_);
  ctx.machine().charge_alu();
  // Self-assignment is harmless: each PE rewrites its own value.
  const Flag* pm = mask.data();
  const Word* ps = rhs.data_.data();
  Word* pd = data_.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      if (pm[pe]) pd[pe] = ps[pe];
    }
  });
  if (!driven_.empty()) {
    // Written cells now hold defined values (undriven reads were rejected
    // or zeroed above).
    Flag* pv = driven_.data();
    for (std::size_t pe = 0; pe < driven_.size(); ++pe) {
      if (pm[pe]) pv[pe] = 1;
    }
  }
  return *this;
}

Pint& Pint::operator=(Pint&& rhs) { return *this = static_cast<const Pint&>(rhs); }

void Pint::store_all(const Pint& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  if (ctx_->bitplane()) {
    check_store_all_driven_plane(*ctx_, rhs.driven_plane_);
    ctx_->machine().charge_alu();
    planes_ = rhs.planes_;
    driven_plane_.clear();
    return;
  }
  check_store_all_driven(*ctx_, rhs.driven_);
  ctx_->machine().charge_alu();
  data_ = rhs.data_;
  driven_.clear();
}

void Pint::store_all(Word value) {
  PPA_REQUIRE(ctx_->field().representable(value), "value does not fit in the h-bit field");
  ctx_->machine().charge_alu();
  if (ctx_->bitplane()) {
    ctx_->alu().fill_scalar(value, ctx_->field().bits(), ctx_->geometry().plane_words(),
                            ctx_->full_plane(), planes_.data());
    driven_plane_.clear();
    return;
  }
  std::fill(data_.begin(), data_.end(), value);
  driven_.clear();
}

Word Pint::at(std::size_t pe) const {
  PPA_REQUIRE(pe < ctx_->pe_count(), "PE index out of range");
  if (ctx_->bitplane()) {
    const auto& g = ctx_->geometry();
    const std::size_t pw = g.plane_words();
    const std::size_t row = pe / g.n;
    const std::size_t col = pe % g.n;
    Word v = 0;
    const int h = ctx_->field().bits();
    for (int j = 0; j < h; ++j) {
      if (sim::plane_get(g, planes_.data() + static_cast<std::size_t>(j) * pw, row, col)) {
        v |= Word{1} << j;
      }
    }
    return v;
  }
  return data_[pe];
}

Word Pint::at(std::size_t row, std::size_t col) const {
  const std::size_t n = ctx_->n();
  PPA_REQUIRE(row < n && col < n, "PE coordinates out of range");
  return at(row * n + col);
}

Pbool Pint::bit(int j) const {
  PPA_REQUIRE(j >= 0 && j < ctx_->field().bits(), "bit plane index out of range");
  Context& ctx = *ctx_;
  if (ctx.bitplane()) {
    // The plane IS the representation: extraction is a straight copy.
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> out = ctx.acquire_flag_plane();
    ctx.alu().op_copy(planes_.data() + static_cast<std::size_t>(j) * pw, out.data(), pw);
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(ctx, std::move(out),
                                          copy_driven_plane(ctx, driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* ps = data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      po[pe] = static_cast<Flag>((ps[pe] >> j) & 1u);
    }
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), copy_driven(ctx, driven_));
}

Pint Pint::or_bit(int j, const Pbool& flag) const {
  PPA_REQUIRE(j >= 0 && j < ctx_->field().bits(), "bit plane index out of range");
  check_same_context(*ctx_, flag.context());
  Context& ctx = *ctx_;
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    const int h = ctx.field().bits();
    std::vector<PlaneWord> out = ctx.acquire_value_planes();
    ctx.alu().op_copy(planes_.data(), out.data(), static_cast<std::size_t>(h) * pw);
    PlaneWord* oj = out.data() + static_cast<std::size_t>(j) * pw;
    ctx.alu().op_or(oj, flag.plane_view().data(), oj, pw);
    ctx.machine().charge_alu();
    return detail_access::raw_pint_planes(
        ctx, std::move(out), combine_driven_planes(ctx, driven_plane_, flag.driven_plane_view()));
  }
  std::vector<Word> out = ctx.acquire_words();
  const Flag* pf = flag.values().data();
  const Word* ps = data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      po[pe] = ps[pe] | (pf[pe] ? (Word{1} << j) : Word{0});
    }
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, driven_, flag.driven_view()));
}

// ---------------------------------------------------------------------------
// The operator bodies need the operands' driven masks; they are friends so
// they touch the members directly rather than going through helpers.
// ---------------------------------------------------------------------------

Pint operator+(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> out = ctx.acquire_value_planes();
    ctx.alu().add_sat(a.planes_.data(), b.planes_.data(), ctx.field().bits(), pw,
                      ctx.full_plane(), out.data());
    ctx.machine().charge_alu();
    return detail_access::raw_pint_planes(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  const auto& field = ctx.field();
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=, &field](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = field.add(pa[pe], pb[pe]);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pint operator+(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  PPA_REQUIRE(ctx.field().representable(b), "scalar does not fit in the h-bit field");
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    const int h = ctx.field().bits();
    std::vector<PlaneWord> scalar = ctx.acquire_value_planes();
    ctx.alu().fill_scalar(b, h, pw, ctx.full_plane(), scalar.data());
    std::vector<PlaneWord> out = ctx.acquire_value_planes();
    ctx.alu().add_sat(a.planes_.data(), scalar.data(), h, pw, ctx.full_plane(),
                      out.data());
    ctx.release_value_planes(std::move(scalar));
    ctx.machine().charge_alu();
    return detail_access::raw_pint_planes(ctx, std::move(out),
                                          copy_driven_plane(ctx, a.driven_plane_));
  }
  const auto& field = ctx.field();
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=, &field](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = field.add(pa[pe], b);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

namespace {

/// Shared plane body of emin/emax: out = choose ? a : b per plane, where
/// `choose` was computed by a compare. Returns the blended planes.
std::vector<PlaneWord> blend_planes(Context& ctx, const PlaneWord* choose,
                                    std::span<const PlaneWord> a,
                                    std::span<const PlaneWord> b) {
  const std::size_t pw = ctx.geometry().plane_words();
  const int h = ctx.field().bits();
  std::vector<PlaneWord> out = ctx.acquire_value_planes();
  for (int j = 0; j < h; ++j) {
    const std::size_t off = static_cast<std::size_t>(j) * pw;
    ctx.alu().blend(choose, a.data() + off, b.data() + off, out.data() + off, pw);
  }
  return out;
}

}  // namespace

Pint emin(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> lt = ctx.acquire_flag_plane();
    std::vector<PlaneWord> eq = ctx.acquire_flag_plane();
    ctx.alu().compare_lt(a.planes_.data(), b.planes_.data(), ctx.field().bits(), pw,
                          ctx.full_plane(), lt.data(), eq.data());
    std::vector<PlaneWord> out = blend_planes(ctx, lt.data(), a.planes_, b.planes_);
    ctx.release_flag_plane(std::move(lt));
    ctx.release_flag_plane(std::move(eq));
    ctx.machine().charge_alu();
    return detail_access::raw_pint_planes(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] < pb[pe] ? pa[pe] : pb[pe];
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pint emax(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> gt = ctx.acquire_flag_plane();
    std::vector<PlaneWord> eq = ctx.acquire_flag_plane();
    // a > b  <=>  b < a.
    ctx.alu().compare_lt(b.planes_.data(), a.planes_.data(), ctx.field().bits(), pw,
                          ctx.full_plane(), gt.data(), eq.data());
    std::vector<PlaneWord> out = blend_planes(ctx, gt.data(), a.planes_, b.planes_);
    ctx.release_flag_plane(std::move(gt));
    ctx.release_flag_plane(std::move(eq));
    ctx.machine().charge_alu();
    return detail_access::raw_pint_planes(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] > pb[pe] ? pa[pe] : pb[pe];
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

namespace {

/// Plane bodies of the Pint comparisons; `kind` selects the output.
enum class CompareKind { Eq, Ne, Lt, Le };

std::vector<PlaneWord> compare_planes(Context& ctx, std::span<const PlaneWord> a,
                                      std::span<const PlaneWord> b, CompareKind kind) {
  const std::size_t pw = ctx.geometry().plane_words();
  const int h = ctx.field().bits();
  std::vector<PlaneWord> out = ctx.acquire_flag_plane();
  if (kind == CompareKind::Eq || kind == CompareKind::Ne) {
    ctx.alu().compare_eq(a.data(), b.data(), h, pw, ctx.full_plane(), out.data());
    if (kind == CompareKind::Ne) {
      ctx.alu().op_andnot(ctx.full_plane(), out.data(), out.data(), pw);
    }
    return out;
  }
  std::vector<PlaneWord> eq = ctx.acquire_flag_plane();
  ctx.alu().compare_lt(a.data(), b.data(), h, pw, ctx.full_plane(), out.data(), eq.data());
  if (kind == CompareKind::Le) {
    ctx.alu().op_or(out.data(), eq.data(), out.data(), pw);
  }
  ctx.release_flag_plane(std::move(eq));
  return out;
}

/// Materializes a scalar's planes so the vector compare bodies can be
/// reused for the Pint-vs-scalar comparisons.
std::vector<PlaneWord> scalar_planes(Context& ctx, Word value) {
  std::vector<PlaneWord> out = ctx.acquire_value_planes();
  ctx.alu().fill_scalar(value, ctx.field().bits(), ctx.geometry().plane_words(),
                         ctx.full_plane(), out.data());
  return out;
}

}  // namespace

Pbool operator==(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = compare_planes(ctx, a.planes_, b.planes_, CompareKind::Eq);
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] == pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator!=(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = compare_planes(ctx, a.planes_, b.planes_, CompareKind::Ne);
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] != pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator<(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = compare_planes(ctx, a.planes_, b.planes_, CompareKind::Lt);
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] < pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator<=(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = compare_planes(ctx, a.planes_, b.planes_, CompareKind::Le);
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] <= pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> bp = scalar_planes(ctx, b);
    std::vector<PlaneWord> out = compare_planes(ctx, a.planes_, bp, CompareKind::Eq);
    ctx.release_value_planes(std::move(bp));
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(ctx, std::move(out),
                                          copy_driven_plane(ctx, a.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pa[pe] == b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pbool operator!=(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> bp = scalar_planes(ctx, b);
    std::vector<PlaneWord> out = compare_planes(ctx, a.planes_, bp, CompareKind::Ne);
    ctx.release_value_planes(std::move(bp));
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(ctx, std::move(out),
                                          copy_driven_plane(ctx, a.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pa[pe] != b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pbool operator<(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> bp = scalar_planes(ctx, b);
    std::vector<PlaneWord> out = compare_planes(ctx, a.planes_, bp, CompareKind::Lt);
    ctx.release_value_planes(std::move(bp));
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(ctx, std::move(out),
                                          copy_driven_plane(ctx, a.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pa[pe] < b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pint select(const Pbool& cond, const Pint& a, const Pint& b) {
  check_same_context(cond.context(), a.context());
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> out =
        blend_planes(ctx, cond.plane_view().data(), a.planes_, b.planes_);
    ctx.machine().charge_alu();
    // Driven-ness follows the SELECTED operand per element (a tainted
    // condition taints everything).
    std::vector<PlaneWord> driven;
    const auto cd = cond.driven_plane_view();
    if (!a.driven_plane_.empty() || !b.driven_plane_.empty() || !cd.empty()) {
      driven = ctx.acquire_flag_plane();
      const PlaneWord* pc = cond.plane_view().data();
      const PlaneWord* pad =
          a.driven_plane_.empty() ? ctx.full_plane() : a.driven_plane_.data();
      const PlaneWord* pbd =
          b.driven_plane_.empty() ? ctx.full_plane() : b.driven_plane_.data();
      const PlaneWord* pcd = cd.empty() ? ctx.full_plane() : cd.data();
      PlaneWord* pdv = driven.data();
      for (std::size_t i = 0; i < pw; ++i) {
        pdv[i] = ((pc[i] & pad[i]) | (pbd[i] & ~pc[i])) & pcd[i];
      }
      if (ctx.alu().equal(pdv, ctx.full_plane(), pw)) {
        ctx.release_flag_plane(std::move(driven));
        driven = {};
      }
    }
    return detail_access::raw_pint_planes(ctx, std::move(out), std::move(driven));
  }
  std::vector<Word> out = ctx.acquire_words();
  const auto cv = cond.values();
  const Flag* pc = cv.data();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pc[pe] ? pa[pe] : pb[pe];
  });
  ctx.machine().charge_alu();
  // Driven-ness follows the SELECTED operand per element (a tainted
  // condition taints everything).
  std::vector<Flag> driven;
  if (!a.driven_.empty() || !b.driven_.empty() || !cond.driven_view().empty()) {
    driven = ctx.acquire_flags();
    const auto cd = cond.driven_view();
    const Flag* pad = a.driven_.empty() ? nullptr : a.driven_.data();
    const Flag* pbd = b.driven_.empty() ? nullptr : b.driven_.data();
    const Flag* pcd = cd.empty() ? nullptr : cd.data();
    Flag* pdv = driven.data();
    bool any_undriven = false;
    for (std::size_t pe = 0; pe < driven.size(); ++pe) {
      const Flag chosen = pc[pe] ? (pad == nullptr ? Flag{1} : pad[pe])
                                 : (pbd == nullptr ? Flag{1} : pbd[pe]);
      const Flag cond_ok = pcd == nullptr ? Flag{1} : pcd[pe];
      pdv[pe] = static_cast<Flag>(chosen & cond_ok);
      any_undriven |= (pdv[pe] == 0);
    }
    if (!any_undriven) {
      ctx.release_flags(std::move(driven));
      driven = {};
    }
  }
  return detail_access::raw_pint(ctx, std::move(out), std::move(driven));
}

// ---------------------------------------------------------------------------
// Pbool
// ---------------------------------------------------------------------------

Pbool::Pbool(Context& ctx, bool init) : ctx_(&ctx) {
  if (ctx.bitplane()) {
    plane_ = ctx.acquire_flag_plane();
    if (init) {
      ctx.alu().op_copy(ctx.full_plane(), plane_.data(), plane_.size());
    } else {
      ctx.alu().op_zero(plane_.data(), plane_.size());
    }
  } else {
    data_ = ctx.acquire_flags();
    std::fill(data_.begin(), data_.end(), init ? Flag{1} : Flag{0});
  }
  ctx.machine().charge_alu();
}

Pbool::Pbool(Context& ctx, std::span<const Flag> values) : ctx_(&ctx) {
  PPA_REQUIRE(values.size() == ctx.pe_count(), "initializer must cover the whole array");
  if (ctx.bitplane()) {
    plane_ = ctx.acquire_flag_plane();
    sim::pack_flags(ctx.geometry(), values, plane_.data());
  } else {
    data_ = ctx.acquire_flags();
    for (std::size_t pe = 0; pe < data_.size(); ++pe) {
      data_[pe] = values[pe] ? Flag{1} : Flag{0};
    }
  }
  ctx.machine().charge_alu();
}

Pbool::Pbool(const Pbool& other) : ctx_(other.ctx_) {
  if (ctx_->bitplane()) {
    plane_ = ctx_->acquire_flag_plane();
    plane_.resize(other.plane_.size());
    std::copy(other.plane_.begin(), other.plane_.end(), plane_.begin());
    if (!other.driven_plane_.empty()) {
      driven_plane_ = ctx_->acquire_flag_plane();
      driven_plane_.resize(other.driven_plane_.size());
      std::copy(other.driven_plane_.begin(), other.driven_plane_.end(),
                driven_plane_.begin());
    }
    return;
  }
  data_ = ctx_->acquire_flags();
  data_.resize(other.data_.size());
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  if (!other.driven_.empty()) {
    driven_ = ctx_->acquire_flags();
    driven_.resize(other.driven_.size());
    std::copy(other.driven_.begin(), other.driven_.end(), driven_.begin());
  }
}

Pbool::~Pbool() {
  if (ctx_ != nullptr) {
    ctx_->release_flags(std::move(data_));
    ctx_->release_flags(std::move(driven_));
    ctx_->release_flag_plane(std::move(plane_));
    ctx_->release_flag_plane(std::move(driven_plane_));
  }
}

Pbool& Pbool::operator=(const Pbool& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  Context& ctx = *ctx_;
  if (ctx.bitplane()) {
    const PlaneWord* pm = ctx.mask_plane();
    check_store_driven_plane(ctx, pm, rhs.driven_plane_);
    ctx.machine().charge_alu();
    const std::size_t pw = ctx.geometry().plane_words();
    ctx.alu().masked_assign(pm, rhs.plane_.data(), plane_.data(), pw);
    if (!driven_plane_.empty()) {
      ctx.alu().op_or(driven_plane_.data(), pm, driven_plane_.data(), pw);
    }
    return *this;
  }
  const auto mask = ctx.mask();
  check_store_driven(ctx, mask, rhs.driven_);
  ctx.machine().charge_alu();
  const Flag* pm = mask.data();
  const Flag* ps = rhs.data_.data();
  Flag* pd = data_.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::masked_assign_flags(pm, ps, pd, begin, end);
  });
  if (!driven_.empty()) {
    Flag* pv = driven_.data();
    for (std::size_t pe = 0; pe < driven_.size(); ++pe) {
      if (pm[pe]) pv[pe] = 1;
    }
  }
  return *this;
}

Pbool& Pbool::operator=(Pbool&& rhs) { return *this = static_cast<const Pbool&>(rhs); }

void Pbool::store_all(const Pbool& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  if (ctx_->bitplane()) {
    check_store_all_driven_plane(*ctx_, rhs.driven_plane_);
    ctx_->machine().charge_alu();
    plane_ = rhs.plane_;
    driven_plane_.clear();
    return;
  }
  check_store_all_driven(*ctx_, rhs.driven_);
  ctx_->machine().charge_alu();
  data_ = rhs.data_;
  driven_.clear();
}

void Pbool::store_all(bool value) {
  ctx_->machine().charge_alu();
  if (ctx_->bitplane()) {
    if (value) {
      ctx_->alu().op_copy(ctx_->full_plane(), plane_.data(), plane_.size());
    } else {
      ctx_->alu().op_zero(plane_.data(), plane_.size());
    }
    driven_plane_.clear();
    return;
  }
  std::fill(data_.begin(), data_.end(), value ? Flag{1} : Flag{0});
  driven_.clear();
}

bool Pbool::at(std::size_t pe) const {
  PPA_REQUIRE(pe < ctx_->pe_count(), "PE index out of range");
  if (ctx_->bitplane()) {
    const auto& g = ctx_->geometry();
    return sim::plane_get(g, plane_.data(), pe / g.n, pe % g.n);
  }
  return data_[pe] != 0;
}

bool Pbool::at(std::size_t row, std::size_t col) const {
  const std::size_t n = ctx_->n();
  PPA_REQUIRE(row < n && col < n, "PE coordinates out of range");
  return at(row * n + col);
}

std::size_t Pbool::count() const noexcept {
  if (ctx_->bitplane()) {
    return sim::plane_popcount(ctx_->geometry(), plane_.data());
  }
  std::size_t c = 0;
  for (const Flag f : data_) c += (f != 0);
  return c;
}

Pbool operator!(const Pbool& a) {
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = ctx.acquire_flag_plane();
    ctx.alu().op_andnot(ctx.full_plane(), a.plane_.data(), out.data(), out.size());
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(ctx, std::move(out),
                                          copy_driven_plane(ctx, a.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::not_flags(pa, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), copy_driven(ctx, a.driven_));
}

Pbool operator&(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = ctx.acquire_flag_plane();
    ctx.alu().op_and(a.plane_.data(), b.plane_.data(), out.data(), out.size());
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  const Flag* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::and_flags(pa, pb, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator|(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = ctx.acquire_flag_plane();
    ctx.alu().op_or(a.plane_.data(), b.plane_.data(), out.data(), out.size());
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  const Flag* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::or_flags(pa, pb, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator^(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  if (ctx.bitplane()) {
    std::vector<PlaneWord> out = ctx.acquire_flag_plane();
    ctx.alu().op_xor(a.plane_.data(), b.plane_.data(), out.data(), out.size());
    ctx.machine().charge_alu();
    return detail_access::raw_pbool_plane(
        ctx, std::move(out), combine_driven_planes(ctx, a.driven_plane_, b.driven_plane_));
  }
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  const Flag* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::xor_flags(pa, pb, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pbool& a, const Pbool& b) { return !(a ^ b); }
Pbool operator!=(const Pbool& a, const Pbool& b) { return a ^ b; }

Pint Pbool::to_pint() const {
  Context& ctx = *ctx_;
  if (ctx.bitplane()) {
    const std::size_t pw = ctx.geometry().plane_words();
    std::vector<PlaneWord> out = ctx.acquire_value_planes();
    ctx.alu().op_zero(out.data(), out.size());
    ctx.alu().op_copy(plane_.data(), out.data(), pw);
    ctx.machine().charge_alu();
    return detail_access::raw_pint_planes(ctx, std::move(out),
                                          copy_driven_plane(ctx, driven_plane_));
  }
  std::vector<Word> out = ctx.acquire_words();
  const Flag* ps = data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = ps[pe] ? 1u : 0u;
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out), copy_driven(ctx, driven_));
}

// ---------------------------------------------------------------------------
// Coordinate constants
// ---------------------------------------------------------------------------

Pint row_of(Context& ctx) {
  return Pint(ctx, ctx.machine().row_index());
}

Pint col_of(Context& ctx) {
  return Pint(ctx, ctx.machine().col_index());
}

namespace {

Pbool driven_mask_impl(Context& ctx, std::span<const Flag> d) {
  ctx.machine().charge_alu();
  std::vector<Flag> bits = ctx.acquire_flags();
  if (d.empty()) {
    std::fill(bits.begin(), bits.end(), Flag{1});
  } else {
    const Flag* pd = d.data();
    Flag* po = bits.data();
    for (std::size_t pe = 0; pe < bits.size(); ++pe) po[pe] = pd[pe] ? Flag{1} : Flag{0};
  }
  return detail_access::raw_pbool(ctx, std::move(bits), {});
}

Pbool driven_mask_plane_impl(Context& ctx, std::span<const PlaneWord> d) {
  ctx.machine().charge_alu();
  std::vector<PlaneWord> bits = ctx.acquire_flag_plane();
  ctx.alu().op_copy(d.empty() ? ctx.full_plane() : d.data(), bits.data(), bits.size());
  return detail_access::raw_pbool_plane(ctx, std::move(bits), {});
}

}  // namespace

Pbool driven_mask(const Pint& value) {
  Context& ctx = value.context();
  if (ctx.bitplane()) return driven_mask_plane_impl(ctx, value.driven_plane_view());
  return driven_mask_impl(ctx, value.driven_view());
}

Pbool driven_mask(const Pbool& value) {
  Context& ctx = value.context();
  if (ctx.bitplane()) return driven_mask_plane_impl(ctx, value.driven_plane_view());
  return driven_mask_impl(ctx, value.driven_view());
}

namespace detail {

Pint make_bus_pint(Context& ctx, std::vector<Word> values, std::vector<Flag> driven) {
  return detail_access::raw_pint(ctx, std::move(values), std::move(driven));
}

Pbool make_bus_pbool(Context& ctx, std::vector<Flag> values, std::vector<Flag> driven) {
  return detail_access::raw_pbool(ctx, std::move(values), std::move(driven));
}

Pint make_bus_pint_planes(Context& ctx, std::vector<PlaneWord> planes,
                          std::vector<PlaneWord> driven) {
  return detail_access::raw_pint_planes(ctx, std::move(planes), std::move(driven));
}

Pbool make_bus_pbool_plane(Context& ctx, std::vector<PlaneWord> plane,
                           std::vector<PlaneWord> driven) {
  return detail_access::raw_pbool_plane(ctx, std::move(plane), std::move(driven));
}

}  // namespace detail

}  // namespace ppa::ppc
