#include "ppc/parallel.hpp"

#include <sstream>

#include "util/check.hpp"

namespace ppa::ppc {

/// Private-access backdoor for primitives.cpp: builds parallel values that
/// carry bus-driven masks without charging a store instruction (the bus
/// primitive itself already charged the cycle).
class detail_access {
 public:
  static Pint raw_pint(Context& ctx, std::vector<Word> data, std::vector<Flag> driven) {
    Pint p(&ctx);
    p.data_ = std::move(data);
    p.driven_ = std::move(driven);
    PPA_ASSERT(p.data_.size() == ctx.pe_count(), "raw pint size mismatch");
    return p;
  }

  static Pbool raw_pbool(Context& ctx, std::vector<Flag> data, std::vector<Flag> driven) {
    Pbool p(&ctx);
    p.data_ = std::move(data);
    p.driven_ = std::move(driven);
    PPA_ASSERT(p.data_.size() == ctx.pe_count(), "raw pbool size mismatch");
    return p;
  }
};

namespace {

void check_same_context(const Context& a, const Context& b) {
  PPA_REQUIRE(&a == &b, "parallel operands belong to different machines");
}

/// Elementwise AND of the operands' driven masks; empty when both are
/// fully driven.
std::vector<Flag> combine_driven(Context& ctx, std::span<const Flag> a,
                                 std::span<const Flag> b) {
  if (a.empty() && b.empty()) return {};
  std::vector<Flag> out(ctx.pe_count(), Flag{1});
  for (std::size_t pe = 0; pe < out.size(); ++pe) {
    if (!a.empty()) out[pe] = static_cast<Flag>(out[pe] & a[pe]);
    if (!b.empty()) out[pe] = static_cast<Flag>(out[pe] & b[pe]);
  }
  return out;
}

[[noreturn]] void fail_undriven(const Context& ctx, std::size_t pe) {
  std::ostringstream os;
  const std::size_t n = ctx.n();
  os << "PE (" << pe / n << ", " << pe % n
     << ") consumed an undriven bus value; with BusTopology::Linear this usually means a "
        "broadcast relied on ring wrap-around (see DESIGN.md), or an empty candidate set "
        "drove nothing onto the bus";
  throw util::ContractError(os.str());
}

/// Enforces the machine's UndrivenPolicy for a masked store of `rhs_driven`
/// (empty = fully driven, nothing to check).
void check_store_driven(Context& ctx, std::span<const Flag> mask,
                        std::span<const Flag> rhs_driven) {
  if (rhs_driven.empty()) return;
  if (ctx.machine().config().undriven != sim::UndrivenPolicy::Error) return;
  for (std::size_t pe = 0; pe < mask.size(); ++pe) {
    if (mask[pe] && !rhs_driven[pe]) fail_undriven(ctx, pe);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pint
// ---------------------------------------------------------------------------

Pint::Pint(Context& ctx, Word init) : ctx_(&ctx), data_(ctx.pe_count(), init) {
  PPA_REQUIRE(ctx.field().representable(init), "initializer does not fit in the h-bit field");
  ctx.machine().charge_alu();
}

Pint::Pint(Context& ctx, std::span<const Word> values)
    : ctx_(&ctx), data_(values.begin(), values.end()) {
  PPA_REQUIRE(values.size() == ctx.pe_count(), "initializer must cover the whole array");
  for (const Word v : data_) {
    PPA_REQUIRE(ctx.field().representable(v), "initializer value does not fit in the field");
  }
  ctx.machine().charge_alu();
}

Pint& Pint::operator=(const Pint& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  Context& ctx = *ctx_;
  const auto mask = ctx.mask();
  check_store_driven(ctx, mask, rhs.driven_);
  ctx.machine().charge_alu();
  // Self-assignment is harmless: each PE rewrites its own value.
  const auto& src = rhs.data_;
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      if (mask[pe]) data_[pe] = src[pe];
    }
  });
  if (!driven_.empty()) {
    // Written cells now hold defined values (undriven reads were rejected
    // or zeroed above).
    for (std::size_t pe = 0; pe < driven_.size(); ++pe) {
      if (mask[pe]) driven_[pe] = 1;
    }
  }
  return *this;
}

Pint& Pint::operator=(Pint&& rhs) { return *this = static_cast<const Pint&>(rhs); }

void Pint::store_all(const Pint& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  if (!rhs.driven_.empty() &&
      ctx_->machine().config().undriven == sim::UndrivenPolicy::Error) {
    for (std::size_t pe = 0; pe < rhs.driven_.size(); ++pe) {
      if (!rhs.driven_[pe]) fail_undriven(*ctx_, pe);
    }
  }
  ctx_->machine().charge_alu();
  data_ = rhs.data_;
  driven_.clear();
}

void Pint::store_all(Word value) {
  PPA_REQUIRE(ctx_->field().representable(value), "value does not fit in the h-bit field");
  ctx_->machine().charge_alu();
  std::fill(data_.begin(), data_.end(), value);
  driven_.clear();
}

Word Pint::at(std::size_t pe) const {
  PPA_REQUIRE(pe < data_.size(), "PE index out of range");
  return data_[pe];
}

Word Pint::at(std::size_t row, std::size_t col) const {
  const std::size_t n = ctx_->n();
  PPA_REQUIRE(row < n && col < n, "PE coordinates out of range");
  return data_[row * n + col];
}

Pbool Pint::bit(int j) const {
  PPA_REQUIRE(j >= 0 && j < ctx_->field().bits(), "bit plane index out of range");
  Context& ctx = *ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      out[pe] = static_cast<Flag>((data_[pe] >> j) & 1u);
    }
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  std::vector<Flag>(driven_));
}

Pint Pint::or_bit(int j, const Pbool& flag) const {
  PPA_REQUIRE(j >= 0 && j < ctx_->field().bits(), "bit plane index out of range");
  check_same_context(*ctx_, flag.context());
  Context& ctx = *ctx_;
  const auto fv = flag.values();
  std::vector<Word> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      out[pe] = data_[pe] | (fv[pe] ? (Word{1} << j) : Word{0});
    }
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, driven_, flag.driven_view()));
}

// ---------------------------------------------------------------------------
// The operator bodies need the operands' driven masks; they are friends so
// they touch the members directly rather than going through helpers.
// ---------------------------------------------------------------------------

Pint operator+(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  const auto& field = ctx.field();
  std::vector<Word> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) out[pe] = field.add(a.data_[pe], b.data_[pe]);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pint operator+(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  PPA_REQUIRE(ctx.field().representable(b), "scalar does not fit in the h-bit field");
  const auto& field = ctx.field();
  std::vector<Word> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) out[pe] = field.add(a.data_[pe], b);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pint emin(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Word> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] < b.data_[pe] ? a.data_[pe] : b.data_[pe];
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pint emax(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Word> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] > b.data_[pe] ? a.data_[pe] : b.data_[pe];
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] == b.data_[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator!=(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] != b.data_[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator<(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] < b.data_[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator<=(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] <= b.data_[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] == b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pbool operator!=(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] != b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pbool operator<(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = a.data_[pe] < b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pint select(const Pbool& cond, const Pint& a, const Pint& b) {
  check_same_context(cond.context(), a.context());
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Word> out(ctx.pe_count());
  const auto cv = cond.values();
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = cv[pe] ? a.data_[pe] : b.data_[pe];
  });
  ctx.machine().charge_alu();
  // Driven-ness follows the SELECTED operand per element (a tainted
  // condition taints everything).
  std::vector<Flag> driven;
  if (!a.driven_.empty() || !b.driven_.empty() || !cond.driven_view().empty()) {
    driven.assign(ctx.pe_count(), Flag{1});
    const auto cd = cond.driven_view();
    bool any_undriven = false;
    for (std::size_t pe = 0; pe < driven.size(); ++pe) {
      const Flag chosen = cv[pe] ? (a.driven_.empty() ? Flag{1} : a.driven_[pe])
                                 : (b.driven_.empty() ? Flag{1} : b.driven_[pe]);
      const Flag cond_ok = cd.empty() ? Flag{1} : cd[pe];
      driven[pe] = static_cast<Flag>(chosen & cond_ok);
      any_undriven |= (driven[pe] == 0);
    }
    if (!any_undriven) driven.clear();
  }
  return detail_access::raw_pint(ctx, std::move(out), std::move(driven));
}

// ---------------------------------------------------------------------------
// Pbool
// ---------------------------------------------------------------------------

Pbool::Pbool(Context& ctx, bool init)
    : ctx_(&ctx), data_(ctx.pe_count(), init ? Flag{1} : Flag{0}) {
  ctx.machine().charge_alu();
}

Pbool::Pbool(Context& ctx, std::span<const Flag> values)
    : ctx_(&ctx), data_(values.begin(), values.end()) {
  PPA_REQUIRE(values.size() == ctx.pe_count(), "initializer must cover the whole array");
  for (Flag& f : data_) f = f ? Flag{1} : Flag{0};
  ctx.machine().charge_alu();
}

Pbool& Pbool::operator=(const Pbool& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  Context& ctx = *ctx_;
  const auto mask = ctx.mask();
  check_store_driven(ctx, mask, rhs.driven_);
  ctx.machine().charge_alu();
  const auto& src = rhs.data_;
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      if (mask[pe]) data_[pe] = src[pe];
    }
  });
  if (!driven_.empty()) {
    for (std::size_t pe = 0; pe < driven_.size(); ++pe) {
      if (mask[pe]) driven_[pe] = 1;
    }
  }
  return *this;
}

Pbool& Pbool::operator=(Pbool&& rhs) { return *this = static_cast<const Pbool&>(rhs); }

void Pbool::store_all(const Pbool& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  if (!rhs.driven_.empty() &&
      ctx_->machine().config().undriven == sim::UndrivenPolicy::Error) {
    for (std::size_t pe = 0; pe < rhs.driven_.size(); ++pe) {
      if (!rhs.driven_[pe]) fail_undriven(*ctx_, pe);
    }
  }
  ctx_->machine().charge_alu();
  data_ = rhs.data_;
  driven_.clear();
}

void Pbool::store_all(bool value) {
  ctx_->machine().charge_alu();
  std::fill(data_.begin(), data_.end(), value ? Flag{1} : Flag{0});
  driven_.clear();
}

bool Pbool::at(std::size_t pe) const {
  PPA_REQUIRE(pe < data_.size(), "PE index out of range");
  return data_[pe] != 0;
}

bool Pbool::at(std::size_t row, std::size_t col) const {
  const std::size_t n = ctx_->n();
  PPA_REQUIRE(row < n && col < n, "PE coordinates out of range");
  return data_[row * n + col] != 0;
}

std::size_t Pbool::count() const noexcept {
  std::size_t c = 0;
  for (const Flag f : data_) c += (f != 0);
  return c;
}

Pbool operator!(const Pbool& a) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) out[pe] = a.data_[pe] ? Flag{0} : Flag{1};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), std::vector<Flag>(a.driven_));
}

Pbool operator&(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = static_cast<Flag>(a.data_[pe] & b.data_[pe]);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator|(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = static_cast<Flag>(a.data_[pe] | b.data_[pe]);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator^(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      out[pe] = static_cast<Flag>(a.data_[pe] ^ b.data_[pe]);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pbool& a, const Pbool& b) { return !(a ^ b); }
Pbool operator!=(const Pbool& a, const Pbool& b) { return a ^ b; }

Pint Pbool::to_pint() const {
  Context& ctx = *ctx_;
  std::vector<Word> out(ctx.pe_count());
  ctx.machine().for_each_pe([&](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) out[pe] = data_[pe] ? 1u : 0u;
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out), std::vector<Flag>(driven_));
}

// ---------------------------------------------------------------------------
// Coordinate constants
// ---------------------------------------------------------------------------

Pint row_of(Context& ctx) {
  return Pint(ctx, ctx.machine().row_index());
}

Pint col_of(Context& ctx) {
  return Pint(ctx, ctx.machine().col_index());
}

Pbool driven_mask(const Pint& value) {
  Context& ctx = value.context();
  ctx.machine().charge_alu();
  const auto d = value.driven_view();
  std::vector<Flag> bits(ctx.pe_count(), Flag{1});
  for (std::size_t pe = 0; pe < bits.size(); ++pe) {
    if (!d.empty()) bits[pe] = d[pe] ? Flag{1} : Flag{0};
  }
  return detail_access::raw_pbool(ctx, std::move(bits), {});
}

Pbool driven_mask(const Pbool& value) {
  Context& ctx = value.context();
  ctx.machine().charge_alu();
  const auto d = value.driven_view();
  std::vector<Flag> bits(ctx.pe_count(), Flag{1});
  for (std::size_t pe = 0; pe < bits.size(); ++pe) {
    if (!d.empty()) bits[pe] = d[pe] ? Flag{1} : Flag{0};
  }
  return detail_access::raw_pbool(ctx, std::move(bits), {});
}

namespace detail {

Pint make_bus_pint(Context& ctx, std::vector<Word> values, std::vector<Flag> driven) {
  return detail_access::raw_pint(ctx, std::move(values), std::move(driven));
}

Pbool make_bus_pbool(Context& ctx, std::vector<Flag> values, std::vector<Flag> driven) {
  return detail_access::raw_pbool(ctx, std::move(values), std::move(driven));
}

}  // namespace detail

}  // namespace ppa::ppc
