#include "ppc/parallel.hpp"

#include <algorithm>
#include <sstream>

#include "ppc/flag_sweep.hpp"
#include "util/check.hpp"

namespace ppa::ppc {

/// Private-access backdoor for primitives.cpp: builds parallel values that
/// carry bus-driven masks without charging a store instruction (the bus
/// primitive itself already charged the cycle).
class detail_access {
 public:
  static Pint raw_pint(Context& ctx, std::vector<Word> data, std::vector<Flag> driven) {
    Pint p(&ctx);
    p.data_ = std::move(data);
    p.driven_ = std::move(driven);
    PPA_ASSERT(p.data_.size() == ctx.pe_count(), "raw pint size mismatch");
    return p;
  }

  static Pbool raw_pbool(Context& ctx, std::vector<Flag> data, std::vector<Flag> driven) {
    Pbool p(&ctx);
    p.data_ = std::move(data);
    p.driven_ = std::move(driven);
    PPA_ASSERT(p.data_.size() == ctx.pe_count(), "raw pbool size mismatch");
    return p;
  }
};

namespace {

void check_same_context(const Context& a, const Context& b) {
  PPA_REQUIRE(&a == &b, "parallel operands belong to different machines");
}

/// Elementwise AND of the operands' driven masks; empty when both are
/// fully driven.
std::vector<Flag> combine_driven(Context& ctx, std::span<const Flag> a,
                                 std::span<const Flag> b) {
  if (a.empty() && b.empty()) return {};
  std::vector<Flag> out = ctx.acquire_flags();
  // Raw pointers: the elementwise sweeps below are the simulator's hot
  // path and must stay cheap even in unoptimized builds, where the
  // vector/span operator[] calls don't inline.
  const Flag* pa = a.empty() ? nullptr : a.data();
  const Flag* pb = b.empty() ? nullptr : b.data();
  Flag* po = out.data();
  const std::size_t count = out.size();
  for (std::size_t pe = 0; pe < count; ++pe) {
    Flag f = 1;
    if (pa != nullptr) f = static_cast<Flag>(f & pa[pe]);
    if (pb != nullptr) f = static_cast<Flag>(f & pb[pe]);
    po[pe] = f;
  }
  return out;
}

/// Arena-backed clone of a driven mask; empty in, empty out.
std::vector<Flag> copy_driven(Context& ctx, std::span<const Flag> driven) {
  if (driven.empty()) return {};
  std::vector<Flag> out = ctx.acquire_flags();
  std::copy(driven.begin(), driven.end(), out.begin());
  return out;
}

[[noreturn]] void fail_undriven(const Context& ctx, std::size_t pe) {
  std::ostringstream os;
  const std::size_t n = ctx.n();
  os << "PE (" << pe / n << ", " << pe % n
     << ") consumed an undriven bus value; with BusTopology::Linear this usually means a "
        "broadcast relied on ring wrap-around (see DESIGN.md), or an empty candidate set "
        "drove nothing onto the bus";
  throw util::ContractError(os.str());
}

/// Enforces the machine's UndrivenPolicy for a masked store of `rhs_driven`
/// (empty = fully driven, nothing to check).
void check_store_driven(Context& ctx, std::span<const Flag> mask,
                        std::span<const Flag> rhs_driven) {
  if (rhs_driven.empty()) return;
  if (ctx.machine().config().undriven != sim::UndrivenPolicy::Error) return;
  for (std::size_t pe = 0; pe < mask.size(); ++pe) {
    if (mask[pe] && !rhs_driven[pe]) fail_undriven(ctx, pe);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pint
// ---------------------------------------------------------------------------

Pint::Pint(Context& ctx, Word init) : ctx_(&ctx), data_(ctx.acquire_words()) {
  PPA_REQUIRE(ctx.field().representable(init), "initializer does not fit in the h-bit field");
  std::fill(data_.begin(), data_.end(), init);
  ctx.machine().charge_alu();
}

Pint::Pint(Context& ctx, std::span<const Word> values)
    : ctx_(&ctx), data_(ctx.acquire_words()) {
  PPA_REQUIRE(values.size() == ctx.pe_count(), "initializer must cover the whole array");
  for (const Word v : values) {
    PPA_REQUIRE(ctx.field().representable(v), "initializer value does not fit in the field");
  }
  std::copy(values.begin(), values.end(), data_.begin());
  ctx.machine().charge_alu();
}

Pint::Pint(const Pint& other) : ctx_(other.ctx_) {
  data_ = ctx_->acquire_words();
  data_.resize(other.data_.size());  // no-op except for moved-from shells
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  if (!other.driven_.empty()) {
    driven_ = ctx_->acquire_flags();
    driven_.resize(other.driven_.size());
    std::copy(other.driven_.begin(), other.driven_.end(), driven_.begin());
  }
}

Pint::~Pint() {
  if (ctx_ != nullptr) {
    ctx_->release_words(std::move(data_));
    ctx_->release_flags(std::move(driven_));
  }
}

Pint& Pint::operator=(const Pint& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  Context& ctx = *ctx_;
  const auto mask = ctx.mask();
  check_store_driven(ctx, mask, rhs.driven_);
  ctx.machine().charge_alu();
  // Self-assignment is harmless: each PE rewrites its own value.
  const Flag* pm = mask.data();
  const Word* ps = rhs.data_.data();
  Word* pd = data_.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      if (pm[pe]) pd[pe] = ps[pe];
    }
  });
  if (!driven_.empty()) {
    // Written cells now hold defined values (undriven reads were rejected
    // or zeroed above).
    Flag* pv = driven_.data();
    for (std::size_t pe = 0; pe < driven_.size(); ++pe) {
      if (pm[pe]) pv[pe] = 1;
    }
  }
  return *this;
}

Pint& Pint::operator=(Pint&& rhs) { return *this = static_cast<const Pint&>(rhs); }

void Pint::store_all(const Pint& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  if (!rhs.driven_.empty() &&
      ctx_->machine().config().undriven == sim::UndrivenPolicy::Error) {
    for (std::size_t pe = 0; pe < rhs.driven_.size(); ++pe) {
      if (!rhs.driven_[pe]) fail_undriven(*ctx_, pe);
    }
  }
  ctx_->machine().charge_alu();
  data_ = rhs.data_;
  driven_.clear();
}

void Pint::store_all(Word value) {
  PPA_REQUIRE(ctx_->field().representable(value), "value does not fit in the h-bit field");
  ctx_->machine().charge_alu();
  std::fill(data_.begin(), data_.end(), value);
  driven_.clear();
}

Word Pint::at(std::size_t pe) const {
  PPA_REQUIRE(pe < data_.size(), "PE index out of range");
  return data_[pe];
}

Word Pint::at(std::size_t row, std::size_t col) const {
  const std::size_t n = ctx_->n();
  PPA_REQUIRE(row < n && col < n, "PE coordinates out of range");
  return data_[row * n + col];
}

Pbool Pint::bit(int j) const {
  PPA_REQUIRE(j >= 0 && j < ctx_->field().bits(), "bit plane index out of range");
  Context& ctx = *ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* ps = data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      po[pe] = static_cast<Flag>((ps[pe] >> j) & 1u);
    }
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), copy_driven(ctx, driven_));
}

Pint Pint::or_bit(int j, const Pbool& flag) const {
  PPA_REQUIRE(j >= 0 && j < ctx_->field().bits(), "bit plane index out of range");
  check_same_context(*ctx_, flag.context());
  Context& ctx = *ctx_;
  std::vector<Word> out = ctx.acquire_words();
  const Flag* pf = flag.values().data();
  const Word* ps = data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) {
      po[pe] = ps[pe] | (pf[pe] ? (Word{1} << j) : Word{0});
    }
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, driven_, flag.driven_view()));
}

// ---------------------------------------------------------------------------
// The operator bodies need the operands' driven masks; they are friends so
// they touch the members directly rather than going through helpers.
// ---------------------------------------------------------------------------

Pint operator+(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  const auto& field = ctx.field();
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=, &field](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = field.add(pa[pe], pb[pe]);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pint operator+(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  PPA_REQUIRE(ctx.field().representable(b), "scalar does not fit in the h-bit field");
  const auto& field = ctx.field();
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=, &field](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = field.add(pa[pe], b);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pint emin(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] < pb[pe] ? pa[pe] : pb[pe];
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pint emax(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Word> out = ctx.acquire_words();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] > pb[pe] ? pa[pe] : pb[pe];
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out),
                                 combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] == pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator!=(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] != pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator<(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] < pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator<=(const Pint& a, const Pint& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe)
      po[pe] = pa[pe] <= pb[pe] ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pa[pe] == b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pbool operator!=(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pa[pe] != b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pbool operator<(const Pint& a, Word b) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Word* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pa[pe] < b ? Flag{1} : Flag{0};
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), combine_driven(ctx, a.driven_, {}));
}

Pint select(const Pbool& cond, const Pint& a, const Pint& b) {
  check_same_context(cond.context(), a.context());
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Word> out = ctx.acquire_words();
  const auto cv = cond.values();
  const Flag* pc = cv.data();
  const Word* pa = a.data_.data();
  const Word* pb = b.data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = pc[pe] ? pa[pe] : pb[pe];
  });
  ctx.machine().charge_alu();
  // Driven-ness follows the SELECTED operand per element (a tainted
  // condition taints everything).
  std::vector<Flag> driven;
  if (!a.driven_.empty() || !b.driven_.empty() || !cond.driven_view().empty()) {
    driven = ctx.acquire_flags();
    const auto cd = cond.driven_view();
    const Flag* pad = a.driven_.empty() ? nullptr : a.driven_.data();
    const Flag* pbd = b.driven_.empty() ? nullptr : b.driven_.data();
    const Flag* pcd = cd.empty() ? nullptr : cd.data();
    Flag* pdv = driven.data();
    bool any_undriven = false;
    for (std::size_t pe = 0; pe < driven.size(); ++pe) {
      const Flag chosen = pc[pe] ? (pad == nullptr ? Flag{1} : pad[pe])
                                 : (pbd == nullptr ? Flag{1} : pbd[pe]);
      const Flag cond_ok = pcd == nullptr ? Flag{1} : pcd[pe];
      pdv[pe] = static_cast<Flag>(chosen & cond_ok);
      any_undriven |= (pdv[pe] == 0);
    }
    if (!any_undriven) {
      ctx.release_flags(std::move(driven));
      driven = {};
    }
  }
  return detail_access::raw_pint(ctx, std::move(out), std::move(driven));
}

// ---------------------------------------------------------------------------
// Pbool
// ---------------------------------------------------------------------------

Pbool::Pbool(Context& ctx, bool init) : ctx_(&ctx), data_(ctx.acquire_flags()) {
  std::fill(data_.begin(), data_.end(), init ? Flag{1} : Flag{0});
  ctx.machine().charge_alu();
}

Pbool::Pbool(Context& ctx, std::span<const Flag> values)
    : ctx_(&ctx), data_(ctx.acquire_flags()) {
  PPA_REQUIRE(values.size() == ctx.pe_count(), "initializer must cover the whole array");
  for (std::size_t pe = 0; pe < data_.size(); ++pe) {
    data_[pe] = values[pe] ? Flag{1} : Flag{0};
  }
  ctx.machine().charge_alu();
}

Pbool::Pbool(const Pbool& other) : ctx_(other.ctx_) {
  data_ = ctx_->acquire_flags();
  data_.resize(other.data_.size());
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  if (!other.driven_.empty()) {
    driven_ = ctx_->acquire_flags();
    driven_.resize(other.driven_.size());
    std::copy(other.driven_.begin(), other.driven_.end(), driven_.begin());
  }
}

Pbool::~Pbool() {
  if (ctx_ != nullptr) {
    ctx_->release_flags(std::move(data_));
    ctx_->release_flags(std::move(driven_));
  }
}

Pbool& Pbool::operator=(const Pbool& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  Context& ctx = *ctx_;
  const auto mask = ctx.mask();
  check_store_driven(ctx, mask, rhs.driven_);
  ctx.machine().charge_alu();
  const Flag* pm = mask.data();
  const Flag* ps = rhs.data_.data();
  Flag* pd = data_.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::masked_assign_flags(pm, ps, pd, begin, end);
  });
  if (!driven_.empty()) {
    Flag* pv = driven_.data();
    for (std::size_t pe = 0; pe < driven_.size(); ++pe) {
      if (pm[pe]) pv[pe] = 1;
    }
  }
  return *this;
}

Pbool& Pbool::operator=(Pbool&& rhs) { return *this = static_cast<const Pbool&>(rhs); }

void Pbool::store_all(const Pbool& rhs) {
  check_same_context(*ctx_, *rhs.ctx_);
  if (!rhs.driven_.empty() &&
      ctx_->machine().config().undriven == sim::UndrivenPolicy::Error) {
    for (std::size_t pe = 0; pe < rhs.driven_.size(); ++pe) {
      if (!rhs.driven_[pe]) fail_undriven(*ctx_, pe);
    }
  }
  ctx_->machine().charge_alu();
  data_ = rhs.data_;
  driven_.clear();
}

void Pbool::store_all(bool value) {
  ctx_->machine().charge_alu();
  std::fill(data_.begin(), data_.end(), value ? Flag{1} : Flag{0});
  driven_.clear();
}

bool Pbool::at(std::size_t pe) const {
  PPA_REQUIRE(pe < data_.size(), "PE index out of range");
  return data_[pe] != 0;
}

bool Pbool::at(std::size_t row, std::size_t col) const {
  const std::size_t n = ctx_->n();
  PPA_REQUIRE(row < n && col < n, "PE coordinates out of range");
  return data_[row * n + col] != 0;
}

std::size_t Pbool::count() const noexcept {
  std::size_t c = 0;
  for (const Flag f : data_) c += (f != 0);
  return c;
}

Pbool operator!(const Pbool& a) {
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::not_flags(pa, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out), copy_driven(ctx, a.driven_));
}

Pbool operator&(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  const Flag* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::and_flags(pa, pb, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator|(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  const Flag* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::or_flags(pa, pb, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator^(const Pbool& a, const Pbool& b) {
  check_same_context(*a.ctx_, *b.ctx_);
  Context& ctx = *a.ctx_;
  std::vector<Flag> out = ctx.acquire_flags();
  const Flag* pa = a.data_.data();
  const Flag* pb = b.data_.data();
  Flag* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    flag_sweep::xor_flags(pa, pb, po, begin, end);
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pbool(ctx, std::move(out),
                                  combine_driven(ctx, a.driven_, b.driven_));
}

Pbool operator==(const Pbool& a, const Pbool& b) { return !(a ^ b); }
Pbool operator!=(const Pbool& a, const Pbool& b) { return a ^ b; }

Pint Pbool::to_pint() const {
  Context& ctx = *ctx_;
  std::vector<Word> out = ctx.acquire_words();
  const Flag* ps = data_.data();
  Word* po = out.data();
  ctx.machine().for_each_pe([=](std::size_t begin, std::size_t end) {
    for (std::size_t pe = begin; pe < end; ++pe) po[pe] = ps[pe] ? 1u : 0u;
  });
  ctx.machine().charge_alu();
  return detail_access::raw_pint(ctx, std::move(out), copy_driven(ctx, driven_));
}

// ---------------------------------------------------------------------------
// Coordinate constants
// ---------------------------------------------------------------------------

Pint row_of(Context& ctx) {
  return Pint(ctx, ctx.machine().row_index());
}

Pint col_of(Context& ctx) {
  return Pint(ctx, ctx.machine().col_index());
}

namespace {

Pbool driven_mask_impl(Context& ctx, std::span<const Flag> d) {
  ctx.machine().charge_alu();
  std::vector<Flag> bits = ctx.acquire_flags();
  if (d.empty()) {
    std::fill(bits.begin(), bits.end(), Flag{1});
  } else {
    const Flag* pd = d.data();
    Flag* po = bits.data();
    for (std::size_t pe = 0; pe < bits.size(); ++pe) po[pe] = pd[pe] ? Flag{1} : Flag{0};
  }
  return detail_access::raw_pbool(ctx, std::move(bits), {});
}

}  // namespace

Pbool driven_mask(const Pint& value) {
  return driven_mask_impl(value.context(), value.driven_view());
}

Pbool driven_mask(const Pbool& value) {
  return driven_mask_impl(value.context(), value.driven_view());
}

namespace detail {

Pint make_bus_pint(Context& ctx, std::vector<Word> values, std::vector<Flag> driven) {
  return detail_access::raw_pint(ctx, std::move(values), std::move(driven));
}

Pbool make_bus_pbool(Context& ctx, std::vector<Flag> values, std::vector<Flag> driven) {
  return detail_access::raw_pbool(ctx, std::move(values), std::move(driven));
}

}  // namespace detail

}  // namespace ppa::ppc
