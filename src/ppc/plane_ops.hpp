#pragma once

// Word-parallel ALU kernels over bit planes (the BitPlane backend's
// counterpart of flag_sweep.hpp).
//
// Every kernel works on raw PlaneWord ranges under the canonical-pad
// invariant of sim/bit_planes.hpp: pad bits past column n-1 are zero on
// every input and must stay zero on every output. The invariant holds
// structurally: NOT is only ever computed under an AND with a plane whose
// pads are zero (the full-array mask, a where-mask, or another operand),
// so no kernel here needs to re-mask.
//
// Multi-plane (h-bit integer) operands store plane j at offset
// j * plane_words; `pw` is plane_words, `words` is a raw word count
// (callers pass h * pw to apply a bitwise op to all planes at once).

#include <cstddef>

#include "sim/bit_planes.hpp"

namespace ppa::ppc::plane_ops {

using sim::PlaneWord;

inline void op_and(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                   std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i] & b[i];
}

inline void op_or(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                  std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i] | b[i];
}

inline void op_xor(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                   std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i] ^ b[i];
}

/// out = a & ~b (also the masked NOT: op_andnot(full, x) = !x on valid lanes).
inline void op_andnot(const PlaneWord* a, const PlaneWord* b, PlaneWord* out,
                      std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i] & ~b[i];
}

inline void op_copy(const PlaneWord* a, PlaneWord* out, std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) out[i] = a[i];
}

inline void op_zero(PlaneWord* out, std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) out[i] = 0;
}

/// dst = mask ? src : dst — the masked write-back of operator=.
inline void masked_assign(const PlaneWord* mask, const PlaneWord* src, PlaneWord* dst,
                          std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) dst[i] ^= (dst[i] ^ src[i]) & mask[i];
}

/// out = cond ? a : b, elementwise (select()).
inline void blend(const PlaneWord* cond, const PlaneWord* a, const PlaneWord* b,
                  PlaneWord* out, std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) out[i] = b[i] ^ ((b[i] ^ a[i]) & cond[i]);
}

[[nodiscard]] inline bool all_zero(const PlaneWord* a, std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

[[nodiscard]] inline bool equal(const PlaneWord* a, const PlaneWord* b,
                                std::size_t words) noexcept {
  for (std::size_t i = 0; i < words; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Fills the h planes of an unmasked scalar: plane j = full where bit j of
/// `value` is set, zero otherwise.
inline void fill_scalar(sim::Word value, int h, std::size_t pw, const PlaneWord* full,
                        PlaneWord* out) noexcept {
  for (int j = 0; j < h; ++j) {
    PlaneWord* plane = out + static_cast<std::size_t>(j) * pw;
    if ((value >> j) & 1u) {
      op_copy(full, plane, pw);
    } else {
      op_zero(plane, pw);
    }
  }
}

/// Saturating h-bit add, matching util::HField::add lane for lane: the
/// result clamps to infinity (all ones) when the true sum is >= 2^h - 1,
/// i.e. on carry-out OR an all-ones sum. Ripple-carry over the planes with
/// two scratch planes; `out` must not alias `a` or `b`.
inline void add_sat(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                    const PlaneWord* full, PlaneWord* carry, PlaneWord* ones,
                    PlaneWord* out) noexcept {
  op_zero(carry, pw);
  op_copy(full, ones, pw);
  for (int j = 0; j < h; ++j) {
    const PlaneWord* aj = a + static_cast<std::size_t>(j) * pw;
    const PlaneWord* bj = b + static_cast<std::size_t>(j) * pw;
    PlaneWord* oj = out + static_cast<std::size_t>(j) * pw;
    for (std::size_t i = 0; i < pw; ++i) {
      const PlaneWord s = aj[i] ^ bj[i] ^ carry[i];
      carry[i] = (aj[i] & bj[i]) | (carry[i] & (aj[i] ^ bj[i]));
      oj[i] = s;
      ones[i] &= s;
    }
  }
  // carry|ones = lanes whose sum reached the clamp; force them to all ones.
  for (std::size_t i = 0; i < pw; ++i) ones[i] |= carry[i];
  for (int j = 0; j < h; ++j) {
    op_or(out + static_cast<std::size_t>(j) * pw, ones,
          out + static_cast<std::size_t>(j) * pw, pw);
  }
}

/// lt = (a < b) as a flag plane; eq (when non-null) additionally receives
/// (a == b). MSB-first plane scan; `lt`/`eq_scratch` must not alias inputs.
inline void compare_lt(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                       const PlaneWord* full, PlaneWord* lt,
                       PlaneWord* eq_scratch) noexcept {
  op_zero(lt, pw);
  op_copy(full, eq_scratch, pw);
  for (int j = h - 1; j >= 0; --j) {
    const PlaneWord* aj = a + static_cast<std::size_t>(j) * pw;
    const PlaneWord* bj = b + static_cast<std::size_t>(j) * pw;
    for (std::size_t i = 0; i < pw; ++i) {
      lt[i] |= eq_scratch[i] & bj[i] & ~aj[i];
      eq_scratch[i] &= ~(aj[i] ^ bj[i]);
    }
  }
}

/// eq = (a == b) as a flag plane.
inline void compare_eq(const PlaneWord* a, const PlaneWord* b, int h, std::size_t pw,
                       const PlaneWord* full, PlaneWord* eq) noexcept {
  op_copy(full, eq, pw);
  for (int j = 0; j < h; ++j) {
    const PlaneWord* aj = a + static_cast<std::size_t>(j) * pw;
    const PlaneWord* bj = b + static_cast<std::size_t>(j) * pw;
    for (std::size_t i = 0; i < pw; ++i) eq[i] &= ~(aj[i] ^ bj[i]);
  }
}

}  // namespace ppa::ppc::plane_ops
