// The PPC `where / elsewhere` control structure.
//
//   where (expression) <group 1>; elsewhere <group 2>;
//
// partitions the PEs: those satisfying the expression execute group 1,
// the rest group 2 (paper Section 2). Nested wheres AND-compose with the
// enclosing mask. In this eDSL:
//
//   where(ctx, cond, [&] { ... });                    // where only
//   where_else(ctx, cond, [&] { ... }, [&] { ... });  // where + elsewhere
//
// or RAII style when a lambda is inconvenient:
//
//   { WhereGuard g(ctx, cond);  SOW = W; }
//
// Exceptions propagate and still pop the mask (RAII).
#pragma once

#include <utility>

#include "ppc/parallel.hpp"

namespace ppa::ppc {

/// RAII mask scope: pushes `current & cond` (or `current & !cond`).
class WhereGuard {
 public:
  enum class Polarity { Where, Elsewhere };

  WhereGuard(Context& ctx, const Pbool& cond, Polarity polarity = Polarity::Where)
      : ctx_(ctx) {
    if (ctx.bitplane()) {
      if (polarity == Polarity::Where) {
        ctx.push_mask_and_plane(cond.plane_view().data());
      } else {
        ctx.push_mask_and_not_plane(cond.plane_view().data());
      }
    } else if (polarity == Polarity::Where) {
      ctx.push_mask_and(cond.values());
    } else {
      ctx.push_mask_and_not(cond.values());
    }
  }

  ~WhereGuard() { ctx_.pop_mask(); }

  WhereGuard(const WhereGuard&) = delete;
  WhereGuard& operator=(const WhereGuard&) = delete;

 private:
  Context& ctx_;
};

template <typename Body>
void where(Context& ctx, const Pbool& cond, Body&& body) {
  const WhereGuard guard(ctx, cond);
  std::forward<Body>(body)();
}

template <typename Then, typename Else>
void where_else(Context& ctx, const Pbool& cond, Then&& then_body, Else&& else_body) {
  {
    const WhereGuard guard(ctx, cond);
    std::forward<Then>(then_body)();
  }
  {
    const WhereGuard guard(ctx, cond, WhereGuard::Polarity::Elsewhere);
    std::forward<Else>(else_body)();
  }
}

}  // namespace ppa::ppc
