#pragma once

// Word-at-a-time sweeps over Flag lanes.
//
// Pbool lanes and where-mask entries are normalized to 0/1 bytes (every
// producer in parallel.cpp writes `? 1 : 0`, bit planes are `& 1`, and the
// wired-OR bus only ever combines those), so eight lanes pack into one
// uint64_t and a single bitwise op replaces eight byte ops. That matters
// here more than usual: these sweeps dominate the simulator's hot path and
// must stay fast even in unoptimized builds, where per-byte loops carry the
// full load/store bookkeeping per element.
//
// Each helper takes a [begin, end) PE range so it can run under
// Machine::for_each_pe chunking; full 8-byte words are aligned to absolute
// multiples of 8, so a word never straddles a chunk boundary and
// concurrent chunks never touch the same byte.

#include <cstdint>
#include <cstring>

#include "sim/bus.hpp"

namespace ppa::ppc::flag_sweep {

using sim::Flag;

inline constexpr std::uint64_t kOnes = 0x0101010101010101ull;
inline constexpr std::uint64_t kHigh = 0x8080808080808080ull;

/// 0x01 in every byte of `x` that was nonzero, 0x00 elsewhere.
inline std::uint64_t normalize8(std::uint64_t x) {
  return ((((x & ~kHigh) + ~kHigh) | x) & kHigh) >> 7;
}

/// out[pe] = a[pe] & b[pe] for pe in [begin, end). Inputs must be 0/1.
inline void and_flags(const Flag* a, const Flag* b, Flag* out, std::size_t begin,
                      std::size_t end) {
  std::size_t pe = begin;
  const std::size_t head = end < ((begin + 7) & ~std::size_t{7})
                               ? end
                               : ((begin + 7) & ~std::size_t{7});
  for (; pe < head; ++pe) out[pe] = static_cast<Flag>(a[pe] & b[pe]);
  for (; pe + 8 <= end; pe += 8) {
    std::uint64_t va;
    std::uint64_t vb;
    std::memcpy(&va, a + pe, 8);
    std::memcpy(&vb, b + pe, 8);
    const std::uint64_t vo = va & vb;
    std::memcpy(out + pe, &vo, 8);
  }
  for (; pe < end; ++pe) out[pe] = static_cast<Flag>(a[pe] & b[pe]);
}

/// out[pe] = a[pe] | b[pe] for pe in [begin, end). Inputs must be 0/1.
inline void or_flags(const Flag* a, const Flag* b, Flag* out, std::size_t begin,
                     std::size_t end) {
  std::size_t pe = begin;
  const std::size_t head = end < ((begin + 7) & ~std::size_t{7})
                               ? end
                               : ((begin + 7) & ~std::size_t{7});
  for (; pe < head; ++pe) out[pe] = static_cast<Flag>(a[pe] | b[pe]);
  for (; pe + 8 <= end; pe += 8) {
    std::uint64_t va;
    std::uint64_t vb;
    std::memcpy(&va, a + pe, 8);
    std::memcpy(&vb, b + pe, 8);
    const std::uint64_t vo = va | vb;
    std::memcpy(out + pe, &vo, 8);
  }
  for (; pe < end; ++pe) out[pe] = static_cast<Flag>(a[pe] | b[pe]);
}

/// out[pe] = a[pe] ^ b[pe] for pe in [begin, end). Inputs must be 0/1.
inline void xor_flags(const Flag* a, const Flag* b, Flag* out, std::size_t begin,
                      std::size_t end) {
  std::size_t pe = begin;
  const std::size_t head = end < ((begin + 7) & ~std::size_t{7})
                               ? end
                               : ((begin + 7) & ~std::size_t{7});
  for (; pe < head; ++pe) out[pe] = static_cast<Flag>(a[pe] ^ b[pe]);
  for (; pe + 8 <= end; pe += 8) {
    std::uint64_t va;
    std::uint64_t vb;
    std::memcpy(&va, a + pe, 8);
    std::memcpy(&vb, b + pe, 8);
    const std::uint64_t vo = va ^ vb;
    std::memcpy(out + pe, &vo, 8);
  }
  for (; pe < end; ++pe) out[pe] = static_cast<Flag>(a[pe] ^ b[pe]);
}

/// out[pe] = !a[pe] for pe in [begin, end). Input must be 0/1.
inline void not_flags(const Flag* a, Flag* out, std::size_t begin, std::size_t end) {
  std::size_t pe = begin;
  const std::size_t head = end < ((begin + 7) & ~std::size_t{7})
                               ? end
                               : ((begin + 7) & ~std::size_t{7});
  for (; pe < head; ++pe) out[pe] = static_cast<Flag>(a[pe] ^ 1u);
  for (; pe + 8 <= end; pe += 8) {
    std::uint64_t va;
    std::memcpy(&va, a + pe, 8);
    const std::uint64_t vo = va ^ kOnes;
    std::memcpy(out + pe, &vo, 8);
  }
  for (; pe < end; ++pe) out[pe] = static_cast<Flag>(a[pe] ^ 1u);
}

/// dst[pe] = mask[pe] ? src[pe] : dst[pe] for pe in [begin, end). The mask
/// must be 0/1 (where-masks are); multiplying by 0xFF widens each mask byte
/// to 0x00/0xFF without cross-byte carries, giving a branch-free blend.
inline void masked_assign_flags(const Flag* mask, const Flag* src, Flag* dst,
                                std::size_t begin, std::size_t end) {
  std::size_t pe = begin;
  const std::size_t head = end < ((begin + 7) & ~std::size_t{7})
                               ? end
                               : ((begin + 7) & ~std::size_t{7});
  for (; pe < head; ++pe) {
    if (mask[pe]) dst[pe] = src[pe];
  }
  for (; pe + 8 <= end; pe += 8) {
    std::uint64_t vm;
    std::uint64_t vs;
    std::uint64_t vd;
    std::memcpy(&vm, mask + pe, 8);
    std::memcpy(&vs, src + pe, 8);
    std::memcpy(&vd, dst + pe, 8);
    const std::uint64_t wide = vm * 0xFFull;
    const std::uint64_t vo = vd ^ ((vd ^ vs) & wide);
    std::memcpy(dst + pe, &vo, 8);
  }
  for (; pe < end; ++pe) {
    if (mask[pe]) dst[pe] = src[pe];
  }
}

/// out[pe] = top[pe] & bool(cond[pe]) (or its negation) for pe in
/// [begin, end). `top` must be 0/1; `cond` may hold arbitrary bytes, so it
/// is collapsed to 0/1 first.
inline void mask_and_cond(const Flag* top, const Flag* cond, Flag* out, bool negate,
                          std::size_t begin, std::size_t end) {
  const std::uint64_t flip = negate ? kOnes : 0;
  std::size_t pe = begin;
  const std::size_t head = end < ((begin + 7) & ~std::size_t{7})
                               ? end
                               : ((begin + 7) & ~std::size_t{7});
  for (; pe < head; ++pe) {
    const Flag c = static_cast<Flag>((cond[pe] ? 1u : 0u) ^ (negate ? 1u : 0u));
    out[pe] = static_cast<Flag>(top[pe] & c);
  }
  for (; pe + 8 <= end; pe += 8) {
    std::uint64_t vt;
    std::uint64_t vc;
    std::memcpy(&vt, top + pe, 8);
    std::memcpy(&vc, cond + pe, 8);
    const std::uint64_t vo = vt & (normalize8(vc) ^ flip);
    std::memcpy(out + pe, &vo, 8);
  }
  for (; pe < end; ++pe) {
    const Flag c = static_cast<Flag>((cond[pe] ? 1u : 0u) ^ (negate ? 1u : 0u));
    out[pe] = static_cast<Flag>(top[pe] & c);
  }
}

}  // namespace ppa::ppc::flag_sweep
