// Streaming Chrome trace_event exporter.
//
// Writes the JSON-array flavour of the trace_event format (loadable in
// Perfetto / chrome://tracing): one event object per line, streamed to the
// output as it happens, so a trace costs O(nesting depth) memory instead of
// the O(events) a RecordingTrace pays. Implements sim::TraceSink, so it can
// be attached directly to a Machine (every SIMD instruction becomes an
// instant event) or driven through an obs::Collector, which forwards
// instruction events and brackets solver phases as duration events.
//
// Timestamps are microseconds since the writer's construction (its epoch);
// Collector rebases merged span times onto this epoch before exporting.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string_view>

#include "sim/step_counter.hpp"
#include "sim/trace.hpp"

namespace ppa::obs {

/// Namespace-scope (not nested) so it can serve as a defaulted argument
/// below while the writer class is still incomplete.
struct ChromeTraceOptions {
  /// Stream an instant event per SIMD instruction (bulk ALU charges stay
  /// one event). Spans alone make much smaller traces; default on.
  bool instructions = true;
  std::string_view process_name = "ppa";
};

class ChromeTraceWriter final : public sim::TraceSink {
 public:
  using Options = ChromeTraceOptions;

  explicit ChromeTraceWriter(std::ostream& out, const Options& options = {});
  ~ChromeTraceWriter() override;

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  // sim::TraceSink — self-stamped instant events.
  void on_event(const sim::TraceEvent& event) override;
  void on_fault(const sim::FaultEvent& event) override;

  /// Duration-event pair, self-stamped ("B"/"E" phases).
  void begin_span(std::string_view name, std::int64_t arg = -1);
  void end_span(const sim::StepCounter& span_steps);

  /// Complete ("X") duration event with caller-provided times, already in
  /// this writer's epoch — used to export merged span trees post hoc.
  void complete_span(std::string_view name, double start_us, double duration_us,
                     std::uint32_t tid, const sim::StepCounter& span_steps,
                     std::int64_t arg = -1);

  /// Self-stamped counter ("C") sample: Perfetto renders each named series
  /// as a track graph. Used for the per-iteration active-lane telemetry.
  void counter(std::string_view name, double value);

  /// Closes the JSON array; idempotent, called by the destructor. The
  /// output is a valid JSON document from this point on.
  void finish();

  [[nodiscard]] std::size_t event_count() const noexcept { return events_written_; }
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }
  /// Microseconds from the writer's epoch to `t`.
  [[nodiscard]] double to_epoch_us(std::chrono::steady_clock::time_point t) const noexcept {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

 private:
  [[nodiscard]] double now_us() const noexcept {
    return to_epoch_us(std::chrono::steady_clock::now());
  }
  /// Opens one event object ("," handling + common fields); the caller
  /// appends args and calls close_event().
  void open_event(std::string_view name, char phase, double ts_us, std::uint32_t tid);
  void close_event();
  void write_steps_args(const sim::StepCounter& steps);

  std::ostream& out_;
  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t events_written_ = 0;
  bool finished_ = false;
};

}  // namespace ppa::obs
