// Tiny JSON DOM: parse a complete document into a tree that preserves the
// exact token text, and serialize it back compactly.
//
// The point is round-trip fidelity for the "ppa.metrics.v1" document:
// JsonWriter emits compact JSON (no whitespace, `,` separators, `"k":`
// keys), and this parser keeps every scalar as its raw token (strings with
// their quotes, numbers as written), so
//   json_serialize(parse) == original
// byte for byte whenever the original was compact. That equality is pinned
// by the export round-trip test, which is what keeps the schema honest:
// any exporter change that would silently garble a field breaks the trip.
//
// metrics_document_valid layers schema checks on top of the DOM: required
// sections, the schema tag, and the shape of each new section.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppa::obs {

/// One parsed JSON value. Scalars keep their raw token text (strings keep
/// their surrounding quotes and escapes untouched); containers hold their
/// children in document order. Object keys keep their quotes too, so the
/// serializer never has to re-escape anything.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  std::string raw;  // scalar token exactly as it appeared (empty for containers)
  std::vector<JsonValue> items;                              // Array
  std::vector<std::pair<std::string, JsonValue>> members;    // Object, keys quoted

  /// Object member lookup by unquoted key (no unescaping: keys the repo
  /// emits never contain escapes). Returns nullptr when absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// String contents without the surrounding quotes (escapes untouched).
  /// Only meaningful for Kind::String.
  [[nodiscard]] std::string_view unquoted() const;
};

/// Parses a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). Returns nullopt and fills `error`
/// (when non-null) on failure.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text,
                                                  std::string* error = nullptr);

/// Compact serialization: no whitespace, "," separators, "key": with no
/// space — the same shape JsonWriter emits.
[[nodiscard]] std::string json_serialize(const JsonValue& value);

/// Semantic validation of a "ppa.metrics.v1" document: the schema tag, the
/// run context, and every section the exporter writes (counters, gauges,
/// histograms, profile, convergence, spans) with the right JSON shapes.
/// Returns false and fills `error` (when non-null) on the first violation.
[[nodiscard]] bool metrics_document_valid(std::string_view text,
                                          std::string* error = nullptr);

}  // namespace ppa::obs
