#include "obs/chrome_trace.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace ppa::obs {

ChromeTraceWriter::ChromeTraceWriter(std::ostream& out, const Options& options)
    : out_(out), options_(options), epoch_(std::chrono::steady_clock::now()) {
  out_ << "[\n";
  // Process metadata so Perfetto labels the track.
  open_event("process_name", 'M', 0.0, 0);
  out_ << ",\"args\":{\"name\":\"" << json_escape(options_.process_name) << "\"}";
  close_event();
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::open_event(std::string_view name, char phase, double ts_us,
                                   std::uint32_t tid) {
  if (events_written_ != 0) out_ << ",\n";
  ++events_written_;
  char ts[32];
  std::snprintf(ts, sizeof ts, "%.3f", ts_us);
  out_ << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"" << phase
       << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << tid;
}

void ChromeTraceWriter::close_event() { out_ << "}"; }

void ChromeTraceWriter::write_steps_args(const sim::StepCounter& steps) {
  out_ << ",\"args\":{\"simd_steps\":" << steps.total();
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    const auto category = static_cast<sim::StepCategory>(c);
    out_ << ",\"" << sim::name_of(category) << "\":" << steps.count(category);
  }
  out_ << "}";
}

void ChromeTraceWriter::on_event(const sim::TraceEvent& event) {
  if (!options_.instructions || finished_) return;
  open_event(sim::name_of(event.category), 'i', now_us(), 0);
  out_ << ",\"s\":\"t\",\"args\":{";
  out_ << "\"dir\":\"" << sim::name_of(event.direction) << '"';
  if (event.category == sim::StepCategory::BusBroadcast ||
      event.category == sim::StepCategory::BusOr) {
    out_ << ",\"open\":" << event.open_count << ",\"seg\":" << event.max_segment
         << ",\"planes\":" << event.planes;
    if (event.wires != 0) {
      out_ << ",\"driven\":" << event.driven_wires << ",\"wires\":" << event.wires;
    }
  }
  if (event.count != 1) out_ << ",\"count\":" << event.count;
  out_ << "}";
  close_event();
}

void ChromeTraceWriter::on_fault(const sim::FaultEvent& event) {
  if (finished_) return;
  open_event(sim::name_of(event.kind), 'i', now_us(), 0);
  out_ << ",\"s\":\"p\",\"args\":{\"detail\":\"" << json_escape(sim::to_string(event))
       << "\"}";
  close_event();
}

void ChromeTraceWriter::begin_span(std::string_view name, std::int64_t arg) {
  if (finished_) return;
  open_event(name, 'B', now_us(), 0);
  if (arg >= 0) out_ << ",\"args\":{\"value\":" << arg << "}";
  close_event();
}

void ChromeTraceWriter::end_span(const sim::StepCounter& span_steps) {
  if (finished_) return;
  open_event("", 'E', now_us(), 0);
  write_steps_args(span_steps);
  close_event();
}

void ChromeTraceWriter::complete_span(std::string_view name, double start_us,
                                      double duration_us, std::uint32_t tid,
                                      const sim::StepCounter& span_steps,
                                      std::int64_t arg) {
  if (finished_) return;
  open_event(name, 'X', start_us, tid);
  char dur[32];
  std::snprintf(dur, sizeof dur, "%.3f", duration_us);
  out_ << ",\"dur\":" << dur;
  write_steps_args(span_steps);
  if (arg >= 0) {
    // write_steps_args already closed args; emit the destination as a
    // second-class field Perfetto shows in the detail pane.
    out_ << ",\"id\":" << arg;
  }
  close_event();
}

void ChromeTraceWriter::counter(std::string_view name, double value) {
  if (finished_) return;
  open_event(name, 'C', now_us(), 0);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  out_ << ",\"args\":{\"value\":" << buf << "}";
  close_event();
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_ << "\n]\n";
  out_.flush();
}

}  // namespace ppa::obs
