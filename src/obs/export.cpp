#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace ppa::obs {

namespace {

void write_run(JsonWriter& w, const RunInfo& run) {
  w.begin_object();
  w.kv(field::kWorkload, run.workload);
  w.kv(field::kBackend, run.backend);
  w.kv(field::kN, run.n);
  w.kv(field::kHostThreads, run.host_threads);
  w.kv(field::kBatchWidth, run.batch_width);
  w.kv(field::kActivePanels, run.active_panels);
  w.kv(field::kSimdSteps, run.simd_steps);
  w.kv(field::kWallSeconds, run.wall_seconds);
  w.end_object();
}

void write_steps(JsonWriter& w, const sim::StepCounter& steps) {
  w.begin_object();
  w.kv("total", steps.total());
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    const auto category = static_cast<sim::StepCategory>(c);
    w.kv(sim::name_of(category), steps.count(category));
  }
  w.end_object();
}

void write_histogram(JsonWriter& w, const Histogram& histogram) {
  w.begin_object();
  w.key("bounds");
  w.begin_array();
  for (const std::uint64_t b : histogram.bounds()) w.value(b);
  w.end_array();
  w.key("counts");
  w.begin_array();
  for (const std::uint64_t c : histogram.counts()) w.value(c);
  w.end_array();
  w.kv("count", histogram.count());
  w.kv("sum", histogram.sum());
  w.kv("min", histogram.min());
  w.kv("max", histogram.max());
  w.end_object();
}

/// "bus.plan_cache.hits" -> "ppa_bus_plan_cache_hits" (Prometheus metric
/// names allow [a-zA-Z0-9_:] only).
std::string prom_name(std::string_view name) {
  std::string out = "ppa_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

void prom_double(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out << buf;
}

}  // namespace

void write_metrics_json(std::ostream& out, const Collector& collector, const RunInfo& run) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", kMetricsSchema);
  w.key("run");
  write_run(w, run);

  const MetricsRegistry& metrics = collector.metrics();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, counter] : metrics.counters()) w.kv(name, counter.value());
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, gauge] : metrics.gauges()) w.kv(name, gauge.value());
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, histogram] : metrics.histograms()) {
    w.key(name);
    write_histogram(w, histogram);
  }
  w.end_object();

  // Utilization profiler: wall seconds and event counts per StepCategory
  // (timing — informational, never part of the determinism contract).
  w.key("profile");
  w.begin_object();
  const WallProfile& profile = collector.profile();
  w.key("wall_seconds");
  w.begin_object();
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    w.kv(sim::name_of(static_cast<sim::StepCategory>(c)),
         profile.seconds[static_cast<std::size_t>(c)]);
  }
  w.end_object();
  w.key("events");
  w.begin_object();
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    w.kv(sim::name_of(static_cast<sim::StepCategory>(c)),
         profile.events[static_cast<std::size_t>(c)]);
  }
  w.end_object();
  w.end_object();

  // Convergence series: one sample per observed relaxation iteration, with
  // per-row-block change counts on tiled runs (the sparse-panel signal).
  w.key("convergence");
  w.begin_array();
  for (const IterationSample& sample : collector.convergence()) {
    w.begin_object();
    w.kv("dest", sample.destination);
    w.kv("iter", sample.iteration);
    w.kv("active", sample.active);
    if (!sample.panel_changes.empty()) {
      w.key("panels");
      w.begin_array();
      for (const std::uint64_t p : sample.panel_changes) w.value(p);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  w.key("spans");
  w.begin_array();
  for (const SpanRecord& span : collector.spans()) {
    w.begin_object();
    w.kv("name", span.name);
    w.kv("parent", span.parent == SpanRecord::kNoParent
                       ? std::int64_t{-1}
                       : static_cast<std::int64_t>(span.parent));
    w.kv("start_us", span.start_seconds * 1e6);
    w.kv("dur_us", span.duration_seconds * 1e6);
    if (span.value >= 0) w.kv("value", span.value);
    w.key("steps");
    write_steps(w, span.steps);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << "\n";
}

void write_prometheus(std::ostream& out, const Collector& collector, const RunInfo& run) {
  // Run-context labels on every sample, so expositions from several runs
  // (or the future ppa_mcpd's several machines) aggregate cleanly.
  const std::string labels = "{workload=\"" + json_escape(run.workload) +
                             "\",backend=\"" + json_escape(run.backend) +
                             "\",n=\"" + std::to_string(run.n) + "\"}";

  const MetricsRegistry& metrics = collector.metrics();
  for (const auto& [name, counter] : metrics.counters()) {
    const std::string prom = prom_name(name);
    out << "# TYPE " << prom << " counter\n";
    out << prom << labels << ' ' << counter.value() << '\n';
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    const std::string prom = prom_name(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << labels << ' ';
    prom_double(out, gauge.value());
    out << '\n';
  }
  // Wall-time attribution rides along as a gauge family labelled by
  // category (seconds are a natural gauge: a per-run reading, not a
  // monotone counter across runs).
  out << "# TYPE ppa_profile_wall_seconds gauge\n";
  const WallProfile& profile = collector.profile();
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    const std::string_view category = sim::name_of(static_cast<sim::StepCategory>(c));
    out << "ppa_profile_wall_seconds" << labels.substr(0, labels.size() - 1)
        << ",category=\"" << category << "\"} ";
    prom_double(out, profile.seconds[static_cast<std::size_t>(c)]);
    out << '\n';
  }
  for (const auto& [name, histogram] : metrics.histograms()) {
    const std::string prom = prom_name(name);
    out << "# TYPE " << prom << " histogram\n";
    const std::string label_prefix = labels.substr(0, labels.size() - 1);
    std::uint64_t cumulative = 0;
    const std::vector<std::uint64_t>& counts = histogram.counts();
    const std::vector<std::uint64_t>& bounds = histogram.bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out << prom << "_bucket" << label_prefix << ",le=\"" << bounds[i] << "\"} "
          << cumulative << '\n';
    }
    out << prom << "_bucket" << label_prefix << ",le=\"+Inf\"} " << histogram.count()
        << '\n';
    out << prom << "_sum" << labels << ' ' << histogram.sum() << '\n';
    out << prom << "_count" << labels << ' ' << histogram.count() << '\n';
  }
}

void write_stats_summary(std::ostream& out, const Collector& collector,
                         const RunInfo& run) {
  char line[256];
  std::snprintf(line, sizeof line,
                "run: workload=%s backend=%s n=%zu host_threads=%zu simd_steps=%llu "
                "wall=%.3fms\n",
                run.workload.c_str(), run.backend.c_str(), run.n, run.host_threads,
                static_cast<unsigned long long>(run.simd_steps), run.wall_seconds * 1e3);
  out << line;

  // Per-category attribution: the step mix next to the profiler's wall
  // split, so "where did the machine time go" is one table instead of a
  // JSON dig. Percentages are of the observed totals.
  const WallProfile& profile = collector.profile();
  std::uint64_t total_events = 0;
  double total_seconds = 0;
  for (std::size_t c = 0; c < WallProfile::kCategories; ++c) {
    total_events += profile.events[c];
    total_seconds += profile.seconds[c];
  }
  if (total_events != 0) {
    out << "  category       steps     steps%   wall_ms   wall%\n";
    for (std::size_t c = 0; c < WallProfile::kCategories; ++c) {
      if (profile.events[c] == 0 && profile.seconds[c] == 0) continue;
      const double step_pct =
          100.0 * static_cast<double>(profile.events[c]) / static_cast<double>(total_events);
      const double wall_pct =
          total_seconds > 0 ? 100.0 * profile.seconds[c] / total_seconds : 0.0;
      std::snprintf(line, sizeof line, "  %-12s %9llu %7.1f%% %9.3f %6.1f%%\n",
                    sim::name_of(static_cast<sim::StepCategory>(c)),
                    static_cast<unsigned long long>(profile.events[c]), step_pct,
                    profile.seconds[c] * 1e3, wall_pct);
      out << line;
    }
  }

  const MetricsRegistry& metrics = collector.metrics();
  for (const auto& [name, histogram] : metrics.histograms()) {
    if (histogram.count() == 0) continue;
    std::snprintf(line, sizeof line,
                  "  %-18s count=%llu min=%llu mean=%.2f max=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<unsigned long long>(histogram.min()), histogram.mean(),
                  static_cast<unsigned long long>(histogram.max()));
    out << line;
  }
  for (const auto& [name, counter] : metrics.counters()) {
    if (counter.value() == 0) continue;
    std::snprintf(line, sizeof line, "  %-18s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    out << line;
  }
  // Top-level spans only; the full tree lives in the JSON dump.
  for (const SpanRecord& span : collector.spans()) {
    if (span.parent != SpanRecord::kNoParent) continue;
    std::snprintf(line, sizeof line, "  span %-12s %.3fms steps=%llu\n", span.name.c_str(),
                  span.duration_seconds * 1e3,
                  static_cast<unsigned long long>(span.steps.total()));
    out << line;
  }
}

}  // namespace ppa::obs
