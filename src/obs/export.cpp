#include "obs/export.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace ppa::obs {

namespace {

void write_run(JsonWriter& w, const RunInfo& run) {
  w.begin_object();
  w.kv(field::kWorkload, run.workload);
  w.kv(field::kBackend, run.backend);
  w.kv(field::kN, run.n);
  w.kv(field::kHostThreads, run.host_threads);
  w.kv(field::kBatchWidth, run.batch_width);
  w.kv(field::kSimdSteps, run.simd_steps);
  w.kv(field::kWallSeconds, run.wall_seconds);
  w.end_object();
}

void write_steps(JsonWriter& w, const sim::StepCounter& steps) {
  w.begin_object();
  w.kv("total", steps.total());
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    const auto category = static_cast<sim::StepCategory>(c);
    w.kv(sim::name_of(category), steps.count(category));
  }
  w.end_object();
}

void write_histogram(JsonWriter& w, const Histogram& histogram) {
  w.begin_object();
  w.key("bounds");
  w.begin_array();
  for (const std::uint64_t b : histogram.bounds()) w.value(b);
  w.end_array();
  w.key("counts");
  w.begin_array();
  for (const std::uint64_t c : histogram.counts()) w.value(c);
  w.end_array();
  w.kv("count", histogram.count());
  w.kv("sum", histogram.sum());
  w.kv("min", histogram.min());
  w.kv("max", histogram.max());
  w.end_object();
}

}  // namespace

void write_metrics_json(std::ostream& out, const Collector& collector, const RunInfo& run) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", kMetricsSchema);
  w.key("run");
  write_run(w, run);

  const MetricsRegistry& metrics = collector.metrics();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, counter] : metrics.counters()) w.kv(name, counter.value());
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, gauge] : metrics.gauges()) w.kv(name, gauge.value());
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, histogram] : metrics.histograms()) {
    w.key(name);
    write_histogram(w, histogram);
  }
  w.end_object();

  w.key("spans");
  w.begin_array();
  for (const SpanRecord& span : collector.spans()) {
    w.begin_object();
    w.kv("name", span.name);
    w.kv("parent", span.parent == SpanRecord::kNoParent
                       ? std::int64_t{-1}
                       : static_cast<std::int64_t>(span.parent));
    w.kv("start_us", span.start_seconds * 1e6);
    w.kv("dur_us", span.duration_seconds * 1e6);
    if (span.value >= 0) w.kv("value", span.value);
    w.key("steps");
    write_steps(w, span.steps);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << "\n";
}

void write_stats_summary(std::ostream& out, const Collector& collector,
                         const RunInfo& run) {
  char line[256];
  std::snprintf(line, sizeof line,
                "run: workload=%s backend=%s n=%zu host_threads=%zu simd_steps=%llu "
                "wall=%.3fms\n",
                run.workload.c_str(), run.backend.c_str(), run.n, run.host_threads,
                static_cast<unsigned long long>(run.simd_steps), run.wall_seconds * 1e3);
  out << line;

  const MetricsRegistry& metrics = collector.metrics();
  for (const auto& [name, histogram] : metrics.histograms()) {
    if (histogram.count() == 0) continue;
    std::snprintf(line, sizeof line,
                  "  %-18s count=%llu min=%llu mean=%.2f max=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<unsigned long long>(histogram.min()), histogram.mean(),
                  static_cast<unsigned long long>(histogram.max()));
    out << line;
  }
  for (const auto& [name, counter] : metrics.counters()) {
    if (counter.value() == 0) continue;
    std::snprintf(line, sizeof line, "  %-18s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    out << line;
  }
  // Top-level spans only; the full tree lives in the JSON dump.
  for (const SpanRecord& span : collector.spans()) {
    if (span.parent != SpanRecord::kNoParent) continue;
    std::snprintf(line, sizeof line, "  span %-12s %.3fms steps=%llu\n", span.name.c_str(),
                  span.duration_seconds * 1e3,
                  static_cast<unsigned long long>(span.steps.total()));
    out << line;
  }
}

}  // namespace ppa::obs
