// Exporters for the observability schema (docs/observability.md).
//
// write_metrics_json emits the stable "ppa.metrics.v1" document: a run
// context object (same field names as the BENCH_e6.json perf records —
// obs/json.hpp), the registry's counters/gauges/histograms, and the span
// tree. write_stats_summary renders the same data as a short human
// summary for `ppa_mcp --stats`.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/collector.hpp"

namespace ppa::obs {

/// Run context stamped into the dump; field names match the bench
/// harness's perf records so the perf gate reads both.
struct RunInfo {
  std::string workload;  // "mcp" | "all_pairs" | ...
  std::string backend;   // "word" | "bitplane"
  std::size_t n = 0;
  std::size_t host_threads = 1;
  /// Destinations per shared machine pass (docs/batching.md); 1 = the
  /// per-destination engine. Part of the perf gate's configuration key.
  std::size_t batch_width = 1;
  std::uint64_t simd_steps = 0;
  double wall_seconds = 0;
};

/// The complete metrics document (one JSON object).
void write_metrics_json(std::ostream& out, const Collector& collector, const RunInfo& run);

/// Human-readable digest: run line, step mix, bus-shape histograms,
/// solver counters and the top-level spans.
void write_stats_summary(std::ostream& out, const Collector& collector, const RunInfo& run);

}  // namespace ppa::obs
