// Exporters for the observability schema (docs/observability.md).
//
// write_metrics_json emits the stable "ppa.metrics.v1" document: a run
// context object (same field names as the BENCH_e6.json perf records —
// obs/json.hpp), the registry's counters/gauges/histograms, and the span
// tree. write_stats_summary renders the same data as a short human
// summary for `ppa_mcp --stats`.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/collector.hpp"

namespace ppa::obs {

/// Run context stamped into the dump; field names match the bench
/// harness's perf records so the perf gate reads both.
struct RunInfo {
  std::string workload;  // "mcp" | "all_pairs" | ...
  std::string backend;   // "word" | "bitplane"
  std::size_t n = 0;
  std::size_t host_threads = 1;
  /// Destinations per shared machine pass (docs/batching.md); 1 = the
  /// per-destination engine. Part of the perf gate's configuration key.
  std::size_t batch_width = 1;
  /// 1 when the tiled sweep ran the activity-driven panel schedule
  /// (docs/tiling.md), 0 with --active-panels=off. Part of the perf gate's
  /// configuration key: the schedules charge different PanelIo totals.
  std::size_t active_panels = 1;
  std::uint64_t simd_steps = 0;
  double wall_seconds = 0;
};

/// The complete metrics document (one JSON object).
void write_metrics_json(std::ostream& out, const Collector& collector, const RunInfo& run);

/// Prometheus text exposition (version 0.0.4) of the same registry:
/// counters/gauges as single samples, histograms in the cumulative
/// `_bucket{le=...}` / `_sum` / `_count` convention. Metric names get a
/// `ppa_` prefix with dots mapped to underscores; every sample carries
/// workload/backend/n labels from the run context. Shaped for the
/// long-lived `ppa_mcpd` service's scrape endpoint; today the CLI writes
/// one exposition per run (`ppa_mcp --prom-out`).
void write_prometheus(std::ostream& out, const Collector& collector, const RunInfo& run);

/// Human-readable digest: run line, per-category step + wall-time
/// attribution table, bus-shape histograms, solver counters and the
/// top-level spans.
void write_stats_summary(std::ostream& out, const Collector& collector, const RunInfo& run);

}  // namespace ppa::obs
