// Lock-cheap metrics primitives: counters, gauges and fixed-bucket
// histograms, grouped in a registry.
//
// The paper's claims are *distributional* as much as aggregate — O(1) bus
// cycles only hold if every broadcast's segment shape stays bounded, and
// the GCN/mesh comparisons hinge on how long the driven segments actually
// are — so the simulator's observability layer keeps whole histograms
// (bus max_segment, switch open counts, plane-sweep widths, retry counts)
// instead of the flat totals StepCounter reports.
//
// Concurrency model: a registry is single-writer by design, exactly like
// ppc::Context's register arena — the controller issues instructions
// sequentially, so the hot-path observe()/add() calls are plain integer
// arithmetic with no locks or atomics. Cross-thread aggregation happens
// by merging per-worker registries in a deterministic order (the same
// idiom as StepCounter::merge in the threaded all-pairs driver).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppa::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (e.g. a configuration knob or a final ratio).
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }
  /// Merging gauges keeps the maximum — the only order-independent choice
  /// that is still useful for "worst seen across workers" readings.
  void merge(const Gauge& other) noexcept {
    if (other.value_ > value_) value_ = other.value_;
  }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram over non-negative integer samples. Bucket i
/// counts samples <= bounds[i] (cumulative-style assignment, exclusive of
/// earlier buckets); one implicit overflow bucket counts the rest. Bounds
/// are fixed at construction so observe() is a linear scan over a handful
/// of integers — no allocation, no locks.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  /// Records `weight` samples of `value`.
  void observe(std::uint64_t value, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  /// Per-bucket sample counts; size() == bounds().size() + 1 (overflow last).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Smallest / largest observed value; 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Component-wise accumulation; the other histogram must share bounds.
  void merge(const Histogram& other);

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Exponential bucket bounds 1, 2, 4, ... up to `top` (inclusive) — the
/// natural shape for segment lengths and retry counts.
[[nodiscard]] std::vector<std::uint64_t> pow2_bounds(std::uint64_t top);

/// Named metric instruments. Lookup is by name and returns a stable
/// reference (std::map nodes never move), so hot paths resolve their
/// instruments once and then touch plain integers.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Creates the histogram with `bounds` on first use; later calls (and
  /// merges) ignore `bounds` and return the existing instrument.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const std::vector<std::uint64_t>& bounds);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Deterministic accumulation of another registry (instruments are
  /// matched by name; missing ones are created). Histograms with differing
  /// bounds throw util::ContractError.
  void merge(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ppa::obs
