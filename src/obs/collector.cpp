#include "obs/collector.hpp"

#include "sim/machine.hpp"
#include "util/check.hpp"

namespace ppa::obs {

namespace {

/// Bus-shape histograms cover segments/opens up to 4096 PEs a side and
/// plane widths up to 64 bits; everything beyond lands in the overflow
/// bucket. Fixed bounds keep per-worker registries mergeable.
const std::vector<std::uint64_t>& segment_bounds() {
  static const std::vector<std::uint64_t> bounds = pow2_bounds(4096);
  return bounds;
}

const std::vector<std::uint64_t>& plane_bounds() {
  static const std::vector<std::uint64_t> bounds = pow2_bounds(64);
  return bounds;
}

/// Driven-port counts reach pe_count = n^2 (64Ki at n = 256); beyond
/// lands in the overflow bucket.
const std::vector<std::uint64_t>& wire_bounds() {
  static const std::vector<std::uint64_t> bounds = pow2_bounds(65536);
  return bounds;
}

}  // namespace

Collector::Collector() : epoch_(std::chrono::steady_clock::now()) {
  for (int c = 0; c < static_cast<int>(sim::StepCategory::kCount); ++c) {
    const auto category = static_cast<sim::StepCategory>(c);
    step_counters_[c] =
        &metrics_.counter(std::string(metric::kStepPrefix) + sim::name_of(category));
  }
  seg_hist_ = &metrics_.histogram(metric::kBusMaxSegment, segment_bounds());
  open_hist_ = &metrics_.histogram(metric::kBusOpenCount, segment_bounds());
  planes_hist_ = &metrics_.histogram(metric::kBusPlaneWidth, plane_bounds());
  driven_wires_ = &metrics_.counter(metric::kBusDrivenWires);
  total_wires_ = &metrics_.counter(metric::kBusTotalWires);
  driven_hist_ = &metrics_.histogram(metric::kBusDrivenHist, wire_bounds());
  active_lanes_ = &metrics_.counter(metric::kActiveLanes);
}

void Collector::on_event(const sim::TraceEvent& event) {
  const auto now = std::chrono::steady_clock::now();
  const int category = static_cast<int>(event.category);
  // Wall attribution: the gap since the previous event is billed to the
  // arriving event's category (the time the host spent producing it).
  if (has_last_event_) {
    profile_.seconds[static_cast<std::size_t>(category)] +=
        std::chrono::duration<double>(now - last_event_).count();
  }
  last_event_ = now;
  has_last_event_ = true;
  profile_.events[static_cast<std::size_t>(category)] += event.count;

  step_counters_[category]->add(event.count);
  if (event.category == sim::StepCategory::BusBroadcast ||
      event.category == sim::StepCategory::BusOr) {
    seg_hist_->observe(event.max_segment, event.count);
    open_hist_->observe(event.open_count, event.count);
    planes_hist_->observe(event.planes, event.count);
    // Occupancy only rides events that carried it (wires == 0 means the
    // emitting site predates the scan or the event is not a bus cycle).
    if (event.wires != 0) {
      driven_wires_->add(event.driven_wires * event.count);
      total_wires_->add(event.wires * event.count);
      driven_hist_->observe(event.driven_wires, event.count);
    }
  }
  if (chrome_ != nullptr) chrome_->on_event(event);
}

void Collector::record_iteration(std::int64_t destination, std::uint64_t iteration,
                                 std::uint64_t active,
                                 std::vector<std::uint64_t> panel_changes) {
  active_lanes_->add(active);
  convergence_.push_back(
      IterationSample{destination, iteration, active, std::move(panel_changes)});
  if (chrome_ != nullptr) {
    chrome_->counter("active_lanes", static_cast<double>(active));
  }
  if (snapshot_every_ != 0 && snapshot_hook_) {
    if (++iterations_since_snapshot_ >= snapshot_every_) {
      iterations_since_snapshot_ = 0;
      snapshot_hook_(*this);
    }
  }
}

void Collector::on_fault(const sim::FaultEvent& event) {
  metrics_.counter(std::string(metric::kFaultPrefix) + sim::name_of(event.kind))
      .add(event.count);
  if (chrome_ != nullptr) chrome_->on_fault(event);
}

Collector::Span::Span(Span&& other) noexcept
    : collector_(other.collector_), index_(other.index_) {
  other.collector_ = nullptr;
}

Collector::Span::~Span() {
  if (collector_ != nullptr) collector_->close_span(index_);
}

Collector::Span Collector::span(std::string_view name, const sim::Machine* machine,
                                std::int64_t value) {
  SpanRecord record;
  record.name = std::string(name);
  record.parent = open_stack_.empty() ? SpanRecord::kNoParent : open_stack_.back();
  record.start_seconds = now_seconds();
  record.value = value;
  const std::size_t index = records_.size();
  records_.push_back(std::move(record));
  open_stack_.push_back(index);
  OpenState state;
  state.machine = machine;
  if (machine != nullptr) state.steps_at_open = machine->steps();
  open_state_.push_back(state);
  if (chrome_ != nullptr) chrome_->begin_span(name, value);
  return Span(this, index);
}

void Collector::close_span(std::size_t index) {
  PPA_ASSERT(!open_stack_.empty() && open_stack_.back() == index,
             "spans must close in LIFO order");
  SpanRecord& record = records_[index];
  record.duration_seconds = now_seconds() - record.start_seconds;
  const OpenState& state = open_state_.back();
  if (state.machine != nullptr) {
    record.steps = state.machine->steps().since(state.steps_at_open);
  }
  if (chrome_ != nullptr) chrome_->end_span(record.steps);
  open_stack_.pop_back();
  open_state_.pop_back();
}

Collector::Span open_span(Collector* collector, std::string_view name,
                          const sim::Machine* machine, std::int64_t value) {
  if (collector == nullptr) return Collector::Span(nullptr, 0);
  return collector->span(name, machine, value);
}

void Collector::merge(const Collector& other) {
  PPA_REQUIRE(other.open_stack_.empty(), "cannot merge a collector with open spans");
  metrics_.merge(other.metrics_);
  profile_.merge(other.profile_);
  convergence_.insert(convergence_.end(), other.convergence_.begin(),
                      other.convergence_.end());
  const double rebase =
      std::chrono::duration<double>(other.epoch_ - epoch_).count();
  const std::size_t offset = records_.size();
  for (const SpanRecord& span : other.records_) {
    SpanRecord copy = span;
    copy.start_seconds += rebase;
    if (copy.parent != SpanRecord::kNoParent) copy.parent += offset;
    records_.push_back(std::move(copy));
  }
}

void Collector::export_spans(ChromeTraceWriter& writer) const {
  const double epoch_offset_us =
      writer.to_epoch_us(epoch_);  // collector epoch on the writer timeline
  // Root spans get their own Perfetto track (tid) so per-destination trees
  // of a merged all-pairs run render side by side instead of stacked.
  std::vector<std::uint32_t> tid(records_.size(), 0);
  std::uint32_t next_tid = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    tid[i] = records_[i].parent == SpanRecord::kNoParent ? next_tid++
                                                         : tid[records_[i].parent];
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const SpanRecord& span = records_[i];
    writer.complete_span(span.name, epoch_offset_us + span.start_seconds * 1e6,
                         span.duration_seconds * 1e6, tid[i], span.steps, span.value);
  }
}

}  // namespace ppa::obs
