#include "obs/json_dom.hpp"

#include <cctype>

namespace ppa::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [raw_key, member] : members) {
    // raw_key keeps its quotes; compare the interior.
    if (raw_key.size() >= 2 &&
        std::string_view(raw_key).substr(1, raw_key.size() - 2) == key) {
      return &member;
    }
  }
  return nullptr;
}

std::string_view JsonValue::unquoted() const {
  if (kind != Kind::String || raw.size() < 2) return {};
  return std::string_view(raw).substr(1, raw.size() - 2);
}

// ---------------------------------------------------------------------------
// Recursive-descent parser. Mirrors the json.cpp syntax checker, but keeps
// each scalar's raw token so serialization can reproduce the input exactly.
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    error = message + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word, JsonValue::Kind kind, JsonValue& out) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    out.kind = kind;
    out.raw = std::string(word);
    pos += word.size();
    return true;
  }

  bool string_token(std::string& raw) {
    const std::size_t start = pos;
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') {
        raw = std::string(text.substr(start, pos - start));
        return true;
      }
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return fail("bad \\u escape");
            }
            ++pos;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
    }
    return fail("unterminated string");
  }

  bool number_token(std::string& raw) {
    const std::size_t start = pos;
    (void)consume('-');
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos == start || (text[start] == '-' && pos == start + 1)) {
      return fail("expected number");
    }
    if (consume('.')) {
      const std::size_t frac = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      if (pos == frac) return fail("bad fraction");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      const std::size_t exp = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      if (pos == exp) return fail("bad exponent");
    }
    raw = std::string(text.substr(start, pos - start));
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > 256) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return string_token(out.raw);
    }
    if (c == 't') return literal("true", JsonValue::Kind::Bool, out);
    if (c == 'f') return literal("false", JsonValue::Kind::Bool, out);
    if (c == 'n') return literal("null", JsonValue::Kind::Null, out);
    out.kind = JsonValue::Kind::Number;
    return number_token(out.raw);
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::Object;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string_token(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::Array;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue item;
      if (!value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }
};

void serialize_into(const JsonValue& value, std::string& out) {
  switch (value.kind) {
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members) {
        if (!first) out += ',';
        first = false;
        out += key;
        out += ':';
        serialize_into(member, out);
      }
      out += '}';
      return;
    }
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items) {
        if (!first) out += ',';
        first = false;
        serialize_into(item, out);
      }
      out += ']';
      return;
    }
    default:
      out += value.raw;
      return;
  }
}

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  JsonValue root;
  if (!parser.value(root, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(parser.pos);
    }
    return std::nullopt;
  }
  return root;
}

std::string json_serialize(const JsonValue& value) {
  std::string out;
  serialize_into(value, out);
  return out;
}

// ---------------------------------------------------------------------------
// Schema validation for "ppa.metrics.v1".
// ---------------------------------------------------------------------------

namespace {

bool schema_fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Doubles serialize as a Number, or null when non-finite (JsonWriter
/// clamps NaN/Inf); both shapes are legal wherever a double lives.
bool is_numeric(const JsonValue& v) {
  return v.kind == JsonValue::Kind::Number || v.kind == JsonValue::Kind::Null;
}

bool numbers_only(const JsonValue& array) {
  for (const JsonValue& item : array.items) {
    if (item.kind != JsonValue::Kind::Number) return false;
  }
  return true;
}

bool check_histogram(const JsonValue& h, std::string_view name, std::string* error) {
  const std::string label = "histogram '" + std::string(name) + "'";
  if (h.kind != JsonValue::Kind::Object) return schema_fail(error, label + " not an object");
  const JsonValue* bounds = h.find("bounds");
  const JsonValue* counts = h.find("counts");
  if (bounds == nullptr || bounds->kind != JsonValue::Kind::Array || !numbers_only(*bounds)) {
    return schema_fail(error, label + " missing numeric 'bounds' array");
  }
  if (counts == nullptr || counts->kind != JsonValue::Kind::Array || !numbers_only(*counts)) {
    return schema_fail(error, label + " missing numeric 'counts' array");
  }
  // bounds has one entry per finite bucket; counts has one more (overflow).
  if (counts->items.size() != bounds->items.size() + 1) {
    return schema_fail(error, label + " counts/bounds size mismatch");
  }
  for (const char* field : {"count", "sum", "min", "max"}) {
    const JsonValue* v = h.find(field);
    if (v == nullptr || v->kind != JsonValue::Kind::Number) {
      return schema_fail(error, label + " missing numeric '" + field + "'");
    }
  }
  return true;
}

bool check_numeric_object(const JsonValue* section, std::string_view name,
                          std::string* error) {
  const std::string label = "section '" + std::string(name) + "'";
  if (section == nullptr || section->kind != JsonValue::Kind::Object) {
    return schema_fail(error, label + " missing or not an object");
  }
  for (const auto& [key, member] : section->members) {
    if (!is_numeric(member)) {
      return schema_fail(error, label + " member " + key + " not numeric");
    }
  }
  return true;
}

bool check_convergence(const JsonValue* section, std::string* error) {
  if (section == nullptr || section->kind != JsonValue::Kind::Array) {
    return schema_fail(error, "section 'convergence' missing or not an array");
  }
  for (const JsonValue& sample : section->items) {
    if (sample.kind != JsonValue::Kind::Object) {
      return schema_fail(error, "convergence sample not an object");
    }
    for (const char* field : {"dest", "iter", "active"}) {
      const JsonValue* v = sample.find(field);
      if (v == nullptr || v->kind != JsonValue::Kind::Number) {
        return schema_fail(error,
                           std::string("convergence sample missing numeric '") + field + "'");
      }
    }
    if (const JsonValue* panels = sample.find("panels"); panels != nullptr) {
      if (panels->kind != JsonValue::Kind::Array || !numbers_only(*panels)) {
        return schema_fail(error, "convergence 'panels' not a numeric array");
      }
    }
  }
  return true;
}

bool check_spans(const JsonValue* section, std::string* error) {
  if (section == nullptr || section->kind != JsonValue::Kind::Array) {
    return schema_fail(error, "section 'spans' missing or not an array");
  }
  for (const JsonValue& span : section->items) {
    if (span.kind != JsonValue::Kind::Object) {
      return schema_fail(error, "span record not an object");
    }
    const JsonValue* name = span.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::String) {
      return schema_fail(error, "span record missing string 'name'");
    }
    const JsonValue* parent = span.find("parent");
    if (parent == nullptr || parent->kind != JsonValue::Kind::Number) {
      return schema_fail(error, "span record missing numeric 'parent'");
    }
    for (const char* field : {"start_us", "dur_us"}) {
      const JsonValue* v = span.find(field);
      if (v == nullptr || !is_numeric(*v)) {
        return schema_fail(error, std::string("span record missing '") + field + "'");
      }
    }
    const JsonValue* steps = span.find("steps");
    if (steps == nullptr || steps->kind != JsonValue::Kind::Object ||
        !check_numeric_object(steps, "steps", error)) {
      return schema_fail(error, "span record missing 'steps' object");
    }
  }
  return true;
}

}  // namespace

bool metrics_document_valid(std::string_view text, std::string* error) {
  std::string parse_error;
  const std::optional<JsonValue> root = json_parse(text, &parse_error);
  if (!root.has_value()) return schema_fail(error, "parse error: " + parse_error);
  if (root->kind != JsonValue::Kind::Object) {
    return schema_fail(error, "document is not an object");
  }

  const JsonValue* schema = root->find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String ||
      schema->unquoted() != "ppa.metrics.v1") {
    return schema_fail(error, "schema tag is not \"ppa.metrics.v1\"");
  }

  const JsonValue* run = root->find("run");
  if (run == nullptr || run->kind != JsonValue::Kind::Object) {
    return schema_fail(error, "section 'run' missing or not an object");
  }
  for (const char* field : {"workload", "backend"}) {
    const JsonValue* v = run->find(field);
    if (v == nullptr || v->kind != JsonValue::Kind::String) {
      return schema_fail(error, std::string("run missing string '") + field + "'");
    }
  }
  for (const char* field :
       {"n", "host_threads", "batch_width", "simd_steps", "wall_seconds"}) {
    const JsonValue* v = run->find(field);
    if (v == nullptr || !is_numeric(*v)) {
      return schema_fail(error, std::string("run missing numeric '") + field + "'");
    }
  }
  // Optional within v1 (documents predate the active-panel schedule), but
  // when present it must be numeric.
  if (const JsonValue* v = run->find("active_panels");
      v != nullptr && !is_numeric(*v)) {
    return schema_fail(error, "run field 'active_panels' is not numeric");
  }

  if (!check_numeric_object(root->find("counters"), "counters", error)) return false;
  if (!check_numeric_object(root->find("gauges"), "gauges", error)) return false;

  const JsonValue* histograms = root->find("histograms");
  if (histograms == nullptr || histograms->kind != JsonValue::Kind::Object) {
    return schema_fail(error, "section 'histograms' missing or not an object");
  }
  for (const auto& [key, h] : histograms->members) {
    const std::string_view name =
        std::string_view(key).substr(1, key.size() >= 2 ? key.size() - 2 : 0);
    if (!check_histogram(h, name, error)) return false;
  }

  const JsonValue* profile = root->find("profile");
  if (profile == nullptr || profile->kind != JsonValue::Kind::Object) {
    return schema_fail(error, "section 'profile' missing or not an object");
  }
  if (!check_numeric_object(profile->find("wall_seconds"), "profile.wall_seconds", error)) {
    return false;
  }
  if (!check_numeric_object(profile->find("events"), "profile.events", error)) return false;

  if (!check_convergence(root->find("convergence"), error)) return false;
  return check_spans(root->find("spans"), error);
}

}  // namespace ppa::obs
