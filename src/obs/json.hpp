// Minimal streaming JSON writer + the observability schema's field names.
//
// Every machine-readable artifact this repo emits — the metrics dump
// (`ppa_mcp --metrics-out`), the bench harness's perf trajectory
// (BENCH_e6.json) and the Chrome trace — goes through this writer, and the
// shared run-record field names live here as constants, so the perf gate
// (tools/perf_gate.py) and the metrics schema can never drift apart
// silently. The writer is deliberately tiny: objects, arrays, scalars,
// string escaping — no DOM, no allocation beyond the output stream.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ppa::obs {

/// Schema identifier stamped into every metrics dump; bump on any
/// backwards-incompatible field change (docs/observability.md).
inline constexpr std::string_view kMetricsSchema = "ppa.metrics.v1";

/// Field names shared between the metrics dump's "run" object and the
/// BENCH_e6.json perf records (tools/perf_gate.py matches on these).
namespace field {
inline constexpr std::string_view kWorkload = "workload";
inline constexpr std::string_view kBackend = "backend";
inline constexpr std::string_view kN = "n";
inline constexpr std::string_view kHostThreads = "host_threads";
/// Destinations per shared machine pass (docs/batching.md); part of the
/// perf gate's configuration key so batched and unbatched runs never get
/// compared against each other's baselines.
inline constexpr std::string_view kBatchWidth = "batch_width";
/// 1 = activity-driven panel schedule (docs/tiling.md), 0 = the dense
/// every-panel sweep. Part of the perf gate's configuration key: the two
/// schedules charge different PanelIo totals by design.
inline constexpr std::string_view kActivePanels = "active_panels";
inline constexpr std::string_view kSimdSteps = "simd_steps";
inline constexpr std::string_view kWallSeconds = "wall_seconds";
inline constexpr std::string_view kPeOpsPerSec = "pe_ops_per_sec";
/// Dispatched SIMD variant of the bit-plane kernels ("scalar" | "avx2" |
/// "avx512"; "none" on the word backend). Informational — NOT part of the
/// perf gate's configuration key, so baselines recorded on a different
/// host still match, but a surprising wall-clock delta can be traced to a
/// dispatch change from the record alone.
inline constexpr std::string_view kSimd = "simd";
}  // namespace field

/// Streaming writer with automatic comma placement. Usage:
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("n"); w.value(16);
///   w.key("items"); w.begin_array(); w.value("a"); w.end_array();
///   w.end_object();
/// Nesting depth is tracked internally; the caller must pair begin/end.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes an object key; the next value/begin_* call is its value.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(const std::string& text) { value(std::string_view(text)); }
  void value(double number);
  void value(bool flag);
  /// Any non-bool integral type (signed and unsigned widths collapse onto
  /// int64/uint64, so size_t-vs-uint64_t never creates overload clashes).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  void value(T number) {
    if constexpr (std::is_signed_v<T>) {
      write_int(static_cast<std::int64_t>(number));
    } else {
      write_uint(static_cast<std::uint64_t>(number));
    }
  }

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void kv(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

 private:
  void separate();  // emits "," where the grammar needs one
  void write_int(std::int64_t number);
  void write_uint(std::uint64_t number);

  std::ostream& out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_element_{false};
  bool pending_key_ = false;
};

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Strict syntax check over a complete JSON document (the test suite
/// validates the emitted metrics dump and Chrome trace with this). Returns
/// false and fills `error` (when non-null) on the first violation.
[[nodiscard]] bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace ppa::obs
