#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ppa::obs {

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma and ':' follows values
  }
  if (has_element_.back()) out_ << ',';
  has_element_.back() = true;
}

void JsonWriter::begin_object() {
  separate();
  out_ << '{';
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  has_element_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ << '[';
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  has_element_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  if (has_element_.back()) out_ << ',';
  has_element_.back() = true;
  out_ << '"' << json_escape(name) << "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  out_ << '"' << json_escape(text) << '"';
}

void JsonWriter::write_uint(std::uint64_t number) {
  separate();
  out_ << number;
}

void JsonWriter::write_int(std::int64_t number) {
  separate();
  out_ << number;
}

void JsonWriter::value(double number) {
  separate();
  // JSON has no NaN/Inf; clamp to null, which every reader handles.
  if (!std::isfinite(number)) {
    out_ << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, number);
  out_.write(buf, end - buf);
  (void)ec;
}

void JsonWriter::value(bool flag) {
  separate();
  out_ << (flag ? "true" : "false");
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Recursive-descent syntax checker. Values only — no schema awareness.
// ---------------------------------------------------------------------------

namespace {

struct Checker {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    error = message + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return fail("bad \\u escape");
            }
            ++pos;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos;
    (void)consume('-');
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos == start || (text[start] == '-' && pos == start + 1)) {
      return fail("expected number");
    }
    if (consume('.')) {
      const std::size_t frac = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      if (pos == frac) return fail("bad fraction");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      const std::size_t exp = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      if (pos == exp) return fail("bad exponent");
    }
    return true;
  }

  bool value(int depth) {
    if (depth > 256) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object(int depth) {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  Checker checker{text, 0, {}};
  if (!checker.value(0)) {
    if (error != nullptr) *error = checker.error;
    return false;
  }
  checker.skip_ws();
  if (checker.pos != text.size()) {
    if (error != nullptr) *error = "trailing garbage at offset " + std::to_string(checker.pos);
    return false;
  }
  return true;
}

}  // namespace ppa::obs
