// The observability hub: metrics + phase spans + trace fan-out.
//
// A Collector is what a solver run observes itself with. It is a
// sim::TraceSink, so attaching it to a Machine feeds the bus-shape
// histograms (max_segment, open switch count, plane-sweep width) from the
// exact TraceEvents both execution backends emit identically; it records a
// tree of phase spans (init / relax / unload / verify / retry), each with
// wall-time and the StepCounter delta spent inside; and it forwards
// everything to an optional ChromeTraceWriter, which streams the run as a
// Perfetto-loadable timeline.
//
// Observation is free by contract: a Collector only *reads* machine state
// (steps(), the trace hook, the wall clock), so results, driven flags and
// step counts are bit-identical with and without one attached —
// tests/obs_observability_test.cpp pins this on both backends.
//
// Threading follows the StepCounter idiom: one Collector per simulated
// machine (single-writer, lock-free), merged deterministically in
// destination order by the all-pairs driver.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "sim/step_counter.hpp"
#include "sim/trace.hpp"

namespace ppa::sim {
class Machine;
}

namespace ppa::obs {

/// One closed phase span. Spans form a tree via `parent` (index into the
/// collector's span vector; kNoParent for roots). Times are seconds
/// relative to the collector's epoch; merging rebases them.
struct SpanRecord {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::string name;
  std::size_t parent = kNoParent;
  double start_seconds = 0;
  double duration_seconds = 0;
  /// SIMD steps charged on the observed machine while the span was open
  /// (zero when the span was opened without a machine).
  sim::StepCounter steps;
  /// Free-form argument (the MCP destination vertex, the retry attempt
  /// number, ...); -1 when unset.
  std::int64_t value = -1;
};

/// Wall-time attribution per StepCategory (the utilization profiler,
/// docs/observability.md). Each TraceEvent's inter-event wall gap is billed
/// to the ARRIVING event's category — an inclusive approximation that
/// attributes the host time spent producing an instruction to that
/// instruction. Timing data: merged additively, never part of the
/// determinism contract (unlike the counters, which are).
struct WallProfile {
  static constexpr std::size_t kCategories =
      static_cast<std::size_t>(sim::StepCategory::kCount);
  std::array<double, kCategories> seconds{};
  std::array<std::uint64_t, kCategories> events{};

  void merge(const WallProfile& other) noexcept {
    for (std::size_t c = 0; c < kCategories; ++c) {
      seconds[c] += other.seconds[c];
      events[c] += other.events[c];
    }
  }
};

/// One relaxation iteration's convergence telemetry: how many vertices'
/// SOW improved (the active-lane count riding the convergence OR the
/// solver already computes) and, for tiled runs, the per-row-block change
/// counts — the sparse-panel signal active-panel virtualization needs
/// (ROADMAP). Free by contract: host reads only.
struct IterationSample {
  std::int64_t destination = -1;
  std::uint64_t iteration = 0;   // 1-based, as Result::iterations counts
  std::uint64_t active = 0;      // vertices whose SOW changed this iteration
  std::vector<std::uint64_t> panel_changes;  // per row block; empty = full array
};

class Collector final : public sim::TraceSink {
 public:
  Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Chrome streaming: instruction/fault events and span brackets are
  /// forwarded live. Not owned; must outlive the attachment.
  void set_chrome(ChromeTraceWriter* writer) noexcept { chrome_ = writer; }
  [[nodiscard]] ChromeTraceWriter* chrome() const noexcept { return chrome_; }

  // ---- sim::TraceSink ----
  void on_event(const sim::TraceEvent& event) override;
  void on_fault(const sim::FaultEvent& event) override;

  // ---- spans ----

  /// RAII handle; closes its span on destruction. Inert when obtained from
  /// a null collector (see open_span below), so call sites need no checks.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

   private:
    friend class Collector;
    friend Span open_span(Collector*, std::string_view, const sim::Machine*, std::int64_t);
    Span(Collector* collector, std::size_t index) : collector_(collector), index_(index) {}

    Collector* collector_;  // null = inert
    std::size_t index_;
  };

  /// Opens a span named `name`; `machine` (optional) contributes the
  /// StepCounter delta, `value` a free-form argument. Spans nest: the
  /// last-opened unclosed span is the parent.
  [[nodiscard]] Span span(std::string_view name, const sim::Machine* machine = nullptr,
                          std::int64_t value = -1);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept { return records_; }

  // ---- convergence telemetry ----

  /// Records one relaxation iteration's telemetry: the active-lane count
  /// and (tiled runs) per-row-block change counts. Adds `active` to the
  /// solver.active_lanes counter, appends to the convergence series,
  /// streams a Chrome 'C' counter sample when live, and fires the snapshot
  /// hook on its cadence. Host bookkeeping only — never touches the
  /// machine.
  void record_iteration(std::int64_t destination, std::uint64_t iteration,
                        std::uint64_t active,
                        std::vector<std::uint64_t> panel_changes = {});

  [[nodiscard]] const std::vector<IterationSample>& convergence() const noexcept {
    return convergence_;
  }

  /// Per-category wall-time attribution (fed by on_event).
  [[nodiscard]] const WallProfile& profile() const noexcept { return profile_; }

  /// Installs a periodic snapshot callback: fired from record_iteration
  /// every `every_iterations` iterations (0 disables). Shaped for the
  /// long-lived service: the CLI uses it to stream JSONL metrics
  /// snapshots (--snapshot-every). The hook must not mutate the collector.
  void set_snapshot_hook(std::uint64_t every_iterations,
                         std::function<void(const Collector&)> hook) {
    snapshot_every_ = every_iterations;
    snapshot_hook_ = std::move(hook);
  }

  /// Deterministic accumulation of another collector: metrics merge by
  /// name, span trees append with parents re-indexed and times rebased
  /// onto this collector's epoch, convergence series append, wall profiles
  /// add. Used by the all-pairs driver to fold per-destination collectors
  /// in destination order.
  void merge(const Collector& other);

  /// Exports every recorded span as a complete ("X") Chrome event onto
  /// `writer`'s timeline — the post-hoc path for merged trees (the live
  /// path streams B/E pairs instead). `tid_of_root` spreads root spans
  /// over Perfetto tracks, e.g. one per destination.
  void export_spans(ChromeTraceWriter& writer) const;

  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

 private:
  friend Span open_span(Collector*, std::string_view, const sim::Machine*, std::int64_t);
  void close_span(std::size_t index);
  [[nodiscard]] double now_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  }

  MetricsRegistry metrics_;
  ChromeTraceWriter* chrome_ = nullptr;  // not owned
  std::chrono::steady_clock::time_point epoch_;

  std::vector<SpanRecord> records_;
  std::vector<std::size_t> open_stack_;  // indices into records_
  // Step snapshot + machine per open span (parallel to open_stack_).
  struct OpenState {
    const sim::Machine* machine = nullptr;
    sim::StepCounter steps_at_open;
  };
  std::vector<OpenState> open_state_;

  // Hot-path instruments, resolved once in the constructor.
  Counter* step_counters_[static_cast<std::size_t>(sim::StepCategory::kCount)] = {};
  Histogram* seg_hist_ = nullptr;
  Histogram* open_hist_ = nullptr;
  Histogram* planes_hist_ = nullptr;
  Counter* driven_wires_ = nullptr;
  Counter* total_wires_ = nullptr;
  Histogram* driven_hist_ = nullptr;
  Counter* active_lanes_ = nullptr;

  // Utilization profiler state (timing — excluded from determinism).
  WallProfile profile_;
  std::chrono::steady_clock::time_point last_event_;
  bool has_last_event_ = false;

  // Convergence series + snapshot cadence.
  std::vector<IterationSample> convergence_;
  std::uint64_t snapshot_every_ = 0;
  std::uint64_t iterations_since_snapshot_ = 0;
  std::function<void(const Collector&)> snapshot_hook_;
};

/// Null-safe span opener: returns an inert handle when `collector` is
/// null, so instrumented code needs no branches. Prefer the PPA_SPAN
/// macro for the common scoped case.
[[nodiscard]] Collector::Span open_span(Collector* collector, std::string_view name,
                                        const sim::Machine* machine = nullptr,
                                        std::int64_t value = -1);

/// Counter names used for solver bookkeeping (docs/observability.md).
namespace metric {
inline constexpr const char* kBusMaxSegment = "bus.max_segment";
inline constexpr const char* kBusOpenCount = "bus.open_count";
inline constexpr const char* kBusPlaneWidth = "bus.plane_width";
inline constexpr const char* kSolverRetries = "solver.retries";
/// Destinations whose retry loop turned a failed row into a Verified one
/// (distinct from kSolverRetries, which counts the re-runs themselves).
inline constexpr const char* kSolverRecoveredRows = "solver.recovered_rows";
/// Fault masking (docs/robustness.md): masked bus cycles executed, cycles
/// where the TMR vote / ECC decode changed a delivered value, and ECC
/// cycles left with an unrepairable syndrome.
inline constexpr const char* kMaskVotes = "mask.votes";
inline constexpr const char* kMaskCorrections = "mask.corrections";
inline constexpr const char* kMaskUncorrectable = "mask.uncorrectable";
inline constexpr const char* kSolverRuns = "solver.runs";
inline constexpr const char* kSolverIterations = "solver.iterations";
/// Panels visited by the virtualized (tiled) sweep — 0 / absent for
/// full-array runs (mcp/tiled.hpp).
inline constexpr const char* kSolverPanels = "solver.panels";
// Active-panel scheduling (docs/tiling.md "Active panels"): panel visits
// skipped because their SOW column block was clean, the sum over
// iterations of dirty column blocks, and the PanelIo steps the schedule
// avoided (skipped loads/readbacks plus load beats hidden under the
// previous panel's relax sweep). kSolverPanels + kSolverPanelsSkipped is
// the dense visit count I*ceil(n/p)^2, and the charged PanelIo plus
// kSolverPanelIoSaved is the dense formula I*ceil(n/p)^2*(p+3) — both
// pinned exactly (tests/mcp_active_panels_test.cpp).
inline constexpr const char* kSolverPanelsSkipped = "solver.panels_skipped";
inline constexpr const char* kSolverActiveBlocks = "solver.active_blocks";
inline constexpr const char* kSolverPanelIoSaved = "solver.panel_io_saved";
// Multi-destination batching (mcp/batch.hpp): batches launched and the sum
// of their widths (width per launch = kSolverBatchWidth / kSolverBatches).
inline constexpr const char* kSolverBatches = "solver.batches";
inline constexpr const char* kSolverBatchWidth = "solver.batch_width";
// Broadcast plan cache (sim/bus_planes.hpp), recorded per solver run as
// the machine-counter delta spent inside the run.
inline constexpr const char* kPlanCacheHits = "bus.plan_cache.hits";
inline constexpr const char* kPlanCacheMisses = "bus.plan_cache.misses";
// Bus occupancy (utilization profiler): PE bus ports that read a driven
// value vs. total ports, summed over charged bus cycles, plus the
// per-cycle driven-port histogram. Fed from TraceEvent::driven_wires /
// wires — bit-identical across backends (driven flags are pinned).
inline constexpr const char* kBusDrivenWires = "bus.wires.driven";
inline constexpr const char* kBusTotalWires = "bus.wires.total";
inline constexpr const char* kBusDrivenHist = "bus.driven_wires";
// SIMD kernel throughput (sim::plane_kernels::SweepStats): dispatched
// sweeps and plane words covered, recorded per solver run as the
// machine-counter delta. Pool-size and plane_sweep_min_words independent.
inline constexpr const char* kSweepDispatches = "simd.sweep.dispatches";
inline constexpr const char* kSweepWords = "simd.sweep.words";
// Convergence telemetry: total changed-vertex observations summed over
// iterations (per-iteration detail lives in the convergence series).
inline constexpr const char* kActiveLanes = "solver.active_lanes";
// Host-pool utilization gauges (timing; merge keeps the worst case):
// busiest-lane seconds and busiest/mean imbalance ratio for the run.
inline constexpr const char* kPoolBusyMax = "pool.busy_seconds.max";
inline constexpr const char* kPoolImbalance = "pool.imbalance";
/// Prefixes completed by a kind/outcome name.
inline constexpr const char* kFaultPrefix = "faults.";
inline constexpr const char* kOutcomePrefix = "solver.outcome.";
inline constexpr const char* kStepPrefix = "steps.";
}  // namespace metric

#define PPA_OBS_CONCAT_INNER(a, b) a##b
#define PPA_OBS_CONCAT(a, b) PPA_OBS_CONCAT_INNER(a, b)

/// Scoped phase span: PPA_SPAN(collector, "relax_iter", &machine) opens a
/// span that closes at end of scope. `collector` may be null.
#define PPA_SPAN(collector, ...) \
  const ::ppa::obs::Collector::Span PPA_OBS_CONCAT(ppa_span_, __LINE__) = \
      ::ppa::obs::open_span((collector), __VA_ARGS__)

}  // namespace ppa::obs
