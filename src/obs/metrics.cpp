#include "obs/metrics.hpp"

#include "util/check.hpp"

namespace ppa::obs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    PPA_REQUIRE(bounds_[i - 1] < bounds_[i], "histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(std::uint64_t value, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  std::size_t bucket = bounds_.size();  // overflow unless a bound catches it
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket] += weight;
  count_ += weight;
  sum_ += value * weight;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 && bounds_.empty()) {
    *this = other;
    return;
  }
  PPA_REQUIRE(bounds_ == other.bounds_, "cannot merge histograms with different bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::vector<std::uint64_t> pow2_bounds(std::uint64_t top) {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b < top; b *= 2) bounds.push_back(b);
  bounds.push_back(top);
  return bounds;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<std::uint64_t>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(bounds)).first;
  }
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) counters_[name].merge(counter);
  for (const auto& [name, gauge] : other.gauges_) gauges_[name].merge(gauge);
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge(histogram);
  }
}

}  // namespace ppa::obs
