// Least-squares fits used to *test* the paper's complexity claims.
//
// "Steps grow as O(p * h)" is checked by fitting measured step counts
// against the swept parameter and asserting (a) the fit is nearly perfect
// (R^2 close to 1 for a linear law) and (b) the slope is positive; the
// size-independence claim (E4) is checked by fitting against n and
// asserting the slope is ~0 relative to the intercept.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppa::analysis {

/// y ≈ intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // 1 - SS_res / SS_tot; 1.0 when SS_tot == 0
};

/// Ordinary least squares over equal-length vectors (size >= 2).
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// A named (x, y) measurement series, convenient for table emission.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }

  [[nodiscard]] LinearFit fit() const { return fit_linear(x, y); }
};

/// Ratio of the largest to the smallest y value (growth check for
/// "independent of n" claims; 1.0 means perfectly flat).
[[nodiscard]] double spread_ratio(const std::vector<double>& y);

}  // namespace ppa::analysis
