#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ppa::analysis {

Summary summarize(const std::vector<double>& sample) {
  PPA_REQUIRE(!sample.empty(), "cannot summarize an empty sample");
  Summary s;
  s.count = sample.size();
  s.mean = mean_of(sample);

  double sum_sq = 0;
  for (const double v : sample) {
    const double d = v - s.mean;
    sum_sq += d * d;
  }
  s.stddev = sample.size() < 2
                 ? 0.0
                 : std::sqrt(sum_sq / static_cast<double>(sample.size() - 1));

  std::vector<double> sorted(sample);
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1) ? sorted[mid] : (sorted[mid - 1] + sorted[mid]) / 2.0;
  return s;
}

double mean_of(const std::vector<double>& sample) {
  PPA_REQUIRE(!sample.empty(), "cannot take the mean of an empty sample");
  double sum = 0;
  for (const double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double geometric_mean(const std::vector<double>& sample) {
  PPA_REQUIRE(!sample.empty(), "cannot take the geometric mean of an empty sample");
  double log_sum = 0;
  for (const double v : sample) {
    PPA_REQUIRE(v > 0, "geometric mean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace ppa::analysis
