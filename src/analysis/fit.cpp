#include "analysis/fit.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ppa::analysis {

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  PPA_REQUIRE(x.size() == y.size(), "fit vectors must have equal length");
  PPA_REQUIRE(x.size() >= 2, "a linear fit needs at least two points");
  const double count = static_cast<double>(x.size());

  double sum_x = 0;
  double sum_y = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double mean_x = sum_x / count;
  const double mean_y = sum_y / count;

  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  PPA_REQUIRE(sxx > 0, "all x values identical — nothing to fit");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;

  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double predicted = fit.intercept + fit.slope * x[i];
    const double residual = y[i] - predicted;
    ss_res += residual * residual;
  }
  fit.r_squared = (syy == 0) ? 1.0 : 1.0 - ss_res / syy;
  return fit;
}

double spread_ratio(const std::vector<double>& y) {
  PPA_REQUIRE(!y.empty(), "spread of an empty series");
  const auto [lo, hi] = std::minmax_element(y.begin(), y.end());
  PPA_REQUIRE(*lo > 0, "spread_ratio needs positive values");
  return *hi / *lo;
}

}  // namespace ppa::analysis
