// Summary statistics for measurement series (experiment reporting).
#pragma once

#include <cstddef>
#include <vector>

namespace ppa::analysis {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;  // sample standard deviation (n-1); 0 for n < 2
  double min = 0;
  double max = 0;
  double median = 0;
};

/// Computes the summary; requires a non-empty sample.
[[nodiscard]] Summary summarize(const std::vector<double>& sample);

/// Population mean of a sample (non-empty).
[[nodiscard]] double mean_of(const std::vector<double>& sample);

/// Geometric mean (all values must be positive).
[[nodiscard]] double geometric_mean(const std::vector<double>& sample);

}  // namespace ppa::analysis
