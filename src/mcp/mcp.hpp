// Minimum Cost Path on the Polymorphic Processor Array — the paper's
// primary contribution (Section 3), statement for statement.
//
// Given an n-vertex weighted digraph loaded as the n x n weight matrix W
// (PE (i,j) holds w_ij) and a destination vertex d, the algorithm computes
// for every source vertex i:
//
//   SOW[d][i] — the cost of a minimum cost path i -> d, and
//   PTN[d][i] — the vertex following i on such a path,
//
// in O(p * h) SIMD steps, where p is the maximum MCP edge count and h the
// word width. Iteration k extends the candidate paths by one edge using a
// column broadcast from row d, a bit-serial row minimum (pmin) and argmin
// (selected_min), and a diagonal column broadcast back into row d; the loop
// stops when no SOW in row d changes.
//
// Conventions (derived from the paper's own update rule — see DESIGN.md):
//  * The diagonal of W is loaded as 0 regardless of the input matrix: the
//    j == i term of the row minimum is then w_ii + SOW_id = SOW_id, which
//    realizes "the minimum between its old value and the new candidates",
//    and SOW[d][d] stays 0 (the empty path d -> d).
//  * MIN_SOW is initialized to SOW after step 1 so the never-written
//    diagonal element (d,d) stays inert in the convergence test (the paper
//    leaves MIN_SOW's initial value unspecified).
//  * Argmin ties resolve to the smallest next-hop index (selected_min over
//    COL), so PTN is deterministic.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"
#include "sim/fault_model.hpp"
#include "sim/machine.hpp"

namespace ppa::obs {
class Collector;
}

namespace ppa::mcp {

/// Which row-minimum implementation the relaxation uses.
enum class MinVariant {
  Paper,    // pmin / selected_min: OR rounds + route to extreme + spread
  OrProbe,  // pmin_orprobe: every PE reconstructs the minimum from the OR
            // bits (GCN-style; saves the two routing broadcasts per min)
};

/// How the DP's broadcasts reach the whole array.
enum class BroadcastScheme {
  SingleRing,      // one bus cycle per broadcast; requires Ring buses
                   // (the paper listing's reading — DESIGN.md §2)
  TwoSidedLinear,  // each broadcast issued in both directions and combined
                   // by driven-ness: works on LINEAR buses at 2x the
                   // broadcast cycles. Forces the OrProbe minimum (the
                   // paper min()'s routing step cannot reach a cluster's
                   // extreme node on a linear bus when the extreme node
                   // itself holds the unique minimum).
};

/// How a solve survives hardware faults (docs/robustness.md). Retry is the
/// detect-and-repeat baseline; the masking policies correct corruption
/// in place, during the run, via sim::BusMasking.
enum class RecoveryPolicy {
  Retry,         // unprotected run; on a non-Verified outcome re-run on a
                 // fresh fault-free word-backend oracle (max_retries times)
  Tmr,           // every bus cycle voted 2-of-3 (sim::BusMasking::Tmr); no
                 // retry loop — masking is expected to carry the run
  Ecc,           // parity planes + syndrome decode on every plane bus cycle
                 // (sim::BusMasking::Ecc); requires backend == BitPlane; no
                 // retry loop
  TmrThenRetry,  // TMR-masked run, and the retry loop stays armed as a
                 // second line of defence for what the vote cannot fix
                 // (persistent stuck wires)
};

[[nodiscard]] const char* name_of(RecoveryPolicy policy) noexcept;

/// The machine-level masking mode a policy implies.
[[nodiscard]] sim::BusMasking masking_of(RecoveryPolicy policy) noexcept;

/// Whether the policy keeps the verify-then-retry loop armed.
[[nodiscard]] bool retry_allowed(RecoveryPolicy policy) noexcept;

struct Options {
  /// Hard iteration cap; 0 means automatic (n + 2, beyond which the DP
  /// provably cannot still be changing — hitting it indicates a bug).
  std::size_t max_iterations = 0;
  MinVariant min_variant = MinVariant::Paper;
  BroadcastScheme broadcast_scheme = BroadcastScheme::SingleRing;
  /// Record per-iteration step counts and changed-vertex counts.
  bool record_iterations = false;
  /// Host execution backend for the machines the convenience entry points
  /// (solve / solve_from / all_pairs / solve_eccentricity) construct.
  /// Results and step counts are bit-identical across backends; only
  /// wall-clock differs. minimum_cost_path(machine, ...) ignores this and
  /// uses the caller's machine as configured.
  sim::ExecBackend backend = sim::ExecBackend::Words;
  /// Physical array side p for the machines solve / solve_from / all_pairs
  /// build. 0 (the default) sizes the machine at the vertex count — the
  /// full-array path, which stays the oracle. 0 < p < n runs the
  /// virtualized sweep on a p x p machine (mcp/tiled.hpp, docs/tiling.md):
  /// the weight matrix is processed in ceil(n/p)^2 panels per iteration.
  /// Solutions, outcomes, iteration counts and certificate verdicts are
  /// bit-identical to the full array on both backends; only the step
  /// profile differs (panel reloads are charged as StepCategory::PanelIo).
  /// Values >= n are clamped to n. minimum_cost_path(machine, ...) ignores
  /// this and uses the caller's machine geometry; solve_eccentricity
  /// honors it with a block-folded row-d reduction (mcp/allpairs.hpp).
  std::size_t array_side = 0;
  /// Destinations solved per machine pass by solve_batch / all_pairs
  /// (mcp/batch.hpp, docs/batching.md). <= 1 keeps the per-destination
  /// engine. With k > 1, solve_batch runs up to k destinations through one
  /// shared sweep schedule: the weight panels are loaded once per panel
  /// visit and every batch member rides them with its own SOW fragment and
  /// result lanes. Rows, iteration counts and outcomes are bit-identical
  /// to the per-destination engine (tests/mcp_batch_test.cpp); only the
  /// step profile differs (docs/batching.md). all_pairs batches only under
  /// the BitPlane backend — the word backend keeps the per-destination
  /// path and remains the differential oracle.
  std::size_t batch_width = 1;
  /// Activity-driven panel scheduling for the virtualized sweeps
  /// (docs/tiling.md "Active panels"). When true (the default), the tiled
  /// and batched drivers keep per-column-block dirty flags fed by the
  /// per-iteration change counts: a weight-panel visit whose SOW fragment
  /// saw no change last iteration is skipped and its cached partial
  /// min/argmin readback is folded instead — exact under Jacobi order, so
  /// rows, iteration counts and outcomes stay bit-identical to the dense
  /// schedule on both backends. Visited panels additionally double-buffer
  /// their loads: the p+1 load beats of the next panel overlap the current
  /// panel's relax sweep in the step accounting. Only the PanelIo profile
  /// changes; the dense formula I*ceil(n/p)^2*(p+3) becomes an upper bound
  /// (false restores it exactly). Ignored by the full-array path.
  bool active_panels = true;

  // ---- robustness layer (docs/robustness.md) ----

  /// Run the host-side certificate checker (mcp/verify.hpp) on the unloaded
  /// row d and set Result::outcome accordingly.
  bool verify = false;
  /// On a non-Verified outcome, solve() / all_pairs() re-run the destination
  /// up to this many times on a fresh fault-free machine (word backend — the
  /// oracle). 0 = report the failure without retrying.
  std::size_t max_retries = 0;
  /// Force checked execution (MachineConfig::checked) on the machines the
  /// convenience entry points build. Implied by a non-empty fault model.
  bool checked = false;
  /// Hardware faults injected into the machines solve() / all_pairs() build
  /// (retry machines stay fault-free). minimum_cost_path(machine, ...)
  /// ignores this — inject into the caller's machine directly.
  sim::FaultModel faults;
  /// Fault-handling strategy for the machines the convenience entry points
  /// build (solve / solve_batch / all_pairs — full and tiled): the masking
  /// mode is applied to MachineConfig::masking and the retry loop is gated
  /// on retry_allowed(). Ecc requires backend == BitPlane (ContractError).
  /// minimum_cost_path(machine, ...) only reads the masking stats off the
  /// caller's machine — configure its masking directly.
  RecoveryPolicy recovery = RecoveryPolicy::Retry;

  // ---- observability (docs/observability.md) ----

  /// Optional obs::Collector recording phase spans (init / relax / unload /
  /// verify / retry), solver counters and — when the machine has no trace
  /// sink of its own — the bus-shape histograms. Not owned; must outlive
  /// the call. Observation never changes results or step counts
  /// (tests/obs_observability_test.cpp pins bit-identity). all_pairs()
  /// gives each destination its own collector and merges them into this
  /// one in destination order, so metrics are worker-count independent.
  obs::Collector* observer = nullptr;
};

struct IterationRecord {
  std::size_t changed = 0;   // vertices whose SOW improved this iteration
  sim::StepCounter steps;    // SIMD steps spent in this iteration
};

/// How much the returned solution can be trusted.
enum class SolveOutcome {
  Unchecked,           // verification was not requested
  Verified,            // the host certificate checker accepted row d
  VerificationFailed,  // the certificate checker rejected row d
  NonConverged,        // relaxation exhausted max_iterations without settling
  HardwareFault,       // checked execution recorded faults (or a fault
                       // tripped a machine contract) and no verification
                       // cleared the result
  MaskedFaults,        // the run completed because in-place masking (TMR /
                       // ECC) corrected at least one bus cycle, none were
                       // uncorrectable, and verification was not requested
                       // to upgrade the outcome to Verified. Success with
                       // information, not a failure; never retried.
};

[[nodiscard]] const char* name_of(SolveOutcome outcome) noexcept;

struct Result {
  graph::McpSolution solution;
  std::size_t iterations = 0;        // relaxation iterations executed
  sim::StepCounter init_steps;       // step 1 (load + init)
  sim::StepCounter total_steps;      // whole algorithm, summed over attempts
  std::vector<IterationRecord> iteration_trace;  // if record_iterations

  SolveOutcome outcome = SolveOutcome::Unchecked;
  /// Fault-masking counters spent inside this solve (the machine-counter
  /// delta; summed over attempts). All zero when masking is off. For a
  /// batched run each member Result carries its whole group's delta, like
  /// total_steps (docs/batching.md).
  sim::MaskingStats masking;
  /// Structured diagnostics from every attempt: checked-execution events
  /// recorded by the machine plus synthesized verification/convergence
  /// events. Empty for a clean run.
  std::vector<sim::FaultEvent> fault_events;
  std::size_t attempts = 1;   // 1 + retries actually executed
  std::string verify_detail;  // certificate failure reason, if any
};

/// Runs the paper's minimum_cost_path() on `machine`. Requirements:
/// machine.n() == graph.size(), machine word width == graph word width,
/// destination < n. The machine's step counter keeps accumulating (the
/// per-call cost is reported in the Result).
[[nodiscard]] Result minimum_cost_path(sim::Machine& machine, const graph::WeightMatrix& graph,
                                       graph::Vertex destination, const Options& options = {});

/// Convenience one-shot: builds a matching machine (Ring topology,
/// host-sequential) and solves. Applies the full robustness policy: faults
/// from Options::faults are injected, the certificate checker runs when
/// Options::verify is set, and a non-Verified outcome is retried up to
/// Options::max_retries times on a fresh fault-free word-backend machine.
[[nodiscard]] Result solve(const graph::WeightMatrix& graph, graph::Vertex destination,
                           const Options& options = {});

/// The retry/degradation core shared by solve() and the all-pairs driver:
/// one attempt on `machine` (as configured by the caller — faults, checked
/// mode, backend), then, while the outcome is non-Verified and retries
/// remain, re-runs on `oracle` — a fault-free word-backend machine of the
/// same geometry, created on first use and reusable across calls. Collects
/// fault events across attempts; Result::total_steps sums every attempt.
/// A util::ContractError thrown out of a faulty machine is converted into a
/// HardwareFault outcome (fault-free machines propagate it unchanged).
[[nodiscard]] Result solve_with_recovery(sim::Machine& machine,
                                         std::unique_ptr<sim::Machine>& oracle,
                                         const graph::WeightMatrix& graph,
                                         graph::Vertex destination, const Options& options);

/// Single-SOURCE solution: cost[i] is the cheapest path source -> i, and
/// prev[i] the vertex BEFORE i on such a path (predecessor tree). Chasing
/// prev from any reachable i walks back to the source.
struct SourceResult {
  std::vector<graph::Weight> cost;
  std::vector<graph::Vertex> prev;
  graph::Vertex source = 0;
  graph::Weight infinity = 0;  // the field's +inf, for reachability checks
  std::size_t iterations = 0;
  sim::StepCounter total_steps;
};

/// Minimum cost paths FROM `source` to every vertex: the same machine DP
/// run toward `source` on the transposed weight matrix (a path i -> s in
/// g^T is the reverse of a path s -> i in g, edge by edge).
[[nodiscard]] SourceResult solve_from(const graph::WeightMatrix& graph, graph::Vertex source,
                                      const Options& options = {});

/// Walks the predecessor pointers of a SourceResult back from `target`;
/// returns the source..target sequence, or nullopt when unreachable.
[[nodiscard]] std::optional<std::vector<graph::Vertex>> extract_path_from(
    const SourceResult& result, graph::Vertex target);

}  // namespace ppa::mcp
